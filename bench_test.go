// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each BenchmarkFigN/BenchmarkTableN runs the corresponding
// experiment end-to-end and reports the headline numbers as custom
// metrics, so `go test -bench=. -benchmem` doubles as the reproduction
// harness. Microbenchmarks at the bottom quantify the simulator's own
// costs (and the Section VII-A defense's per-transaction overhead).
package repro_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/anim"
	"repro/internal/appstore"
	"repro/internal/binder"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/experiment"
	"repro/internal/dexir"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/sentring"
	"repro/internal/sentry"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/staticanalysis"
	"repro/internal/sysserver"
	"repro/internal/sysui"
	"repro/internal/vetd"
	"repro/internal/vetring"
)

const benchSeed = 42

// BenchmarkFig2 regenerates the FastOutSlowIn completeness curve.
func BenchmarkFig2(b *testing.B) {
	var at100 float64
	for i := 0; i < b.N; i++ {
		pts := experiment.Fig2()
		for _, p := range pts {
			if p.At == 100*time.Millisecond {
				at100 = p.Completeness
			}
		}
	}
	b.ReportMetric(100*at100, "%completeness@100ms")
}

// BenchmarkFig4 regenerates the toast enter/exit curves.
func BenchmarkFig4(b *testing.B) {
	var exitAt100 float64
	for i := 0; i < b.N; i++ {
		_, acc := experiment.Fig4()
		for _, p := range acc {
			if p.At == 100*time.Millisecond {
				exitAt100 = p.Completeness
			}
		}
	}
	b.ReportMetric(100*exitAt100, "%exit@100ms")
}

// runExp resolves a registered experiment and drives it end to end through
// the unified Run API — the same path cmd/animbench takes.
func runExp(b *testing.B, name string, seed int64, workers int, cfg experiment.Config) experiment.Output {
	b.Helper()
	exp, err := experiment.New(name, cfg)
	if err != nil {
		b.Fatal(err)
	}
	out, err := experiment.Run(exp, experiment.RunOpts{Seed: seed, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	return out
}

// BenchmarkFig6 sweeps D through the five Λ outcomes on one device.
func BenchmarkFig6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExp(b, "fig6", benchSeed, 1, experiment.Config{Model: "mi8"})
	}
}

// BenchmarkTableII measures the Λ1 upper bound of D on all 30 devices.
func BenchmarkTableII(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExp(b, "table2", benchSeed, 1, experiment.Config{})
	}
}

// BenchmarkLoadImpact reruns the Section VI-B background-load experiment.
func BenchmarkLoadImpact(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExp(b, "load", benchSeed, 1, experiment.Config{Model: "mi8"})
	}
}

// BenchmarkFig7 runs the full 30-participant capture-rate study.
func BenchmarkFig7(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExp(b, "fig7", benchSeed, 1, experiment.Config{})
	}
}

// BenchmarkFig8 runs the capture study grouped by Android version.
func BenchmarkFig8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runExp(b, "fig8", benchSeed+1, 1, experiment.Config{})
	}
}

// BenchmarkTableIII runs the password-stealing study at the paper's scale
// (10 passwords per participant per length — 1500 full attack runs) and
// reports how many attack runs the fault layer skipped (zero here; the
// bench runs unfaulted).
func BenchmarkTableIII(b *testing.B) {
	var skipped int
	for i := 0; i < b.N; i++ {
		out := runExp(b, "table3", benchSeed, 1, experiment.Config{Trials: 10})
		skipped = out.Skipped
	}
	b.ReportMetric(float64(skipped), "skipped-trials")
}

// BenchmarkDegradation runs the full §VIII fault-intensity sweep at one and
// four workers. The workers=4 sub-benchmark is the scheduler's wall-clock
// acceptance check: the sweep's six sub-experiments per intensity shard
// across the pool, so it must run well under the sequential time while the
// report stays byte-identical (TestParallelDeterminism pins that part).
func BenchmarkDegradation(b *testing.B) {
	for _, workers := range []int{1, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runExp(b, "degradation", benchSeed, workers, experiment.Config{FaultProfile: "chaos"})
			}
		})
	}
}

// BenchmarkTableIV attacks the eight real-world apps.
func BenchmarkTableIV(b *testing.B) {
	var compromised int
	for i := 0; i < b.N; i++ {
		rows, err := experiment.TableIV(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		compromised = 0
		for _, r := range rows {
			if r.Compromised {
				compromised++
			}
		}
	}
	b.ReportMetric(float64(compromised), "apps-compromised/8")
}

// BenchmarkStealthiness runs the 30-participant survey.
func BenchmarkStealthiness(b *testing.B) {
	var noticed, lag int
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Stealthiness(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		noticed, lag = rep.NoticedAbnormal, rep.ReportedLag
	}
	b.ReportMetric(float64(noticed), "noticed/30")
	b.ReportMetric(float64(lag), "lag-reports/30")
}

// BenchmarkCorpus runs the §VI-C2 study at the paper's full scale
// (890,855 synthetic apps through both scanners).
func BenchmarkCorpus(b *testing.B) {
	var overlayA11y int
	for i := 0; i < b.N; i++ {
		rep, err := appstore.Study(benchSeed, appstore.PaperCorpusSize)
		if err != nil {
			b.Fatal(err)
		}
		overlayA11y = rep.OverlayPlusA11y
	}
	b.ReportMetric(float64(overlayA11y), "overlay+a11y-apps")
}

// BenchmarkCorpusScan tracks the parallel scanner's throughput across PRs:
// a fixed 100k-app slice through generation, grep baseline and call-graph
// analysis, with apps/sec as the headline metric. Worker count follows
// GOMAXPROCS, as in cmd/corpusscan.
func BenchmarkCorpusScan(b *testing.B) {
	const n = 100_000
	var precision float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := appstore.StudyWith(benchSeed, n, appstore.StudyOptions{})
		if err != nil {
			b.Fatal(err)
		}
		precision = rep.StaticOverlay.Precision()
	}
	b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "apps/sec")
	b.ReportMetric(100*precision, "%static-precision")
}

// BenchmarkAnalyzeTier isolates the static pass itself: one fixed
// obfuscated corpus slice (PrecisionRates, so every decoy family is
// present) pushed through AnalyzeTier at each precision tier. The
// per-tier deltas price what dead-branch pruning (tier1) and
// interprocedural constant propagation (tier2) cost per app;
// scripts/bench.sh records the result in BENCH_static.json. The
// flagged-apps metric anchors behaviour as well as speed: tier1 prunes
// flag-decoy false positives, tier2 additionally recovers reflective
// false negatives, so the three counts differ.
func BenchmarkAnalyzeTier(b *testing.B) {
	const n = 8192
	gen, err := appstore.NewGenerator(simrand.New(benchSeed), appstore.PrecisionRates())
	if err != nil {
		b.Fatal(err)
	}
	apps := make([]*dexir.App, n)
	for i := range apps {
		apps[i] = gen.Next().IR
	}
	for _, tier := range staticanalysis.Tiers() {
		tier := tier
		b.Run(tier.String(), func(b *testing.B) {
			var flagged int
			for i := 0; i < b.N; i++ {
				flagged = 0
				for _, app := range apps {
					if staticanalysis.AnalyzeTier(app, tier).DrawAndDestroy {
						flagged++
					}
				}
			}
			b.ReportMetric(float64(n)*float64(b.N)/b.Elapsed().Seconds(), "apps/sec")
			b.ReportMetric(float64(flagged), "flagged-apps")
		})
	}
}

// BenchmarkDefenseIPC evaluates the Binder-log detector end to end.
func BenchmarkDefenseIPC(b *testing.B) {
	var latencyMS float64
	for i := 0; i < b.N; i++ {
		rep, err := experiment.DefenseIPC(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		latencyMS = float64(rep.DetectionLatency) / float64(time.Millisecond)
	}
	b.ReportMetric(latencyMS, "detect-latency-ms")
}

// BenchmarkDefenseNotif evaluates the enhanced-notification patch.
func BenchmarkDefenseNotif(b *testing.B) {
	var with float64
	for i := 0; i < b.N; i++ {
		rep, err := experiment.DefenseNotif(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		with = float64(rep.OutcomeWith)
	}
	b.ReportMetric(with, "outcome-with-defense(5=Λ5)")
}

// BenchmarkDefenseToastGap evaluates the toast scheduling defense.
func BenchmarkDefenseToastGap(b *testing.B) {
	var withDefense float64
	for i := 0; i < b.N; i++ {
		rep, err := experiment.DefenseToastGap(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		withDefense = rep.MinAlphaWith
	}
	b.ReportMetric(withDefense, "min-opacity-defended")
}

// BenchmarkDrawerCheck measures drawer exposure during the attack.
func BenchmarkDrawerCheck(b *testing.B) {
	var visibleBelowBound float64
	for i := 0; i < b.N; i++ {
		rep, err := experiment.DrawerCheck("mi8", benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		visibleBelowBound = rep.Rows[1].PixelsVisiblePct
	}
	b.ReportMetric(visibleBelowBound, "%pixels-visible@0.9bound")
}

// BenchmarkAblations runs the four design-choice knockouts.
func BenchmarkAblations(b *testing.B) {
	var anaShrinkMS float64
	for i := 0; i < b.N; i++ {
		rep, err := experiment.Ablations(benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		anaShrinkMS = float64(rep.BoundWithANA-rep.BoundWithoutANA) / float64(time.Millisecond)
	}
	b.ReportMetric(anaShrinkMS, "ana-bound-shrink-ms")
}

// BenchmarkDetectorObserve measures the Section VII-A defense's
// per-transaction analysis cost — the "negligible overhead" claim.
func BenchmarkDetectorObserve(b *testing.B) {
	det, err := defense.NewIPCDetector(defense.IPCDetectorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	tx := binder.Transaction{
		From:   "com.some.app",
		To:     binder.SystemServer,
		Method: sysserver.MethodAddView,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Realistic overlay traffic density: a handful of calls per
		// second, so the sliding window stays small.
		tx.DeliveredAt = time.Duration(i) * 150 * time.Millisecond
		det.Observe(tx)
	}
}

// BenchmarkVetServe measures one vetting request through the full vetd
// serving stack (HTTP decode, content hash, cache or analysis pool,
// encode) in two regimes: cold — caching disabled, every request pays a
// defense.Vet call-graph analysis — and warm — every request hits the
// content-addressed verdict cache. The gap isolates the analysis cost a
// hit avoids; for the small synthetic IRs the floor under both is JSON
// decode + hashing, so the delta grows with app size while warm stays
// near the floor.
func BenchmarkVetServe(b *testing.B) {
	const distinct = 64
	apks, err := appstore.GenerateApps(benchSeed, 0, distinct)
	if err != nil {
		b.Fatal(err)
	}
	bodies := make([][]byte, distinct)
	for i, apk := range apks {
		if bodies[i], err = json.Marshal(vetd.VetRequest{App: apk.IR}); err != nil {
			b.Fatal(err)
		}
	}
	serve := func(b *testing.B, s *vetd.Server) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			req := httptest.NewRequest("POST", "/v1/vet", bytes.NewReader(bodies[i%distinct]))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
	}
	b.Run("cold", func(b *testing.B) {
		s := vetd.New(vetd.Config{CacheCapacity: -1, QueueDepth: 1 << 16})
		defer s.Close()
		serve(b, s)
	})
	b.Run("warm", func(b *testing.B) {
		s := vetd.New(vetd.Config{QueueDepth: 1 << 16})
		defer s.Close()
		for i := range bodies { // pre-warm: one analysis per distinct app
			req := httptest.NewRequest("POST", "/v1/vet", bytes.NewReader(bodies[i]))
			s.ServeHTTP(httptest.NewRecorder(), req)
		}
		b.ResetTimer()
		serve(b, s)
		m := s.Metrics()
		b.ReportMetric(100*float64(m.Hits.Load())/float64(m.Requests.Load()), "%cache-hit")
	})
}

// BenchmarkRingServe measures one vetting request through the distributed
// serving plane: a vetring router fronting three in-process vetd peers
// over real HTTP, replicas=2. The healthy sub-benchmark is the steady
// state (every request answered by its primary replica); one-peer-down
// partitions peer 0 behind the deterministic network fault plane, so
// keys whose primary was peer 0 pay a failover to their surviving
// replica once the circuit breaker opens. The gap prices failover —
// %replicated must stay at 100 in both regimes, because with replicas=2
// every key keeps one live copy when a single peer dies.
func BenchmarkRingServe(b *testing.B) {
	const distinct = 64
	apks, err := appstore.GenerateApps(benchSeed, 0, distinct)
	if err != nil {
		b.Fatal(err)
	}
	bodies := make([][]byte, distinct)
	for i, apk := range apks {
		if bodies[i], err = json.Marshal(vetd.VetRequest{App: apk.IR}); err != nil {
			b.Fatal(err)
		}
	}
	run := func(b *testing.B, plane *faults.NetPlane) {
		b.Helper()
		var nodes []*vetd.Server
		var backends []*httptest.Server
		var peers []string
		for i := 0; i < 3; i++ {
			s := vetd.New(vetd.Config{QueueDepth: 1 << 16})
			ts := httptest.NewServer(s)
			nodes = append(nodes, s)
			backends = append(backends, ts)
			peers = append(peers, strings.TrimPrefix(ts.URL, "http://"))
		}
		defer func() {
			for i := range nodes {
				backends[i].Close()
				nodes[i].Close()
			}
		}()
		router, err := vetring.New(vetring.Config{
			Peers:           peers,
			Replicas:        2,
			Retries:         1,
			RetryBase:       time.Millisecond,
			ProbeInterval:   -1,
			BreakerCooldown: time.Hour, // stay open for the whole measured run
			NetPlane:        plane,
			Seed:            benchSeed,
		})
		if err != nil {
			b.Fatal(err)
		}
		defer router.Close()
		serveOne := func(i int) {
			req := httptest.NewRequest("POST", "/v1/vet", bytes.NewReader(bodies[i%distinct]))
			rec := httptest.NewRecorder()
			router.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		// Warm every distinct key (peer caches fill, breakers settle), then
		// measure the steady state; metrics are deltas over the measured
		// window so the warmup's failovers don't pollute them.
		for i := 0; i < distinct; i++ {
			serveOne(i)
		}
		m := router.Metrics()
		repl0, fail0 := m.Replicated.Load(), m.Failovers.Load()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			serveOne(i)
		}
		b.StopTimer()
		b.ReportMetric(100*float64(m.Replicated.Load()-repl0)/float64(b.N), "%replicated")
		b.ReportMetric(float64(m.Failovers.Load()-fail0)/float64(b.N), "failovers/op")
	}
	b.Run("healthy", func(b *testing.B) { run(b, nil) })
	b.Run("one-peer-down", func(b *testing.B) {
		prof := faults.NetProfile{Name: "bench-partition", PartitionPeers: []int{0}}
		run(b, faults.NewNetPlane(prof, benchSeed))
	})
}

// BenchmarkSentryIngest measures the streaming detection service's
// ingest path: one op replays a pre-encoded 256-device labeled fleet
// through the full HTTP stack (admission gate, wire decode, sharded
// window update, decision rules) of a fresh sentryd server. The server
// is rebuilt every op because device sequence numbers are strictly
// monotonic — a second replay into the same engine would be a protocol
// violation, not a measurement. records/sec is the headline throughput;
// detected-devices anchors behaviour (every planted attacker, nothing
// else) so a speedup that breaks detection cannot pass as a win.
// scripts/bench.sh records the result in BENCH_sentry.json.
func BenchmarkSentryIngest(b *testing.B) {
	fl, err := sentry.GenerateFleet(sentry.FleetConfig{
		Devices: 256, Attackers: 8, NotifAbusers: 4,
		Span: 10 * time.Second, Seed: benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	type batch struct {
		device string
		body   []byte
	}
	var batches []batch
	for _, d := range fl.Devices {
		recs := d.Records
		for len(recs) > 0 {
			n := len(recs)
			if n > 64 {
				n = 64
			}
			body, err := sentry.EncodeBatch(recs[:n])
			if err != nil {
				b.Fatal(err)
			}
			batches = append(batches, batch{device: d.ID, body: body})
			recs = recs[n:]
		}
	}
	records := fl.Records()
	var detected int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		srv, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 1 << 16})
		if err != nil {
			b.Fatal(err)
		}
		for _, bt := range batches {
			req := httptest.NewRequest("POST", "/v1/ingest?device="+bt.device, bytes.NewReader(bt.body))
			rec := httptest.NewRecorder()
			srv.ServeHTTP(rec, req)
			if rec.Code != http.StatusOK {
				b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
			}
		}
		detected = srv.Engine().Snapshot().Detected
	}
	b.StopTimer()
	if detected != 12 {
		b.Fatalf("detected %d devices, want the 12 planted", detected)
	}
	b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	b.ReportMetric(float64(detected), "detected-devices")
}

// BenchmarkRouterIngest measures a fleet replay through the multi-node
// sentry: a sentring router fronting three sentryd peers over real HTTP,
// replicas=2. One op pushes a pre-encoded 128-device labeled fleet
// through the router's sharded ingest path; the topology is rebuilt per
// op because device sequence numbers are strictly monotonic. healthy is
// the steady state (every batch acked by its full replica set);
// one-peer-down partitions peer 0 behind the deterministic fault plane,
// so its share of batches pays failed attempts until the circuit
// breaker opens and single-replica acks after. The gap prices ingest
// failover; detected-devices anchors behaviour (all six planted
// attackers survive the dead peer, because replicas=2 keeps one live
// copy of every device's stream). scripts/bench.sh records the result
// in BENCH_sentring.json.
func BenchmarkRouterIngest(b *testing.B) {
	fl, err := sentry.GenerateFleet(sentry.FleetConfig{
		Devices: 128, Attackers: 4, NotifAbusers: 2,
		Span: 8 * time.Second, Seed: benchSeed,
	})
	if err != nil {
		b.Fatal(err)
	}
	type batch struct {
		device string
		body   []byte
	}
	var batches []batch
	for _, d := range fl.Devices {
		recs := d.Records
		for len(recs) > 0 {
			n := len(recs)
			if n > 64 {
				n = 64
			}
			body, err := sentry.EncodeBatch(recs[:n])
			if err != nil {
				b.Fatal(err)
			}
			batches = append(batches, batch{device: d.ID, body: body})
			recs = recs[n:]
		}
	}
	records := fl.Records()
	run := func(b *testing.B, prof *faults.NetProfile) {
		b.Helper()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			var nodes []*sentry.Server
			var backends []*httptest.Server
			var peers []string
			for j := 0; j < 3; j++ {
				s, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 1 << 16})
				if err != nil {
					b.Fatal(err)
				}
				ts := httptest.NewServer(s)
				nodes = append(nodes, s)
				backends = append(backends, ts)
				peers = append(peers, strings.TrimPrefix(ts.URL, "http://"))
			}
			var plane *faults.NetPlane
			if prof != nil {
				plane = faults.NewNetPlane(*prof, benchSeed)
			}
			router, err := sentring.New(sentring.Config{
				Peers:           peers,
				Replicas:        2,
				Retries:         1,
				RetryBase:       time.Millisecond,
				ProbeInterval:   -1,
				BreakerCooldown: time.Hour, // stay open for the whole measured op
				NetPlane:        plane,
				Seed:            benchSeed,
			})
			if err != nil {
				b.Fatal(err)
			}
			b.StartTimer()
			for _, bt := range batches {
				req := httptest.NewRequest("POST", "/v1/ingest?device="+bt.device, bytes.NewReader(bt.body))
				rec := httptest.NewRecorder()
				router.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body.String())
				}
			}
			b.StopTimer()
			if detected := router.MergedSnapshot(context.Background()).Detected; detected != 6 {
				b.Fatalf("detected %d devices, want the 6 planted", detected)
			}
			router.Close()
			for j := range nodes {
				backends[j].Close()
				nodes[j].Close()
			}
			b.StartTimer()
		}
		b.StopTimer()
		b.ReportMetric(float64(records)*float64(b.N)/b.Elapsed().Seconds(), "records/sec")
	}
	b.Run("healthy", func(b *testing.B) { run(b, nil) })
	b.Run("one-peer-down", func(b *testing.B) {
		run(b, &faults.NetProfile{Name: "bench-partition", PartitionPeers: []int{0}})
	})
}

// BenchmarkFleetGenerate measures synthesizing a 1000-device market-
// weighted population — the fleet sweep's setup cost. devices/sec is the
// headline; the weighted mean analytic bound anchors the generated
// population's shape so a speedup that skews the market model cannot pass
// as a win. scripts/bench.sh records the result in BENCH_fleet.json.
func BenchmarkFleetGenerate(b *testing.B) {
	const size = 1000
	var meanD float64
	for i := 0; i < b.N; i++ {
		fl, err := fleet.Generate(size, benchSeed)
		if err != nil {
			b.Fatal(err)
		}
		meanD = 0
		for _, e := range fl.Entries() {
			meanD += e.Weight * float64(e.Profile.ExpectedUpperBoundD()/time.Millisecond)
		}
	}
	b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "devices/sec")
	b.ReportMetric(meanD, "weighted-mean-bound-ms")
}

// BenchmarkFleetSweep runs the full fleet experiment — per-device attack,
// coarse bound search and both §VII defenses under per-device fault
// calibration — on a 200-device population at one and four workers, the
// same scale scripts/verify.sh smokes. devices/sec is the throughput
// headline; TestParallelDeterminism pins that the two worker counts
// render byte-identically.
func BenchmarkFleetSweep(b *testing.B) {
	const size = 200
	for _, workers := range []int{1, 4} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				runExp(b, "fleet", benchSeed, workers, experiment.Config{FleetSize: size, FleetSeed: benchSeed})
			}
			b.ReportMetric(float64(size)*float64(b.N)/b.Elapsed().Seconds(), "devices/sec")
		})
	}
}

// BenchmarkInterpolatorFastOutSlowIn measures the Bézier solve per frame.
func BenchmarkInterpolatorFastOutSlowIn(b *testing.B) {
	ip := anim.FastOutSlowIn()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += ip.Interpolate(float64(i%1000) / 1000)
	}
	_ = sink
}

// BenchmarkBinderCall measures one simulated Binder round trip.
func BenchmarkBinderCall(b *testing.B) {
	clock := simclock.New()
	bus, err := binder.NewBus(binder.Config{Clock: clock, RNG: simrand.New(1), LogLimit: -1})
	if err != nil {
		b.Fatal(err)
	}
	if err := bus.Register(binder.SystemServer, func(binder.Transaction) {}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bus.Call("app", binder.SystemServer, "m", nil); err != nil {
			b.Fatal(err)
		}
		clock.Step()
	}
}

// BenchmarkSimClock measures raw event throughput of the scheduler.
func BenchmarkSimClock(b *testing.B) {
	clock := simclock.New()
	fn := func() {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clock.MustAfter(time.Microsecond, "bench", fn)
		clock.Step()
	}
}

// BenchmarkFullAttackSecond measures simulating one second of the overlay
// attack on the default device.
func BenchmarkFullAttackSecond(b *testing.B) {
	p := device.Default()
	for i := 0; i < b.N; i++ {
		o, err := experiment.OutcomeForD(p, 297*time.Millisecond, time.Second, int64(i))
		if err != nil {
			b.Fatal(err)
		}
		if o != sysui.Lambda1 {
			b.Fatalf("outcome %v", o)
		}
	}
}
