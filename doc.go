// Package repro is a full reproduction, in pure Go, of "Implication of
// Animation on Android Security" (Wang et al., ICDCS 2022): the
// draw-and-destroy overlay attack, the draw-and-destroy toast attack, the
// combined password-stealing attack, the Section VII defenses, and a
// simulated Android UI stack (Binder, Window Manager, Notification
// Manager, System UI animations) faithful enough to reproduce every table
// and figure of the paper's evaluation.
//
// Layout:
//
//	internal/core        the paper's attacks (Sections III–V)
//	internal/defense     the Section VII mitigations
//	internal/experiment  one runner per table/figure (Section VI)
//	internal/...         the simulated Android substrates
//	cmd/animbench        regenerate all tables and figures
//	cmd/animsim          run a single attack scenario with a timeline
//	cmd/corpusscan       the §VI-C2 app-market study
//	cmd/defensecheck     evaluate both defenses
//	examples/            runnable walk-throughs of the public API
//
// See README.md for a guided tour, DESIGN.md for the system inventory and
// substitutions, and EXPERIMENTS.md for paper-versus-measured results.
// The root-level benchmarks (bench_test.go) regenerate each experiment
// under `go test -bench`.
package repro
