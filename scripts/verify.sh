#!/bin/sh
# verify.sh — the repo's full verification gate, a superset of the tier-1
# check in ROADMAP.md. Run from the repository root:
#
#     sh scripts/verify.sh
#
# Steps: build, unit tests, go vet, the simlint determinism/robustness
# pass, and a race-detector pass over the short tests.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint internal/"
go run ./cmd/simlint

echo "==> go test -race -short ./..."
go test -race -short ./...

echo "verify: all checks passed"
