#!/bin/sh
# verify.sh — the repo's full verification gate, a superset of the tier-1
# check in ROADMAP.md. Run from the repository root:
#
#     sh scripts/verify.sh
#
# Steps: build, unit tests, go vet, the simlint determinism/robustness
# pass, a race-detector pass over the short tests, a coverage floor on
# the experiment-harness core packages, the streaming detector and the
# fleet generator, the scheduler parity diff plus a 200-device fleet-sweep
# parity smoke, a vetd serving smoke (checked vetload replay +
# clean SIGINT shutdown), a distributed ring smoke (3 vetd peers behind
# vetrouter, chaos kill/restart schedule, zero verdict mismatches
# required), a sentryd smoke (a 2000-device labeled fleet replay
# that must detect every planted attacker with zero false positives), a
# routed sentry chaos smoke (3 sentryd peers behind sentryrouter,
# SIGKILL/restart cycles plus a live rule swap, zero detection
# mismatches against a single-node reference required), and a benchmark
# regression gate (every benchmark in the committed BENCH_*.json
# snapshots re-run and required within BENCH_TOL percent of its
# committed ns/op, best of up to three passes).
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint internal/"
go run ./cmd/simlint

echo "==> go test -race -short ./..."
go test -race -short ./...

# Coverage floor for the experiment-harness core, the streaming detector
# and the fleet generator: the journaled runners and the sweep-wide
# invariant aggregation are the crash-safety layer, the sentry
# engine/server carry the accounting and shard-invariance contracts, and
# the fleet generator carries the population-determinism contract — a
# drop below the floor means those paths lost their tests. All packages
# currently sit well above it (~78% / ~85% / ~83% / ~95%).
COVER_FLOOR=65
echo "==> go test -cover ./internal/experiment ./internal/invariant ./internal/sentry ./internal/fleet (floor ${COVER_FLOOR}%)"
go test -cover ./internal/experiment ./internal/invariant ./internal/sentry ./internal/fleet | tee /tmp/verify-cover.$$
awk -v floor="$COVER_FLOOR" '
	/coverage:/ {
		for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1)
		sub(/%$/, "", pct)
		if (pct + 0 < floor) { print "coverage below floor (" floor "%): " $0; bad = 1 }
	}
	END { exit bad }
' /tmp/verify-cover.$$
rm -f /tmp/verify-cover.$$

# Parallel-scheduler contract: the full suite must render byte-identically
# at one worker and four. Any diff means a trial still draws from a shared
# RNG stream at run time.
echo "==> animbench -workers 1 vs -workers 4 parity"
ANIMBENCH=/tmp/verify-animbench.$$
go build -o "$ANIMBENCH" ./cmd/animbench
set +e
"$ANIMBENCH" -exp all -seed 42 -trials 1 -corpus 20000 -workers 1 >/tmp/verify-w1.$$ 2>&1
W1=$?
"$ANIMBENCH" -exp all -seed 42 -trials 1 -corpus 20000 -workers 4 >/tmp/verify-w4.$$ 2>&1
W4=$?
set -e
# Exit 3 just flags skipped trials in an -exp all suite; both runs must
# agree on it, and any other nonzero status is a real failure.
[ "$W1" -eq 0 ] || [ "$W1" -eq 3 ] || { echo "workers=1 run failed ($W1)"; exit 1; }
[ "$W4" -eq "$W1" ] || { echo "exit status differs: workers=1 -> $W1, workers=4 -> $W4"; exit 1; }
diff -u /tmp/verify-w1.$$ /tmp/verify-w4.$$ || { echo "workers=4 output differs from workers=1"; exit 1; }

# Fleet sweep smoke: a 200-device generated population through the
# market-weighted sweep, workers 1 vs 4 — generation and measurement must
# both be byte-identical across worker counts.
echo "==> animbench -exp fleet -fleet-size 200 parity"
"$ANIMBENCH" -exp fleet -fleet-size 200 -seed 42 -workers 1 >/tmp/verify-f1.$$ 2>&1 || { echo "fleet workers=1 run failed"; cat /tmp/verify-f1.$$; exit 1; }
"$ANIMBENCH" -exp fleet -fleet-size 200 -seed 42 -workers 4 >/tmp/verify-f4.$$ 2>&1 || { echo "fleet workers=4 run failed"; cat /tmp/verify-f4.$$; exit 1; }
diff -u /tmp/verify-f1.$$ /tmp/verify-f4.$$ || { echo "fleet workers=4 output differs from workers=1"; exit 1; }
rm -f "$ANIMBENCH" /tmp/verify-w1.$$ /tmp/verify-w4.$$ /tmp/verify-f1.$$ /tmp/verify-f4.$$

# Measure the degradation sweep's parallel speedup (ns/op at workers=1 vs
# workers=4). Informational: the ratio depends on the host's core count.
echo "==> go test -bench=Degradation -benchtime=1x"
go test -run '^$' -bench Degradation -benchtime 1x .

# vetd serving smoke: boot the vetting service on an ephemeral port, replay
# a short seeded workload with -check (every served verdict compared
# byte-for-byte against a direct defense.Vet), and require a clean SIGINT
# shutdown. A nonzero vetload exit means a verdict mismatch, a transport
# error, or broken hit/miss/shed accounting.
echo "==> vetd smoke (vetload -duration 2s -check)"
VETD=/tmp/verify-vetd.$$
VETLOAD=/tmp/verify-vetload.$$
VETDLOG=/tmp/verify-vetd-log.$$
go build -o "$VETD" ./cmd/vetd
go build -o "$VETLOAD" ./cmd/vetload
"$VETD" -addr 127.0.0.1:0 >"$VETDLOG" 2>&1 &
VETD_PID=$!
ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
	ADDR=$(sed -n 's/^vetd: listening on //p' "$VETDLOG")
	[ -n "$ADDR" ] && break
	sleep 0.5
done
[ -n "$ADDR" ] || { echo "vetd never reported its listen address"; cat "$VETDLOG"; kill "$VETD_PID" 2>/dev/null; exit 1; }
"$VETLOAD" -addr "http://$ADDR" -duration 2s -check || { echo "vetload -check failed"; kill "$VETD_PID" 2>/dev/null; exit 1; }
kill -INT "$VETD_PID"
wait "$VETD_PID" || { echo "vetd did not shut down cleanly on SIGINT"; cat "$VETDLOG"; exit 1; }
grep -q "shutdown complete" "$VETDLOG" || { echo "vetd missing shutdown line"; cat "$VETDLOG"; exit 1; }
rm -f "$VETDLOG"

# Distributed ring smoke: vetload spawns 3 vetd peers (each with a
# crash-safe store) and a vetrouter, replays a checked workload through
# the router while the chaos schedule SIGKILLs and restarts peers, then
# requires clean SIGINT exits from every process. A nonzero exit means a
# verdict mismatch through a failover/degrade path, a lost request, a
# store that failed to recover, or broken router accounting
# (replicated+degraded+shed+failed != requests).
echo "==> ring smoke (vetload -ring 3 -chaos 600ms -check)"
VETROUTER=/tmp/verify-vetrouter.$$
RINGSTORES=/tmp/verify-ring-stores.$$
go build -o "$VETROUTER" ./cmd/vetrouter
"$VETLOAD" -ring 3 -vetd-bin "$VETD" -router-bin "$VETROUTER" \
	-store-dir "$RINGSTORES" -duration 2s -chaos 600ms -clients 4 -check \
	|| { echo "ring smoke failed"; rm -rf "$RINGSTORES"; exit 1; }
rm -rf "$RINGSTORES"
rm -f "$VETD" "$VETLOAD" "$VETROUTER"

# sentryd smoke: boot the streaming detection service on an ephemeral
# port, replay a seeded 2000-device labeled fleet open-loop, and require
# perfect conformance — every planted attacker detected, zero false
# positives, exact detected+clean+shed == devices_reported accounting —
# plus a clean SIGINT shutdown printing the final accounting.
echo "==> sentryd smoke (fleetload -devices 2000 -require-perfect)"
SENTRYD=/tmp/verify-sentryd.$$
FLEETLOAD=/tmp/verify-fleetload.$$
SENTRYDLOG=/tmp/verify-sentryd-log.$$
go build -o "$SENTRYD" ./cmd/sentryd
go build -o "$FLEETLOAD" ./cmd/fleetload
"$SENTRYD" -addr 127.0.0.1:0 >"$SENTRYDLOG" 2>&1 &
SENTRYD_PID=$!
ADDR=""
for _ in 1 2 3 4 5 6 7 8 9 10; do
	ADDR=$(sed -n 's/^sentryd: listening on //p' "$SENTRYDLOG")
	[ -n "$ADDR" ] && break
	sleep 0.5
done
[ -n "$ADDR" ] || { echo "sentryd never reported its listen address"; cat "$SENTRYDLOG"; kill "$SENTRYD_PID" 2>/dev/null; exit 1; }
"$FLEETLOAD" -addr "$ADDR" -devices 2000 -attackers 40 -notif-abusers 20 -seed 42 -require-perfect \
	|| { echo "fleetload conformance failed"; kill "$SENTRYD_PID" 2>/dev/null; exit 1; }
kill -INT "$SENTRYD_PID"
wait "$SENTRYD_PID" || { echo "sentryd did not shut down cleanly on SIGINT"; cat "$SENTRYDLOG"; exit 1; }
grep -q "shutdown complete" "$SENTRYDLOG" || { echo "sentryd missing shutdown line"; cat "$SENTRYDLOG"; exit 1; }
rm -f "$SENTRYDLOG"

# Routed sentry chaos smoke: fleetload spawns 3 sentryd peers (each with
# a crash-safe detection journal) and a sentryrouter, replays a labeled
# fleet through the router while the seeded chaos schedule SIGKILLs and
# restarts peers, swaps the detection rules mid-run, and then proves the
# distributed contracts: zero detection mismatches against a single-node
# reference engine, exact exclusive router accounting
# (routed+degraded+shed+failed == batches), /v1/flagged answers
# byte-stable across a SIGKILL restart of every peer, and post-swap
# detections stamped with the new config version — ending in clean
# SIGINT exits from every process.
echo "==> routed sentry chaos smoke (fleetload -ring 3 -chaos 300ms -swap)"
SENTRYROUTER=/tmp/verify-sentryrouter.$$
SENTRYSTORES=/tmp/verify-sentry-stores.$$
go build -o "$SENTRYROUTER" ./cmd/sentryrouter
"$FLEETLOAD" -ring 3 -sentryd-bin "$SENTRYD" -router-bin "$SENTRYROUTER" \
	-store-dir "$SENTRYSTORES" -devices 1200 -attackers 24 -notif-abusers 12 \
	-span 12s -seed 42 -clients 16 -batch 48 -chaos 300ms -chaos-kills 2 \
	-swap -require-perfect \
	|| { echo "routed sentry chaos smoke failed"; rm -rf "$SENTRYSTORES"; exit 1; }
rm -rf "$SENTRYSTORES"
rm -f "$SENTRYD" "$FLEETLOAD" "$SENTRYROUTER"

# Benchmark regression gate: re-run every benchmark recorded in the
# committed BENCH_*.json snapshots and require each ns/op within
# BENCH_TOL percent (default 10) of its committed value. Both sides are
# min-of-BENCHCOUNT numbers (see bench.sh): the minimum is a stable
# lower bound on a shared host, since scheduler noise only inflates a
# run. A pass can still spike, so the gate takes the best of up to
# three passes — only re-running while a regression is still showing —
# and a benchmark that disappears from the fresh run fails the gate
# outright.
BENCH_TOL="${BENCH_TOL:-10}"
echo "==> bench regression gate (tolerance ${BENCH_TOL}%)"
BENCHDIR=/tmp/verify-bench.$$
mkdir -p "$BENCHDIR"
cat BENCH_static.json BENCH_vetd.json BENCH_sentry.json BENCH_sentring.json BENCH_fleet.json >"$BENCHDIR/base.json"
BENCH_OK=0
for ATTEMPT in 1 2 3; do
	BENCHTIME=200ms BENCHCOUNT=3 \
	OUT="$BENCHDIR/run$ATTEMPT-static.json" \
	OUT_VETD="$BENCHDIR/run$ATTEMPT-vetd.json" \
	OUT_SENTRY="$BENCHDIR/run$ATTEMPT-sentry.json" \
	OUT_SENTRING="$BENCHDIR/run$ATTEMPT-sentring.json" \
	OUT_FLEET="$BENCHDIR/run$ATTEMPT-fleet.json" \
		sh scripts/bench.sh >/dev/null
	cat "$BENCHDIR"/run*-*.json >"$BENCHDIR/new.json"
	if awk -v tol="$BENCH_TOL" '
		function parse(line) {
			name = line; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
			ns = line; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
		}
		NR == FNR { if (/"name":/) { parse($0); base[name] = ns + 0 }; next }
		/"name":/ { parse($0); if (!(name in best) || ns + 0 < best[name]) best[name] = ns + 0 }
		END {
			for (name in base) {
				if (!(name in best)) { print "bench gate: " name " missing from fresh run"; bad = 1 }
				else if (best[name] > base[name] * (1 + tol / 100)) {
					printf "bench gate: %s regressed: %.0f ns/op vs %.0f committed (+%.1f%%)\n",
						name, best[name], base[name], 100 * (best[name] / base[name] - 1)
					bad = 1
				}
			}
			exit bad
		}
	' "$BENCHDIR/base.json" "$BENCHDIR/new.json"; then
		BENCH_OK=1
		break
	fi
	echo "bench gate: attempt $ATTEMPT of 3 saw a regression; re-running"
done
rm -rf "$BENCHDIR"
[ "$BENCH_OK" -eq 1 ] || { echo "bench gate: regression persisted across 3 passes (raise BENCH_TOL to override a known change)"; exit 1; }

echo "verify: all checks passed"
