#!/bin/sh
# verify.sh — the repo's full verification gate, a superset of the tier-1
# check in ROADMAP.md. Run from the repository root:
#
#     sh scripts/verify.sh
#
# Steps: build, unit tests, go vet, the simlint determinism/robustness
# pass, a race-detector pass over the short tests, and a coverage floor
# on the experiment-harness core packages.
set -eu

cd "$(dirname "$0")/.."

echo "==> go build ./..."
go build ./...

echo "==> go test ./..."
go test ./...

echo "==> go vet ./..."
go vet ./...

echo "==> simlint internal/"
go run ./cmd/simlint

echo "==> go test -race -short ./..."
go test -race -short ./...

# Coverage floor for the experiment-harness core: the journaled runners and
# the sweep-wide invariant aggregation are the crash-safety layer, and a
# drop below the floor means resume paths lost their tests. Both packages
# currently sit well above it (~78% / ~85%).
COVER_FLOOR=65
echo "==> go test -cover ./internal/experiment ./internal/invariant (floor ${COVER_FLOOR}%)"
go test -cover ./internal/experiment ./internal/invariant | tee /tmp/verify-cover.$$
awk -v floor="$COVER_FLOOR" '
	/coverage:/ {
		for (i = 1; i <= NF; i++) if ($i == "coverage:") pct = $(i + 1)
		sub(/%$/, "", pct)
		if (pct + 0 < floor) { print "coverage below floor (" floor "%): " $0; bad = 1 }
	}
	END { exit bad }
' /tmp/verify-cover.$$
rm -f /tmp/verify-cover.$$

echo "verify: all checks passed"
