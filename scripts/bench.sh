#!/bin/sh
# bench.sh — benchmark emitter for the static-analysis pipeline and the
# serving planes. Three passes: the corpus-scan throughput benchmark
# plus the per-tier analyzer benchmarks are written to BENCH_static.json,
# the vetting-plane benchmarks (single-node vetd cold/warm, the vetring
# ring healthy vs one-peer-down) to BENCH_vetd.json, and the streaming
# detection ingest benchmark (a full labeled-fleet replay through
# sentryd's HTTP stack) to BENCH_sentry.json, the multi-node sentry
# benchmark (a fleet replay through the sentring router, healthy vs
# one-peer-down) to BENCH_sentring.json, and the device-fleet
# benchmarks (population generation plus the 200-device market-weighted
# sweep at 1 and 4 workers) to BENCH_fleet.json — all at the repo root so
# throughput regressions show up as a diff, not an anecdote. Run from
# anywhere:
#
#     sh scripts/bench.sh
#     BENCHTIME=10x sh scripts/bench.sh       # steadier numbers
#     BENCHCOUNT=3 sh scripts/bench.sh        # min of 3 runs per benchmark
#     OUT=/tmp/b.json sh scripts/bench.sh     # static output elsewhere
#
# To regenerate the committed snapshots, use the same settings the
# verify.sh regression gate measures with, so the two sides compare
# like with like:
#
#     BENCHTIME=200ms BENCHCOUNT=3 sh scripts/bench.sh
#     OUT_VETD=/tmp/v.json sh scripts/bench.sh
#     OUT_SENTRY=/tmp/s.json sh scripts/bench.sh
#     OUT_SENTRING=/tmp/r.json sh scripts/bench.sh
#     OUT_FLEET=/tmp/f.json sh scripts/bench.sh
#
# Each benchmark entry records the go test line verbatim: iterations,
# ns/op, and every custom metric (apps/sec, %static-precision,
# %cache-hit, %replicated, failovers/op, ...). Absolute numbers are
# host-dependent; the committed files are snapshots, and the ratios —
# per-tier analysis cost, warm-vs-cold serving, healthy-vs-failover —
# are the part expected to stay comparable across machines.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
BENCHCOUNT="${BENCHCOUNT:-1}"
OUT="${OUT:-BENCH_static.json}"
OUT_VETD="${OUT_VETD:-BENCH_vetd.json}"
OUT_SENTRY="${OUT_SENTRY:-BENCH_sentry.json}"
OUT_SENTRING="${OUT_SENTRING:-BENCH_sentring.json}"
OUT_FLEET="${OUT_FLEET:-BENCH_fleet.json}"

# emit PATTERN SUITE OUTFILE — run the matching benchmarks and write the
# parsed results as JSON. With BENCHCOUNT > 1 each benchmark runs that
# many times and the entry with the lowest ns/op wins: the minimum is a
# stable lower bound on a shared host (scheduler noise only inflates a
# run, never deflates it), which is what lets verify.sh hold a tight
# regression tolerance against the committed snapshots.
emit() {
	TMP="$(mktemp)"
	go test -run '^$' -bench "$1" -benchtime "$BENCHTIME" -count "$BENCHCOUNT" . | tee "$TMP"
	awk -v go_version="$(go env GOVERSION)" -v benchtime="$BENCHTIME" -v benchcount="$BENCHCOUNT" -v suite="$2" '
	/^Benchmark/ {
		name = $1
		sub(/-[0-9]+$/, "", name)
		entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
		metrics = ""
		for (i = 5; i < NF; i += 2) {
			metrics = metrics (metrics == "" ? "" : ", ") "\"" $(i + 1) "\": " $i
		}
		if (metrics != "") entry = entry ", \"metrics\": {" metrics "}"
		if (!(name in ns)) { order[n++] = name }
		if (!(name in ns) || $3 + 0 < ns[name]) { ns[name] = $3 + 0; entries[name] = entry "}" }
	}
	/^cpu:/ { cpu = $0; sub(/^cpu: /, "", cpu) }
	END {
		printf "{\n"
		printf "  \"suite\": \"%s\",\n", suite
		printf "  \"go\": \"%s\",\n", go_version
		printf "  \"cpu\": \"%s\",\n", cpu
		printf "  \"benchtime\": \"%s\",\n", benchtime
		printf "  \"benchcount\": %d,\n", benchcount
		printf "  \"benchmarks\": [\n"
		for (i = 0; i < n; i++) printf "%s%s\n", entries[order[i]], (i < n - 1 ? "," : "")
		printf "  ]\n}\n"
	}
	' "$TMP" >"$3"
	rm -f "$TMP"
	echo "bench: wrote $3"
}

emit 'CorpusScan$|AnalyzeTier' static "$OUT"
emit 'VetServe$|RingServe$' vetd "$OUT_VETD"
emit 'SentryIngest$' sentry "$OUT_SENTRY"
emit 'RouterIngest$' sentring "$OUT_SENTRING"
emit 'FleetGenerate$|FleetSweep$' fleet "$OUT_FLEET"
