#!/bin/sh
# bench.sh — benchmark emitter for the static-analysis pipeline. Runs the
# corpus-scan throughput benchmark and the per-tier analyzer benchmarks,
# then writes the parsed results to BENCH_static.json at the repo root so
# throughput regressions show up as a diff, not an anecdote. Run from
# anywhere:
#
#     sh scripts/bench.sh
#     BENCHTIME=10x sh scripts/bench.sh     # steadier numbers
#     OUT=/tmp/b.json sh scripts/bench.sh   # write elsewhere
#
# Each benchmark entry records the go test line verbatim: iterations,
# ns/op, and every custom metric (apps/sec, %static-precision,
# flagged-apps). Absolute numbers are host-dependent; the committed file
# is a snapshot, and the per-tier *ratios* are the part expected to stay
# comparable across machines.
set -eu

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1x}"
OUT="${OUT:-BENCH_static.json}"
TMP="$(mktemp)"
trap 'rm -f "$TMP"' EXIT

go test -run '^$' -bench 'CorpusScan$|AnalyzeTier' -benchtime "$BENCHTIME" . | tee "$TMP"

awk -v go_version="$(go env GOVERSION)" -v benchtime="$BENCHTIME" '
/^Benchmark/ {
	name = $1
	sub(/-[0-9]+$/, "", name)
	entry = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
	metrics = ""
	for (i = 5; i < NF; i += 2) {
		metrics = metrics (metrics == "" ? "" : ", ") "\"" $(i + 1) "\": " $i
	}
	if (metrics != "") entry = entry ", \"metrics\": {" metrics "}"
	entries[n++] = entry "}"
}
/^cpu:/ { cpu = $0; sub(/^cpu: /, "", cpu) }
END {
	printf "{\n"
	printf "  \"suite\": \"static\",\n"
	printf "  \"go\": \"%s\",\n", go_version
	printf "  \"cpu\": \"%s\",\n", cpu
	printf "  \"benchtime\": \"%s\",\n", benchtime
	printf "  \"benchmarks\": [\n"
	for (i = 0; i < n; i++) printf "%s%s\n", entries[i], (i < n - 1 ? "," : "")
	printf "  ]\n}\n"
}
' "$TMP" >"$OUT"

echo "bench: wrote $OUT"
