// Package simlint implements a vet-style determinism and robustness pass
// for the simulation core. Inside internal/ packages, wall-clock reads
// (time.Now, time.Since) and the global math/rand generators are
// forbidden, because a single stray call makes week-long simulated runs
// unreproducible. Virtual time must come from internal/simclock and
// randomness from internal/simrand; those two packages are the exempt
// deterministic wrappers.
//
// Two robustness rules cover production (non-test) code only: time.Sleep
// blocks the OS thread instead of advancing virtual time, and a bare
// panic aborts an entire simulated run where an error return plus the
// invariant monitor (internal/invariant, which is exempt) would let the
// run complete and report.
//
// A third production-only rule guards the crash-safety layer: inside
// files implementing journals or checkpoints (base filename containing
// "journal" or "checkpoint"), os.WriteFile and ioutil.WriteFile are
// rejected — they neither append nor fsync, so a crash can truncate the
// very state the file exists to preserve. Crash-safe state must go
// through a fsynced append.
//
// The pass is built on the standard library's go/ast so it carries no
// dependency beyond the toolchain; cmd/simlint is the CLI driver and the
// package API lets tests run the pass in-process.
package simlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rule identifiers, one per forbidden construct.
const (
	RuleTimeNow   = "time-now"
	RuleTimeSince = "time-since"
	RuleMathRand  = "math-rand"
	RuleTimeSleep = "time-sleep"
	RulePanic     = "bare-panic"
	// RuleUnsyncedWrite guards the crash-safety layer: journal and
	// checkpoint files exist to survive a kill at any instant, and
	// os.WriteFile neither appends nor fsyncs — a crash mid-call can leave
	// the file truncated or the data in the page cache only.
	RuleUnsyncedWrite = "unsynced-write"
)

// panicExemptPackages may keep bare panics: the invariant monitor is the
// designated assertion layer, and its own internals are allowed to fail
// hard while everything else reports through it.
var panicExemptPackages = map[string]bool{
	"invariant": true,
}

// ExemptPackages are the deterministic wrappers themselves: they are the
// only internal/ packages allowed to touch the wall clock or seed global
// randomness.
var ExemptPackages = map[string]bool{
	"simrand":  true,
	"simclock": true,
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Msg, d.Rule)
}

// LintFile runs the determinism pass over one parsed file and returns its
// findings in source order.
func LintFile(fset *token.FileSet, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, rule, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(pos), Rule: rule, Msg: msg})
	}

	// Resolve which local names refer to the time package (handles
	// aliased imports) and whether time is dot-imported; flag math/rand
	// imports outright — any use of the package is a determinism leak.
	timeNames := map[string]bool{}
	writeFileNames := map[string]bool{} // local names of os / io/ioutil
	timeDot := false
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "time":
			switch {
			case imp.Name == nil:
				timeNames["time"] = true
			case imp.Name.Name == ".":
				timeDot = true
			case imp.Name.Name != "_":
				timeNames[imp.Name.Name] = true
			}
		case "os", "io/ioutil":
			switch {
			case imp.Name == nil:
				writeFileNames[filepath.Base(path)] = true
			case imp.Name.Name != "." && imp.Name.Name != "_":
				writeFileNames[imp.Name.Name] = true
			}
		case "math/rand", "math/rand/v2":
			report(imp.Pos(), RuleMathRand,
				fmt.Sprintf("import of %s in a simulation package; use internal/simrand", path))
		}
	}

	// The robustness rules (time.Sleep, bare panic) apply to production
	// simulation code only: tests may sleep or panic to probe behaviour,
	// and the invariant monitor is the designated assertion layer.
	filename := fset.Position(f.Pos()).Filename
	isTest := strings.HasSuffix(filename, "_test.go")
	panicExempt := isTest || panicExemptPackages[f.Name.Name]
	// The unsynced-write rule applies only to production files implementing
	// the crash-safe persistence layer, identified by filename.
	base := filepath.Base(filename)
	crashSafeFile := !isTest && (strings.Contains(base, "journal") || strings.Contains(base, "checkpoint"))

	forbidden := func(sel string) (rule, msg string, ok bool) {
		switch sel {
		case "Now":
			return RuleTimeNow, "call to time.Now reads the wall clock; use the simulation clock (internal/simclock)", true
		case "Since":
			return RuleTimeSince, "time.Since reads the wall clock via an implicit time.Now; compute durations from simulation timestamps", true
		case "Sleep":
			if isTest {
				return "", "", false
			}
			return RuleTimeSleep, "time.Sleep blocks the OS thread, not virtual time; schedule work on the simulation clock (internal/simclock)", true
		}
		return "", "", false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Flag both calls and method values (f := time.Now).
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if crashSafeFile && writeFileNames[id.Name] && n.Sel.Name == "WriteFile" {
				report(n.Sel.Pos(), RuleUnsyncedWrite,
					"os.WriteFile in a journal/checkpoint file neither appends nor fsyncs; crash-safe state must go through a fsynced append (O_APPEND + File.Sync)")
			}
			if !timeNames[id.Name] {
				return true
			}
			if rule, msg, ok := forbidden(n.Sel.Name); ok {
				report(n.Sel.Pos(), rule, msg)
			}
		case *ast.CallExpr:
			// Bare panic crashes a whole simulated run; production code
			// must return errors and let the invariant monitor record
			// breaches instead.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" && !panicExempt {
				report(id.Pos(), RulePanic,
					"bare panic aborts the whole simulated run; return an error and record breaches via internal/invariant")
			}
			// Dot-imported time: Now()/Since()/Sleep() appear as bare
			// idents.
			if !timeDot {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if rule, msg, ok := forbidden(id.Name); ok {
					report(id.Pos(), rule, msg)
				}
			}
		}
		return true
	})
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	return diags
}

// LintSource parses src (attributed to filename) and lints it; it exists
// so tests and tools can lint in-memory code.
func LintSource(filename, src string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return LintFile(fset, f), nil
}

// LintDir walks a directory tree of internal simulation packages and lints
// every .go file (tests included — a nondeterministic test is still a
// flaky test), skipping exempt packages and testdata directories.
func LintDir(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if ExemptPackages[d.Name()] || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("simlint: parse %s: %w", path, err)
		}
		diags = append(diags, LintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}
