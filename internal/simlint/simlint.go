// Package simlint implements a vet-style determinism and robustness pass
// for the simulation core. Inside internal/ packages, wall-clock reads
// (time.Now, time.Since) and the global math/rand generators are
// forbidden, because a single stray call makes week-long simulated runs
// unreproducible. Virtual time must come from internal/simclock and
// randomness from internal/simrand; those two packages are the exempt
// deterministic wrappers.
//
// Two robustness rules cover production (non-test) code only: time.Sleep
// blocks the OS thread instead of advancing virtual time, and a bare
// panic aborts an entire simulated run where an error return plus the
// invariant monitor (internal/invariant, which is exempt) would let the
// run complete and report.
//
// A third production-only rule guards the crash-safety layer: inside
// files implementing journals or checkpoints (base filename containing
// "journal" or "checkpoint"), os.WriteFile and ioutil.WriteFile are
// rejected — they neither append nor fsync, so a crash can truncate the
// very state the file exists to preserve. Crash-safe state must go
// through a fsynced append.
//
// Two concurrency rules back the parallel trial scheduler's determinism
// contract. The bare go keyword is forbidden everywhere in internal/,
// tests included, except inside internal/experiment/sched — the managed
// worker pool all concurrent work must go through. And a trial closure
// passed to NewTrial may not capture a simrand source that is also drawn
// outside the closure: whichever worker runs first would advance the
// shared stream, making results depend on scheduling order.
//
// A map-iteration rule rounds out the determinism set: ranging over a
// map while appending to a slice or writing output emits the aggregate
// in Go's per-run-randomized iteration order, the kind of bug that only
// shows up as an occasional golden-file diff. The collect-keys-then-sort
// idiom — appending inside the loop and sorting the destination after it
// — is recognized and allowed.
//
// Serving packages (ServingPackages — currently internal/vetd, the
// scan-before-install vetting service, internal/vetring, the verdict
// ring router, internal/sentry, the streaming detection service, and
// internal/sentring, the detection ingest router) are exempt from the
// determinism rules only: they
// run on the wall clock by design, measuring real latencies, enforcing
// real deadlines and owning their own goroutines. The robustness rules
// and the math-rand ban still bind them, and the exemption is matched
// on the package clause, never the directory.
//
// A naked-http-client rule covers every production file that speaks
// HTTP: http.Get/Post/PostForm/Head ride the shared default client,
// and an http.Client composite literal without a Timeout field hangs
// forever on a stuck peer — in a ring where peers are SIGKILLed on
// purpose, an unbounded client turns one dead node into a wedged
// caller. Serving packages are exempt (vetring's fault-injecting
// transport builds its peer clients deliberately, with explicit
// timeouts the lint pass cannot type-check), tests are not covered,
// and command binaries (package main) get this rule and no other:
// a CLI legitimately reads the wall clock, but its HTTP calls must
// still carry deadlines.
//
// The pass is built on the standard library's go/ast so it carries no
// dependency beyond the toolchain; cmd/simlint is the CLI driver and the
// package API lets tests run the pass in-process.
package simlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rule identifiers, one per forbidden construct.
const (
	RuleTimeNow   = "time-now"
	RuleTimeSince = "time-since"
	RuleMathRand  = "math-rand"
	RuleTimeSleep = "time-sleep"
	RulePanic     = "bare-panic"
	// RuleUnsyncedWrite guards the crash-safety layer: journal and
	// checkpoint files exist to survive a kill at any instant, and
	// os.WriteFile neither appends nor fsyncs — a crash mid-call can leave
	// the file truncated or the data in the page cache only.
	RuleUnsyncedWrite = "unsynced-write"
	// RuleBareGo forbids the bare go keyword everywhere in internal/
	// (tests included): an unmanaged goroutine escapes the deterministic
	// trial scheduler, so its side effects land in seed-dependent order.
	// internal/experiment/sched is the one exempt package — it is the
	// managed pool everything else must go through.
	RuleBareGo = "bare-go"
	// RuleSharedSource catches the classic parallel-determinism bug: a
	// trial closure capturing a *simrand.Source that is also drawn from
	// outside the closure. Whichever worker runs the trial first advances
	// the shared stream, so results depend on scheduling. Per-trial
	// streams must be derived up front in Trials and the closure must
	// capture only its own stream.
	RuleSharedSource = "shared-source-capture"
	// RuleMapRangeOrder flags ranging over a map while appending to a
	// slice or writing output in the loop body: Go randomizes map
	// iteration order per run, so the aggregate comes out shuffled — a
	// report that diffs against its golden only sometimes, a checkpoint
	// that hashes differently on resume. The collect-keys-then-sort idiom
	// is exempt: an append whose destination is passed to a sort.* call
	// after the loop is order-insensitive by construction.
	RuleMapRangeOrder = "map-range-order"
	// RuleNakedHTTP flags HTTP calls with no deadline: the http.Get/Post
	// convenience functions use the shared zero-timeout default client,
	// and an http.Client literal without a Timeout field waits forever on
	// a peer that stops answering — precisely the failure the verdict
	// ring injects on purpose. Production code must build clients with an
	// explicit Timeout (and, on ring paths, the fault-aware transport).
	RuleNakedHTTP = "naked-http-client"
)

// goExemptPackages may spawn goroutines: the trial scheduler is the
// designated concurrency layer, and everything else submits work to it.
var goExemptPackages = map[string]bool{
	"sched": true,
}

// ServingPackages is the explicit allowlist of wall-clock serving
// packages: long-running network services that answer real traffic on
// real time, outside the simulation clock. They are exempt from the
// determinism rules only — time-now, time-since, time-sleep, bare-go and
// shared-source-capture — because a serving path legitimately measures
// wall-clock latency, enforces real deadlines and runs its own goroutine
// pool. The robustness rules (bare-panic, unsynced-write) and the
// math-rand ban still apply: a server that panics drops every in-flight
// request, and any randomness it needs must stay seeded through
// internal/simrand so served verdicts remain reproducible.
//
// The exemption is package-scoped (matched on the file's package clause,
// not its directory), so a simulation file cannot opt out by moving next
// to serving code.
var ServingPackages = map[string]bool{
	"vetd":    true,
	"vetring": true,
	// sentry serves the streaming fleet-scale detector: real HTTP ingest
	// on real time, but every detection decision is a pure function of
	// the device's own record stream (timestamps on the wire are
	// virtual), so the exemption covers only the serving shell.
	"sentry": true,
	// sentring routes that detector's ingest across a ring of sentryd
	// peers: health probes, retry backoff and circuit-breaker cooldowns
	// are wall-clock by design, while batch placement stays a pure
	// function of the device ID.
	"sentring": true,
}

// panicExemptPackages may keep bare panics: the invariant monitor is the
// designated assertion layer, and its own internals are allowed to fail
// hard while everything else reports through it.
var panicExemptPackages = map[string]bool{
	"invariant": true,
}

// ExemptPackages are the deterministic wrappers themselves: they are the
// only internal/ packages allowed to touch the wall clock or seed global
// randomness.
var ExemptPackages = map[string]bool{
	"simrand":  true,
	"simclock": true,
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Msg, d.Rule)
}

// LintFile runs the determinism pass over one parsed file and returns its
// findings in source order.
func LintFile(fset *token.FileSet, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, rule, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(pos), Rule: rule, Msg: msg})
	}

	filename := fset.Position(f.Pos()).Filename
	isTest := strings.HasSuffix(filename, "_test.go")

	// Command binaries (package main) live on the wall clock by
	// definition — flags, signal loops, progress output — so the
	// simulation rules do not apply. Their HTTP calls must still carry
	// deadlines: naked-http-client is the one rule they keep.
	if f.Name.Name == "main" {
		if !isTest {
			lintNakedHTTP(f, report)
		}
		sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
		return diags
	}

	// Resolve which local names refer to the time package (handles
	// aliased imports) and whether time is dot-imported; flag math/rand
	// imports outright — any use of the package is a determinism leak.
	timeNames := map[string]bool{}
	writeFileNames := map[string]bool{} // local names of os / io/ioutil
	timeDot := false
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "time":
			switch {
			case imp.Name == nil:
				timeNames["time"] = true
			case imp.Name.Name == ".":
				timeDot = true
			case imp.Name.Name != "_":
				timeNames[imp.Name.Name] = true
			}
		case "os", "io/ioutil":
			switch {
			case imp.Name == nil:
				writeFileNames[filepath.Base(path)] = true
			case imp.Name.Name != "." && imp.Name.Name != "_":
				writeFileNames[imp.Name.Name] = true
			}
		case "math/rand", "math/rand/v2":
			report(imp.Pos(), RuleMathRand,
				fmt.Sprintf("import of %s in a simulation package; use internal/simrand", path))
		}
	}

	// The robustness rules (time.Sleep, bare panic) apply to production
	// simulation code only: tests may sleep or panic to probe behaviour,
	// and the invariant monitor is the designated assertion layer.
	panicExempt := isTest || panicExemptPackages[f.Name.Name]
	// Serving exemption, scoped by package clause; an external test
	// package (pkg_test) inherits its subject package's serving status.
	serving := ServingPackages[strings.TrimSuffix(f.Name.Name, "_test")]
	// The unsynced-write rule applies only to production files implementing
	// the crash-safe persistence layer, identified by filename.
	base := filepath.Base(filename)
	crashSafeFile := !isTest && (strings.Contains(base, "journal") || strings.Contains(base, "checkpoint"))

	forbidden := func(sel string) (rule, msg string, ok bool) {
		if serving {
			// Wall-clock serving packages are exempt from every time rule.
			return "", "", false
		}
		switch sel {
		case "Now":
			return RuleTimeNow, "call to time.Now reads the wall clock; use the simulation clock (internal/simclock)", true
		case "Since":
			return RuleTimeSince, "time.Since reads the wall clock via an implicit time.Now; compute durations from simulation timestamps", true
		case "Sleep":
			if isTest {
				return "", "", false
			}
			return RuleTimeSleep, "time.Sleep blocks the OS thread, not virtual time; schedule work on the simulation clock (internal/simclock)", true
		}
		return "", "", false
	}

	goExempt := goExemptPackages[f.Name.Name] || serving

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			if !goExempt {
				report(n.Pos(), RuleBareGo,
					"bare go statement spawns an unmanaged goroutine; run concurrent work through internal/experiment/sched")
			}
		case *ast.SelectorExpr:
			// Flag both calls and method values (f := time.Now).
			id, ok := n.X.(*ast.Ident)
			if !ok {
				return true
			}
			if crashSafeFile && writeFileNames[id.Name] && n.Sel.Name == "WriteFile" {
				report(n.Sel.Pos(), RuleUnsyncedWrite,
					"os.WriteFile in a journal/checkpoint file neither appends nor fsyncs; crash-safe state must go through a fsynced append (O_APPEND + File.Sync)")
			}
			if !timeNames[id.Name] {
				return true
			}
			if rule, msg, ok := forbidden(n.Sel.Name); ok {
				report(n.Sel.Pos(), rule, msg)
			}
		case *ast.CallExpr:
			// Bare panic crashes a whole simulated run; production code
			// must return errors and let the invariant monitor record
			// breaches instead.
			if id, ok := n.Fun.(*ast.Ident); ok && id.Name == "panic" && !panicExempt {
				report(id.Pos(), RulePanic,
					"bare panic aborts the whole simulated run; return an error and record breaches via internal/invariant")
			}
			// Dot-imported time: Now()/Since()/Sleep() appear as bare
			// idents.
			if !timeDot {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if rule, msg, ok := forbidden(id.Name); ok {
					report(id.Pos(), rule, msg)
				}
			}
		}
		return true
	})
	if !goExempt {
		lintSharedSources(f, report)
	}
	if !serving {
		lintMapRangeOrder(f, report)
	}
	if !isTest && !serving {
		lintNakedHTTP(f, report)
	}

	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	return diags
}

// isSourceExpr reports whether e constructs or derives a simrand stream:
// simrand.New(...), x.Derive(...), or x.DeriveIndexed(...). The pass has
// no type information, so the Derive method names are treated as
// distinctive — they exist nowhere else in the tree.
func isSourceExpr(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	switch sel.Sel.Name {
	case "Derive", "DeriveIndexed":
		return true
	case "New":
		id, ok := sel.X.(*ast.Ident)
		return ok && id.Name == "simrand"
	}
	return false
}

// isNewTrialFun reports whether fun names the experiment trial
// constructor, unwrapping a generic instantiation (NewTrial[T]) and a
// package qualifier (experiment.NewTrial).
func isNewTrialFun(fun ast.Expr) bool {
	switch fn := fun.(type) {
	case *ast.IndexExpr:
		return isNewTrialFun(fn.X)
	case *ast.IndexListExpr:
		return isNewTrialFun(fn.X)
	case *ast.Ident:
		return fn.Name == "NewTrial"
	case *ast.SelectorExpr:
		return fn.Sel.Name == "NewTrial"
	}
	return false
}

// lintSharedSources implements RuleSharedSource: for every variable
// assigned from a simrand constructor or Derive call, a use inside a
// NewTrial closure is only legal if the variable has no other use outside
// that closure (its defining assignment aside). A variable drawn from both
// inside and outside trial closures is a scheduling-order dependence.
func lintSharedSources(f *ast.File, report func(pos token.Pos, rule, msg string)) {
	// Pass 1: source variables and the positions of assignment targets
	// (excluded from the use scan below).
	sourceVars := map[string]bool{}
	assignPos := map[token.Pos]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, lhs := range as.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				assignPos[id.Pos()] = true
			}
		}
		if len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			if !isSourceExpr(rhs) {
				continue
			}
			if id, ok := as.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
				sourceVars[id.Name] = true
			}
		}
		return true
	})
	if len(sourceVars) == 0 {
		return
	}

	// Pass 2: the spans of closure literals passed to NewTrial, and the
	// positions of selector field/method names (x.Derive's "Derive" is an
	// ident too, but never a variable use).
	type span struct{ lo, hi token.Pos }
	var closures []span
	selPos := map[token.Pos]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			selPos[n.Sel.Pos()] = true
		case *ast.CallExpr:
			if !isNewTrialFun(n.Fun) {
				return true
			}
			for _, arg := range n.Args {
				if fl, ok := arg.(*ast.FuncLit); ok {
					closures = append(closures, span{fl.Pos(), fl.End()})
				}
			}
		}
		return true
	})
	if len(closures) == 0 {
		return
	}

	// Pass 3: classify every remaining use of each source variable.
	type uses struct {
		firstInside token.Pos
		inside      bool
		outside     bool
	}
	byVar := map[string]*uses{}
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || !sourceVars[id.Name] || assignPos[id.Pos()] || selPos[id.Pos()] {
			return true
		}
		u := byVar[id.Name]
		if u == nil {
			u = &uses{}
			byVar[id.Name] = u
		}
		in := false
		for _, c := range closures {
			if id.Pos() >= c.lo && id.Pos() < c.hi {
				in = true
				break
			}
		}
		if in {
			if !u.inside {
				u.firstInside = id.Pos()
			}
			u.inside = true
		} else {
			u.outside = true
		}
		return true
	})

	var names []string
	for name, u := range byVar {
		if u.inside && u.outside {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		report(byVar[name].firstInside, RuleSharedSource,
			fmt.Sprintf("trial closure captures simrand source %q that is also drawn outside the closure; derive a per-trial stream in Trials and capture only that", name))
	}
}

// mapRangeWriters are the call names treated as order-sensitive output
// when invoked inside a map range body: stream writers and the fmt print
// family. Anything they emit lands in map-iteration order.
var mapRangeWriters = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// lintMapRangeOrder implements RuleMapRangeOrder. The pass has no type
// information, so map values are tracked by name: variables made with
// make(map...), assigned a map composite literal, declared with a map
// type (parameters and results included), plus struct fields of map type
// declared in the same file for ranges of the form `range x.field`.
// Inside a range over such a value, two sinks are order-sensitive: an
// append (unless its destination is sorted after the loop — the
// collect-keys-then-sort idiom) and a write call from mapRangeWriters.
func lintMapRangeOrder(f *ast.File, report func(pos token.Pos, rule, msg string)) {
	isMapExpr := func(e ast.Expr) bool {
		switch e := e.(type) {
		case *ast.CallExpr:
			if id, ok := e.Fun.(*ast.Ident); ok && id.Name == "make" && len(e.Args) > 0 {
				_, isMap := e.Args[0].(*ast.MapType)
				return isMap
			}
		case *ast.CompositeLit:
			_, isMap := e.Type.(*ast.MapType)
			return isMap
		}
		return false
	}
	addNames := func(names []*ast.Ident, set map[string]bool) {
		for _, id := range names {
			if id.Name != "_" {
				set[id.Name] = true
			}
		}
	}

	// Pass 1: names known to hold maps, and struct fields of map type.
	mapVars := map[string]bool{}
	mapFields := map[string]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, rhs := range n.Rhs {
				if isMapExpr(rhs) {
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name != "_" {
						mapVars[id.Name] = true
					}
				}
			}
		case *ast.ValueSpec:
			if _, ok := n.Type.(*ast.MapType); ok {
				addNames(n.Names, mapVars)
				return true
			}
			for i, v := range n.Values {
				if isMapExpr(v) && i < len(n.Names) {
					mapVars[n.Names[i].Name] = true
				}
			}
		case *ast.FuncType:
			for _, fl := range []*ast.FieldList{n.Params, n.Results} {
				if fl == nil {
					continue
				}
				for _, fd := range fl.List {
					if _, ok := fd.Type.(*ast.MapType); ok {
						addNames(fd.Names, mapVars)
					}
				}
			}
		case *ast.StructType:
			for _, fd := range n.Fields.List {
				if _, ok := fd.Type.(*ast.MapType); ok {
					addNames(fd.Names, mapFields)
				}
			}
		}
		return true
	})
	if len(mapVars) == 0 && len(mapFields) == 0 {
		return
	}

	// Pass 2: sort.* calls and every ident mentioned in their arguments.
	// An append destination that reaches one of these after its loop is
	// order-insensitive.
	type sortCall struct {
		pos   token.Pos
		names map[string]bool
	}
	var sortCalls []sortCall
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "sort" {
			return true
		}
		names := map[string]bool{}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					names[id.Name] = true
				}
				return true
			})
		}
		sortCalls = append(sortCalls, sortCall{call.Pos(), names})
		return true
	})
	sortedAfter := func(name string, end token.Pos) bool {
		for _, sc := range sortCalls {
			if sc.pos >= end && sc.names[name] {
				return true
			}
		}
		return false
	}

	// Pass 3: scan each range over a known map for order-sensitive sinks.
	ast.Inspect(f, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		var subject string
		switch x := rng.X.(type) {
		case *ast.Ident:
			if mapVars[x.Name] {
				subject = x.Name
			}
		case *ast.SelectorExpr:
			if mapFields[x.Sel.Name] {
				subject = x.Sel.Name
			}
		}
		if subject == "" {
			return true
		}
		var hazardPos token.Pos
		var hazard string
		note := func(pos token.Pos, what string) {
			if hazardPos == token.NoPos {
				hazardPos, hazard = pos, what
			}
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.AssignStmt:
				if len(m.Lhs) != len(m.Rhs) {
					return true
				}
				for i, rhs := range m.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok {
						continue
					}
					if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "append" {
						continue
					}
					if id, ok := m.Lhs[i].(*ast.Ident); ok && sortedAfter(id.Name, rng.End()) {
						continue
					}
					note(call.Pos(), "appends in map-iteration order")
				}
			case *ast.CallExpr:
				if sel, ok := m.Fun.(*ast.SelectorExpr); ok && mapRangeWriters[sel.Sel.Name] {
					note(sel.Sel.Pos(), fmt.Sprintf("writes output (%s) in map-iteration order", sel.Sel.Name))
				}
			}
			return true
		})
		if hazardPos != token.NoPos {
			report(hazardPos, RuleMapRangeOrder,
				fmt.Sprintf("range over map %q %s, which Go randomizes per run; collect the keys, sort, then iterate (or sort the result after the loop)", subject, hazard))
		}
		return true
	})
}

// nakedHTTPFuncs are the net/http convenience functions that ride the
// shared default client — zero timeout, no way to bound a stuck peer.
var nakedHTTPFuncs = map[string]bool{
	"Get": true, "Post": true, "PostForm": true, "Head": true,
}

// lintNakedHTTP implements RuleNakedHTTP: calls to the default-client
// convenience functions (http.Get and friends) and http.Client
// composite literals lacking a Timeout field. The pass has no type
// information, so the net/http import's local name anchors both checks;
// a file that does not import net/http cannot be flagged.
func lintNakedHTTP(f *ast.File, report func(pos token.Pos, rule, msg string)) {
	httpNames := map[string]bool{}
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil || path != "net/http" {
			continue
		}
		switch {
		case imp.Name == nil:
			httpNames["http"] = true
		case imp.Name.Name != "." && imp.Name.Name != "_":
			httpNames[imp.Name.Name] = true
		}
	}
	if len(httpNames) == 0 {
		return
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !httpNames[id.Name] || !nakedHTTPFuncs[sel.Sel.Name] {
				return true
			}
			report(sel.Sel.Pos(), RuleNakedHTTP,
				fmt.Sprintf("http.%s uses the shared default client, which has no timeout; build an http.Client with an explicit Timeout so a dead peer cannot wedge the caller", sel.Sel.Name))
		case *ast.CompositeLit:
			sel, ok := n.Type.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			id, ok := sel.X.(*ast.Ident)
			if !ok || !httpNames[id.Name] || sel.Sel.Name != "Client" {
				return true
			}
			for _, el := range n.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					if k, ok := kv.Key.(*ast.Ident); ok && k.Name == "Timeout" {
						return true
					}
				}
			}
			report(n.Pos(), RuleNakedHTTP,
				"http.Client literal without a Timeout field waits forever on a stuck peer; set an explicit Timeout")
		}
		return true
	})
}

// LintSource parses src (attributed to filename) and lints it; it exists
// so tests and tools can lint in-memory code.
func LintSource(filename, src string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return LintFile(fset, f), nil
}

// LintDir walks a directory tree of internal simulation packages and lints
// every .go file (tests included — a nondeterministic test is still a
// flaky test), skipping exempt packages and testdata directories.
func LintDir(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if ExemptPackages[d.Name()] || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("simlint: parse %s: %w", path, err)
		}
		diags = append(diags, LintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}
