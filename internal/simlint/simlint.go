// Package simlint implements a vet-style determinism pass for the
// simulation core: inside internal/ packages, wall-clock reads
// (time.Now, time.Since) and the global math/rand generators are
// forbidden, because a single stray call makes week-long simulated runs
// unreproducible. Virtual time must come from internal/simclock and
// randomness from internal/simrand; those two packages are the exempt
// deterministic wrappers.
//
// The pass is built on the standard library's go/ast so it carries no
// dependency beyond the toolchain; cmd/simlint is the CLI driver and the
// package API lets tests run the pass in-process.
package simlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Rule identifiers, one per forbidden construct.
const (
	RuleTimeNow   = "time-now"
	RuleTimeSince = "time-since"
	RuleMathRand  = "math-rand"
)

// ExemptPackages are the deterministic wrappers themselves: they are the
// only internal/ packages allowed to touch the wall clock or seed global
// randomness.
var ExemptPackages = map[string]bool{
	"simrand":  true,
	"simclock": true,
}

// Diagnostic is one lint finding.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Msg, d.Rule)
}

// LintFile runs the determinism pass over one parsed file and returns its
// findings in source order.
func LintFile(fset *token.FileSet, f *ast.File) []Diagnostic {
	var diags []Diagnostic
	report := func(pos token.Pos, rule, msg string) {
		diags = append(diags, Diagnostic{Pos: fset.Position(pos), Rule: rule, Msg: msg})
	}

	// Resolve which local names refer to the time package (handles
	// aliased imports) and whether time is dot-imported; flag math/rand
	// imports outright — any use of the package is a determinism leak.
	timeNames := map[string]bool{}
	timeDot := false
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		switch path {
		case "time":
			switch {
			case imp.Name == nil:
				timeNames["time"] = true
			case imp.Name.Name == ".":
				timeDot = true
			case imp.Name.Name != "_":
				timeNames[imp.Name.Name] = true
			}
		case "math/rand", "math/rand/v2":
			report(imp.Pos(), RuleMathRand,
				fmt.Sprintf("import of %s in a simulation package; use internal/simrand", path))
		}
	}

	forbidden := func(sel string) (rule, msg string, ok bool) {
		switch sel {
		case "Now":
			return RuleTimeNow, "call to time.Now reads the wall clock; use the simulation clock (internal/simclock)", true
		case "Since":
			return RuleTimeSince, "time.Since reads the wall clock via an implicit time.Now; compute durations from simulation timestamps", true
		}
		return "", "", false
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			// Flag both calls and method values (f := time.Now).
			id, ok := n.X.(*ast.Ident)
			if !ok || !timeNames[id.Name] {
				return true
			}
			if rule, msg, ok := forbidden(n.Sel.Name); ok {
				report(n.Sel.Pos(), rule, msg)
			}
		case *ast.CallExpr:
			// Dot-imported time: Now()/Since() appear as bare idents.
			if !timeDot {
				return true
			}
			if id, ok := n.Fun.(*ast.Ident); ok {
				if rule, msg, ok := forbidden(id.Name); ok {
					report(id.Pos(), rule, msg)
				}
			}
		}
		return true
	})
	sort.SliceStable(diags, func(i, j int) bool { return diags[i].Pos.Offset < diags[j].Pos.Offset })
	return diags
}

// LintSource parses src (attributed to filename) and lints it; it exists
// so tests and tools can lint in-memory code.
func LintSource(filename, src string) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	return LintFile(fset, f), nil
}

// LintDir walks a directory tree of internal simulation packages and lints
// every .go file (tests included — a nondeterministic test is still a
// flaky test), skipping exempt packages and testdata directories.
func LintDir(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			if ExemptPackages[d.Name()] || d.Name() == "testdata" {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
		if err != nil {
			return fmt.Errorf("simlint: parse %s: %w", path, err)
		}
		diags = append(diags, LintFile(fset, f)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return diags, nil
}
