package simlint

import (
	"fmt"
	"strings"
	"testing"
)

func lint(t *testing.T, src string) []Diagnostic {
	t.Helper()
	diags, err := LintSource("fixture.go", src)
	if err != nil {
		t.Fatalf("LintSource: %v", err)
	}
	return diags
}

func rules(diags []Diagnostic) []string {
	out := make([]string, len(diags))
	for i, d := range diags {
		out[i] = d.Rule
	}
	return out
}

func TestFlagsTimeNow(t *testing.T) {
	diags := lint(t, `package p
import "time"
func f() time.Time { return time.Now() }
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeNow {
		t.Fatalf("diags = %v, want one %s", diags, RuleTimeNow)
	}
	if diags[0].Pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", diags[0].Pos.Line)
	}
}

func TestFlagsTimeSince(t *testing.T) {
	diags := lint(t, `package p
import "time"
func f(t0 time.Time) time.Duration { return time.Since(t0) }
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeSince {
		t.Fatalf("diags = %v, want one %s", diags, RuleTimeSince)
	}
}

func TestFlagsAliasedImport(t *testing.T) {
	diags := lint(t, `package p
import wall "time"
func f() wall.Time { return wall.Now() }
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeNow {
		t.Fatalf("aliased time.Now not flagged: %v", diags)
	}
}

func TestFlagsDotImport(t *testing.T) {
	diags := lint(t, `package p
import . "time"
func f() Time { return Now() }
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeNow {
		t.Fatalf("dot-imported Now not flagged: %v", diags)
	}
}

func TestFlagsMethodValue(t *testing.T) {
	diags := lint(t, `package p
import "time"
var clock = time.Now
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeNow {
		t.Fatalf("time.Now method value not flagged: %v", diags)
	}
}

func TestFlagsMathRandImports(t *testing.T) {
	diags := lint(t, `package p
import (
	"math/rand"
	r2 "math/rand/v2"
)
func f() int { return rand.Int() + r2.Int() }
`)
	got := rules(diags)
	if len(got) != 2 || got[0] != RuleMathRand || got[1] != RuleMathRand {
		t.Fatalf("rules = %v, want two %s", got, RuleMathRand)
	}
}

func TestAllowsDeterministicCode(t *testing.T) {
	diags := lint(t, `package p
import "time"
// Durations and explicit timestamps are fine; only wall-clock reads are not.
func f(d time.Duration, a, b time.Time) time.Duration { return b.Sub(a) + d*2 }
`)
	if len(diags) != 0 {
		t.Fatalf("benign time use flagged: %v", diags)
	}
}

func TestAllowsUnrelatedNowIdent(t *testing.T) {
	// A locally defined Now (no dot import of time) must not be flagged.
	diags := lint(t, `package p
func Now() int { return 42 }
func f() int { return Now() }
`)
	if len(diags) != 0 {
		t.Fatalf("local Now() flagged: %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	diags := lint(t, `package p
import "time"
var t0 = time.Now()
`)
	if len(diags) != 1 {
		t.Fatalf("diags = %v", diags)
	}
	s := diags[0].String()
	for _, want := range []string{"fixture.go:3", "simclock", RuleTimeNow} {
		if !strings.Contains(s, want) {
			t.Errorf("rendering %q missing %q", s, want)
		}
	}
}

// TestRepoInternalIsClean is the self-check the satellite asks for: the
// repo's own internal/ tree must stay free of wall-clock and global-rand
// nondeterminism (exempting the simrand/simclock wrappers themselves).
func TestRepoInternalIsClean(t *testing.T) {
	diags, err := LintDir("..")
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	for _, d := range diags {
		t.Errorf("determinism violation: %s", d)
	}
}

// TestFleetInDeterminismScope pins the fleet generator's lint posture:
// the package holds no exemption of any kind — population generation is
// a pure simulation-side function of (size, seed), so every determinism
// and robustness rule applies — and its tree lints clean.
func TestFleetInDeterminismScope(t *testing.T) {
	for name, m := range map[string]map[string]bool{
		"ServingPackages":     ServingPackages,
		"ExemptPackages":      ExemptPackages,
		"goExemptPackages":    goExemptPackages,
		"panicExemptPackages": panicExemptPackages,
	} {
		if m["fleet"] {
			t.Errorf("package fleet must not be in %s", name)
		}
	}
	diags, err := LintDir("../fleet")
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	for _, d := range diags {
		t.Errorf("determinism violation in internal/fleet: %s", d)
	}
}

func TestFlagsTimeSleep(t *testing.T) {
	diags := lint(t, `package p
import "time"
func f() { time.Sleep(time.Second) }
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeSleep {
		t.Fatalf("diags = %v, want one %s", diags, RuleTimeSleep)
	}
}

func TestFlagsBarePanic(t *testing.T) {
	diags := lint(t, `package p
func f(x int) {
	if x < 0 {
		panic("negative")
	}
}
`)
	if len(diags) != 1 || diags[0].Rule != RulePanic {
		t.Fatalf("diags = %v, want one %s", diags, RulePanic)
	}
	if diags[0].Pos.Line != 4 {
		t.Errorf("finding at line %d, want 4", diags[0].Pos.Line)
	}
}

func TestSleepAndPanicAllowedInTestFiles(t *testing.T) {
	diags, err := LintSource("fixture_test.go", `package p
import "time"
func f() {
	time.Sleep(time.Millisecond)
	panic("test probes may fail hard")
}
`)
	if err != nil {
		t.Fatalf("LintSource: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("test-file sleep/panic flagged: %v", diags)
	}
}

func TestPanicAllowedInInvariantPackage(t *testing.T) {
	diags := lint(t, `package invariant
func f() { panic("assertion layer") }
`)
	if len(diags) != 0 {
		t.Fatalf("invariant-package panic flagged: %v", diags)
	}
	// The wall-clock rules still apply there.
	diags = lint(t, `package invariant
import "time"
var t0 = time.Now()
`)
	if len(diags) != 1 || diags[0].Rule != RuleTimeNow {
		t.Fatalf("invariant package escaped the determinism rules: %v", diags)
	}
}

func TestRecoverNotFlagged(t *testing.T) {
	diags := lint(t, `package p
func f() (err error) {
	defer func() { _ = recover() }()
	return nil
}
`)
	if len(diags) != 0 {
		t.Fatalf("recover flagged: %v", diags)
	}
}

func TestLintDirSkipsExemptPackages(t *testing.T) {
	// simrand legitimately builds on math/rand sources; the repo-wide pass
	// (previous test) only stays clean because exempt directories are
	// skipped during the walk.
	diags, err := LintDir("../simrand")
	if err != nil {
		t.Fatalf("LintDir(simrand): %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("exempt package produced findings: %v", diags)
	}
}

func TestFlagsBareGo(t *testing.T) {
	diags := lint(t, `package p
func f(ch chan int) {
	go func() { ch <- 1 }()
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleBareGo {
		t.Fatalf("diags = %v, want one %s", diags, RuleBareGo)
	}
	if diags[0].Pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", diags[0].Pos.Line)
	}
}

func TestFlagsBareGoInTestFiles(t *testing.T) {
	// Unlike sleep/panic, goroutines are forbidden in tests too: a test
	// that races unmanaged goroutines against the scheduler is exactly as
	// flaky as production code doing it.
	diags := lintAs(t, "fixture_test.go", `package p
func f() { go helper() }
func helper() {}
`)
	if len(diags) != 1 || diags[0].Rule != RuleBareGo {
		t.Fatalf("test-file go statement not flagged: %v", diags)
	}
}

func TestAllowsGoInSchedPackage(t *testing.T) {
	diags := lint(t, `package sched
func pool(n int, work func()) {
	for i := 0; i < n; i++ {
		go work()
	}
}
`)
	if len(diags) != 0 {
		t.Fatalf("scheduler pool flagged: %v", diags)
	}
}

func TestFlagsSharedSourceCapture(t *testing.T) {
	diags := lint(t, `package p
func trials(seed int64) []Trial {
	root := simrand.New(seed)
	shared := root.Derive("strings")
	var ts []Trial
	for i := 0; i < 3; i++ {
		ts = append(ts, NewTrial("in", "l", func() (int, error) {
			return int(shared.Uint64()), nil // scheduling-order dependent
		}))
	}
	_ = shared.Uint64() // and drawn outside the closure too
	return ts
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleSharedSource {
		t.Fatalf("diags = %v, want one %s", diags, RuleSharedSource)
	}
	if !strings.Contains(diags[0].Msg, `"shared"`) {
		t.Errorf("finding does not name the variable: %s", diags[0].Msg)
	}
}

func TestFlagsRootSourceCapturedByTrial(t *testing.T) {
	// The parent stream is derived from in Trials AND drawn inside a
	// closure — the bug the parallel scheduler contract forbids.
	diags := lint(t, `package p
func trials(seed int64) []Trial {
	root := simrand.New(seed)
	plan := root.Derive("plan")
	_ = plan
	return []Trial{NewTrial("in", "l", func() (int, error) {
		return int(root.Uint64()), nil
	})}
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleSharedSource {
		t.Fatalf("diags = %v, want one %s", diags, RuleSharedSource)
	}
}

func TestAllowsPerTrialDerivedStream(t *testing.T) {
	// The sanctioned pattern: each closure captures only the stream
	// derived for it, so no source crosses the closure boundary both ways.
	diags := lint(t, `package p
func trials(seed int64) []Trial {
	root := simrand.New(seed)
	var ts []Trial
	for i := 0; i < 3; i++ {
		stream := root.DeriveIndexed("trial", i)
		ts = append(ts, NewTrial("in", "l", func() (int, error) {
			return int(stream.Uint64()), nil
		}))
	}
	return ts
}
`)
	if len(diags) != 0 {
		t.Fatalf("per-trial derived stream flagged: %v", diags)
	}
}

func TestAllowsGenericAndQualifiedNewTrial(t *testing.T) {
	// The closure scan must see through NewTrial[T] instantiations and
	// experiment.NewTrial qualification.
	diags := lint(t, `package p
func trials(seed int64) []Trial {
	shared := simrand.New(seed)
	t1 := NewTrial[int]("a", "l", func() (int, error) { return int(shared.Uint64()), nil })
	t2 := experiment.NewTrial("b", "l", func() (int, error) { return int(shared.Uint64()), nil })
	_ = shared.Uint64()
	return []Trial{t1, t2}
}
`)
	got := rules(diags)
	if len(got) != 1 || got[0] != RuleSharedSource {
		t.Fatalf("rules = %v, want one %s", got, RuleSharedSource)
	}
}

const unsyncedWriteSrc = `package p
import "os"
func save(path string, b []byte) error { return os.WriteFile(path, b, 0o644) }
`

func lintAs(t *testing.T, filename, src string) []Diagnostic {
	t.Helper()
	diags, err := LintSource(filename, src)
	if err != nil {
		t.Fatalf("LintSource: %v", err)
	}
	return diags
}

func TestFlagsUnsyncedWriteInJournalFile(t *testing.T) {
	for _, name := range []string{"journal.go", "trial_journal.go", "checkpoint.go", "appstore_checkpoint.go"} {
		diags := lintAs(t, name, unsyncedWriteSrc)
		if len(diags) != 1 || diags[0].Rule != RuleUnsyncedWrite {
			t.Errorf("%s: diags = %v, want one %s", name, diags, RuleUnsyncedWrite)
		}
	}
}

func TestFlagsUnsyncedWriteAliasedImport(t *testing.T) {
	diags := lintAs(t, "journal.go", `package p
import sys "os"
func save(path string, b []byte) error { return sys.WriteFile(path, b, 0o644) }
`)
	if len(diags) != 1 || diags[0].Rule != RuleUnsyncedWrite {
		t.Fatalf("aliased os.WriteFile not flagged: %v", diags)
	}
}

func TestFlagsUnsyncedWriteIoutil(t *testing.T) {
	diags := lintAs(t, "checkpoint.go", `package p
import "io/ioutil"
func save(path string, b []byte) error { return ioutil.WriteFile(path, b, 0o644) }
`)
	if len(diags) != 1 || diags[0].Rule != RuleUnsyncedWrite {
		t.Fatalf("ioutil.WriteFile not flagged: %v", diags)
	}
}

func TestAllowsWriteFileOutsideCrashSafeFiles(t *testing.T) {
	// Ordinary production files and journal/checkpoint TESTS may use
	// os.WriteFile (tests deliberately fabricate torn files with it).
	for _, name := range []string{"render.go", "journal_test.go", "checkpoint_test.go"} {
		if diags := lintAs(t, name, unsyncedWriteSrc); len(diags) != 0 {
			t.Errorf("%s: unexpected diags %v", name, diags)
		}
	}
}

func TestAllowsOtherOsCallsInJournalFiles(t *testing.T) {
	diags := lintAs(t, "journal.go", `package p
import "os"
func open(path string) (*os.File, error) {
	return os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
}
`)
	if len(diags) != 0 {
		t.Fatalf("os.OpenFile flagged: %v", diags)
	}
}

// servingSrc exercises every determinism rule the serving allowlist
// lifts: wall-clock reads, sleeping, and a bare goroutine.
const servingSrc = `package %s
import "time"
func serve(f func()) time.Duration {
	start := time.Now()
	go f()
	time.Sleep(time.Millisecond)
	return time.Since(start)
}
`

func TestServingExemptionLiftsDeterminismRules(t *testing.T) {
	diags := lintAs(t, "server.go", fmt.Sprintf(servingSrc, "vetd"))
	if len(diags) != 0 {
		t.Fatalf("serving package vetd flagged: %v", diags)
	}
}

func TestServingExemptionIsPackageScoped(t *testing.T) {
	// The identical source under a simulation package clause — even in a
	// file that happens to sit in a serving directory — keeps every
	// finding: the allowlist matches the package clause, not the path.
	diags := lintAs(t, "internal/vetd/impostor.go", fmt.Sprintf(servingSrc, "anim"))
	want := []string{RuleTimeNow, RuleBareGo, RuleTimeSleep, RuleTimeSince}
	got := rules(diags)
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("package anim rules = %v, want %v", got, want)
	}
}

func TestServingExemptionCoversSentry(t *testing.T) {
	// The streaming detection service is the third serving package: its
	// admission gate and HTTP handlers run on the wall clock.
	diags := lintAs(t, "server.go", fmt.Sprintf(servingSrc, "sentry"))
	if len(diags) != 0 {
		t.Fatalf("serving package sentry flagged: %v", diags)
	}
}

func TestServingExemptionCoversSentring(t *testing.T) {
	// The detection ingest router is a serving package too: health
	// probes, retry backoff and breaker cooldowns run on the wall clock.
	diags := lintAs(t, "router.go", fmt.Sprintf(servingSrc, "sentring"))
	if len(diags) != 0 {
		t.Fatalf("serving package sentring flagged: %v", diags)
	}
}

func TestServingExemptionCoversExternalTestPackage(t *testing.T) {
	diags := lintAs(t, "server_test.go", fmt.Sprintf(servingSrc, "vetd_test"))
	if len(diags) != 0 {
		t.Fatalf("external test package vetd_test flagged: %v", diags)
	}
}

func TestServingPackagesKeepRobustnessRules(t *testing.T) {
	// The exemption is determinism-only: a bare panic in serving
	// production code still drops every in-flight request and is flagged,
	// and math/rand stays banned in favour of seeded simrand streams.
	diags := lintAs(t, "server.go", `package vetd
func overload() { panic("queue full") }
`)
	if len(diags) != 1 || diags[0].Rule != RulePanic {
		t.Fatalf("bare panic in vetd not flagged: %v", diags)
	}
	diags = lintAs(t, "server.go", `package vetd
import "math/rand"
func jitter() int { return rand.Int() }
`)
	if len(diags) != 1 || diags[0].Rule != RuleMathRand {
		t.Fatalf("math/rand in vetd not flagged: %v", diags)
	}
}

func TestFlagsMapRangeAppend(t *testing.T) {
	diags := lint(t, `package p
func keys() []string {
	m := make(map[string]int)
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleMapRangeOrder {
		t.Fatalf("diags = %v, want one %s", diags, RuleMapRangeOrder)
	}
	if diags[0].Pos.Line != 6 {
		t.Errorf("finding at line %d, want 6", diags[0].Pos.Line)
	}
}

func TestFlagsMapRangeWrite(t *testing.T) {
	// Map-typed parameter, fmt.Fprintf in the loop body: the report's
	// line order is whatever the runtime's hash seed made it.
	diags := lint(t, `package p
import (
	"fmt"
	"io"
)
func dump(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v)
	}
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleMapRangeOrder {
		t.Fatalf("diags = %v, want one %s", diags, RuleMapRangeOrder)
	}
}

func TestFlagsMapRangeWriteStructField(t *testing.T) {
	// Struct fields of map type declared in the same file are tracked
	// too, so `range r.counts` is recognized as a map range.
	diags := lint(t, `package p
import "strings"
type report struct {
	counts map[string]int
}
func (r *report) String() string {
	var sb strings.Builder
	for k := range r.counts {
		sb.WriteString(k)
	}
	return sb.String()
}
`)
	if len(diags) != 1 || diags[0].Rule != RuleMapRangeOrder {
		t.Fatalf("diags = %v, want one %s", diags, RuleMapRangeOrder)
	}
}

func TestAllowsCollectThenSort(t *testing.T) {
	// The canonical fix is itself clean: append inside the loop, sort
	// the destination after it.
	diags := lint(t, `package p
import "sort"
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("collect-then-sort flagged: %v", diags)
	}
}

func TestAllowsOrderInsensitiveMapRange(t *testing.T) {
	// Aggregation over a map is order-insensitive and stays legal.
	diags := lint(t, `package p
func total(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`)
	if len(diags) != 0 {
		t.Fatalf("map aggregation flagged: %v", diags)
	}
}

func TestAllowsSliceRangeAppend(t *testing.T) {
	// Only names known to hold maps trigger the rule; slice iteration
	// order is defined.
	diags := lint(t, `package p
func double(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}
`)
	if len(diags) != 0 {
		t.Fatalf("slice range flagged: %v", diags)
	}
}

// mapRangeSrc is the minimal unsorted collect loop, parameterized on the
// package clause for the serving-exemption tests.
const mapRangeSrc = `package %s
func keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`

func TestFlagsMapRangeAppendInTestFiles(t *testing.T) {
	// A nondeterministic test is a flaky test: the rule applies to
	// _test.go files like the other determinism rules.
	diags := lintAs(t, "fixture_test.go", fmt.Sprintf(mapRangeSrc, "p"))
	if len(diags) != 1 || diags[0].Rule != RuleMapRangeOrder {
		t.Fatalf("diags = %v, want one %s", diags, RuleMapRangeOrder)
	}
}

func TestFlagsNakedHTTPGet(t *testing.T) {
	diags := lint(t, `package p
import "net/http"
func probe(url string) (*http.Response, error) { return http.Get(url) }
`)
	if len(diags) != 1 || diags[0].Rule != RuleNakedHTTP {
		t.Fatalf("diags = %v, want one %s", diags, RuleNakedHTTP)
	}
	if diags[0].Pos.Line != 3 {
		t.Errorf("finding at line %d, want 3", diags[0].Pos.Line)
	}
}

func TestFlagsNakedHTTPClientLiteral(t *testing.T) {
	// Both the value and pointer forms of a zero-timeout client literal
	// are flagged; the aliased import resolves too.
	diags := lint(t, `package p
import web "net/http"
var a = web.Client{}
var b = &web.Client{Transport: nil}
`)
	got := rules(diags)
	if len(got) != 2 || got[0] != RuleNakedHTTP || got[1] != RuleNakedHTTP {
		t.Fatalf("rules = %v, want two %s", got, RuleNakedHTTP)
	}
}

func TestAllowsHTTPClientWithTimeout(t *testing.T) {
	diags := lint(t, `package p
import (
	"net/http"
	"time"
)
var client = &http.Client{Timeout: 5 * time.Second}
`)
	if len(diags) != 0 {
		t.Fatalf("client with Timeout flagged: %v", diags)
	}
}

func TestNakedHTTPSkipsTestsAndServingPackages(t *testing.T) {
	src := `package %s
import "net/http"
func probe(url string) (*http.Response, error) { return http.Get(url) }
`
	// Tests hammer httptest servers with http.Get legitimately.
	if diags := lintAs(t, "fixture_test.go", fmt.Sprintf(src, "p")); len(diags) != 0 {
		t.Fatalf("test-file http.Get flagged: %v", diags)
	}
	// The ring router builds its peer clients deliberately (fault-aware
	// transport, explicit timeout); the serving allowlist covers it.
	if diags := lintAs(t, "router.go", fmt.Sprintf(src, "vetring")); len(diags) != 0 {
		t.Fatalf("serving package vetring flagged: %v", diags)
	}
}

func TestNakedHTTPUnrelatedClientNotFlagged(t *testing.T) {
	// Without a net/http import, a local http-named package or a
	// same-named Client type must not trigger the rule.
	diags := lint(t, `package p
import http "example.com/fake"
type Client struct{}
var c = Client{}
var r = http.Fetch("x")
`)
	if len(diags) != 0 {
		t.Fatalf("unrelated idents flagged: %v", diags)
	}
}

func TestMainPackageGetsOnlyNakedHTTPRule(t *testing.T) {
	// A command binary reads the wall clock, sleeps and spawns goroutines
	// legitimately — but its HTTP calls still need deadlines.
	diags := lintAs(t, "cmd/tool/main.go", `package main
import (
	"net/http"
	"time"
)
func main() {
	start := time.Now()
	go func() { time.Sleep(time.Millisecond) }()
	_, _ = http.Get("http://localhost:1")
	_ = time.Since(start)
}
`)
	got := rules(diags)
	if len(got) != 1 || got[0] != RuleNakedHTTP {
		t.Fatalf("main-package rules = %v, want one %s", got, RuleNakedHTTP)
	}
}

// TestRepoCmdIsClean mirrors TestRepoInternalIsClean for the command
// tree, which the default simlint invocation now covers: every cmd/
// binary that speaks HTTP must do so through a client with a deadline.
func TestRepoCmdIsClean(t *testing.T) {
	diags, err := LintDir("../../cmd")
	if err != nil {
		t.Fatalf("LintDir: %v", err)
	}
	for _, d := range diags {
		t.Errorf("violation: %s", d)
	}
}

func TestMapRangeOrderServingExempt(t *testing.T) {
	// Serving packages answer live traffic; their response ordering is
	// not part of the simulation's reproducibility contract. As with the
	// other determinism rules the allowlist matches the package clause,
	// so an impostor package in the serving directory keeps the finding.
	if diags := lintAs(t, "server.go", fmt.Sprintf(mapRangeSrc, "vetd")); len(diags) != 0 {
		t.Fatalf("serving package vetd flagged: %v", diags)
	}
	diags := lintAs(t, "internal/vetd/impostor.go", fmt.Sprintf(mapRangeSrc, "appstore"))
	if len(diags) != 1 || diags[0].Rule != RuleMapRangeOrder {
		t.Fatalf("impostor package diags = %v, want one %s", rules(diags), RuleMapRangeOrder)
	}
}
