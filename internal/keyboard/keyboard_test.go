package keyboard

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/geom"
)

func kbBounds() geom.Rect { return geom.RectWH(0, 1200, 1080, 720) }

func newKB(t *testing.T) *Keyboard {
	t.Helper()
	kb, err := New(kbBounds())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return kb
}

func TestNewValidation(t *testing.T) {
	if _, err := New(geom.Rect{}); err == nil {
		t.Fatal("empty bounds accepted")
	}
}

func TestBoardsHaveExpectedKeys(t *testing.T) {
	kb := newKB(t)
	tests := []struct {
		board Board
		want  int
	}{
		// Letters: 10 + 9 + (1+7+1) + 5; symbols: 10 + 10 + 9 + 5.
		{BoardLower, 33},
		{BoardUpper, 33},
		{BoardSymbols, 34},
		{BoardSymbols2, 34},
	}
	for _, tt := range tests {
		if got := len(kb.Keys(tt.board)); got != tt.want {
			t.Errorf("%v has %d keys, want %d", tt.board, got, tt.want)
		}
	}
}

func TestKeysInsideBounds(t *testing.T) {
	kb := newKB(t)
	for _, b := range []Board{BoardLower, BoardUpper, BoardSymbols, BoardSymbols2} {
		for _, key := range kb.Keys(b) {
			if !kbBounds().Covers(key.Bounds) {
				t.Errorf("%v key %q bounds %v outside keyboard %v", b, key.Label, key.Bounds, kbBounds())
			}
			if key.Bounds.Empty() {
				t.Errorf("%v key %q has empty bounds", b, key.Label)
			}
		}
	}
}

func TestKeysDoNotOverlap(t *testing.T) {
	kb := newKB(t)
	for _, b := range []Board{BoardLower, BoardUpper, BoardSymbols, BoardSymbols2} {
		keys := kb.Keys(b)
		for i := 0; i < len(keys); i++ {
			for j := i + 1; j < len(keys); j++ {
				if keys[i].Bounds.Intersects(keys[j].Bounds) {
					t.Errorf("%v keys %q and %q overlap", b, keys[i].Label, keys[j].Label)
				}
			}
		}
	}
}

func TestKeyAtCenterFindsKey(t *testing.T) {
	kb := newKB(t)
	for _, b := range []Board{BoardLower, BoardUpper, BoardSymbols, BoardSymbols2} {
		for _, key := range kb.Keys(b) {
			got, ok := kb.KeyAt(b, key.Center())
			if !ok || got.Label != key.Label {
				t.Errorf("KeyAt(%v, center of %q) = (%q,%v)", b, key.Label, got.Label, ok)
			}
		}
	}
}

func TestKeyAtOutside(t *testing.T) {
	kb := newKB(t)
	if _, ok := kb.KeyAt(BoardLower, geom.Pt(5, 5)); ok {
		t.Fatal("KeyAt found a key outside the keyboard")
	}
}

func TestNearestKeyExactCenter(t *testing.T) {
	kb := newKB(t)
	for _, key := range kb.Keys(BoardLower) {
		if got := kb.NearestKey(BoardLower, key.Center()); got.Label != key.Label {
			t.Errorf("NearestKey(center of %q) = %q", key.Label, got.Label)
		}
	}
}

func TestNearestKeyWithJitter(t *testing.T) {
	kb := newKB(t)
	// A touch 10 px off the 'g' center still decodes to 'g'; keys are
	// ~108 px wide.
	g, ok := kb.FindKey(BoardLower, "g")
	if !ok {
		t.Fatal("g missing")
	}
	p := g.Center().Add(geom.Pt(10, -8))
	if got := kb.NearestKey(BoardLower, p); got.Label != "g" {
		t.Fatalf("NearestKey = %q, want g", got.Label)
	}
}

func TestNeighborKey(t *testing.T) {
	kb := newKB(t)
	g, _ := kb.FindKey(BoardLower, "g")
	n, ok := kb.NeighborKey(BoardLower, g)
	if !ok {
		t.Fatal("no neighbor for g")
	}
	if n.Label != "f" && n.Label != "h" && n.Label != "t" && n.Label != "y" && n.Label != "v" && n.Label != "b" {
		t.Fatalf("neighbor of g = %q, want an adjacent key", n.Label)
	}
	if n.Kind != KindChar {
		t.Fatalf("neighbor kind = %v, want char", n.Kind)
	}
	// Neighbor never equals the key itself.
	for _, key := range kb.Keys(BoardSymbols) {
		if key.Kind != KindChar {
			continue
		}
		n, ok := kb.NeighborKey(BoardSymbols, key)
		if !ok || n.Label == key.Label {
			t.Fatalf("NeighborKey(%q) = (%q,%v)", key.Label, n.Label, ok)
		}
	}
}

func TestKeyFor(t *testing.T) {
	kb := newKB(t)
	tests := []struct {
		r     rune
		board Board
	}{
		{'a', BoardLower},
		{'Z', BoardUpper},
		{'7', BoardSymbols},
		{'@', BoardSymbols},
		{'?', BoardSymbols},
		{',', BoardLower}, // present on all; resolves to lower
		{' ', BoardLower},
	}
	for _, tt := range tests {
		b, key, ok := kb.KeyFor(tt.r)
		if !ok {
			t.Errorf("KeyFor(%q) not found", tt.r)
			continue
		}
		if b != tt.board {
			t.Errorf("KeyFor(%q) board = %v, want %v", tt.r, b, tt.board)
		}
		if key.Out != tt.r {
			t.Errorf("KeyFor(%q) emits %q", tt.r, key.Out)
		}
	}
	// '€' lives on the second symbols page.
	if b, _, ok := kb.KeyFor('€'); !ok || b != BoardSymbols2 {
		t.Errorf("KeyFor(€) = (%v,%v), want symbols2", b, ok)
	}
	if _, _, ok := kb.KeyFor('ü'); ok {
		t.Error("KeyFor(ü) found a key; layout has none")
	}
}

// TestSymbols2RoundTrip: a password using a second-page symbol plans
// through ?123 → =\< and decodes back exactly.
func TestSymbols2RoundTrip(t *testing.T) {
	kb := newKB(t)
	const pw = "a€B[7]x"
	presses, err := kb.PlanPresses(pw)
	if err != nil {
		t.Fatalf("PlanPresses(%q): %v", pw, err)
	}
	dec := NewDecoder(kb)
	for _, pr := range presses {
		dec.Observe(pr.Key.Center())
	}
	if got := dec.Password(); got != pw {
		t.Fatalf("decoded %q, want %q", got, pw)
	}
}

func TestSymbols2Transitions(t *testing.T) {
	kb := newKB(t)
	toPage2, ok := kb.FindKey(BoardSymbols, "=\\<")
	if !ok {
		t.Fatal("=\\< key missing on symbols page 1")
	}
	if got := Next(BoardSymbols, toPage2); got != BoardSymbols2 {
		t.Fatalf("Next(symbols, =\\<) = %v", got)
	}
	back, ok := kb.FindKey(BoardSymbols2, "?123")
	if !ok {
		t.Fatal("?123 key missing on symbols page 2")
	}
	if got := Next(BoardSymbols2, back); got != BoardSymbols {
		t.Fatalf("Next(symbols2, ?123) = %v", got)
	}
	abc, ok := kb.FindKey(BoardSymbols2, "ABC")
	if !ok {
		t.Fatal("ABC key missing on symbols page 2")
	}
	if got := Next(BoardSymbols2, abc); got != BoardLower {
		t.Fatalf("Next(symbols2, ABC) = %v", got)
	}
	// Characters on page 2 keep the board.
	euro, ok := kb.FindKey(BoardSymbols2, "€")
	if !ok {
		t.Fatal("€ missing")
	}
	if got := Next(BoardSymbols2, euro); got != BoardSymbols2 {
		t.Fatalf("Next(symbols2, €) = %v", got)
	}
}

func TestNextTransitions(t *testing.T) {
	kb := newKB(t)
	shiftL, _ := kb.FindKey(BoardLower, "⇧")
	shiftU, _ := kb.FindKey(BoardUpper, "⇧")
	sym, _ := kb.FindKey(BoardLower, "?123")
	abc, _ := kb.FindKey(BoardSymbols, "ABC")
	aLower, _ := kb.FindKey(BoardLower, "a")
	aUpper, _ := kb.FindKey(BoardUpper, "A")
	tests := []struct {
		b    Board
		key  Key
		want Board
	}{
		{BoardLower, shiftL, BoardUpper},
		{BoardUpper, shiftU, BoardLower},
		{BoardLower, sym, BoardSymbols},
		{BoardSymbols, abc, BoardLower},
		{BoardLower, aLower, BoardLower},
		{BoardUpper, aUpper, BoardLower}, // one-shot shift reverts
	}
	for _, tt := range tests {
		if got := Next(tt.b, tt.key); got != tt.want {
			t.Errorf("Next(%v, %q) = %v, want %v", tt.b, tt.key.Label, got, tt.want)
		}
	}
}

func TestPlanPressesSimple(t *testing.T) {
	kb := newKB(t)
	presses, err := kb.PlanPresses("ab")
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	if len(presses) != 2 {
		t.Fatalf("presses = %d, want 2", len(presses))
	}
	if presses[0].Key.Out != 'a' || presses[1].Key.Out != 'b' {
		t.Fatalf("plan = %+v", presses)
	}
}

func TestPlanPressesWithShift(t *testing.T) {
	kb := newKB(t)
	presses, err := kb.PlanPresses("aB")
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	// a, shift, B.
	if len(presses) != 3 {
		t.Fatalf("presses = %d, want 3: %+v", len(presses), presses)
	}
	if presses[1].Key.Kind != KindShift {
		t.Fatalf("press 1 = %+v, want shift", presses[1])
	}
	if presses[2].Board != BoardUpper {
		t.Fatalf("press 2 board = %v, want upper", presses[2].Board)
	}
}

func TestPlanPressesSymbolsRoundTrip(t *testing.T) {
	kb := newKB(t)
	presses, err := kb.PlanPresses("a7b")
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	// a, ?123, 7, ABC, b.
	kinds := make([]Kind, len(presses))
	for i, p := range presses {
		kinds[i] = p.Key.Kind
	}
	want := []Kind{KindChar, KindSymbols, KindChar, KindABC, KindChar}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds = %v, want %v", kinds, want)
		}
	}
}

func TestPlanPressesUntypeable(t *testing.T) {
	kb := newKB(t)
	if _, err := kb.PlanPresses("héllo"); err == nil {
		t.Fatal("untypeable character accepted")
	}
}

// TestDecoderRoundTrip is the attack's core correctness property: planning
// the keystrokes for a password and feeding the exact key centers to the
// decoder recovers the password.
func TestDecoderRoundTrip(t *testing.T) {
	kb := newKB(t)
	passwords := []string{
		"password",
		"P@ssw0rd",
		"tk&%48GH", // the password in the paper's demo video
		"aB3$xY9!",
		"1234567890",
		"ALLUPPER",
		"with space",
		"a,b.c",
	}
	for _, pw := range passwords {
		presses, err := kb.PlanPresses(pw)
		if err != nil {
			t.Fatalf("PlanPresses(%q): %v", pw, err)
		}
		dec := NewDecoder(kb)
		for _, pr := range presses {
			dec.Observe(pr.Key.Center())
		}
		if got := dec.Password(); got != pw {
			t.Errorf("decoded %q, want %q", got, pw)
		}
	}
}

func TestDecoderBackspace(t *testing.T) {
	kb := newKB(t)
	dec := NewDecoder(kb)
	a, _ := kb.FindKey(BoardLower, "a")
	b, _ := kb.FindKey(BoardLower, "b")
	bs, _ := kb.FindKey(BoardLower, "⌫")
	dec.Observe(a.Center())
	dec.Observe(b.Center())
	dec.Observe(bs.Center())
	if got := dec.Password(); got != "a" {
		t.Fatalf("password = %q, want \"a\"", got)
	}
	// Backspace on empty is a no-op.
	dec2 := NewDecoder(kb)
	dec2.Observe(bs.Center())
	if got := dec2.Password(); got != "" {
		t.Fatalf("password = %q, want empty", got)
	}
}

func TestDecoderTracksBoard(t *testing.T) {
	kb := newKB(t)
	dec := NewDecoder(kb)
	if dec.Board() != BoardLower {
		t.Fatal("decoder must start on lower board")
	}
	sym, _ := kb.FindKey(BoardLower, "?123")
	dec.Observe(sym.Center())
	if dec.Board() != BoardSymbols {
		t.Fatalf("board = %v after ?123, want symbols", dec.Board())
	}
}

func TestStringers(t *testing.T) {
	if BoardLower.String() != "lower" || Board(9).String() != "Board(9)" {
		t.Fatal("Board.String broken")
	}
	if KindShift.String() != "shift" || Kind(99).String() != "Kind(99)" {
		t.Fatal("Kind.String broken")
	}
}

// Property: every typeable ASCII password round-trips through
// plan → key centers → decoder.
func TestPropertyRoundTrip(t *testing.T) {
	kb := newKB(t)
	const alphabet = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789@#$&-+()/*\"':;!?"
	prop := func(idx []uint8) bool {
		if len(idx) > 16 {
			idx = idx[:16]
		}
		var sb strings.Builder
		for _, i := range idx {
			sb.WriteByte(alphabet[int(i)%len(alphabet)])
		}
		pw := sb.String()
		presses, err := kb.PlanPresses(pw)
		if err != nil {
			return false
		}
		dec := NewDecoder(kb)
		for _, pr := range presses {
			dec.Observe(pr.Key.Center())
		}
		return dec.Password() == pw
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: NearestKey returns the true argmin over key centers.
func TestPropertyNearestIsArgmin(t *testing.T) {
	kb := newKB(t)
	keys := kb.Keys(BoardLower)
	prop := func(xr, yr uint16) bool {
		p := geom.Pt(float64(xr)/65535*1080, 1200+float64(yr)/65535*720)
		got := kb.NearestKey(BoardLower, p)
		for _, key := range keys {
			if p.Dist(key.Center()) < p.Dist(got.Center())-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
