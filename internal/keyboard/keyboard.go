// Package keyboard models the software keyboard the password-stealing
// attack targets: the geometry of a QWERTY layout with its three
// sub-keyboards (lower case, upper case, symbols), the transition keys
// (shift, ?123, ABC) that switch between them, and the attacker's offline
// analysis — mapping an intercepted touch coordinate to the key whose
// center is nearest in Euclidean distance (Section V).
//
// The same geometry serves three roles: the victim's real keyboard (an IME
// window), the attacker's pixel-aligned fake keyboard rendered with toasts,
// and the attacker's decoder that replays intercepted coordinates into a
// password guess.
package keyboard

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
)

// Board identifies a sub-keyboard.
type Board int

// The sub-keyboards: the paper's random passwords span the first three;
// BoardSymbols2 is the "=\<" second symbols page, included for layout
// completeness.
const (
	BoardLower Board = iota + 1
	BoardUpper
	BoardSymbols
	BoardSymbols2
)

// String renders the board name.
func (b Board) String() string {
	switch b {
	case BoardLower:
		return "lower"
	case BoardUpper:
		return "upper"
	case BoardSymbols:
		return "symbols"
	case BoardSymbols2:
		return "symbols2"
	default:
		return fmt.Sprintf("Board(%d)", int(b))
	}
}

// Kind classifies a key.
type Kind int

// Key kinds. Transition keys (shift, ?123, ABC) switch sub-keyboards and
// produce no output character.
const (
	KindChar Kind = iota + 1
	KindShift
	KindSymbols // the "?123" key
	KindABC     // back to letters from the symbols board
	KindBackspace
	KindSpace
	KindEnter
)

// String renders the kind.
func (k Kind) String() string {
	switch k {
	case KindChar:
		return "char"
	case KindShift:
		return "shift"
	case KindSymbols:
		return "?123"
	case KindABC:
		return "ABC"
	case KindBackspace:
		return "backspace"
	case KindSpace:
		return "space"
	case KindEnter:
		return "enter"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Key is one key of a sub-keyboard.
type Key struct {
	// Label is the display label ("a", "⇧", "?123").
	Label string
	// Out is the character the key emits; 0 for non-char keys except
	// space, which emits ' '.
	Out rune
	// Kind classifies the key.
	Kind Kind
	// Bounds is the key's on-screen rectangle.
	Bounds geom.Rect
}

// Center reports the key's center, the reference point of the attacker's
// Euclidean matching.
func (k Key) Center() geom.Point { return k.Bounds.Center() }

// rowSpec describes one keyboard row: cells are (label, weight) pairs laid
// out left to right; weights are fractions of a 10-unit row.
type cell struct {
	label  string
	weight float64
	kind   Kind
	out    rune
}

func charCells(s string) []cell {
	out := make([]cell, 0, len(s))
	for _, r := range s {
		out = append(out, cell{label: string(r), weight: 1, kind: KindChar, out: r})
	}
	return out
}

func lowerRows() [][]cell {
	return [][]cell{
		charCells("qwertyuiop"),
		charCells("asdfghjkl"),
		append(append([]cell{{label: "⇧", weight: 1.5, kind: KindShift}}, charCells("zxcvbnm")...),
			cell{label: "⌫", weight: 1.5, kind: KindBackspace}),
		{
			{label: "?123", weight: 1.5, kind: KindSymbols},
			{label: ",", weight: 1, kind: KindChar, out: ','},
			{label: "space", weight: 4.5, kind: KindSpace, out: ' '},
			{label: ".", weight: 1, kind: KindChar, out: '.'},
			{label: "⏎", weight: 2, kind: KindEnter},
		},
	}
}

func upperRows() [][]cell {
	return [][]cell{
		charCells("QWERTYUIOP"),
		charCells("ASDFGHJKL"),
		append(append([]cell{{label: "⇧", weight: 1.5, kind: KindShift}}, charCells("ZXCVBNM")...),
			cell{label: "⌫", weight: 1.5, kind: KindBackspace}),
		{
			{label: "?123", weight: 1.5, kind: KindSymbols},
			{label: ",", weight: 1, kind: KindChar, out: ','},
			{label: "space", weight: 4.5, kind: KindSpace, out: ' '},
			{label: ".", weight: 1, kind: KindChar, out: '.'},
			{label: "⏎", weight: 2, kind: KindEnter},
		},
	}
}

func symbolRows() [][]cell {
	return [][]cell{
		charCells("1234567890"),
		charCells("@#$%&-+()/"),
		append(append([]cell{{label: "=\\<", weight: 1.5, kind: KindShift}}, charCells("*\"':;!?")...),
			cell{label: "⌫", weight: 1.5, kind: KindBackspace}),
		{
			{label: "ABC", weight: 1.5, kind: KindABC},
			{label: ",", weight: 1, kind: KindChar, out: ','},
			{label: "space", weight: 4.5, kind: KindSpace, out: ' '},
			{label: ".", weight: 1, kind: KindChar, out: '.'},
			{label: "⏎", weight: 2, kind: KindEnter},
		},
	}
}

func symbol2Rows() [][]cell {
	return [][]cell{
		charCells("~`|•√π÷×¶∆"),
		charCells("£¥€¢^°={}\\"),
		append(append([]cell{{label: "?123", weight: 1.5, kind: KindShift}}, charCells("©®™℅[]<")...),
			cell{label: "⌫", weight: 1.5, kind: KindBackspace}),
		{
			{label: "ABC", weight: 1.5, kind: KindABC},
			{label: ",", weight: 1, kind: KindChar, out: ','},
			{label: "space", weight: 4.5, kind: KindSpace, out: ' '},
			{label: ".", weight: 1, kind: KindChar, out: '.'},
			{label: "⏎", weight: 2, kind: KindEnter},
		},
	}
}

// Keyboard is a keyboard geometry instantiated over a screen rectangle.
type Keyboard struct {
	bounds geom.Rect
	boards map[Board][]Key
}

// New lays the keyboard out over bounds (typically the bottom ~35% of the
// screen, matching the real IME's rectangle so the fake aligns with the
// real).
func New(bounds geom.Rect) (*Keyboard, error) {
	if bounds.Empty() {
		return nil, errors.New("keyboard: empty bounds")
	}
	k := &Keyboard{bounds: bounds, boards: make(map[Board][]Key, 4)}
	k.boards[BoardLower] = layout(bounds, lowerRows())
	k.boards[BoardUpper] = layout(bounds, upperRows())
	k.boards[BoardSymbols] = layout(bounds, symbolRows())
	k.boards[BoardSymbols2] = layout(bounds, symbol2Rows())
	return k, nil
}

func layout(bounds geom.Rect, rows [][]cell) []Key {
	rowH := bounds.H() / float64(len(rows))
	unit := bounds.W() / 10
	var keys []Key
	for ri, row := range rows {
		total := 0.0
		for _, c := range row {
			total += c.weight
		}
		// Center rows narrower than 10 units (e.g. the 9-key home row).
		x := bounds.Min.X + (10-total)/2*unit
		y := bounds.Min.Y + float64(ri)*rowH
		for _, c := range row {
			w := c.weight * unit
			keys = append(keys, Key{
				Label:  c.label,
				Out:    c.out,
				Kind:   c.kind,
				Bounds: geom.RectWH(x, y, w, rowH),
			})
			x += w
		}
	}
	return keys
}

// Bounds reports the keyboard rectangle.
func (k *Keyboard) Bounds() geom.Rect { return k.bounds }

// Keys returns the keys of a sub-keyboard.
func (k *Keyboard) Keys(b Board) []Key {
	keys := k.boards[b]
	out := make([]Key, len(keys))
	copy(out, keys)
	return out
}

// KeyAt returns the key whose rectangle contains p on board b; ok is false
// between keys or outside the keyboard.
func (k *Keyboard) KeyAt(b Board, p geom.Point) (Key, bool) {
	for _, key := range k.boards[b] {
		if key.Bounds.Contains(p) {
			return key, true
		}
	}
	return Key{}, false
}

// NearestKey implements the attacker's inference: the key on board b whose
// center has the smallest Euclidean distance to the touched position.
func (k *Keyboard) NearestKey(b Board, p geom.Point) Key {
	keys := k.boards[b]
	best := keys[0]
	bestD := math.Inf(1)
	for _, key := range keys {
		if d := p.Dist(key.Center()); d < bestD {
			bestD = d
			best = key
		}
	}
	return best
}

// NeighborKey returns the character key on board b nearest to key (other
// than key itself) — the key a user fat-fingers when misspelling. ok is
// false if the board has no other character keys.
func (k *Keyboard) NeighborKey(b Board, key Key) (Key, bool) {
	var best Key
	bestD := math.Inf(1)
	found := false
	for _, cand := range k.boards[b] {
		if cand.Kind != KindChar || cand.Label == key.Label {
			continue
		}
		if d := cand.Center().Dist(key.Center()); d < bestD {
			bestD = d
			best = cand
			found = true
		}
	}
	return best, found
}

// FindKey locates a key by label on board b.
func (k *Keyboard) FindKey(b Board, label string) (Key, bool) {
	for _, key := range k.boards[b] {
		if key.Label == label {
			return key, true
		}
	}
	return Key{}, false
}

// KeyFor locates the board and key that emit r. Characters present on
// several boards (',', '.', ' ') resolve to the first board in
// lower→upper→symbols→symbols2 order.
func (k *Keyboard) KeyFor(r rune) (Board, Key, bool) {
	for _, b := range []Board{BoardLower, BoardUpper, BoardSymbols, BoardSymbols2} {
		for _, key := range k.boards[b] {
			if (key.Kind == KindChar || key.Kind == KindSpace) && key.Out == r {
				return b, key, true
			}
		}
	}
	return 0, Key{}, false
}

// Next reports the board after pressing key on board b, following GBoard
// semantics: shift toggles lower↔upper on the letter boards and
// symbols↔symbols2 on the symbol boards, ?123 enters symbols, ABC returns
// to lower, and character keys keep the board — except on the upper
// board, where the one-shot shift reverts to lower after one character.
func Next(b Board, key Key) Board {
	switch key.Kind {
	case KindShift:
		switch b {
		case BoardLower:
			return BoardUpper
		case BoardUpper:
			return BoardLower
		case BoardSymbols:
			return BoardSymbols2
		case BoardSymbols2:
			return BoardSymbols
		default:
			return b
		}
	case KindSymbols:
		return BoardSymbols
	case KindABC:
		return BoardLower
	case KindChar:
		if b == BoardUpper {
			return BoardLower // one-shot shift
		}
		return b
	default:
		return b
	}
}

// Press is one planned keystroke: the key to hit and the board it lives
// on at press time.
type Press struct {
	Board Board
	Key   Key
}

// PlanPresses expands a password into the exact keystroke sequence a user
// performs, inserting shift/?123/ABC transitions as needed and honoring
// the one-shot shift. It fails on characters the layout cannot type.
func (k *Keyboard) PlanPresses(password string) ([]Press, error) {
	board := BoardLower
	var presses []Press
	for _, r := range password {
		target, _, ok := k.KeyFor(r)
		if !ok {
			return nil, fmt.Errorf("keyboard: character %q not typeable", r)
		}
		for board != target {
			tk, ok := k.transitionKey(board, target)
			if !ok {
				return nil, fmt.Errorf("keyboard: no transition %v→%v", board, target)
			}
			presses = append(presses, Press{Board: board, Key: tk})
			board = Next(board, tk)
		}
		key, ok := k.charKeyOn(board, r)
		if !ok {
			return nil, fmt.Errorf("keyboard: character %q missing on board %v", r, board)
		}
		presses = append(presses, Press{Board: board, Key: key})
		board = Next(board, key)
	}
	return presses, nil
}

func (k *Keyboard) charKeyOn(b Board, r rune) (Key, bool) {
	for _, key := range k.boards[b] {
		if (key.Kind == KindChar || key.Kind == KindSpace) && key.Out == r {
			return key, true
		}
	}
	return Key{}, false
}

// transitionKey picks the key that moves from board b toward target.
func (k *Keyboard) transitionKey(b, target Board) (Key, bool) {
	switch b {
	case BoardLower:
		if target == BoardUpper {
			return k.FindKey(BoardLower, "⇧")
		}
		return k.FindKey(BoardLower, "?123")
	case BoardUpper:
		if target == BoardLower {
			return k.FindKey(BoardUpper, "⇧")
		}
		return k.FindKey(BoardUpper, "?123")
	case BoardSymbols:
		if target == BoardSymbols2 {
			return k.FindKey(BoardSymbols, "=\\<")
		}
		// Both letter boards are reached via ABC (then shift if upper).
		return k.FindKey(BoardSymbols, "ABC")
	case BoardSymbols2:
		if target == BoardSymbols {
			return k.FindKey(BoardSymbols2, "?123")
		}
		return k.FindKey(BoardSymbols2, "ABC")
	default:
		return Key{}, false
	}
}

// Decoder replays intercepted touch coordinates into a password guess,
// tracking sub-keyboard state exactly as the malicious app does when it
// swaps fake-keyboard toasts on intercepted transition keys.
type Decoder struct {
	kb    *Keyboard
	board Board
	sb    strings.Builder
}

// NewDecoder starts decoding on the lower board (the state a password
// field opens with).
func NewDecoder(kb *Keyboard) *Decoder {
	return &Decoder{kb: kb, board: BoardLower}
}

// Board reports the decoder's current sub-keyboard.
func (d *Decoder) Board() Board { return d.board }

// Observe consumes one intercepted touch coordinate: it infers the nearest
// key on the current board, updates the board state, and accumulates
// output characters.
func (d *Decoder) Observe(p geom.Point) Key {
	key := d.kb.NearestKey(d.board, p)
	switch key.Kind {
	case KindChar, KindSpace:
		d.sb.WriteRune(key.Out)
	case KindBackspace:
		s := d.sb.String()
		if len(s) > 0 {
			// Passwords here are single-byte characters; trim one byte.
			d.sb.Reset()
			d.sb.WriteString(s[:len(s)-1])
		}
	}
	d.board = Next(d.board, key)
	return key
}

// Password reports the decoded password so far.
func (d *Decoder) Password() string { return d.sb.String() }
