package appstore

import (
	"strings"
	"testing"
)

// FuzzScanManifest: the aapt-style pass must be deterministic, must never
// panic on arbitrary manifest text, and must never detect a permission or
// service whose identifier substring is absent from the input.
func FuzzScanManifest(f *testing.F) {
	f.Add("")
	f.Add("<manifest></manifest>")
	f.Add(`<manifest package="a"><uses-permission android:name="` + PermSystemAlertWindow + `"/></manifest>`)
	f.Add("<manifest>\n  <uses-permission android:name=\"" + PermSystemAlertWindow + "\"/>\n  <application>\n    <service android:name=\"x.Svc\" android:permission=\"" + PermBindAccessibility + "\"/>\n  </application>\n</manifest>\n")
	f.Add("<uses-permission android:name=\"android.permission.INTERNET\"/>")
	f.Add("<service android:permission=\"" + PermBindAccessibility + "\"")
	f.Add("<uses-permission android:name=\"\x00\xff")
	f.Fuzz(func(t *testing.T, manifest string) {
		saw1, a11y1 := ScanManifest(manifest)
		saw2, a11y2 := ScanManifest(manifest)
		if saw1 != saw2 || a11y1 != a11y2 {
			t.Fatalf("non-deterministic scan: (%v,%v) then (%v,%v)", saw1, a11y1, saw2, a11y2)
		}
		if saw1 && !strings.Contains(manifest, PermSystemAlertWindow) {
			t.Fatalf("detected SAW without the permission string present")
		}
		if a11y1 && !strings.Contains(manifest, PermBindAccessibility) {
			t.Fatalf("detected accessibility service without the permission string present")
		}
	})
}

// FuzzScanDex: the grep baseline is exact set membership over the ref
// table — each flag fires iff the corresponding signature is an element.
func FuzzScanDex(f *testing.F) {
	f.Add("")
	f.Add(RefAddView)
	f.Add(RefAddView + "\n" + RefRemoveView)
	f.Add(RefToastSetView + "\njunk\n" + RefAddView)
	f.Add("Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V")
	f.Add(RefAddView + "suffix")
	f.Fuzz(func(t *testing.T, table string) {
		refs := strings.Split(table, "\n")
		addView, removeView, toast := ScanDex(refs)
		has := func(want string) bool {
			for _, r := range refs {
				if r == want {
					return true
				}
			}
			return false
		}
		if addView != has(RefAddView) {
			t.Fatalf("addView = %v, membership = %v", addView, has(RefAddView))
		}
		if removeView != has(RefRemoveView) {
			t.Fatalf("removeView = %v, membership = %v", removeView, has(RefRemoveView))
		}
		if toast != has(RefToastSetView) {
			t.Fatalf("customToast = %v, membership = %v", toast, has(RefToastSetView))
		}
	})
}
