package appstore

import (
	"strings"
	"testing"

	"repro/internal/simrand"
)

func TestPaperRatesInRange(t *testing.T) {
	r := PaperRates()
	for name, p := range map[string]float64{
		"SAW":                 r.SAW,
		"A11yGivenSAW":        r.A11yGivenSAW,
		"A11yGivenNoSAW":      r.A11yGivenNoSAW,
		"AddRemoveGivenSAW":   r.AddRemoveGivenSAW,
		"AddRemoveGivenNoSAW": r.AddRemoveGivenNoSAW,
		"CustomToast":         r.CustomToast,
	} {
		if p < 0 || p > 1 {
			t.Errorf("rate %s = %v out of [0,1]", name, p)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, PaperRates()); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := PaperRates()
	bad.SAW = 1.5
	if _, err := NewGenerator(simrand.New(1), bad); err == nil {
		t.Fatal("rate > 1 accepted")
	}
}

func TestGeneratedManifestParses(t *testing.T) {
	gen, err := NewGenerator(simrand.New(2), Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1, CustomToast: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	apk := gen.Next()
	if !strings.Contains(apk.Manifest, PermSystemAlertWindow) {
		t.Fatal("manifest missing SAW permission")
	}
	res := Scan(apk)
	if !res.HasSAW || !res.HasA11yService || !res.CallsAddView || !res.CallsRemoveView || !res.UsesCustomToast {
		t.Fatalf("scan of all-features app = %+v", res)
	}
}

func TestScanCleanApp(t *testing.T) {
	gen, err := NewGenerator(simrand.New(3), Rates{})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	res := Scan(gen.Next())
	if res.HasSAW || res.HasA11yService || res.CallsAddView || res.CallsRemoveView || res.UsesCustomToast {
		t.Fatalf("scan of featureless app = %+v", res)
	}
}

func TestScanManifestDirect(t *testing.T) {
	manifest := `<manifest package="x">
  <uses-permission android:name="android.permission.INTERNET"/>
  <uses-permission android:name="android.permission.SYSTEM_ALERT_WINDOW"/>
  <application>
    <service android:name="x.Svc" android:permission="android.permission.BIND_ACCESSIBILITY_SERVICE"/>
  </application>
</manifest>`
	saw, a11y := ScanManifest(manifest)
	if !saw || !a11y {
		t.Fatalf("ScanManifest = (%v,%v), want both true", saw, a11y)
	}
	// A service without the accessibility bind permission must not count.
	saw, a11y = ScanManifest(`<manifest><service android:name="x" android:permission="android.permission.BIND_JOB_SERVICE"/></manifest>`)
	if saw || a11y {
		t.Fatalf("false positives: (%v,%v)", saw, a11y)
	}
	// Substring traps: a permission that merely contains the name inside
	// another attribute must not match.
	saw, _ = ScanManifest(`<manifest><uses-permission android:label="android.permission.SYSTEM_ALERT_WINDOW" android:name="android.permission.CAMERA"/></manifest>`)
	if saw {
		t.Fatal("label attribute misread as name")
	}
}

func TestXMLAttr(t *testing.T) {
	v, ok := xmlAttr(`<x android:name="abc" other="d"/>`, "android:name")
	if !ok || v != "abc" {
		t.Fatalf("xmlAttr = (%q,%v)", v, ok)
	}
	if _, ok := xmlAttr(`<x/>`, "android:name"); ok {
		t.Fatal("attr found on empty tag")
	}
	if _, ok := xmlAttr(`<x android:name="unterminated`, "android:name"); ok {
		t.Fatal("unterminated attr accepted")
	}
}

func TestScanDexDirect(t *testing.T) {
	add, rm, toast := ScanDex([]string{RefAddView, RefToastSetView})
	if !add || rm || !toast {
		t.Fatalf("ScanDex = (%v,%v,%v)", add, rm, toast)
	}
	add, rm, toast = ScanDex(nil)
	if add || rm || toast {
		t.Fatal("ScanDex on empty refs found features")
	}
}

// TestStudyReproducesPaperProportions runs a 50k-app corpus and checks the
// three §VI-C2 counts land within 20% of the paper's proportions.
func TestStudyReproducesPaperProportions(t *testing.T) {
	const n = 50000
	rep, err := Study(1, n)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	if rep.Total != n {
		t.Fatalf("Total = %d, want %d", rep.Total, n)
	}
	scale := float64(n) / float64(PaperCorpusSize)
	checks := []struct {
		name  string
		got   int
		paper int
	}{
		{"overlay+a11y", rep.OverlayPlusA11y, PaperOverlayPlusA11y},
		{"add/remove+SAW", rep.AddRemoveWithSAW, PaperAddRemoveWithSAW},
		{"custom toast", rep.CustomToast, PaperCustomToast},
	}
	for _, c := range checks {
		want := scale * float64(c.paper)
		if got := float64(c.got); got < 0.8*want || got > 1.2*want {
			t.Errorf("%s = %d, want ≈%.0f (±20%%)", c.name, c.got, want)
		}
	}
	if s := rep.String(); !strings.Contains(s, "scanned 50000 apps") {
		t.Fatalf("report string = %q", s)
	}
}

func TestStudyValidation(t *testing.T) {
	if _, err := Study(1, 0); err == nil {
		t.Fatal("zero corpus accepted")
	}
}

func TestStudyDeterministic(t *testing.T) {
	a, err := Study(7, 2000)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	b, err := Study(7, 2000)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

func TestPackagesUnique(t *testing.T) {
	gen, err := NewGenerator(simrand.New(5), PaperRates())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		apk := gen.Next()
		if seen[apk.Package] {
			t.Fatalf("duplicate package %s", apk.Package)
		}
		seen[apk.Package] = true
	}
}
