package appstore

import (
	"fmt"
	"math"
	"strings"
	"testing"

	"repro/internal/simrand"
)

func TestPaperRatesInRange(t *testing.T) {
	r := PaperRates()
	for i, p := range r.probabilities() {
		if p < 0 || p > 1 {
			t.Errorf("rate #%d = %v out of [0,1]", i, p)
		}
	}
}

// TestPaperRatesCalibration: the expected counts at the paper's corpus
// size must land within ±2% of the paper's three §VI-C2 numbers.
func TestPaperRatesCalibration(t *testing.T) {
	r := PaperRates()
	n := float64(PaperCorpusSize)
	checks := []struct {
		name     string
		expected float64
		paper    int
	}{
		{"overlay+a11y", n * r.SAW * r.A11yGivenSAW, PaperOverlayPlusA11y},
		{"add/remove+SAW", n * r.SAW * r.AddRemoveGivenSAW, PaperAddRemoveWithSAW},
		{"custom toast", n * r.CustomToast, PaperCustomToast},
	}
	for _, c := range checks {
		if dev := math.Abs(c.expected-float64(c.paper)) / float64(c.paper); dev > 0.02 {
			t.Errorf("%s expected count %.0f deviates %.2f%% from paper %d (limit 2%%)",
				c.name, c.expected, 100*dev, c.paper)
		}
	}
}

func TestNewGeneratorValidation(t *testing.T) {
	if _, err := NewGenerator(nil, PaperRates()); err == nil {
		t.Fatal("nil rng accepted")
	}
	bad := PaperRates()
	bad.SAW = 1.5
	if _, err := NewGenerator(simrand.New(1), bad); err == nil {
		t.Fatal("rate > 1 accepted")
	}
	bad = PaperRates()
	bad.DeadOverlayGivenSAW = -0.1
	if _, err := NewGenerator(simrand.New(1), bad); err == nil {
		t.Fatal("negative decoy rate accepted")
	}
}

func TestGeneratedManifestParses(t *testing.T) {
	gen, err := NewGenerator(simrand.New(2), Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1, CustomToast: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	apk := gen.Next()
	if !strings.Contains(apk.Manifest, PermSystemAlertWindow) {
		t.Fatal("manifest missing SAW permission")
	}
	res := Scan(apk)
	if !res.HasSAW || !res.HasA11yService || !res.CallsAddView || !res.CallsRemoveView || !res.UsesCustomToast {
		t.Fatalf("scan of all-features app = %+v", res)
	}
	full := ScanApp(apk)
	if !full.Static.DrawAndDestroy || !full.Static.SetViewReachable {
		t.Fatalf("static analysis of all-features app = %+v", full.Static)
	}
	if !full.Truth.Overlay || !full.Truth.Toast {
		t.Fatalf("truth = %+v", full.Truth)
	}
}

func TestScanCleanApp(t *testing.T) {
	gen, err := NewGenerator(simrand.New(3), Rates{})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	apk := gen.Next()
	res := Scan(apk)
	if res.HasSAW || res.HasA11yService || res.CallsAddView || res.CallsRemoveView || res.UsesCustomToast {
		t.Fatalf("scan of featureless app = %+v", res)
	}
	full := ScanApp(apk)
	if full.Static.DrawAndDestroy || full.Static.ToastReplace || full.Static.A11yTiming || full.Static.SetViewReachable {
		t.Fatalf("static analysis of featureless app = %+v", full.Static)
	}
}

func TestScanManifestDirect(t *testing.T) {
	manifest := `<manifest package="x">
  <uses-permission android:name="android.permission.INTERNET"/>
  <uses-permission android:name="android.permission.SYSTEM_ALERT_WINDOW"/>
  <application>
    <service android:name="x.Svc" android:permission="android.permission.BIND_ACCESSIBILITY_SERVICE"/>
  </application>
</manifest>`
	saw, a11y := ScanManifest(manifest)
	if !saw || !a11y {
		t.Fatalf("ScanManifest = (%v,%v), want both true", saw, a11y)
	}
	// A service without the accessibility bind permission must not count.
	saw, a11y = ScanManifest(`<manifest><service android:name="x" android:permission="android.permission.BIND_JOB_SERVICE"/></manifest>`)
	if saw || a11y {
		t.Fatalf("false positives: (%v,%v)", saw, a11y)
	}
	// Substring traps: a permission that merely contains the name inside
	// another attribute must not match.
	saw, _ = ScanManifest(`<manifest><uses-permission android:label="android.permission.SYSTEM_ALERT_WINDOW" android:name="android.permission.CAMERA"/></manifest>`)
	if saw {
		t.Fatal("label attribute misread as name")
	}
}

func TestXMLAttr(t *testing.T) {
	v, ok := xmlAttr(`<x android:name="abc" other="d"/>`, "android:name")
	if !ok || v != "abc" {
		t.Fatalf("xmlAttr = (%q,%v)", v, ok)
	}
	if _, ok := xmlAttr(`<x/>`, "android:name"); ok {
		t.Fatal("attr found on empty tag")
	}
	if _, ok := xmlAttr(`<x android:name="unterminated`, "android:name"); ok {
		t.Fatal("unterminated attr accepted")
	}
}

func TestScanDexDirect(t *testing.T) {
	add, rm, toast := ScanDex([]string{RefAddView, RefToastSetView})
	if !add || rm || !toast {
		t.Fatalf("ScanDex = (%v,%v,%v)", add, rm, toast)
	}
	add, rm, toast = ScanDex(nil)
	if add || rm || toast {
		t.Fatal("ScanDex on empty refs found features")
	}
}

// forceRates returns PaperRates with every decoy/draw probability forced
// to the given deterministic choices, keeping validation happy.
func forceRates(mutate func(*Rates)) Rates {
	r := Rates{SAW: 1}
	mutate(&r)
	return r
}

// TestDeadCodeDecoyMisclassifiedByGrep: an app whose only overlay calls
// sit in dead code fools the ref-table grep but not the call graph.
func TestDeadCodeDecoyMisclassifiedByGrep(t *testing.T) {
	rates := forceRates(func(r *Rates) { r.DeadOverlayGivenSAW = 1 })
	gen, err := NewGenerator(simrand.New(11), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		s := ScanApp(gen.Next())
		if s.Truth.Overlay {
			t.Fatal("decoy app labeled capable")
		}
		grepOverlay := s.Grep.HasSAW && s.Grep.CallsAddView && s.Grep.CallsRemoveView
		if !grepOverlay {
			t.Fatal("grep did not see the dead-code refs (decoy not planted?)")
		}
		if s.Static.DrawAndDestroy {
			t.Fatal("call graph reached dead code")
		}
	}
}

// TestReflectionDecoyMissedByGrep: a genuinely capable app dispatching
// overlay calls reflectively is invisible to grep but not to the
// call-graph analyzer.
func TestReflectionDecoyMissedByGrep(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.AddRemoveGivenSAW = 1
		r.ReflectionGivenCapable = 1
	})
	gen, err := NewGenerator(simrand.New(12), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		s := ScanApp(gen.Next())
		if !s.Truth.Overlay {
			t.Fatal("capable app not labeled capable")
		}
		if s.Grep.CallsAddView || s.Grep.CallsRemoveView {
			t.Fatal("reflective dispatch leaked into the ref table")
		}
		if !s.Static.DrawAndDestroy {
			t.Fatal("call graph missed the reflective capability")
		}
	}
}

// TestDeepReflectionMissedByBoth: runtime-built strings bound both
// analyzers' recall — the shared false negative.
func TestDeepReflectionMissedByBoth(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.AddRemoveGivenSAW = 1
		r.DeepReflectionGivenCapable = 1
	})
	gen, err := NewGenerator(simrand.New(13), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s := ScanApp(gen.Next())
	if !s.Truth.Overlay {
		t.Fatal("capable app not labeled capable")
	}
	if s.Grep.CallsAddView || s.Static.DrawAndDestroy {
		t.Fatalf("deep reflection resolved: grep=%v static=%v", s.Grep.CallsAddView, s.Static.DrawAndDestroy)
	}
}

// TestGuardedDecoyFoolsBoth: the always-false-guarded decoy is a false
// positive for grep and for the path-insensitive call graph alike.
func TestGuardedDecoyFoolsBoth(t *testing.T) {
	rates := forceRates(func(r *Rates) { r.GuardedOverlayGivenSAW = 1 })
	gen, err := NewGenerator(simrand.New(14), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s := ScanApp(gen.Next())
	if s.Truth.Overlay {
		t.Fatal("guarded decoy labeled capable")
	}
	if !s.Static.DrawAndDestroy {
		t.Fatal("path-insensitive analysis should reach the guarded sink")
	}
}

// TestToastCapabilityVsFeature: the one-shot customized toast is a
// feature, the re-enqueueing loop a capability.
func TestToastCapabilityVsFeature(t *testing.T) {
	oneShot, err := NewGenerator(simrand.New(15), Rates{CustomToast: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s := ScanApp(oneShot.Next())
	if !s.Static.SetViewReachable || s.Static.ToastReplace {
		t.Fatalf("one-shot toast: setView=%v replace=%v", s.Static.SetViewReachable, s.Static.ToastReplace)
	}
	looping, err := NewGenerator(simrand.New(16), Rates{CustomToast: 1, ToastReplaceGivenToast: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s = ScanApp(looping.Next())
	if !s.Static.ToastReplace || !s.Truth.ToastReplace {
		t.Fatalf("toast loop: static=%v truth=%v", s.Static.ToastReplace, s.Truth.ToastReplace)
	}
}

// TestA11yTimingWiring: a11y-wired attack apps are detected; unwired a11y
// services are not.
func TestA11yTimingWiring(t *testing.T) {
	wired, err := NewGenerator(simrand.New(17), Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1, A11yAttackGivenCapable: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s := ScanApp(wired.Next())
	if !s.Static.A11yTiming || !s.Truth.A11yTiming {
		t.Fatalf("wired a11y: static=%v truth=%v", s.Static.A11yTiming, s.Truth.A11yTiming)
	}
	unwired, err := NewGenerator(simrand.New(18), Rates{SAW: 1, A11yGivenSAW: 1, AddRemoveGivenSAW: 1})
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	s = ScanApp(unwired.Next())
	if s.Static.A11yTiming || s.Truth.A11yTiming {
		t.Fatalf("unwired a11y flagged: static=%v truth=%v", s.Static.A11yTiming, s.Truth.A11yTiming)
	}
}

// TestStudyReproducesPaperProportions runs a 50k-app corpus and checks the
// three §VI-C2 counts land within 20% of the paper's proportions.
func TestStudyReproducesPaperProportions(t *testing.T) {
	const n = 50000
	rep, err := Study(1, n)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	if rep.Total != n {
		t.Fatalf("Total = %d, want %d", rep.Total, n)
	}
	scale := float64(n) / float64(PaperCorpusSize)
	checks := []struct {
		name  string
		got   int
		paper int
	}{
		{"overlay+a11y", rep.OverlayPlusA11y, PaperOverlayPlusA11y},
		{"add/remove+SAW", rep.AddRemoveWithSAW, PaperAddRemoveWithSAW},
		{"custom toast", rep.CustomToast, PaperCustomToast},
	}
	for _, c := range checks {
		want := scale * float64(c.paper)
		if got := float64(c.got); got < 0.8*want || got > 1.2*want {
			t.Errorf("%s = %d, want ≈%.0f (±20%%)", c.name, c.got, want)
		}
	}
	if s := rep.String(); !strings.Contains(s, "scanned 50000 apps") {
		t.Fatalf("report string = %q", s)
	}
	// The call-graph analyzer must beat the grep baseline on per-app
	// classification of the overlay capability.
	if sp, gp := rep.StaticOverlay.Precision(), rep.GrepOverlay.Precision(); sp <= gp {
		t.Errorf("static precision %.3f not above grep %.3f", sp, gp)
	}
	if sr, gr := rep.StaticOverlay.Recall(), rep.GrepOverlay.Recall(); sr <= gr {
		t.Errorf("static recall %.3f not above grep %.3f", sr, gr)
	}
}

// TestFullScaleCorpusCalibration is the §VI-C2 acceptance check: at the
// paper's exact corpus size the parallel scanner's three headline counts
// land within ±2% of the paper's values.
func TestFullScaleCorpusCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("full 890,855-app scan skipped in -short")
	}
	if raceEnabled {
		t.Skip("full 890,855-app scan skipped under -race (minutes-long)")
	}
	rep, err := StudyWith(1, PaperCorpusSize, StudyOptions{})
	if err != nil {
		t.Fatalf("StudyWith: %v", err)
	}
	checks := []struct {
		name  string
		got   int
		paper int
	}{
		{"overlay+a11y", rep.OverlayPlusA11y, PaperOverlayPlusA11y},
		{"add/remove+SAW", rep.AddRemoveWithSAW, PaperAddRemoveWithSAW},
		{"custom toast", rep.CustomToast, PaperCustomToast},
	}
	for _, c := range checks {
		dev := math.Abs(float64(c.got)-float64(c.paper)) / float64(c.paper)
		if dev > 0.02 {
			t.Errorf("%s = %d deviates %.2f%% from paper %d (limit 2%%)", c.name, c.got, 100*dev, c.paper)
		}
	}
}

func TestStudyValidation(t *testing.T) {
	if _, err := Study(1, 0); err == nil {
		t.Fatal("zero corpus accepted")
	}
	if _, err := StudyWith(1, -5, StudyOptions{}); err == nil {
		t.Fatal("negative corpus accepted")
	}
}

func TestStudyDeterministic(t *testing.T) {
	a, err := Study(7, 2000)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	b, err := Study(7, 2000)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
}

// TestStudyWorkerCountInvariant: the report is a pure function of (seed,
// n) — identical for any worker count, including a count above the chunk
// count.
func TestStudyWorkerCountInvariant(t *testing.T) {
	const n = 3*studyChunkSize + 17
	base, err := StudyWith(9, n, StudyOptions{Workers: 1})
	if err != nil {
		t.Fatalf("StudyWith(1 worker): %v", err)
	}
	for _, workers := range []int{2, 4, 16} {
		rep, err := StudyWith(9, n, StudyOptions{Workers: workers})
		if err != nil {
			t.Fatalf("StudyWith(%d workers): %v", workers, err)
		}
		if rep != base {
			t.Fatalf("worker count %d changed the report:\n%+v\nvs\n%+v", workers, rep, base)
		}
	}
}

// TestStudyProgress: the progress callback reports monotonically
// increasing scanned counts ending at n.
func TestStudyProgress(t *testing.T) {
	const n = 2*studyChunkSize + 5
	var calls []int
	_, err := StudyWith(3, n, StudyOptions{Workers: 2, Progress: func(scanned, total int) {
		if total != n {
			t.Errorf("total = %d, want %d", total, n)
		}
		calls = append(calls, scanned)
	}})
	if err != nil {
		t.Fatalf("StudyWith: %v", err)
	}
	if len(calls) != 3 {
		t.Fatalf("progress calls = %d, want 3 (one per chunk)", len(calls))
	}
	for i := 1; i < len(calls); i++ {
		if calls[i] <= calls[i-1] {
			t.Fatalf("progress not monotone: %v", calls)
		}
	}
	if calls[len(calls)-1] != n {
		t.Fatalf("final progress = %d, want %d", calls[len(calls)-1], n)
	}
}

func TestPackagesUnique(t *testing.T) {
	gen, err := NewGenerator(simrand.New(5), PaperRates())
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		apk := gen.Next()
		if seen[apk.Package] {
			t.Fatalf("duplicate package %s", apk.Package)
		}
		seen[apk.Package] = true
	}
}

func TestDetectorStats(t *testing.T) {
	var d DetectorStats
	d.add(true, true)
	d.add(true, false)
	d.add(false, true)
	d.add(false, false)
	if d.TP != 1 || d.FP != 1 || d.FN != 1 || d.TN != 1 {
		t.Fatalf("confusion = %+v", d)
	}
	if p := d.Precision(); p != 0.5 {
		t.Errorf("precision = %v", p)
	}
	if r := d.Recall(); r != 0.5 {
		t.Errorf("recall = %v", r)
	}
	var empty DetectorStats
	if empty.Precision() != 1 || empty.Recall() != 1 {
		t.Error("empty stats should report perfect precision/recall")
	}
}

// TestGenerateAppsMatchesStudyCorpus pins the public corpus accessor to
// the study's own generation: the report assembled by scanning
// GenerateApps output must be byte-identical to StudyWith over the same
// seed and size, including across a chunk boundary.
func TestGenerateAppsMatchesStudyCorpus(t *testing.T) {
	const seed, n = 42, studyChunkSize + 257
	apks, err := GenerateApps(seed, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	if len(apks) != n {
		t.Fatalf("got %d apps, want %d", len(apks), n)
	}
	var got Report
	for _, apk := range apks {
		got.Add(ScanApp(apk))
	}
	want, err := Study(seed, n)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("GenerateApps corpus diverges from Study:\n%s\nvs\n%s", got, want)
	}
}

// TestGenerateAppRandomAccess checks a single-app lookup deep inside a
// later chunk agrees with the contiguous range accessor, and that the
// returned label is the generator's own truth.
func TestGenerateAppRandomAccess(t *testing.T) {
	const seed = 7
	const idx = studyChunkSize + 904
	ir, truth, err := GenerateApp(seed, idx)
	if err != nil {
		t.Fatal(err)
	}
	apks, err := GenerateApps(seed, studyChunkSize, 1000)
	if err != nil {
		t.Fatal(err)
	}
	want := apks[idx-studyChunkSize]
	if ir.Package != want.IR.Package || truth != want.Truth {
		t.Fatalf("GenerateApp(%d) = %s %+v, want %s %+v", idx, ir.Package, truth, want.IR.Package, want.Truth)
	}
	wantPkg := fmt.Sprintf("com.gen.app%06d", idx+1)
	if ir.Package != wantPkg {
		t.Fatalf("package %s, want %s", ir.Package, wantPkg)
	}
}

func TestGenerateAppsRejectsBadRange(t *testing.T) {
	if _, err := GenerateApps(42, -1, 1); err == nil {
		t.Error("negative start accepted")
	}
	if _, err := GenerateApps(42, 0, 0); err == nil {
		t.Error("zero count accepted")
	}
}
