// Package appstore reproduces the paper's Section VI-C2 app-market study.
// The paper crawled 890,855 APKs from AndroZoo and scanned them with an
// aapt-based manifest analyzer and a FlowDroid-based method analyzer,
// finding 4,405 apps that request SYSTEM_ALERT_WINDOW *and* register an
// accessibility service, 18,887 that call both addView() and removeView()
// and request SYSTEM_ALERT_WINDOW, and 15,179 that use a customized toast.
//
// AndroZoo is not redistributable, so this package substitutes a synthetic
// corpus: a generator that emits APK stand-ins (manifest text plus DEX
// method references) whose feature marginals are calibrated to the paper's
// measured rates, and scanners that actually parse those artifacts the way
// aapt and FlowDroid do — the analysis pipeline is real, the inputs are
// synthetic.
package appstore

import (
	"fmt"
	"strings"

	"repro/internal/simrand"
)

// Android identifier constants the scanners look for.
const (
	// PermSystemAlertWindow is the overlay permission.
	PermSystemAlertWindow = "android.permission.SYSTEM_ALERT_WINDOW"
	// PermBindAccessibility marks accessibility services.
	PermBindAccessibility = "android.permission.BIND_ACCESSIBILITY_SERVICE"
	// RefAddView and RefRemoveView are the WindowManager method
	// references the FlowDroid pass searches for.
	RefAddView    = "Landroid/view/WindowManager;->addView(Landroid/view/View;Landroid/view/ViewGroup$LayoutParams;)V"
	RefRemoveView = "Landroid/view/WindowManager;->removeView(Landroid/view/View;)V"
	// RefToastSetView marks customized toasts (Toast.setView).
	RefToastSetView = "Landroid/widget/Toast;->setView(Landroid/view/View;)V"
)

// PaperCorpusSize is the AndroZoo sample size of Section VI-C2.
const PaperCorpusSize = 890855

// Paper counts for calibration checks.
const (
	PaperOverlayPlusA11y  = 4405
	PaperAddRemoveWithSAW = 18887
	PaperCustomToast      = 15179
)

// Rates parameterizes the synthetic corpus generator.
type Rates struct {
	// SAW is P(app requests SYSTEM_ALERT_WINDOW).
	SAW float64
	// A11yGivenSAW is P(accessibility service | SAW).
	A11yGivenSAW float64
	// A11yGivenNoSAW is P(accessibility service | ¬SAW).
	A11yGivenNoSAW float64
	// AddRemoveGivenSAW is P(calls addView and removeView | SAW).
	AddRemoveGivenSAW float64
	// AddRemoveGivenNoSAW is the same for apps without the permission
	// (in-app window management).
	AddRemoveGivenNoSAW float64
	// CustomToast is P(app calls Toast.setView), independent of the
	// overlay features.
	CustomToast float64
}

// PaperRates returns generator rates calibrated so that the expected
// counts at the AndroZoo sample size match Section VI-C2:
//
//	890855 × P(SAW)·P(a11y|SAW)       ≈ 4,405
//	890855 × P(SAW)·P(add&rm|SAW)     ≈ 18,887
//	890855 × P(toast)                 ≈ 15,179
func PaperRates() Rates {
	const (
		pSAW   = 0.04
		jointA = float64(PaperOverlayPlusA11y) / float64(PaperCorpusSize)
		jointR = float64(PaperAddRemoveWithSAW) / float64(PaperCorpusSize)
	)
	return Rates{
		SAW:                 pSAW,
		A11yGivenSAW:        jointA / pSAW,
		A11yGivenNoSAW:      0.005,
		AddRemoveGivenSAW:   jointR / pSAW,
		AddRemoveGivenNoSAW: 0.03,
		CustomToast:         float64(PaperCustomToast) / float64(PaperCorpusSize),
	}
}

// APK is a synthetic application artifact: the manifest XML the aapt pass
// parses and the DEX method references the FlowDroid pass greps.
type APK struct {
	// Package is the application id.
	Package string
	// Manifest is the AndroidManifest.xml text.
	Manifest string
	// DexRefs are the method references extracted from classes.dex.
	DexRefs []string
}

// fillerPermissions pads manifests so the scanner cannot cheat by length.
var fillerPermissions = []string{
	"android.permission.INTERNET",
	"android.permission.ACCESS_NETWORK_STATE",
	"android.permission.CAMERA",
	"android.permission.READ_CONTACTS",
	"android.permission.ACCESS_FINE_LOCATION",
	"android.permission.RECORD_AUDIO",
	"android.permission.WRITE_EXTERNAL_STORAGE",
	"android.permission.VIBRATE",
	"android.permission.WAKE_LOCK",
	"android.permission.RECEIVE_BOOT_COMPLETED",
}

var fillerRefs = []string{
	"Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V",
	"Landroid/widget/TextView;->setText(Ljava/lang/CharSequence;)V",
	"Ljava/net/HttpURLConnection;->connect()V",
	"Landroid/content/SharedPreferences;->edit()Landroid/content/SharedPreferences$Editor;",
	"Landroid/widget/Toast;->makeText(Landroid/content/Context;Ljava/lang/CharSequence;I)Landroid/widget/Toast;",
	"Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V",
}

// Generator emits synthetic APKs with the configured feature rates.
type Generator struct {
	rng   *simrand.Source
	rates Rates
	n     int
}

// NewGenerator builds a generator from a seed.
func NewGenerator(rng *simrand.Source, rates Rates) (*Generator, error) {
	if rng == nil {
		return nil, fmt.Errorf("appstore: nil rng")
	}
	for _, p := range []float64{rates.SAW, rates.A11yGivenSAW, rates.A11yGivenNoSAW, rates.AddRemoveGivenSAW, rates.AddRemoveGivenNoSAW, rates.CustomToast} {
		if p < 0 || p > 1 {
			return nil, fmt.Errorf("appstore: rate %v out of [0,1]", p)
		}
	}
	return &Generator{rng: rng, rates: rates}, nil
}

// Next generates one APK.
func (g *Generator) Next() APK {
	g.n++
	pkg := fmt.Sprintf("com.gen.app%06d", g.n)

	saw := g.rng.Bool(g.rates.SAW)
	var a11y, addRemove bool
	if saw {
		a11y = g.rng.Bool(g.rates.A11yGivenSAW)
		addRemove = g.rng.Bool(g.rates.AddRemoveGivenSAW)
	} else {
		a11y = g.rng.Bool(g.rates.A11yGivenNoSAW)
		addRemove = g.rng.Bool(g.rates.AddRemoveGivenNoSAW)
	}
	toast := g.rng.Bool(g.rates.CustomToast)

	var sb strings.Builder
	sb.WriteString(`<manifest xmlns:android="http://schemas.android.com/apk/res/android" package="` + pkg + "\">\n")
	// A few filler permissions in random positions.
	for _, i := range g.rng.Perm(len(fillerPermissions))[:2+g.rng.Intn(4)] {
		fmt.Fprintf(&sb, "  <uses-permission android:name=%q/>\n", fillerPermissions[i])
	}
	if saw {
		fmt.Fprintf(&sb, "  <uses-permission android:name=%q/>\n", PermSystemAlertWindow)
	}
	sb.WriteString("  <application>\n")
	if a11y {
		fmt.Fprintf(&sb, "    <service android:name=%q android:permission=%q/>\n",
			pkg+".AccessService", PermBindAccessibility)
	}
	sb.WriteString("  </application>\n</manifest>\n")

	refs := make([]string, 0, 8)
	for _, i := range g.rng.Perm(len(fillerRefs))[:2+g.rng.Intn(3)] {
		refs = append(refs, fillerRefs[i])
	}
	if addRemove {
		refs = append(refs, RefAddView, RefRemoveView)
	}
	if toast {
		refs = append(refs, RefToastSetView)
	}
	return APK{Package: pkg, Manifest: sb.String(), DexRefs: refs}
}

// ScanResult is the per-app analysis outcome.
type ScanResult struct {
	HasSAW          bool
	HasA11yService  bool
	CallsAddView    bool
	CallsRemoveView bool
	UsesCustomToast bool
}

// ScanManifest is the aapt-style pass: it parses the manifest text for the
// overlay permission and accessibility services.
func ScanManifest(manifest string) (hasSAW, hasA11y bool) {
	for _, line := range strings.Split(manifest, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "<uses-permission"):
			if name, ok := xmlAttr(line, "android:name"); ok && name == PermSystemAlertWindow {
				hasSAW = true
			}
		case strings.HasPrefix(line, "<service"):
			if perm, ok := xmlAttr(line, "android:permission"); ok && perm == PermBindAccessibility {
				hasA11y = true
			}
		}
	}
	return hasSAW, hasA11y
}

// xmlAttr extracts a quoted attribute value from a single-line XML tag.
func xmlAttr(line, attr string) (string, bool) {
	marker := attr + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// ScanDex is the FlowDroid-style pass: it searches the method-reference
// table for the WindowManager and Toast signatures of interest.
func ScanDex(refs []string) (addView, removeView, customToast bool) {
	for _, r := range refs {
		switch r {
		case RefAddView:
			addView = true
		case RefRemoveView:
			removeView = true
		case RefToastSetView:
			customToast = true
		}
	}
	return addView, removeView, customToast
}

// Scan runs both passes over one APK.
func Scan(apk APK) ScanResult {
	var res ScanResult
	res.HasSAW, res.HasA11yService = ScanManifest(apk.Manifest)
	res.CallsAddView, res.CallsRemoveView, res.UsesCustomToast = ScanDex(apk.DexRefs)
	return res
}

// Report aggregates the Section VI-C2 counts.
type Report struct {
	// Total is the number of apps scanned.
	Total int
	// OverlayPlusA11y counts apps with SYSTEM_ALERT_WINDOW and a
	// registered accessibility service (paper: 4,405).
	OverlayPlusA11y int
	// AddRemoveWithSAW counts apps calling both addView and removeView
	// with SYSTEM_ALERT_WINDOW (paper: 18,887).
	AddRemoveWithSAW int
	// CustomToast counts apps using a customized toast (paper: 15,179).
	CustomToast int
}

// Add folds one scan result into the report.
func (r *Report) Add(res ScanResult) {
	r.Total++
	if res.HasSAW && res.HasA11yService {
		r.OverlayPlusA11y++
	}
	if res.HasSAW && res.CallsAddView && res.CallsRemoveView {
		r.AddRemoveWithSAW++
	}
	if res.UsesCustomToast {
		r.CustomToast++
	}
}

// String renders the report next to the paper's numbers.
func (r Report) String() string {
	scale := float64(r.Total) / float64(PaperCorpusSize)
	return fmt.Sprintf(
		"scanned %d apps\n"+
			"  SYSTEM_ALERT_WINDOW + accessibility service: %d (paper: %d, scaled %.0f)\n"+
			"  addView+removeView with SYSTEM_ALERT_WINDOW: %d (paper: %d, scaled %.0f)\n"+
			"  customized toast:                            %d (paper: %d, scaled %.0f)",
		r.Total,
		r.OverlayPlusA11y, PaperOverlayPlusA11y, scale*PaperOverlayPlusA11y,
		r.AddRemoveWithSAW, PaperAddRemoveWithSAW, scale*PaperAddRemoveWithSAW,
		r.CustomToast, PaperCustomToast, scale*PaperCustomToast,
	)
}

// Study generates and scans a synthetic corpus of n apps. Use
// n = PaperCorpusSize for the full-scale reproduction.
func Study(seed int64, n int) (Report, error) {
	if n <= 0 {
		return Report{}, fmt.Errorf("appstore: non-positive corpus size %d", n)
	}
	gen, err := NewGenerator(simrand.New(seed).Derive("corpus"), PaperRates())
	if err != nil {
		return Report{}, err
	}
	var rep Report
	for i := 0; i < n; i++ {
		rep.Add(Scan(gen.Next()))
	}
	return rep, nil
}
