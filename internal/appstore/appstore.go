// Package appstore reproduces the paper's Section VI-C2 app-market study.
// The paper crawled 890,855 APKs from AndroZoo and scanned them with an
// aapt-based manifest analyzer and a FlowDroid-based method analyzer,
// finding 4,405 apps that request SYSTEM_ALERT_WINDOW *and* register an
// accessibility service, 18,887 that call both addView() and removeView()
// and request SYSTEM_ALERT_WINDOW, and 15,179 that use a customized toast.
//
// AndroZoo is not redistributable, so this package substitutes a synthetic
// corpus: a generator that emits APK stand-ins whose feature marginals are
// calibrated to the paper's measured rates. Each stand-in carries three
// analyzer views of the same app:
//
//   - the AndroidManifest.xml text (parsed by the aapt-style pass),
//   - the flat DEX method-reference table (searched by the grep baseline),
//   - a full dexir.App IR with instruction bodies, which the
//     staticanalysis call-graph pass analyzes the way FlowDroid does.
//
// The generator also plants decoys that separate the two code analyses:
// dead-code and always-false-guarded overlay calls (grep false positives)
// and reflectively dispatched overlay calls (grep false negatives), plus a
// per-app ground-truth label so the study can report each analyzer's
// precision and recall, not just its aggregate counts.
//
// A second family of decoys — disabled at the paper's rates, enabled by
// PrecisionRates — separates the staticanalysis precision tiers from each
// other: reflective sinks whose names are split across concatenated
// fragments or returned by helper methods (invisible below Tier2), and
// reachable attack wiring behind constant-false BuildConfig-style flags
// (a false positive below Tier2). The `precision` experiment scans this
// corpus at every tier and scores each against the ground truth.
package appstore

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"

	"repro/internal/dexir"
	"repro/internal/experiment/sched"
	"repro/internal/simrand"
	"repro/internal/staticanalysis"
)

// Android identifier constants the scanners look for.
const (
	// PermSystemAlertWindow is the overlay permission.
	PermSystemAlertWindow = dexir.PermSystemAlertWindow
	// PermBindAccessibility marks accessibility services.
	PermBindAccessibility = dexir.PermBindAccessibility
	// RefAddView and RefRemoveView are the WindowManager method
	// references the FlowDroid pass searches for.
	RefAddView    = string(dexir.RefAddView)
	RefRemoveView = string(dexir.RefRemoveView)
	// RefToastSetView marks customized toasts (Toast.setView).
	RefToastSetView = string(dexir.RefToastSetView)
)

// PaperCorpusSize is the AndroZoo sample size of Section VI-C2.
const PaperCorpusSize = 890855

// Paper counts for calibration checks.
const (
	PaperOverlayPlusA11y  = 4405
	PaperAddRemoveWithSAW = 18887
	PaperCustomToast      = 15179
)

// Rates parameterizes the synthetic corpus generator.
type Rates struct {
	// SAW is P(app requests SYSTEM_ALERT_WINDOW).
	SAW float64
	// A11yGivenSAW is P(accessibility service | SAW).
	A11yGivenSAW float64
	// A11yGivenNoSAW is P(accessibility service | ¬SAW).
	A11yGivenNoSAW float64
	// AddRemoveGivenSAW is P(genuinely reachable addView+removeView | SAW)
	// — the draw-and-destroy ground truth.
	AddRemoveGivenSAW float64
	// AddRemoveGivenNoSAW is the same for apps without the permission
	// (in-app window management).
	AddRemoveGivenNoSAW float64
	// CustomToast is P(app genuinely uses Toast.setView), independent of
	// the overlay features.
	CustomToast float64

	// ReflectionGivenCapable is P(overlay calls dispatched via resolvable
	// reflection | capable): the refs vanish from the method-reference
	// table (grep false negative) while constant-string resolution still
	// finds them.
	ReflectionGivenCapable float64
	// DeepReflectionGivenCapable is P(overlay calls behind runtime-built
	// strings | capable): invisible to both analyses (a shared false
	// negative, bounding achievable recall).
	DeepReflectionGivenCapable float64
	// DeadOverlayGivenSAW is P(dead-code addView+removeView decoy | SAW
	// without the capability): in the ref table, never reachable — a grep
	// false positive the call graph rejects.
	DeadOverlayGivenSAW float64
	// GuardedOverlayGivenSAW is P(reachable overlay calls behind an
	// always-false guard | SAW without the capability): a false positive
	// for both grep and the path-insensitive reachability pass.
	GuardedOverlayGivenSAW float64
	// ToastReplaceGivenToast is P(re-enqueueing toast loop | customized
	// toast) — the §IV capability among feature users.
	ToastReplaceGivenToast float64
	// DeadToastGivenNoToast is P(dead-code Toast.setView decoy | no
	// customized toast) — a grep false positive.
	DeadToastGivenNoToast float64
	// A11yAttackGivenCapable is P(accessibility event handler wired to
	// the overlay calls | a11y service ∧ overlay-capable) — the §V
	// trigger.
	A11yAttackGivenCapable float64

	// The tier-separating obfuscation rates below are all zero at
	// PaperRates (the legacy corpus is byte-identical); PrecisionRates
	// enables them for the precision experiment's corpus.

	// SplitReflectGivenCapable is P(reflective overlay dispatch whose
	// class/method names are concatenated from fragments | capable):
	// a false negative for grep and for the Tier0/Tier1 const-string
	// window, recovered by Tier2 constant propagation.
	SplitReflectGivenCapable float64
	// CrossReflectGivenCapable is P(reflective overlay dispatch whose
	// names are returned by helper methods | capable): resolved only by
	// Tier2's interprocedural constant-return summaries.
	CrossReflectGivenCapable float64
	// FlagOverlayGivenSAW is P(reachable overlay pair behind a
	// constant-false flag guard | SAW without the capability): a false
	// positive for Tier0 and Tier1, pruned by Tier2's flag table.
	FlagOverlayGivenSAW float64
	// FlagToastGivenToast is P(flag-guarded toast re-enqueue | customized
	// toast without the replace capability): a Tier0/Tier1 toast-replace
	// false positive.
	FlagToastGivenToast float64
	// FlagA11yGivenBenign is P(flag-guarded event-handler wiring to the
	// overlay calls | benign a11y service in a capable app): a
	// Tier0/Tier1 a11y-timing false positive.
	FlagA11yGivenBenign float64
}

// probabilities lists every rate field for validation.
func (r Rates) probabilities() []float64 {
	return []float64{
		r.SAW, r.A11yGivenSAW, r.A11yGivenNoSAW, r.AddRemoveGivenSAW,
		r.AddRemoveGivenNoSAW, r.CustomToast, r.ReflectionGivenCapable,
		r.DeepReflectionGivenCapable, r.DeadOverlayGivenSAW,
		r.GuardedOverlayGivenSAW, r.ToastReplaceGivenToast,
		r.DeadToastGivenNoToast, r.A11yAttackGivenCapable,
		r.SplitReflectGivenCapable, r.CrossReflectGivenCapable,
		r.FlagOverlayGivenSAW, r.FlagToastGivenToast, r.FlagA11yGivenBenign,
	}
}

// obfuscated reports whether any tier-separating decoy is enabled; the
// generator derives its obfuscation stream only then, so the legacy
// corpus (all obfuscation rates zero) is reproduced draw-for-draw.
func (r Rates) obfuscated() bool {
	return r.SplitReflectGivenCapable > 0 || r.CrossReflectGivenCapable > 0 ||
		r.FlagOverlayGivenSAW > 0 || r.FlagToastGivenToast > 0 || r.FlagA11yGivenBenign > 0
}

func validateRates(r Rates) error {
	for _, p := range r.probabilities() {
		if p < 0 || p > 1 {
			return fmt.Errorf("appstore: rate %v out of [0,1]", p)
		}
	}
	return nil
}

// PaperRates returns generator rates calibrated so that the expected
// counts at the AndroZoo sample size match Section VI-C2:
//
//	890855 × P(SAW)·P(a11y|SAW)       ≈ 4,405
//	890855 × P(SAW)·P(add&rm|SAW)     ≈ 18,887
//	890855 × P(toast)                 ≈ 15,179
//
// The decoy rates are chosen so the static analyzer's count stays on the
// paper's value (its false positives and negatives are small and roughly
// cancel) while the grep baseline visibly over- and under-counts.
func PaperRates() Rates {
	const (
		pSAW   = 0.04
		jointA = float64(PaperOverlayPlusA11y) / float64(PaperCorpusSize)
		jointR = float64(PaperAddRemoveWithSAW) / float64(PaperCorpusSize)
	)
	return Rates{
		SAW:                 pSAW,
		A11yGivenSAW:        jointA / pSAW,
		A11yGivenNoSAW:      0.005,
		AddRemoveGivenSAW:   jointR / pSAW,
		AddRemoveGivenNoSAW: 0.03,
		CustomToast:         float64(PaperCustomToast) / float64(PaperCorpusSize),

		ReflectionGivenCapable:     0.15,
		DeepReflectionGivenCapable: 0.01,
		DeadOverlayGivenSAW:        0.12,
		GuardedOverlayGivenSAW:     0.012,
		ToastReplaceGivenToast:     0.30,
		DeadToastGivenNoToast:      0.005,
		A11yAttackGivenCapable:     0.50,
	}
}

// PrecisionRates returns the paper rates with the tier-separating decoys
// enabled — the corpus the `precision` experiment scans. Each rate is
// large enough that every tier-to-tier delta is visible at modest corpus
// sizes, and the decoys are mutually exclusive with the legacy ones so a
// single app never mixes obfuscation styles.
func PrecisionRates() Rates {
	r := PaperRates()
	r.SplitReflectGivenCapable = 0.12
	r.CrossReflectGivenCapable = 0.12
	r.FlagOverlayGivenSAW = 0.10
	r.FlagToastGivenToast = 0.10
	r.FlagA11yGivenBenign = 0.50
	return r
}

// Truth is the generator's ground-truth label for one app — what a
// dynamic oracle running the app would observe.
type Truth struct {
	// Overlay: addView+removeView genuinely reachable at runtime in an
	// app holding SYSTEM_ALERT_WINDOW (the paper's 18,887 row).
	Overlay bool
	// Toast: a customized toast (setView) genuinely used (the 15,179 row).
	Toast bool
	// ToastReplace: the §IV re-enqueueing toast loop.
	ToastReplace bool
	// A11yTiming: accessibility events wired to the overlay calls.
	A11yTiming bool
}

// APK is a synthetic application artifact carrying all three analyzer
// views plus its ground truth.
type APK struct {
	// Package is the application id.
	Package string
	// Manifest is the AndroidManifest.xml text.
	Manifest string
	// DexRefs is the flat method-reference table extracted from
	// classes.dex — the grep baseline's input.
	DexRefs []string
	// IR is the full instruction-level representation — the call-graph
	// analyzer's input.
	IR *dexir.App
	// Truth is the generator's ground-truth label.
	Truth Truth
}

// fillerPermissions pads manifests so the scanner cannot cheat by length.
var fillerPermissions = []string{
	"android.permission.INTERNET",
	"android.permission.ACCESS_NETWORK_STATE",
	"android.permission.CAMERA",
	"android.permission.READ_CONTACTS",
	"android.permission.ACCESS_FINE_LOCATION",
	"android.permission.RECORD_AUDIO",
	"android.permission.WRITE_EXTERNAL_STORAGE",
	"android.permission.VIBRATE",
	"android.permission.WAKE_LOCK",
	"android.permission.RECEIVE_BOOT_COMPLETED",
}

// fillerRefs are benign framework calls emitted into method bodies so the
// ref table never degenerates to just the signatures of interest.
var fillerRefs = []dexir.MethodRef{
	"Landroid/app/Activity;->onCreate(Landroid/os/Bundle;)V",
	"Landroid/widget/TextView;->setText(Ljava/lang/CharSequence;)V",
	"Ljava/net/HttpURLConnection;->connect()V",
	"Landroid/content/SharedPreferences;->edit()Landroid/content/SharedPreferences$Editor;",
	"Landroid/widget/Toast;->makeText(Landroid/content/Context;Ljava/lang/CharSequence;I)Landroid/widget/Toast;",
	"Landroid/view/View;->setOnClickListener(Landroid/view/View$OnClickListener;)V",
}

// Generator emits synthetic APKs with the configured feature rates.
type Generator struct {
	rng   *simrand.Source
	obf   *simrand.Source // tier-separating decoy draws; nil at paper rates
	rates Rates
	base  int
	n     int
}

// NewGenerator builds a generator from a seed.
func NewGenerator(rng *simrand.Source, rates Rates) (*Generator, error) {
	if rng == nil {
		return nil, fmt.Errorf("appstore: nil rng")
	}
	if err := validateRates(rates); err != nil {
		return nil, err
	}
	g := &Generator{rng: rng, rates: rates}
	if rates.obfuscated() {
		// A dedicated sub-stream keeps the legacy draw sequence intact:
		// Derive consumes from rng, so it runs only when some obfuscation
		// rate is nonzero — at PaperRates the corpus stays byte-identical.
		g.obf = rng.Derive("obfuscation")
	}
	return g, nil
}

// newGeneratorAt builds a generator whose package ids start at base+1;
// the parallel study uses it so every chunk names disjoint apps.
func newGeneratorAt(rng *simrand.Source, rates Rates, base int) (*Generator, error) {
	g, err := NewGenerator(rng, rates)
	if err != nil {
		return nil, err
	}
	g.base = base
	return g, nil
}

// features is one app's drawn feature vector.
type features struct {
	saw, a11y, addRemove, toast bool
	reflect, deepReflect        bool
	deadOverlay, guardedOverlay bool
	toastReplace, deadToast     bool
	a11yAttack                  bool
	// Tier-separating decoys (PrecisionRates corpus only).
	splitReflect, crossReflect  bool
	flagOverlay, flagToast      bool
	flagA11y                    bool
	fillerPermIdx, fillerRefIdx []int
}

// draw samples one feature vector; the draw sequence is fixed so a given
// stream position always yields the same app.
func (g *Generator) draw() features {
	var f features
	r := g.rates
	f.saw = g.rng.Bool(r.SAW)
	if f.saw {
		f.a11y = g.rng.Bool(r.A11yGivenSAW)
		f.addRemove = g.rng.Bool(r.AddRemoveGivenSAW)
	} else {
		f.a11y = g.rng.Bool(r.A11yGivenNoSAW)
		f.addRemove = g.rng.Bool(r.AddRemoveGivenNoSAW)
	}
	f.toast = g.rng.Bool(r.CustomToast)
	if f.addRemove {
		f.reflect = g.rng.Bool(r.ReflectionGivenCapable)
		f.deepReflect = g.rng.Bool(r.DeepReflectionGivenCapable)
		if f.deepReflect {
			f.reflect = false
		}
	} else if f.saw {
		f.deadOverlay = g.rng.Bool(r.DeadOverlayGivenSAW)
		if !f.deadOverlay {
			f.guardedOverlay = g.rng.Bool(r.GuardedOverlayGivenSAW)
		}
	}
	if f.toast {
		f.toastReplace = g.rng.Bool(r.ToastReplaceGivenToast)
	} else {
		f.deadToast = g.rng.Bool(r.DeadToastGivenNoToast)
	}
	if f.a11y && f.saw && f.addRemove {
		f.a11yAttack = g.rng.Bool(r.A11yAttackGivenCapable)
	}
	f.fillerPermIdx = g.rng.Perm(len(fillerPermissions))[:2+g.rng.Intn(4)]
	f.fillerRefIdx = g.rng.Perm(len(fillerRefs))[:2+g.rng.Intn(3)]
	// Tier-separating decoys draw from the dedicated obfuscation stream,
	// after every legacy draw, so enabling them cannot shift the features
	// above. Each decoy excludes the legacy obfuscations/decoys of the
	// same app so one app carries one dispatch style.
	if g.obf != nil {
		if f.addRemove && !f.reflect && !f.deepReflect {
			f.splitReflect = g.obf.Bool(r.SplitReflectGivenCapable)
			if !f.splitReflect {
				f.crossReflect = g.obf.Bool(r.CrossReflectGivenCapable)
			}
		}
		if f.saw && !f.addRemove && !f.deadOverlay && !f.guardedOverlay {
			f.flagOverlay = g.obf.Bool(r.FlagOverlayGivenSAW)
		}
		if f.toast && !f.toastReplace {
			f.flagToast = g.obf.Bool(r.FlagToastGivenToast)
		}
		if f.a11y && f.saw && f.addRemove && !f.a11yAttack {
			f.flagA11y = g.obf.Bool(r.FlagA11yGivenBenign)
		}
	}
	return f
}

// Next generates one APK.
func (g *Generator) Next() APK {
	g.n++
	pkg := fmt.Sprintf("com.gen.app%06d", g.base+g.n)
	f := g.draw()
	ir := buildIR(pkg, f)
	truth := Truth{
		Overlay:      f.saw && f.addRemove,
		Toast:        f.toast,
		ToastReplace: f.toastReplace,
		A11yTiming:   f.a11yAttack,
	}
	return APK{
		Package:  pkg,
		Manifest: buildManifest(pkg, f),
		DexRefs:  ir.MethodRefTable(),
		IR:       ir,
		Truth:    truth,
	}
}

// buildManifest renders the AndroidManifest.xml view.
func buildManifest(pkg string, f features) string {
	var sb strings.Builder
	sb.WriteString(`<manifest xmlns:android="http://schemas.android.com/apk/res/android" package="` + pkg + "\">\n")
	for _, i := range f.fillerPermIdx {
		fmt.Fprintf(&sb, "  <uses-permission android:name=%q/>\n", fillerPermissions[i])
	}
	if f.saw {
		fmt.Fprintf(&sb, "  <uses-permission android:name=%q/>\n", PermSystemAlertWindow)
	}
	sb.WriteString("  <application>\n")
	if f.a11y {
		fmt.Fprintf(&sb, "    <service android:name=%q android:permission=%q/>\n",
			pkg+".AccessService", PermBindAccessibility)
	}
	sb.WriteString("  </application>\n</manifest>\n")
	return sb.String()
}

// overlayCallPair emits the addView+removeView call sites for a capable
// app in the requested dispatch style. The split and cross-method styles
// also return the helper methods the dispatch depends on (an Obf class),
// which the caller installs alongside Main.
func overlayCallPair(pkg string, f features) (body []dexir.Instruction, helpers []dexir.Method) {
	switch {
	case f.deepReflect:
		// Class/method strings assembled at runtime: the const-strings
		// present are fragments no resolver maps to a method.
		return []dexir.Instruction{
			{Op: dexir.OpConstString, Str: "android.view.Window"},
			{Op: dexir.OpConstString, Str: "add"},
			{Op: dexir.OpReflectInvoke, InLoop: true},
			{Op: dexir.OpConstString, Str: "remove"},
			{Op: dexir.OpReflectInvoke, InLoop: true},
		}, nil
	case f.reflect:
		return []dexir.Instruction{
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "addView"},
			{Op: dexir.OpReflectInvoke, InLoop: true},
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "removeView"},
			{Op: dexir.OpReflectInvoke, InLoop: true},
		}, nil
	case f.splitReflect:
		// Names split across concatenated fragments: the rolling window
		// sees pairs like ("add","View") that resolve to nothing, so only
		// register-tracking constant propagation recovers the sinks.
		return []dexir.Instruction{
			{Op: dexir.OpConstString, Dst: 1, Str: "android.view.Window"},
			{Op: dexir.OpConstString, Dst: 2, Str: "Manager"},
			{Op: dexir.OpConcat, Dst: 3, SrcA: 1, SrcB: 2},
			{Op: dexir.OpConstString, Dst: 4, Str: "add"},
			{Op: dexir.OpConstString, Dst: 5, Str: "View"},
			{Op: dexir.OpConcat, Dst: 6, SrcA: 4, SrcB: 5},
			{Op: dexir.OpReflectInvoke, ClassReg: 3, MethodReg: 6, InLoop: true},
			{Op: dexir.OpConstString, Dst: 7, Str: "remove"},
			{Op: dexir.OpConcat, Dst: 8, SrcA: 7, SrcB: 5},
			{Op: dexir.OpMove, Dst: 9, SrcA: 3},
			{Op: dexir.OpReflectInvoke, ClassReg: 9, MethodReg: 8, InLoop: true},
		}, nil
	case f.crossReflect:
		// Names returned by helper methods: no const-string appears in the
		// dispatching body at all, so only interprocedural constant-return
		// summaries recover the sinks.
		obfCls := dexir.ClassName(pkg, "Obf")
		target := dexir.Ref(obfCls, "target", "()Ljava/lang/String;")
		action := dexir.Ref(obfCls, "action", "()Ljava/lang/String;")
		undo := dexir.Ref(obfCls, "undo", "()Ljava/lang/String;")
		helpers = []dexir.Method{
			{Ref: target, Body: []dexir.Instruction{
				{Op: dexir.OpConstString, Dst: 1, Str: "android.view.Window"},
				{Op: dexir.OpConstString, Dst: 2, Str: "Manager"},
				{Op: dexir.OpConcat, Dst: 3, SrcA: 1, SrcB: 2},
				{Op: dexir.OpReturn, SrcA: 3},
			}},
			{Ref: action, Body: []dexir.Instruction{
				{Op: dexir.OpConstString, Dst: 1, Str: "addView"},
				{Op: dexir.OpReturn, SrcA: 1},
			}},
			{Ref: undo, Body: []dexir.Instruction{
				{Op: dexir.OpConstString, Dst: 1, Str: "removeView"},
				{Op: dexir.OpReturn, SrcA: 1},
			}},
		}
		return []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: target, Dst: 1},
			{Op: dexir.OpInvoke, Target: action, Dst: 2},
			{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 2, InLoop: true},
			{Op: dexir.OpInvoke, Target: undo, Dst: 3},
			{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 3, InLoop: true},
		}, helpers
	default:
		return []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, InLoop: true},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, InLoop: true},
		}, nil
	}
}

// buildIR assembles the instruction-level view of one app.
func buildIR(pkg string, f features) *dexir.App {
	mainCls := dexir.ClassName(pkg, "Main")
	onCreate := dexir.Ref(mainCls, "onCreate", "(Landroid/os/Bundle;)V")
	swap := dexir.Ref(mainCls, "swap", "()V")
	toastLoop := dexir.Ref(mainCls, "toastLoop", "()V")
	debugOverlay := dexir.Ref(mainCls, "debugOverlay", "()V")
	betaOverlay := dexir.Ref(mainCls, "betaOverlay", "()V")

	// Flag-guarded decoys share one constant-false BuildConfig-style flag
	// per app, assigned by a <clinit> the Tier2 flag table reads.
	var decoyFlag string
	if f.flagOverlay || f.flagToast || f.flagA11y {
		decoyFlag = dexir.ClassName(pkg, "BuildConfig") + "->DEBUG_DECOR"
	}

	var onCreateBody []dexir.Instruction
	for _, i := range f.fillerRefIdx {
		onCreateBody = append(onCreateBody, dexir.Instruction{Op: dexir.OpInvoke, Target: fillerRefs[i]})
	}
	mainMethods := []dexir.Method{{}} // onCreate placeholder, filled below
	var obfMethods []dexir.Method

	if f.addRemove {
		onCreateBody = append(onCreateBody, dexir.Instruction{
			Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: swap,
		})
		body, helpers := overlayCallPair(pkg, f)
		obfMethods = helpers
		body = append(body, dexir.Instruction{
			Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: swap,
		})
		mainMethods = append(mainMethods, dexir.Method{Ref: swap, Body: body})
	}
	if f.guardedOverlay {
		onCreateBody = append(onCreateBody, dexir.Instruction{Op: dexir.OpInvoke, Target: debugOverlay})
		mainMethods = append(mainMethods, dexir.Method{Ref: debugOverlay, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, Guard: dexir.GuardAlwaysFalse},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, Guard: dexir.GuardAlwaysFalse},
		}})
	}
	if f.flagOverlay {
		onCreateBody = append(onCreateBody, dexir.Instruction{Op: dexir.OpInvoke, Target: betaOverlay})
		mainMethods = append(mainMethods, dexir.Method{Ref: betaOverlay, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, Guard: dexir.GuardFlag, Flag: decoyFlag},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, Guard: dexir.GuardFlag, Flag: decoyFlag},
		}})
	}
	if f.toast {
		onCreateBody = append(onCreateBody, dexir.Instruction{
			Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: toastLoop,
		})
		body := []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefToastSetView},
			{Op: dexir.OpInvoke, Target: dexir.RefToastShow},
		}
		if f.toastReplace {
			body = append(body, dexir.Instruction{
				Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: toastLoop,
			})
		}
		if f.flagToast {
			// A flag-guarded self re-enqueue: the re-show signature exists
			// on paths a Tier2 pass can prove dead.
			body = append(body, dexir.Instruction{
				Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: toastLoop,
				Guard: dexir.GuardFlag, Flag: decoyFlag,
			})
		}
		mainMethods = append(mainMethods, dexir.Method{Ref: toastLoop, Body: body})
	}
	mainMethods[0] = dexir.Method{Ref: onCreate, Body: onCreateBody}

	app := &dexir.App{
		Package: pkg,
		Classes: []dexir.Class{{Name: mainCls, Methods: mainMethods}},
		Components: []dexir.Component{
			{Name: mainCls, Kind: dexir.Activity, EntryPoints: []dexir.MethodRef{onCreate}},
		},
	}
	if len(obfMethods) > 0 {
		app.Classes = append(app.Classes, dexir.Class{Name: dexir.ClassName(pkg, "Obf"), Methods: obfMethods})
	}
	if decoyFlag != "" {
		cfgCls := dexir.ClassName(pkg, "BuildConfig")
		app.Classes = append(app.Classes, dexir.Class{Name: cfgCls, Methods: []dexir.Method{
			{Ref: dexir.Ref(cfgCls, "<clinit>", "()V"), Body: []dexir.Instruction{
				{Op: dexir.OpSetFlag, Flag: decoyFlag, BoolVal: false},
			}},
		}})
	}
	if f.saw {
		app.Permissions = append(app.Permissions, PermSystemAlertWindow)
	}
	if f.deadOverlay {
		adCls := dexir.ClassName(pkg, "AdSdk")
		app.Classes = append(app.Classes, dexir.Class{Name: adCls, Methods: []dexir.Method{
			{Ref: dexir.Ref(adCls, "floatHelper", "()V"), Body: []dexir.Instruction{
				{Op: dexir.OpInvoke, Target: dexir.RefAddView},
				{Op: dexir.OpInvoke, Target: dexir.RefRemoveView},
			}},
		}})
	}
	if f.deadToast {
		promoCls := dexir.ClassName(pkg, "PromoSdk")
		app.Classes = append(app.Classes, dexir.Class{Name: promoCls, Methods: []dexir.Method{
			{Ref: dexir.Ref(promoCls, "legacyBanner", "()V"), Body: []dexir.Instruction{
				{Op: dexir.OpInvoke, Target: dexir.RefToastSetView},
				{Op: dexir.OpInvoke, Target: dexir.RefToastShow},
			}},
		}})
	}
	if f.a11y {
		app.Permissions = append(app.Permissions, PermBindAccessibility)
		accCls := dexir.ClassName(pkg, "AccessService")
		onEvent := dexir.Ref(accCls, "onAccessibilityEvent", "(Landroid/view/accessibility/AccessibilityEvent;)V")
		var evBody []dexir.Instruction
		if f.a11yAttack {
			evBody = append(evBody, dexir.Instruction{Op: dexir.OpInvoke, Target: swap})
		} else {
			evBody = append(evBody, dexir.Instruction{Op: dexir.OpNop})
			if f.flagA11y {
				// Benign service with flag-guarded attack wiring: the event
				// handler reaches the overlay pair only on a path Tier2
				// proves dead.
				evBody = append(evBody, dexir.Instruction{
					Op: dexir.OpInvoke, Target: swap, Guard: dexir.GuardFlag, Flag: decoyFlag,
				})
			}
		}
		app.Classes = append(app.Classes, dexir.Class{Name: accCls, Methods: []dexir.Method{{Ref: onEvent, Body: evBody}}})
		app.Components = append(app.Components, dexir.Component{
			Name: accCls, Kind: dexir.AccessibilityService, EntryPoints: []dexir.MethodRef{onEvent},
		})
	}
	return app
}

// GenerateApps returns apps start..start+n-1 (0-based) of the seeded
// synthetic corpus — the exact APKs the market study scans at those
// positions, for any worker count. The corpus is a pure function of the
// seed: app i lives in chunk i/studyChunkSize, whose generator stream is
// derived from (seed, chunk), so a range is produced by regenerating each
// touched chunk's prefix once. vetd's tests and cmd/vetload share this
// accessor with the study instead of duplicating the generator.
func GenerateApps(seed int64, start, n int) ([]APK, error) {
	if start < 0 {
		return nil, fmt.Errorf("appstore: negative corpus index %d", start)
	}
	if n <= 0 {
		return nil, fmt.Errorf("appstore: non-positive app count %d", n)
	}
	rates := PaperRates()
	if err := validateRates(rates); err != nil {
		return nil, err
	}
	out := make([]APK, 0, n)
	for chunk := start / studyChunkSize; len(out) < n; chunk++ {
		gen, err := newGeneratorAt(chunkStream(seed, chunk), rates, chunk*studyChunkSize)
		if err != nil {
			return nil, err
		}
		lo := chunk * studyChunkSize
		for j := 0; j < studyChunkSize && len(out) < n; j++ {
			apk := gen.Next()
			if lo+j >= start {
				out = append(out, apk)
			}
		}
	}
	return out, nil
}

// GenerateApp returns one app of the seeded corpus: app i's IR plus its
// ground-truth label, identical to what the study's scan visits at
// position i. Cost is O(i mod studyChunkSize) — the chunk prefix is
// regenerated — so callers wanting a contiguous range should use
// GenerateApps.
func GenerateApp(seed int64, i int) (*dexir.App, Truth, error) {
	apks, err := GenerateApps(seed, i, 1)
	if err != nil {
		return nil, Truth{}, err
	}
	return apks[0].IR, apks[0].Truth, nil
}

// ScanResult is the grep baseline's per-app outcome.
type ScanResult struct {
	HasSAW          bool
	HasA11yService  bool
	CallsAddView    bool
	CallsRemoveView bool
	UsesCustomToast bool
}

// ScanManifest is the aapt-style pass: it parses the manifest text for the
// overlay permission and accessibility services.
func ScanManifest(manifest string) (hasSAW, hasA11y bool) {
	for _, line := range strings.Split(manifest, "\n") {
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, "<uses-permission"):
			if name, ok := xmlAttr(line, "android:name"); ok && name == PermSystemAlertWindow {
				hasSAW = true
			}
		case strings.HasPrefix(line, "<service"):
			if perm, ok := xmlAttr(line, "android:permission"); ok && perm == PermBindAccessibility {
				hasA11y = true
			}
		}
	}
	return hasSAW, hasA11y
}

// xmlAttr extracts a quoted attribute value from a single-line XML tag.
func xmlAttr(line, attr string) (string, bool) {
	marker := attr + `="`
	i := strings.Index(line, marker)
	if i < 0 {
		return "", false
	}
	rest := line[i+len(marker):]
	j := strings.IndexByte(rest, '"')
	if j < 0 {
		return "", false
	}
	return rest[:j], true
}

// ScanDex is the grep baseline: it searches the flat method-reference
// table for the WindowManager and Toast signatures of interest, with no
// notion of reachability.
func ScanDex(refs []string) (addView, removeView, customToast bool) {
	for _, r := range refs {
		switch r {
		case RefAddView:
			addView = true
		case RefRemoveView:
			removeView = true
		case RefToastSetView:
			customToast = true
		}
	}
	return addView, removeView, customToast
}

// Scan runs the manifest pass and the grep baseline over one APK.
func Scan(apk APK) ScanResult {
	var res ScanResult
	res.HasSAW, res.HasA11yService = ScanManifest(apk.Manifest)
	res.CallsAddView, res.CallsRemoveView, res.UsesCustomToast = ScanDex(apk.DexRefs)
	return res
}

// AppScan is the full per-app analysis: the grep baseline, the call-graph
// static analysis, and the generator's ground truth side by side.
type AppScan struct {
	Grep   ScanResult
	Static staticanalysis.Result
	Truth  Truth
}

// ScanApp runs every analyzer over one APK at Tier0, the paper-baseline
// static configuration.
func ScanApp(apk APK) AppScan {
	return ScanAppTier(apk, staticanalysis.Tier0)
}

// ScanAppTier runs every analyzer over one APK with the static pass at
// the given precision tier (the grep baseline has no tiers).
func ScanAppTier(apk APK, tier staticanalysis.Tier) AppScan {
	return AppScan{Grep: Scan(apk), Static: staticanalysis.AnalyzeTier(apk.IR, tier), Truth: apk.Truth}
}

// DetectorStats is a per-analyzer confusion matrix against ground truth.
type DetectorStats struct {
	TP, FP, FN, TN int
}

func (d *DetectorStats) add(pred, truth bool) {
	switch {
	case pred && truth:
		d.TP++
	case pred && !truth:
		d.FP++
	case !pred && truth:
		d.FN++
	default:
		d.TN++
	}
}

func (d *DetectorStats) merge(o DetectorStats) {
	d.TP += o.TP
	d.FP += o.FP
	d.FN += o.FN
	d.TN += o.TN
}

// Precision is TP/(TP+FP); 1 when the analyzer made no positive calls.
func (d DetectorStats) Precision() float64 {
	if d.TP+d.FP == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FP)
}

// Recall is TP/(TP+FN); 1 when there were no positives to find.
func (d DetectorStats) Recall() float64 {
	if d.TP+d.FN == 0 {
		return 1
	}
	return float64(d.TP) / float64(d.TP+d.FN)
}

// F1 is the harmonic mean of precision and recall; 0 when both are 0.
func (d DetectorStats) F1() float64 {
	p, r := d.Precision(), d.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Report aggregates the Section VI-C2 counts for every analyzer plus the
// confusion matrices against ground truth.
type Report struct {
	// Total is the number of apps scanned.
	Total int
	// OverlayPlusA11y counts apps with SYSTEM_ALERT_WINDOW and a
	// registered accessibility service (manifest pass; paper: 4,405).
	OverlayPlusA11y int
	// AddRemoveWithSAW is the call-graph analyzer's draw-and-destroy
	// count — the FlowDroid-analogue headline (paper: 18,887).
	AddRemoveWithSAW int
	// CustomToast is the call-graph analyzer's reachable-setView count
	// (paper: 15,179).
	CustomToast int

	// GrepAddRemoveWithSAW and GrepCustomToast are the flat-reference
	// baseline's counts for the same two rows.
	GrepAddRemoveWithSAW int
	GrepCustomToast      int

	// TruthAddRemoveWithSAW and TruthCustomToast are the ground-truth
	// counts.
	TruthAddRemoveWithSAW int
	TruthCustomToast      int

	// ToastReplaceCapable and A11yTimingCapable are the static analyzer's
	// capability sub-counts (no paper row; reported for the §VII vetting
	// defense), with TruthToastReplace and TruthA11yTiming the matching
	// ground-truth counts.
	ToastReplaceCapable int
	A11yTimingCapable   int
	TruthToastReplace   int
	TruthA11yTiming     int

	// Tier is the static pass's precision tier for every scan in the
	// report (the grep rows are tier-independent).
	Tier staticanalysis.Tier

	// Sink-evidence breakdown across all static findings: total call
	// sites, and how many were guarded (dead or flag-dead paths — gone at
	// Tier1/Tier2) or reflective (const-string resolved — more at Tier2).
	SinkSites           int
	GuardedSinkSites    int
	ReflectiveSinkSites int

	// Confusion matrices against ground truth.
	StaticOverlay      DetectorStats
	GrepOverlay        DetectorStats
	StaticToast        DetectorStats
	GrepToast          DetectorStats
	StaticToastReplace DetectorStats
	StaticA11y         DetectorStats
}

// Add folds one scanned app into the report.
func (r *Report) Add(s AppScan) {
	r.Total++
	if s.Grep.HasSAW && s.Grep.HasA11yService {
		r.OverlayPlusA11y++
	}
	grepOverlay := s.Grep.HasSAW && s.Grep.CallsAddView && s.Grep.CallsRemoveView
	if s.Static.DrawAndDestroy {
		r.AddRemoveWithSAW++
	}
	if grepOverlay {
		r.GrepAddRemoveWithSAW++
	}
	if s.Truth.Overlay {
		r.TruthAddRemoveWithSAW++
	}
	if s.Static.SetViewReachable {
		r.CustomToast++
	}
	if s.Grep.UsesCustomToast {
		r.GrepCustomToast++
	}
	if s.Truth.Toast {
		r.TruthCustomToast++
	}
	if s.Static.ToastReplace {
		r.ToastReplaceCapable++
	}
	if s.Static.A11yTiming {
		r.A11yTimingCapable++
	}
	if s.Truth.ToastReplace {
		r.TruthToastReplace++
	}
	if s.Truth.A11yTiming {
		r.TruthA11yTiming++
	}
	r.Tier = s.Static.Tier
	r.SinkSites += s.Static.SinkSites
	r.GuardedSinkSites += s.Static.GuardedSinkSites
	r.ReflectiveSinkSites += s.Static.ReflectiveSinkSites
	r.StaticOverlay.add(s.Static.DrawAndDestroy, s.Truth.Overlay)
	r.GrepOverlay.add(grepOverlay, s.Truth.Overlay)
	r.StaticToast.add(s.Static.SetViewReachable, s.Truth.Toast)
	r.GrepToast.add(s.Grep.UsesCustomToast, s.Truth.Toast)
	r.StaticToastReplace.add(s.Static.ToastReplace, s.Truth.ToastReplace)
	r.StaticA11y.add(s.Static.A11yTiming, s.Truth.A11yTiming)
}

// Merge folds another report (e.g. a worker's chunk) into r.
func (r *Report) Merge(o Report) {
	r.Total += o.Total
	r.OverlayPlusA11y += o.OverlayPlusA11y
	r.AddRemoveWithSAW += o.AddRemoveWithSAW
	r.CustomToast += o.CustomToast
	r.GrepAddRemoveWithSAW += o.GrepAddRemoveWithSAW
	r.GrepCustomToast += o.GrepCustomToast
	r.TruthAddRemoveWithSAW += o.TruthAddRemoveWithSAW
	r.TruthCustomToast += o.TruthCustomToast
	r.ToastReplaceCapable += o.ToastReplaceCapable
	r.A11yTimingCapable += o.A11yTimingCapable
	r.TruthToastReplace += o.TruthToastReplace
	r.TruthA11yTiming += o.TruthA11yTiming
	r.Tier = o.Tier
	r.SinkSites += o.SinkSites
	r.GuardedSinkSites += o.GuardedSinkSites
	r.ReflectiveSinkSites += o.ReflectiveSinkSites
	r.StaticOverlay.merge(o.StaticOverlay)
	r.GrepOverlay.merge(o.GrepOverlay)
	r.StaticToast.merge(o.StaticToast)
	r.GrepToast.merge(o.GrepToast)
	r.StaticToastReplace.merge(o.StaticToastReplace)
	r.StaticA11y.merge(o.StaticA11y)
}

// String renders the report next to the paper's numbers, including the
// grep-versus-reachability comparison and per-analyzer precision/recall.
func (r Report) String() string {
	scale := float64(r.Total) / float64(PaperCorpusSize)
	var sb strings.Builder
	fmt.Fprintf(&sb, "scanned %d apps\n", r.Total)
	fmt.Fprintf(&sb, "  SYSTEM_ALERT_WINDOW + accessibility service: %d (paper: %d, scaled %.0f)\n",
		r.OverlayPlusA11y, PaperOverlayPlusA11y, scale*PaperOverlayPlusA11y)
	fmt.Fprintf(&sb, "  addView+removeView with SYSTEM_ALERT_WINDOW: %d (paper: %d, scaled %.0f)\n",
		r.AddRemoveWithSAW, PaperAddRemoveWithSAW, scale*PaperAddRemoveWithSAW)
	fmt.Fprintf(&sb, "  customized toast:                            %d (paper: %d, scaled %.0f)\n",
		r.CustomToast, PaperCustomToast, scale*PaperCustomToast)
	fmt.Fprintf(&sb, "  capability sub-counts: toast-replace %d, a11y-timing %d\n",
		r.ToastReplaceCapable, r.A11yTimingCapable)
	fmt.Fprintf(&sb, "  static pass: %s (%s)\n", r.Tier, r.Tier.Describe())
	fmt.Fprintf(&sb, "  sink evidence: %d call sites (%d guarded, %d reflective)\n",
		r.SinkSites, r.GuardedSinkSites, r.ReflectiveSinkSites)
	sb.WriteString("  analyzer comparison (vs generator ground truth):\n")
	fmt.Fprintf(&sb, "    %-28s %8s %8s %10s %8s\n", "detector", "count", "truth", "precision", "recall")
	row := func(name string, count, truth int, st DetectorStats) {
		fmt.Fprintf(&sb, "    %-28s %8d %8d %9.1f%% %7.1f%%\n",
			name, count, truth, 100*st.Precision(), 100*st.Recall())
	}
	row("overlay  call-graph", r.AddRemoveWithSAW, r.TruthAddRemoveWithSAW, r.StaticOverlay)
	row("overlay  grep baseline", r.GrepAddRemoveWithSAW, r.TruthAddRemoveWithSAW, r.GrepOverlay)
	row("toast    call-graph", r.CustomToast, r.TruthCustomToast, r.StaticToast)
	row("toast    grep baseline", r.GrepCustomToast, r.TruthCustomToast, r.GrepToast)
	row("toast-replace call-graph", r.ToastReplaceCapable, r.TruthToastReplace, r.StaticToastReplace)
	row("a11y-timing call-graph", r.A11yTimingCapable, r.TruthA11yTiming, r.StaticA11y)
	return sb.String()
}

// studyChunkSize is the generation/scan unit of the parallel study. Each
// chunk derives an independent random stream from (seed, chunk index), so
// the corpus content is a pure function of the seed — identical for any
// worker count.
const studyChunkSize = 4096

// StudyChunkSize exports the study's generation/scan unit so callers
// slicing the corpus themselves (the precision experiment's per-chunk
// trials) can align ranges to chunk boundaries and pay no prefix
// regeneration.
const StudyChunkSize = studyChunkSize

// chunkStream derives the deterministic stream for one chunk.
func chunkStream(seed int64, chunk int) *simrand.Source {
	return simrand.New(seed).DeriveIndexed("corpus-chunk", chunk)
}

// StudyOptions tunes the parallel corpus study.
type StudyOptions struct {
	// Workers bounds the worker pool; <= 0 selects GOMAXPROCS.
	Workers int
	// Progress, if non-nil, is called after each finished chunk with the
	// cumulative number of scanned apps. Calls are serialized. On a
	// resumed run the count starts at the checkpointed volume.
	Progress func(scanned, total int)
	// Ctx, if non-nil, cancels the study between chunks; the run then
	// returns an *InterruptedError naming the resume point.
	Ctx context.Context
	// CheckpointPath, if non-empty, journals every finished chunk to this
	// file (fsynced per chunk). A later run with the same seed, n and path
	// resumes from the journal and still produces a Report byte-identical
	// to an uninterrupted run; the file is deleted on success. The
	// checkpoint header pins the tier and rates, so a resume under a
	// different analysis configuration fails loudly instead of merging
	// incompatible chunks.
	CheckpointPath string
	// Tier selects the static pass's precision tier (zero value: Tier0,
	// the paper baseline).
	Tier staticanalysis.Tier
	// Rates, if non-nil, overrides the corpus rates (default PaperRates).
	Rates *Rates
}

// StudyWith generates and scans a synthetic corpus of n apps with a
// bounded worker pool. Results are identical for any worker count, and —
// via StudyOptions.CheckpointPath — identical whether or not the run was
// interrupted and resumed.
func StudyWith(seed int64, n int, opts StudyOptions) (Report, error) {
	if n <= 0 {
		return Report{}, fmt.Errorf("appstore: non-positive corpus size %d", n)
	}
	rates := PaperRates()
	if opts.Rates != nil {
		rates = *opts.Rates
	}
	if err := validateRates(rates); err != nil {
		return Report{}, err
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunks := (n + studyChunkSize - 1) / studyChunkSize
	if workers > chunks {
		workers = chunks
	}
	chunkLen := func(c int) int {
		if start := c * studyChunkSize; start+studyChunkSize > n {
			return n - start
		}
		return studyChunkSize
	}

	var cp *checkpoint
	if opts.CheckpointPath != "" {
		var err error
		cp, err = openCheckpoint(opts.CheckpointPath, seed, n, opts.Tier, rates)
		if err != nil {
			return Report{}, err
		}
		defer cp.close()
	}

	partial := make([]Report, chunks)
	errs := make([]error, chunks)
	done := make([]bool, chunks)
	scanned := 0
	if cp != nil {
		for c := 0; c < chunks; c++ {
			if rep, ok := cp.done[c]; ok {
				partial[c], done[c] = rep, true
				scanned += chunkLen(c)
			}
		}
	}

	pending := make([]int, 0, chunks)
	for c := 0; c < chunks; c++ {
		if !done[c] {
			pending = append(pending, c)
		}
	}
	var progMu sync.Mutex
	runErr := sched.Run(ctx, workers, len(pending), func(i int) error {
		c := pending[i]
		size := chunkLen(c)
		rep, err := scanChunk(seed, c, size, rates, opts.Tier)
		if err == nil && cp != nil {
			err = cp.record(c, rep)
		}
		// Distinct chunk slots: lock-free per-index writes, published to the
		// post-Run reads below by sched.Run's completion barrier.
		partial[c], errs[c] = rep, err
		done[c] = err == nil
		progMu.Lock()
		if opts.Progress != nil {
			scanned += size
			opts.Progress(scanned, n)
		}
		progMu.Unlock()
		return nil
	})

	if err := ctx.Err(); err != nil {
		return Report{}, interruption(done, err)
	}
	if runErr != nil {
		// The tasks never return errors (per-chunk failures land in errs),
		// so this is a confined panic from the scheduler.
		return Report{}, runErr
	}
	var rep Report
	for c := 0; c < chunks; c++ {
		if errs[c] != nil {
			return Report{}, errs[c]
		}
		rep.Merge(partial[c])
	}
	if cp != nil {
		if err := cp.finish(); err != nil {
			return Report{}, err
		}
	}
	return rep, nil
}

// interruption summarizes which chunks survive an interrupted run.
func interruption(done []bool, cause error) *InterruptedError {
	e := &InterruptedError{ChunksTotal: len(done), NextChunk: len(done), Err: cause}
	for c, ok := range done {
		if ok {
			e.ChunksDone++
		} else if e.NextChunk == len(done) {
			e.NextChunk = c
		}
	}
	return e
}

// scanChunk generates and scans one chunk.
func scanChunk(seed int64, chunk, size int, rates Rates, tier staticanalysis.Tier) (Report, error) {
	gen, err := newGeneratorAt(chunkStream(seed, chunk), rates, chunk*studyChunkSize)
	if err != nil {
		return Report{}, err
	}
	rep := Report{Tier: tier}
	for i := 0; i < size; i++ {
		rep.Add(ScanAppTier(gen.Next(), tier))
	}
	return rep, nil
}

// ScanRange generates and scans apps [start, start+n) of the corpus
// seeded by seed — the same apps a full study visits at those positions —
// with the given rates and analysis tier. Ranges aligned to
// StudyChunkSize regenerate no prefix; the precision experiment's trials
// are exactly such ranges, one Report each, merged in trial order.
func ScanRange(seed int64, start, n int, rates Rates, tier staticanalysis.Tier) (Report, error) {
	if start < 0 {
		return Report{}, fmt.Errorf("appstore: negative corpus index %d", start)
	}
	if n <= 0 {
		return Report{}, fmt.Errorf("appstore: non-positive app count %d", n)
	}
	if err := validateRates(rates); err != nil {
		return Report{}, err
	}
	rep := Report{Tier: tier}
	scanned := 0
	for chunk := start / studyChunkSize; scanned < n; chunk++ {
		gen, err := newGeneratorAt(chunkStream(seed, chunk), rates, chunk*studyChunkSize)
		if err != nil {
			return Report{}, err
		}
		lo := chunk * studyChunkSize
		for j := 0; j < studyChunkSize && scanned < n; j++ {
			apk := gen.Next()
			if lo+j >= start {
				rep.Add(ScanAppTier(apk, tier))
				scanned++
			}
		}
	}
	return rep, nil
}

// Study generates and scans a synthetic corpus of n apps sequentially.
// Use n = PaperCorpusSize for the full-scale reproduction; StudyWith runs
// the same study on a worker pool with identical results.
func Study(seed int64, n int) (Report, error) {
	return StudyWith(seed, n, StudyOptions{Workers: 1})
}
