package appstore

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/staticanalysis"
)

// TestStudyCheckpointResumeIdentity is the crash-safety headline: a study
// interrupted mid-run and resumed from its journal produces a Report
// identical to an uninterrupted run, and the journal is deleted once the
// study completes.
func TestStudyCheckpointResumeIdentity(t *testing.T) {
	const (
		seed = int64(99)
		n    = 2*studyChunkSize + 137 // three chunks, last one partial
	)
	want, err := Study(seed, n)
	if err != nil {
		t.Fatalf("reference Study: %v", err)
	}

	path := filepath.Join(t.TempDir(), "study.ckpt")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	_, err = StudyWith(seed, n, StudyOptions{
		Workers:        1,
		Ctx:            ctx,
		CheckpointPath: path,
		Progress:       func(scanned, total int) { cancel() }, // kill after the first chunk
	})
	var ie *InterruptedError
	if !errors.As(err, &ie) {
		t.Fatalf("interrupted study returned %v, want *InterruptedError", err)
	}
	if ie.ChunksTotal != 3 || ie.ChunksDone < 1 {
		t.Fatalf("InterruptedError = %+v, want 3 chunks total with >= 1 done", ie)
	}
	if !strings.Contains(ie.Error(), "resumable from chunk") {
		t.Fatalf("error %q does not name the resume point", ie.Error())
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("journal missing after interruption: %v", err)
	}

	got, err := StudyWith(seed, n, StudyOptions{Workers: 2, CheckpointPath: path})
	if err != nil {
		t.Fatalf("resumed StudyWith: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("resumed report differs from uninterrupted run:\n got %+v\nwant %+v", got, want)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal not deleted after successful completion (stat err %v)", err)
	}
}

// TestStudyCheckpointIdentityMismatch: a journal written for one (seed, n)
// must not silently corrupt a different study.
func TestStudyCheckpointIdentityMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt")
	cp, err := openCheckpoint(path, 1, 10*studyChunkSize, staticanalysis.Tier0, PaperRates())
	if err != nil {
		t.Fatalf("openCheckpoint: %v", err)
	}
	cp.close()
	_, err = StudyWith(2, 10*studyChunkSize, StudyOptions{CheckpointPath: path})
	if err == nil || !strings.Contains(err.Error(), "different study") {
		t.Fatalf("mismatched journal accepted: err = %v", err)
	}
}

// TestCheckpointTornLineTolerated: a crash mid-append leaves a torn trailing
// line; reopening must keep every fully written chunk and drop the torn one.
func TestCheckpointTornLineTolerated(t *testing.T) {
	path := filepath.Join(t.TempDir(), "study.ckpt")
	cp, err := openCheckpoint(path, 7, 3*studyChunkSize, staticanalysis.Tier0, PaperRates())
	if err != nil {
		t.Fatalf("openCheckpoint: %v", err)
	}
	if err := cp.record(0, Report{Total: studyChunkSize, CustomToast: 11}); err != nil {
		t.Fatalf("record: %v", err)
	}
	cp.close()
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := f.WriteString(`{"chunk":1,"rep`); err != nil {
		t.Fatalf("append torn line: %v", err)
	}
	f.Close()

	cp2, err := openCheckpoint(path, 7, 3*studyChunkSize, staticanalysis.Tier0, PaperRates())
	if err != nil {
		t.Fatalf("reopen with torn line: %v", err)
	}
	defer cp2.close()
	rep, ok := cp2.done[0]
	if !ok {
		t.Fatal("fully written chunk 0 lost on reopen")
	}
	if rep.Total != studyChunkSize || rep.CustomToast != 11 {
		t.Fatalf("chunk 0 report corrupted: %+v", rep)
	}
	if _, ok := cp2.done[1]; ok {
		t.Fatal("torn chunk 1 line accepted as complete")
	}
}
