package appstore

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"

	"repro/internal/staticanalysis"
)

// InterruptedError reports a corpus study stopped before completion — by
// context cancellation (SIGINT) or a failed chunk. When a checkpoint path
// was configured, every finished chunk is already on disk and rerunning
// the same study with the same path resumes from NextChunk.
type InterruptedError struct {
	// ChunksDone and ChunksTotal describe the study's progress.
	ChunksDone, ChunksTotal int
	// NextChunk is the first chunk a resumed run still has to scan.
	NextChunk int
	// Err is the underlying cause (usually context.Canceled).
	Err error
}

// Error renders the interruption, including the resume point.
func (e *InterruptedError) Error() string {
	return fmt.Sprintf("appstore: study interrupted after %d/%d chunks (%v); resumable from chunk %d",
		e.ChunksDone, e.ChunksTotal, e.Err, e.NextChunk)
}

// Unwrap exposes the cause.
func (e *InterruptedError) Unwrap() error { return e.Err }

// checkpointHeader is the first line of a checkpoint file and pins the
// study's identity; a resume against a different study must fail loudly
// rather than merge incompatible chunks. Tier and Rates are omitted at
// the defaults (Tier0, PaperRates), so checkpoints written before tiers
// existed still resume a default study.
type checkpointHeader struct {
	V         int    `json:"v"`
	Seed      int64  `json:"seed"`
	N         int    `json:"n"`
	ChunkSize int    `json:"chunk_size"`
	Tier      int    `json:"tier,omitempty"`
	Rates     string `json:"rates,omitempty"`
}

// ratesID fingerprints non-default corpus rates for the header; the
// default (paper) rates map to "" for backward compatibility.
func ratesID(r Rates) string {
	if r == PaperRates() {
		return ""
	}
	return fmt.Sprintf("%+v", r)
}

// checkpointLine records one finished chunk's report. Lines are appended
// in completion order (which varies with worker scheduling); the final
// merge always runs in chunk order, so the assembled Report is
// byte-identical to an uninterrupted run.
type checkpointLine struct {
	Chunk  int    `json:"chunk"`
	Report Report `json:"report"`
}

// checkpoint is the crash-safe chunk journal: a JSONL file with a header
// line plus one line per finished chunk, fsynced per append so a kill at
// any instant loses at most the chunk being written (a torn trailing line
// is detected on load and that chunk simply re-runs).
type checkpoint struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[int]Report
}

// openCheckpoint opens or creates the journal for the given study
// identity. An existing file with a different identity is an error.
func openCheckpoint(path string, seed int64, n int, tier staticanalysis.Tier, rates Rates) (*checkpoint, error) {
	hdr := checkpointHeader{V: 1, Seed: seed, N: n, ChunkSize: studyChunkSize, Tier: int(tier), Rates: ratesID(rates)}
	done := make(map[int]Report)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("appstore: read checkpoint: %w", err)
	}
	if err == nil && len(data) > 0 {
		lines := strings.Split(string(data), "\n")
		var got checkpointHeader
		if jerr := json.Unmarshal([]byte(lines[0]), &got); jerr != nil || got != hdr {
			return nil, fmt.Errorf("appstore: checkpoint %s belongs to a different study (want v=%d seed=%d n=%d chunk_size=%d tier=%d); delete it to start over",
				path, hdr.V, hdr.Seed, hdr.N, hdr.ChunkSize, hdr.Tier)
		}
		for _, ln := range lines[1:] {
			if strings.TrimSpace(ln) == "" {
				continue
			}
			var cl checkpointLine
			if jerr := json.Unmarshal([]byte(ln), &cl); jerr != nil {
				// Torn trailing line from a crash mid-append: drop it; the
				// chunk re-runs.
				continue
			}
			done[cl.Chunk] = cl.Report
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("appstore: open checkpoint: %w", err)
		}
		return &checkpoint{f: f, path: path, done: done}, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("appstore: create checkpoint: %w", err)
	}
	b, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("appstore: encode checkpoint header: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("appstore: write checkpoint header: %w", err)
	}
	return &checkpoint{f: f, path: path, done: done}, nil
}

// record appends one finished chunk and fsyncs.
func (cp *checkpoint) record(chunk int, rep Report) error {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	b, err := json.Marshal(checkpointLine{Chunk: chunk, Report: rep})
	if err != nil {
		return fmt.Errorf("appstore: encode checkpoint chunk: %w", err)
	}
	if _, err := cp.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("appstore: append checkpoint chunk: %w", err)
	}
	if err := cp.f.Sync(); err != nil {
		return fmt.Errorf("appstore: sync checkpoint: %w", err)
	}
	return nil
}

// close closes the journal, keeping the file for a later resume.
func (cp *checkpoint) close() {
	cp.mu.Lock()
	defer cp.mu.Unlock()
	if cp.f != nil {
		cp.f.Close()
		cp.f = nil
	}
}

// finish closes and deletes the journal after a completed study.
func (cp *checkpoint) finish() error {
	cp.close()
	if err := os.Remove(cp.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("appstore: remove finished checkpoint: %w", err)
	}
	return nil
}
