//go:build !race

package appstore

// raceEnabled gates the full-scale corpus test: under the race detector
// the 890,855-app scan takes minutes, so it only runs in normal builds.
const raceEnabled = false
