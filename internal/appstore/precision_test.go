package appstore

import (
	"testing"

	"repro/internal/simrand"
	"repro/internal/staticanalysis"
)

// The tier-separating decoy families. Each test forces one family and
// checks the designed separation: which tiers are fooled, which are not,
// always against the generator's truth bit.

// TestSplitReflectDecoy: capable app whose reflective target names are
// concatenated from fragments — a false negative below Tier2.
func TestSplitReflectDecoy(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.AddRemoveGivenSAW = 1
		r.SplitReflectGivenCapable = 1
	})
	gen, err := NewGenerator(simrand.New(21), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		apk := gen.Next()
		if !apk.Truth.Overlay {
			t.Fatal("split-reflect app not labeled capable")
		}
		s0 := ScanAppTier(apk, staticanalysis.Tier0)
		if s0.Grep.CallsAddView || s0.Grep.CallsRemoveView {
			t.Fatal("split dispatch leaked into the ref table")
		}
		if s0.Static.DrawAndDestroy {
			t.Fatal("Tier0 resolved register-split reflection")
		}
		if ScanAppTier(apk, staticanalysis.Tier1).Static.DrawAndDestroy {
			t.Fatal("Tier1 resolved register-split reflection")
		}
		if !ScanAppTier(apk, staticanalysis.Tier2).Static.DrawAndDestroy {
			t.Fatal("Tier2 missed register-split reflection")
		}
	}
}

// TestCrossReflectDecoy: capable app fetching its reflective target names
// from constant-returning helper methods in another class.
func TestCrossReflectDecoy(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.AddRemoveGivenSAW = 1
		r.CrossReflectGivenCapable = 1
	})
	gen, err := NewGenerator(simrand.New(22), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		apk := gen.Next()
		if !apk.Truth.Overlay {
			t.Fatal("cross-reflect app not labeled capable")
		}
		if ScanAppTier(apk, staticanalysis.Tier0).Static.DrawAndDestroy {
			t.Fatal("Tier0 resolved cross-method reflection")
		}
		if !ScanAppTier(apk, staticanalysis.Tier2).Static.DrawAndDestroy {
			t.Fatal("Tier2 missed cross-method reflection")
		}
	}
}

// TestFlagOverlayDecoy: benign app whose only overlay calls hide behind a
// BuildConfig flag the app itself pins false — a false positive below
// Tier2.
func TestFlagOverlayDecoy(t *testing.T) {
	rates := forceRates(func(r *Rates) { r.FlagOverlayGivenSAW = 1 })
	gen, err := NewGenerator(simrand.New(23), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		apk := gen.Next()
		if apk.Truth.Overlay {
			t.Fatal("flag decoy labeled capable")
		}
		if !ScanAppTier(apk, staticanalysis.Tier0).Static.DrawAndDestroy {
			t.Fatal("Tier0 should reach the flag-guarded sinks (decoy not planted?)")
		}
		if !ScanAppTier(apk, staticanalysis.Tier1).Static.DrawAndDestroy {
			t.Fatal("Tier1 has no flag table and should stay fooled")
		}
		if ScanAppTier(apk, staticanalysis.Tier2).Static.DrawAndDestroy {
			t.Fatal("Tier2 reached sinks behind a constant-false flag")
		}
	}
}

// TestFlagToastDecoy: a customized-toast app whose loop re-registration
// is flag-dead — toast-replace false positive below Tier2.
func TestFlagToastDecoy(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.CustomToast = 1
		r.FlagToastGivenToast = 1
	})
	gen, err := NewGenerator(simrand.New(24), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		apk := gen.Next()
		if apk.Truth.ToastReplace {
			t.Fatal("flag-toast decoy labeled replace-capable")
		}
		if !ScanAppTier(apk, staticanalysis.Tier0).Static.ToastReplace {
			t.Fatal("Tier0 should see the flag-guarded re-registration")
		}
		if ScanAppTier(apk, staticanalysis.Tier2).Static.ToastReplace {
			t.Fatal("Tier2 kept a flag-dead toast re-registration")
		}
	}
}

// TestFlagA11yDecoy: an a11y service whose event handler's only path to
// the overlay code is flag-dead — a11y-timing false positive below Tier2.
func TestFlagA11yDecoy(t *testing.T) {
	rates := forceRates(func(r *Rates) {
		r.A11yGivenSAW = 1
		r.AddRemoveGivenSAW = 1
		r.FlagA11yGivenBenign = 1
	})
	gen, err := NewGenerator(simrand.New(25), rates)
	if err != nil {
		t.Fatalf("NewGenerator: %v", err)
	}
	for i := 0; i < 20; i++ {
		apk := gen.Next()
		if apk.Truth.A11yTiming {
			t.Fatal("flag-a11y decoy labeled attack-wired")
		}
		if !ScanAppTier(apk, staticanalysis.Tier0).Static.A11yTiming {
			t.Fatal("Tier0 should reach the overlay code through the flag-dead handler edge")
		}
		if ScanAppTier(apk, staticanalysis.Tier2).Static.A11yTiming {
			t.Fatal("Tier2 kept the flag-dead handler edge")
		}
	}
}

// TestScanRangeMatchesStudy: a full-range ScanRange is the same study,
// and chunk-aligned sub-ranges merge to the byte-identical report.
func TestScanRangeMatchesStudy(t *testing.T) {
	const n = 3 * studyChunkSize
	want, err := Study(31, n)
	if err != nil {
		t.Fatalf("Study: %v", err)
	}
	got, err := ScanRange(31, 0, n, PaperRates(), staticanalysis.Tier0)
	if err != nil {
		t.Fatalf("ScanRange: %v", err)
	}
	if got != want {
		t.Fatalf("ScanRange(0, n) differs from Study:\n got %+v\nwant %+v", got, want)
	}
	var merged Report
	for c := 0; c < 3; c++ {
		part, err := ScanRange(31, c*studyChunkSize, studyChunkSize, PaperRates(), staticanalysis.Tier0)
		if err != nil {
			t.Fatalf("ScanRange chunk %d: %v", c, err)
		}
		merged.Merge(part)
	}
	if merged != want {
		t.Fatalf("merged chunk reports differ from Study:\n got %+v\nwant %+v", merged, want)
	}
}

func TestScanRangeValidation(t *testing.T) {
	if _, err := ScanRange(1, -1, 10, PaperRates(), staticanalysis.Tier0); err == nil {
		t.Fatal("negative start accepted")
	}
	if _, err := ScanRange(1, 0, 0, PaperRates(), staticanalysis.Tier0); err == nil {
		t.Fatal("zero count accepted")
	}
	bad := PaperRates()
	bad.SAW = 2
	if _, err := ScanRange(1, 0, 10, bad, staticanalysis.Tier0); err == nil {
		t.Fatal("invalid rates accepted")
	}
}

// TestPrecisionRatesTierMonotonic is the study's contract at corpus
// scale: on the obfuscated corpus every capability's precision strictly
// improves from Tier0 to Tier2 with recall never lower, the guarded
// evidence disappears and the reflective evidence grows.
func TestPrecisionRatesTierMonotonic(t *testing.T) {
	const n = 2 * studyChunkSize
	reps := make([]Report, 0, 3)
	for _, tier := range staticanalysis.Tiers() {
		rep, err := ScanRange(51, 0, n, PrecisionRates(), tier)
		if err != nil {
			t.Fatalf("ScanRange %v: %v", tier, err)
		}
		reps = append(reps, rep)
	}
	t0, t2 := reps[0], reps[2]
	for _, c := range []struct {
		name   string
		s0, s2 DetectorStats
	}{
		{"overlay", t0.StaticOverlay, t2.StaticOverlay},
		{"toast-replace", t0.StaticToastReplace, t2.StaticToastReplace},
		{"a11y-timing", t0.StaticA11y, t2.StaticA11y},
	} {
		if c.s2.Precision() <= c.s0.Precision() {
			t.Errorf("%s: tier2 precision %.4f does not strictly beat tier0 %.4f (FP %d vs %d)",
				c.name, c.s2.Precision(), c.s0.Precision(), c.s2.FP, c.s0.FP)
		}
		if c.s2.Recall() < c.s0.Recall() {
			t.Errorf("%s: tier2 recall %.4f below tier0 %.4f", c.name, c.s2.Recall(), c.s0.Recall())
		}
	}
	if t2.GuardedSinkSites != 0 {
		t.Errorf("tier2 kept %d guarded evidence sites", t2.GuardedSinkSites)
	}
	if t2.ReflectiveSinkSites <= t0.ReflectiveSinkSites {
		t.Errorf("tier2 reflective evidence %d did not grow past tier0's %d",
			t2.ReflectiveSinkSites, t0.ReflectiveSinkSites)
	}
	// Tier1 sits between: it may only remove always-false-guarded sites.
	if reps[1].GuardedSinkSites > t0.GuardedSinkSites {
		t.Errorf("tier1 guarded evidence grew: %d > %d", reps[1].GuardedSinkSites, t0.GuardedSinkSites)
	}
}
