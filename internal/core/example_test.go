package core_test

import (
	"fmt"
	"log"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/keyboard"
	"repro/internal/sysserver"
)

// ExampleOverlayAttack runs the Section III draw-and-destroy overlay
// attack on a simulated Pixel 2 and shows that the overlay alert never
// becomes visible.
func ExampleOverlayAttack() {
	phone := device.Default()
	stack, err := sysserver.Assemble(phone, 1)
	if err != nil {
		log.Fatal(err)
	}
	stack.WM.GrantOverlayPermission("com.evil.app")
	attack, err := core.NewOverlayAttack(stack, core.OverlayAttackConfig{
		App:    "com.evil.app",
		D:      core.SelectAttackWindow(phone),
		Bounds: geom.RectWH(0, 0, float64(phone.ScreenW), float64(phone.ScreenH)),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := attack.Start(); err != nil {
		log.Fatal(err)
	}
	stack.Clock.MustAfter(5*time.Second, "stop", attack.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("worst alert outcome:", stack.UI.WorstOutcome())
	// Output: worst alert outcome: Λ1
}

// ExampleToastAttack keeps a customized toast on screen far beyond the
// 3.5 s maximum by riding the fade-out animation (Section IV).
func ExampleToastAttack() {
	stack, err := sysserver.Assemble(device.Default(), 1)
	if err != nil {
		log.Fatal(err)
	}
	attack, err := core.NewToastAttack(stack, core.ToastAttackConfig{
		App:     "com.evil.app",
		Bounds:  geom.RectWH(0, 1200, 1080, 720),
		Content: func() string { return "fake-keyboard" },
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := attack.Start(); err != nil {
		log.Fatal(err)
	}
	// Sample the toast's presence at 10 s — far past any legal duration.
	var alphaAt10s float64
	stack.Clock.MustAfter(10*time.Second, "probe", func() {
		alphaAt10s = stack.WM.TopToastAlpha("com.evil.app")
	})
	stack.Clock.MustAfter(12*time.Second, "stop", attack.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("toast still opaque after 10s: %v\n", alphaAt10s > 0.9)
	// Output: toast still opaque after 10s: true
}

// ExamplePasswordStealer runs the combined Section V attack against the
// Bank of America login screen with machine-precise touches.
func ExamplePasswordStealer() {
	phone, _ := device.ByModel("mi8")
	stack, err := sysserver.Assemble(phone, 29)
	if err != nil {
		log.Fatal(err)
	}
	stack.WM.GrantOverlayPermission("com.evil.app")
	bofa, _ := apps.ByName("Bank of America")
	session, err := bofa.NewLoginSession(stack.Clock, geom.RectWH(0, 0, float64(phone.ScreenW), float64(phone.ScreenH)))
	if err != nil {
		log.Fatal(err)
	}
	kb, err := keyboard.New(session.KeyboardBounds)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := ime.Show(stack, kb, session.Activity); err != nil {
		log.Fatal(err)
	}
	stealer, err := core.NewPasswordStealer(stack, core.PasswordStealerConfig{
		App: "com.evil.app", Victim: session, Keyboard: kb,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := stealer.Arm(); err != nil {
		log.Fatal(err)
	}
	stack.Clock.MustAfter(time.Second, "focus", func() {
		if err := session.Activity.Focus(session.Password); err != nil {
			panic(err)
		}
	})
	presses, err := kb.PlanPresses("hunter2")
	if err != nil {
		log.Fatal(err)
	}
	for i, pr := range presses {
		pr := pr
		down := 2*time.Second + time.Duration(i)*305*time.Millisecond
		stack.Clock.MustAfter(down, "down", func() {
			gid, _, ok := stack.WM.BeginGesture(pr.Key.Center())
			if !ok {
				return
			}
			stack.Clock.MustAfter(50*time.Millisecond, "up", func() {
				if _, err := stack.WM.EndGesture(gid, pr.Key.Center()); err != nil {
					panic(err)
				}
			})
		})
	}
	stack.Clock.MustAfter(2*time.Second+time.Duration(len(presses))*305*time.Millisecond+time.Second, "stop", stealer.Stop)
	if err := stack.Clock.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("stolen:", stealer.StolenPassword())
	fmt.Println("alert:", stack.UI.WorstOutcome())
	// Output:
	// stolen: hunter2
	// alert: Λ1
}
