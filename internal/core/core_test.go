package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

const evilApp binder.ProcessID = "com.evil.app"

func assemble(t *testing.T, p device.Profile, seed int64) *sysserver.Stack {
	t.Helper()
	st, err := sysserver.Assemble(p, seed)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(evilApp)
	return st
}

func screenOf(p device.Profile) geom.Rect {
	return geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
}

func TestNewOverlayAttackValidation(t *testing.T) {
	st := assemble(t, device.Default(), 1)
	valid := OverlayAttackConfig{App: evilApp, D: 100 * time.Millisecond, Bounds: screenOf(st.Profile)}
	if _, err := NewOverlayAttack(nil, valid); err == nil {
		t.Fatal("nil stack accepted")
	}
	for _, tt := range []struct {
		name string
		mut  func(c *OverlayAttackConfig)
	}{
		{"empty app", func(c *OverlayAttackConfig) { c.App = "" }},
		{"zero D", func(c *OverlayAttackConfig) { c.D = 0 }},
		{"negative D", func(c *OverlayAttackConfig) { c.D = -time.Millisecond }},
		{"empty bounds", func(c *OverlayAttackConfig) { c.Bounds = geom.Rect{} }},
	} {
		cfg := valid
		tt.mut(&cfg)
		if _, err := NewOverlayAttack(st, cfg); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
}

// TestOverlayAttackSuppressesAlert is the headline result of Section III:
// with D at the device's Table II bound, a multi-second attack run keeps
// the outcome at Λ1 — the user never sees any part of the alert — while
// the overlays cover the victim almost continuously.
func TestOverlayAttackSuppressesAlert(t *testing.T) {
	for _, model := range []string{"s8", "mi9", "pixel 2", "Redmi"} {
		model := model
		t.Run(model, func(t *testing.T) {
			p, ok := device.ByModel(model)
			if !ok {
				t.Fatalf("profile %s missing", model)
			}
			st := assemble(t, p, 7)
			// Attack at 85% of the calibrated bound for margin, as a
			// real attacker would after fingerprinting the device.
			d := time.Duration(float64(p.PaperUpperBoundD) * 0.85)
			atk, err := NewOverlayAttack(st, OverlayAttackConfig{App: evilApp, D: d, Bounds: screenOf(p)})
			if err != nil {
				t.Fatalf("NewOverlayAttack: %v", err)
			}
			if err := atk.Start(); err != nil {
				t.Fatalf("Start: %v", err)
			}
			st.Clock.MustAfter(10*time.Second, "stop", atk.Stop)
			if err := st.Clock.RunFor(15 * time.Second); err != nil {
				t.Fatalf("RunFor: %v", err)
			}
			if got := st.UI.WorstOutcome(); got != sysui.Lambda1 {
				t.Fatalf("WorstOutcome = %v, want Λ1 (D=%v)", got, d)
			}
			if atk.Cycles() == 0 {
				t.Fatal("attack never cycled")
			}
			if st.WM.OverlayCount(evilApp) != 0 {
				t.Fatal("overlays left behind after Stop")
			}
		})
	}
}

// TestOverlayAttackFailsWithLargeD: far above the bound the alert becomes
// visible — the attacker's constraint (3) is real.
func TestOverlayAttackFailsWithLargeD(t *testing.T) {
	p, _ := device.ByModel("s8") // bound 60 ms
	st := assemble(t, p, 11)
	atk, err := NewOverlayAttack(st, OverlayAttackConfig{App: evilApp, D: 2 * time.Second, Bounds: screenOf(p)})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(8*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(12 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.UI.WorstOutcome(); got != sysui.Lambda5 {
		t.Fatalf("WorstOutcome = %v, want Λ5 with D=2s", got)
	}
}

func TestOverlayAttackDoubleStartAndStop(t *testing.T) {
	st := assemble(t, device.Default(), 13)
	atk, err := NewOverlayAttack(st, OverlayAttackConfig{App: evilApp, D: 100 * time.Millisecond, Bounds: screenOf(st.Profile)})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if err := atk.Start(); err == nil {
		t.Fatal("double Start accepted")
	}
	atk.Stop()
	atk.Stop() // idempotent
	if atk.Running() {
		t.Fatal("Running after Stop")
	}
}

// TestOverlayCoverageBetweenSwaps: between swaps the overlay must be
// present; immediately after a swap there is only the tiny Tmis gap.
func TestOverlayCoverageBetweenSwaps(t *testing.T) {
	st := assemble(t, device.Default(), 17)
	atk, err := NewOverlayAttack(st, OverlayAttackConfig{App: evilApp, D: 150 * time.Millisecond, Bounds: screenOf(st.Profile)})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	covered, samples := 0, 0
	var probe func()
	probe = func() {
		if st.Clock.Now() > 5*time.Second {
			return
		}
		samples++
		if st.WM.OverlayCount(evilApp) > 0 {
			covered++
		}
		st.Clock.MustAfter(7*time.Millisecond, "probe", probe)
	}
	st.Clock.MustAfter(300*time.Millisecond, "probe", probe)
	st.Clock.MustAfter(6*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(7 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	cov := float64(covered) / float64(samples)
	if cov < 0.9 {
		t.Fatalf("overlay coverage = %.2f, want > 0.9", cov)
	}
}

func TestNewToastAttackValidation(t *testing.T) {
	st := assemble(t, device.Default(), 1)
	content := func() string { return "x" }
	valid := ToastAttackConfig{App: evilApp, Bounds: screenOf(st.Profile), Content: content}
	if _, err := NewToastAttack(nil, valid); err == nil {
		t.Fatal("nil stack accepted")
	}
	for _, tt := range []struct {
		name string
		mut  func(c *ToastAttackConfig)
	}{
		{"empty app", func(c *ToastAttackConfig) { c.App = "" }},
		{"empty bounds", func(c *ToastAttackConfig) { c.Bounds = geom.Rect{} }},
		{"nil content", func(c *ToastAttackConfig) { c.Content = nil }},
		{"bad duration", func(c *ToastAttackConfig) { c.Duration = time.Second }},
		{"negative refill", func(c *ToastAttackConfig) { c.RefillInterval = -time.Second }},
		{"huge depth", func(c *ToastAttackConfig) { c.TargetQueueDepth = 50 }},
	} {
		cfg := valid
		tt.mut(&cfg)
		if _, err := NewToastAttack(st, cfg); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
}

// TestToastAttackKeepsToastOnScreen is the headline result of Section IV:
// the toast stays continuously visible for an extended period (30 s here,
// an order of magnitude past the 3.5 s legal duration), with the queue
// never exceeding the 50-token cap.
func TestToastAttackKeepsToastOnScreen(t *testing.T) {
	st := assemble(t, device.Default(), 19)
	atk, err := NewToastAttack(st, ToastAttackConfig{
		App:     evilApp,
		Bounds:  geom.RectWH(0, 1200, 1080, 720),
		Content: func() string { return "fake-keyboard" },
	})
	if err != nil {
		t.Fatalf("NewToastAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	minAlpha, samples := 2.0, 0
	var probe func()
	probe = func() {
		if st.Clock.Now() > 30*time.Second {
			return
		}
		samples++
		if a := st.WM.TopToastAlpha(evilApp); a < minAlpha {
			minAlpha = a
		}
		if q := st.Server.QueuedToasts(evilApp); q > sysserver.MaxToastTokensPerApp {
			t.Errorf("queue depth %d exceeds cap", q)
		}
		st.Clock.MustAfter(10*time.Millisecond, "probe", probe)
	}
	st.Clock.MustAfter(time.Second, "probe", probe) // after first fade-in
	st.Clock.MustAfter(31*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(40 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if samples == 0 {
		t.Fatal("no samples taken")
	}
	if minAlpha < 0.5 {
		t.Fatalf("toast alpha collapsed to %.3f; fake keyboard flickered", minAlpha)
	}
	if rej := st.Server.Stats().ToastsRejected; rej != 0 {
		t.Fatalf("%d toasts rejected; attack exceeded the cap", rej)
	}
	// No notification alert for toasts.
	if got := len(st.UI.Episodes()); got != 0 {
		t.Fatalf("toast attack produced %d alert episodes, want 0", got)
	}
}

func TestToastAttackSwitchContent(t *testing.T) {
	st := assemble(t, device.Default(), 23)
	board := "lower"
	atk, err := NewToastAttack(st, ToastAttackConfig{
		App:     evilApp,
		Bounds:  geom.RectWH(0, 1200, 1080, 720),
		Content: func() string { return "kbd:" + board },
	})
	if err != nil {
		t.Fatalf("NewToastAttack: %v", err)
	}
	if err := atk.SwitchContent(); err == nil {
		t.Fatal("SwitchContent before Start accepted")
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(2*time.Second, "switch", func() {
		board = "upper"
		if err := atk.SwitchContent(); err != nil {
			t.Errorf("SwitchContent: %v", err)
		}
	})
	st.Clock.MustAfter(4*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) < 2 {
		t.Fatalf("records = %d, want ≥ 2", len(recs))
	}
	// The switched toast displays the new board shortly after 2s, not
	// 3.5s later.
	var switched *sysserver.ToastRecord
	for i := range recs {
		if recs[i].Content == "kbd:upper" {
			switched = &recs[i]
			break
		}
	}
	if switched == nil {
		t.Fatal("upper-board toast never displayed")
	}
	if switched.ShownAt > 2500*time.Millisecond {
		t.Fatalf("switched toast shown at %v, want ≈2s (immediate switch)", switched.ShownAt)
	}
}

// TestPasswordStealerEndToEnd runs the full Section V attack on the Bank
// of America login: with perfectly centered touches the decoded password
// must match exactly, and the real widget must be filled via the captured
// node reference.
func TestPasswordStealerEndToEnd(t *testing.T) {
	// Android 9 device: the mistouch window approaches zero, so a
	// deterministic exact-recovery run is expected (Section III-D).
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 profile missing")
	}
	st := assemble(t, p, 29)
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		t.Fatalf("ime.Show: %v", err)
	}
	stealer, err := NewPasswordStealer(st, PasswordStealerConfig{
		App:      evilApp,
		Victim:   sess,
		Keyboard: kb,
		D:        time.Duration(float64(p.PaperUpperBoundD) * 0.85),
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	if err := stealer.Arm(); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if stealer.Triggered() {
		t.Fatal("stealer triggered before focus")
	}

	const password = "tk&%48GH" // the paper's demo password
	// Let the binder queue settle, then focus the password field and
	// type with exact key centers (no human scatter) at a fixed cadence.
	st.Clock.MustAfter(time.Second, "focus", func() {
		if err := sess.Activity.Focus(sess.Password); err != nil {
			t.Errorf("Focus: %v", err)
		}
	})
	presses, err := kb.PlanPresses(password)
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	base := 2 * time.Second
	const cadence = 300 * time.Millisecond
	for i, pr := range presses {
		pr := pr
		down := base + time.Duration(i)*cadence
		st.Clock.MustAfter(down, "touch", func() {
			gid, _, ok := st.WM.BeginGesture(pr.Key.Center())
			if !ok {
				return
			}
			st.Clock.MustAfter(60*time.Millisecond, "up", func() {
				if _, err := st.WM.EndGesture(gid, pr.Key.Center()); err != nil {
					t.Errorf("EndGesture: %v", err)
				}
			})
		})
	}
	end := base + time.Duration(len(presses))*cadence + time.Second
	st.Clock.MustAfter(end, "stop", stealer.Stop)
	if err := st.Clock.RunFor(end + 10*time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}

	if !stealer.Triggered() {
		t.Fatal("stealer never triggered")
	}
	if got := stealer.StolenPassword(); got != password {
		t.Fatalf("stolen password = %q, want %q", got, password)
	}
	// Stealth: the real widget was filled through the node reference.
	if got := sess.Password.Text(); got != password {
		t.Fatalf("victim widget text = %q, want %q (programmatic fill)", got, password)
	}
	// Stealth: no alert ever became visible.
	if got := st.UI.WorstOutcome(); got != sysui.Lambda1 {
		t.Fatalf("WorstOutcome = %v, want Λ1", got)
	}
	downs, _, _ := stealer.CaptureStats()
	if downs != uint64(len(presses)) {
		t.Fatalf("captured %d downs, want %d", downs, len(presses))
	}
}

// TestPasswordStealerAlipayBypass: the Alipay password widget emits no
// accessibility events; the stealer must trigger off the username widget's
// lone CONTENT_CHANGED and reach the password reference via getParent().
func TestPasswordStealerAlipayBypass(t *testing.T) {
	p := device.Default()
	st := assemble(t, p, 31)
	alipay, _ := apps.ByName("Alipay")
	sess, err := alipay.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	stealer, err := NewPasswordStealer(st, PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb, D: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	if err := stealer.Arm(); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	// User types a username, then switches focus to the password field.
	if err := sess.Activity.Focus(sess.Username); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	for _, r := range "alice" {
		if err := sess.Activity.TypeRune(r); err != nil {
			t.Fatalf("TypeRune: %v", err)
		}
	}
	if stealer.Triggered() {
		t.Fatal("stealer triggered during username typing")
	}
	if err := sess.Activity.Focus(sess.Password); err != nil {
		t.Fatalf("Focus password: %v", err)
	}
	if !stealer.Triggered() {
		t.Fatal("stealer did not trigger on focus switch")
	}
	// The bypass found the suppressed password widget.
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	// Type one key and check the fill reaches the real widget.
	a, _ := kb.FindKey(keyboard.BoardLower, "a")
	gid, _, ok := st.WM.BeginGesture(a.Center())
	if !ok {
		t.Fatal("gesture missed")
	}
	if _, err := st.WM.EndGesture(gid, a.Center()); err != nil {
		t.Fatalf("EndGesture: %v", err)
	}
	if got := sess.Password.Text(); got != "a" {
		t.Fatalf("victim widget = %q; bypass fill failed", got)
	}
	stealer.Stop()
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
}

// TestPasswordStealerWithHumanTouches runs a realistic session with a
// stochastic typist; the decoded password is allowed scatter-induced
// near-miss errors but the pipeline must capture nearly all keystrokes.
func TestPasswordStealerWithHumanTouches(t *testing.T) {
	p, _ := device.ByModel("mi8") // Android 9, bound 215ms
	st := assemble(t, p, 37)
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		t.Fatalf("ime.Show: %v", err)
	}
	stealer, err := NewPasswordStealer(st, PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb,
		D: time.Duration(float64(p.PaperUpperBoundD) * 0.85),
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	if err := stealer.Arm(); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	typist, err := input.NewTypist(simrand.New(41))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	const password = "Secret99"
	ks, err := typist.PlanSession(kb, password, 2*time.Second)
	if err != nil {
		t.Fatalf("PlanSession: %v", err)
	}
	st.Clock.MustAfter(time.Second, "focus", func() {
		if err := sess.Activity.Focus(sess.Password); err != nil {
			t.Errorf("Focus: %v", err)
		}
	})
	for _, k := range ks {
		k := k
		st.Clock.MustAfter(k.DownAt, "down", func() {
			gid, _, ok := st.WM.BeginGesture(k.Point)
			if !ok {
				return
			}
			st.Clock.MustAfter(k.UpAt-k.DownAt, "up", func() {
				if _, err := st.WM.EndGesture(gid, k.Point); err != nil {
					t.Errorf("EndGesture: %v", err)
				}
			})
		})
	}
	end := ks[len(ks)-1].UpAt + time.Second
	st.Clock.MustAfter(end, "stop", stealer.Stop)
	if err := st.Clock.RunFor(end + 10*time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	downs, _, _ := stealer.CaptureStats()
	if downs < uint64(len(ks))-1 {
		t.Fatalf("captured %d/%d downs; Android 9 keystroke capture should be near-total", downs, len(ks))
	}
	if st.UI.WorstOutcome() != sysui.Lambda1 {
		t.Fatalf("alert became visible: %v", st.UI.WorstOutcome())
	}
}
