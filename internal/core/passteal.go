package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/keyboard"
	"repro/internal/sysserver"
	"repro/internal/uikit"
	"repro/internal/wm"
)

// PasswordStealerConfig configures the combined password-stealing attack
// of Section V.
type PasswordStealerConfig struct {
	// App is the malicious package (holds SYSTEM_ALERT_WINDOW and has an
	// accessibility service bound).
	App binder.ProcessID
	// Victim is the login screen under attack.
	Victim *apps.LoginSession
	// Keyboard is the keyboard geometry, aligned pixel-for-pixel with
	// the victim's real IME (the attacker derives it by offline analysis
	// of the keyboard layout).
	Keyboard *keyboard.Keyboard
	// D is the draw-and-destroy overlay attacking window; the attacker
	// selects the device's Table II upper bound after reading the phone
	// model.
	D time.Duration
	// ToastDuration is the fake-keyboard toast duration; defaults to
	// LENGTH_LONG (3.5 s) to minimize hand-offs.
	ToastDuration time.Duration
}

// PasswordStealer arms on a victim login screen and, once the password
// widget takes focus, runs the draw-and-destroy toast attack (fake
// keyboard) and the draw-and-destroy overlay attack (transparent
// UI-intercepting overlays over the fake keyboard) simultaneously. Each
// intercepted DOWN coordinate is decoded to the Euclidean-nearest key on
// the attacker's current sub-keyboard; transition keys swap the fake
// keyboard; decoded characters are filled into the real password widget
// through the captured accessibility node reference to keep the user
// unsuspecting.
type PasswordStealer struct {
	stack *sysserver.Stack
	cfg   PasswordStealerConfig

	overlay *OverlayAttack
	toast   *ToastAttack
	decoder *keyboard.Decoder

	armed   bool
	active  bool
	stopped bool

	// passwordRef is the accessibility node reference of the password
	// widget, obtained directly from its focus event or — when the app
	// suppresses password-widget events (Alipay) — via the getParent()
	// bypass from the username widget.
	passwordRef *uikit.View
	// pendingTypePair is set by a TYPE_VIEW_TEXT_CHANGED from the
	// username widget and cleared by the CONTENT_CHANGED that follows
	// it; a CONTENT_CHANGED arriving with no pending pair is the lone
	// event that signals focus leaving the widget (Section VI-C1).
	pendingTypePair bool

	// capture statistics
	downs, ups, cancels uint64
	startedAt           time.Duration

	// firstErr records the first failure inside event callbacks, which
	// have nowhere to return an error; runners check Err after the run.
	firstErr error
}

// Err reports the first failure the stealer hit inside a callback (nil
// normally), including errors surfaced by its sub-attacks.
func (p *PasswordStealer) Err() error {
	if p.firstErr != nil {
		return p.firstErr
	}
	if p.overlay != nil {
		if err := p.overlay.Err(); err != nil {
			return err
		}
	}
	if p.toast != nil {
		if err := p.toast.Err(); err != nil {
			return err
		}
	}
	return nil
}

func (p *PasswordStealer) fail(err error) {
	if p.firstErr == nil {
		p.firstErr = err
	}
}

// SelectAttackWindow implements the attacker's device fingerprinting step
// (Section VI-B: "the malicious app can collect the phone information
// before launching the attack so as to select an appropriate upper
// boundary of D"): it returns 90% of the phone's known Λ1 bound, clamped
// to a sane range, or a conservative 50 ms default for unknown hardware.
func SelectAttackWindow(p device.Profile) time.Duration {
	if p.PaperUpperBoundD <= 0 {
		return 50 * time.Millisecond // unknown phone: conservative default
	}
	d := time.Duration(float64(p.PaperUpperBoundD) * 0.9)
	const floor = 30 * time.Millisecond
	if d < floor {
		return floor
	}
	return d
}

// NewPasswordStealer validates the configuration. A zero D selects the
// fingerprinted window for the stack's device via SelectAttackWindow.
func NewPasswordStealer(stack *sysserver.Stack, cfg PasswordStealerConfig) (*PasswordStealer, error) {
	if stack == nil {
		return nil, errors.New("core: nil stack")
	}
	if cfg.App == "" {
		return nil, errors.New("core: empty attacker app")
	}
	if cfg.Victim == nil {
		return nil, errors.New("core: nil victim session")
	}
	if cfg.Keyboard == nil {
		return nil, errors.New("core: nil keyboard geometry")
	}
	if cfg.D == 0 {
		cfg.D = SelectAttackWindow(stack.Profile)
	}
	if cfg.D < 0 {
		return nil, fmt.Errorf("core: negative attacking window %v", cfg.D)
	}
	if cfg.ToastDuration == 0 {
		cfg.ToastDuration = sysserver.ToastLong
	}
	return &PasswordStealer{stack: stack, cfg: cfg}, nil
}

// Arm binds the malicious accessibility service to the victim activity and
// waits for the moment the user is about to type the password.
func (p *PasswordStealer) Arm() error {
	if p.armed {
		return errors.New("core: stealer already armed")
	}
	p.armed = true
	p.cfg.Victim.Activity.RegisterAccessibilityListener(p.onAccessibilityEvent)
	return nil
}

// TriggerNow launches the attack from an external timing channel — the
// paper notes the accessibility service "is used as just an example to
// demonstrate draw and destroy attacks while other approaches can be used
// to detect when the user enters the password", e.g. the shared-memory
// side channel of package sidechannel. Without an accessibility node
// reference the stealer cannot fill the victim widget, but interception
// and inference work unchanged. Triggering an already-active or stopped
// stealer is a no-op.
func (p *PasswordStealer) TriggerNow() {
	if p.active || p.stopped {
		return
	}
	p.startAttack()
}

// onAccessibilityEvent implements the two trigger paths of Sections V and
// VI-C1.
func (p *PasswordStealer) onAccessibilityEvent(ev uikit.Event) {
	if p.active || p.stopped {
		return
	}
	victim := p.cfg.Victim
	switch {
	case ev.Source == victim.Password && ev.Type == uikit.EventViewFocused:
		// Normal path: the password widget dispatches its focus event,
		// which both times the attack and hands over the node reference.
		p.passwordRef = ev.Source
		p.startAttack()
	case ev.Source == victim.Username && ev.Type == uikit.EventViewTextChanged:
		p.pendingTypePair = true
	case ev.Source == victim.Username && ev.Type == uikit.EventWindowContentChanged:
		// Alipay path: a CONTENT_CHANGED not paired with a preceding
		// TEXT_CHANGED means focus left the username widget — the user
		// is moving to the password field, whose own events are
		// suppressed.
		if p.pendingTypePair {
			p.pendingTypePair = false
			return
		}
		p.derivePasswordRefViaParent(ev.Source)
		p.startAttack()
	}
}

// derivePasswordRefViaParent is the paper's Alipay bypass: getParent() on
// the username widget, then enumerate the children for the password input.
func (p *PasswordStealer) derivePasswordRefViaParent(username *uikit.View) {
	parent := username.Parent()
	if parent == nil {
		return
	}
	for _, child := range parent.Children() {
		if child.Password {
			p.passwordRef = child
			return
		}
	}
}

// startAttack deploys both draw-and-destroy attacks over the keyboard
// area.
func (p *PasswordStealer) startAttack() {
	p.active = true
	p.startedAt = p.stack.Clock.Now()
	p.decoder = keyboard.NewDecoder(p.cfg.Keyboard)

	toast, err := NewToastAttack(p.stack, ToastAttackConfig{
		App:      p.cfg.App,
		Bounds:   p.cfg.Keyboard.Bounds(),
		Duration: p.cfg.ToastDuration,
		Content:  func() string { return "fake-keyboard:" + p.decoder.Board().String() },
	})
	if err != nil {
		// The sub-attack configs derive from the stealer's own validated
		// config; a failure here means the attack never deploys.
		p.fail(fmt.Errorf("core: build toast attack: %w", err))
		p.active = false
		return
	}
	p.toast = toast
	overlay, err := NewOverlayAttack(p.stack, OverlayAttackConfig{
		App:     p.cfg.App,
		D:       p.cfg.D,
		Bounds:  p.cfg.Keyboard.Bounds(),
		OnTouch: p.onInterceptedTouch,
	})
	if err != nil {
		p.fail(fmt.Errorf("core: build overlay attack: %w", err))
		p.active = false
		return
	}
	p.overlay = overlay
	if err := p.toast.Start(); err != nil {
		p.fail(fmt.Errorf("core: start toast attack: %w", err))
	}
	if err := p.overlay.Start(); err != nil {
		p.fail(fmt.Errorf("core: start overlay attack: %w", err))
	}
}

// onInterceptedTouch consumes the touch events the transparent overlays
// capture. The DOWN coordinate is all the inference needs; UP/CANCEL are
// tallied for the capture-rate statistics.
func (p *PasswordStealer) onInterceptedTouch(ev wm.TouchEvent) {
	switch ev.Action {
	case wm.ActionDown:
		p.downs++
		p.observeDown(ev.Pos)
	case wm.ActionUp:
		p.ups++
	case wm.ActionCancel:
		p.cancels++
	}
}

func (p *PasswordStealer) observeDown(pos geom.Point) {
	before := p.decoder.Board()
	key := p.decoder.Observe(pos)
	if p.decoder.Board() != before {
		// Transition key: swap the fake keyboard toast to the new
		// sub-keyboard immediately.
		if err := p.toast.SwitchContent(); err != nil {
			p.fail(fmt.Errorf("core: switch fake keyboard: %w", err))
		}
	}
	if (key.Kind == keyboard.KindChar || key.Kind == keyboard.KindSpace || key.Kind == keyboard.KindBackspace) && p.passwordRef != nil {
		// Fill the real widget so the user sees the expected dots.
		p.passwordRef.SetText(p.decoder.Password())
	}
	if key.Kind == keyboard.KindEnter {
		p.Stop()
	}
}

// Active reports whether the attack is currently intercepting.
func (p *PasswordStealer) Active() bool { return p.active }

// Stop tears both attacks down. Safe to call more than once.
func (p *PasswordStealer) Stop() {
	if !p.active || p.stopped {
		return
	}
	p.stopped = true
	p.active = false
	p.overlay.Stop()
	p.toast.Stop()
}

// StolenPassword reports the decoded password (empty before the attack
// triggered).
func (p *PasswordStealer) StolenPassword() string {
	if p.decoder == nil {
		return ""
	}
	return p.decoder.Password()
}

// CaptureStats reports the intercepted-event tallies: downs (keystroke
// coordinates obtained), ups (complete gestures) and cancels (gestures cut
// by an overlay swap).
func (p *PasswordStealer) CaptureStats() (downs, ups, cancels uint64) {
	return p.downs, p.ups, p.cancels
}

// Triggered reports whether the accessibility trigger fired.
func (p *PasswordStealer) Triggered() bool { return p.active || p.stopped }
