package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/sysserver"
)

// This file implements the other attacks the paper names as applications
// of the two draw-and-destroy building blocks (Section I: "password
// stealing, content hiding and payment hijack"; Section II-A: the
// clickjacking variant).

// ClickjackConfig configures a clickjacking attack: a *non*-UI-intercepting
// overlay (FLAG_NOT_TOUCHABLE) shows misleading content while the user's
// touches pass through to the victim app beneath — e.g. luring the user to
// press a button that actually grants a permission. The draw-and-destroy
// loop keeps the overlay's alert suppressed.
type ClickjackConfig struct {
	// App is the malicious package.
	App binder.ProcessID
	// D is the attacking window.
	D time.Duration
	// Bounds is the region the lure covers.
	Bounds geom.Rect
	// Lure describes the misleading content rendered on the overlay
	// (e.g. "Tap to claim your prize").
	Lure string
}

// ClickjackAttack is the draw-and-destroy clickjacking attack.
type ClickjackAttack struct {
	overlay *OverlayAttack
	lure    string
}

// NewClickjackAttack validates the configuration.
func NewClickjackAttack(stack *sysserver.Stack, cfg ClickjackConfig) (*ClickjackAttack, error) {
	if cfg.Lure == "" {
		return nil, errors.New("core: empty clickjack lure")
	}
	overlay, err := NewOverlayAttack(stack, OverlayAttackConfig{
		App:          cfg.App,
		D:            cfg.D,
		Bounds:       cfg.Bounds,
		NotTouchable: true,
	})
	if err != nil {
		return nil, fmt.Errorf("core: clickjack overlay: %w", err)
	}
	return &ClickjackAttack{overlay: overlay, lure: cfg.Lure}, nil
}

// Lure reports the misleading content shown to the user.
func (a *ClickjackAttack) Lure() string { return a.lure }

// Running reports whether the attack loop is active.
func (a *ClickjackAttack) Running() bool { return a.overlay.Running() }

// Cycles reports the draw-and-destroy swap count.
func (a *ClickjackAttack) Cycles() uint64 { return a.overlay.Cycles() }

// Start launches the draw-and-destroy loop under the lure.
func (a *ClickjackAttack) Start() error { return a.overlay.Start() }

// Stop tears the lure down.
func (a *ClickjackAttack) Stop() { a.overlay.Stop() }

// ContentHideConfig configures a content-hiding attack: a customized toast
// kept over a region of the victim's UI by the draw-and-destroy toast
// attack, replacing what the user sees there — e.g. covering "Pay ¥1000"
// with "Pay ¥1" in a payment hijack.
type ContentHideConfig struct {
	// App is the malicious package. No permission needed (toast vector).
	App binder.ProcessID
	// Region is the victim UI region to cover.
	Region geom.Rect
	// FakeContent is what the toast displays instead.
	FakeContent string
	// Duration is the per-toast duration; defaults to LENGTH_LONG.
	Duration time.Duration
}

// ContentHideAttack is the draw-and-destroy content-hiding attack.
type ContentHideAttack struct {
	stack *sysserver.Stack
	toast *ToastAttack
	cfg   ContentHideConfig
}

// NewContentHideAttack validates the configuration.
func NewContentHideAttack(stack *sysserver.Stack, cfg ContentHideConfig) (*ContentHideAttack, error) {
	if cfg.FakeContent == "" {
		return nil, errors.New("core: empty fake content")
	}
	toast, err := NewToastAttack(stack, ToastAttackConfig{
		App:      cfg.App,
		Bounds:   cfg.Region,
		Duration: cfg.Duration,
		Content:  func() string { return cfg.FakeContent },
	})
	if err != nil {
		return nil, fmt.Errorf("core: content-hide toast: %w", err)
	}
	return &ContentHideAttack{stack: stack, toast: toast, cfg: cfg}, nil
}

// Running reports whether the attack loop is active.
func (a *ContentHideAttack) Running() bool { return a.toast.Running() }

// Start launches the covering toast chain.
func (a *ContentHideAttack) Start() error { return a.toast.Start() }

// Stop retires the covering toast.
func (a *ContentHideAttack) Stop() { a.toast.Stop() }

// Covering reports whether a toast of the attacker currently covers the
// configured region at a visible opacity. The harness samples this to
// measure how continuously the real content stayed hidden.
func (a *ContentHideAttack) Covering() bool {
	return a.stack.WM.TopToastAlpha(a.cfg.App) >= 0.5
}
