// Package core implements the paper's primary contribution: the
// draw-and-destroy overlay attack (Section III), the draw-and-destroy
// toast attack (Section IV), and the combined password-stealing attack
// (Section V), all running against the simulated Android stack assembled
// by package sysserver.
package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
	"repro/internal/sysserver"
	"repro/internal/wm"
)

// OverlayAttackConfig configures a draw-and-destroy overlay attack.
type OverlayAttackConfig struct {
	// App is the malicious package (must hold SYSTEM_ALERT_WINDOW).
	App binder.ProcessID
	// D is the attacking window: the wait between overlay swaps. The
	// attacker picks D at or below the device's Λ1 upper boundary
	// (Table II) to suppress the notification alert.
	D time.Duration
	// Bounds is the overlay rectangle (e.g. the keyboard area).
	Bounds geom.Rect
	// OnTouch receives the touch events the overlays intercept.
	OnTouch wm.TouchHandler
	// NotTouchable makes the overlays pass touches through to the
	// victim beneath — the clickjacking variant of Section II-A, where
	// the overlay shows misleading content while the user unknowingly
	// operates the app below it.
	NotTouchable bool
	// AddBeforeRemove inverts the swap's call order, reproducing the
	// mistake the paper warns about (Section III-C, Step 2): addView is
	// a blocking call, so issuing it first delays the removeView long
	// enough that the new overlay shows up before the old one is
	// removed, the overlay count never reaches zero, the alert animation
	// is never reversed, and the attack fails.
	AddBeforeRemove bool
}

// OverlayAttack is the draw-and-destroy overlay attack: two UI-intercepting
// overlay views created in advance, swapped every D by a worker-thread
// timer so that the sequence of overlays stays on top of the victim while
// the notification alert's slow-in animation never renders a pixel.
type OverlayAttack struct {
	stack *sysserver.Stack
	cfg   OverlayAttackConfig

	running bool
	tick    *simclock.Event
	// cur alternates between the two pre-created overlay handles.
	cur    uint64
	cycles uint64
	// firstErr records the first binder failure of the attack loop;
	// callbacks on the clock have nowhere to return errors, so the runner
	// checks Err after the run.
	firstErr error
}

// Overlay view handles; the malicious app creates both view objects in
// advance so swap timing is not perturbed by object construction.
const (
	overlayHandle1 = 1
	overlayHandle2 = 2
)

// NewOverlayAttack validates the configuration and binds the attack to a
// stack.
func NewOverlayAttack(stack *sysserver.Stack, cfg OverlayAttackConfig) (*OverlayAttack, error) {
	if stack == nil {
		return nil, errors.New("core: nil stack")
	}
	if cfg.App == "" {
		return nil, errors.New("core: empty attacker app")
	}
	if cfg.D <= 0 {
		return nil, fmt.Errorf("core: non-positive attacking window %v", cfg.D)
	}
	if cfg.Bounds.Empty() {
		return nil, fmt.Errorf("core: empty overlay bounds %v", cfg.Bounds)
	}
	return &OverlayAttack{stack: stack, cfg: cfg, cur: overlayHandle1}, nil
}

// Running reports whether the attack loop is active.
func (a *OverlayAttack) Running() bool { return a.running }

// Cycles reports how many draw-and-destroy swaps have run.
func (a *OverlayAttack) Cycles() uint64 { return a.cycles }

// Err reports the first binder failure the attack loop hit (nil normally;
// non-nil only in a mis-wired assembly).
func (a *OverlayAttack) Err() error { return a.firstErr }

func (a *OverlayAttack) fail(err error) {
	if a.firstErr == nil {
		a.firstErr = err
	}
}

// Start draws the first overlay and arms the worker-thread timer
// (Section III-C, Step 1). The first timer notification only performs
// addView; every later one performs removeView then addView.
func (a *OverlayAttack) Start() error {
	if a.running {
		return errors.New("core: overlay attack already running")
	}
	a.running = true
	a.addView(a.cur)
	a.armTimer()
	return nil
}

func (a *OverlayAttack) armTimer() {
	d := a.cfg.D
	if pl := a.stack.Faults; pl != nil {
		// Scheduler preemption: the attacker's worker thread loses the
		// CPU and the swap timer fires late — the perturbation the §VI-B
		// load experiment argues the attack tolerates.
		d += pl.PreemptPause()
	}
	a.tick = a.stack.Clock.MustAfter(d, "attack/overlaySwap", func() {
		if !a.running {
			return
		}
		a.swap()
		a.armTimer()
	})
}

// swap is Step 2: remove the displayed overlay, then add the other one.
// removeView MUST be called before addView — addView is a blocking call
// that would delay the removal and let the new overlay show up before the
// old one is removed, keeping the alert animation alive (Section III-C).
// With AddBeforeRemove set, the wrong order is used instead and the
// removeView call is issued only after the blocking addView returns.
func (a *OverlayAttack) swap() {
	prev := a.cur
	next := uint64(overlayHandle1)
	if prev == overlayHandle1 {
		next = overlayHandle2
	}
	if a.cfg.AddBeforeRemove {
		a.addView(next)
		// addView blocks the app's main thread until the window is
		// attached (Tam + Tas); only then does removeView go out.
		block := a.stack.Profile.Tam.Sample(a.stack.RNG) + a.stack.Profile.Tas.Sample(a.stack.RNG)
		a.stack.Clock.MustAfter(block, "attack/blockedRemove", func() {
			a.removeView(prev)
		})
	} else {
		a.removeView(prev)
		a.addView(next)
	}
	a.cur = next
	a.cycles++
}

func (a *OverlayAttack) addView(handle uint64) {
	flags := wm.FlagTransparent
	if a.cfg.NotTouchable {
		flags |= wm.FlagNotTouchable
	}
	if _, err := a.stack.Bus.Call(a.cfg.App, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
		Handle:  handle,
		Type:    wm.TypeApplicationOverlay,
		Bounds:  a.cfg.Bounds,
		Flags:   flags,
		OnTouch: a.cfg.OnTouch,
	}); err != nil {
		a.fail(fmt.Errorf("core: addView binder call: %w", err))
	}
}

func (a *OverlayAttack) removeView(handle uint64) {
	if _, err := a.stack.Bus.Call(a.cfg.App, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{
		Handle: handle,
	}); err != nil {
		a.fail(fmt.Errorf("core: removeView binder call: %w", err))
	}
}

// Stop is Step 5: cancel the timer and remove the last displayed overlay.
func (a *OverlayAttack) Stop() {
	if !a.running {
		return
	}
	a.running = false
	if a.tick != nil {
		a.stack.Clock.Cancel(a.tick)
		a.tick = nil
	}
	a.removeView(a.cur)
}
