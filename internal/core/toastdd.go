package core

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
	"repro/internal/sysserver"
)

// ToastAttackConfig configures a draw-and-destroy toast attack.
type ToastAttackConfig struct {
	// App is the malicious package. No permission is required — that is
	// the point of the toast vector.
	App binder.ProcessID
	// Bounds is the toast rectangle (e.g. the fake keyboard area).
	Bounds geom.Rect
	// Duration is the per-toast duration; the paper recommends
	// LENGTH_LONG (3.5 s) to minimize hand-offs. Defaults to ToastLong.
	Duration time.Duration
	// Content supplies the customized toast content at enqueue time
	// (e.g. the current fake sub-keyboard). Required.
	Content func() string
	// RefillInterval is how often the attack's worker thread checks its
	// local token accounting and tops the queue up. Defaults to 200 ms.
	RefillInterval time.Duration
	// TargetQueueDepth is the number of tokens the attack keeps queued
	// so the Notification Manager always has a successor to show (while
	// staying far below the 50-token cap). Defaults to 1.
	TargetQueueDepth int
}

// ToastAttack is the draw-and-destroy toast attack: a malicious app keeps
// a customized toast permanently on screen by enqueuing a successor before
// the current toast fades, exploiting the 500 ms fade-out animation to
// make hand-offs imperceptible (Section IV).
type ToastAttack struct {
	stack *sysserver.Stack
	cfg   ToastAttackConfig

	running  bool
	refill   *simclock.Event
	enqueued uint64
	// firstErr records the first binder failure of the refill loop.
	firstErr error
}

// NewToastAttack validates the configuration and binds the attack to a
// stack.
func NewToastAttack(stack *sysserver.Stack, cfg ToastAttackConfig) (*ToastAttack, error) {
	if stack == nil {
		return nil, errors.New("core: nil stack")
	}
	if cfg.App == "" {
		return nil, errors.New("core: empty attacker app")
	}
	if cfg.Bounds.Empty() {
		return nil, fmt.Errorf("core: empty toast bounds %v", cfg.Bounds)
	}
	if cfg.Content == nil {
		return nil, errors.New("core: nil toast content supplier")
	}
	if cfg.Duration == 0 {
		cfg.Duration = sysserver.ToastLong
	}
	if cfg.Duration != sysserver.ToastShort && cfg.Duration != sysserver.ToastLong {
		return nil, fmt.Errorf("core: toast duration %v is not LENGTH_SHORT or LENGTH_LONG", cfg.Duration)
	}
	if cfg.RefillInterval == 0 {
		cfg.RefillInterval = 200 * time.Millisecond
	}
	if cfg.RefillInterval < 0 {
		return nil, fmt.Errorf("core: negative refill interval %v", cfg.RefillInterval)
	}
	if cfg.TargetQueueDepth == 0 {
		cfg.TargetQueueDepth = 1
	}
	if cfg.TargetQueueDepth < 0 || cfg.TargetQueueDepth >= sysserver.MaxToastTokensPerApp {
		return nil, fmt.Errorf("core: target queue depth %d out of range", cfg.TargetQueueDepth)
	}
	return &ToastAttack{stack: stack, cfg: cfg}, nil
}

// Running reports whether the attack loop is active.
func (a *ToastAttack) Running() bool { return a.running }

// Enqueued reports how many toasts the attack has posted.
func (a *ToastAttack) Enqueued() uint64 { return a.enqueued }

// Err reports the first binder failure the attack loop hit (nil normally;
// non-nil only in a mis-wired assembly).
func (a *ToastAttack) Err() error { return a.firstErr }

func (a *ToastAttack) fail(err error) {
	if a.firstErr == nil {
		a.firstErr = err
	}
}

// Start posts the first toast and arms the refill loop (Section IV-C,
// Steps 1–3): the worker thread keeps the token queue non-empty so a new
// toast is always fetched the moment the previous one starts fading.
func (a *ToastAttack) Start() error {
	if a.running {
		return errors.New("core: toast attack already running")
	}
	a.running = true
	a.enqueue()
	a.armRefill()
	return nil
}

func (a *ToastAttack) armRefill() {
	d := a.cfg.RefillInterval
	if pl := a.stack.Faults; pl != nil {
		d += pl.PreemptPause() // scheduler preemption on the worker thread
	}
	a.refill = a.stack.Clock.MustAfter(d, "attack/toastRefill", func() {
		if !a.running {
			return
		}
		// The app's local token accounting; QueuedToasts stands in for
		// the count the app can maintain itself from its enqueue/expiry
		// timing.
		if a.stack.Server.QueuedToasts(a.cfg.App) < a.cfg.TargetQueueDepth {
			a.enqueue()
		}
		a.armRefill()
	})
}

func (a *ToastAttack) enqueue() {
	if _, err := a.stack.Bus.Call(a.cfg.App, binder.SystemServer, sysserver.MethodEnqueueToast, sysserver.EnqueueToastRequest{
		Duration: a.cfg.Duration,
		Bounds:   a.cfg.Bounds,
		Content:  a.cfg.Content(),
	}); err != nil {
		a.fail(fmt.Errorf("core: enqueueToast binder call: %w", err))
		return
	}
	a.enqueued++
}

// SwitchContent retires the current toast (Toast.cancel()) and immediately
// posts a fresh one so new content — a different fake sub-keyboard —
// replaces it as fast as the system allows. The old toast's fade-out
// bridges the transition.
func (a *ToastAttack) SwitchContent() error {
	if !a.running {
		return errors.New("core: toast attack not running")
	}
	if _, err := a.stack.Bus.Call(a.cfg.App, binder.SystemServer, sysserver.MethodCancelToast, sysserver.CancelToastRequest{}); err != nil {
		return fmt.Errorf("core: cancelToast binder call: %w", err)
	}
	a.enqueue()
	return nil
}

// Stop cancels the refill loop and retires the current toast.
func (a *ToastAttack) Stop() {
	if !a.running {
		return
	}
	a.running = false
	if a.refill != nil {
		a.stack.Clock.Cancel(a.refill)
		a.refill = nil
	}
	if _, err := a.stack.Bus.Call(a.cfg.App, binder.SystemServer, sysserver.MethodCancelToast, sysserver.CancelToastRequest{}); err != nil {
		a.fail(fmt.Errorf("core: cancelToast binder call: %w", err))
	}
}
