package core

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/sysui"
	"repro/internal/wm"
)

// TestClickjackPassesTouchesToVictim: with the non-touchable lure on top,
// the user's taps land on the victim app below while the alert stays Λ1.
func TestClickjackPassesTouchesToVictim(t *testing.T) {
	p := device.Default()
	st := assemble(t, p, 51)
	var victimTaps int
	if _, err := st.WM.AddWindow(wm.Spec{
		Owner:  "com.android.settings",
		Type:   wm.TypeActivity,
		Bounds: screenOf(p),
		OnTouch: func(ev wm.TouchEvent) {
			if ev.Action == wm.ActionUp {
				victimTaps++
			}
		},
	}); err != nil {
		t.Fatalf("victim window: %v", err)
	}
	atk, err := NewClickjackAttack(st, ClickjackConfig{
		App:    evilApp,
		D:      time.Duration(float64(p.PaperUpperBoundD) * 0.9),
		Bounds: screenOf(p),
		Lure:   "Tap to claim your prize",
	})
	if err != nil {
		t.Fatalf("NewClickjackAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	if got := atk.Lure(); got != "Tap to claim your prize" {
		t.Fatalf("Lure = %q", got)
	}
	// The user taps "the prize" five times over a few seconds.
	for i := 0; i < 5; i++ {
		at := time.Duration(i+2) * time.Second
		st.Clock.MustAfter(at, "user/tap", func() {
			gid, target, ok := st.WM.BeginGesture(geom.Pt(540, 960))
			if !ok {
				t.Error("tap hit nothing")
				return
			}
			if target.Owner != "com.android.settings" {
				t.Errorf("tap landed on %s, want the victim beneath the lure", target.Owner)
			}
			st.Clock.MustAfter(50*time.Millisecond, "user/up", func() {
				if _, err := st.WM.EndGesture(gid, geom.Pt(540, 960)); err != nil {
					t.Errorf("EndGesture: %v", err)
				}
			})
		})
	}
	st.Clock.MustAfter(10*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if victimTaps != 5 {
		t.Fatalf("victim received %d taps, want 5 (pass-through)", victimTaps)
	}
	if got := st.UI.WorstOutcome(); got != sysui.Lambda1 {
		t.Fatalf("WorstOutcome = %v, want Λ1", got)
	}
	if atk.Running() {
		t.Fatal("attack still running after Stop")
	}
	if atk.Cycles() == 0 {
		t.Fatal("attack never cycled")
	}
}

func TestClickjackValidation(t *testing.T) {
	st := assemble(t, device.Default(), 1)
	if _, err := NewClickjackAttack(st, ClickjackConfig{
		App: evilApp, D: 100 * time.Millisecond, Bounds: screenOf(st.Profile),
	}); err == nil {
		t.Fatal("empty lure accepted")
	}
	if _, err := NewClickjackAttack(st, ClickjackConfig{
		App: evilApp, D: 0, Bounds: screenOf(st.Profile), Lure: "x",
	}); err == nil {
		t.Fatal("zero D accepted")
	}
}

// TestContentHideCoversRegion: the fake content stays over the region for
// an extended period without the alert or a flicker.
func TestContentHideCoversRegion(t *testing.T) {
	st := assemble(t, device.Default(), 53)
	region := geom.RectWH(100, 800, 880, 200) // the "Pay ¥1000" line
	atk, err := NewContentHideAttack(st, ContentHideConfig{
		App:         evilApp,
		Region:      region,
		FakeContent: "Pay ¥1",
	})
	if err != nil {
		t.Fatalf("NewContentHideAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	coveredSamples, samples := 0, 0
	var probe func()
	probe = func() {
		if st.Clock.Now() > 20*time.Second {
			return
		}
		samples++
		if atk.Covering() {
			coveredSamples++
		}
		st.Clock.MustAfter(10*time.Millisecond, "probe", probe)
	}
	st.Clock.MustAfter(time.Second, "probe", probe)
	st.Clock.MustAfter(21*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(30 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	cov := float64(coveredSamples) / float64(samples)
	if cov < 0.97 {
		t.Fatalf("region covered %.3f of the time, want > 0.97", cov)
	}
	if got := len(st.UI.Episodes()); got != 0 {
		t.Fatalf("content-hide produced %d alert episodes, want 0 (toast vector)", got)
	}
	if atk.Running() {
		t.Fatal("running after Stop")
	}
}

func TestContentHideValidation(t *testing.T) {
	st := assemble(t, device.Default(), 1)
	if _, err := NewContentHideAttack(st, ContentHideConfig{
		App: evilApp, Region: geom.RectWH(0, 0, 10, 10),
	}); err == nil {
		t.Fatal("empty fake content accepted")
	}
	if _, err := NewContentHideAttack(st, ContentHideConfig{
		App: evilApp, FakeContent: "x",
	}); err == nil {
		t.Fatal("empty region accepted")
	}
}

func TestSelectAttackWindow(t *testing.T) {
	p, _ := device.ByModel("Redmi") // bound 395ms
	if got := SelectAttackWindow(p); got != 355500*time.Microsecond {
		t.Fatalf("SelectAttackWindow(Redmi) = %v, want 355.5ms", got)
	}
	var unknown device.Profile
	if got := SelectAttackWindow(unknown); got != 50*time.Millisecond {
		t.Fatalf("SelectAttackWindow(unknown) = %v, want 50ms default", got)
	}
}

// TestStealerZeroDFingerprints: a zero D in the config selects the
// device-appropriate window automatically.
func TestStealerZeroDFingerprints(t *testing.T) {
	p, _ := device.ByModel("mi8")
	st := assemble(t, p, 61)
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	stealer, err := NewPasswordStealer(st, PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb, // D omitted
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	if got := stealer.cfg.D; got != SelectAttackWindow(p) {
		t.Fatalf("auto D = %v, want %v", got, SelectAttackWindow(p))
	}
	if _, err := NewPasswordStealer(st, PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb, D: -time.Second,
	}); err == nil {
		t.Fatal("negative D accepted")
	}
}

// TestStealerSurvivesMonkeyInput: random gestures across the whole screen
// (not just the keyboard) during an active attack must not break the
// stealer — off-keyboard touches miss the overlay entirely and on-keyboard
// garbage decodes to *something* without crashing.
func TestStealerSurvivesMonkeyInput(t *testing.T) {
	p := device.Default()
	st := assemble(t, p, 67)
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		t.Fatalf("ime.Show: %v", err)
	}
	stealer, err := NewPasswordStealer(st, PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb,
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	if err := stealer.Arm(); err != nil {
		t.Fatalf("Arm: %v", err)
	}
	if err := sess.Activity.Focus(sess.Password); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	rng := simrand.New(71)
	for i := 0; i < 200; i++ {
		at := time.Duration(500+i*37) * time.Millisecond
		st.Clock.MustAfter(at, "monkey", func() {
			pt := geom.Pt(rng.Float64()*float64(p.ScreenW), rng.Float64()*float64(p.ScreenH))
			gid, _, ok := st.WM.BeginGesture(pt)
			if !ok {
				return
			}
			st.Clock.MustAfter(time.Duration(5+rng.Intn(80))*time.Millisecond, "monkey/up", func() {
				if _, err := st.WM.EndGesture(gid, pt); err != nil {
					t.Errorf("EndGesture: %v", err)
				}
			})
		})
	}
	st.Clock.MustAfter(10*time.Second, "stop", stealer.Stop)
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	// Double stop is safe; the attack tore down cleanly.
	stealer.Stop()
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.WM.OverlayCount(evilApp) != 0 {
		t.Fatal("overlays leaked after monkey session")
	}
}

// TestOverlayAttackSuppressesOnAllDevices is the fleet smoke test: the
// attack at 85% of each device's calibrated bound must reach Λ1 on every
// one of the 30 evaluation phones.
func TestOverlayAttackSuppressesOnAllDevices(t *testing.T) {
	for i, p := range device.Profiles() {
		p := p
		st := assemble(t, p, int64(100+i))
		atk, err := NewOverlayAttack(st, OverlayAttackConfig{
			App:    evilApp,
			D:      time.Duration(float64(p.PaperUpperBoundD) * 0.85),
			Bounds: screenOf(p),
		})
		if err != nil {
			t.Fatalf("%s: NewOverlayAttack: %v", p.Name(), err)
		}
		if err := atk.Start(); err != nil {
			t.Fatalf("%s: Start: %v", p.Name(), err)
		}
		st.Clock.MustAfter(6*time.Second, "stop", atk.Stop)
		if err := st.Clock.RunFor(10 * time.Second); err != nil {
			t.Fatalf("%s: RunFor: %v", p.Name(), err)
		}
		if got := st.UI.WorstOutcome(); got != sysui.Lambda1 {
			t.Errorf("%s: WorstOutcome = %v, want Λ1", p.Name(), got)
		}
	}
}

// TestAddBeforeRemoveFailsAsPaperWarns reproduces the paper's negative
// result: issuing addView before removeView keeps an overlay present at
// all times, the alert is never retracted, and the animation completes.
func TestAddBeforeRemoveFailsAsPaperWarns(t *testing.T) {
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 missing")
	}
	st := assemble(t, p, 57)
	atk, err := NewOverlayAttack(st, OverlayAttackConfig{
		App:             evilApp,
		D:               time.Duration(float64(p.PaperUpperBoundD) * 0.9),
		Bounds:          screenOf(p),
		AddBeforeRemove: true,
	})
	if err != nil {
		t.Fatalf("NewOverlayAttack: %v", err)
	}
	if err := atk.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	st.Clock.MustAfter(8*time.Second, "stop", atk.Stop)
	if err := st.Clock.RunFor(12 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.UI.WorstOutcome(); got != sysui.Lambda5 {
		t.Fatalf("WorstOutcome = %v; wrong call order must let the alert complete (Λ5)", got)
	}
}
