package uikit

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/simclock"
)

func loginTree() (*View, *View, *View) {
	root := NewView("login_root", "LinearLayout", geom.RectWH(0, 0, 1080, 1920))
	user := root.AddChild(NewView("username_input", "EditText", geom.RectWH(40, 500, 1000, 120)))
	pass := root.AddChild(NewView("password_input", "EditText", geom.RectWH(40, 700, 1000, 120)))
	pass.Password = true
	return root, user, pass
}

func newActivity(t *testing.T) (*Activity, *View, *View) {
	t.Helper()
	clock := simclock.New()
	root, user, pass := loginTree()
	act, err := NewActivity(clock, "com.bank.app", root)
	if err != nil {
		t.Fatalf("NewActivity: %v", err)
	}
	return act, user, pass
}

func TestNewActivityValidation(t *testing.T) {
	clock := simclock.New()
	root, _, _ := loginTree()
	if _, err := NewActivity(nil, "a", root); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewActivity(clock, "", root); err == nil {
		t.Fatal("empty app accepted")
	}
	if _, err := NewActivity(clock, "a", nil); err == nil {
		t.Fatal("nil root accepted")
	}
}

func TestTreeNavigation(t *testing.T) {
	root, user, pass := loginTree()
	if user.Parent() != root || pass.Parent() != root {
		t.Fatal("Parent broken")
	}
	if root.Parent() != nil {
		t.Fatal("root has a parent")
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0] != user || kids[1] != pass {
		t.Fatalf("Children = %v", kids)
	}
	got, ok := root.FindByID("password_input")
	if !ok || got != pass {
		t.Fatal("FindByID failed")
	}
	if _, ok := root.FindByID("nope"); ok {
		t.Fatal("FindByID found a ghost")
	}
}

func TestAddChildTwiceIgnored(t *testing.T) {
	root, user, _ := loginTree()
	other := NewView("other", "FrameLayout", geom.RectWH(0, 0, 1, 1))
	if got := other.AddChild(user); got != user {
		t.Fatal("AddChild did not return the child")
	}
	if user.Parent() != root {
		t.Fatal("re-parenting moved the child; want no-op")
	}
	if len(other.Children()) != 0 {
		t.Fatalf("adopting parent gained children: %v", other.Children())
	}
}

// TestAlipayBypassNavigation walks the paper's Alipay bypass: from the
// username widget's event source, getParent() then child enumeration
// reaches the password widget even though its own events are disabled.
func TestAlipayBypassNavigation(t *testing.T) {
	act, user, pass := newActivity(t)
	pass.A11yEnabled = false
	var captured *View
	act.RegisterAccessibilityListener(func(ev Event) {
		if ev.Source == user && captured == nil {
			parent := ev.Source.Parent()
			for _, c := range parent.Children() {
				if c.Password {
					captured = c
				}
			}
		}
	})
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	if err := act.TypeRune('u'); err != nil {
		t.Fatalf("TypeRune: %v", err)
	}
	if captured != pass {
		t.Fatal("bypass did not reach the password widget")
	}
	// The obtained reference permits the programmatic fill.
	captured.SetText("stolen-pw")
	if pass.Text() != "stolen-pw" {
		t.Fatal("SetText via captured reference failed")
	}
}

func TestTypingEmitsEventPair(t *testing.T) {
	act, user, _ := newActivity(t)
	var types []EventType
	act.RegisterAccessibilityListener(func(ev Event) { types = append(types, ev.Type) })
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	if err := act.TypeRune('a'); err != nil {
		t.Fatalf("TypeRune: %v", err)
	}
	want := []EventType{EventViewFocused, EventViewTextChanged, EventWindowContentChanged}
	if len(types) != len(want) {
		t.Fatalf("events = %v, want %v", types, want)
	}
	for i := range want {
		if types[i] != want[i] {
			t.Fatalf("events = %v, want %v", types, want)
		}
	}
	if user.Text() != "a" {
		t.Fatalf("text = %q", user.Text())
	}
}

// TestFocusSwitchEmitsLoneContentChanged reproduces the paper's timing
// signal: when the user finishes typing and switches focus, the widget
// sends only TYPE_WINDOW_CONTENT_CHANGED.
func TestFocusSwitchEmitsLoneContentChanged(t *testing.T) {
	act, user, pass := newActivity(t)
	pass.A11yEnabled = true
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	var fromUser []EventType
	act.RegisterAccessibilityListener(func(ev Event) {
		if ev.Source == user {
			fromUser = append(fromUser, ev.Type)
		}
	})
	if err := act.Focus(pass); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	if len(fromUser) != 1 || fromUser[0] != EventWindowContentChanged {
		t.Fatalf("events from username on focus switch = %v, want lone CONTENT_CHANGED", fromUser)
	}
	if act.Focused() != pass {
		t.Fatal("focus not moved")
	}
}

func TestA11yDisabledSuppressesEvents(t *testing.T) {
	act, _, pass := newActivity(t)
	pass.A11yEnabled = false
	count := 0
	act.RegisterAccessibilityListener(func(Event) { count++ })
	if err := act.Focus(pass); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	if err := act.TypeRune('s'); err != nil {
		t.Fatalf("TypeRune: %v", err)
	}
	if count != 0 {
		t.Fatalf("a11y-disabled widget emitted %d events", count)
	}
	if pass.Text() != "s" {
		t.Fatal("typing into a11y-disabled widget lost text")
	}
}

func TestFocusValidation(t *testing.T) {
	act, _, _ := newActivity(t)
	if err := act.Focus(nil); err == nil {
		t.Fatal("Focus(nil) accepted")
	}
	stranger := NewView("stranger", "EditText", geom.RectWH(0, 0, 1, 1))
	if err := act.Focus(stranger); err == nil {
		t.Fatal("Focus on foreign view accepted")
	}
}

func TestTypeWithoutFocusFails(t *testing.T) {
	act, _, _ := newActivity(t)
	if err := act.TypeRune('x'); err == nil {
		t.Fatal("TypeRune without focus accepted")
	}
	if err := act.Backspace(); err == nil {
		t.Fatal("Backspace without focus accepted")
	}
}

func TestBackspace(t *testing.T) {
	act, user, _ := newActivity(t)
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	for _, r := range "ab" {
		if err := act.TypeRune(r); err != nil {
			t.Fatalf("TypeRune: %v", err)
		}
	}
	if err := act.Backspace(); err != nil {
		t.Fatalf("Backspace: %v", err)
	}
	if user.Text() != "a" {
		t.Fatalf("text = %q, want a", user.Text())
	}
	// Backspace on empty text is harmless.
	if err := act.Backspace(); err != nil {
		t.Fatalf("Backspace: %v", err)
	}
	if err := act.Backspace(); err != nil {
		t.Fatalf("Backspace: %v", err)
	}
	if user.Text() != "" {
		t.Fatalf("text = %q, want empty", user.Text())
	}
}

func TestRefocusSameViewNoEvents(t *testing.T) {
	act, user, _ := newActivity(t)
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	count := 0
	act.RegisterAccessibilityListener(func(Event) { count++ })
	if err := act.Focus(user); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	if count != 0 {
		t.Fatalf("refocusing same view emitted %d events", count)
	}
}

func TestEventTypeString(t *testing.T) {
	tests := []struct {
		e    EventType
		want string
	}{
		{EventViewTextChanged, "TYPE_VIEW_TEXT_CHANGED"},
		{EventWindowContentChanged, "TYPE_WINDOW_CONTENT_CHANGED"},
		{EventViewFocused, "TYPE_VIEW_FOCUSED"},
		{EventType(42), "EventType(42)"},
	}
	for _, tt := range tests {
		if got := tt.e.String(); got != tt.want {
			t.Errorf("String = %q, want %q", got, tt.want)
		}
	}
}
