// Package uikit models the slice of the Android view/widget layer the
// password-stealing attack interacts with: a view tree with parent/child
// navigation (getParent(), the Alipay bypass), focusable text and password
// input widgets, and the accessibility-event stream
// (TYPE_VIEW_TEXT_CHANGED, TYPE_WINDOW_CONTENT_CHANGED) a malicious
// accessibility service uses to learn when a user starts typing a password
// (Section V).
package uikit

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
)

// EventType enumerates accessibility event types (the subset the paper
// uses).
type EventType int

// Accessibility event types.
const (
	// EventViewTextChanged is TYPE_VIEW_TEXT_CHANGED: the widget's text
	// changed while the user types.
	EventViewTextChanged EventType = iota + 1
	// EventWindowContentChanged is TYPE_WINDOW_CONTENT_CHANGED: sent
	// along with text changes, and alone when focus leaves a widget.
	EventWindowContentChanged
	// EventViewFocused is TYPE_VIEW_FOCUSED: a widget gained focus.
	EventViewFocused
)

// String renders the event type with its Android constant name.
func (e EventType) String() string {
	switch e {
	case EventViewTextChanged:
		return "TYPE_VIEW_TEXT_CHANGED"
	case EventWindowContentChanged:
		return "TYPE_WINDOW_CONTENT_CHANGED"
	case EventViewFocused:
		return "TYPE_VIEW_FOCUSED"
	default:
		return fmt.Sprintf("EventType(%d)", int(e))
	}
}

// Event is one accessibility event. Source carries the live view
// reference; the paper's Alipay bypass walks Source.Parent() to reach the
// password widget whose own events are suppressed.
type Event struct {
	// Type is the accessibility event type.
	Type EventType
	// App is the package the event originates from.
	App binder.ProcessID
	// Source is the view that emitted the event.
	Source *View
	// At is the virtual emission time.
	At time.Duration
}

// Listener receives accessibility events, as a bound accessibility service
// does.
type Listener func(ev Event)

// View is a node of an activity's view tree.
type View struct {
	// ID is the resource id (e.g. "username_input").
	ID string
	// Class is the widget class name (e.g. "EditText").
	Class string
	// Bounds is the on-screen rectangle.
	Bounds geom.Rect
	// Password marks a password input (text is masked, and apps may
	// additionally disable accessibility on it).
	Password bool
	// A11yEnabled controls whether this view dispatches accessibility
	// events; Alipay sets it false on its password widget.
	A11yEnabled bool

	parent   *View
	children []*View
	text     []rune
}

// NewView constructs a view node.
func NewView(id, class string, bounds geom.Rect) *View {
	return &View{ID: id, Class: class, Bounds: bounds, A11yEnabled: true}
}

// AddChild attaches child to v and returns the child for chaining. A
// child that already has a parent is left in its original tree and the
// add is ignored: view nodes belong to exactly one tree.
func (v *View) AddChild(child *View) *View {
	if child.parent != nil {
		return child
	}
	child.parent = v
	v.children = append(v.children, child)
	return child
}

// Parent returns the parent view (nil at the root). This is the
// getParent() call of the paper's Alipay bypass.
func (v *View) Parent() *View { return v.parent }

// Children returns the direct children in attach order.
func (v *View) Children() []*View {
	out := make([]*View, len(v.children))
	copy(out, v.children)
	return out
}

// FindByID searches the subtree rooted at v for a view with the id.
func (v *View) FindByID(id string) (*View, bool) {
	if v.ID == id {
		return v, true
	}
	for _, c := range v.children {
		if found, ok := c.FindByID(id); ok {
			return found, true
		}
	}
	return nil, false
}

// Text reports the widget's current text.
func (v *View) Text() string { return string(v.text) }

// SetText replaces the widget's text without emitting events (the
// malicious app's programmatic fill via the accessibility node, used to
// hide the attack by making the password appear in the real widget).
func (v *View) SetText(s string) { v.text = []rune(s) }

// Activity hosts a view tree, focus state, and accessibility dispatch for
// one app screen (e.g. a login screen).
type Activity struct {
	// App is the owning package.
	App binder.ProcessID
	// Root is the view tree root.
	Root *View

	clock     *simclock.Clock
	focused   *View
	listeners []Listener
}

// NewActivity builds an activity.
func NewActivity(clock *simclock.Clock, app binder.ProcessID, root *View) (*Activity, error) {
	if clock == nil {
		return nil, errors.New("uikit: nil clock")
	}
	if app == "" {
		return nil, errors.New("uikit: empty app")
	}
	if root == nil {
		return nil, errors.New("uikit: nil root view")
	}
	return &Activity{App: app, Root: root, clock: clock}, nil
}

// RegisterAccessibilityListener binds an accessibility service to the
// activity's event stream; nil listeners are ignored.
func (a *Activity) RegisterAccessibilityListener(fn Listener) {
	if fn != nil {
		a.listeners = append(a.listeners, fn)
	}
}

func (a *Activity) emit(t EventType, source *View) {
	if !source.A11yEnabled {
		return
	}
	ev := Event{Type: t, App: a.App, Source: source, At: a.clock.Now()}
	for _, fn := range a.listeners {
		fn(ev)
	}
}

// Focused reports the currently focused view (nil if none).
func (a *Activity) Focused() *View { return a.focused }

// Focus moves input focus to v. Per the paper's observation, the widget
// losing focus sends a lone TYPE_WINDOW_CONTENT_CHANGED; the widget
// gaining focus sends TYPE_VIEW_FOCUSED.
func (a *Activity) Focus(v *View) error {
	if v == nil {
		return errors.New("uikit: focus nil view")
	}
	if _, ok := a.Root.FindByID(v.ID); !ok {
		return fmt.Errorf("uikit: view %q not in activity %q", v.ID, a.App)
	}
	if a.focused == v {
		return nil
	}
	if a.focused != nil {
		a.emit(EventWindowContentChanged, a.focused)
	}
	a.focused = v
	a.emit(EventViewFocused, v)
	return nil
}

// TypeRune appends a character to the focused widget, emitting the typing
// event pair (TYPE_VIEW_TEXT_CHANGED then TYPE_WINDOW_CONTENT_CHANGED) if
// the widget's accessibility is enabled.
func (a *Activity) TypeRune(r rune) error {
	if a.focused == nil {
		return errors.New("uikit: no focused view")
	}
	a.focused.text = append(a.focused.text, r)
	a.emit(EventViewTextChanged, a.focused)
	a.emit(EventWindowContentChanged, a.focused)
	return nil
}

// Backspace removes the focused widget's last character, emitting the same
// event pair as typing.
func (a *Activity) Backspace() error {
	if a.focused == nil {
		return errors.New("uikit: no focused view")
	}
	if len(a.focused.text) > 0 {
		a.focused.text = a.focused.text[:len(a.focused.text)-1]
	}
	a.emit(EventViewTextChanged, a.focused)
	a.emit(EventWindowContentChanged, a.focused)
	return nil
}
