// Package invariant is a runtime monitor for the DESIGN §6 invariants of
// the simulated Android stack. Instead of asserting with panics, the
// monitor registers live checks on the clock, the binder bus, the window
// manager and the toast queue; a breached invariant is recorded as a
// Violation carrying the virtual time and a short event-time trace of what
// the stack was doing, so a faulted run reports WHICH invariant broke and
// completes instead of crashing.
//
// Monitored invariants:
//   - clock monotonicity: fired events never move backwards in time
//   - binder DeliveredAt ≥ SentAt
//   - binder per-stream FIFO: (from,to,method) delivery order preserved
//   - z-order consistency: layers non-decreasing, FIFO within a layer
//   - per-app overlay count never negative
//   - toast queue ≤ 50 per app and at most one toast displayed at a time
//
// The monitor is diagnostic-only: it never mutates the stack and never
// alters event scheduling, so attaching it preserves byte-identical runs.
package invariant

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/binder"
	"repro/internal/simclock"
	"repro/internal/wm"
)

// Invariant rule names, used in Violation.Rule.
const (
	RuleClockMonotonic  = "clock-monotonic"
	RuleDeliveredAfter  = "binder-delivered-after-sent"
	RuleStreamFIFO      = "binder-stream-fifo"
	RuleZOrder          = "wm-z-order"
	RuleOverlayCount    = "wm-overlay-count-negative"
	RuleToastQueueCap   = "toast-queue-cap"
	RuleToastSerialized = "toast-serialized"
	RuleComponentBreach = "component-internal"
)

// MaxToastQueue is the per-app toast token cap the monitor enforces,
// mirroring sysserver.MaxToastTokensPerApp (DESIGN §6).
const MaxToastQueue = 50

// TraceEntry is one recent stack event, kept in a ring for violation
// context.
type TraceEntry struct {
	At    time.Duration
	Event string
}

// Violation is one recorded invariant breach.
type Violation struct {
	// Rule names the invariant (Rule* constants).
	Rule string
	// At is the virtual time of the breach.
	At time.Duration
	// Detail describes the breach.
	Detail string
	// Trace holds the most recent stack events before the breach,
	// oldest first.
	Trace []TraceEntry
}

// String renders the violation with its trace.
func (v Violation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "[%8.3fs] %s: %s", v.At.Seconds(), v.Rule, v.Detail)
	for _, t := range v.Trace {
		fmt.Fprintf(&b, "\n    %10.4fs  %s", t.At.Seconds(), t.Event)
	}
	return b.String()
}

// traceRing bounds the per-violation context; violationCap bounds memory
// when a fault profile breaches an invariant in a tight loop.
const (
	traceRing    = 24
	violationCap = 256
)

// Monitor collects invariant violations for one simulation run. Like the
// clock it belongs to, it is single-threaded.
type Monitor struct {
	clock *simclock.Clock

	ring  []TraceEntry
	start int // index of oldest entry

	violations []Violation
	dropped    int // violations beyond violationCap

	lastFired simclock.Duration
	streams   map[streamKey]time.Duration
}

type streamKey struct {
	from, to binder.ProcessID
	method   string
}

// New builds a Monitor on the run's clock.
func New(clock *simclock.Clock) *Monitor {
	return &Monitor{
		clock:   clock,
		streams: make(map[streamKey]time.Duration),
	}
}

// Note appends an event to the trace ring; attached components call it so
// violations carry context.
func (m *Monitor) Note(event string) {
	e := TraceEntry{At: m.clock.Now(), Event: event}
	if len(m.ring) < traceRing {
		m.ring = append(m.ring, e)
		return
	}
	m.ring[m.start] = e
	m.start = (m.start + 1) % traceRing
}

// trace snapshots the ring, oldest first.
func (m *Monitor) trace() []TraceEntry {
	out := make([]TraceEntry, 0, len(m.ring))
	for i := 0; i < len(m.ring); i++ {
		out = append(out, m.ring[(m.start+i)%len(m.ring)])
	}
	return out
}

// Report records a violation of rule with the current time and trace.
func (m *Monitor) Report(rule, detail string) {
	if len(m.violations) >= violationCap {
		m.dropped++
		return
	}
	m.violations = append(m.violations, Violation{
		Rule:   rule,
		At:     m.clock.Now(),
		Detail: detail,
		Trace:  m.trace(),
	})
}

// Check records a violation of rule unless ok holds.
func (m *Monitor) Check(rule string, ok bool, detail string) {
	if !ok {
		m.Report(rule, detail)
	}
}

// Violations returns the recorded violations in order.
func (m *Monitor) Violations() []Violation {
	out := make([]Violation, len(m.violations))
	copy(out, m.violations)
	return out
}

// Count reports the total number of violations observed, including any
// beyond the recording cap.
func (m *Monitor) Count() int { return len(m.violations) + m.dropped }

// Clean reports whether no invariant was breached.
func (m *Monitor) Clean() bool { return m.Count() == 0 }

// String renders every recorded violation (or a clean bill).
func (m *Monitor) String() string {
	if m.Clean() {
		return "invariants: all checks passed"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "invariants: %d violation(s)\n", m.Count())
	for _, v := range m.violations {
		b.WriteString(v.String())
		b.WriteString("\n")
	}
	if m.dropped > 0 {
		fmt.Fprintf(&b, "(+%d further violations not recorded)\n", m.dropped)
	}
	return b.String()
}

// AttachClock installs the clock's trace hook to feed the event ring and
// check monotonicity. It replaces any previously installed TraceFunc.
func (m *Monitor) AttachClock() {
	m.clock.SetTrace(func(at simclock.Duration, label string) {
		if at < m.lastFired {
			m.Report(RuleClockMonotonic, fmt.Sprintf("event %q fired at %v after %v", label, at, m.lastFired))
		}
		m.lastFired = at
		m.Note(label)
	})
}

// AttachBus observes every delivered transaction, checking causality
// (DeliveredAt ≥ SentAt) and per-stream FIFO.
func (m *Monitor) AttachBus(b *binder.Bus) {
	b.Observe(func(tx binder.Transaction) {
		if tx.DeliveredAt < tx.SentAt {
			m.Report(RuleDeliveredAfter, fmt.Sprintf("%s→%s.%s delivered %v before sent %v", tx.From, tx.To, tx.Method, tx.DeliveredAt, tx.SentAt))
		}
		key := streamKey{from: tx.From, to: tx.To, method: tx.Method}
		if last, ok := m.streams[key]; ok && tx.DeliveredAt < last {
			m.Report(RuleStreamFIFO, fmt.Sprintf("%s→%s.%s delivered %v after a delivery at %v", tx.From, tx.To, tx.Method, tx.DeliveredAt, last))
		} else {
			m.streams[key] = tx.DeliveredAt
		}
	})
}

// AttachWM wires the window manager: its violation handler (overlay
// underflow, forced-removal failures), plus a z-order consistency check on
// every attach/detach.
func (m *Monitor) AttachWM(w *wm.Manager) {
	w.SetViolationHandler(func(rule, detail string) {
		switch rule {
		case "overlay-count-negative":
			m.Report(RuleOverlayCount, detail)
		default:
			m.Report(RuleComponentBreach, rule+": "+detail)
		}
	})
	w.OnOverlayCountChange(m.OverlayCountChanged)
	w.OnWindowEvent(func(ev wm.WindowEvent) {
		m.Note(fmt.Sprintf("wm:%s %s %s#%d", ev.Kind, ev.Window.Owner, ev.Window.Type, ev.Window.ID))
		m.checkZOrder(w.ZOrder())
	})
}

// OverlayCountChanged is the overlay-count listener: per-app counts must
// never go negative. Exported so tests can seed a violation directly.
func (m *Monitor) OverlayCountChanged(app binder.ProcessID, old, new int) {
	if new < 0 {
		m.Report(RuleOverlayCount, fmt.Sprintf("overlay count of %q reached %d", app, new))
	}
}

func (m *Monitor) checkZOrder(order []wm.Window) {
	for i := 1; i < len(order); i++ {
		a, b := order[i-1], order[i]
		la, lb := a.Type.Layer(), b.Type.Layer()
		if la > lb {
			m.Report(RuleZOrder, fmt.Sprintf("window #%d (layer %d) above #%d (layer %d)", a.ID, la, b.ID, lb))
			return
		}
		if la == lb && (a.AddedAt > b.AddedAt || (a.AddedAt == b.AddedAt && a.ID > b.ID)) {
			m.Report(RuleZOrder, fmt.Sprintf("window #%d (added %v) out of FIFO order with #%d (added %v)", a.ID, a.AddedAt, b.ID, b.AddedAt))
			return
		}
	}
}

// ToastQueued checks the per-app toast token cap after an enqueue; the
// notification manager calls it with the post-enqueue depth.
func (m *Monitor) ToastQueued(app binder.ProcessID, depth int) {
	m.Note(fmt.Sprintf("toast:enqueue %s depth=%d", app, depth))
	if depth > MaxToastQueue {
		m.Report(RuleToastQueueCap, fmt.Sprintf("app %q holds %d queued toast tokens (cap %d)", app, depth, MaxToastQueue))
	}
}

// ToastDisplayed checks toast serialization: at most one toast is in its
// display slot at any time. displayed is the number of concurrently
// displayed (pre-fade-out) toasts after a show or hand-off.
func (m *Monitor) ToastDisplayed(displayed int) {
	if displayed > 1 {
		m.Report(RuleToastSerialized, fmt.Sprintf("%d toasts displayed concurrently", displayed))
	}
	if displayed < 0 {
		m.Report(RuleToastSerialized, fmt.Sprintf("displayed-toast count reached %d", displayed))
	}
}
