package invariant

import (
	"strings"
	"testing"
)

func TestAggregateEmpty(t *testing.T) {
	a := NewAggregate()
	if !a.Empty() {
		t.Fatal("fresh aggregate not empty")
	}
	if rows := a.Rows(); len(rows) != 0 {
		t.Fatalf("fresh aggregate has rows: %v", rows)
	}
	// Zero and negative counts must not create a row.
	a.Add(0.5, RuleToastSerialized, 0)
	a.Add(0.5, RuleToastSerialized, -3)
	if !a.Empty() {
		t.Fatal("zero/negative counts created a rule entry")
	}
}

func TestAggregateFirstIntensityIsMinimum(t *testing.T) {
	a := NewAggregate()
	// Out-of-order arrival: the sweep may be replayed from a journal in
	// any order, so the first-break intensity must be the minimum, not
	// the first seen.
	a.Add(0.75, "rule-a", 2)
	a.Add(0.25, "rule-a", 1)
	a.Add(1.0, "rule-a", 4)
	rows := a.Rows()
	if len(rows) != 1 {
		t.Fatalf("rows = %v, want 1 row", rows)
	}
	if rows[0].FirstIntensity != 0.25 {
		t.Errorf("FirstIntensity = %v, want 0.25", rows[0].FirstIntensity)
	}
	if rows[0].Total != 7 {
		t.Errorf("Total = %d, want 7", rows[0].Total)
	}
}

func TestAggregateRowOrdering(t *testing.T) {
	a := NewAggregate()
	a.Add(0.75, "zeta", 1)
	a.Add(0.25, "beta", 1)
	a.Add(0.25, "alpha", 1)
	rows := a.Rows()
	if len(rows) != 3 {
		t.Fatalf("rows = %v, want 3", rows)
	}
	// Most fragile first; ties broken by rule name.
	want := []string{"alpha", "beta", "zeta"}
	for i, r := range rows {
		if r.Rule != want[i] {
			t.Errorf("rows[%d].Rule = %q, want %q", i, r.Rule, want[i])
		}
	}
}

func TestAggregateObserve(t *testing.T) {
	a := NewAggregate()
	a.Observe(0.5, []Violation{
		{Rule: "rule-a"},
		{Rule: "rule-a"},
		{Rule: "rule-b"},
	})
	a.Observe(0.25, nil) // a clean run adds nothing
	rows := a.Rows()
	if len(rows) != 2 {
		t.Fatalf("rows = %v, want 2", rows)
	}
	if rows[0].Rule != "rule-a" || rows[0].Total != 2 || rows[0].FirstIntensity != 0.5 {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[1].Rule != "rule-b" || rows[1].Total != 1 {
		t.Errorf("rows[1] = %+v", rows[1])
	}
}

// TestAggregateMergeOrderIndependent: folding per-shard aggregates from a
// parallel sweep must yield the same table regardless of which shard
// finishes first.
func TestAggregateMergeOrderIndependent(t *testing.T) {
	s1 := NewAggregate()
	s1.Add(0.75, "rule-a", 2)
	s1.Add(0.5, "rule-b", 1)
	s2 := NewAggregate()
	s2.Add(0.25, "rule-a", 3)
	s3 := NewAggregate()
	s3.Add(1.0, "rule-b", 4)

	fold := func(order ...*Aggregate) []RuleBreak {
		a := NewAggregate()
		for _, s := range order {
			a.Merge(s)
		}
		return a.Rows()
	}
	want := fold(s1, s2, s3)
	if len(want) != 2 {
		t.Fatalf("rows = %+v, want 2", want)
	}
	if want[0].Rule != "rule-a" || want[0].FirstIntensity != 0.25 || want[0].Total != 5 {
		t.Errorf("rows[0] = %+v", want[0])
	}
	if want[1].Rule != "rule-b" || want[1].FirstIntensity != 0.5 || want[1].Total != 5 {
		t.Errorf("rows[1] = %+v", want[1])
	}
	for _, order := range [][]*Aggregate{{s3, s2, s1}, {s2, s3, s1}, {s1, s3, s2}} {
		got := fold(order...)
		if len(got) != len(want) {
			t.Fatalf("merge order changed row count: %+v vs %+v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Errorf("merge order changed rows[%d]: %+v vs %+v", i, got[i], want[i])
			}
		}
	}
	// Merging must not disturb the source shards or choke on nil.
	if rows := s2.Rows(); len(rows) != 1 || rows[0].Total != 3 {
		t.Errorf("source shard mutated by merge: %+v", rows)
	}
	a := NewAggregate()
	a.Merge(nil)
	if !a.Empty() {
		t.Error("nil merge created rows")
	}
}

func TestRenderRuleBreaks(t *testing.T) {
	if got := RenderRuleBreaks(nil); !strings.Contains(got, "no rule broke") {
		t.Errorf("empty render = %q", got)
	}
	got := RenderRuleBreaks([]RuleBreak{
		{Rule: "wm-toast-ownership", FirstIntensity: 0.25, Total: 12},
	})
	for _, want := range []string{"wm-toast-ownership", "0.25", "12", "first@"} {
		if !strings.Contains(got, want) {
			t.Errorf("render missing %q:\n%s", want, got)
		}
	}
}
