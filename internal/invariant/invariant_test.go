package invariant_test

import (
	"strings"
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/invariant"
	"repro/internal/simclock"
	"repro/internal/sysserver"
)

// TestOverlayCountViolationDirect: seeding a breach through the exported
// listener records a violation naming the rule, the app and the bad count.
func TestOverlayCountViolationDirect(t *testing.T) {
	clock := simclock.New()
	m := invariant.New(clock)
	m.Note("wm:add com.evil.app OVERLAY#1")
	m.OverlayCountChanged("com.evil.app", 0, -1)
	if m.Clean() {
		t.Fatal("negative overlay count not reported")
	}
	vs := m.Violations()
	if len(vs) != 1 || vs[0].Rule != invariant.RuleOverlayCount {
		t.Fatalf("violations = %+v, want one %s", vs, invariant.RuleOverlayCount)
	}
	if !strings.Contains(vs[0].Detail, "com.evil.app") || !strings.Contains(vs[0].Detail, "-1") {
		t.Fatalf("detail %q missing app or count", vs[0].Detail)
	}
	if len(vs[0].Trace) == 0 {
		t.Fatal("violation carries no trace context")
	}
	// A positive transition is fine.
	m.OverlayCountChanged("com.evil.app", -1, 0)
	if m.Count() != 1 {
		t.Fatalf("recovery reported as a violation: count %d", m.Count())
	}
}

// TestToastSerializationViolationDirect: two concurrently displayed toasts
// breach the Android 8 one-toast-at-a-time rule.
func TestToastSerializationViolationDirect(t *testing.T) {
	m := invariant.New(simclock.New())
	m.ToastDisplayed(1)
	if !m.Clean() {
		t.Fatalf("single displayed toast flagged: %s", m.String())
	}
	m.ToastDisplayed(2)
	vs := m.Violations()
	if len(vs) != 1 || vs[0].Rule != invariant.RuleToastSerialized {
		t.Fatalf("violations = %+v, want one %s", vs, invariant.RuleToastSerialized)
	}
}

// TestToastQueueCapViolationSeeded drives the REAL stack into a breach: the
// cap override lets one app hold more than the platform's 50 queued toast
// tokens, and the monitor attached by WithMonitor must catch each enqueue
// past the cap with a trace of the surrounding toast traffic.
func TestToastQueueCapViolationSeeded(t *testing.T) {
	st, err := sysserver.Assemble(device.Default(), 1, sysserver.WithMonitor())
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	if st.Monitor == nil {
		t.Fatal("WithMonitor left Stack.Monitor nil")
	}
	// Loosen the enforcement point so the queue can actually exceed the
	// invariant's cap of 50.
	st.Server.SetToastCapOverride(60)
	bounds := geom.RectWH(100, 100, 300, 80)
	const flood = 60
	for i := 0; i < flood; i++ {
		if _, err := st.Bus.Call("com.evil.app", binder.SystemServer, sysserver.MethodEnqueueToast,
			sysserver.EnqueueToastRequest{Duration: sysserver.ToastShort, Bounds: bounds, Content: "flood"}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := st.Clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.Monitor.Clean() {
		t.Fatal("60 queued toast tokens for one app breached no invariant")
	}
	capViolations := 0
	for _, v := range st.Monitor.Violations() {
		if v.Rule != invariant.RuleToastQueueCap {
			t.Fatalf("unexpected violation %s: %s", v.Rule, v.Detail)
		}
		if !strings.Contains(v.Detail, "com.evil.app") {
			t.Fatalf("violation does not name the offending app: %s", v.Detail)
		}
		if len(v.Trace) == 0 {
			t.Fatalf("violation carries no trace: %s", v)
		}
		capViolations++
	}
	// Enqueues 52..60 all land while the first toast is still being shown
	// (delivery latency is milliseconds, display is seconds), so depths
	// 51..59 after the head pop each breach the cap.
	if capViolations < 5 {
		t.Fatalf("only %d toast-queue-cap violations for a 60-token flood", capViolations)
	}
	if !strings.Contains(st.Monitor.String(), invariant.RuleToastQueueCap) {
		t.Fatalf("rendered report missing the rule name:\n%s", st.Monitor.String())
	}
}

// TestMonitorCleanOnHealthyRun is the other direction: ordinary toast
// traffic inside the cap breaches nothing.
func TestMonitorCleanOnHealthyRun(t *testing.T) {
	st, err := sysserver.Assemble(device.Default(), 2, sysserver.WithMonitor())
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bounds := geom.RectWH(100, 100, 300, 80)
	for i := 0; i < 10; i++ {
		if _, err := st.Bus.Call("com.ok.app", binder.SystemServer, sysserver.MethodEnqueueToast,
			sysserver.EnqueueToastRequest{Duration: sysserver.ToastShort, Bounds: bounds, Content: "ok"}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	if err := st.Clock.RunFor(40 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !st.Monitor.Clean() {
		t.Fatalf("healthy run breached invariants:\n%s", st.Monitor.String())
	}
	if got := st.Monitor.String(); got != "invariants: all checks passed" {
		t.Fatalf("clean render = %q", got)
	}
}

// TestMonitorCleanUnderChaosFaults: the fault plane degrades delivery and
// timing but must never break platform invariants — drops, duplicates,
// delays and toast pressure all stay inside the stack's own rules. A full
// chaos-faulted run under the monitor completes with a clean bill.
func TestMonitorCleanUnderChaosFaults(t *testing.T) {
	prof := faults.Chaos()
	st, err := sysserver.Assemble(device.Default(), 3,
		sysserver.WithMonitor(), sysserver.WithFaults(faults.NewPlane(prof, 3)))
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	bounds := geom.RectWH(100, 100, 300, 80)
	for i := 0; i < 30; i++ {
		if _, err := st.Bus.Call("com.app", binder.SystemServer, sysserver.MethodEnqueueToast,
			sysserver.EnqueueToastRequest{Duration: sysserver.ToastShort, Bounds: bounds, Content: "x"}); err != nil {
			t.Fatalf("enqueue %d: %v", i, err)
		}
	}
	// Bounded run: the toast-pressure pump keeps the event queue non-empty.
	if err := st.Clock.RunFor(30 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.Faults == nil || st.Faults.Stats().Zero() {
		t.Fatal("chaos profile injected nothing — the run exercised no faults")
	}
	if !st.Monitor.Clean() {
		t.Fatalf("fault plane broke platform invariants:\n%s", st.Monitor.String())
	}
}
