package invariant

import (
	"fmt"
	"sort"
	"strings"
)

// Aggregate folds per-run violation statistics across a parameter sweep,
// answering the quantitative robustness question the per-run Monitor
// cannot: at which fault intensity does each invariant FIRST break, and
// how often does it break over the whole sweep. Runners feed it one call
// per swept run (Observe with the run's violations, or Add with pre-binned
// per-rule counts when replaying journaled results); intensities may
// arrive in any order.
type Aggregate struct {
	rules map[string]*ruleTotals
}

type ruleTotals struct {
	total int
	first float64
}

// NewAggregate returns an empty aggregate.
func NewAggregate() *Aggregate {
	return &Aggregate{rules: make(map[string]*ruleTotals)}
}

// Add folds count violations of rule observed at the given sweep
// intensity. Zero or negative counts are ignored.
func (a *Aggregate) Add(intensity float64, rule string, count int) {
	if count <= 0 {
		return
	}
	rt, ok := a.rules[rule]
	if !ok {
		a.rules[rule] = &ruleTotals{total: count, first: intensity}
		return
	}
	rt.total += count
	if intensity < rt.first {
		rt.first = intensity
	}
}

// Observe folds one monitored run's violations at the given intensity.
func (a *Aggregate) Observe(intensity float64, vs []Violation) {
	for _, v := range vs {
		a.Add(intensity, v.Rule, 1)
	}
}

// Merge folds other's sweep statistics into a. Totals add and each rule's
// first-breaking intensity takes the minimum, so folding per-shard
// aggregates from a parallel sweep yields the same Rows in any merge
// order. A nil other is a no-op.
func (a *Aggregate) Merge(other *Aggregate) {
	if other == nil {
		return
	}
	for rule, rt := range other.rules {
		a.Add(rt.first, rule, rt.total)
	}
}

// Empty reports whether no rule broke anywhere in the sweep.
func (a *Aggregate) Empty() bool { return len(a.rules) == 0 }

// RuleBreak is one rule's sweep-wide breakage summary.
type RuleBreak struct {
	// Rule names the invariant (Rule* constants).
	Rule string
	// FirstIntensity is the lowest sweep intensity at which the rule
	// broke at least once.
	FirstIntensity float64
	// Total counts the rule's violations across the whole sweep.
	Total int
}

// Rows returns one RuleBreak per broken rule, most fragile first (lowest
// first-breaking intensity, ties by rule name) — the "which invariant
// gives out first" table.
func (a *Aggregate) Rows() []RuleBreak {
	out := make([]RuleBreak, 0, len(a.rules))
	for rule, rt := range a.rules {
		out = append(out, RuleBreak{Rule: rule, FirstIntensity: rt.first, Total: rt.total})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FirstIntensity != out[j].FirstIntensity {
			return out[i].FirstIntensity < out[j].FirstIntensity
		}
		return out[i].Rule < out[j].Rule
	})
	return out
}

// RenderRuleBreaks formats the sweep-wide breakage table, one row per
// broken rule; an empty slice renders the clean-sweep line.
func RenderRuleBreaks(rows []RuleBreak) string {
	if len(rows) == 0 {
		return "  invariants: no rule broke at any intensity\n"
	}
	var sb strings.Builder
	sb.WriteString("  invariant first-break across the sweep:\n")
	sb.WriteString("    rule                           first@  total\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "    %-30s  %5.2f  %5d\n", r.Rule, r.FirstIntensity, r.Total)
	}
	return sb.String()
}
