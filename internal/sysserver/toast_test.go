package sysserver

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
)

func toastBounds() geom.Rect { return geom.RectWH(40, 1400, 1000, 400) }

func showToast(t *testing.T, st *Stack, dur time.Duration, content string) {
	t.Helper()
	if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
		Duration: dur,
		Bounds:   toastBounds(),
		Content:  content,
	}); err != nil {
		t.Fatalf("enqueueToast: %v", err)
	}
}

func TestToastShowsAndExpires(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, ToastShort, "hello")
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	r := recs[0]
	if r.App != evilApp || r.Content != "hello" {
		t.Fatalf("record = %+v", r)
	}
	if r.GoneAt == 0 {
		t.Fatal("toast never disappeared")
	}
	// On screen ≈ duration + fade-out (500 ms).
	onScreen := r.GoneAt - r.ShownAt
	if onScreen < ToastShort || onScreen > ToastShort+time.Second {
		t.Fatalf("on-screen time = %v, want ≈2.5s", onScreen)
	}
	if st.WM.WindowCount() != 0 {
		t.Fatalf("windows left attached: %d", st.WM.WindowCount())
	}
}

func TestToastDurationNormalized(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, 30*time.Second, "greedy") // not a legal constant
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 1 {
		t.Fatalf("records = %d, want 1", len(recs))
	}
	if onScreen := recs[0].GoneAt - recs[0].ShownAt; onScreen > 3*time.Second {
		t.Fatalf("on-screen time = %v; duration not normalized to LENGTH_SHORT", onScreen)
	}
}

func TestToastEmptyBoundsRejected(t *testing.T) {
	st := assemble(t, device.Default())
	if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
		Duration: ToastShort,
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.Server.Stats().ToastsRejected; got != 1 {
		t.Fatalf("ToastsRejected = %d, want 1", got)
	}
}

// TestToastsSerialized: two toasts enqueued together must display one
// after the other, not concurrently (the Android 8 anti-overlap defense).
func TestToastsSerialized(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, ToastShort, "one")
	showToast(t, st, ToastShort, "two")
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	if recs[0].Content != "one" || recs[1].Content != "two" {
		t.Fatalf("display order = %q,%q; want FIFO", recs[0].Content, recs[1].Content)
	}
	// The second toast starts only after the first's on-screen phase
	// (but may overlap its fade-out).
	if recs[1].ShownAt < recs[0].ShownAt+ToastShort {
		t.Fatalf("second toast at %v overlapped first's on-screen phase (first shown %v)",
			recs[1].ShownAt, recs[0].ShownAt)
	}
}

// TestToastHandoffOverlapsFade: the successor toast must attach while the
// predecessor is still fading out, so the combined on-screen alpha never
// collapses — the property the draw-and-destroy toast attack needs.
func TestToastHandoffOverlapsFade(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, ToastShort, "a")
	showToast(t, st, ToastShort, "b")
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	firstFadeEnd := recs[0].GoneAt
	if recs[1].ShownAt >= firstFadeEnd {
		t.Fatalf("no overlap: second shown at %v, first gone at %v", recs[1].ShownAt, firstFadeEnd)
	}
	// The gap between on-screen end of A and attach of B is the toast
	// creation time (~15 ms), far less than the 500 ms fade.
	gap := recs[1].ShownAt - (recs[0].ShownAt + ToastShort)
	if gap <= 0 || gap > 100*time.Millisecond {
		t.Fatalf("handoff gap = %v, want small positive (toast creation time)", gap)
	}
}

func TestToastPerAppCap(t *testing.T) {
	st := assemble(t, device.Default())
	for i := 0; i < 60; i++ {
		showToast(t, st, ToastShort, "spam")
	}
	if err := st.Clock.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	s := st.Server.Stats()
	if s.ToastsRejected == 0 {
		t.Fatal("no toasts rejected despite exceeding the 50-token cap")
	}
	if s.ToastsEnqueued > MaxToastTokensPerApp+1 {
		// +1: the first token may already have left the queue for display
		// before the last enqueue arrives.
		t.Fatalf("ToastsEnqueued = %d, want ≤ %d", s.ToastsEnqueued, MaxToastTokensPerApp+1)
	}
	if got := st.Server.QueuedToasts(evilApp); got > MaxToastTokensPerApp {
		t.Fatalf("queued = %d, exceeds cap", got)
	}
}

func TestToastCapIsPerApp(t *testing.T) {
	st := assemble(t, device.Default())
	for i := 0; i < MaxToastTokensPerApp; i++ {
		showToast(t, st, ToastShort, "evil")
	}
	if _, err := st.Bus.Call(victimApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
		Duration: ToastShort,
		Bounds:   toastBounds(),
		Content:  "victim",
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := st.Clock.RunUntil(100 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if got := st.Server.Stats().ToastsRejected; got != 0 {
		t.Fatalf("ToastsRejected = %d; other app's token must not count against the cap", got)
	}
}

// TestToastAlphaNeverCollapsesDuringAttackChain: enqueue a chain of toasts
// the way the attack does and sample the app's max toast alpha at frame
// granularity; after the first fade-in it must stay high.
func TestToastAlphaNeverCollapsesDuringAttackChain(t *testing.T) {
	st := assemble(t, device.Default())
	// Keep the queue fed: one toast every 3 s with 3.5 s duration.
	for i := 0; i < 5; i++ {
		at := time.Duration(i) * 3 * time.Second
		st.Clock.MustAfter(at, "enqueue", func() { showToast(t, st, ToastLong, "kbd") })
	}
	minAlpha := 2.0
	var sample func()
	sample = func() {
		if st.Clock.Now() > 14*time.Second {
			return
		}
		if a := st.WM.TopToastAlpha(evilApp); a < minAlpha {
			minAlpha = a
		}
		st.Clock.MustAfter(10*time.Millisecond, "sample", sample)
	}
	// Start sampling after the first fade-in completes (~600 ms).
	st.Clock.MustAfter(700*time.Millisecond, "sample", sample)
	if err := st.Clock.RunFor(20 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	// Across 4 toast hand-offs the combined alpha dips only to the
	// crossover of the two 500 ms fades (~0.7) — and both toasts render
	// the same content over an identically laid-out real keyboard, so
	// the dip is imperceptible. What would be perceptible, and what the
	// Android defense aims for, is a collapse to ≈0 between toasts.
	if minAlpha < 0.5 {
		t.Fatalf("toast alpha collapsed to %.3f during hand-offs; attack would flicker", minAlpha)
	}
}

// TestToastGapWithEmptyQueueIsVisible: without a queued successor the
// toast disappears completely — the flicker the attack avoids by keeping
// the queue fed.
func TestToastGapWithEmptyQueueIsVisible(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, ToastShort, "one")
	// The successor arrives 1.5 s after the first is fully gone.
	st.Clock.MustAfter(4*time.Second, "late", func() { showToast(t, st, ToastShort, "two") })
	sawZero := false
	var sample func()
	sample = func() {
		if st.Clock.Now() > 4*time.Second {
			return
		}
		if st.Clock.Now() > 3*time.Second && st.WM.TopToastAlpha(evilApp) == 0 {
			sawZero = true
		}
		st.Clock.MustAfter(10*time.Millisecond, "sample", sample)
	}
	st.Clock.MustAfter(time.Second, "sample", sample)
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !sawZero {
		t.Fatal("toast never fully disappeared despite an empty queue")
	}
}

// TestCancelToastRetiresEarlyAndShowsNext: cancel retires the current
// toast immediately and the next queued token (of another app) displays.
func TestCancelToastRetiresEarlyAndShowsNext(t *testing.T) {
	st := assemble(t, device.Default())
	showToast(t, st, ToastLong, "kbd-lower")
	if _, err := st.Bus.Call(victimApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
		Duration: ToastShort, Bounds: toastBounds(), Content: "other",
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	// Cancel at 500ms, long before the 3.5s duration.
	st.Clock.MustAfter(500*time.Millisecond, "cancel", func() {
		if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodCancelToast, CancelToastRequest{}); err != nil {
			t.Errorf("cancel: %v", err)
		}
	})
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// The canceled toast left early (shown ~15ms, canceled ~500ms, fade
	// 500ms ⇒ gone ≈1s, far less than 3.5s+fade).
	if onScreen := recs[0].GoneAt - recs[0].ShownAt; onScreen > 2*time.Second {
		t.Fatalf("canceled toast stayed %v", onScreen)
	}
	// The successor shows shortly after the cancel.
	if recs[1].ShownAt > 700*time.Millisecond {
		t.Fatalf("successor shown at %v, want shortly after cancel", recs[1].ShownAt)
	}
}

// TestCancelToastDropsQueuedTokens: queued tokens of the canceling app are
// discarded.
func TestCancelToastDropsQueuedTokens(t *testing.T) {
	st := assemble(t, device.Default())
	for i := 0; i < 5; i++ {
		showToast(t, st, ToastShort, "spam")
	}
	st.Clock.MustAfter(300*time.Millisecond, "cancel", func() {
		if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodCancelToast, CancelToastRequest{}); err != nil {
			t.Errorf("cancel: %v", err)
		}
	})
	if err := st.Clock.RunFor(30 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	// Only the first toast ever displayed.
	if got := len(st.Server.Toasts()); got != 1 {
		t.Fatalf("displayed %d toasts, want 1 (queue dropped)", got)
	}
	if got := st.Server.QueuedToasts(evilApp); got != 0 {
		t.Fatalf("queued = %d, want 0", got)
	}
}

// TestToastGapDefenseForcesFlicker: with the Section VII-B toast-gap
// defense on, a fed toast chain must go fully invisible between toasts.
func TestToastGapDefenseForcesFlicker(t *testing.T) {
	st := assemble(t, device.Default())
	st.Server.EnableToastGapDefense(400 * time.Millisecond)
	if got := st.Server.ToastGapDefense(); got != 400*time.Millisecond {
		t.Fatalf("ToastGapDefense = %v", got)
	}
	// Attack-style chain: keep the queue fed.
	for i := 0; i < 4; i++ {
		at := time.Duration(i) * 3 * time.Second
		st.Clock.MustAfter(at, "enqueue", func() { showToast(t, st, ToastLong, "kbd") })
	}
	minAlpha := 2.0
	var sample func()
	sample = func() {
		if st.Clock.Now() > 12*time.Second {
			return
		}
		if a := st.WM.TopToastAlpha(evilApp); a < minAlpha {
			minAlpha = a
		}
		st.Clock.MustAfter(10*time.Millisecond, "sample", sample)
	}
	st.Clock.MustAfter(700*time.Millisecond, "sample", sample)
	if err := st.Clock.RunFor(30 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if minAlpha != 0 {
		t.Fatalf("min alpha = %.2f, want 0 (the defense must force a visible gap)", minAlpha)
	}
	// All four toasts still display eventually (no starvation).
	if got := len(st.Server.Toasts()); got != 4 {
		t.Fatalf("displayed %d toasts, want 4", got)
	}
}

// TestToastGapDefenseDoesNotDelayOtherApps: the gap is per app; another
// app's toast shows immediately after the slot frees.
func TestToastGapDefenseDoesNotDelayOtherApps(t *testing.T) {
	st := assemble(t, device.Default())
	st.Server.EnableToastGapDefense(2 * time.Second)
	showToast(t, st, ToastShort, "evil-1")
	if _, err := st.Bus.Call(victimApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
		Duration: ToastShort, Bounds: toastBounds(), Content: "other",
	}); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	recs := st.Server.Toasts()
	if len(recs) != 2 {
		t.Fatalf("records = %d, want 2", len(recs))
	}
	// The other app's toast starts right after evil-1's on-screen phase,
	// unaffected by evil's gap.
	if recs[1].App != victimApp {
		t.Fatalf("second toast from %s", recs[1].App)
	}
	if recs[1].ShownAt > recs[0].ShownAt+ToastShort+200*time.Millisecond {
		t.Fatalf("other app's toast delayed to %v", recs[1].ShownAt)
	}
	if st.Server.ToastGapDefense() != 2*time.Second {
		t.Fatal("defense setting lost")
	}
}

// TestToastGapDefenseNegativeClamped: negative gaps disable the defense.
func TestToastGapDefenseNegativeClamped(t *testing.T) {
	st := assemble(t, device.Default())
	st.Server.EnableToastGapDefense(-time.Second)
	if got := st.Server.ToastGapDefense(); got != 0 {
		t.Fatalf("ToastGapDefense = %v, want 0", got)
	}
}

func TestToastSlotBusy(t *testing.T) {
	st := assemble(t, device.Default())
	if st.Server.ToastSlotBusy() {
		t.Fatal("slot busy before any toast")
	}
	showToast(t, st, ToastShort, "x")
	if err := st.Clock.RunUntil(time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if !st.Server.ToastSlotBusy() {
		t.Fatal("slot not busy while toast on screen")
	}
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.Server.ToastSlotBusy() {
		t.Fatal("slot busy after toast expired")
	}
}
