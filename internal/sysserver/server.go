// Package sysserver simulates the system_server process: the Binder-facing
// Window Manager Service and Notification Manager Service. It dispatches
// app calls (addView, removeView, Toast.show), applies the device's
// processing latencies (Tas, toast creation), maintains the per-app
// foreground-overlay alert protocol with System UI — including Android
// 10/11's ANA delay before the alert is sent — and hosts the Section VII-B
// enhanced-notification defense (delay the alert-removal notice by t,
// cancel the removal if the same app re-adds an overlay).
package sysserver

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/anim"
	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/invariant"
	"repro/internal/simclock"
	"repro/internal/simrand"
	"repro/internal/sysui"
	"repro/internal/wm"
)

// Binder methods served by system_server.
const (
	// MethodAddView adds a window (payload AddViewRequest).
	MethodAddView = "addView"
	// MethodRemoveView removes a window (payload RemoveViewRequest).
	MethodRemoveView = "removeView"
	// MethodEnqueueToast enqueues a toast (payload EnqueueToastRequest).
	MethodEnqueueToast = "enqueueToast"
	// MethodCancelToast cancels the caller's current and queued toasts
	// (payload CancelToastRequest).
	MethodCancelToast = "cancelToast"
)

// AddViewRequest asks the Window Manager Service to attach a window. The
// caller names the view with its own Handle and uses the same handle to
// remove it; the owner is always taken from the Binder caller identity, so
// apps cannot spoof each other.
type AddViewRequest struct {
	// Handle is the caller-chosen view identifier.
	Handle uint64
	// Type is the window type.
	Type wm.WindowType
	// Bounds is the window rectangle.
	Bounds geom.Rect
	// Flags are the window flags.
	Flags wm.Flags
	// OnTouch receives the window's touch events in the caller app.
	OnTouch wm.TouchHandler
}

// RemoveViewRequest asks the Window Manager Service to detach a window by
// the caller's handle.
type RemoveViewRequest struct {
	// Handle is the handle given at add time.
	Handle uint64
}

// Result codes reported through Stats (Binder calls here are oneway, so
// failures surface as counters the way they surface as dropped frames or
// log lines on a real device).
type Stats struct {
	// AddsCompleted counts windows successfully attached.
	AddsCompleted uint64
	// AddsRejected counts adds refused (permission, protection, type).
	AddsRejected uint64
	// RemovesCompleted counts windows detached.
	RemovesCompleted uint64
	// RemovesUnknown counts removes for unknown handles.
	RemovesUnknown uint64
	// ToastsEnqueued counts accepted toast tokens.
	ToastsEnqueued uint64
	// ToastsRejected counts tokens refused by the 50-per-app cap.
	ToastsRejected uint64
	// ToastsShown counts toast windows actually displayed.
	ToastsShown uint64
}

// Config configures the system server.
type Config struct {
	// Clock drives processing delays; required.
	Clock *simclock.Clock
	// Bus carries Binder traffic; required.
	Bus *binder.Bus
	// RNG samples processing latencies; required.
	RNG *simrand.Source
	// Profile supplies the device's timing model; required (use
	// device.Default() for a generic phone).
	Profile device.Profile
	// WM is the window-management state machine; required.
	WM *wm.Manager
}

// Server is the system_server process model.
type Server struct {
	clock   *simclock.Clock
	bus     *binder.Bus
	rng     *simrand.Source
	profile device.Profile
	wm      *wm.Manager

	// handles maps (app, handle) → attached windows in attach order.
	// addView/removeView pair FIFO per handle: on a real device addView
	// blocks until the window is attached, so a removeView always
	// targets the oldest outstanding attachment of that view object.
	handles map[viewKey][]wm.WindowID
	// pendingRemoves counts removeViews that raced ahead of their
	// still-processing addView (possible in the simulation when a
	// scheduler spike delays the attach); the attach completes and
	// immediately detaches.
	pendingRemoves map[viewKey]int

	// alertPosted tracks whether the overlay alert for an app has been
	// sent to System UI; pendingPost holds the ANA-delay timer.
	alertPosted map[binder.ProcessID]bool
	pendingPost map[binder.ProcessID]*simclock.Event

	// Enhanced-notification defense (Section VII-B): when defenseDelay
	// is positive, alert removal is postponed by that long and canceled
	// if the app re-adds an overlay meanwhile.
	defenseDelay   time.Duration
	pendingRemoval map[binder.ProcessID]*simclock.Event

	// anaDelay is the delay before the alert is sent (normally the
	// version's ANA delay; ablations override it).
	anaDelay time.Duration
	// toastFade is the toast enter/exit animation duration (normally
	// 500 ms; ablations shorten it).
	toastFade time.Duration
	// toastGapDefense, when positive, is the Section VII-B toast
	// scheduling defense: the Notification Manager waits this long after
	// a toast's fade-out *completes* before showing the same app's next
	// toast, forcing a visible flicker between successive toasts.
	toastGapDefense time.Duration

	// frameFault, when non-nil, perturbs toast fade frame scheduling
	// (supplied by the fault plane via WithFaults).
	frameFault anim.FaultFunc
	// monitor, when non-nil, receives invariant probes and internal
	// breaches; otherwise breaches land in violations.
	monitor    *invariant.Monitor
	violations []string
	// toastCapOverride, when positive, replaces MaxToastTokensPerApp
	// (fault ablation hook; raising it past the platform cap lets tests
	// drive the queue into invariant-violating territory).
	toastCapOverride int

	toasts *toastService
	stats  Stats
}

type viewKey struct {
	app    binder.ProcessID
	handle uint64
}

// New builds the system server and registers its Binder endpoint.
func New(cfg Config) (*Server, error) {
	if cfg.Clock == nil {
		return nil, errors.New("sysserver: nil clock")
	}
	if cfg.Bus == nil {
		return nil, errors.New("sysserver: nil bus")
	}
	if cfg.RNG == nil {
		return nil, errors.New("sysserver: nil rng")
	}
	if cfg.WM == nil {
		return nil, errors.New("sysserver: nil window manager")
	}
	s := &Server{
		clock:          cfg.Clock,
		bus:            cfg.Bus,
		rng:            cfg.RNG,
		profile:        cfg.Profile,
		wm:             cfg.WM,
		handles:        make(map[viewKey][]wm.WindowID),
		pendingRemoves: make(map[viewKey]int),
		alertPosted:    make(map[binder.ProcessID]bool),
		pendingPost:    make(map[binder.ProcessID]*simclock.Event),
		pendingRemoval: make(map[binder.ProcessID]*simclock.Event),
		anaDelay:       cfg.Profile.Version.ANADelay(),
		toastFade:      anim.ToastFadeDuration,
	}
	s.toasts = newToastService(s)
	if err := cfg.Bus.Register(binder.SystemServer, s.handle); err != nil {
		return nil, fmt.Errorf("sysserver: register endpoint: %w", err)
	}
	cfg.WM.OnOverlayCountChange(s.onOverlayCountChange)
	return s, nil
}

// Stats returns the server's counters.
func (s *Server) Stats() Stats { return s.stats }

// SetMonitor routes the server's invariant probes and internal breaches to
// the runtime monitor.
func (s *Server) SetMonitor(m *invariant.Monitor) { s.monitor = m }

// SetFrameFault installs a per-frame fault hook for the toast fade
// animations (the fault plane supplies it).
func (s *Server) SetFrameFault(fn anim.FaultFunc) { s.frameFault = fn }

// SetToastCapOverride overrides the 50-token per-app toast cap; n <= 0
// restores the platform default. The invariant monitor still checks
// against the platform cap, so raising the override seeds a detectable
// DESIGN §6 violation.
func (s *Server) SetToastCapOverride(n int) { s.toastCapOverride = n }

func (s *Server) toastCap() int {
	if s.toastCapOverride > 0 {
		return s.toastCapOverride
	}
	return MaxToastTokensPerApp
}

// Violations returns internal breaches recorded while no monitor was
// attached.
func (s *Server) Violations() []string {
	out := make([]string, len(s.violations))
	copy(out, s.violations)
	return out
}

// violation reports an internal-consistency breach without crashing the
// run: to the monitor when attached, else to the local record.
func (s *Server) violation(rule, detail string) {
	if s.monitor != nil {
		s.monitor.Report(rule, detail)
		return
	}
	s.violations = append(s.violations, rule+": "+detail)
}

// EnableEnhancedNotificationDefense turns on the Section VII-B defense with
// removal delay t (the paper validates t = 690 ms on a Pixel 2). A
// non-positive t disables the defense.
func (s *Server) EnableEnhancedNotificationDefense(t time.Duration) {
	if t < 0 {
		t = 0
	}
	s.defenseDelay = t
}

// DefenseDelay reports the enhanced-notification defense delay (0 = off).
func (s *Server) DefenseDelay() time.Duration { return s.defenseDelay }

// SetANADelay overrides the delay before the overlay alert is sent
// (ablation hook; the profile's Android version sets the default).
func (s *Server) SetANADelay(d time.Duration) {
	if d < 0 {
		d = 0
	}
	s.anaDelay = d
}

// ANADelay reports the configured alert-send delay.
func (s *Server) ANADelay() time.Duration { return s.anaDelay }

// SetToastFade overrides the toast enter/exit animation duration (ablation
// hook; stock Android uses 500 ms). Durations below one frame effectively
// disable the fade.
func (s *Server) SetToastFade(d time.Duration) {
	if d < time.Millisecond {
		d = time.Millisecond
	}
	s.toastFade = d
}

// ToastFade reports the configured toast fade duration.
func (s *Server) ToastFade() time.Duration { return s.toastFade }

// EnableToastGapDefense turns on the scheduling defense the paper sketches
// against the draw-and-destroy toast attack: successive toasts of the same
// app are separated by a mandatory gap after the previous fade-out
// completes, so a toast chain visibly flickers. Non-positive gap disables.
func (s *Server) EnableToastGapDefense(gap time.Duration) {
	if gap < 0 {
		gap = 0
	}
	s.toastGapDefense = gap
}

// ToastGapDefense reports the configured inter-toast gap (0 = off).
func (s *Server) ToastGapDefense() time.Duration { return s.toastGapDefense }

func (s *Server) handle(tx binder.Transaction) {
	switch tx.Method {
	case MethodAddView:
		if req, ok := tx.Payload.(AddViewRequest); ok {
			s.addView(tx.From, req)
		}
	case MethodRemoveView:
		if req, ok := tx.Payload.(RemoveViewRequest); ok {
			s.removeView(tx.From, req)
		}
	case MethodEnqueueToast:
		if req, ok := tx.Payload.(EnqueueToastRequest); ok {
			s.toasts.enqueue(tx.From, req)
		}
	case MethodCancelToast:
		if _, ok := tx.Payload.(CancelToastRequest); ok {
			s.toasts.cancel(tx.From)
		}
	}
}

// addView processes an addView transaction: after the Tas processing
// delay, the window attaches (triggering the overlay-count listener, which
// drives the alert protocol).
func (s *Server) addView(from binder.ProcessID, req AddViewRequest) {
	tas := s.profile.Tas.Sample(s.rng)
	s.clock.MustAfter(tas, "sysserver/attachWindow", func() {
		key := viewKey{app: from, handle: req.Handle}
		id, err := s.wm.AddWindow(wm.Spec{
			Owner:   from,
			Type:    req.Type,
			Bounds:  req.Bounds,
			Flags:   req.Flags,
			OnTouch: req.OnTouch,
		})
		if err != nil {
			s.stats.AddsRejected++
			return
		}
		s.stats.AddsCompleted++
		if s.pendingRemoves[key] > 0 {
			// The paired remove raced ahead; honor it now.
			s.pendingRemoves[key]--
			if s.pendingRemoves[key] == 0 {
				delete(s.pendingRemoves, key)
			}
			if err := s.wm.RemoveWindow(id); err == nil {
				s.stats.RemovesCompleted++
			}
			return
		}
		s.handles[key] = append(s.handles[key], id)
	})
}

// removeView processes a removeView transaction. Removal is instantaneous
// on arrival (the paper: "System Server removes O1 instantly") and targets
// the oldest outstanding attachment of the handle.
func (s *Server) removeView(from binder.ProcessID, req RemoveViewRequest) {
	key := viewKey{app: from, handle: req.Handle}
	ids := s.handles[key]
	if len(ids) == 0 {
		// A remove that outran its (spike-delayed) add: queue it against
		// the attach. A truly unknown handle also lands here, which is
		// harmless — no attach will ever consume it.
		s.pendingRemoves[key]++
		s.stats.RemovesUnknown++
		return
	}
	id := ids[0]
	if len(ids) == 1 {
		delete(s.handles, key)
	} else {
		s.handles[key] = ids[1:]
	}
	if err := s.wm.RemoveWindow(id); err != nil {
		s.stats.RemovesUnknown++
		return
	}
	s.stats.RemovesCompleted++
}

// onOverlayCountChange implements the alert protocol on 0↔1 transitions.
func (s *Server) onOverlayCountChange(app binder.ProcessID, old, new int) {
	switch {
	case old == 0 && new > 0:
		s.overlayAppeared(app)
	case old > 0 && new == 0:
		s.overlayGone(app)
	}
}

func (s *Server) overlayAppeared(app binder.ProcessID) {
	// If a (possibly defense-delayed) removal is pending, the overlay is
	// back: cancel the removal and keep the alert.
	if ev, ok := s.pendingRemoval[app]; ok {
		s.clock.Cancel(ev)
		delete(s.pendingRemoval, app)
		return
	}
	if s.alertPosted[app] || s.pendingPost[app] != nil {
		return
	}
	send := func() {
		delete(s.pendingPost, app)
		s.alertPosted[app] = true
		s.callSysUI(sysui.MethodPostOverlayAlert, app)
	}
	if s.anaDelay > 0 {
		// Android 10/11: wait for the Android Notification Assistant.
		s.pendingPost[app] = s.clock.MustAfter(s.anaDelay, "sysserver/anaDelay", send)
		return
	}
	send()
}

func (s *Server) overlayGone(app binder.ProcessID) {
	// Overlay disappeared while the post is still held by the ANA delay:
	// never send the alert at all.
	if ev, ok := s.pendingPost[app]; ok {
		s.clock.Cancel(ev)
		delete(s.pendingPost, app)
		return
	}
	if !s.alertPosted[app] {
		return
	}
	remove := func() {
		delete(s.pendingRemoval, app)
		if s.wm.OverlayCount(app) > 0 {
			return // re-added during the defense delay
		}
		delete(s.alertPosted, app)
		s.callSysUI(sysui.MethodRemoveOverlayAlert, app)
	}
	if s.defenseDelay > 0 {
		s.pendingRemoval[app] = s.clock.MustAfter(s.defenseDelay, "sysserver/defenseDelay", remove)
		return
	}
	remove()
}

func (s *Server) callSysUI(method string, app binder.ProcessID) {
	if _, err := s.bus.Call(binder.SystemServer, binder.SystemUI, method, app); err != nil {
		// System UI missing is a wiring bug in a simulation assembly;
		// record it and degrade instead of crashing the run.
		s.violation("sysserver-sysui-call", err.Error())
	}
}

// latencyForMethod maps a Binder method to the device profile's latency
// distribution; Assemble wires it into the Bus.
func latencyForMethod(p device.Profile) binder.LatencyFunc {
	return func(from, to binder.ProcessID, method string) simrand.Dist {
		switch {
		case to == binder.SystemServer && method == MethodAddView:
			return p.Tam
		case to == binder.SystemServer && method == MethodRemoveView:
			return p.Trm
		case to == binder.SystemServer && method == MethodEnqueueToast,
			to == binder.SystemServer && method == MethodCancelToast:
			return p.ToastNotify
		case to == binder.SystemUI && method == sysui.MethodPostOverlayAlert:
			return p.TnShow
		case to == binder.SystemUI && method == sysui.MethodRemoveOverlayAlert:
			return p.TnRemove
		default:
			return simrand.Constant(1)
		}
	}
}

// Stack is a fully wired simulated Android stack for one device.
type Stack struct {
	Clock   *simclock.Clock
	Bus     *binder.Bus
	WM      *wm.Manager
	Server  *Server
	UI      *sysui.SystemUI
	Profile device.Profile
	RNG     *simrand.Source
	// Faults is the fault-injection plane when assembled WithFaults;
	// nil in an unfaulted stack.
	Faults *faults.Plane
	// Monitor is the runtime invariant monitor when assembled
	// WithMonitor; nil otherwise.
	Monitor *invariant.Monitor
}

// Option adjusts stack assembly; the ablation experiments use these to
// knock out individual mechanisms.
type Option func(*assembleOptions)

type assembleOptions struct {
	slideDuration time.Duration
	plane         *faults.Plane
	monitor       bool
}

// WithSlideDuration overrides the notification slide-down animation
// duration (default: the profile's SlideDuration — stock 360 ms scaled
// by the device's animator_duration_scale).
func WithSlideDuration(d time.Duration) Option {
	return func(o *assembleOptions) { o.slideDuration = d }
}

// WithFaults threads a fault-injection plane through the stack: binder
// drops/duplicates/spikes/reordering, frame faults on the slide and toast
// fade animations, and (when the profile enables it) a toast-pressure
// pump. A nil plane — or a plane built from a zero profile — leaves the
// assembled stack byte-identical to an unfaulted one.
//
// A profile with toast pressure keeps a recurring pump event scheduled, so
// such stacks must be driven with bounded runs (RunFor/RunUntil), never
// the run-to-empty Run().
func WithFaults(pl *faults.Plane) Option {
	return func(o *assembleOptions) { o.plane = pl }
}

// WithMonitor attaches a runtime invariant monitor to the assembled
// stack's clock, bus, window manager and notification manager. The
// monitor observes only; the run's event schedule is unchanged.
func WithMonitor() Option {
	return func(o *assembleOptions) { o.monitor = true }
}

// faultsNoiseApp posts the toast-pressure bursts.
const faultsNoiseApp binder.ProcessID = "com.noise.app"

// toastPumpInterval paces the toast-pressure pump.
const toastPumpInterval = 250 * time.Millisecond

// Assemble wires a complete stack — clock, Binder bus with the profile's
// latency model, window manager, system server and System UI — from a
// device profile and seed. This is the entry point examples and the
// experiment harness use.
func Assemble(profile device.Profile, seed int64, opts ...Option) (*Stack, error) {
	var ao assembleOptions
	for _, opt := range opts {
		opt(&ao)
	}
	if ao.slideDuration == 0 {
		// The profile decides the slide animation's length: stock 360 ms
		// for the seed devices, scaled by animator_duration_scale for
		// generated ones, and a single frame for the animations-off
		// accessibility population.
		ao.slideDuration = profile.SlideDuration()
	}
	clock := simclock.New()
	root := simrand.New(seed)
	bus, err := binder.NewBus(binder.Config{
		Clock:   clock,
		RNG:     root.Derive("binder"),
		Latency: latencyForMethod(profile),
	})
	if err != nil {
		return nil, fmt.Errorf("sysserver: assemble bus: %w", err)
	}
	screen := geom.RectWH(0, 0, float64(profile.ScreenW), float64(profile.ScreenH))
	manager, err := wm.NewManager(clock, screen)
	if err != nil {
		return nil, fmt.Errorf("sysserver: assemble wm: %w", err)
	}
	server, err := New(Config{
		Clock:   clock,
		Bus:     bus,
		RNG:     root.Derive("sysserver"),
		Profile: profile,
		WM:      manager,
	})
	if err != nil {
		return nil, fmt.Errorf("sysserver: assemble server: %w", err)
	}
	uiCfg := sysui.Config{
		Clock:             clock,
		Bus:               bus,
		RNG:               root.Derive("sysui"),
		Tv:                profile.Tv,
		NotifViewHeightPx: profile.NotifViewHeightPx,
		SlideDuration:     ao.slideDuration,
	}
	if ao.plane != nil {
		uiCfg.FrameFault = ao.plane.FrameFault
	}
	ui, err := sysui.New(uiCfg)
	if err != nil {
		return nil, fmt.Errorf("sysserver: assemble sysui: %w", err)
	}
	st := &Stack{
		Clock:   clock,
		Bus:     bus,
		WM:      manager,
		Server:  server,
		UI:      ui,
		Profile: profile,
		RNG:     root,
	}
	if ao.monitor {
		mon := invariant.New(clock)
		mon.AttachClock()
		mon.AttachBus(bus)
		mon.AttachWM(manager)
		server.SetMonitor(mon)
		ui.SetViolationHandler(func(rule, detail string) { mon.Report(rule, detail) })
		st.Monitor = mon
	}
	if ao.plane != nil {
		st.Faults = ao.plane
		bus.SetFaultInjector(ao.plane)
		server.SetFrameFault(ao.plane.FrameFault)
		if ao.plane.ToastPressureActive() {
			// The pump is armed only when the profile actually exerts
			// toast pressure; otherwise the event queue must stay exactly
			// as an unfaulted run would leave it (the clock would also
			// never drain with a perpetual pump scheduled).
			noiseBounds := geom.RectWH(0, float64(profile.ScreenH)-200, float64(profile.ScreenW), 120)
			var pump func()
			pump = func() {
				for i := 0; i < ao.plane.ToastBurst(); i++ {
					// system_server is always registered in an assembled
					// stack; a failed call is recorded by the bus.
					_, _ = bus.Call(faultsNoiseApp, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
						Duration: ToastShort,
						Bounds:   noiseBounds,
						Content:  "faults/noise",
					})
				}
				clock.MustAfter(toastPumpInterval, "faults/toastPump", pump)
			}
			clock.MustAfter(toastPumpInterval, "faults/toastPump", pump)
		}
	}
	return st, nil
}
