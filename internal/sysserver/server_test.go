package sysserver

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/sysui"
	"repro/internal/wm"
)

const (
	evilApp   binder.ProcessID = "com.evil.app"
	victimApp binder.ProcessID = "com.bank.app"
)

func assemble(t *testing.T, p device.Profile) *Stack {
	t.Helper()
	st, err := Assemble(p, 42)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return st
}

func fullScreen(p device.Profile) geom.Rect {
	return geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
}

func addOverlay(t *testing.T, st *Stack, handle uint64) {
	t.Helper()
	if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodAddView, AddViewRequest{
		Handle: handle,
		Type:   wm.TypeApplicationOverlay,
		Bounds: fullScreen(st.Profile),
	}); err != nil {
		t.Fatalf("addView: %v", err)
	}
}

func removeOverlay(t *testing.T, st *Stack, handle uint64) {
	t.Helper()
	if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodRemoveView, RemoveViewRequest{Handle: handle}); err != nil {
		t.Fatalf("removeView: %v", err)
	}
}

func TestNewValidation(t *testing.T) {
	st := assemble(t, device.Default())
	if _, err := New(Config{Bus: st.Bus, RNG: st.RNG, WM: st.WM}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := New(Config{Clock: st.Clock, RNG: st.RNG, WM: st.WM}); err == nil {
		t.Fatal("nil bus accepted")
	}
	if _, err := New(Config{Clock: st.Clock, Bus: st.Bus, WM: st.WM}); err == nil {
		t.Fatal("nil rng accepted")
	}
	if _, err := New(Config{Clock: st.Clock, Bus: st.Bus, RNG: st.RNG}); err == nil {
		t.Fatal("nil wm accepted")
	}
}

func TestAssembleWiresEndpoints(t *testing.T) {
	st := assemble(t, device.Default())
	if st.Clock == nil || st.Bus == nil || st.WM == nil || st.Server == nil || st.UI == nil {
		t.Fatal("Assemble left nil components")
	}
	if got := st.WM.Screen(); got.W() != 1080 || got.H() != 1920 {
		t.Fatalf("screen = %v, want 1080x1920 (pixel 2)", got)
	}
}

// TestAddViewAttachesOverlayAndPostsAlert: a single long-lived overlay must
// attach and produce a Λ5 alert (the built-in defense working as designed).
func TestAddViewAttachesOverlayAndPostsAlert(t *testing.T) {
	st := assemble(t, device.Default())
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.WM.OverlayCount(evilApp) != 1 {
		t.Fatalf("overlay count = %d, want 1", st.WM.OverlayCount(evilApp))
	}
	if got := st.Server.Stats().AddsCompleted; got != 1 {
		t.Fatalf("AddsCompleted = %d, want 1", got)
	}
	eps := st.UI.Episodes()
	if len(eps) != 1 {
		t.Fatalf("episodes = %d, want 1", len(eps))
	}
	if got := eps[0].Classify(); got != sysui.Lambda5 {
		t.Fatalf("outcome = %v, want Λ5", got)
	}
}

func TestAddViewWithoutPermissionRejected(t *testing.T) {
	st := assemble(t, device.Default())
	addOverlay(t, st, 1)
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.Server.Stats().AddsRejected; got != 1 {
		t.Fatalf("AddsRejected = %d, want 1", got)
	}
	if len(st.UI.Episodes()) != 0 {
		t.Fatal("alert posted for rejected overlay")
	}
}

func TestRemoveViewDetachesAndRemovesAlert(t *testing.T) {
	st := assemble(t, device.Default())
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	st.Clock.MustAfter(2*time.Second, "rm", func() { removeOverlay(t, st, 1) })
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.WM.OverlayCount(evilApp) != 0 {
		t.Fatalf("overlay count = %d, want 0", st.WM.OverlayCount(evilApp))
	}
	if st.UI.ActiveAlert(evilApp) {
		t.Fatal("alert still active after overlay removal")
	}
	if got := st.Server.Stats().RemovesCompleted; got != 1 {
		t.Fatalf("RemovesCompleted = %d, want 1", got)
	}
}

func TestRemoveUnknownHandleCounted(t *testing.T) {
	st := assemble(t, device.Default())
	removeOverlay(t, st, 77)
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.Server.Stats().RemovesUnknown; got != 1 {
		t.Fatalf("RemovesUnknown = %d, want 1", got)
	}
}

// TestRemoveRacingAddIsHonored: on a profile where Trm < Tam + Tas the
// removeView can reach the server before the addView finishes attaching;
// the server must then detach the window as soon as it attaches.
func TestRemoveRacingAddIsHonored(t *testing.T) {
	p := device.Default()
	p.Tam = simrand.Constant(10)
	p.Tas = simrand.Constant(20)
	p.Trm = simrand.Constant(1)
	st := assemble(t, p)
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	removeOverlay(t, st, 1) // arrives at 1ms, long before attach at 30ms
	if err := st.Clock.RunFor(2 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.WM.OverlayCount(evilApp) != 0 {
		t.Fatalf("overlay count = %d, want 0 (remove-before-add honored)", st.WM.OverlayCount(evilApp))
	}
}

// TestANADelayDefersAlert: on Android 10 the alert must not reach System
// UI before the 100 ms ANA delay.
func TestANADelayDefersAlert(t *testing.T) {
	p, ok := device.ByModel("mi9") // Android 10
	if !ok {
		t.Fatal("mi9 profile missing")
	}
	st := assemble(t, p)
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	if err := st.Clock.RunUntil(90 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(st.UI.Episodes()) != 0 {
		t.Fatal("alert posted before the ANA delay elapsed")
	}
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if len(st.UI.Episodes()) != 1 {
		t.Fatalf("episodes = %d, want 1 after ANA delay", len(st.UI.Episodes()))
	}
}

// TestOverlayRemovedDuringANADelaySuppressesAlertEntirely: if the overlay
// vanishes while the post is held by the ANA delay, System UI never hears
// about it — the attack's best case on Android 10/11.
func TestOverlayRemovedDuringANADelaySuppressesAlertEntirely(t *testing.T) {
	st := assemble(t, device.Default()) // pixel 2, Android 11: 200ms ANA
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	st.Clock.MustAfter(60*time.Millisecond, "rm", func() { removeOverlay(t, st, 1) })
	if err := st.Clock.RunFor(3 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := len(st.UI.Episodes()); got != 0 {
		t.Fatalf("episodes = %d, want 0 (post canceled inside ANA delay)", got)
	}
}

// TestEnhancedDefenseKeepsAlert: with the Section VII-B defense at
// t = 690 ms, a quick remove+re-add cycle must NOT remove the alert; it
// plays to Λ5 and the attack is defeated.
func TestEnhancedDefenseKeepsAlert(t *testing.T) {
	p, ok := device.ByModel("pixel 2")
	if !ok {
		t.Fatal("pixel 2 profile missing")
	}
	st := assemble(t, p)
	st.Server.EnableEnhancedNotificationDefense(690 * time.Millisecond)
	if got := st.Server.DefenseDelay(); got != 690*time.Millisecond {
		t.Fatalf("DefenseDelay = %v", got)
	}
	st.WM.GrantOverlayPermission(evilApp)

	// Simulate the attack loop: add, wait D=300ms, swap overlays every D.
	const d = 300 * time.Millisecond
	addOverlay(t, st, 1)
	for i := 1; i <= 10; i++ {
		i := i
		st.Clock.MustAfter(time.Duration(i)*d, "swap", func() {
			removeOverlay(t, st, uint64((i+1)%2+1))
			addOverlay(t, st, uint64(i%2+1))
		})
	}
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.UI.WorstOutcome(); got != sysui.Lambda5 {
		t.Fatalf("WorstOutcome = %v, want Λ5 (defense defeats suppression)", got)
	}
}

func TestEnhancedDefenseNegativeDelayClamped(t *testing.T) {
	st := assemble(t, device.Default())
	st.Server.EnableEnhancedNotificationDefense(-time.Second)
	if got := st.Server.DefenseDelay(); got != 0 {
		t.Fatalf("DefenseDelay = %v, want 0", got)
	}
}

// TestDefenseDelayStillRemovesAfterHonestRemoval: the defense must not
// leak alerts — when the overlay is really gone, the alert goes away after
// the delay.
func TestDefenseDelayStillRemovesAfterHonestRemoval(t *testing.T) {
	st := assemble(t, device.Default())
	st.Server.EnableEnhancedNotificationDefense(690 * time.Millisecond)
	st.WM.GrantOverlayPermission(evilApp)
	addOverlay(t, st, 1)
	st.Clock.MustAfter(2*time.Second, "rm", func() { removeOverlay(t, st, 1) })
	if err := st.Clock.RunFor(10 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if st.UI.ActiveAlert(evilApp) {
		t.Fatal("alert never removed after honest overlay removal")
	}
}

// TestLatencyMappingUsesProfileDistributions is the calibration-wiring
// check: each Binder method must draw from the Fig. 3 distribution the
// paper names, or the whole timing story silently breaks.
func TestLatencyMappingUsesProfileDistributions(t *testing.T) {
	p := device.Default()
	// Give each distribution a distinct constant mean to identify it.
	p.Tam = simrand.Constant(11)
	p.Trm = simrand.Constant(22)
	p.ToastNotify = simrand.Constant(33)
	p.TnShow = simrand.Constant(44)
	p.TnRemove = simrand.Constant(55)
	fn := latencyForMethod(p)
	tests := []struct {
		to     binder.ProcessID
		method string
		want   float64
	}{
		{binder.SystemServer, MethodAddView, 11},
		{binder.SystemServer, MethodRemoveView, 22},
		{binder.SystemServer, MethodEnqueueToast, 33},
		{binder.SystemServer, MethodCancelToast, 33},
		{binder.SystemUI, sysui.MethodPostOverlayAlert, 44},
		{binder.SystemUI, sysui.MethodRemoveOverlayAlert, 55},
		{binder.SystemServer, "somethingElse", 1},
	}
	for _, tt := range tests {
		if got := fn("app", tt.to, tt.method).Mean; got != tt.want {
			t.Errorf("latency(%s→%s) mean = %v, want %v", tt.to, tt.method, got, tt.want)
		}
	}
}

func TestMalformedPayloadsIgnored(t *testing.T) {
	st := assemble(t, device.Default())
	if _, err := st.Bus.Call(evilApp, binder.SystemServer, MethodAddView, "not-a-request"); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	s := st.Server.Stats()
	if s.AddsCompleted != 0 && s.AddsRejected != 0 {
		t.Fatalf("malformed payload processed: %+v", s)
	}
}
