package sysserver

import (
	"time"

	"repro/internal/anim"
	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
	"repro/internal/wm"
)

// Toast durations Android allows developers to choose.
const (
	// ToastShort is Toast.LENGTH_SHORT: 2 seconds on screen.
	ToastShort = 2 * time.Second
	// ToastLong is Toast.LENGTH_LONG: 3.5 seconds on screen.
	ToastLong = 3500 * time.Millisecond
)

// MaxToastTokensPerApp is the Android cap on queued toast tokens for one
// package (the paper: "the number of tokens associated with one app in the
// queue should be no more than 50").
const MaxToastTokensPerApp = 50

// EnqueueToastRequest is the payload of Toast.show(): the app asks the
// Notification Manager Service to display a (possibly customized) toast.
type EnqueueToastRequest struct {
	// Duration must be ToastShort or ToastLong; anything else is
	// normalized to ToastShort, matching the platform's behaviour of
	// only honoring the two constants.
	Duration time.Duration
	// Bounds is the on-screen rectangle of the toast view.
	Bounds geom.Rect
	// Content labels what the customized toast renders (e.g.
	// "fake-keyboard:lower"); the password attack switches it per
	// sub-keyboard.
	Content string
}

// toastToken is one queued toast.
type toastToken struct {
	id       uint64
	app      binder.ProcessID
	duration time.Duration
	bounds   geom.Rect
	content  string
	queuedAt time.Duration
}

// ToastRecord describes a toast that was displayed, for the experiment
// harness.
type ToastRecord struct {
	// App is the posting package.
	App binder.ProcessID
	// Content is the toast's content label.
	Content string
	// ShownAt is when the window attached; GoneAt when the fade-out
	// finished and the window detached (zero while visible).
	ShownAt, GoneAt time.Duration
}

// CancelToastRequest is the payload of Toast.cancel(): the app asks the
// Notification Manager Service to retire its currently displayed toast
// (starting the fade-out immediately) and drop its queued tokens. The
// password-stealing attack uses it to switch the fake keyboard to a new
// sub-keyboard without waiting out the toast duration.
type CancelToastRequest struct{}

// toastService is the toast half of the Notification Manager Service. It
// serializes toast display — one toast at a time per the Android 8 defense
// "Prevent apps to overlay other apps via toast windows" — while the
// window-side fade-out animation means consecutive toasts still overlap
// visually for up to the 500 ms fade.
type toastService struct {
	s *Server

	nextToken uint64
	queue     []*toastToken
	perApp    map[binder.ProcessID]int
	// current is the token whose toast is in its on-screen (pre-fade)
	// phase; nil when the display slot is free.
	current *toastToken
	// displayed counts toast windows in their pre-fade-out phase; the
	// invariant monitor checks it never exceeds one (toast serialization).
	displayed int
	// curExpiry is the pending expiry timer for the current toast;
	// curExpire runs the expiry early on Toast.cancel().
	curExpiry *simclock.Event
	curExpire func()

	// nextAllowed tracks, per app, the earliest instant the toast-gap
	// defense permits that app's next toast to start; retry is the
	// pending deferred showNext.
	nextAllowed map[binder.ProcessID]time.Duration
	retry       *simclock.Event

	records []*ToastRecord
}

func newToastService(s *Server) *toastService {
	return &toastService{
		s:           s,
		perApp:      make(map[binder.ProcessID]int),
		nextAllowed: make(map[binder.ProcessID]time.Duration),
	}
}

// enqueue admits a token to the queue, enforcing the per-app cap, and
// starts display if the slot is free.
func (t *toastService) enqueue(from binder.ProcessID, req EnqueueToastRequest) {
	if t.perApp[from] >= t.s.toastCap() {
		t.s.stats.ToastsRejected++
		return
	}
	if req.Duration != ToastShort && req.Duration != ToastLong {
		req.Duration = ToastShort
	}
	if req.Bounds.Empty() {
		t.s.stats.ToastsRejected++
		return
	}
	t.nextToken++
	tok := &toastToken{
		id:       t.nextToken,
		app:      from,
		duration: req.Duration,
		bounds:   req.Bounds,
		content:  req.Content,
		queuedAt: t.s.clock.Now(),
	}
	t.queue = append(t.queue, tok)
	t.perApp[from]++
	t.s.stats.ToastsEnqueued++
	if t.s.monitor != nil {
		t.s.monitor.ToastQueued(from, t.perApp[from])
	}
	if t.current == nil {
		t.showNext()
	}
}

// showNext pops the head token and displays it: the Window Manager Service
// creates the toast window (taking ToastCreate), fades it in over 500 ms
// with DecelerateInterpolator, keeps it for the toast duration, then fades
// it out over 500 ms with AccelerateInterpolator. The display slot is
// released at fade-out *start*, so a queued successor begins creation while
// the old toast is still mostly opaque — the animation overlap the
// draw-and-destroy toast attack exploits.
func (t *toastService) showNext() {
	if t.current != nil || len(t.queue) == 0 {
		return
	}
	tok := t.queue[0]
	// The Section VII-B toast-gap defense: hold the same app's next
	// toast until the mandated gap after the previous fade-out.
	if t.s.toastGapDefense > 0 {
		if allowed, ok := t.nextAllowed[tok.app]; ok && t.s.clock.Now() < allowed {
			if t.retry == nil {
				t.retry = t.s.clock.MustAfter(allowed-t.s.clock.Now(), "sysserver/toastGapDefense", func() {
					t.retry = nil
					t.showNext()
				})
			}
			return
		}
	}
	t.queue = t.queue[1:]
	t.perApp[tok.app]--
	if t.perApp[tok.app] == 0 {
		delete(t.perApp, tok.app)
	}
	t.current = tok

	create := t.s.profile.ToastCreate.Sample(t.s.rng)
	t.s.clock.MustAfter(create, "sysserver/createToast", func() {
		id, err := t.s.wm.AddToastWindow(wm.Spec{Owner: tok.app, Bounds: tok.bounds})
		if err != nil {
			// Toast windows cannot fail validation here (bounds checked
			// at enqueue), but guard: release the slot.
			t.current = nil
			t.showNext()
			return
		}
		t.s.stats.ToastsShown++
		t.displayed++
		if t.s.monitor != nil {
			t.s.monitor.ToastDisplayed(t.displayed)
		}
		rec := &ToastRecord{App: tok.app, Content: tok.content, ShownAt: t.s.clock.Now()}
		t.records = append(t.records, rec)
		// The window attaches fully transparent and fades in.
		if err := t.s.wm.SetAlpha(id, 0); err != nil {
			t.s.violation("toast-window", "set alpha on fresh toast: "+err.Error())
		}
		t.runFade(id, anim.Decelerate{}, false, nil)
		// After the on-screen duration, fade out and release the slot.
		expire := func() {
			t.current = nil
			t.curExpiry = nil
			t.curExpire = nil
			t.displayed--
			if t.s.monitor != nil {
				t.s.monitor.ToastDisplayed(t.displayed)
			}
			if gap := t.s.toastGapDefense; gap > 0 {
				t.nextAllowed[tok.app] = t.s.clock.Now() + t.s.toastFade + gap
			}
			t.runFade(id, anim.Accelerate{}, true, func() {
				rec.GoneAt = t.s.clock.Now()
				if t.s.wm.Attached(id) {
					if err := t.s.wm.RemoveWindow(id); err != nil {
						t.s.violation("toast-window", "remove toast window: "+err.Error())
					}
				}
			})
			// "Once removeView is called, the System Server fetches the
			// new token and creates the new toast."
			t.showNext()
		}
		t.curExpire = expire
		t.curExpiry = t.s.clock.MustAfter(tok.duration, "sysserver/toastExpire", expire)
	})
}

// runFade animates a toast window's alpha over the toast fade duration
// (500 ms stock). For fade-in the eased value is the alpha; for fade-out
// the alpha is one minus the eased value.
func (t *toastService) runFade(id wm.WindowID, ip anim.Interpolator, out bool, onDone func()) {
	a, err := anim.New(t.s.clock, anim.Config{
		Name:         "sysserver/toastFade",
		Duration:     t.s.toastFade,
		Interpolator: ip,
		FrameFault:   t.s.frameFault,
		OnFrame: func(v float64) {
			alpha := v
			if out {
				alpha = 1 - v
			}
			// The window may already be gone if a fade-out raced a
			// manual removal; ignore.
			_ = t.s.wm.SetAlpha(id, alpha)
		},
		OnEnd: func(bool) {
			if onDone != nil {
				onDone()
			}
		},
	})
	if err != nil {
		// The fade config is validated by construction; degrade by
		// completing the fade instantly rather than crashing the run.
		t.s.violation("toast-fade", "build toast fade: "+err.Error())
		if onDone != nil {
			onDone()
		}
		return
	}
	if err := a.Start(); err != nil {
		t.s.violation("toast-fade", "start toast fade: "+err.Error())
		if onDone != nil {
			onDone()
		}
	}
}

// cancel retires the app's current toast early and drops its queued
// tokens.
func (t *toastService) cancel(from binder.ProcessID) {
	// Drop the app's queued tokens.
	kept := t.queue[:0]
	for _, tok := range t.queue {
		if tok.app == from {
			continue
		}
		kept = append(kept, tok)
	}
	t.queue = kept
	delete(t.perApp, from)
	// Retire the showing toast, if it is ours.
	if t.current != nil && t.current.app == from && t.curExpire != nil {
		t.s.clock.Cancel(t.curExpiry)
		t.curExpire()
	}
}

// Toasts exposes the toast service's display records.
func (s *Server) Toasts() []ToastRecord {
	out := make([]ToastRecord, len(s.toasts.records))
	for i, r := range s.toasts.records {
		out[i] = *r
	}
	return out
}

// QueuedToasts reports how many tokens the app currently has in the queue.
func (s *Server) QueuedToasts(app binder.ProcessID) int { return s.toasts.perApp[app] }

// ToastSlotBusy reports whether a toast is currently in its on-screen
// (pre-fade-out) phase.
func (s *Server) ToastSlotBusy() bool { return s.toasts.current != nil }
