package sysserver

import (
	"fmt"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/wm"
)

// TestPropertyProtocolQuiescence drives random add/remove/toast traffic
// from several apps and checks system-level invariants once the clock
// drains:
//
//   - every balanced add/remove pair leaves no window behind,
//   - the overlay alert is active exactly for apps with a standing
//     overlay,
//   - the per-app overlay count matches the attached overlay windows,
//   - nothing panics along the way.
func TestPropertyProtocolQuiescence(t *testing.T) {
	apps := []binder.ProcessID{"app.a", "app.b", "app.c"}
	prop := func(seed int64, ops []uint8) bool {
		st, err := Assemble(device.Default(), seed)
		if err != nil {
			return false
		}
		for _, app := range apps {
			st.WM.GrantOverlayPermission(app)
		}
		bounds := geom.RectWH(0, 0, 500, 500)
		// Track per-(app,handle) outstanding adds so we can balance.
		outstanding := make(map[viewKey]int)
		rng := simrand.New(seed)
		at := time.Duration(0)
		if len(ops) > 120 {
			ops = ops[:120]
		}
		for _, op := range ops {
			at += time.Duration(1+int(op%7)*37) * time.Millisecond
			app := apps[int(op)%len(apps)]
			handle := uint64(op%3 + 1)
			key := viewKey{app: app, handle: handle}
			switch (op / 3) % 4 {
			case 0, 1: // addView
				st.Clock.MustAfter(at, "fuzz/add", func() {
					if _, err := st.Bus.Call(app, binder.SystemServer, MethodAddView, AddViewRequest{
						Handle: handle, Type: wm.TypeApplicationOverlay, Bounds: bounds,
					}); err != nil {
						panic(err)
					}
				})
				outstanding[key]++
			case 2: // removeView (only if an add is outstanding)
				if outstanding[key] > 0 {
					outstanding[key]--
					st.Clock.MustAfter(at, "fuzz/remove", func() {
						if _, err := st.Bus.Call(app, binder.SystemServer, MethodRemoveView, RemoveViewRequest{Handle: handle}); err != nil {
							panic(err)
						}
					})
				}
			case 3: // enqueueToast
				st.Clock.MustAfter(at, "fuzz/toast", func() {
					if _, err := st.Bus.Call(app, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
						Duration: ToastShort, Bounds: bounds, Content: "x",
					}); err != nil {
						panic(err)
					}
				})
			}
			_ = rng
		}
		// Balance every remaining add with a remove at the end.
		for key, n := range outstanding {
			for i := 0; i < n; i++ {
				key := key
				at += 10 * time.Millisecond
				st.Clock.MustAfter(at, "fuzz/drain", func() {
					if _, err := st.Bus.Call(key.app, binder.SystemServer, MethodRemoveView, RemoveViewRequest{Handle: key.handle}); err != nil {
						panic(err)
					}
				})
			}
		}
		if err := st.Clock.RunFor(at + 60*time.Second); err != nil {
			return false
		}
		// Quiescence invariants.
		if st.WM.WindowCount() != 0 {
			t.Logf("windows left: %d", st.WM.WindowCount())
			return false
		}
		for _, app := range apps {
			if st.WM.OverlayCount(app) != 0 {
				t.Logf("%s overlay count %d", app, st.WM.OverlayCount(app))
				return false
			}
			if st.UI.ActiveAlert(app) {
				t.Logf("%s alert still active", app)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyAlertMatchesOverlayPresence: at any quiescent instant, an
// app has an active alert if and only if it has a standing overlay (after
// the notification pipeline settles).
func TestPropertyAlertMatchesOverlayPresence(t *testing.T) {
	prop := func(seed int64, keepRaw uint8) bool {
		st, err := Assemble(device.Default(), seed)
		if err != nil {
			return false
		}
		const app binder.ProcessID = "app.x"
		st.WM.GrantOverlayPermission(app)
		keep := int(keepRaw%3) + 1 // overlays left standing
		for i := 0; i < keep+2; i++ {
			if _, err := st.Bus.Call(app, binder.SystemServer, MethodAddView, AddViewRequest{
				Handle: uint64(i + 1), Type: wm.TypeApplicationOverlay, Bounds: geom.RectWH(0, 0, 100, 100),
			}); err != nil {
				return false
			}
		}
		// Remove two of them after a while.
		st.Clock.MustAfter(2*time.Second, "rm", func() {
			for i := keep; i < keep+2; i++ {
				if _, err := st.Bus.Call(app, binder.SystemServer, MethodRemoveView, RemoveViewRequest{Handle: uint64(i + 1)}); err != nil {
					panic(err)
				}
			}
		})
		if err := st.Clock.RunFor(10 * time.Second); err != nil {
			return false
		}
		if st.WM.OverlayCount(app) != keep {
			return false
		}
		return st.UI.ActiveAlert(app) // overlays standing ⇒ alert present
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyToastChainAlwaysTerminates: any pattern of toast enqueues
// eventually drains — every shown toast disappears and no window leaks.
func TestPropertyToastChainAlwaysTerminates(t *testing.T) {
	prop := func(seed int64, pattern []uint8) bool {
		st, err := Assemble(device.Default(), seed)
		if err != nil {
			return false
		}
		if len(pattern) > 40 {
			pattern = pattern[:40]
		}
		at := time.Duration(0)
		for _, p := range pattern {
			at += time.Duration(int(p)%1500) * time.Millisecond
			dur := ToastShort
			if p%2 == 1 {
				dur = ToastLong
			}
			app := binder.ProcessID(fmt.Sprintf("app.%d", p%2))
			st.Clock.MustAfter(at, "toast", func() {
				if _, err := st.Bus.Call(app, binder.SystemServer, MethodEnqueueToast, EnqueueToastRequest{
					Duration: dur, Bounds: geom.RectWH(0, 0, 300, 300), Content: "t",
				}); err != nil {
					panic(err)
				}
			})
		}
		// Generous horizon: worst case all toasts serialized.
		horizon := at + time.Duration(len(pattern)+1)*(ToastLong+time.Second)
		if err := st.Clock.RunFor(horizon); err != nil {
			return false
		}
		if st.WM.WindowCount() != 0 {
			return false
		}
		for _, rec := range st.Server.Toasts() {
			if rec.GoneAt == 0 {
				return false
			}
			if rec.GoneAt <= rec.ShownAt {
				return false
			}
		}
		// Everything accepted was eventually shown (cap permitting).
		s := st.Server.Stats()
		return s.ToastsShown == s.ToastsEnqueued
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}
