package apps

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/simclock"
	"repro/internal/uikit"
)

func screen() geom.Rect { return geom.RectWH(0, 0, 1080, 1920) }

func TestCatalogMatchesTableIV(t *testing.T) {
	cat := Catalog()
	if len(cat) != 8 {
		t.Fatalf("catalog has %d apps, want 8 (Table IV)", len(cat))
	}
	wantVersions := map[string]string{
		"Bank of America": "8.1.16",
		"Skype":           "8.45.0.43",
		"Facebook":        "196.0.0.16.95",
		"Evernote":        "8.4.1",
		"Snapchat":        "10.44.3.0",
		"Twitter":         "7.68.1",
		"Instagram":       "69.0.0.10.95",
		"Alipay":          "10.1.65",
	}
	for _, a := range cat {
		want, ok := wantVersions[a.Name]
		if !ok {
			t.Errorf("unexpected app %q", a.Name)
			continue
		}
		if a.Version != want {
			t.Errorf("%s version = %q, want %q", a.Name, a.Version, want)
		}
		if a.Package == "" {
			t.Errorf("%s has empty package", a.Name)
		}
	}
}

func TestOnlyAlipayDisablesA11y(t *testing.T) {
	for _, a := range Catalog() {
		want := a.Name == "Alipay"
		if a.DisablesPasswordA11y != want {
			t.Errorf("%s DisablesPasswordA11y = %v, want %v", a.Name, a.DisablesPasswordA11y, want)
		}
	}
}

func TestByName(t *testing.T) {
	a, ok := ByName("Skype")
	if !ok || a.Version != "8.45.0.43" {
		t.Fatalf("ByName(Skype) = (%+v, %v)", a, ok)
	}
	if _, ok := ByName("WeChat"); ok {
		t.Fatal("ByName found an app not in Table IV")
	}
}

func TestNewLoginSession(t *testing.T) {
	clock := simclock.New()
	bofa, _ := ByName("Bank of America")
	sess, err := bofa.NewLoginSession(clock, screen())
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	if sess.Username == nil || sess.Password == nil || sess.SignIn == nil {
		t.Fatal("login widgets missing")
	}
	if !sess.Password.Password {
		t.Fatal("password widget not marked Password")
	}
	if !sess.Password.A11yEnabled {
		t.Fatal("BofA password widget should dispatch accessibility events")
	}
	if sess.KeyboardBounds.Empty() {
		t.Fatal("keyboard bounds empty")
	}
	// The IME occupies the bottom of the screen, below the widgets.
	if sess.KeyboardBounds.Min.Y <= sess.Password.Bounds.Max.Y {
		t.Fatalf("keyboard %v overlaps password widget %v", sess.KeyboardBounds, sess.Password.Bounds)
	}
	// Widgets are inside the screen and in the activity tree.
	for _, v := range []*uikit.View{sess.Username, sess.Password, sess.SignIn} {
		if !screen().Covers(v.Bounds) {
			t.Errorf("widget %s outside screen", v.ID)
		}
		if _, ok := sess.Activity.Root.FindByID(v.ID); !ok {
			t.Errorf("widget %s not in tree", v.ID)
		}
	}
}

func TestAlipaySessionSuppressesPasswordEvents(t *testing.T) {
	clock := simclock.New()
	alipay, _ := ByName("Alipay")
	sess, err := alipay.NewLoginSession(clock, screen())
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	if sess.Password.A11yEnabled {
		t.Fatal("Alipay password widget must disable accessibility")
	}
	if !sess.Username.A11yEnabled {
		t.Fatal("Alipay username widget must keep accessibility (the bypass)")
	}
}

func TestNewLoginSessionEmptyScreen(t *testing.T) {
	clock := simclock.New()
	bofa, _ := ByName("Bank of America")
	if _, err := bofa.NewLoginSession(clock, geom.Rect{}); err == nil {
		t.Fatal("empty screen accepted")
	}
}
