// Package apps models the eight real-world victim apps of the paper's
// Table IV as login-screen view trees. The apps differ in exactly one
// security-relevant way the paper reports: Alipay disables accessibility
// events on its password input widget, so the malicious app cannot learn
// when the password field gains focus — but its username widget still
// dispatches events, enabling the getParent() bypass of Section VI-C1.
package apps

import (
	"fmt"

	"repro/internal/binder"
	"repro/internal/geom"
	"repro/internal/simclock"
	"repro/internal/uikit"
)

// VictimApp describes one Table IV app.
type VictimApp struct {
	// Name is the display name.
	Name string
	// Package is the Android package name (and Binder process id).
	Package binder.ProcessID
	// Version is the tested version from Table IV.
	Version string
	// DisablesPasswordA11y reports whether the app suppresses
	// accessibility events on the password widget (Alipay).
	DisablesPasswordA11y bool
}

// Catalog returns the Table IV apps.
func Catalog() []VictimApp {
	return []VictimApp{
		{Name: "Bank of America", Package: "com.infonow.bofa", Version: "8.1.16"},
		{Name: "Skype", Package: "com.skype.raider", Version: "8.45.0.43"},
		{Name: "Facebook", Package: "com.facebook.katana", Version: "196.0.0.16.95"},
		{Name: "Evernote", Package: "com.evernote", Version: "8.4.1"},
		{Name: "Snapchat", Package: "com.snapchat.android", Version: "10.44.3.0"},
		{Name: "Twitter", Package: "com.twitter.android", Version: "7.68.1"},
		{Name: "Instagram", Package: "com.instagram.android", Version: "69.0.0.10.95"},
		{Name: "Alipay", Package: "com.eg.android.AlipayGphone", Version: "10.1.65", DisablesPasswordA11y: true},
	}
}

// ByName finds a catalog app by display name.
func ByName(name string) (VictimApp, bool) {
	for _, a := range Catalog() {
		if a.Name == name {
			return a, true
		}
	}
	return VictimApp{}, false
}

// LoginSession is an instantiated login screen for one app on one screen
// geometry.
type LoginSession struct {
	// App is the victim app.
	App VictimApp
	// Activity hosts the view tree and accessibility dispatch.
	Activity *uikit.Activity
	// Username and Password are the two input widgets.
	Username, Password *uikit.View
	// SignIn is the submit button.
	SignIn *uikit.View
	// KeyboardBounds is where the IME appears when an input is focused
	// (bottom 37.5% of the screen).
	KeyboardBounds geom.Rect
}

// NewLoginSession builds the app's login screen over the given screen
// rectangle.
func (v VictimApp) NewLoginSession(clock *simclock.Clock, screen geom.Rect) (*LoginSession, error) {
	if screen.Empty() {
		return nil, fmt.Errorf("apps: empty screen for %s", v.Name)
	}
	w, h := screen.W(), screen.H()
	root := uikit.NewView("login_root", "LinearLayout", screen)
	username := root.AddChild(uikit.NewView("username_input", "EditText",
		geom.RectWH(screen.Min.X+0.05*w, screen.Min.Y+0.22*h, 0.9*w, 0.06*h)))
	password := root.AddChild(uikit.NewView("password_input", "EditText",
		geom.RectWH(screen.Min.X+0.05*w, screen.Min.Y+0.32*h, 0.9*w, 0.06*h)))
	password.Password = true
	if v.DisablesPasswordA11y {
		password.A11yEnabled = false
	}
	signIn := root.AddChild(uikit.NewView("sign_in", "Button",
		geom.RectWH(screen.Min.X+0.05*w, screen.Min.Y+0.42*h, 0.9*w, 0.06*h)))
	act, err := uikit.NewActivity(clock, v.Package, root)
	if err != nil {
		return nil, fmt.Errorf("apps: build %s login activity: %w", v.Name, err)
	}
	return &LoginSession{
		App:            v,
		Activity:       act,
		Username:       username,
		Password:       password,
		SignIn:         signIn,
		KeyboardBounds: geom.RectWH(screen.Min.X, screen.Min.Y+0.625*h, w, 0.375*h),
	}, nil
}
