package sidechannel

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/keyboard"
	"repro/internal/simclock"
	"repro/internal/sysserver"
	"repro/internal/wm"
)

const evilApp binder.ProcessID = "com.evil.app"

func newWM(t *testing.T) (*wm.Manager, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	m, err := wm.NewManager(clock, geom.RectWH(0, 0, 1080, 1920))
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	return m, clock
}

func TestNewMeterValidation(t *testing.T) {
	if _, err := NewMeter(nil); err == nil {
		t.Fatal("nil manager accepted")
	}
}

func TestMeterTracksWindowBuffers(t *testing.T) {
	m, _ := newWM(t)
	meter, err := NewMeter(m)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	const app binder.ProcessID = "com.some.app"
	if got := meter.SharedVM(app); got != 0 {
		t.Fatalf("initial SharedVM = %d", got)
	}
	id, err := m.AddWindow(wm.Spec{Owner: app, Type: wm.TypeActivity, Bounds: geom.RectWH(0, 0, 100, 50)})
	if err != nil {
		t.Fatalf("AddWindow: %v", err)
	}
	if got := meter.SharedVM(app); got != 100*50*BytesPerPixel {
		t.Fatalf("SharedVM = %d, want %d", got, 100*50*BytesPerPixel)
	}
	if err := m.RemoveWindow(id); err != nil {
		t.Fatalf("RemoveWindow: %v", err)
	}
	if got := meter.SharedVM(app); got != 0 {
		t.Fatalf("SharedVM after removal = %d", got)
	}
}

func TestNewPollerValidation(t *testing.T) {
	m, clock := newWM(t)
	meter, err := NewMeter(m)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	valid := PollerConfig{Clock: clock, Meter: meter, Target: "t", SignatureBytes: 100}
	for _, tt := range []struct {
		name string
		mut  func(c *PollerConfig)
	}{
		{"nil clock", func(c *PollerConfig) { c.Clock = nil }},
		{"nil meter", func(c *PollerConfig) { c.Meter = nil }},
		{"empty target", func(c *PollerConfig) { c.Target = "" }},
		{"zero signature", func(c *PollerConfig) { c.SignatureBytes = 0 }},
		{"negative interval", func(c *PollerConfig) { c.Interval = -time.Second }},
	} {
		cfg := valid
		tt.mut(&cfg)
		if _, err := NewPoller(cfg); err == nil {
			t.Errorf("%s accepted", tt.name)
		}
	}
}

// TestPollerDetectsKeyboardPopup: the poller watching the IME process
// fires when the keyboard window appears, and not before.
func TestPollerDetectsKeyboardPopup(t *testing.T) {
	st, err := sysserver.Assemble(device.Default(), 3)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	meter, err := NewMeter(st.WM)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	var firedAt time.Duration = -1
	poller, err := NewPoller(PollerConfig{
		Clock:          st.Clock,
		Meter:          meter,
		Target:         ime.Process,
		SignatureBytes: KeyboardSignature(st.Profile.ScreenW, st.Profile.ScreenH, 0.375),
		OnSignature: func(at time.Duration, delta int64) {
			if firedAt < 0 {
				firedAt = at
			}
		},
	})
	if err != nil {
		t.Fatalf("NewPoller: %v", err)
	}
	poller.Start()
	// The keyboard shows 2 s in (the user tapped a text field).
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, geom.RectWH(0, 0, float64(st.Profile.ScreenW), float64(st.Profile.ScreenH)))
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	st.Clock.MustAfter(2*time.Second, "showIME", func() {
		if _, err := ime.Show(st, kb, sess.Activity); err != nil {
			t.Errorf("ime.Show: %v", err)
		}
	})
	if err := st.Clock.RunUntil(1900 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if firedAt >= 0 {
		t.Fatal("poller fired before the keyboard appeared")
	}
	if err := st.Clock.RunUntil(3 * time.Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	poller.Stop()
	if err := st.Clock.RunFor(5 * time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if firedAt < 2*time.Second || firedAt > 2*time.Second+200*time.Millisecond {
		t.Fatalf("poller fired at %v, want shortly after 2s", firedAt)
	}
	if poller.Fired() != 1 {
		t.Fatalf("Fired = %d, want 1", poller.Fired())
	}
}

// TestSideChannelTriggersPasswordStealer is the full alternative-trigger
// pipeline from the paper's Section V remark: no accessibility service at
// all — the stealer is triggered by the shared-memory signature of the
// keyboard appearing, and still recovers the password (without the
// widget-fill nicety, which needs the accessibility node).
func TestSideChannelTriggersPasswordStealer(t *testing.T) {
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 missing")
	}
	st, err := sysserver.Assemble(p, 5)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	st.WM.GrantOverlayPermission(evilApp)
	screen := geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
	bofa, _ := apps.ByName("Bank of America")
	sess, err := bofa.NewLoginSession(st.Clock, screen)
	if err != nil {
		t.Fatalf("NewLoginSession: %v", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	stealer, err := core.NewPasswordStealer(st, core.PasswordStealerConfig{
		App: evilApp, Victim: sess, Keyboard: kb,
	})
	if err != nil {
		t.Fatalf("NewPasswordStealer: %v", err)
	}
	// NOTE: no stealer.Arm() — accessibility stays unused.
	meter, err := NewMeter(st.WM)
	if err != nil {
		t.Fatalf("NewMeter: %v", err)
	}
	poller, err := NewPoller(PollerConfig{
		Clock:          st.Clock,
		Meter:          meter,
		Target:         ime.Process,
		SignatureBytes: KeyboardSignature(p.ScreenW, p.ScreenH, 0.375),
		OnSignature:    func(time.Duration, int64) { stealer.TriggerNow() },
	})
	if err != nil {
		t.Fatalf("NewPoller: %v", err)
	}
	poller.Start()

	// The user taps the password field at 1 s; the IME shows; they type.
	st.Clock.MustAfter(time.Second, "user/focus", func() {
		if err := sess.Activity.Focus(sess.Password); err != nil {
			panic(err)
		}
		if _, err := ime.Show(st, kb, sess.Activity); err != nil {
			panic(err)
		}
	})
	const password = "pa55word"
	presses, err := kb.PlanPresses(password)
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	for i, pr := range presses {
		pr := pr
		down := 2100*time.Millisecond + time.Duration(i)*310*time.Millisecond
		st.Clock.MustAfter(down, "user/down", func() {
			gid, _, ok := st.WM.BeginGesture(pr.Key.Center())
			if !ok {
				return
			}
			st.Clock.MustAfter(50*time.Millisecond, "user/up", func() {
				if _, err := st.WM.EndGesture(gid, pr.Key.Center()); err != nil {
					t.Errorf("EndGesture: %v", err)
				}
			})
		})
	}
	end := 2100*time.Millisecond + time.Duration(len(presses))*310*time.Millisecond + time.Second
	st.Clock.MustAfter(end, "stop", func() {
		stealer.Stop()
		poller.Stop()
	})
	if err := st.Clock.RunFor(end + 10*time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if !stealer.Triggered() {
		t.Fatal("side channel never triggered the stealer")
	}
	if got := stealer.StolenPassword(); got != password {
		t.Fatalf("stolen = %q, want %q", got, password)
	}
	// Without accessibility there is no node reference: the real widget
	// stays empty (the user would notice on a real run; the paper pairs
	// this trigger with other fill strategies).
	if got := sess.Password.Text(); got != "" {
		t.Fatalf("victim widget = %q, want empty without accessibility", got)
	}
}

func TestKeyboardSignature(t *testing.T) {
	sig := KeyboardSignature(1080, 1920, 0.375)
	exact := int64(1080 * 1920 * 0.375 * BytesPerPixel)
	if sig >= exact || sig < exact/2 {
		t.Fatalf("signature %d not a sane margin below %d", sig, exact)
	}
}
