// Package sidechannel implements the alternative attack trigger the paper
// cites (Section V, reference [9], Chen et al., USENIX Security 2014): an
// unprivileged app can read another process's shared-memory counter
// through procfs and infer UI state transitions from its characteristic
// jumps, because window and view creation allocates graphics buffers that
// show up in shared memory.
//
// The simulation has a ground-truth side: a Meter that maintains per-
// process "shared VM" counters from window attach/detach events (each
// window accounts for a width×height×4-byte buffer). The attacker side is
// a Poller that samples a victim-visible counter at a fixed interval —
// exactly what reading /proc/<pid>/statm permits — and fires when it sees
// a positive jump matching a target signature, such as the software
// keyboard window appearing when a password field takes focus.
package sidechannel

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/simclock"
	"repro/internal/wm"
)

// BytesPerPixel is the RGBA graphics-buffer footprint per pixel.
const BytesPerPixel = 4

// Meter is the procfs ground truth: per-process shared-memory counters
// driven by window lifecycle events.
type Meter struct {
	shared map[binder.ProcessID]int64
}

// NewMeter builds a Meter and subscribes it to the window manager.
func NewMeter(m *wm.Manager) (*Meter, error) {
	if m == nil {
		return nil, errors.New("sidechannel: nil window manager")
	}
	meter := &Meter{shared: make(map[binder.ProcessID]int64)}
	m.OnWindowEvent(meter.observe)
	return meter, nil
}

func bufferBytes(w wm.Window) int64 {
	return int64(w.Bounds.W()) * int64(w.Bounds.H()) * BytesPerPixel
}

func (m *Meter) observe(ev wm.WindowEvent) {
	switch ev.Kind {
	case wm.WindowAdded:
		m.shared[ev.Window.Owner] += bufferBytes(ev.Window)
	case wm.WindowRemoved:
		m.shared[ev.Window.Owner] -= bufferBytes(ev.Window)
		if m.shared[ev.Window.Owner] <= 0 {
			delete(m.shared, ev.Window.Owner)
		}
	}
}

// SharedVM reports the process's current shared-memory counter in bytes —
// what /proc/<pid>/statm exposes.
func (m *Meter) SharedVM(p binder.ProcessID) int64 { return m.shared[p] }

// PollerConfig configures the attacker-side inference.
type PollerConfig struct {
	// Clock drives polling; required.
	Clock *simclock.Clock
	// Meter is the procfs the poller reads; required.
	Meter *Meter
	// Target is the process whose counter is watched (e.g. the IME
	// process: its buffer appears when a text field takes focus).
	Target binder.ProcessID
	// Interval is the polling period; zero selects 30 ms — fast enough
	// to catch a keyboard popup, slow enough to be an unremarkable
	// procfs reader.
	Interval time.Duration
	// SignatureBytes is the minimum positive jump that counts as the
	// target UI transition (e.g. the keyboard buffer size).
	SignatureBytes int64
	// OnSignature fires once per matching jump.
	OnSignature func(at time.Duration, deltaBytes int64)
}

// Poller samples the target's shared VM and detects signature jumps.
type Poller struct {
	cfg     PollerConfig
	last    int64
	fired   uint64
	stopped bool
}

// NewPoller validates the configuration.
func NewPoller(cfg PollerConfig) (*Poller, error) {
	if cfg.Clock == nil {
		return nil, errors.New("sidechannel: nil clock")
	}
	if cfg.Meter == nil {
		return nil, errors.New("sidechannel: nil meter")
	}
	if cfg.Target == "" {
		return nil, errors.New("sidechannel: empty target process")
	}
	if cfg.Interval == 0 {
		cfg.Interval = 30 * time.Millisecond
	}
	if cfg.Interval < 0 {
		return nil, fmt.Errorf("sidechannel: negative interval %v", cfg.Interval)
	}
	if cfg.SignatureBytes <= 0 {
		return nil, fmt.Errorf("sidechannel: non-positive signature %d", cfg.SignatureBytes)
	}
	return &Poller{cfg: cfg}, nil
}

// Start begins polling. The first sample establishes the baseline.
func (p *Poller) Start() {
	p.last = p.cfg.Meter.SharedVM(p.cfg.Target)
	p.schedule()
}

func (p *Poller) schedule() {
	p.cfg.Clock.MustAfter(p.cfg.Interval, "sidechannel/poll", func() {
		if p.stopped {
			return
		}
		cur := p.cfg.Meter.SharedVM(p.cfg.Target)
		if delta := cur - p.last; delta >= p.cfg.SignatureBytes {
			p.fired++
			if p.cfg.OnSignature != nil {
				p.cfg.OnSignature(p.cfg.Clock.Now(), delta)
			}
		}
		p.last = cur
		p.schedule()
	})
}

// Stop halts polling.
func (p *Poller) Stop() { p.stopped = true }

// Fired reports how many signature jumps were detected.
func (p *Poller) Fired() uint64 { return p.fired }

// KeyboardSignature estimates the signature bytes for a keyboard covering
// the given fraction of a w×h screen — the jump the IME's window buffer
// produces when it appears. The poller should use a margin below the
// exact size (e.g. 80%) to tolerate layout variation.
func KeyboardSignature(screenW, screenH int, fraction float64) int64 {
	return int64(float64(screenW) * float64(screenH) * fraction * BytesPerPixel * 0.8)
}
