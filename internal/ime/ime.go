// Package ime simulates the real software keyboard (input method editor)
// the victim types on. The IME is a touchable TypeInputMethod window; it
// commits a key on the gesture's UP event, tracks its own sub-keyboard
// state, and feeds characters into the focused widget of the foreground
// activity.
//
// In the password-stealing attack the IME sits *under* the attacker's
// transparent overlays: touches the attack captures never reach it, and
// touches that slip through a mistouch gap land here — producing exactly
// the divergence between what the user typed, what the victim app
// received, and what the attacker inferred that the paper's Table III
// error taxonomy describes.
package ime

import (
	"errors"
	"fmt"

	"repro/internal/binder"
	"repro/internal/keyboard"
	"repro/internal/sysserver"
	"repro/internal/uikit"
	"repro/internal/wm"
)

// Process is the IME's package/process name.
const Process binder.ProcessID = "com.android.inputmethod.latin"

// IME is a shown software keyboard bound to an activity.
type IME struct {
	stack *sysserver.Stack
	kb    *keyboard.Keyboard
	act   *uikit.Activity

	board   keyboard.Board
	shown   bool
	pressed uint64 // committed keys
}

// Show attaches the keyboard window for the given activity. The keyboard
// geometry kb defines both the visuals and the hit targets.
func Show(stack *sysserver.Stack, kb *keyboard.Keyboard, act *uikit.Activity) (*IME, error) {
	if stack == nil {
		return nil, errors.New("ime: nil stack")
	}
	if kb == nil {
		return nil, errors.New("ime: nil keyboard")
	}
	if act == nil {
		return nil, errors.New("ime: nil activity")
	}
	m := &IME{stack: stack, kb: kb, act: act, board: keyboard.BoardLower}
	if _, err := stack.Bus.Call(Process, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
		Handle:  1,
		Type:    wm.TypeInputMethod,
		Bounds:  kb.Bounds(),
		OnTouch: m.onTouch,
	}); err != nil {
		return nil, fmt.Errorf("ime: addView: %w", err)
	}
	m.shown = true
	return m, nil
}

// Hide detaches the keyboard window.
func (m *IME) Hide() error {
	if !m.shown {
		return nil
	}
	m.shown = false
	if _, err := m.stack.Bus.Call(Process, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{Handle: 1}); err != nil {
		return fmt.Errorf("ime: removeView: %w", err)
	}
	return nil
}

// Board reports the IME's current sub-keyboard.
func (m *IME) Board() keyboard.Board { return m.board }

// Committed reports how many keys the IME has committed to the activity.
func (m *IME) Committed() uint64 { return m.pressed }

// onTouch commits keys on UP: a canceled gesture (the finger's window was
// removed mid-press — impossible for the IME itself, but part of the
// handler contract) commits nothing.
func (m *IME) onTouch(ev wm.TouchEvent) {
	if ev.Action != wm.ActionUp {
		return
	}
	key, ok := m.kb.KeyAt(m.board, ev.Pos)
	if !ok {
		key = m.kb.NearestKey(m.board, ev.Pos)
	}
	m.commit(key)
}

func (m *IME) commit(key keyboard.Key) {
	switch key.Kind {
	case keyboard.KindChar, keyboard.KindSpace:
		// Typing without focus can happen if the activity lost focus
		// mid-session; the IME drops the key, as Android does.
		if err := m.act.TypeRune(key.Out); err == nil {
			m.pressed++
		}
	case keyboard.KindBackspace:
		if err := m.act.Backspace(); err == nil {
			m.pressed++
		}
	case keyboard.KindEnter:
		m.pressed++
	}
	m.board = keyboard.Next(m.board, key)
}
