package ime

import (
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/keyboard"
	"repro/internal/sysserver"
	"repro/internal/uikit"
)

func setup(t *testing.T) (*sysserver.Stack, *keyboard.Keyboard, *uikit.Activity, *uikit.View) {
	t.Helper()
	st, err := sysserver.Assemble(device.Default(), 1)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	screen := geom.RectWH(0, 0, float64(st.Profile.ScreenW), float64(st.Profile.ScreenH))
	kb, err := keyboard.New(geom.RectWH(0, 0.625*screen.H(), screen.W(), 0.375*screen.H()))
	if err != nil {
		t.Fatalf("keyboard.New: %v", err)
	}
	root := uikit.NewView("root", "LinearLayout", screen)
	field := root.AddChild(uikit.NewView("field", "EditText", geom.RectWH(40, 300, 900, 120)))
	act, err := uikit.NewActivity(st.Clock, "com.app", root)
	if err != nil {
		t.Fatalf("NewActivity: %v", err)
	}
	if err := act.Focus(field); err != nil {
		t.Fatalf("Focus: %v", err)
	}
	return st, kb, act, field
}

func TestShowValidation(t *testing.T) {
	st, kb, act, _ := setup(t)
	if _, err := Show(nil, kb, act); err == nil {
		t.Fatal("nil stack accepted")
	}
	if _, err := Show(st, nil, act); err == nil {
		t.Fatal("nil keyboard accepted")
	}
	if _, err := Show(st, kb, nil); err == nil {
		t.Fatal("nil activity accepted")
	}
}

func TestShowAttachesWindow(t *testing.T) {
	st, kb, act, _ := setup(t)
	m, err := Show(st, kb, act)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.WM.WindowCount(); got != 1 {
		t.Fatalf("windows = %d, want 1", got)
	}
	if m.Board() != keyboard.BoardLower {
		t.Fatalf("initial board = %v", m.Board())
	}
	if err := m.Hide(); err != nil {
		t.Fatalf("Hide: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	if got := st.WM.WindowCount(); got != 0 {
		t.Fatalf("windows after hide = %d, want 0", got)
	}
	// Hide twice is a no-op.
	if err := m.Hide(); err != nil {
		t.Fatalf("second Hide: %v", err)
	}
}

// tap performs a full gesture at p once the IME window is attached.
func tap(t *testing.T, st *sysserver.Stack, p geom.Point) {
	t.Helper()
	gid, _, ok := st.WM.BeginGesture(p)
	if !ok {
		t.Fatalf("tap at %v hit nothing", p)
	}
	if _, err := st.WM.EndGesture(gid, p); err != nil {
		t.Fatalf("EndGesture: %v", err)
	}
}

func TestTypingCommitsOnUp(t *testing.T) {
	st, kb, act, field := setup(t)
	m, err := Show(st, kb, act)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	h, _ := kb.FindKey(keyboard.BoardLower, "h")
	i, _ := kb.FindKey(keyboard.BoardLower, "i")
	// DOWN alone must not commit.
	gid, _, ok := st.WM.BeginGesture(h.Center())
	if !ok {
		t.Fatal("tap missed IME")
	}
	if field.Text() != "" {
		t.Fatal("committed on DOWN")
	}
	if _, err := st.WM.EndGesture(gid, h.Center()); err != nil {
		t.Fatalf("EndGesture: %v", err)
	}
	tap(t, st, i.Center())
	if got := field.Text(); got != "hi" {
		t.Fatalf("text = %q, want hi", got)
	}
	if m.Committed() != 2 {
		t.Fatalf("Committed = %d, want 2", m.Committed())
	}
}

func TestBoardSwitching(t *testing.T) {
	st, kb, act, field := setup(t)
	m, err := Show(st, kb, act)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	shift, _ := kb.FindKey(keyboard.BoardLower, "⇧")
	tap(t, st, shift.Center())
	if m.Board() != keyboard.BoardUpper {
		t.Fatalf("board after shift = %v", m.Board())
	}
	upperA, _ := kb.FindKey(keyboard.BoardUpper, "A")
	tap(t, st, upperA.Center())
	if field.Text() != "A" {
		t.Fatalf("text = %q, want A", field.Text())
	}
	// One-shot shift reverted.
	if m.Board() != keyboard.BoardLower {
		t.Fatalf("board after upper char = %v, want lower", m.Board())
	}
	sym, _ := kb.FindKey(keyboard.BoardLower, "?123")
	tap(t, st, sym.Center())
	if m.Board() != keyboard.BoardSymbols {
		t.Fatalf("board after ?123 = %v", m.Board())
	}
	seven, _ := kb.FindKey(keyboard.BoardSymbols, "7")
	tap(t, st, seven.Center())
	if field.Text() != "A7" {
		t.Fatalf("text = %q, want A7", field.Text())
	}
}

func TestBackspaceAndEnter(t *testing.T) {
	st, kb, act, field := setup(t)
	m, err := Show(st, kb, act)
	if err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	a, _ := kb.FindKey(keyboard.BoardLower, "a")
	bs, _ := kb.FindKey(keyboard.BoardLower, "⌫")
	enter, _ := kb.FindKey(keyboard.BoardLower, "⏎")
	tap(t, st, a.Center())
	tap(t, st, a.Center())
	tap(t, st, bs.Center())
	tap(t, st, enter.Center())
	if field.Text() != "a" {
		t.Fatalf("text = %q, want a", field.Text())
	}
	if m.Committed() != 4 {
		t.Fatalf("Committed = %d, want 4", m.Committed())
	}
}

// TestTypingFullPassword drives the planned keystrokes for a multi-board
// password through real gestures and checks the widget receives it.
func TestTypingFullPassword(t *testing.T) {
	st, kb, act, field := setup(t)
	if _, err := Show(st, kb, act); err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	const password = "aB3$x"
	presses, err := kb.PlanPresses(password)
	if err != nil {
		t.Fatalf("PlanPresses: %v", err)
	}
	for _, pr := range presses {
		tap(t, st, pr.Key.Center())
	}
	if got := field.Text(); got != password {
		t.Fatalf("widget = %q, want %q", got, password)
	}
}

// TestOffKeyTouchSnapsToNearest: a touch between keys still commits the
// nearest key, like a real soft keyboard's touch model.
func TestOffKeyTouchSnapsToNearest(t *testing.T) {
	st, kb, act, field := setup(t)
	if _, err := Show(st, kb, act); err != nil {
		t.Fatalf("Show: %v", err)
	}
	if err := st.Clock.RunFor(time.Second); err != nil {
		t.Fatalf("RunFor: %v", err)
	}
	g, _ := kb.FindKey(keyboard.BoardLower, "g")
	// Just outside g's rect but nearest to it (1 px below its bottom
	// edge, inside the keyboard area).
	p := geom.Pt(g.Center().X, g.Bounds.Max.Y+1)
	tap(t, st, p)
	if got := field.Text(); got != "g" && got != "v" && got != "b" {
		t.Fatalf("text = %q, want the key nearest the touch", got)
	}
}
