package vetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/appstore"
	"repro/internal/defense"
	"repro/internal/dexir"
)

// testApp builds a tiny distinct benign app.
func testApp(i int) *dexir.App {
	pkg := fmt.Sprintf("com.test.app%03d", i)
	cls := dexir.ClassName(pkg, "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	return &dexir.App{
		Package: pkg,
		Classes: []dexir.Class{{Name: cls, Methods: []dexir.Method{
			{Ref: onCreate, Body: []dexir.Instruction{{Op: dexir.OpNop}}},
		}}},
		Components: []dexir.Component{
			{Name: cls, Kind: dexir.Activity, EntryPoints: []dexir.MethodRef{onCreate}},
		},
	}
}

func postJSON(t *testing.T, s *Server, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func getPath(s *Server, path string) *httptest.ResponseRecorder {
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, req)
	return rec
}

func decodeVerdict(t *testing.T, rec *httptest.ResponseRecorder) Verdict {
	t.Helper()
	var v Verdict
	if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
		t.Fatalf("decode verdict: %v (body %q)", err, rec.Body.String())
	}
	return v
}

// corpusApps pulls a slice of realistic apps (benign and capable) from
// the shared seeded corpus.
func corpusApps(t *testing.T, n int) []appstore.APK {
	t.Helper()
	apks, err := appstore.GenerateApps(42, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return apks
}

func TestVetServesDefenseVerdicts(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	deny := 0
	for _, apk := range corpusApps(t, 200) {
		rec := postJSON(t, s, "/v1/vet", VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", apk.Package, rec.Code, rec.Body.String())
		}
		got := decodeVerdict(t, rec)
		want, err := defense.Vet(apk.IR)
		if err != nil {
			t.Fatal(err)
		}
		wantHash, _ := HashIR(apk.IR)
		gotCore, _ := got.Core()
		wantCore, _ := NewVerdict(want, wantHash, false).Core()
		if !bytes.Equal(gotCore, wantCore) {
			t.Fatalf("%s: served verdict differs from direct defense.Vet:\n%s\nvs\n%s",
				apk.Package, gotCore, wantCore)
		}
		if got.IRHash != wantHash {
			t.Fatalf("%s: hash %s, want %s", apk.Package, got.IRHash, wantHash)
		}
		if !got.Allow {
			deny++
		}
	}
	if deny == 0 {
		t.Error("no deny verdicts in 200 corpus apps; corpus slice too benign to exercise findings")
	}
}

func TestVetCacheHitIsByteIdenticalOnCore(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	app := corpusApps(t, 1)[0].IR
	first := decodeVerdict(t, postJSON(t, s, "/v1/vet", VetRequest{App: app}))
	second := decodeVerdict(t, postJSON(t, s, "/v1/vet", VetRequest{App: app}))
	if first.Cached || !second.Cached {
		t.Fatalf("cached flags = %v, %v; want false, true", first.Cached, second.Cached)
	}
	a, _ := first.Core()
	b, _ := second.Core()
	if !bytes.Equal(a, b) {
		t.Fatalf("hit and miss cores differ:\n%s\nvs\n%s", a, b)
	}
	m := s.Metrics()
	if m.Hits.Load() != 1 || m.Misses.Load() != 1 || m.Requests.Load() != 2 {
		t.Fatalf("counters hits=%d misses=%d requests=%d", m.Hits.Load(), m.Misses.Load(), m.Requests.Load())
	}
}

func TestBatchPreservesOrderAndCoalesces(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	apks := corpusApps(t, 8)
	apps := make([]*dexir.App, 0, 10)
	for _, a := range apks {
		apps = append(apps, a.IR)
	}
	apps = append(apps, apks[0].IR, apks[3].IR) // duplicates
	rec := postJSON(t, s, "/v1/vet/batch", BatchRequest{Apps: apps})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Verdicts) != len(apps) {
		t.Fatalf("%d verdicts, want %d", len(resp.Verdicts), len(apps))
	}
	for i, item := range resp.Verdicts {
		if item.Status != http.StatusOK || item.Verdict == nil {
			t.Fatalf("item %d: %+v", i, item)
		}
		if item.Verdict.Package != apps[i].Package {
			t.Fatalf("item %d: package %s, want %s (order not preserved)", i, item.Verdict.Package, apps[i].Package)
		}
	}
	// The duplicates must not have cost extra analyses.
	if got := s.Metrics().Analyses.Load(); got != uint64(len(apks)) {
		t.Fatalf("%d analyses for %d distinct apps", got, len(apks))
	}
	m := s.Metrics()
	if m.Requests.Load() != uint64(len(apps)) {
		t.Fatalf("requests %d, want %d (batch items must classify individually)", m.Requests.Load(), len(apps))
	}
	if m.Hits.Load()+m.Misses.Load()+m.Sheds.Load() != m.Requests.Load() {
		t.Fatalf("accounting broken: %+v", m.Snapshot())
	}
}

func TestBadRequests(t *testing.T) {
	s := New(Config{MaxBatch: 4})
	defer s.Close()
	cases := []struct {
		name string
		do   func() *httptest.ResponseRecorder
	}{
		{"garbage body", func() *httptest.ResponseRecorder {
			req := httptest.NewRequest("POST", "/v1/vet", strings.NewReader("{nope"))
			rec := httptest.NewRecorder()
			s.ServeHTTP(rec, req)
			return rec
		}},
		{"missing app", func() *httptest.ResponseRecorder {
			return postJSON(t, s, "/v1/vet", VetRequest{})
		}},
		{"empty batch", func() *httptest.ResponseRecorder {
			return postJSON(t, s, "/v1/vet/batch", BatchRequest{})
		}},
		{"oversized batch", func() *httptest.ResponseRecorder {
			apps := make([]*dexir.App, 5)
			for i := range apps {
				apps[i] = testApp(i)
			}
			return postJSON(t, s, "/v1/vet/batch", BatchRequest{Apps: apps})
		}},
	}
	for _, tc := range cases {
		if rec := tc.do(); rec.Code != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, rec.Code)
		}
	}
	if got := s.Metrics().BadRequests.Load(); got != uint64(len(cases)) {
		t.Errorf("bad request counter %d, want %d", got, len(cases))
	}
	if s.Metrics().Requests.Load() != 0 {
		t.Error("bad requests leaked into the classified request counter")
	}
}

func TestOverloadShedsWithRetryAfter(t *testing.T) {
	block := make(chan struct{})
	s := newServer(Config{Workers: 1, QueueDepth: 1, RetryAfter: 3 * time.Second},
		func(app *dexir.App) (defense.VetVerdict, error) {
			<-block
			return defense.VetVerdict{Package: app.Package, Allow: true}, nil
		})
	defer s.Close()
	defer close(block)

	const n = 8
	codes := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := postJSON(t, s, "/v1/vet?deadline_ms=300", VetRequest{App: testApp(i)})
			codes[i] = rec.Code
			if rec.Code == http.StatusTooManyRequests {
				if rec.Header().Get("Retry-After") != "3" {
					t.Errorf("Retry-After = %q, want 3", rec.Header().Get("Retry-After"))
				}
				var er ErrorResponse
				if err := json.Unmarshal(rec.Body.Bytes(), &er); err != nil || er.RetryAfterSec != 3 {
					t.Errorf("shed body %q", rec.Body.String())
				}
			}
		}(i)
	}
	wg.Wait()
	sheds := 0
	for _, c := range codes {
		if c == http.StatusTooManyRequests {
			sheds++
		}
	}
	// Distinct apps, 1 worker stuck + 1 queue slot: at least n-2 requests
	// must shed rather than queue without bound.
	if sheds < n-2 {
		t.Fatalf("only %d/%d requests shed under overload (codes %v)", sheds, n, codes)
	}
	m := s.Metrics()
	if m.Hits.Load()+m.Misses.Load()+m.Sheds.Load() != m.Requests.Load() {
		t.Fatalf("accounting broken under overload: %+v", m.Snapshot())
	}
	if m.Sheds.Load() != uint64(sheds) {
		t.Fatalf("shed counter %d, want %d", m.Sheds.Load(), sheds)
	}
}

func TestDeadlineExpiresWith504(t *testing.T) {
	release := make(chan struct{})
	s := newServer(Config{Workers: 1, Deadline: 30 * time.Millisecond},
		func(app *dexir.App) (defense.VetVerdict, error) {
			<-release
			return defense.VetVerdict{Package: app.Package, Allow: true}, nil
		})
	defer s.Close()
	start := time.Now()
	rec := postJSON(t, s, "/v1/vet", VetRequest{App: testApp(0)})
	close(release)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504 (body %s)", rec.Code, rec.Body.String())
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline of 30ms enforced only after %v", elapsed)
	}
	m := s.Metrics()
	if m.Expired.Load() != 1 || m.Misses.Load() != 1 {
		t.Fatalf("expired=%d misses=%d, want 1/1", m.Expired.Load(), m.Misses.Load())
	}
}

func TestClientCannotRaiseDeadline(t *testing.T) {
	release := make(chan struct{})
	s := newServer(Config{Workers: 1, Deadline: 30 * time.Millisecond},
		func(app *dexir.App) (defense.VetVerdict, error) {
			<-release
			return defense.VetVerdict{}, nil
		})
	defer s.Close()
	start := time.Now()
	rec := postJSON(t, s, "/v1/vet?deadline_ms=60000", VetRequest{App: testApp(0)})
	close(release)
	if rec.Code != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504", rec.Code)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("client raised the server deadline")
	}
}

func TestLRUEviction(t *testing.T) {
	s := New(Config{CacheCapacity: 4, CacheShards: 1})
	defer s.Close()
	for i := 0; i < 8; i++ {
		postJSON(t, s, "/v1/vet", VetRequest{App: testApp(i)})
	}
	if ev := s.cache.Evictions(); ev != 4 {
		t.Fatalf("evictions %d, want 4", ev)
	}
	if n := s.cache.Len(); n != 4 {
		t.Fatalf("cache holds %d, want 4", n)
	}
	// The oldest entries are gone: re-requesting app 0 must miss again.
	rec := postJSON(t, s, "/v1/vet", VetRequest{App: testApp(0)})
	if decodeVerdict(t, rec).Cached {
		t.Fatal("evicted entry served as cache hit")
	}
}

func TestObservabilityEndpoints(t *testing.T) {
	var logs bytes.Buffer
	s := New(Config{LogWriter: &logs})
	defer s.Close()
	app := corpusApps(t, 1)[0].IR
	postJSON(t, s, "/v1/vet", VetRequest{App: app})
	postJSON(t, s, "/v1/vet", VetRequest{App: app})

	if rec := getPath(s, "/healthz"); rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), `"status":"ok"`) {
		t.Fatalf("healthz: %d %q", rec.Code, rec.Body.String())
	}

	rec := getPath(s, "/metrics")
	body := rec.Body.String()
	for _, want := range []string{
		"vetd_requests_total 2",
		"vetd_cache_hits_total 1",
		"vetd_cache_misses_total 1",
		"vetd_shed_total 0",
		"vetd_queue_depth 0",
		`vetd_http_requests_total{endpoint="vet"} 2`,
		`vetd_latency_seconds_bucket{stage="total",le="+Inf"} 2`,
		`vetd_latency_seconds_count{stage="analyze"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}

	var st Stats
	if err := json.Unmarshal(getPath(s, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Requests != 2 || st.Hits != 1 || st.HitRate != 0.5 {
		t.Fatalf("stats %+v", st)
	}

	// Structured logs: one JSON line per vet request with the fields the
	// ops side keys on.
	lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d log lines, want 2: %q", len(lines), logs.String())
	}
	var rl requestLog
	if err := json.Unmarshal([]byte(lines[1]), &rl); err != nil {
		t.Fatal(err)
	}
	if rl.Outcome != outcomeHit || rl.Package != app.Package || rl.IRHash == "" || rl.Status != 200 {
		t.Fatalf("log line %+v", rl)
	}
}

func TestHashIRStability(t *testing.T) {
	a := testApp(1)
	h1, err := HashIR(a)
	if err != nil {
		t.Fatal(err)
	}
	// Round-tripping through the wire encoding must not change the hash:
	// that is what makes the client's IR and the server's decoded IR
	// share a cache identity.
	b, _ := json.Marshal(a)
	var back dexir.App
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	h2, err := HashIR(&back)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash changed across JSON round trip: %s vs %s", h1, h2)
	}
	h3, _ := HashIR(testApp(2))
	if h3 == h1 {
		t.Fatal("distinct apps share a hash")
	}
	if _, err := HashIR(nil); err == nil {
		t.Fatal("nil app hashed")
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{})
	s.Close()
	rec := postJSON(t, s, "/v1/vet", VetRequest{App: testApp(0)})
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d after Close, want 503", rec.Code)
	}
}
