// Package vetd is the scan-before-install vetting service: the paper's
// §VII static defense (defense.Vet over dexir call-graph analysis),
// lifted from a batch CLI into a long-running HTTP server that answers
// verdict queries at install-traffic rates. It is the repository's first
// wall-clock serving layer — simlint's ServingPackages allowlist exempts
// it from the simulation determinism rules — and is built from four
// layers:
//
//  1. a sharded, content-addressed verdict cache (Cache) keyed by the
//     SHA-256 of the app's IR plus the configured analysis tier, with
//     LRU eviction,
//  2. an admission layer with a bounded queue, per-request deadlines and
//     explicit load shedding (429 + Retry-After) so overload degrades
//     gracefully instead of collapsing,
//  3. an analysis pool (pool) that coalesces duplicate in-flight
//     requests per IR hash and fans work onto bounded workers running
//     defense.Vet,
//  4. an observability layer (Metrics) exposing Prometheus text metrics,
//     a JSON stats snapshot and structured per-request logs.
//
// Endpoints: POST /v1/vet, POST /v1/vet/batch, GET /healthz,
// GET /metrics, GET /stats. cmd/vetd serves it; cmd/vetload is the
// deterministic load generator whose -check mode proves every served
// verdict byte-identical to a direct defense.Vet call.
package vetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"strconv"
	"time"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/staticanalysis"
	"repro/internal/vetstore"
)

// Config tunes a Server. The zero value selects the documented defaults.
type Config struct {
	// CacheCapacity bounds the verdict cache, in entries (default 8192;
	// negative disables caching).
	CacheCapacity int
	// CacheShards is the verdict cache's shard count (default 16).
	CacheShards int
	// QueueDepth bounds the analysis admission queue; a full queue sheds
	// with 429 (default 256).
	QueueDepth int
	// Workers is the analysis pool size (default GOMAXPROCS).
	Workers int
	// Deadline is the per-request analysis deadline; clients may lower
	// (never raise) it per request with ?deadline_ms=N (default 2s).
	Deadline time.Duration
	// MaxBatch bounds the apps per batch request (default 256).
	MaxBatch int
	// RetryAfter is the hint returned with 429 sheds (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64
	// LogWriter, when non-nil, receives one structured JSON line per vet
	// request.
	LogWriter io.Writer
	// Tier is the static precision tier every analysis runs at (default
	// Tier0, the paper baseline). The tier is part of every cache and
	// coalescing key, so restarting at a different tier can never serve a
	// verdict computed at the old one.
	Tier staticanalysis.Tier
	// Store, when non-nil, is the crash-safe persistent verdict store
	// (internal/vetstore) behind the in-memory cache: every completed
	// analysis is appended and fsynced, and a cache miss consults the
	// store before admitting an analysis. A node SIGKILLed and restarted
	// on the same store serves its recovered verdicts byte-for-byte
	// without re-analyzing. The caller owns the store's lifecycle (Open
	// before New, Close after Server.Close).
	Store *vetstore.Store
}

func (c Config) withDefaults() Config {
	if c.CacheCapacity == 0 {
		c.CacheCapacity = 8192
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	return c
}

// Server is the vetting service; it implements http.Handler.
type Server struct {
	cfg     Config
	cache   *Cache
	store   *vetstore.Store
	pool    *pool
	metrics *Metrics
	logger  *requestLogger
	mux     *http.ServeMux
}

// New assembles a server and starts its analysis workers. Callers must
// Close it to stop them.
func New(cfg Config) *Server {
	return newServer(cfg, func(app *dexir.App) (defense.VetVerdict, error) {
		return defense.VetTier(app, cfg.Tier)
	})
}

// newServer is New with an injectable analysis function (tests count and
// slow it down).
func newServer(cfg Config, analyze func(*dexir.App) (defense.VetVerdict, error)) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:     cfg,
		cache:   NewCache(cfg.CacheCapacity, cfg.CacheShards),
		store:   cfg.Store,
		metrics: &Metrics{},
		logger:  newRequestLogger(cfg.LogWriter),
		mux:     http.NewServeMux(),
	}
	s.pool = newPool(cfg.Workers, cfg.QueueDepth, s.cache, s.store, s.metrics, analyze)
	s.metrics.QueueDepth = s.pool.depth
	s.metrics.CacheEntries = s.cache.Len
	s.metrics.CacheEvictions = s.cache.Evictions
	if s.store != nil {
		s.metrics.StoreEntries = s.store.Len
	}
	s.mux.HandleFunc("POST /v1/vet", s.handleVet)
	s.mux.HandleFunc("POST /v1/vet/batch", s.handleBatch)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /readyz", s.handleReadyz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	return s
}

// Metrics exposes the server's counters (read-only use).
func (s *Server) Metrics() *Metrics { return s.metrics }

// Close stops admission and waits for in-flight analyses to finish.
func (s *Server) Close() { s.pool.close() }

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// outcome labels for logs and tests.
const (
	outcomeHit      = "hit"
	outcomeStoreHit = "store-hit"
	outcomeMiss     = "miss"
	outcomeShed     = "shed"
	outcomeExpired  = "expired"
	outcomeError    = "error"
)

// vetOne classifies and resolves a single parsed app: Requests++, then
// exactly one of cache hit, pool admission (miss) or shed. It returns
// the wire verdict, the HTTP-style status and the outcome label.
func (s *Server) vetOne(ctx context.Context, app *dexir.App) (Verdict, int, string, error) {
	hash, err := HashIR(app)
	if err != nil {
		return Verdict{}, http.StatusBadRequest, outcomeError, err
	}
	// The raw IR hash is the wire-visible content address; the cache and
	// the in-flight coalescing map key on (hash, tier) so a tier change
	// can never surface a stale verdict.
	key := VerdictKey(hash, s.cfg.Tier)
	s.metrics.Requests.Add(1)
	if v, ok := s.cache.Get(key); ok {
		s.metrics.Hits.Add(1)
		s.countVerdict(v)
		return NewVerdict(v, hash, true), http.StatusOK, outcomeHit, nil
	}
	// Memory miss: consult the persistent store before spending an
	// analysis. A restarted node answers its recovered keyspace here —
	// counted as a Hit (subset StoreHits) so the exclusive classification
	// hits+misses+sheds == requests is preserved — and the verdict is
	// promoted into the memory cache for the next request.
	if s.store != nil {
		if v, ok, serr := s.store.Get(key); serr == nil && ok {
			s.cache.Put(key, v)
			s.metrics.Hits.Add(1)
			s.metrics.StoreHits.Add(1)
			s.countVerdict(v)
			return NewVerdict(v, hash, true), http.StatusOK, outcomeStoreHit, nil
		} else if serr != nil {
			s.metrics.StoreErrors.Add(1)
		}
	}
	v, lateHit, err := s.pool.vet(ctx, key, app)
	switch {
	case errors.Is(err, ErrShed):
		return Verdict{IRHash: hash}, http.StatusTooManyRequests, outcomeShed, err
	case errors.Is(err, ErrClosed):
		return Verdict{IRHash: hash}, http.StatusServiceUnavailable, outcomeError, err
	case errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled):
		return Verdict{IRHash: hash}, http.StatusGatewayTimeout, outcomeExpired, err
	case err != nil:
		return Verdict{IRHash: hash}, http.StatusInternalServerError, outcomeError, err
	}
	s.countVerdict(v)
	if lateHit {
		return NewVerdict(v, hash, true), http.StatusOK, outcomeHit, nil
	}
	return NewVerdict(v, hash, false), http.StatusOK, outcomeMiss, nil
}

func (s *Server) countVerdict(v defense.VetVerdict) {
	if v.Allow {
		s.metrics.Allows.Add(1)
	} else {
		s.metrics.Denies.Add(1)
	}
}

// deadlineFor derives the request context: the configured deadline,
// lowered (never raised) by an optional ?deadline_ms=N.
func (s *Server) deadlineFor(r *http.Request) (context.Context, context.CancelFunc) {
	d := s.cfg.Deadline
	if raw := r.URL.Query().Get("deadline_ms"); raw != "" {
		if ms, err := strconv.Atoi(raw); err == nil && ms > 0 {
			if cd := time.Duration(ms) * time.Millisecond; cd < d {
				d = cd
			}
		}
	}
	return context.WithTimeout(r.Context(), d)
}

func (s *Server) handleVet(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.VetCalls.Add(1)
	var req VetRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, start, err)
		return
	}
	if req.App == nil || req.App.Package == "" {
		s.badRequest(w, start, fmt.Errorf("vetd: request carries no app IR"))
		return
	}
	s.metrics.DecodeLatency.Observe(time.Since(start))
	ctx, cancel := s.deadlineFor(r)
	defer cancel()
	v, status, outcome, err := s.vetOne(ctx, req.App)
	if status != http.StatusOK {
		s.writeError(w, status, err)
	} else {
		s.writeJSON(w, status, v)
	}
	lat := time.Since(start)
	s.metrics.TotalLatency.Observe(lat)
	rec := requestLog{
		Time:      start.UTC().Format(time.RFC3339Nano),
		Endpoint:  "vet",
		IRHash:    v.IRHash,
		Package:   req.App.Package,
		Outcome:   outcome,
		Status:    status,
		LatencyUS: lat.Microseconds(),
	}
	if status == http.StatusOK {
		allow := v.Allow
		rec.Allow = &allow
	}
	s.logger.log(rec)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	s.metrics.BatchCalls.Add(1)
	var req BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		s.badRequest(w, start, err)
		return
	}
	if len(req.Apps) == 0 {
		s.badRequest(w, start, fmt.Errorf("vetd: empty batch"))
		return
	}
	if len(req.Apps) > s.cfg.MaxBatch {
		s.badRequest(w, start, fmt.Errorf("vetd: batch of %d exceeds limit %d", len(req.Apps), s.cfg.MaxBatch))
		return
	}
	s.metrics.DecodeLatency.Observe(time.Since(start))
	ctx, cancel := s.deadlineFor(r)
	defer cancel()

	// Fan the items onto the shared pool concurrently — a batch's
	// duplicates coalesce just like cross-client duplicates — and
	// assemble per-item results in request order.
	items := make([]BatchItem, len(req.Apps))
	done := make(chan int, len(req.Apps))
	for i := range req.Apps {
		go func(i int) {
			app := req.Apps[i]
			if app == nil || app.Package == "" {
				s.metrics.BadRequests.Add(1)
				items[i] = BatchItem{Status: http.StatusBadRequest, Error: "no app IR"}
			} else if v, status, _, err := s.vetOne(ctx, app); err != nil {
				items[i] = BatchItem{Status: status, Error: err.Error()}
			} else {
				items[i] = BatchItem{Status: status, Verdict: &v}
			}
			done <- i
		}(i)
	}
	for range req.Apps {
		<-done
	}
	s.writeJSON(w, http.StatusOK, BatchResponse{Verdicts: items})
	lat := time.Since(start)
	s.metrics.TotalLatency.Observe(lat)
	s.logger.log(requestLog{
		Time:      start.UTC().Format(time.RFC3339Nano),
		Endpoint:  "batch",
		Outcome:   fmt.Sprintf("batch[%d]", len(req.Apps)),
		Status:    http.StatusOK,
		LatencyUS: lat.Microseconds(),
	})
}

// handleHealthz is pure liveness: the process is up and answering HTTP.
// It stays 200 even while the node sheds — routing decisions belong to
// /readyz.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.metrics.HealthCalls.Add(1)
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok","queue_depth":%d}`+"\n", s.pool.depth())
}

// handleReadyz is readiness: the node will usefully accept a vet request
// right now. Not ready (503) when shutdown has begun or the admission
// queue has reached the shed threshold — a node that would answer 429 is
// alive but should not receive routed traffic, which is exactly the
// distinction the vetrouter's health probes key on. The store state is
// reported for operators; a configured store is always "recovered"
// because Open finishes recovery before the server exists.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	s.metrics.ReadyCalls.Add(1)
	depth := s.pool.depth()
	store := "none"
	if s.store != nil {
		store = "recovered"
	}
	status, state := http.StatusOK, "ready"
	switch {
	case s.pool.isClosed():
		status, state = http.StatusServiceUnavailable, "shutting-down"
	case depth >= s.cfg.QueueDepth:
		status, state = http.StatusServiceUnavailable, "shedding"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"queue_depth":%d,"queue_cap":%d,"store":%q}`+"\n",
		state, depth, s.cfg.QueueDepth, store)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.metrics.MetricsCalls.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WriteProm(w)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.metrics.StatsCalls.Add(1)
	s.writeJSON(w, http.StatusOK, s.metrics.Snapshot())
}

// decode reads a bounded JSON body into dst.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) error {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	dec := json.NewDecoder(body)
	if err := dec.Decode(dst); err != nil {
		return fmt.Errorf("vetd: decode request: %w", err)
	}
	return nil
}

func (s *Server) badRequest(w http.ResponseWriter, start time.Time, err error) {
	s.metrics.BadRequests.Add(1)
	s.writeError(w, http.StatusBadRequest, err)
	lat := time.Since(start)
	s.metrics.TotalLatency.Observe(lat)
	s.logger.log(requestLog{
		Time:      start.UTC().Format(time.RFC3339Nano),
		Endpoint:  "vet",
		Outcome:   "bad-request",
		Status:    http.StatusBadRequest,
		LatencyUS: lat.Microseconds(),
	})
}

func (s *Server) writeError(w http.ResponseWriter, status int, err error) {
	resp := ErrorResponse{}
	if err != nil {
		resp.Error = err.Error()
	}
	if status == http.StatusTooManyRequests {
		sec := int((s.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		resp.RetryAfterSec = sec
	}
	s.writeJSON(w, status, resp)
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}
