package vetd

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/staticanalysis"
)

// VetRequest is the POST /v1/vet body: one app's IR, exactly the
// dexir.App the batch scanners consume.
type VetRequest struct {
	App *dexir.App `json:"app"`
}

// BatchRequest is the POST /v1/vet/batch body.
type BatchRequest struct {
	Apps []*dexir.App `json:"apps"`
}

// Verdict is the wire form of one scan-before-install verdict. The
// verdict-determined fields (Package, Allow, Capabilities, Findings) are
// a pure function of the app's IR — cmd/vetload's -check mode re-derives
// them with defense.Vet and compares canonical bytes (see Core).
type Verdict struct {
	Package      string                   `json:"package"`
	Allow        bool                     `json:"allow"`
	Capabilities []string                 `json:"capabilities,omitempty"`
	Findings     []staticanalysis.Finding `json:"findings,omitempty"`
	// Tier names the static precision tier the verdict was computed at.
	// It is part of Core: a Tier0 and a Tier2 verdict for the same IR are
	// different verdicts, never interchangeable.
	Tier string `json:"tier"`
	// IRHash is the content address the verdict is cached under.
	IRHash string `json:"ir_hash"`
	// Cached reports whether this response was served from the verdict
	// cache (excluded from Core so hit and miss responses stay
	// byte-identical on the verdict itself).
	Cached bool `json:"cached"`
	// Degraded marks a verdict the router computed by local fallback
	// because every replica for the key was unreachable. The verdict
	// itself is still a pure function of the IR — defense.VetTier ran
	// locally instead of on a peer — so Degraded is serving metadata,
	// excluded from Core like Cached.
	Degraded bool `json:"degraded,omitempty"`
	// Peer names the vetd peer that served a routed verdict (set by
	// vetrouter; empty on direct responses and degraded fallbacks).
	// Excluded from Core: which replica answered never changes the
	// verdict.
	Peer string `json:"peer,omitempty"`
}

// NewVerdict converts a defense verdict to its wire form.
func NewVerdict(v defense.VetVerdict, irHash string, cached bool) Verdict {
	var caps []string
	for _, c := range v.Capabilities() {
		caps = append(caps, c.String())
	}
	return Verdict{
		Package:      v.Package,
		Allow:        v.Allow,
		Capabilities: caps,
		Findings:     v.Findings,
		Tier:         v.Tier.String(),
		IRHash:       irHash,
		Cached:       cached,
	}
}

// VerdictKey is the cache/coalescing key for one (IR, tier) pair. The
// tier is part of the key so reconfiguring a server to a different
// precision tier can never serve a verdict computed at the old one.
func VerdictKey(irHash string, tier staticanalysis.Tier) string {
	return irHash + "/" + tier.String()
}

// Core returns the canonical bytes of the verdict-determined fields —
// what -check compares between a served response and a direct
// defense.Vet call. Serving metadata (IRHash, Cached, Degraded, Peer) is
// excluded: a cached, replicated, or locally degraded answer must all
// carry the same core bytes.
func (v Verdict) Core() ([]byte, error) {
	v.IRHash = ""
	v.Cached = false
	v.Degraded = false
	v.Peer = ""
	return json.Marshal(v)
}

// BatchItem is one entry of a batch response, in request order. Exactly
// one of Verdict and Error is set; Status carries the per-item HTTP-style
// status (200, 429, 504, ...).
type BatchItem struct {
	Status  int      `json:"status"`
	Verdict *Verdict `json:"verdict,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// BatchResponse is the POST /v1/vet/batch reply.
type BatchResponse struct {
	Verdicts []BatchItem `json:"verdicts"`
}

// ErrorResponse is the JSON body of every non-200 reply.
type ErrorResponse struct {
	Error string `json:"error"`
	// RetryAfterSec mirrors the Retry-After header on 429 sheds.
	RetryAfterSec int `json:"retry_after_sec,omitempty"`
}

// HashIR computes the content address of an app's IR: SHA-256 over the
// canonical JSON encoding (struct fields in declaration order; the IR
// holds no maps, so the encoding is deterministic). Two requests carrying
// byte-equal IR therefore share a cache slot and coalesce in flight —
// the serving-path reuse of the journal-v2 content-addressed trial keys.
func HashIR(app *dexir.App) (string, error) {
	if app == nil {
		return "", fmt.Errorf("vetd: nil app")
	}
	b, err := json.Marshal(app)
	if err != nil {
		return "", fmt.Errorf("vetd: encode IR: %w", err)
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:]), nil
}
