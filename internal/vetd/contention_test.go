package vetd

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/simrand"
)

// countingAnalyze returns an analyze func that counts executions per
// package and optionally stalls, plus the per-key counters.
func countingAnalyze(stall time.Duration) (func(*dexir.App) (defense.VetVerdict, error), *sync.Map) {
	var perKey sync.Map // package -> *atomic.Uint64
	return func(app *dexir.App) (defense.VetVerdict, error) {
		n, _ := perKey.LoadOrStore(app.Package, new(atomic.Uint64))
		n.(*atomic.Uint64).Add(1)
		if stall > 0 {
			time.Sleep(stall)
		}
		return defense.VetVerdict{Package: app.Package, Allow: true}, nil
	}, &perKey
}

// skewedKey draws a key index with a heavy head: half the draws land on
// a handful of hot keys, the rest spread over the tail — the shape that
// makes singleflight coalescing and shard contention actually fire.
func skewedKey(rng *simrand.Source, distinct int) int {
	if rng.Bool(0.5) {
		return rng.Intn(4)
	}
	return rng.Intn(distinct)
}

// TestContentionNoDuplicateAnalyses hammers the sharded cache and the
// singleflight layer from 32 goroutines with a skewed key distribution
// and asserts the two core serving invariants under -race:
//
//  1. no key is ever analyzed twice (cache large enough that nothing is
//     evicted, so coalescing plus the late-hit re-check must make every
//     repeat a hit or a coalesced miss), and
//  2. the classification is exhaustive and exclusive:
//     hits + misses + sheds == requests, with sheds == 0 here because
//     the queue is deep enough to never refuse admission.
func TestContentionNoDuplicateAnalyses(t *testing.T) {
	const (
		goroutines = 32
		perG       = 200
		distinct   = 64
	)
	analyze, perKey := countingAnalyze(100 * time.Microsecond)
	s := newServer(Config{
		CacheCapacity: 4 * distinct, // no evictions
		QueueDepth:    goroutines * perG,
		Workers:       8,
		Deadline:      30 * time.Second,
	}, analyze)
	defer s.Close()

	apps := make([]*dexir.App, distinct)
	for i := range apps {
		apps[i] = testApp(i)
	}

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := simrand.New(99).DeriveIndexed("contender", g)
			for i := 0; i < perG; i++ {
				rec := postJSON(t, s, "/v1/vet", VetRequest{App: apps[skewedKey(rng, distinct)]})
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d: status %d: %s", g, rec.Code, rec.Body.String())
					return
				}
			}
		}(g)
	}
	wg.Wait()

	analyses := uint64(0)
	perKey.Range(func(k, v any) bool {
		n := v.(*atomic.Uint64).Load()
		analyses += n
		if n != 1 {
			t.Errorf("key %v analyzed %d times; coalescing must make it exactly 1", k, n)
		}
		return true
	})

	m := s.Metrics()
	req, hits, misses, sheds := m.Requests.Load(), m.Hits.Load(), m.Misses.Load(), m.Sheds.Load()
	if req != goroutines*perG {
		t.Fatalf("requests %d, want %d", req, goroutines*perG)
	}
	if hits+misses+sheds != req {
		t.Fatalf("accounting broken: hits %d + misses %d + sheds %d != requests %d", hits, misses, sheds, req)
	}
	if sheds != 0 {
		t.Fatalf("%d sheds with an over-provisioned queue", sheds)
	}
	if m.Analyses.Load() != analyses {
		t.Fatalf("metrics report %d analyses, analyze ran %d times", m.Analyses.Load(), analyses)
	}
	if m.Coalesced.Load() > misses {
		t.Fatalf("coalesced %d exceeds misses %d", m.Coalesced.Load(), misses)
	}
}

// TestContentionUnderShedKeepsAccountingExact repeats the hammer with a
// starved pool (1 worker, tiny queue, slow analyses) so a large fraction
// of requests shed, and asserts the classification identity still holds
// exactly — the property the paper-style degradation story depends on:
// overload changes which bucket a request lands in, never loses one.
func TestContentionUnderShedKeepsAccountingExact(t *testing.T) {
	const (
		goroutines = 32
		perG       = 50
		distinct   = 256
	)
	analyze, _ := countingAnalyze(2 * time.Millisecond)
	s := newServer(Config{
		CacheCapacity: 4 * distinct,
		QueueDepth:    2,
		Workers:       1,
		Deadline:      30 * time.Second,
	}, analyze)
	defer s.Close()

	var wg sync.WaitGroup
	var ok200, shed429, other atomic.Uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := simrand.New(7).DeriveIndexed("shedder", g)
			for i := 0; i < perG; i++ {
				rec := postJSON(t, s, "/v1/vet", VetRequest{App: testApp(skewedKey(rng, distinct))})
				switch rec.Code {
				case http.StatusOK:
					ok200.Add(1)
				case http.StatusTooManyRequests:
					shed429.Add(1)
				default:
					other.Add(1)
					t.Errorf("unexpected status %d: %s", rec.Code, rec.Body.String())
				}
			}
		}(g)
	}
	wg.Wait()

	m := s.Metrics()
	req, hits, misses, sheds := m.Requests.Load(), m.Hits.Load(), m.Misses.Load(), m.Sheds.Load()
	if req != goroutines*perG {
		t.Fatalf("requests %d, want %d", req, goroutines*perG)
	}
	if hits+misses+sheds != req {
		t.Fatalf("accounting broken: hits %d + misses %d + sheds %d != requests %d", hits, misses, sheds, req)
	}
	if sheds == 0 {
		t.Fatal("starved pool shed nothing; overload path untested")
	}
	if sheds != shed429.Load() {
		t.Fatalf("shed counter %d but %d 429 responses observed", sheds, shed429.Load())
	}
	if hits+misses != ok200.Load() {
		t.Fatalf("hits %d + misses %d != %d 200 responses", hits, misses, ok200.Load())
	}
	t.Logf("req=%d hits=%d misses=%d (coalesced=%d) sheds=%d", req, hits, misses, m.Coalesced.Load(), sheds)
}

// TestCacheSharding exercises the cache directly from many goroutines to
// give the race detector shard-level coverage independent of the server.
func TestCacheSharding(t *testing.T) {
	c := NewCache(512, 16)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("key-%d", (g*31+i)%300)
				if v, ok := c.Get(k); ok && v.Package != k {
					t.Errorf("cache returned %q for key %q", v.Package, k)
				}
				c.Put(k, defense.VetVerdict{Package: k, Allow: true})
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 512 {
		t.Fatalf("cache over capacity: %d", c.Len())
	}
}

func TestCacheDisabled(t *testing.T) {
	c := NewCache(-1, 8)
	c.Put("k", defense.VetVerdict{Package: "k"})
	if _, ok := c.Get("k"); ok {
		t.Fatal("disabled cache served a hit")
	}
	if c.Len() != 0 || c.Evictions() != 0 {
		t.Fatal("disabled cache reports contents")
	}
}
