package vetd

import (
	"container/list"
	"hash/fnv"
	"sync"
	"sync/atomic"

	"repro/internal/defense"
)

// Cache is a sharded, content-addressed verdict cache: verdicts are
// keyed by the SHA-256 of the app's IR (HashIR), so identical uploads —
// the common case at install-traffic rates, where one popular APK is
// vetted once and queried millions of times — cost one map lookup
// instead of a call-graph analysis. Each shard holds an independent
// mutex, map and LRU list, so lookups on different shards never contend;
// keys are uniformly distributed (they are cryptographic hashes), so
// shards stay balanced.
//
// Accounting: the cache itself counts only evictions and entries. Hit
// and miss classification lives in the server's Metrics, where it can be
// made exclusive with load sheds (hits + misses + sheds == requests);
// see Metrics.
type Cache struct {
	shards    []cacheShard
	perShard  int
	evictions atomic.Uint64
}

type cacheShard struct {
	mu    sync.Mutex
	items map[string]*list.Element
	lru   *list.List // front = most recently used
}

type cacheEntry struct {
	key     string
	verdict defense.VetVerdict
}

// NewCache builds a cache holding at most capacity verdicts across
// shards shards (both floored to sane minimums). capacity <= 0 disables
// the cache entirely: Get always misses and Put is a no-op.
func NewCache(capacity, shards int) *Cache {
	if capacity <= 0 {
		return &Cache{}
	}
	if shards < 1 {
		shards = 1
	}
	if shards > capacity {
		shards = capacity
	}
	c := &Cache{
		shards:   make([]cacheShard, shards),
		perShard: (capacity + shards - 1) / shards,
	}
	for i := range c.shards {
		c.shards[i].items = make(map[string]*list.Element)
		c.shards[i].lru = list.New()
	}
	return c
}

// shard picks the shard for a key by FNV-1a, so any shard count works.
func (c *Cache) shard(key string) *cacheShard {
	h := fnv.New32a()
	h.Write([]byte(key))
	return &c.shards[h.Sum32()%uint32(len(c.shards))]
}

// Get returns the cached verdict for key, refreshing its recency.
func (c *Cache) Get(key string) (defense.VetVerdict, bool) {
	if len(c.shards) == 0 {
		return defense.VetVerdict{}, false
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.items[key]
	if !ok {
		return defense.VetVerdict{}, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).verdict, true
}

// Put inserts or refreshes a verdict, evicting the shard's least
// recently used entry when the shard is full.
func (c *Cache) Put(key string, v defense.VetVerdict) {
	if len(c.shards) == 0 {
		return
	}
	s := c.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.items[key]; ok {
		el.Value.(*cacheEntry).verdict = v
		s.lru.MoveToFront(el)
		return
	}
	if s.lru.Len() >= c.perShard {
		oldest := s.lru.Back()
		if oldest != nil {
			s.lru.Remove(oldest)
			delete(s.items, oldest.Value.(*cacheEntry).key)
			c.evictions.Add(1)
		}
	}
	s.items[key] = s.lru.PushFront(&cacheEntry{key: key, verdict: v})
}

// Len reports the number of cached verdicts.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		c.shards[i].mu.Lock()
		n += c.shards[i].lru.Len()
		c.shards[i].mu.Unlock()
	}
	return n
}

// Evictions reports how many entries LRU pressure has pushed out.
func (c *Cache) Evictions() uint64 { return c.evictions.Load() }
