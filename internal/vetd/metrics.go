package vetd

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics is the server's observability surface: monotonic counters, the
// queue-depth gauge and per-stage latency histograms, rendered as
// Prometheus text exposition on GET /metrics and as a JSON snapshot on
// GET /stats.
//
// Counter contract (tested): every successfully parsed single-app vet
// request — batch items included — increments Requests and then exactly
// one of Hits (served from the verdict cache), Misses (admitted to the
// analysis plane, whether as singleflight leader or coalesced follower)
// or Sheds (rejected 429 at admission), so
//
//	Hits + Misses + Sheds == Requests
//
// holds at every quiescent instant. Coalesced counts the subset of
// Misses that piggybacked on an in-flight analysis; Expired counts the
// subset whose caller gave up at its deadline (the analysis still
// completes and warms the cache).
type Metrics struct {
	Requests  atomic.Uint64
	Hits      atomic.Uint64
	Misses    atomic.Uint64
	Sheds     atomic.Uint64
	Coalesced atomic.Uint64
	Expired   atomic.Uint64

	Allows atomic.Uint64
	Denies atomic.Uint64

	Analyses    atomic.Uint64 // distinct defense.Vet executions
	BadRequests atomic.Uint64

	// StoreHits counts the subset of Hits served from the persistent
	// store rather than the memory cache (typically right after a restart,
	// before the cache re-warms). StoreErrors counts failed store reads
	// and writes — the serving path degrades to analysis, never errors.
	StoreHits   atomic.Uint64
	StoreErrors atomic.Uint64

	// Per-endpoint HTTP request counters.
	VetCalls     atomic.Uint64
	BatchCalls   atomic.Uint64
	HealthCalls  atomic.Uint64
	ReadyCalls   atomic.Uint64
	StatsCalls   atomic.Uint64
	MetricsCalls atomic.Uint64

	// Per-stage latency histograms.
	DecodeLatency  Histogram // body read + JSON decode + hashing
	AnalyzeLatency Histogram // one defense.Vet execution, per analysis
	TotalLatency   Histogram // request receipt to response write

	// QueueDepth is set by the server to read the admission queue's
	// instantaneous depth.
	QueueDepth func() int

	// CacheEntries/CacheEvictions are wired to the verdict cache.
	CacheEntries   func() int
	CacheEvictions func() uint64

	// StoreEntries is wired to the persistent store's key count (nil when
	// the server runs without a store).
	StoreEntries func() int
}

// latencyBuckets are the histogram upper bounds, in seconds — spaced for
// a path whose cache hits are microseconds and whose analyses are
// fractions of a millisecond to tens of milliseconds.
var latencyBuckets = [...]float64{
	.00005, .0001, .00025, .0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5,
}

// Histogram is a fixed-bucket latency histogram with atomic counters;
// the zero value is ready to use.
type Histogram struct {
	counts [len(latencyBuckets) + 1]atomic.Uint64 // last bucket = +Inf
	count  atomic.Uint64
	sumNS  atomic.Int64
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	sec := d.Seconds()
	i := sort.SearchFloat64s(latencyBuckets[:], sec)
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sumNS.Add(int64(d))
}

// Quantile approximates the q-quantile (0..1) from the bucket counts,
// attributing each bucket's mass to its upper bound — good enough for
// the /stats p50/p99 summary.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := uint64(q * float64(total))
	var cum uint64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum > rank {
			if i < len(latencyBuckets) {
				return latencyBuckets[i]
			}
			return latencyBuckets[len(latencyBuckets)-1] * 2
		}
	}
	return latencyBuckets[len(latencyBuckets)-1] * 2
}

// writeProm emits the histogram in Prometheus text format.
func (h *Histogram) writeProm(w io.Writer, name, labels string) {
	var cum uint64
	for i, ub := range latencyBuckets {
		cum += h.counts[i].Load()
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, labels, trimFloat(ub), cum)
	}
	cum += h.counts[len(latencyBuckets)].Load()
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, labels, cum)
	fmt.Fprintf(w, "%s_sum{%s} %g\n", name, strings.TrimSuffix(labels, ","), float64(h.sumNS.Load())/1e9)
	fmt.Fprintf(w, "%s_count{%s} %d\n", name, strings.TrimSuffix(labels, ","), h.count.Load())
}

func trimFloat(f float64) string {
	return strings.TrimRight(strings.TrimRight(fmt.Sprintf("%f", f), "0"), ".")
}

// WriteProm renders every metric in Prometheus text exposition format.
func (m *Metrics) WriteProm(w io.Writer) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("vetd_requests_total", "Parsed vet requests, batch items included.", m.Requests.Load())
	counter("vetd_cache_hits_total", "Requests served from the verdict cache.", m.Hits.Load())
	counter("vetd_cache_misses_total", "Requests admitted to the analysis plane.", m.Misses.Load())
	counter("vetd_shed_total", "Requests rejected 429 at admission.", m.Sheds.Load())
	counter("vetd_coalesced_total", "Misses that joined an in-flight analysis.", m.Coalesced.Load())
	counter("vetd_deadline_expired_total", "Requests that hit their deadline while waiting.", m.Expired.Load())
	fmt.Fprintf(w, "# HELP vetd_verdicts_total Verdicts served, by outcome.\n# TYPE vetd_verdicts_total counter\n")
	fmt.Fprintf(w, "vetd_verdicts_total{verdict=\"allow\"} %d\n", m.Allows.Load())
	fmt.Fprintf(w, "vetd_verdicts_total{verdict=\"deny\"} %d\n", m.Denies.Load())
	counter("vetd_analyses_total", "Distinct defense.Vet executions.", m.Analyses.Load())
	counter("vetd_bad_requests_total", "Requests rejected before classification.", m.BadRequests.Load())
	counter("vetd_store_hits_total", "Hits served from the persistent store.", m.StoreHits.Load())
	counter("vetd_store_errors_total", "Failed persistent-store reads and writes.", m.StoreErrors.Load())
	if m.CacheEvictions != nil {
		counter("vetd_cache_evictions_total", "Verdicts evicted by LRU pressure.", m.CacheEvictions())
	}
	for _, e := range []struct {
		ep string
		v  uint64
	}{
		{"vet", m.VetCalls.Load()}, {"batch", m.BatchCalls.Load()},
		{"healthz", m.HealthCalls.Load()}, {"readyz", m.ReadyCalls.Load()},
		{"stats", m.StatsCalls.Load()}, {"metrics", m.MetricsCalls.Load()},
	} {
		fmt.Fprintf(w, "vetd_http_requests_total{endpoint=%q} %d\n", e.ep, e.v)
	}
	if m.QueueDepth != nil {
		fmt.Fprintf(w, "# HELP vetd_queue_depth Admission queue depth.\n# TYPE vetd_queue_depth gauge\nvetd_queue_depth %d\n", m.QueueDepth())
	}
	if m.CacheEntries != nil {
		fmt.Fprintf(w, "# HELP vetd_cache_entries Verdicts currently cached.\n# TYPE vetd_cache_entries gauge\nvetd_cache_entries %d\n", m.CacheEntries())
	}
	if m.StoreEntries != nil {
		fmt.Fprintf(w, "# HELP vetd_store_entries Verdicts in the persistent store.\n# TYPE vetd_store_entries gauge\nvetd_store_entries %d\n", m.StoreEntries())
	}
	fmt.Fprintf(w, "# HELP vetd_latency_seconds Per-stage request latency.\n# TYPE vetd_latency_seconds histogram\n")
	m.DecodeLatency.writeProm(w, "vetd_latency_seconds", `stage="decode",`)
	m.AnalyzeLatency.writeProm(w, "vetd_latency_seconds", `stage="analyze",`)
	m.TotalLatency.writeProm(w, "vetd_latency_seconds", `stage="total",`)
}

// Stats is the GET /stats JSON snapshot. Service discriminates who is
// answering — "vetd" for a node, "vetrouter" for the ring router — so a
// load generator pointed at either knows which accounting invariant to
// check (hits+misses+sheds for a node; replicated+degraded+shed+failed
// for the router, which reports its own stats type).
type Stats struct {
	Service   string `json:"service"`
	Requests  uint64 `json:"requests"`
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Sheds     uint64 `json:"sheds"`
	Coalesced uint64 `json:"coalesced"`
	Expired   uint64 `json:"expired"`

	Allows      uint64 `json:"allows"`
	Denies      uint64 `json:"denies"`
	Analyses    uint64 `json:"analyses"`
	BadRequests uint64 `json:"bad_requests"`

	StoreHits   uint64 `json:"store_hits"`
	StoreErrors uint64 `json:"store_errors"`

	QueueDepth     int    `json:"queue_depth"`
	CacheEntries   int    `json:"cache_entries"`
	CacheEvictions uint64 `json:"cache_evictions"`
	StoreEntries   int    `json:"store_entries"`

	HitRate float64 `json:"hit_rate"`

	TotalP50Sec   float64 `json:"total_p50_sec"`
	TotalP99Sec   float64 `json:"total_p99_sec"`
	AnalyzeP50Sec float64 `json:"analyze_p50_sec"`
	AnalyzeP99Sec float64 `json:"analyze_p99_sec"`
}

// Snapshot assembles the current Stats.
func (m *Metrics) Snapshot() Stats {
	s := Stats{
		Service:     "vetd",
		Requests:    m.Requests.Load(),
		Hits:        m.Hits.Load(),
		Misses:      m.Misses.Load(),
		Sheds:       m.Sheds.Load(),
		Coalesced:   m.Coalesced.Load(),
		Expired:     m.Expired.Load(),
		Allows:      m.Allows.Load(),
		Denies:      m.Denies.Load(),
		Analyses:    m.Analyses.Load(),
		BadRequests: m.BadRequests.Load(),
		StoreHits:   m.StoreHits.Load(),
		StoreErrors: m.StoreErrors.Load(),

		TotalP50Sec:   m.TotalLatency.Quantile(0.50),
		TotalP99Sec:   m.TotalLatency.Quantile(0.99),
		AnalyzeP50Sec: m.AnalyzeLatency.Quantile(0.50),
		AnalyzeP99Sec: m.AnalyzeLatency.Quantile(0.99),
	}
	if m.QueueDepth != nil {
		s.QueueDepth = m.QueueDepth()
	}
	if m.CacheEntries != nil {
		s.CacheEntries = m.CacheEntries()
	}
	if m.CacheEvictions != nil {
		s.CacheEvictions = m.CacheEvictions()
	}
	if m.StoreEntries != nil {
		s.StoreEntries = m.StoreEntries()
	}
	if s.Requests > 0 {
		s.HitRate = float64(s.Hits) / float64(s.Requests)
	}
	return s
}

// requestLog is one structured per-request log line, emitted as JSONL.
type requestLog struct {
	Time      string `json:"t"`
	Endpoint  string `json:"endpoint"`
	IRHash    string `json:"ir_hash,omitempty"`
	Package   string `json:"package,omitempty"`
	Outcome   string `json:"outcome"` // hit|miss|shed|expired|error|bad-request
	Status    int    `json:"status"`
	Allow     *bool  `json:"allow,omitempty"`
	LatencyUS int64  `json:"latency_us"`
}

// requestLogger serializes structured log writes; a nil logger (or nil
// writer) disables logging.
type requestLogger struct {
	mu sync.Mutex
	w  io.Writer
}

func newRequestLogger(w io.Writer) *requestLogger {
	if w == nil {
		return nil
	}
	return &requestLogger{w: w}
}

func (l *requestLogger) log(rec requestLog) {
	if l == nil {
		return
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return
	}
	l.mu.Lock()
	l.w.Write(append(b, '\n'))
	l.mu.Unlock()
}
