package vetd

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/vetstore"
)

func openStore(t *testing.T, path string) *vetstore.Store {
	t.Helper()
	s, err := vetstore.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStorePersistsAcrossRestart is the serving-side restatement of the
// vetstore crash test: a second server opened on the same store must
// serve every verdict the first one computed — byte-identical on Core,
// zero new analyses — exactly what lets a SIGKILLed ring peer rejoin
// without re-analyzing its keyspace.
func TestStorePersistsAcrossRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	apks := corpusApps(t, 40)

	st1 := openStore(t, path)
	s1 := New(Config{Store: st1})
	want := make(map[string][]byte, len(apks))
	for _, apk := range apks {
		rec := postJSON(t, s1, "/v1/vet", VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d", apk.Package, rec.Code)
		}
		core, err := decodeVerdict(t, rec).Core()
		if err != nil {
			t.Fatal(err)
		}
		want[apk.Package] = core
	}
	if got := s1.Metrics().Analyses.Load(); got != uint64(len(apks)) {
		t.Fatalf("first server ran %d analyses, want %d", got, len(apks))
	}
	s1.Close()
	st1.Close()

	st2 := openStore(t, path)
	defer st2.Close()
	if st2.Len() != len(apks) {
		t.Fatalf("store recovered %d verdicts, want %d", st2.Len(), len(apks))
	}
	s2 := New(Config{Store: st2})
	defer s2.Close()
	for _, apk := range apks {
		rec := postJSON(t, s2, "/v1/vet", VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("restart %s: status %d", apk.Package, rec.Code)
		}
		v := decodeVerdict(t, rec)
		if !v.Cached {
			t.Fatalf("restart %s: store hit not marked cached", apk.Package)
		}
		core, err := v.Core()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(core, want[apk.Package]) {
			t.Fatalf("restart %s: verdict differs:\n%s\nvs\n%s", apk.Package, core, want[apk.Package])
		}
	}
	m := s2.Metrics()
	if m.Analyses.Load() != 0 {
		t.Fatalf("restarted server re-analyzed %d stored keys", m.Analyses.Load())
	}
	if m.StoreHits.Load() != uint64(len(apks)) {
		t.Fatalf("store hits %d, want %d", m.StoreHits.Load(), len(apks))
	}
	if m.Hits.Load()+m.Misses.Load()+m.Sheds.Load() != m.Requests.Load() {
		t.Fatalf("store hits broke the accounting contract: %+v", m.Snapshot())
	}
	// A repeat request is a memory-cache hit now: the store hit promoted
	// the verdict, so StoreHits stays flat.
	postJSON(t, s2, "/v1/vet", VetRequest{App: apks[0].IR})
	if m.StoreHits.Load() != uint64(len(apks)) {
		t.Fatal("promoted verdict re-read from the store instead of the cache")
	}
}

// TestStoreKeyedByTier: a store written at tier0 must not serve a tier2
// server — the tier is part of the key, so the tier2 server re-analyzes.
func TestStoreKeyedByTier(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	app := corpusApps(t, 1)[0].IR

	st1 := openStore(t, path)
	s1 := New(Config{Store: st1, Tier: 0})
	postJSON(t, s1, "/v1/vet", VetRequest{App: app})
	s1.Close()
	st1.Close()

	st2 := openStore(t, path)
	defer st2.Close()
	s2 := New(Config{Store: st2, Tier: 2})
	defer s2.Close()
	rec := postJSON(t, s2, "/v1/vet", VetRequest{App: app})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	m := s2.Metrics()
	if m.StoreHits.Load() != 0 || m.Analyses.Load() != 1 {
		t.Fatalf("tier2 server served a tier0 verdict (storeHits=%d analyses=%d)",
			m.StoreHits.Load(), m.Analyses.Load())
	}
	if got := decodeVerdict(t, rec).Tier; got != "tier2" {
		t.Fatalf("verdict tier %q, want tier2", got)
	}
	if st2.Len() != 2 {
		t.Fatalf("store holds %d keys, want 2 (one per tier)", st2.Len())
	}
}

// TestReadyzReflectsQueuePressure: /readyz must flip to 503 while the
// admission queue is at the shed threshold and back to 200 once it
// drains — /healthz stays 200 throughout (liveness vs readiness).
func TestReadyzReflectsQueuePressure(t *testing.T) {
	block := make(chan struct{})
	s := newServer(Config{Workers: 1, QueueDepth: 1},
		func(app *dexir.App) (defense.VetVerdict, error) {
			<-block
			return defense.VetVerdict{Package: app.Package, Allow: true}, nil
		})
	defer s.Close()

	if rec := getPath(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("idle readyz: %d %q", rec.Code, rec.Body.String())
	}

	// One request occupies the worker, one fills the single queue slot.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			postJSON(t, s, "/v1/vet", VetRequest{App: testApp(i)})
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.pool.depth() < 1 {
		if time.Now().After(deadline) {
			close(block)
			t.Fatal("queue never filled")
		}
		time.Sleep(time.Millisecond)
	}
	rec := getPath(s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !bytes.Contains(rec.Body.Bytes(), []byte("shedding")) {
		t.Fatalf("saturated readyz: %d %q, want 503 shedding", rec.Code, rec.Body.String())
	}
	if rec := getPath(s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz went unready under load: %d (liveness must not track queue pressure)", rec.Code)
	}

	close(block)
	wg.Wait()
	if rec := getPath(s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("drained readyz: %d %q", rec.Code, rec.Body.String())
	}
	if s.Metrics().ReadyCalls.Load() != 3 {
		t.Fatalf("ready calls %d, want 3", s.Metrics().ReadyCalls.Load())
	}
}

// TestReadyzAfterClose: a shut-down server reports not ready with a
// distinct state, so probes can tell draining from overload.
func TestReadyzAfterClose(t *testing.T) {
	s := New(Config{})
	s.Close()
	rec := getPath(s, "/readyz")
	if rec.Code != http.StatusServiceUnavailable || !bytes.Contains(rec.Body.Bytes(), []byte("shutting-down")) {
		t.Fatalf("closed readyz: %d %q, want 503 shutting-down", rec.Code, rec.Body.String())
	}
}

// TestStatsServiceField: the /stats payload names its service so load
// generators can pick the right accounting invariant.
func TestStatsServiceField(t *testing.T) {
	s := New(Config{})
	defer s.Close()
	var st Stats
	if err := json.Unmarshal(getPath(s, "/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "vetd" {
		t.Fatalf("service %q, want vetd", st.Service)
	}
}
