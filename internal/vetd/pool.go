package vetd

import (
	"context"
	"errors"
	"sync"
	"time"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/vetstore"
)

// ErrClosed is returned for requests arriving after shutdown began.
var ErrClosed = errors.New("vetd: server shutting down")

// ErrShed marks a request rejected at admission because the analysis
// queue was full; the HTTP layer turns it into 429 + Retry-After.
var ErrShed = errors.New("vetd: analysis queue full")

// call is one in-flight analysis, shared by its singleflight leader and
// every coalesced follower. verdict/err are written before done is
// closed, so waiters read them race-free after <-done.
type call struct {
	done    chan struct{}
	verdict defense.VetVerdict
	err     error
}

// job is one admitted analysis unit sitting in the bounded queue.
type job struct {
	hash string
	app  *dexir.App
	c    *call
}

// pool is the analysis plane: a bounded admission queue feeding a fixed
// set of workers (the serving-side analogue of experiment/sched's pool —
// bounded fan-out, panic-free tasks — but long-lived and fed by the
// network instead of a trial list), with singleflight coalescing so N
// concurrent requests for the same IR hash cost one defense.Vet.
//
// Overload contract: admission is a non-blocking reservation on the
// queue channel. When the queue is full the request is shed immediately
// (ErrShed → 429) instead of queuing without bound, so memory stays
// bounded and latency for admitted work stays within the deadline
// budget; waiting requests give up individually when their context
// expires while the analysis itself runs to completion and warms the
// cache (no thundering re-analysis after a timeout).
type pool struct {
	mu     sync.Mutex
	calls  map[string]*call
	queue  chan job
	closed bool

	cache   *Cache
	store   *vetstore.Store // optional persistence; nil disables
	metrics *Metrics
	analyze func(*dexir.App) (defense.VetVerdict, error)

	wg sync.WaitGroup
}

func newPool(workers, queueDepth int, cache *Cache, store *vetstore.Store, metrics *Metrics, analyze func(*dexir.App) (defense.VetVerdict, error)) *pool {
	if workers < 1 {
		workers = 1
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	p := &pool{
		calls:   make(map[string]*call),
		queue:   make(chan job, queueDepth),
		cache:   cache,
		store:   store,
		metrics: metrics,
		analyze: analyze,
	}
	p.wg.Add(workers)
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

// depth reports the instantaneous admission-queue depth.
func (p *pool) depth() int { return len(p.queue) }

// isClosed reports whether shutdown has begun (readiness probes flip to
// 503 the moment it has, so the router drains traffic before the last
// queued analyses finish).
func (p *pool) isClosed() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.closed
}

// vet resolves one cache-missed request: join an in-flight analysis for
// the same hash, or admit a new one. It classifies the request on the
// caller's Metrics — exactly one of Hits (the late-hit re-check below),
// Misses (admitted or coalesced) or Sheds — and blocks until the verdict
// is ready or ctx expires. The bool result reports a late hit.
func (p *pool) vet(ctx context.Context, hash string, app *dexir.App) (defense.VetVerdict, bool, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return defense.VetVerdict{}, false, ErrClosed
	}
	c, inflight := p.calls[hash]
	if inflight {
		p.metrics.Misses.Add(1)
		p.metrics.Coalesced.Add(1)
		p.mu.Unlock()
	} else {
		// Late-hit re-check, under the same lock the workers use to
		// retire calls: an analysis of this hash may have completed
		// between the caller's cache lookup and now. Workers publish to
		// the cache before retiring the call, so a key absent from calls
		// with a finished analysis is guaranteed visible here — without
		// this, a retiring race would run a duplicate analysis for a
		// coalesced key.
		if v, ok := p.cache.Get(hash); ok {
			p.metrics.Hits.Add(1)
			p.mu.Unlock()
			return v, true, nil
		}
		c = &call{done: make(chan struct{})}
		select {
		case p.queue <- job{hash: hash, app: app, c: c}:
			p.calls[hash] = c
			p.metrics.Misses.Add(1)
			p.mu.Unlock()
		default:
			p.metrics.Sheds.Add(1)
			p.mu.Unlock()
			return defense.VetVerdict{}, false, ErrShed
		}
	}
	select {
	case <-c.done:
		return c.verdict, false, c.err
	case <-ctx.Done():
		p.metrics.Expired.Add(1)
		return defense.VetVerdict{}, false, ctx.Err()
	}
}

// worker drains the queue until close, publishing each verdict to the
// cache and to every waiter of its call.
func (p *pool) worker() {
	defer p.wg.Done()
	for jb := range p.queue {
		start := time.Now()
		v, err := p.analyze(jb.app)
		p.metrics.Analyses.Add(1)
		p.metrics.AnalyzeLatency.Observe(time.Since(start))
		if err == nil {
			p.cache.Put(jb.hash, v)
			// Persist before retiring the call: once a waiter has seen the
			// verdict, a crash-and-restart must serve the same bytes from
			// the store rather than re-analyzing. The fsync cost rides on
			// the analysis path only — cache and store hits never pay it.
			if p.store != nil {
				if serr := p.store.Put(jb.hash, v); serr != nil {
					p.metrics.StoreErrors.Add(1)
				}
			}
		}
		p.mu.Lock()
		delete(p.calls, jb.hash)
		p.mu.Unlock()
		jb.c.verdict, jb.c.err = v, err
		close(jb.c.done)
	}
}

// close stops admission and waits for queued analyses to finish; their
// waiters still receive results.
func (p *pool) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	close(p.queue)
	p.mu.Unlock()
	p.wg.Wait()
}
