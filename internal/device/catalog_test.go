package device

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/simrand"
)

// TestSeedCatalogMatchesLegacy pins the API redesign's core contract: the
// seed Catalog must be byte-identical to the historical package-level
// lookup functions.
func TestSeedCatalogMatchesLegacy(t *testing.T) {
	cat := Seed()
	if cat.Name() != "seed" {
		t.Fatalf("seed catalog Name = %q, want %q", cat.Name(), "seed")
	}
	legacy := seedProfiles()
	if got := cat.Profiles(); !reflect.DeepEqual(got, legacy) {
		t.Fatal("Seed().Profiles() differs from the hand-calibrated set")
	}
	for _, want := range legacy {
		got, ok := cat.ByModel(want.Model)
		if !ok {
			t.Fatalf("ByModel(%q) missing from seed catalog", want.Model)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ByModel(%q) differs from the profile list entry", want.Model)
		}
	}
	if _, ok := cat.ByModel("iphone"); ok {
		t.Fatal("seed catalog found a nonexistent device")
	}
	if got, want := cat.Default(), Default(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Seed().Default() = %s, want %s", got.Name(), want.Name())
	}
}

// TestSeedCatalogCopyOnRead: mutating the slice a catalog hands out must
// not corrupt the shared cache (the historical Profiles() rebuilt its
// slice per call, so callers may mutate).
func TestSeedCatalogCopyOnRead(t *testing.T) {
	cat := Seed()
	got := cat.Profiles()
	got[0].Model = "corrupted"
	if cat.Profiles()[0].Model == "corrupted" {
		t.Fatal("mutating Profiles() result corrupted the seed catalog cache")
	}
}

func TestByVersionIn(t *testing.T) {
	cat := Seed()
	for _, major := range []int{8, 9, 10, 11} {
		got := ByVersionIn(cat, major)
		want := ByVersion(major)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("ByVersionIn(seed, %d) differs from legacy ByVersion", major)
		}
	}
	if len(ByVersionIn(cat, 7)) != 0 {
		t.Fatal("ByVersionIn(seed, 7) returned devices")
	}
}

func TestSlideDuration(t *testing.T) {
	p := Default()
	// Seed profiles carry no animator scale: stock 360 ms.
	if got := p.SlideDuration(); got != 360*time.Millisecond {
		t.Fatalf("seed SlideDuration = %v, want 360ms", got)
	}
	p.AnimatorScale = 0.5
	if got := p.SlideDuration(); got != 180*time.Millisecond {
		t.Fatalf("0.5x SlideDuration = %v, want 180ms", got)
	}
	p.AnimatorScale = 1.5
	if got := p.SlideDuration(); got != 540*time.Millisecond {
		t.Fatalf("1.5x SlideDuration = %v, want 540ms", got)
	}
	// The animations-off population collapses the slide to one frame
	// regardless of the nominal scale.
	p.AnimationsOff = true
	if got := p.SlideDuration(); got != 10*time.Millisecond {
		t.Fatalf("animations-off SlideDuration = %v, want one frame", got)
	}
	// A tiny-but-nonzero scale clamps to one frame rather than zero.
	p.AnimationsOff = false
	p.AnimatorScale = 0.001
	if got := p.SlideDuration(); got != 10*time.Millisecond {
		t.Fatalf("0.001x SlideDuration = %v, want clamped to one frame", got)
	}
}

// TestAnimationsOffUpperBound: with the slide collapsed to a single
// frame the alert's first pixel renders on the very first frame, so the
// analytical window loses the first-visible-frame term (the dynamic
// effect is stronger still — the draw-and-destroy attack needs the blank
// early frames and fails outright without them).
func TestAnimationsOffUpperBound(t *testing.T) {
	stock := Default()
	off := stock
	off.AnimationsOff = true
	dStock, dOff := stock.ExpectedUpperBoundD(), off.ExpectedUpperBoundD()
	if dOff >= dStock {
		t.Fatalf("animations-off D bound %v not below stock %v", dOff, dStock)
	}
	if dStock-dOff < 10*time.Millisecond {
		t.Fatalf("animations-off shrank D by %v, want at least one frame", dStock-dOff)
	}
}

func TestSynthesizeDeterministic(t *testing.T) {
	spec := SynthSpec{
		Manufacturer: "Synthex",
		Model:        "sx-1",
		Family:       "lightos",
		Version:      V(10),
		ScreenW:      1080, ScreenH: 2280, DPI: 440,
		TimingScale:    1.1,
		NotifPathScale: 1.2,
		AnimatorScale:  1,
	}
	a := Synthesize(spec, simrand.New(99).Derive("fleet/device"))
	b := Synthesize(spec, simrand.New(99).Derive("fleet/device"))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("Synthesize is not deterministic for identical spec+stream")
	}
	// A different device stream must give a different calibration.
	c := Synthesize(spec, simrand.New(99).DeriveIndexed("fleet/device", 1))
	if reflect.DeepEqual(a, c) {
		t.Fatal("distinct device streams produced identical calibrations")
	}
}

// TestSynthesizeOrderIndependence documents the fresh-parent derivation
// pattern the fleet generator uses: because Derive consumes a draw from
// its parent, per-device streams come from a fresh simrand.New(seed)
// each, so device i's calibration depends only on (seed, i) — not on how
// many devices were synthesized before it.
func TestSynthesizeOrderIndependence(t *testing.T) {
	spec := SynthSpec{
		Manufacturer: "Synthex", Model: "sx-2", Family: "heavyskin",
		Version: V(9), ScreenW: 1080, ScreenH: 1920, DPI: 403,
		TimingScale: 1.3, NotifPathScale: 1.5, TvResidualMS: 250,
	}
	devStream := func(i int) *simrand.Source {
		return simrand.New(7).DeriveIndexed("fleet/device", i)
	}
	a := Synthesize(spec, devStream(3))
	// Synthesize other devices first; device 3 must be unaffected.
	for i := 0; i < 3; i++ {
		other := spec
		other.Model = "sx-other"
		_ = Synthesize(other, devStream(i))
	}
	b := Synthesize(spec, devStream(3))
	if !reflect.DeepEqual(a, b) {
		t.Fatal("synthesizing other devices changed device 3's calibration")
	}
}

func TestSynthesizePlausible(t *testing.T) {
	rng := simrand.New(5)
	for i := 0; i < 20; i++ {
		scale := 0.8 + 0.05*float64(i)
		p := Synthesize(SynthSpec{
			Manufacturer: "Synthex", Model: "sx-p", Family: "stock",
			Version: V(10), ScreenW: 1080, ScreenH: 2160, DPI: 420,
			TimingScale: scale, TvResidualMS: 180,
		}, rng.DeriveIndexed("fleet/device", i))
		if p.NotifViewHeightPx <= 0 {
			t.Fatalf("device %d: nonpositive notif height", i)
		}
		if p.LoadFactor != 1 {
			t.Fatalf("device %d: LoadFactor = %v, want 1", i, p.LoadFactor)
		}
		d := p.ExpectedUpperBoundD()
		if d < 150*time.Millisecond || d > 900*time.Millisecond {
			t.Fatalf("device %d: analytical D bound %v outside plausible Table-II range", i, d)
		}
		for j := 0; j < 50; j++ {
			if s := p.Tv.Sample(rng); s < 0 || s > 600*time.Millisecond {
				t.Fatalf("device %d: Tv sample %v implausible", i, s)
			}
		}
	}
}

// TestSynthesizeScalesMonotone: a heavier timing scale yields a slower
// notification path and therefore a larger analytical attack window.
func TestSynthesizeScalesMonotone(t *testing.T) {
	mk := func(ts float64) Profile {
		return Synthesize(SynthSpec{
			Manufacturer: "Synthex", Model: "sx-m", Family: "stock",
			Version: V(10), ScreenW: 1080, ScreenH: 2160, DPI: 420,
			TimingScale: ts,
		}, simrand.New(11).Derive("fleet/device"))
	}
	light, heavy := mk(0.9), mk(1.5)
	if heavy.ExpectedUpperBoundD() <= light.ExpectedUpperBoundD() {
		t.Fatalf("heavier skin D bound %v not above lighter %v",
			heavy.ExpectedUpperBoundD(), light.ExpectedUpperBoundD())
	}
}
