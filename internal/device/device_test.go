package device

import (
	"testing"
	"time"

	"repro/internal/simrand"
)

func TestProfilesCount(t *testing.T) {
	if got := len(Profiles()); got != 30 {
		t.Fatalf("Profiles() returned %d devices, want 30 (Table I)", got)
	}
}

func TestProfilesUnique(t *testing.T) {
	seen := make(map[string]bool)
	for _, p := range Profiles() {
		key := p.Manufacturer + "/" + p.Model
		if seen[key] {
			t.Fatalf("duplicate profile %s", key)
		}
		seen[key] = true
	}
}

// TestCalibrationMatchesTableII is the core calibration check: every
// profile's analytical Λ1 upper bound must reproduce the paper's Table II
// measurement plus the documented 10 ms strictness headroom, to within one
// frame interval.
func TestCalibrationMatchesTableII(t *testing.T) {
	const headroom = 10 * time.Millisecond
	for _, p := range Profiles() {
		got := p.ExpectedUpperBoundD()
		want := p.PaperUpperBoundD + headroom
		diff := got - want
		if diff < 0 {
			diff = -diff
		}
		if diff > 10*time.Millisecond {
			t.Errorf("%s: analytical D bound %v, want %v (Table II + headroom)", p.Name(), got, want)
		}
	}
}

func TestVersionDistribution(t *testing.T) {
	// Table II has 3 Android 8, 13 Android 9 (incl. 9.1), 12 Android 10
	// and 2 Android 11 devices.
	counts := map[int]int{}
	for _, p := range Profiles() {
		counts[p.Version.Major]++
	}
	want := map[int]int{8: 3, 9: 13, 10: 12, 11: 2}
	for major, n := range want {
		if counts[major] != n {
			t.Errorf("Android %d: %d devices, want %d", major, counts[major], n)
		}
	}
}

func TestANADelay(t *testing.T) {
	tests := []struct {
		v    AndroidVersion
		want time.Duration
	}{
		{V(8), 0},
		{V(9), 0},
		{AndroidVersion{Major: 9, Label: "9.1"}, 0},
		{V(10), 100 * time.Millisecond},
		{V(11), 200 * time.Millisecond},
		{V(12), 200 * time.Millisecond},
	}
	for _, tt := range tests {
		if got := tt.v.ANADelay(); got != tt.want {
			t.Errorf("ANADelay(%v) = %v, want %v", tt.v, got, tt.want)
		}
	}
}

// TestTmisVersionOrdering checks the paper's Fig. 8 root cause: Android 10
// and 11 profiles have a larger expected mistouch window than Android 8/9
// because Trm was significantly reduced.
func TestTmisVersionOrdering(t *testing.T) {
	avg := func(major int) time.Duration {
		ps := ByVersion(major)
		if len(ps) == 0 {
			t.Fatalf("no profiles for Android %d", major)
		}
		var sum time.Duration
		for _, p := range ps {
			sum += p.ExpectedTmis()
		}
		return sum / time.Duration(len(ps))
	}
	t89 := (avg(8) + avg(9)) / 2
	t10 := avg(10)
	t11 := avg(11)
	if t10 <= t89 {
		t.Errorf("E[Tmis] Android 10 (%v) should exceed Android 8/9 (%v)", t10, t89)
	}
	if t11 <= t89 {
		t.Errorf("E[Tmis] Android 11 (%v) should exceed Android 8/9 (%v)", t11, t89)
	}
	if t89 > 3*time.Millisecond {
		t.Errorf("E[Tmis] on Android 8/9 = %v; paper says it approaches 0", t89)
	}
}

func TestNexus6PNotifHeight(t *testing.T) {
	p, ok := ByModel("nexus6p")
	if !ok {
		t.Fatal("nexus6p profile missing")
	}
	if p.NotifViewHeightPx != 72 {
		t.Fatalf("nexus6p notification view height = %d px, paper says 72", p.NotifViewHeightPx)
	}
}

func TestFirstVisibleFrameOffset(t *testing.T) {
	// For a 72 px view the first visible pixel needs completeness
	// ≥ 1/72 ≈ 1.39%, which FastOutSlowIn reaches at ~30 ms.
	got := FirstVisibleFrameOffset(72)
	if got < 20*time.Millisecond || got > 40*time.Millisecond {
		t.Fatalf("FirstVisibleFrameOffset(72) = %v, want ≈30ms", got)
	}
	// The offset must exceed one frame: the paper's point is that the
	// first frame shows nothing.
	if got <= 10*time.Millisecond {
		t.Fatalf("first visible frame at %v; must be after the first frame", got)
	}
	// A taller view becomes visible no later (needs less completeness).
	if tall := FirstVisibleFrameOffset(720); tall > got {
		t.Fatalf("taller view visible later: %v > %v", tall, got)
	}
}

func TestByModel(t *testing.T) {
	p, ok := ByModel("Redmi")
	if !ok {
		t.Fatal("Redmi not found")
	}
	if p.PaperUpperBoundD != 395*time.Millisecond {
		t.Fatalf("Redmi D bound = %v, want 395ms", p.PaperUpperBoundD)
	}
	if _, ok := ByModel("iphone"); ok {
		t.Fatal("ByModel found a nonexistent device")
	}
}

func TestByVersion(t *testing.T) {
	for _, p := range ByVersion(10) {
		if p.Version.Major != 10 {
			t.Fatalf("ByVersion(10) returned %s", p.Name())
		}
	}
	if len(ByVersion(7)) != 0 {
		t.Fatal("ByVersion(7) returned devices")
	}
}

func TestDefaultProfile(t *testing.T) {
	p := Default()
	if p.Model != "pixel 2" || p.Version.Major != 11 {
		t.Fatalf("Default = %s, want pixel 2 on Android 11", p.Name())
	}
}

func TestWithLoadNegligible(t *testing.T) {
	p := Default()
	for _, n := range []int{3, 5} {
		loaded := p.WithLoad(n)
		if loaded.LoadFactor <= 1 {
			t.Fatalf("WithLoad(%d) factor = %v, want > 1", n, loaded.LoadFactor)
		}
		d0, d1 := p.ExpectedUpperBoundD(), loaded.ExpectedUpperBoundD()
		diff := d1 - d0
		if diff < 0 {
			diff = -diff
		}
		// The paper: load influence is negligible (< one frame).
		if diff > 10*time.Millisecond {
			t.Fatalf("load %d apps shifted D bound by %v; paper says negligible", n, diff)
		}
	}
	if got := p.WithLoad(0); got.LoadFactor != 1 {
		t.Fatalf("WithLoad(0) factor = %v, want 1", got.LoadFactor)
	}
}

func TestWithLoadDoesNotMutateOriginal(t *testing.T) {
	p := Default()
	before := p.Tas.Mean
	_ = p.WithLoad(5)
	if p.Tas.Mean != before {
		t.Fatal("WithLoad mutated the receiver")
	}
}

func TestLatencySamplesArePlausible(t *testing.T) {
	rng := simrand.New(1)
	for _, p := range Profiles() {
		for i := 0; i < 100; i++ {
			if d := p.Tam.Sample(rng); d < 0 || d > 50*time.Millisecond {
				t.Fatalf("%s: Tam sample %v implausible", p.Name(), d)
			}
			if d := p.Trm.Sample(rng); d < 0 || d > 50*time.Millisecond {
				t.Fatalf("%s: Trm sample %v implausible", p.Name(), d)
			}
		}
	}
}

func TestName(t *testing.T) {
	p := Default()
	if got := p.Name(); got != "Google pixel 2 (Android 11)" {
		t.Fatalf("Name = %q", got)
	}
}

// TestTableIIVersionOrdering spot-checks the paper's observation that
// Android 10 devices have a greater upper bound of D than comparable 8/9
// devices on average (the ANA delay).
func TestTableIIVersionOrdering(t *testing.T) {
	mean := func(major int) time.Duration {
		ps := ByVersion(major)
		var sum time.Duration
		for _, p := range ps {
			sum += p.PaperUpperBoundD
		}
		return sum / time.Duration(len(ps))
	}
	if m10, m8 := mean(10), mean(8); m10 <= m8 {
		t.Errorf("mean D bound Android 10 (%v) ≤ Android 8 (%v); paper says 10 is greater", m10, m8)
	}
}
