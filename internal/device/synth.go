// Synthetic profile construction for generated fleets. Synthesize builds
// a Profile from a SynthSpec the way newProfile builds the
// hand-calibrated seed set: start from the per-version latency base,
// apply the family's OEM scaling, then draw the per-device calibration
// residuals. Every random derivation comes from an *explicit* named
// simrand sub-stream of the per-device rng the caller passes in — never
// from profile-construction order. Because Derive consumes one draw from
// its parent, the fleet generator hands each device a stream derived
// from a fresh parent (simrand.New(seed).DeriveIndexed("fleet/device", i)),
// so device i's calibration depends only on (seed, i) and a fleet can be
// reproduced, sliced or extended without perturbing any existing profile.

package device

import (
	"math"

	"repro/internal/simrand"
)

// SynthSpec describes one synthetic device for Synthesize. The identity
// fields (manufacturer, model, version, screen, family) are chosen by the
// generator; the scaling knobs encode the OEM family's behaviour.
type SynthSpec struct {
	// Manufacturer, Model and Family identify the device; Model must be
	// unique within its catalog.
	Manufacturer, Model, Family string
	// Version is the Android release the device runs.
	Version AndroidVersion
	// ScreenW, ScreenH and DPI describe the display.
	ScreenW, ScreenH int
	DPI              float64

	// TimingScale multiplies every latency distribution: the OEM skin's
	// overall processing weight (1 is the stock base; heavy skins run
	// slower). Zero means 1.
	TimingScale float64
	// NotifPathScale additionally multiplies the notification-path
	// latencies (TnShow, TnRemove, Tv): the paper observes that heavily
	// skinned OSes have disproportionately slow notification paths. Zero
	// means 1.
	NotifPathScale float64
	// AnimatorScale is the device's effective animator_duration_scale
	// (OEM animation family × user setting); zero means stock 1.0.
	AnimatorScale float64
	// AnimationsOff marks the accessibility population
	// (animator_duration_scale = 0).
	AnimationsOff bool

	// TvResidualMS is the family's mean extra view-construction latency
	// on top of the version base — the same knob newProfile's Table-II
	// calibration absorbs per-phone residuals into. The Table-II seed
	// population corresponds to roughly 120–350 ms; zero means a fast
	// AOSP-like build with no residual.
	TvResidualMS float64
}

// Synthesis calibration spreads: each synthetic device draws a residual
// for its view-construction time and remove-notification path (the same
// two knobs newProfile's Table-II calibration absorbs residuals into) and
// a jitter-calibration multiplier applied on top of jitterFor's rule.
const (
	synthTvSpreadMS       = 25.0 // stddev of the per-device Tv residual around the family mean
	synthTnRemoveSpreadMS = 2.0  // stddev of the per-device TnRemove residual
	synthJitterLo         = 0.75 // jitter calibration multiplier bounds
	synthJitterHi         = 1.6
)

// Synthesize builds a calibrated synthetic profile. The rng is the
// device's own stream (the fleet generator derives one per device index);
// Synthesize derives the named sub-streams "device/timing" and
// "device/jitter" from it, in that order, and draws a fixed number of
// values from each, so the derivation is reproducible and independent of
// any other device's.
func Synthesize(spec SynthSpec, rng *simrand.Source) Profile {
	base := baseFor(spec.Version)
	timing := rng.Derive("device/timing")
	jitterRng := rng.Derive("device/jitter")

	ts := spec.TimingScale
	if ts <= 0 {
		ts = 1
	}
	ns := spec.NotifPathScale
	if ns <= 0 {
		ns = 1
	}

	// Per-device calibration residuals, drawn from the explicit timing
	// sub-stream: the slow-view-construction / slow-remove-path spread
	// that Table II shows phones of the same version and OEM still have.
	// The Tv residual centers on the family mean the way newProfile
	// absorbs each seed phone's Table-II residual into Tv.
	tvResidual := timing.Normal(spec.TvResidualMS, synthTvSpreadMS)
	if tvResidual < 0 {
		tvResidual = 0
	}
	tnRemoveResidual := math.Abs(timing.Normal(0, synthTnRemoveSpreadMS))
	// The jitter calibration comes from its own stream: widening the
	// timing spreads above cannot change a device's jitter character.
	jitterCal := jitterRng.TruncNormal(1, 0.2, synthJitterLo, synthJitterHi)

	height := notifHeightPx(spec.DPI)
	tv := base.tv*ts*ns + tvResidual
	tnRemove := base.tnRemove*ts*ns + tnRemoveResidual

	calDist := func(mean float64) simrand.Dist {
		return simrand.NormalDist(mean, jitterFor(mean)*jitterCal)
	}
	scaleBounded := func(d simrand.Dist) simrand.Dist {
		d.Mean *= ts
		d.Jitter *= ts * jitterCal
		d.Min *= ts
		d.Max *= ts
		return d
	}

	p := Profile{
		Manufacturer:      spec.Manufacturer,
		Model:             spec.Model,
		Family:            spec.Family,
		Version:           spec.Version,
		ScreenW:           spec.ScreenW,
		ScreenH:           spec.ScreenH,
		DPI:               spec.DPI,
		NotifViewHeightPx: height,
		Tam:               scaleBounded(base.tam),
		Trm:               scaleBounded(base.trm),
		TnShow:            calDist(base.tnShow * ts * ns),
		TnRemove:          calDist(tnRemove),
		Tas:               scaleBounded(base.tas),
		Tv:                calDist(tv),
		ToastCreate:       calDist(base.tas.Mean*ts + 3),
		ToastNotify:       calDist(base.tam.Mean*ts + 1),
		LoadFactor:        1,
		AnimatorScale:     spec.AnimatorScale,
		AnimationsOff:     spec.AnimationsOff,
	}
	return p
}
