package device

import "sync"

// Catalog is a set of device profiles behind one lookup surface. Two
// implementations exist: the hand-calibrated seed catalog below (the 30
// Table-I/II phones, byte-identical to the historical package-level
// Profiles()/ByModel()/Default() results) and the generated fleets of
// internal/fleet, which synthesize thousands of market-weighted profiles.
// Experiments take a Catalog instead of calling the package-level lookup
// functions, so the same experiment code runs unmodified against either
// population.
type Catalog interface {
	// Name identifies the catalog for experiment params and journal
	// identity, e.g. "seed" or "fleet(size=1000,seed=42)". Two catalogs
	// with the same Name must hold the same profiles.
	Name() string
	// Profiles lists every profile, in the catalog's canonical order.
	// Callers must not mutate the returned slice.
	Profiles() []Profile
	// ByModel finds a profile by model name; ok is false when absent.
	ByModel(model string) (Profile, bool)
	// Default is the catalog's representative device — the profile an
	// experiment falls back to when it does not care which phone it runs
	// on. For the seed catalog this is the paper's demo phone (Pixel 2,
	// Android 11); a fleet returns its highest-market-share device.
	Default() Profile
}

// seedCatalog is the hand-calibrated Table-I/II set. Profiles are built
// once and shared; Profile is a value type, so handing out copies of the
// slice elements keeps the cache immutable.
type seedCatalog struct {
	profiles []Profile
	byModel  map[string]int
}

var (
	seedOnce sync.Once
	seedCat  *seedCatalog
)

// Seed returns the seed catalog: the 30 evaluation devices of Tables I
// and II, byte-identical to the historical package-level Profiles(). The
// catalog is built once and cached; it is safe for concurrent use.
func Seed() Catalog {
	seedOnce.Do(func() {
		profiles := seedProfiles()
		byModel := make(map[string]int, len(profiles))
		for i, p := range profiles {
			byModel[p.Model] = i
		}
		seedCat = &seedCatalog{profiles: profiles, byModel: byModel}
	})
	return seedCat
}

func (c *seedCatalog) Name() string { return "seed" }

// Profiles returns a fresh copy: the historical package-level Profiles()
// rebuilt its slice on every call, so callers may have learned to mutate
// the result, and the shared cache must not be corruptible.
func (c *seedCatalog) Profiles() []Profile {
	out := make([]Profile, len(c.profiles))
	copy(out, c.profiles)
	return out
}

func (c *seedCatalog) ByModel(model string) (Profile, bool) {
	i, ok := c.byModel[model]
	if !ok {
		return Profile{}, false
	}
	return c.profiles[i], true
}

// Default returns the Google Pixel 2 on Android 11, the phone of the
// paper's demo video.
func (c *seedCatalog) Default() Profile {
	if p, ok := c.ByModel("pixel 2"); ok {
		return p
	}
	// The catalog is static, so this is unreachable unless it is edited
	// badly; degrade to the first profile rather than crashing.
	return c.profiles[0]
}

// ByVersionIn returns all profiles in cat running the given major Android
// version, in catalog order.
func ByVersionIn(cat Catalog, major int) []Profile {
	var out []Profile
	for _, p := range cat.Profiles() {
		if p.Version.Major == major {
			out = append(out, p)
		}
	}
	return out
}
