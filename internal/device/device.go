// Package device models the 30 smartphones of the paper's evaluation
// (Tables I and II) as timing profiles for the simulated Android stack.
//
// A profile carries the latency distributions named in the paper's Fig. 3:
//
//	Tam — app→System Server latency of an addView Binder call
//	Trm — app→System Server latency of a removeView Binder call
//	Tas — System Server processing time to create and attach the overlay
//	Tn  — System Server→System UI notification latency (show and remove
//	      directions are separate; heavily skinned OSes have slow paths)
//	Tv  — System UI time to construct the notification view and prepare
//	      the slide-down animation
//
// plus the version-specific behaviours the paper reports: Android 10's
// 100 ms Android-Notification-Assistant (ANA) delay before the alert is
// sent (200 ms on Android 11), and Android 10/11's significantly reduced
// Trm, which widens the mistouch window Tmis = Tam + Tas − Trm and lowers
// the touch-capture rate (Fig. 8).
//
// Because we cannot run on the physical phones, each profile is calibrated
// so that its *analytical* upper boundary of the attacking window D for the
// Λ1 outcome reproduces the paper's Table II measurement. The calibration
// residual is absorbed by Tv (slow view construction) or the remove-path
// notification latency, never by Trm, so the mistouch model stays faithful
// to the paper's version-level findings.
package device

import (
	"fmt"
	"math"
	"time"

	"repro/internal/anim"
	"repro/internal/simrand"
)

// AndroidVersion identifies an Android release.
type AndroidVersion struct {
	// Major is the numeric major version (8, 9, 10, 11).
	Major int
	// Label is the display label, e.g. "9.1".
	Label string
}

// V returns the version with a plain major label.
func V(major int) AndroidVersion {
	return AndroidVersion{Major: major, Label: fmt.Sprintf("%d", major)}
}

// String renders the display label.
func (v AndroidVersion) String() string { return v.Label }

// ANADelay reports the deliberate delay the System Server adds before
// sending the overlay alert, to give the Android Notification Assistant
// time to initialize: 100 ms on Android 10 and 200 ms on Android 11.
func (v AndroidVersion) ANADelay() time.Duration {
	switch {
	case v.Major >= 11:
		return 200 * time.Millisecond
	case v.Major == 10:
		return 100 * time.Millisecond
	default:
		return 0
	}
}

// Profile is a device timing model.
type Profile struct {
	// Manufacturer and Model identify the phone as in Table I.
	Manufacturer, Model string
	// Version is the Android release the phone runs (Table II).
	Version AndroidVersion

	// ScreenW and ScreenH are the display size in pixels; DPI is the
	// density.
	ScreenW, ScreenH int
	DPI              float64
	// NotifViewHeightPx is the height of the notification alert view in
	// pixels (72 px on the paper's Nexus 6P).
	NotifViewHeightPx int

	// Binder latencies (Fig. 3 labels).
	Tam, Trm simrand.Dist
	// TnShow and TnRemove are the System Server→System UI latencies for
	// posting and removing the overlay alert.
	TnShow, TnRemove simrand.Dist
	// Tas is the System Server processing time to create and attach an
	// overlay window.
	Tas simrand.Dist
	// Tv is System UI's notification-view construction + animation
	// preparation time.
	Tv simrand.Dist
	// ToastCreate is the System Server time to create and attach a toast
	// window (the inter-toast gap Tas of Fig. 5).
	ToastCreate simrand.Dist
	// ToastNotify is the app→System Server latency of Toast.show().
	ToastNotify simrand.Dist

	// PaperUpperBoundD is the Table II measurement this profile is
	// calibrated against (zero for synthetic profiles).
	PaperUpperBoundD time.Duration

	// LoadFactor scales all processing latencies; 1 is unloaded. The
	// paper finds load influence negligible, which the small scaling
	// below reproduces.
	LoadFactor float64

	// AnimatorScale is the device's effective animator_duration_scale:
	// the product of the OEM skin's animation-duration scaling family and
	// the user's developer setting. Window-animation durations (the
	// notification slide-down among them) are multiplied by it. Zero
	// means unset and is treated as the stock 1.0, so the zero value —
	// and every hand-calibrated seed profile — keeps today's behaviour.
	AnimatorScale float64
	// AnimationsOff marks the accessibility population running with
	// animator_duration_scale = 0: window animations are disabled and the
	// alert view becomes fully visible on its first frame, which is why
	// this slice of the fleet resists the draw-and-destroy attack.
	AnimationsOff bool

	// Family names the OEM animation/market family a generated profile
	// was drawn from (empty for the hand-calibrated seed profiles).
	Family string
}

// jitterFor gives each latency a modest spread: 6% of the mean with a
// 0.4 ms floor and a 2.5 ms cap — view inflation and notification-path
// latencies vary by a few milliseconds regardless of their mean, matching
// the tight repeatability the paper's 5 ms-resolution probing reports.
func jitterFor(mean float64) float64 {
	return math.Min(math.Max(0.06*mean, 0.4), 2.5)
}

func dist(mean float64) simrand.Dist {
	return simrand.NormalDist(mean, jitterFor(mean))
}

// versionBase holds the per-Android-version latency model before
// per-device calibration. Tam, Trm and Tas use *bounded* distributions
// with min(Tam)+min(Tas) ≥ max(Trm): the app issues removeView and addView
// back-to-back on its main thread, so their relative ordering at the
// System Server is deterministic in practice — the paper observes the
// adding event "always" arrives first and the new overlay "always"
// attaches after the old one is removed (Tmis ≥ 0). Occasional scheduler
// spikes on Tas only widen the gap, never invert it.
type versionBase struct {
	tam, trm, tas        simrand.Dist
	tnShow, tnRemove, tv float64
}

func bounded(mean, jitter, lo, hi float64) simrand.Dist {
	return simrand.Dist{Kind: simrand.DistNormal, Mean: mean, Jitter: jitter, Min: lo, Max: hi}
}

// Per-version Tmis calibration (E[Tmis] = E[Tam]+E[Tas]−E[Trm]): ≈0.55 ms
// on Android 8/9 ("Tmis approaches 0"), ≈2.2 ms on Android 10 and ≈2 ms on
// Android 11, fitted jointly against Fig. 8 (capture rate ≈90% at
// D = 200 ms on Android 10, above it on 8/9) and Table III (per-keystroke
// down-loss well under 1.5%).
func baseFor(v AndroidVersion) versionBase {
	tam := bounded(3, 0.1, 2.85, 3.15)
	switch {
	case v.Major >= 11:
		// Android 11 behaves like 10 with a slightly larger Trm.
		tas := bounded(7, 0.25, 6.6, 7.4)
		tas.SpikeProb, tas.SpikeMean = 0.015, 18
		return versionBase{tam: tam, trm: bounded(8, 0.2, 7.6, 8.4), tas: tas, tnShow: 5, tnRemove: 5, tv: 8}
	case v.Major == 10:
		// Trm significantly reduced on Android 10 (paper, Fig. 8
		// analysis), widening Tmis = Tam + Tas − Trm.
		tas := bounded(7, 0.25, 6.6, 7.4)
		tas.SpikeProb, tas.SpikeMean = 0.015, 18
		return versionBase{tam: tam, trm: bounded(7.8, 0.2, 7.4, 8.2), tas: tas, tnShow: 5, tnRemove: 5, tv: 8}
	case v.Major == 9:
		tas := bounded(9.5, 0.2, 9.2, 9.8)
		tas.SpikeProb, tas.SpikeMean = 0.01, 16
		return versionBase{tam: tam, trm: bounded(11.95, 0.1, 11.8, 12.05), tas: tas, tnShow: 5, tnRemove: 5, tv: 8}
	default: // Android 8
		tas := bounded(9, 0.2, 8.7, 9.3)
		tas.SpikeProb, tas.SpikeMean = 0.01, 16
		return versionBase{tam: tam, trm: bounded(11.45, 0.1, 11.3, 11.55), tas: tas, tnShow: 5, tnRemove: 5, tv: 8}
	}
}

// notifHeightPx computes the alert view height for a density: 22.4 dp, the
// value that reproduces the paper's 72 px on the Nexus 6P (515 dpi).
func notifHeightPx(dpi float64) int {
	return int(math.Round(22.4 * dpi / 160))
}

// FirstVisibleFrameOffset computes when the stock slide-down animation
// first renders a visible pixel of the alert view: the earliest 10 ms
// frame at which ⌊height·completeness⌋ ≥ 1 under FastOutSlowIn easing.
func FirstVisibleFrameOffset(heightPx int) time.Duration {
	return FirstVisibleFrameOffsetIn(heightPx, anim.NotificationSlideDuration)
}

// FirstVisibleFrameOffsetIn is FirstVisibleFrameOffset for an arbitrary
// slide duration — devices with a scaled animator_duration_scale run the
// same easing curve over a different span.
func FirstVisibleFrameOffsetIn(heightPx int, slide time.Duration) time.Duration {
	if slide <= anim.DefaultFrameInterval {
		return anim.DefaultFrameInterval
	}
	ip := anim.FastOutSlowIn()
	for f := anim.DefaultFrameInterval; f <= slide; f += anim.DefaultFrameInterval {
		x := float64(f) / float64(slide)
		if anim.VisiblePixels(heightPx, ip.Interpolate(x)) >= 1 {
			return f
		}
	}
	return slide
}

// SlideDuration reports the device's effective notification slide-down
// duration: the stock 360 ms scaled by AnimatorScale, floored at one
// frame, or a single frame (effectively instant) when animations are off.
func (p Profile) SlideDuration() time.Duration {
	if p.AnimationsOff {
		return anim.DefaultFrameInterval
	}
	scale := p.AnimatorScale
	if scale <= 0 {
		scale = 1
	}
	d := time.Duration(float64(anim.NotificationSlideDuration) * scale)
	if d < anim.DefaultFrameInterval {
		d = anim.DefaultFrameInterval
	}
	return d
}

// newProfile builds a calibrated profile. paperD is the Table II upper
// boundary of D for the Λ1 outcome on this phone.
func newProfile(manufacturer, model string, v AndroidVersion, paperDMS int, w, h int, dpi float64) Profile {
	base := baseFor(v)
	height := notifHeightPx(dpi)
	tfv := float64(FirstVisibleFrameOffset(height)) / float64(time.Millisecond)
	ana := float64(v.ANADelay()) / float64(time.Millisecond)

	// Analytical Λ1 bound with the base parameters:
	//   D ≤ Tam + Tas + ANA + TnShow + Tv + Tfv − Trm − TnRemove
	// The calibration targets the paper's bound plus 10 ms of headroom:
	// the paper's naked-eye probing tolerates sporadic sub-frame slivers
	// that the simulation's strict Λ1 predicate counts as failures.
	baseBound := base.tam.Mean + base.tas.Mean + ana + base.tnShow + base.tv + tfv -
		base.trm.Mean - base.tnRemove
	residual := float64(paperDMS) + 10 - baseBound
	tv, tnRemove := base.tv, base.tnRemove
	if residual >= 0 {
		tv += residual // slower view construction on this phone
	} else {
		tnRemove += -residual // slower remove-notification path
	}

	return Profile{
		Manufacturer:      manufacturer,
		Model:             model,
		Version:           v,
		ScreenW:           w,
		ScreenH:           h,
		DPI:               dpi,
		NotifViewHeightPx: height,
		Tam:               base.tam,
		Trm:               base.trm,
		TnShow:            dist(base.tnShow),
		TnRemove:          dist(tnRemove),
		Tas:               base.tas,
		Tv:                dist(tv),
		ToastCreate:       dist(base.tas.Mean + 3),
		ToastNotify:       dist(base.tam.Mean + 1),
		PaperUpperBoundD:  time.Duration(paperDMS) * time.Millisecond,
		LoadFactor:        1,
	}
}

// ExpectedUpperBoundD computes the profile's analytical Λ1 bound from the
// distribution means (Section III-D, inequality (3) instantiated with the
// full pipeline). Tests check it against PaperUpperBoundD.
func (p Profile) ExpectedUpperBoundD() time.Duration {
	tfv := FirstVisibleFrameOffsetIn(p.NotifViewHeightPx, p.SlideDuration())
	sum := p.Tam.MeanDuration() + p.Tas.MeanDuration() + p.Version.ANADelay() +
		p.TnShow.MeanDuration() + p.Tv.MeanDuration() + tfv -
		p.Trm.MeanDuration() - p.TnRemove.MeanDuration()
	if sum < 0 {
		return 0
	}
	return sum
}

// ExpectedTmis reports the analytical mistouch window
// E[Tmis] = E[Tas] + E[Tam] − E[Trm], floored at zero (Section III-D).
func (p Profile) ExpectedTmis() time.Duration {
	t := p.Tas.MeanDuration() + p.Tam.MeanDuration() - p.Trm.MeanDuration()
	if t < 0 {
		return 0
	}
	return t
}

// scaleLatencies multiplies every latency distribution of the profile —
// mean, jitter and clamp bounds alike — by scale, in place. It is the one
// shared derivation WithLoad and the fleet generator's OEM timing scaling
// both route through, so the two stay consistent.
func (p *Profile) scaleLatencies(scale float64) {
	for _, d := range []*simrand.Dist{&p.Tam, &p.Trm, &p.TnShow, &p.TnRemove, &p.Tas, &p.Tv, &p.ToastCreate, &p.ToastNotify} {
		d.Mean *= scale
		d.Jitter *= scale
		d.Min *= scale
		d.Max *= scale
	}
}

// WithLoad returns a copy of the profile with n background apps' load
// applied. The paper finds load influence on the D bound negligible; each
// background app inflates processing latencies by 0.4%, which shifts the
// bound by well under one frame. The derivation is a pure function of the
// profile and n — any randomness in how many background apps a synthetic
// device carries belongs to the caller's explicit simrand sub-stream (the
// fleet generator draws n from its "fleet/load" stream), never to profile
// construction order.
func (p Profile) WithLoad(nApps int) Profile {
	if nApps <= 0 {
		return p
	}
	scale := 1 + 0.004*float64(nApps)
	out := p
	out.LoadFactor = scale
	out.scaleLatencies(scale)
	return out
}

// Name renders "manufacturer model (Android X)".
func (p Profile) Name() string {
	return fmt.Sprintf("%s %s (Android %s)", p.Manufacturer, p.Model, p.Version)
}

// seedProfiles builds the 30 evaluation devices of Tables I and II. Note:
// Table I lists the Pixel 2 XL and Pixel 4 under Android 9 while Table II
// lists them under Android 10; we follow Table II, whose per-device D
// bounds are the calibration target.
func seedProfiles() []Profile {
	return []Profile{
		newProfile("Samsung", "s8", V(8), 60, 1440, 2960, 570),
		newProfile("Samsung", "SMG9", V(9), 240, 1440, 2960, 570),
		newProfile("Google", "nexus6p", V(8), 150, 1440, 2560, 515),
		newProfile("Google", "pixel 2xl", V(10), 225, 1440, 2880, 538),
		newProfile("Google", "pixel 4", V(10), 185, 1080, 2280, 444),
		newProfile("Google", "pixel 2", V(11), 330, 1080, 1920, 441),
		newProfile("Xiaomi", "mi5", V(8), 125, 1080, 1920, 428),
		newProfile("Xiaomi", "mix 2s", V(9), 155, 1080, 2160, 403),
		newProfile("Xiaomi", "mi8", V(9), 215, 1080, 2248, 402),
		newProfile("Xiaomi", "mi6", V(9), 215, 1080, 1920, 428),
		newProfile("Xiaomi", "Redmi", V(10), 395, 1080, 2340, 403),
		newProfile("Xiaomi", "mi8-10", V(10), 300, 1080, 2248, 402),
		newProfile("Xiaomi", "mix3", V(10), 220, 1080, 2340, 403),
		newProfile("Xiaomi", "mi9", V(10), 210, 1080, 2340, 403),
		newProfile("Xiaomi", "mi10", V(11), 290, 1080, 2340, 386),
		newProfile("Huawei", "mate20", V(9), 200, 1080, 2244, 381),
		newProfile("Huawei", "EML-AL00", V(9), 365, 1080, 2244, 428),
		newProfile("Huawei", "PAR-AL00", V(9), 130, 1080, 2340, 409),
		newProfile("Huawei", "nova3", AndroidVersion{Major: 9, Label: "9.1"}, 285, 1080, 2340, 409),
		newProfile("Huawei", "mate20 x", V(10), 260, 1080, 2244, 345),
		newProfile("Huawei", "ELS-AN00", V(10), 220, 1200, 2640, 441),
		newProfile("Huawei", "ELE-AL00", V(10), 220, 1080, 2340, 422),
		newProfile("Huawei", "OXF-AN00", V(10), 240, 1080, 2400, 409),
		newProfile("Huawei", "HLK-AL00", V(10), 215, 1080, 2340, 409),
		newProfile("Oppo", "PMEM00", V(9), 135, 1080, 2340, 402),
		newProfile("Vivo", "x21iA", V(9), 85, 1080, 2280, 402),
		newProfile("Vivo", "v1816A", V(9), 95, 1080, 2340, 402),
		newProfile("Vivo", "v1813BA", V(9), 215, 1080, 2340, 402),
		newProfile("Vivo", "v1813A", V(9), 85, 1080, 2340, 402),
		newProfile("Vivo", "V1986A", V(10), 80, 1080, 2340, 402),
	}
}

// Profiles returns the 30 evaluation devices of Tables I and II.
//
// Deprecated: thin wrapper over Seed().Profiles(). New code should take a
// Catalog and call Profiles on it, so it also runs against generated
// fleets.
func Profiles() []Profile { return Seed().Profiles() }

// ByModel finds a profile by model name. ok is false if not found.
//
// Deprecated: thin wrapper over Seed().ByModel(model). New code should
// take a Catalog and resolve models against it.
func ByModel(model string) (Profile, bool) { return Seed().ByModel(model) }

// ByVersion returns all profiles running the given major Android version.
//
// Deprecated: thin wrapper over ByVersionIn(Seed(), major).
func ByVersion(major int) []Profile { return ByVersionIn(Seed(), major) }

// Default returns the profile used by the examples and quick tests: the
// Google Pixel 2 on Android 11, the phone of the paper's demo video.
//
// Deprecated: thin wrapper over Seed().Default(). New code should take a
// Catalog and use its Default.
func Default() Profile { return Seed().Default() }
