// Package simrand provides deterministic random-number utilities for the
// simulation: named sub-streams derived from a master seed, and the latency
// distributions (normal, lognormal, truncated) used by the Binder and
// device timing models. Every experiment takes an explicit seed so runs are
// reproducible.
package simrand

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/rand"
	"time"
)

// Source is a deterministic random stream. It wraps math/rand with
// domain-specific draws used across the simulator.
type Source struct {
	rng *rand.Rand
}

// New returns a Source seeded with seed.
func New(seed int64) *Source {
	return &Source{rng: rand.New(rand.NewSource(seed))}
}

// Derive returns a child Source whose seed is a hash of the parent seed
// space and name. Distinct names yield independent streams, so adding draws
// to one component does not perturb another ("seed hygiene").
func (s *Source) Derive(name string) *Source {
	h := fnv.New64a()
	// Writing to an fnv hash never fails.
	_, _ = h.Write([]byte(name))
	mix := int64(h.Sum64()) //nolint:gosec // deliberate wraparound mix
	return New(mix ^ s.rng.Int63())
}

// DeriveIndexed returns a child stream for name[i]; convenient for
// per-participant or per-device streams.
func (s *Source) DeriveIndexed(name string, i int) *Source {
	return s.Derive(fmt.Sprintf("%s[%d]", name, i))
}

// Float64 draws from [0,1).
func (s *Source) Float64() float64 { return s.rng.Float64() }

// Intn draws a uniform int from [0,n). It panics if n <= 0, matching
// math/rand semantics.
func (s *Source) Intn(n int) int { return s.rng.Intn(n) }

// Perm returns a random permutation of [0,n).
func (s *Source) Perm(n int) []int { return s.rng.Perm(n) }

// Bool draws true with probability p (clamped to [0,1]).
func (s *Source) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return s.rng.Float64() < p
}

// Normal draws from N(mean, stddev²).
func (s *Source) Normal(mean, stddev float64) float64 {
	return mean + stddev*s.rng.NormFloat64()
}

// TruncNormal draws from N(mean, stddev²) truncated to [lo, hi] by
// rejection, falling back to clamping after 64 rejected draws (which only
// happens for pathological bounds).
func (s *Source) TruncNormal(mean, stddev, lo, hi float64) float64 {
	if lo > hi {
		lo, hi = hi, lo
	}
	for i := 0; i < 64; i++ {
		v := s.Normal(mean, stddev)
		if v >= lo && v <= hi {
			return v
		}
	}
	return math.Min(math.Max(mean, lo), hi)
}

// LogNormal draws from a lognormal distribution parameterized by the mean
// and stddev of the underlying normal (mu, sigma).
func (s *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(s.Normal(mu, sigma))
}

// Exp draws from an exponential distribution with the given mean.
func (s *Source) Exp(mean float64) float64 {
	return s.rng.ExpFloat64() * mean
}

// Dist describes a latency distribution in a device profile. The zero value
// is a degenerate distribution that always returns 0.
type Dist struct {
	// Kind selects the distribution family.
	Kind DistKind
	// Mean is the central value in milliseconds.
	Mean float64
	// Jitter is the spread parameter in milliseconds (stddev for normal
	// kinds; ignored for constant).
	Jitter float64
	// Min and Max clamp the draw (both in milliseconds); Max <= 0 means
	// no upper clamp.
	Min, Max float64
	// SpikeProb is the probability that a draw is replaced by a scheduler
	// spike of SpikeMean milliseconds (plus jitter); it models GC pauses
	// and priority inversion that the paper observes as outlier
	// mistouches.
	SpikeProb float64
	// SpikeMean is the spike magnitude in milliseconds.
	SpikeMean float64
}

// DistKind enumerates distribution families.
type DistKind int

// Distribution families. Constant ignores jitter; Normal is truncated at
// Min/Max; Exponential uses Mean only.
const (
	DistConstant DistKind = iota + 1
	DistNormal
	DistExponential
)

// Constant returns a degenerate distribution always yielding mean ms.
func Constant(meanMS float64) Dist {
	return Dist{Kind: DistConstant, Mean: meanMS}
}

// NormalDist returns a truncated-normal distribution (never below 0 ms).
func NormalDist(meanMS, jitterMS float64) Dist {
	return Dist{Kind: DistNormal, Mean: meanMS, Jitter: jitterMS, Min: 0}
}

// Sample draws one latency from d using stream s and converts it to a
// time.Duration. A zero-valued Dist samples 0.
func (d Dist) Sample(s *Source) time.Duration {
	if d.Kind == 0 {
		return 0
	}
	var ms float64
	switch d.Kind {
	case DistConstant:
		ms = d.Mean
	case DistNormal:
		hi := d.Max
		if hi <= 0 {
			hi = d.Mean + 8*d.Jitter + 1
		}
		ms = s.TruncNormal(d.Mean, d.Jitter, d.Min, hi)
	case DistExponential:
		ms = d.Min + s.Exp(d.Mean)
	default:
		panic(fmt.Sprintf("simrand: unknown DistKind %d", d.Kind))
	}
	if d.SpikeProb > 0 && s.Bool(d.SpikeProb) {
		ms += math.Abs(s.Normal(d.SpikeMean, d.SpikeMean/4+0.01))
	}
	if ms < 0 {
		ms = 0
	}
	return time.Duration(ms * float64(time.Millisecond))
}

// MeanDuration reports the distribution's nominal mean as a duration,
// ignoring spikes; used by analytical checks against Equation (2).
func (d Dist) MeanDuration() time.Duration {
	return time.Duration(d.Mean * float64(time.Millisecond))
}
