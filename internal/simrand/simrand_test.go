package simrand

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("draw %d diverged for identical seeds", i)
		}
	}
}

func TestDeriveIndependence(t *testing.T) {
	parent := New(7)
	a := parent.Derive("binder")
	b := parent.Derive("input")
	same := 0
	for i := 0; i < 100; i++ {
		if a.Float64() == b.Float64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("derived streams matched on %d/100 draws; expected independence", same)
	}
}

func TestDeriveIsStable(t *testing.T) {
	a := New(7).Derive("x")
	b := New(7).Derive("x")
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatalf("Derive not stable at draw %d", i)
		}
	}
}

func TestDeriveIndexedDistinct(t *testing.T) {
	parent := New(9)
	a := parent.DeriveIndexed("user", 0)
	b := parent.DeriveIndexed("user", 1)
	if a.Float64() == b.Float64() && a.Float64() == b.Float64() {
		t.Fatal("DeriveIndexed streams 0 and 1 appear identical")
	}
}

func TestBoolEdgeCases(t *testing.T) {
	s := New(1)
	for i := 0; i < 100; i++ {
		if s.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !s.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
		if s.Bool(-0.5) {
			t.Fatal("Bool(-0.5) returned true")
		}
		if !s.Bool(1.5) {
			t.Fatal("Bool(1.5) returned false")
		}
	}
}

func TestBoolFrequency(t *testing.T) {
	s := New(3)
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if s.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.02 {
		t.Fatalf("Bool(0.3) frequency = %.3f, want ≈0.3", got)
	}
}

func TestNormalMoments(t *testing.T) {
	s := New(5)
	const n = 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := s.Normal(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	stddev := math.Sqrt(sumSq/n - mean*mean)
	if math.Abs(mean-10) > 0.1 {
		t.Fatalf("mean = %.3f, want ≈10", mean)
	}
	if math.Abs(stddev-2) > 0.1 {
		t.Fatalf("stddev = %.3f, want ≈2", stddev)
	}
}

func TestTruncNormalRespectsBounds(t *testing.T) {
	prop := func(seed int64, rawLo, rawHi uint8) bool {
		lo := float64(rawLo)
		hi := float64(rawHi)
		s := New(seed)
		for i := 0; i < 50; i++ {
			v := s.TruncNormal(50, 30, lo, hi)
			effLo, effHi := lo, hi
			if effLo > effHi {
				effLo, effHi = effHi, effLo
			}
			if v < effLo || v > effHi {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTruncNormalSwapsBounds(t *testing.T) {
	s := New(11)
	v := s.TruncNormal(5, 1, 10, 0) // lo > hi: should behave as [0,10]
	if v < 0 || v > 10 {
		t.Fatalf("TruncNormal with swapped bounds = %v, want within [0,10]", v)
	}
}

func TestLogNormalPositive(t *testing.T) {
	s := New(13)
	for i := 0; i < 1000; i++ {
		if v := s.LogNormal(0, 1); v <= 0 {
			t.Fatalf("LogNormal drew %v, want > 0", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	s := New(17)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += s.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.15 {
		t.Fatalf("Exp(4) mean = %.3f, want ≈4", mean)
	}
}

func TestZeroDistSamplesZero(t *testing.T) {
	var d Dist
	s := New(1)
	if got := d.Sample(s); got != 0 {
		t.Fatalf("zero Dist sampled %v, want 0", got)
	}
}

func TestConstantDist(t *testing.T) {
	d := Constant(25)
	s := New(1)
	for i := 0; i < 10; i++ {
		if got := d.Sample(s); got != 25*time.Millisecond {
			t.Fatalf("Constant(25) sampled %v, want 25ms", got)
		}
	}
	if got := d.MeanDuration(); got != 25*time.Millisecond {
		t.Fatalf("MeanDuration = %v, want 25ms", got)
	}
}

func TestNormalDistNonNegative(t *testing.T) {
	d := NormalDist(2, 5) // heavy jitter relative to mean
	s := New(23)
	for i := 0; i < 2000; i++ {
		if got := d.Sample(s); got < 0 {
			t.Fatalf("NormalDist sampled %v, want >= 0", got)
		}
	}
}

func TestNormalDistMean(t *testing.T) {
	d := NormalDist(40, 3)
	s := New(29)
	const n = 20000
	var sum time.Duration
	for i := 0; i < n; i++ {
		sum += d.Sample(s)
	}
	mean := float64(sum) / float64(n) / float64(time.Millisecond)
	if math.Abs(mean-40) > 0.5 {
		t.Fatalf("mean = %.2f ms, want ≈40ms", mean)
	}
}

func TestSpikesIncreaseMean(t *testing.T) {
	base := NormalDist(10, 1)
	spiky := base
	spiky.SpikeProb = 0.2
	spiky.SpikeMean = 50
	s1, s2 := New(31), New(31)
	const n = 20000
	var sumBase, sumSpiky time.Duration
	for i := 0; i < n; i++ {
		sumBase += base.Sample(s1)
		sumSpiky += spiky.Sample(s2)
	}
	if sumSpiky <= sumBase {
		t.Fatalf("spiky mean %v <= base mean %v; spikes had no effect", sumSpiky/n, sumBase/n)
	}
}

func TestExponentialDistKind(t *testing.T) {
	d := Dist{Kind: DistExponential, Mean: 5, Min: 2}
	s := New(37)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		v := d.Sample(s)
		if v < 2*time.Millisecond {
			t.Fatalf("exponential draw %v below Min 2ms", v)
		}
		sum += float64(v) / float64(time.Millisecond)
	}
	if mean := sum / n; math.Abs(mean-7) > 0.3 {
		t.Fatalf("mean = %.2f ms, want ≈7ms (Min+Mean)", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	s := New(41)
	p := s.Perm(20)
	seen := make(map[int]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("Perm produced invalid permutation %v", p)
		}
		seen[v] = true
	}
}
