package experiment

import "testing"

// parallelHeavy marks the registered experiments whose full trial sets are
// expensive enough to skip under -short; the cheap ones always run at
// every worker count.
var parallelHeavy = map[string]bool{
	"table2":      true,
	"fig7":        true,
	"fig8":        true,
	"table3":      true,
	"corpus":      true,
	"precision":   true,
	"degradation": true,
}

// TestParallelDeterminism is the scheduler's contract: every registered
// experiment renders byte-identically at workers 1, 2 and 8. Any drift
// means a trial closure still touches a shared RNG stream at run time
// instead of deriving it in Trials.
func TestParallelDeterminism(t *testing.T) {
	// FleetSize keeps the fleet sweep's population small here; the default
	// 1000-device sweep belongs to the CLI, not the unit suite.
	cfg := Config{Model: "mi8", Trials: 1, CorpusN: 20000, FaultProfile: "chaos", FleetSize: 16, FleetSeed: 42}
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if testing.Short() && parallelHeavy[name] {
				t.Skip("heavy experiment skipped in -short mode")
			}
			var want Output
			for i, workers := range []int{1, 2, 8} {
				exp, err := New(name, cfg)
				if err != nil {
					t.Fatalf("New: %v", err)
				}
				out, err := Run(exp, RunOpts{Seed: 42, Workers: workers})
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if i == 0 {
					want = out
					continue
				}
				if out.Text != want.Text {
					t.Fatalf("workers=%d render differs from workers=1\n-- workers=1 --\n%s\n-- workers=%d --\n%s",
						workers, want.Text, workers, out.Text)
				}
				if out.Skipped != want.Skipped {
					t.Fatalf("workers=%d skipped %d trials, workers=1 skipped %d", workers, out.Skipped, want.Skipped)
				}
			}
		})
	}
}
