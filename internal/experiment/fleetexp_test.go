package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// fleetTestSize keeps the sweep's test population small enough for the
// suite while still covering several OEM families.
const fleetTestSize = 40

// TestGoldenFleet locks the market-weighted sweep report at the reference
// seeds (the fleet generation seed and the run seed move together, so a
// hard-coded 42 anywhere in generation or measurement cannot hide).
func TestGoldenFleet(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &fleetExp{size: fleetTestSize, fleetSeed: c.seed}
		out, err := Run(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("fleet (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "fleet"+c.suffix, out.Text)
	}
}

// TestFleetRegistryDefaults checks the registry wiring: zero Config values
// take the sweep defaults, explicit values flow into the journal params.
func TestFleetRegistryDefaults(t *testing.T) {
	exp, err := New("fleet", Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := exp.Params(), "size=1000 fleet-seed=42"; got != want {
		t.Errorf("default params = %q, want %q", got, want)
	}
	exp, err = New("fleet", Config{FleetSize: 5, FleetSeed: 3})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if got, want := exp.Params(), "size=5 fleet-seed=3"; got != want {
		t.Errorf("params = %q, want %q", got, want)
	}
}

// TestFleetJournalResume simulates a SIGKILL mid-sweep: a journal truncated
// after half the per-device records must resume to a report byte-identical
// to the uninterrupted baseline.
func TestFleetJournalResume(t *testing.T) {
	const seed = 7
	mk := func() *fleetExp { return &fleetExp{size: 10, fleetSeed: 7} }
	baseline, err := Run(mk(), RunOpts{Seed: seed})
	if err != nil {
		t.Fatalf("baseline fleet: %v", err)
	}

	dir := t.TempDir()
	full := filepath.Join(dir, "fleet.journal")
	j, err := OpenJournal(full, "fleet", seed, mk().Params())
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := Run(mk(), RunOpts{Seed: seed, Journal: j, Workers: 4}); err != nil {
		t.Fatalf("journaled fleet: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(full)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 6 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Keep the header plus half the records — the state a kill -9 leaves.
	truncated := bytes.Join(lines[:1+len(lines)/2], nil)
	part := filepath.Join(dir, "fleet-truncated.journal")
	if err := os.WriteFile(part, truncated, 0o644); err != nil {
		t.Fatalf("write truncated journal: %v", err)
	}
	j2, err := OpenJournal(part, "fleet", seed, mk().Params())
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j2.Close()
	resumed, err := Run(mk(), RunOpts{Seed: seed, Journal: j2, Workers: 4})
	if err != nil {
		t.Fatalf("resumed fleet: %v", err)
	}
	if resumed.Text != baseline.Text {
		t.Fatalf("resumed render diverges from baseline\n-- baseline --\n%s\n-- resumed --\n%s",
			baseline.Text, resumed.Text)
	}
}
