package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// OutcomeForD runs the draw-and-destroy overlay attack on one device with
// a given attacking window for attackDur and reports the worst Λ outcome
// the user could have seen. Extra assembly options (fault plane, invariant
// monitor) pass through to the stack.
func OutcomeForD(p device.Profile, d, attackDur time.Duration, seed int64, opts ...sysserver.Option) (sysui.Outcome, error) {
	st, err := assembleAttackStack(p, seed, opts...)
	if err != nil {
		return 0, err
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App:    AttackerApp,
		D:      d,
		Bounds: screenOf(p),
	})
	if err != nil {
		return 0, fmt.Errorf("experiment: build overlay attack: %w", err)
	}
	if err := atk.Start(); err != nil {
		return 0, fmt.Errorf("experiment: start overlay attack: %w", err)
	}
	st.Clock.MustAfter(attackDur, "experiment/stop", atk.Stop)
	if err := st.Clock.RunFor(attackDur + 5*time.Second); err != nil {
		return 0, fmt.Errorf("experiment: run: %w", err)
	}
	if err := atk.Err(); err != nil {
		return 0, err
	}
	return st.UI.WorstOutcome(), nil
}

// Fig6Point is one sample of the outcome-versus-D sweep.
type Fig6Point struct {
	// D is the attacking window.
	D time.Duration
	// Outcome is the worst Λ outcome observed at this D.
	Outcome sysui.Outcome
}

// fig6Exp regenerates the Figure 6 phenomenology on one device: sweeping D
// from well below to well above the device's bound produces the Λ1→Λ5
// progression of notification-visibility outcomes. One trial per sweep
// point.
type fig6Exp struct {
	model string
	cat   device.Catalog
	ds    []time.Duration
}

func (e *fig6Exp) Name() string   { return "fig6" }
func (e *fig6Exp) Params() string { return catParam("model="+e.model, e.cat) }

func (e *fig6Exp) Trials(seed int64) ([]Trial, error) {
	p, ok := catOr(e.cat).ByModel(e.model)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown device model %q", e.model)
	}
	bound := boundOf(p)
	// Sweep from 40% of the bound to bound + 750 ms in 30 ms steps: the
	// five outcome regimes all live in this range (Λ5 needs D past the
	// slide, text layout and message render), and the narrowest regime
	// (Λ3) is ~60 ms wide, so a 30 ms step cannot miss it.
	e.ds = nil
	var trials []Trial
	i := 0
	for d := bound * 2 / 5; d <= bound+750*time.Millisecond; d += 30 * time.Millisecond {
		d, i := d, i
		e.ds = append(e.ds, d)
		trials = append(trials, NewTrial(
			fmt.Sprintf("fig6 model=%s seed=%d d=%dms", e.model, seed, d/time.Millisecond),
			fmt.Sprintf("fig6 point D=%v", d),
			func() (sysui.Outcome, error) {
				var o sysui.Outcome
				err := safeTrial(fmt.Sprintf("fig6 point D=%v", d), func() error {
					var perr error
					o, perr = OutcomeForD(p, d, 6*time.Second, seed+int64(i))
					return perr
				})
				return o, err
			}))
		i++
	}
	return trials, nil
}

// points pairs the sweep's D values with the trial results.
func (e *fig6Exp) points(results []any) []Fig6Point {
	pts := make([]Fig6Point, len(results))
	for i := range results {
		pts[i] = Fig6Point{D: e.ds[i], Outcome: Res[sysui.Outcome](results, i)}
	}
	return pts
}

func (e *fig6Exp) Render(results []any) (Output, error) {
	return Output{Text: RenderFig6(e.model, e.points(results))}, nil
}

// Regimes compresses a Fig. 6 sweep into the first D at which each outcome
// was observed — the "five photos" of the paper's Fig. 6.
func Regimes(pts []Fig6Point) map[sysui.Outcome]time.Duration {
	firstAt := make(map[sysui.Outcome]time.Duration)
	for _, p := range pts {
		if _, seen := firstAt[p.Outcome]; !seen {
			firstAt[p.Outcome] = p.D
		}
	}
	return firstAt
}

// RenderFig6 formats the sweep as regime transitions plus the first D of
// each outcome.
func RenderFig6(model string, pts []Fig6Point) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Fig. 6 — notification-view outcomes v.s. D on %s\n", model)
	for i, p := range pts {
		if i == 0 || p.Outcome != pts[i-1].Outcome || i == len(pts)-1 {
			fmt.Fprintf(&sb, "  D = %4d ms  →  %s\n", p.D/time.Millisecond, p.Outcome)
		}
	}
	first := Regimes(pts)
	sb.WriteString("  first D per outcome:")
	for _, o := range []sysui.Outcome{sysui.Lambda1, sysui.Lambda2, sysui.Lambda3, sysui.Lambda4, sysui.Lambda5} {
		if d, ok := first[o]; ok {
			fmt.Fprintf(&sb, "  %s@%dms", o, d/time.Millisecond)
		} else {
			fmt.Fprintf(&sb, "  %s@-", o)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
