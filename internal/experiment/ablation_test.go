package experiment

import (
	"testing"
	"time"

	"repro/internal/sysui"
)

// TestAblations verifies each mechanism is load-bearing: removing it flips
// the corresponding outcome.
func TestAblations(t *testing.T) {
	rep, err := Ablations(71)
	if err != nil {
		t.Fatalf("Ablations: %v", err)
	}

	// 1. Without the slow-in animation the attack cannot suppress the
	//    alert even at its tuned D.
	if rep.SlideStock != sysui.Lambda1 {
		t.Errorf("stock slide outcome = %v, want Λ1", rep.SlideStock)
	}
	if rep.SlideInstant == sysui.Lambda1 {
		t.Error("instant alert still suppressed; the animation should be the vulnerability")
	}

	// 2. Removing the ANA delay shrinks the Android 10 bound by roughly
	//    the delay (100 ms).
	shrink := rep.BoundWithANA - rep.BoundWithoutANA
	if shrink < 70*time.Millisecond || shrink > 130*time.Millisecond {
		t.Errorf("ANA ablation shrank the bound by %v, want ≈100ms (with %v, without %v)",
			shrink, rep.BoundWithANA, rep.BoundWithoutANA)
	}

	// 3. The inverted call order keeps an overlay attached at all times,
	//    so the alert completes.
	if rep.OrderCorrect != sysui.Lambda1 {
		t.Errorf("correct order outcome = %v, want Λ1", rep.OrderCorrect)
	}
	if rep.OrderInverted != sysui.Lambda5 {
		t.Errorf("inverted order outcome = %v, want Λ5", rep.OrderInverted)
	}

	// 4. Without the fade-out the hand-off collapses to zero opacity —
	//    the flicker the Android defense wanted.
	if rep.MinAlphaStockFade < 0.5 {
		t.Errorf("stock fade min opacity = %.2f, want ≥ 0.5", rep.MinAlphaStockFade)
	}
	if rep.MinAlphaNoFade > 0.1 {
		t.Errorf("no-fade min opacity = %.2f, want ≈0 (visible flicker)", rep.MinAlphaNoFade)
	}

	if s := RenderAblations(rep); s == "" {
		t.Fatal("empty render")
	}
}
