package experiment

import (
	"context"
	"strings"
	"testing"

	"repro/internal/faults"
)

// TestDegradationDeterministic: the acceptance bar for the fault plane —
// the same seed and profile produce a byte-identical degradation report.
func TestDegradationDeterministic(t *testing.T) {
	run := func() string {
		rep, err := Degradation(context.Background(), 42, "chaos")
		if err != nil {
			t.Fatalf("Degradation: %v", err)
		}
		return RenderDegradation(rep)
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("degradation sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "intensity") {
		t.Fatalf("render missing sweep rows:\n%s", first)
	}
}

// TestDegradationZeroIntensityMatchesBaseline: the sweep's intensity-0 row
// is a genuinely unfaulted run — no injections, no skipped trials, no
// invariant violations.
func TestDegradationZeroIntensityMatchesBaseline(t *testing.T) {
	rep, err := Degradation(context.Background(), 7, "binder")
	if err != nil {
		t.Fatalf("Degradation: %v", err)
	}
	if len(rep.Points) == 0 || rep.Points[0].Intensity != 0 {
		t.Fatalf("sweep does not start at intensity 0: %+v", rep.Points)
	}
	p0 := rep.Points[0]
	if !p0.Faults.Zero() {
		t.Fatalf("intensity 0 injected faults: %s", p0.Faults)
	}
	if p0.SkippedTrials != 0 || p0.Violations != 0 {
		t.Fatalf("intensity 0 skipped %d trials, %d violations", p0.SkippedTrials, p0.Violations)
	}
}

// TestDegradationCancelReturnsPartial: cancelling mid-sweep surfaces the
// context error together with whatever points completed.
func TestDegradationCancelReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := Degradation(ctx, 1, "chaos")
	if err == nil {
		t.Fatal("cancelled sweep returned no error")
	}
	if rep == nil {
		t.Fatal("cancelled sweep returned nil report")
	}
}

// TestDefenseIPCFaultSurface: when a drop profile is active the IPC defense
// report must disclose both the profile and the exact number of silently
// dropped transactions — the detector's input stream was lossy.
func TestDefenseIPCFaultSurface(t *testing.T) {
	prof := faults.BinderStress()
	rep, err := DefenseIPCWith(11, prof)
	if err != nil {
		t.Fatalf("DefenseIPCWith: %v", err)
	}
	if rep.FaultProfile != prof.Name {
		t.Fatalf("FaultProfile = %q, want %q", rep.FaultProfile, prof.Name)
	}
	if rep.InjectedDrops == 0 {
		t.Fatal("binder-stress run recorded zero injected drops")
	}
	out := RenderDefenseIPC(rep)
	if !strings.Contains(out, "fault profile active:") || !strings.Contains(out, prof.Name) {
		t.Fatalf("render missing the fault-profile line:\n%s", out)
	}
	if !strings.Contains(out, "silently dropped by fault injection") {
		t.Fatalf("render missing the lossy-stream warning:\n%s", out)
	}
}

// TestDefenseIPCZeroProfileIdentical: the zero-fault strict no-op — running
// through the fault-aware entry point with the none profile renders
// byte-identically to the plain entry point.
func TestDefenseIPCZeroProfileIdentical(t *testing.T) {
	plain, err := DefenseIPC(5)
	if err != nil {
		t.Fatalf("DefenseIPC: %v", err)
	}
	viaNone, err := DefenseIPCWith(5, faults.None())
	if err != nil {
		t.Fatalf("DefenseIPCWith(none): %v", err)
	}
	a, b := RenderDefenseIPC(plain), RenderDefenseIPC(viaNone)
	if a != b {
		t.Fatalf("none profile is not a strict no-op:\n--- plain ---\n%s\n--- none ---\n%s", a, b)
	}
	if strings.Contains(a, "fault profile") {
		t.Fatalf("unfaulted render mentions faults:\n%s", a)
	}
}
