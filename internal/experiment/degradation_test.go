package experiment

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/simrand"
	"repro/internal/sysui"
)

// TestDegradationDeterministic: the acceptance bar for the fault plane —
// the same seed and profile produce a byte-identical degradation report.
func TestDegradationDeterministic(t *testing.T) {
	run := func() string {
		out, err := Run(&degradationExp{profileName: "chaos"}, RunOpts{Seed: 42})
		if err != nil {
			t.Fatalf("degradation: %v", err)
		}
		return out.Text
	}
	first, second := run(), run()
	if first != second {
		t.Fatalf("degradation sweep not deterministic:\n--- first ---\n%s\n--- second ---\n%s", first, second)
	}
	if !strings.Contains(first, "intensity") {
		t.Fatalf("render missing sweep rows:\n%s", first)
	}
}

// TestDegradationZeroIntensityMatchesBaseline: the sweep's intensity-0 row
// is a genuinely unfaulted run — no injections, no skipped trials, no
// invariant violations.
func TestDegradationZeroIntensityMatchesBaseline(t *testing.T) {
	e := &degradationExp{profileName: "binder"}
	results, err := Collect(e, RunOpts{Seed: 7})
	if err != nil {
		t.Fatalf("degradation: %v", err)
	}
	rep := e.report(results)
	if len(rep.Points) == 0 || rep.Points[0].Intensity != 0 {
		t.Fatalf("sweep does not start at intensity 0: %+v", rep.Points)
	}
	p0 := rep.Points[0]
	if !p0.Faults.Zero() {
		t.Fatalf("intensity 0 injected faults: %s", p0.Faults)
	}
	if p0.SkippedTrials != 0 || p0.Violations != 0 {
		t.Fatalf("intensity 0 skipped %d trials, %d violations", p0.SkippedTrials, p0.Violations)
	}
}

// TestDegradationCancel: cancelling the sweep surfaces the context error;
// with a journal attached the finished trials are preserved for a resume.
func TestDegradationCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Run(&degradationExp{profileName: "chaos"}, RunOpts{Ctx: ctx, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled sweep returned %v, want context.Canceled", err)
	}
}

// TestDefenseIPCFaultSurface: when a drop profile is active the IPC defense
// report must disclose both the profile and the exact number of silently
// dropped transactions — the detector's input stream was lossy.
func TestDefenseIPCFaultSurface(t *testing.T) {
	prof := faults.BinderStress()
	rep, err := DefenseIPCWith(11, prof)
	if err != nil {
		t.Fatalf("DefenseIPCWith: %v", err)
	}
	if rep.FaultProfile != prof.Name {
		t.Fatalf("FaultProfile = %q, want %q", rep.FaultProfile, prof.Name)
	}
	if rep.InjectedDrops == 0 {
		t.Fatal("binder-stress run recorded zero injected drops")
	}
	out := RenderDefenseIPC(rep)
	if !strings.Contains(out, "fault profile active:") || !strings.Contains(out, prof.Name) {
		t.Fatalf("render missing the fault-profile line:\n%s", out)
	}
	if !strings.Contains(out, "silently dropped by fault injection") {
		t.Fatalf("render missing the lossy-stream warning:\n%s", out)
	}
}

// TestDefenseIPCZeroProfileIdentical: the zero-fault strict no-op — running
// through the fault-aware entry point with the none profile renders
// byte-identically to the plain entry point.
func TestDefenseIPCZeroProfileIdentical(t *testing.T) {
	plain, err := DefenseIPC(5)
	if err != nil {
		t.Fatalf("DefenseIPC: %v", err)
	}
	viaNone, err := DefenseIPCWith(5, faults.None())
	if err != nil {
		t.Fatalf("DefenseIPCWith(none): %v", err)
	}
	a, b := RenderDefenseIPC(plain), RenderDefenseIPC(viaNone)
	if a != b {
		t.Fatalf("none profile is not a strict no-op:\n--- plain ---\n%s\n--- none ---\n%s", a, b)
	}
	if strings.Contains(a, "fault profile") {
		t.Fatalf("unfaulted render mentions faults:\n%s", a)
	}
}

// TestDegradationZeroIntensityTracksUnfaultedRunners: the intensity-0 row
// must reproduce the standalone, unfaulted runners exactly — the sweep's
// folding of Table II, §VII-A and §VII-B into the loop cannot change the
// zero-fault answers.
func TestDegradationZeroIntensityTracksUnfaultedRunners(t *testing.T) {
	const seed = 42
	e := &degradationExp{profileName: "chaos"}
	results, err := Collect(e, RunOpts{Seed: seed})
	if err != nil {
		t.Fatalf("degradation: %v", err)
	}
	p0 := e.report(results).Points[0]
	if p0.Intensity != 0 {
		t.Fatalf("first point at intensity %v", p0.Intensity)
	}

	bound, err := measureUpperBoundD(device.Default(), seed+1)
	if err != nil {
		t.Fatalf("measureUpperBoundD: %v", err)
	}
	if p0.BoundD != bound {
		t.Errorf("zero-intensity BoundD = %v, standalone bound = %v", p0.BoundD, bound)
	}

	ipc, err := DefenseIPC(seed + 4000)
	if err != nil {
		t.Fatalf("DefenseIPC: %v", err)
	}
	if p0.IPCDetected != ipc.AttackDetected || p0.IPCTerminated != ipc.AttackTerminated || p0.BenignFlagged != ipc.BenignFlagged {
		t.Errorf("zero-intensity IPC verdict (%v, %v, %d) != standalone (%v, %v, %d)",
			p0.IPCDetected, p0.IPCTerminated, p0.BenignFlagged,
			ipc.AttackDetected, ipc.AttackTerminated, ipc.BenignFlagged)
	}

	notif, err := DefenseNotif(seed + 5000)
	if err != nil {
		t.Fatalf("DefenseNotif: %v", err)
	}
	holds := notif.OutcomeWith == sysui.Lambda5 && notif.HonestAlertGone
	if p0.NotifHolds != holds {
		t.Errorf("zero-intensity NotifHolds = %v, standalone = %v", p0.NotifHolds, holds)
	}
}

// syntheticReport builds a degradation report whose six headline predicates
// follow the given hold/fail bit patterns (patterns[h][i] = headline h
// holds at intensity index i).
func syntheticReport(intensities []float64, patterns [6][]bool) *DegradationReport {
	rep := &DegradationReport{Profile: "synthetic", Seed: 0}
	for i, x := range intensities {
		pt := DegradationPoint{Intensity: x}
		pt.AlertSuppressed = patterns[0][i]
		if patterns[1][i] {
			pt.BoundD = time.Millisecond
		}
		pt.OrderingHolds = patterns[2][i]
		pt.StealTrials = 1
		if patterns[3][i] {
			pt.StealSuccess = 100
		}
		pt.IPCDetected = patterns[4][i]
		pt.IPCTerminated = patterns[4][i]
		pt.NotifHolds = patterns[5][i]
		rep.Points = append(rep.Points, pt)
	}
	return rep
}

// TestMonotoneAnomaliesProperty: for random hold/fail patterns, the
// anomaly scan must flag exactly the headlines where a failure at some
// intensity is followed by a hold at a strictly higher one — computed here
// by brute force over index pairs.
func TestMonotoneAnomaliesProperty(t *testing.T) {
	src := simrand.New(2024)
	intensities := DegradationIntensities()
	names := make([]string, 0, 6)
	for _, h := range degradationHeadlines() {
		names = append(names, h.name)
	}
	for trial := 0; trial < 300; trial++ {
		var patterns [6][]bool
		for h := range patterns {
			patterns[h] = make([]bool, len(intensities))
			for i := range patterns[h] {
				patterns[h][i] = src.Bool(0.5)
			}
		}
		got := MonotoneAnomalies(syntheticReport(intensities, patterns))

		var want []string
		for h := range patterns {
			// Brute force: first failing index, then the first holding
			// index after it.
			fail := -1
			for i, holds := range patterns[h] {
				if !holds {
					fail = i
					break
				}
			}
			if fail < 0 {
				continue
			}
			for i := fail + 1; i < len(intensities); i++ {
				if patterns[h][i] {
					want = append(want, fmt.Sprintf("%s: fails at intensity %.2f but holds at %.2f",
						names[h], intensities[fail], intensities[i]))
					break
				}
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: got %d anomalies, want %d\npatterns: %v\ngot: %q\nwant: %q",
				trial, len(got), len(want), patterns, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d: anomaly %d = %q, want %q", trial, i, got[i], want[i])
			}
		}
	}
}

// TestDegradationMonotoneHoldsClean: a monotone pattern (holds up to some
// cut, fails after) must never be flagged.
func TestDegradationMonotoneHoldsClean(t *testing.T) {
	intensities := DegradationIntensities()
	for cut := 0; cut <= len(intensities); cut++ {
		var patterns [6][]bool
		for h := range patterns {
			patterns[h] = make([]bool, len(intensities))
			for i := range patterns[h] {
				patterns[h][i] = i < cut
			}
		}
		if got := MonotoneAnomalies(syntheticReport(intensities, patterns)); len(got) != 0 {
			t.Fatalf("monotone pattern (cut %d) flagged: %q", cut, got)
		}
	}
}

// TestDegradationInvariantBreaks: the sweep-wide aggregation reports each
// rule's lowest breaking intensity and total count from the per-point
// violation maps.
func TestDegradationInvariantBreaks(t *testing.T) {
	rep := &DegradationReport{Points: []DegradationPoint{
		{Intensity: 0, ViolationsByRule: nil},
		{Intensity: 0.5, ViolationsByRule: map[string]int{"rule-b": 2}},
		{Intensity: 1, ViolationsByRule: map[string]int{"rule-a": 1, "rule-b": 3}},
	}}
	rows := rep.InvariantBreaks()
	if len(rows) != 2 {
		t.Fatalf("rows = %+v, want 2", rows)
	}
	if rows[0].Rule != "rule-b" || rows[0].FirstIntensity != 0.5 || rows[0].Total != 5 {
		t.Errorf("rows[0] = %+v", rows[0])
	}
	if rows[1].Rule != "rule-a" || rows[1].FirstIntensity != 1 || rows[1].Total != 1 {
		t.Errorf("rows[1] = %+v", rows[1])
	}
}
