package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// PasswordLengths are the Table III password lengths.
func PasswordLengths() []int { return []int{4, 6, 8, 10, 12} }

// ErrorKind classifies one failed password-stealing trial per the paper's
// taxonomy (Section VI-C1).
type ErrorKind int

// The Table III error kinds.
const (
	// ErrorNone means the full password was recovered.
	ErrorNone ErrorKind = iota + 1
	// ErrorLength means the derived password is shorter than the entered
	// one (a mistouch swallowed a keystroke).
	ErrorLength
	// ErrorCapitalization means same length, letters differ only in case
	// (a shift press was missed).
	ErrorCapitalization
	// ErrorWrongKey means same length but one or more characters differ
	// (touch scatter decoded to a neighboring key).
	ErrorWrongKey
)

// String renders the kind.
func (e ErrorKind) String() string {
	switch e {
	case ErrorNone:
		return "success"
	case ErrorLength:
		return "length"
	case ErrorCapitalization:
		return "capitalization"
	case ErrorWrongKey:
		return "wrong-key"
	default:
		return fmt.Sprintf("ErrorKind(%d)", int(e))
	}
}

// ClassifyTrial compares the attacker's derived password against the
// password the participant was asked to type.
func ClassifyTrial(intended, stolen string) ErrorKind {
	switch {
	case stolen == intended:
		return ErrorNone
	case len(stolen) != len(intended):
		return ErrorLength
	case strings.EqualFold(stolen, intended):
		return ErrorCapitalization
	default:
		return ErrorWrongKey
	}
}

// StealTrialResult is the full outcome of one password-stealing run.
type StealTrialResult struct {
	// Stolen is the attacker's derived password.
	Stolen string
	// VictimWidget is the text left in the real password widget.
	VictimWidget string
	// WorstOutcome is the most visible alert outcome during the trial
	// (Λ1 means the user could not have seen any alert).
	WorstOutcome sysui.Outcome
	// MinToastAlpha is the lowest combined fake-keyboard opacity sampled
	// after the first fade-in; near-zero means a visible flicker.
	MinToastAlpha float64
	// D is the attacking window the stealer used.
	D time.Duration
	// DownsCaptured counts intercepted keystroke coordinates.
	DownsCaptured uint64
	// Keystrokes is the number of presses the participant performed.
	Keystrokes int
}

// RunStealTrial executes one complete password-stealing run: victim login
// screen + real IME + armed stealer, with the participant typing the
// password. Extra assembly options (fault plane, invariant monitor) pass
// through to the stack.
func RunStealTrial(p device.Profile, typist *input.Typist, victim apps.VictimApp, password string, seed int64, opts ...sysserver.Option) (StealTrialResult, error) {
	var res StealTrialResult
	st, err := assembleAttackStack(p, seed, opts...)
	if err != nil {
		return res, err
	}
	sess, err := victim.NewLoginSession(st.Clock, screenOf(p))
	if err != nil {
		return res, fmt.Errorf("experiment: login session: %w", err)
	}
	kb, err := keyboard.New(sess.KeyboardBounds)
	if err != nil {
		return res, fmt.Errorf("experiment: keyboard: %w", err)
	}
	if _, err := ime.Show(st, kb, sess.Activity); err != nil {
		return res, fmt.Errorf("experiment: show ime: %w", err)
	}
	// The attacker fingerprints the phone and uses its Table II bound.
	d := time.Duration(float64(p.PaperUpperBoundD) * 0.9)
	res.D = d
	stealer, err := core.NewPasswordStealer(st, core.PasswordStealerConfig{
		App:      AttackerApp,
		Victim:   sess,
		Keyboard: kb,
		D:        d,
	})
	if err != nil {
		return res, fmt.Errorf("experiment: stealer: %w", err)
	}
	if err := stealer.Arm(); err != nil {
		return res, fmt.Errorf("experiment: arm stealer: %w", err)
	}

	// The user focuses the username, types a short username, then
	// focuses the password and types the study password.
	if err := sess.Activity.Focus(sess.Username); err != nil {
		return res, fmt.Errorf("experiment: focus username: %w", err)
	}
	for _, r := range "user01" {
		if err := sess.Activity.TypeRune(r); err != nil {
			return res, fmt.Errorf("experiment: type username: %w", err)
		}
	}
	var sink errSink
	st.Clock.MustAfter(500*time.Millisecond, "experiment/focusPassword", func() {
		if err := sess.Activity.Focus(sess.Password); err != nil {
			sink.setf("experiment: focus password: %w", err)
		}
	})
	ks, err := typist.PlanSession(kb, password, time.Second)
	if err != nil {
		return res, fmt.Errorf("experiment: plan password: %w", err)
	}
	if err := driveKeystrokes(st, ks, &sink); err != nil {
		return res, err
	}
	end, err := sessionEnd(ks)
	if err != nil {
		return res, err
	}
	// Sample the fake keyboard's combined alpha during the typing phase
	// (after the first fade-in has completed).
	res.MinToastAlpha = 2
	var sampleAlpha func()
	sampleAlpha = func() {
		if st.Clock.Now() > end {
			return
		}
		if a := st.WM.TopToastAlpha(AttackerApp); a < res.MinToastAlpha {
			res.MinToastAlpha = a
		}
		st.Clock.MustAfter(20*time.Millisecond, "experiment/alphaSample", sampleAlpha)
	}
	st.Clock.MustAfter(1500*time.Millisecond, "experiment/alphaSample", sampleAlpha)

	st.Clock.MustAfter(end, "experiment/stopStealer", stealer.Stop)
	if err := st.Clock.RunFor(end + 6*time.Second); err != nil {
		return res, fmt.Errorf("experiment: run: %w", err)
	}
	if err := sink.err; err != nil {
		return res, err
	}
	if err := stealer.Err(); err != nil {
		return res, fmt.Errorf("experiment: stealer: %w", err)
	}
	res.Stolen = stealer.StolenPassword()
	res.VictimWidget = sess.Password.Text()
	res.WorstOutcome = st.UI.WorstOutcome()
	res.DownsCaptured, _, _ = stealer.CaptureStats()
	res.Keystrokes = len(ks)
	if res.MinToastAlpha > 1 {
		res.MinToastAlpha = 1 // never sampled below the initial value
	}
	return res, nil
}

// TableIIIRow aggregates one password length's outcomes.
type TableIIIRow struct {
	Length               int
	Trials               int
	LengthErrors         int
	WrongKeyErrors       int
	CapitalizationErrors int
	Successes            int
	// Skipped counts trials that failed outright (panic or error inside
	// the trial) and were excluded; always 0 on a healthy run.
	Skipped int
}

// SuccessRate reports the percentage of fully recovered passwords.
func (r TableIIIRow) SuccessRate() float64 { return stats.Ratio(r.Successes, r.Trials) }

// stealTrialRecord is the journaled outcome of one Table III steal trial.
// The password itself is regenerated deterministically on replay (the
// generator stream must advance either way), so only the attacker's output
// and the skip flag need to persist.
type stealTrialRecord struct {
	Skipped bool   `json:"skipped,omitempty"`
	Stolen  string `json:"stolen"`
}

// stealTrialMeta is the per-trial context table3Exp.Trials stashes for
// Render: which row the trial belongs to and which password the
// participant was asked to type (needed to classify the stolen one).
type stealTrialMeta struct {
	length      int
	participant int
	password    string
}

// table3Exp regenerates Table III: for each password length, each of the
// 30 participants enters perParticipant random passwords spanning the
// sub-keyboards (10 in the paper).
type table3Exp struct {
	perParticipant int
	cat            device.Catalog
	meta           []stealTrialMeta
}

func (e *table3Exp) Name() string { return "table3" }
func (e *table3Exp) Params() string {
	return catParam(fmt.Sprintf("trials=%d", e.perParticipant), e.cat)
}

func (e *table3Exp) Trials(seed int64) ([]Trial, error) {
	if e.perParticipant <= 0 {
		return nil, fmt.Errorf("experiment: non-positive trials per participant %d", e.perParticipant)
	}
	root := simrand.New(seed)
	typists, err := input.Participants(root.Derive("typists"), NumParticipants)
	if err != nil {
		return nil, fmt.Errorf("experiment: participants: %w", err)
	}
	bofa, ok := apps.ByName("Bank of America")
	if !ok {
		return nil, fmt.Errorf("experiment: BofA app missing")
	}
	pwRNG := root.Derive("passwords")
	e.meta = e.meta[:0]
	var trials []Trial
	for li, length := range PasswordLengths() {
		for i := 0; i < NumParticipants; i++ {
			p := participantDevice(catOr(e.cat), i)
			for tr := 0; tr < e.perParticipant; tr++ {
				li, length, i, tr := li, length, i, tr
				// Every shared-stream draw happens here, in the exact order
				// the old sequential runner performed them — password first,
				// then the typing stream — so the trial closures are
				// independent and order-insensitive.
				password := input.RandomPassword(pwRNG, length)
				typist, err := typists[i].WithStream(root.DeriveIndexed("plan",
					(li*NumParticipants+i)*e.perParticipant+tr))
				if err != nil {
					return nil, fmt.Errorf("experiment: trial typist: %w", err)
				}
				e.meta = append(e.meta, stealTrialMeta{length: length, participant: i, password: password})
				trials = append(trials, NewTrial(
					fmt.Sprintf("table3 seed=%d trials=%d len=%d p=%d t=%d", seed, e.perParticipant, length, i, tr),
					fmt.Sprintf("steal trial (len %d, participant %d, trial %d)", length, i, tr),
					func() (stealTrialRecord, error) {
						var trial StealTrialResult
						err := safeTrial(fmt.Sprintf("steal trial (len %d, participant %d, trial %d)", length, i, tr), func() error {
							var terr error
							trial, terr = RunStealTrial(p, typist, bofa, password,
								seed+int64(li*100000+i*1000+tr))
							return terr
						})
						if err != nil {
							// One bad trial must not kill the sweep: record
							// the skip and move on.
							return stealTrialRecord{Skipped: true}, nil
						}
						return stealTrialRecord{Stolen: trial.Stolen}, nil
					}))
			}
		}
	}
	return trials, nil
}

// rows aggregates the per-trial records into the Table III rows.
func (e *table3Exp) rows(results []any) []TableIIIRow {
	byLength := make(map[int]*TableIIIRow)
	out := make([]TableIIIRow, len(PasswordLengths()))
	for li, length := range PasswordLengths() {
		out[li] = TableIIIRow{Length: length}
		byLength[length] = &out[li]
	}
	for ti, m := range e.meta {
		rec := Res[stealTrialRecord](results, ti)
		row := byLength[m.length]
		if rec.Skipped {
			row.Skipped++
			continue
		}
		row.Trials++
		switch ClassifyTrial(m.password, rec.Stolen) {
		case ErrorNone:
			row.Successes++
		case ErrorLength:
			row.LengthErrors++
		case ErrorCapitalization:
			row.CapitalizationErrors++
		case ErrorWrongKey:
			row.WrongKeyErrors++
		}
	}
	return out
}

func (e *table3Exp) Render(results []any) (Output, error) {
	rows := e.rows(results)
	skipped := 0
	for _, r := range rows {
		skipped += r.Skipped
	}
	return Output{Text: RenderTableIII(rows), Skipped: skipped}, nil
}

// RenderTableIII formats the table next to the paper's numbers.
func RenderTableIII(rows []TableIIIRow) string {
	paper := map[int]struct {
		length, wrong, caps int
		rate                float64
	}{
		4:  {10, 7, 6, 92.3},
		6:  {15, 8, 7, 90.0},
		8:  {19, 8, 9, 88.0},
		10: {23, 9, 9, 86.3},
		12: {26, 9, 12, 84.3},
	}
	var sb strings.Builder
	sb.WriteString("Table III — password stealing success v.s. length\n")
	sb.WriteString("  len  trials  lenErr  wrongKey  capErr  success   (paper: lenErr wrongKey capErr success)\n")
	skipped := 0
	for _, r := range rows {
		p := paper[r.Length]
		fmt.Fprintf(&sb, "  %3d  %6d  %6d  %8d  %6d  %6.1f%%   (paper: %6d %8d %6d %6.1f%%)\n",
			r.Length, r.Trials, r.LengthErrors, r.WrongKeyErrors, r.CapitalizationErrors,
			r.SuccessRate(), p.length, p.wrong, p.caps, p.rate)
		skipped += r.Skipped
	}
	if skipped > 0 {
		fmt.Fprintf(&sb, "  WARNING: %d trials failed and were skipped\n", skipped)
	}
	return sb.String()
}
