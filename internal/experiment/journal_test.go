package experiment

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig6Baseline computes the un-journaled reference render once per test.
func fig6Baseline(t *testing.T, seed int64) string {
	t.Helper()
	pts, err := Fig6("mi8", seed)
	if err != nil {
		t.Fatalf("baseline fig6: %v", err)
	}
	return RenderFig6("mi8", pts)
}

// completedFig6Journal runs a journaled fig6 sweep to completion and
// returns the raw journal bytes (header line + one line per sweep point).
func completedFig6Journal(t *testing.T, seed int64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig6.journal")
	j, err := OpenJournal(path, "fig6", seed, "model=mi8")
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := Fig6Journaled("mi8", seed, j); err != nil {
		t.Fatalf("journaled fig6: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return raw
}

// resumeFig6From writes raw as the journal file and resumes the sweep from
// it, returning the rendered report.
func resumeFig6From(t *testing.T, raw []byte, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig6.journal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write truncated journal: %v", err)
	}
	j, err := OpenJournal(path, "fig6", seed, "model=mi8")
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	pts, err := Fig6Journaled("mi8", seed, j)
	if err != nil {
		t.Fatalf("resumed fig6: %v", err)
	}
	return RenderFig6("mi8", pts)
}

// TestJournalResumeEveryBoundary simulates a crash after every record
// boundary of a fig6 sweep: for each prefix of the journal, a resumed run
// must produce a report byte-identical to the un-journaled baseline.
func TestJournalResumeEveryBoundary(t *testing.T) {
	const seed = 7
	want := fig6Baseline(t, seed)
	raw := completedFig6Journal(t, seed)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// lines[0] is the header; a crash can leave any number of records.
	for k := 1; k <= len(lines); k++ {
		prefix := bytes.Join(lines[:k], nil)
		if got := resumeFig6From(t, prefix, seed); got != want {
			t.Fatalf("resume from %d/%d journal lines diverges\nwant:\n%s\ngot:\n%s",
				k, len(lines), want, got)
		}
	}
}

// TestJournalResumeTornRecord simulates a crash mid-write: the journal
// ends with half a record line. The torn tail must be dropped and the
// resumed run must still match the baseline byte for byte.
func TestJournalResumeTornRecord(t *testing.T) {
	const seed = 7
	want := fig6Baseline(t, seed)
	raw := completedFig6Journal(t, seed)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too short for a torn-record test: %d lines", len(lines))
	}
	// Tear the third record in half (keep header + two full records).
	torn := bytes.Join(lines[:3], nil)
	half := lines[3][:len(lines[3])/2]
	torn = append(torn, half...)
	if got := resumeFig6From(t, torn, seed); got != want {
		t.Fatalf("resume from torn journal diverges\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestJournalIdentityMismatch: a journal written under one identity must
// refuse to resume under another instead of silently mixing streams.
func TestJournalIdentityMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := OpenJournal(path, "fig6", 7, "model=mi8")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Record("a", 1); err != nil {
		t.Fatalf("record: %v", err)
	}
	j.Close()
	cases := []struct {
		name, exp, params string
		seed              int64
	}{
		{"seed", "fig6", "model=mi8", 8},
		{"exp", "table2", "model=mi8", 7},
		{"params", "fig6", "model=op6", 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := OpenJournal(path, c.exp, c.seed, c.params); err == nil {
				t.Fatal("mismatched journal accepted")
			} else if !strings.Contains(err.Error(), "delete it") {
				t.Errorf("error does not tell the operator the way out: %v", err)
			}
		})
	}
}

// TestJournalRoundTrip covers the basic record/lookup/done cycle and that
// Finish removes the file.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.journal")
	j, err := OpenJournal(path, "exp", 1, "p=1")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	type rec struct {
		N int     `json:"n"`
		F float64 `json:"f"`
	}
	if ok, err := j.Lookup("t1", &rec{}); err != nil || ok {
		t.Fatalf("lookup before record = (%v, %v), want (false, nil)", ok, err)
	}
	if err := j.Record("t1", rec{N: 3, F: 1.5}); err != nil {
		t.Fatalf("record: %v", err)
	}
	var got rec
	if ok, err := j.Lookup("t1", &got); err != nil || !ok {
		t.Fatalf("lookup after record = (%v, %v), want (true, nil)", ok, err)
	}
	if got != (rec{N: 3, F: 1.5}) {
		t.Fatalf("lookup returned %+v", got)
	}
	if n := j.Done(); n != 1 {
		t.Fatalf("Done() = %d, want 1", n)
	}

	// Reopen with the same identity: the record must still be there.
	j.Close()
	j2, err := OpenJournal(path, "exp", 1, "p=1")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got = rec{}
	if ok, err := j2.Lookup("t1", &got); err != nil || !ok || got.N != 3 {
		t.Fatalf("lookup after reopen = (%v, %v, %+v)", ok, err, got)
	}
	if err := j2.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal survives Finish (stat err: %v)", err)
	}
}

// TestJournalNil: a nil journal disables journaling but keeps every entry
// point usable.
func TestJournalNil(t *testing.T) {
	var j *Journal
	if ok, err := j.Lookup("x", new(int)); err != nil || ok {
		t.Fatalf("nil Lookup = (%v, %v)", ok, err)
	}
	if err := j.Record("x", 1); err != nil {
		t.Fatalf("nil Record: %v", err)
	}
	if n := j.Done(); n != 0 {
		t.Fatalf("nil Done = %d", n)
	}
	j.Close()
	if err := j.Finish(); err != nil {
		t.Fatalf("nil Finish: %v", err)
	}
	v, err := journaledTrial(j, "x", func() (int, error) { return 42, nil })
	if err != nil || v != 42 {
		t.Fatalf("journaledTrial(nil) = (%d, %v)", v, err)
	}
}

// TestJournalResumeTableIIIBoundaries spot-checks the heavyweight runner:
// resuming a Table III run from a handful of record boundaries must give a
// table byte-identical to the un-journaled baseline. (The typist and
// password streams are shared across trials, so this catches any drift a
// replayed trial introduces into later live trials.)
func TestJournalResumeTableIIIBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run resume test skipped in -short mode")
	}
	const seed = 11
	rows, err := TableIII(seed, 1)
	if err != nil {
		t.Fatalf("baseline table3: %v", err)
	}
	want := RenderTableIII(rows)

	path := filepath.Join(t.TempDir(), "t3.journal")
	j, err := OpenJournal(path, "table3", seed, "trials=1")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := TableIIIJournaled(seed, 1, j); err != nil {
		t.Fatalf("journaled table3: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	for _, k := range []int{1, 2, len(lines) / 2, len(lines) - 2, len(lines)} {
		prefix := bytes.Join(lines[:k], nil)
		p2 := filepath.Join(t.TempDir(), "t3.journal")
		if err := os.WriteFile(p2, prefix, 0o644); err != nil {
			t.Fatalf("write prefix: %v", err)
		}
		j2, err := OpenJournal(p2, "table3", seed, "trials=1")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		rows, err := TableIIIJournaled(seed, 1, j2)
		if err != nil {
			t.Fatalf("resume from %d lines: %v", k, err)
		}
		j2.Close()
		if got := RenderTableIII(rows); got != want {
			t.Fatalf("resume from %d/%d journal lines diverges\nwant:\n%s\ngot:\n%s",
				k, len(lines), want, got)
		}
	}
}
