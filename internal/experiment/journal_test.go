package experiment

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fig6Baseline computes the un-journaled reference render once per test.
func fig6Baseline(t *testing.T, seed int64) string {
	t.Helper()
	out, err := Run(&fig6Exp{model: "mi8"}, RunOpts{Seed: seed})
	if err != nil {
		t.Fatalf("baseline fig6: %v", err)
	}
	return out.Text
}

// completedFig6Journal runs a journaled fig6 sweep to completion and
// returns the raw journal bytes (header line + one line per sweep point).
func completedFig6Journal(t *testing.T, seed int64) []byte {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig6.journal")
	j, err := OpenJournal(path, "fig6", seed, "model=mi8")
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	if _, err := Run(&fig6Exp{model: "mi8"}, RunOpts{Seed: seed, Journal: j}); err != nil {
		t.Fatalf("journaled fig6: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	return raw
}

// resumeFig6From writes raw as the journal file and resumes the sweep from
// it, returning the rendered report.
func resumeFig6From(t *testing.T, raw []byte, seed int64) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "fig6.journal")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatalf("write truncated journal: %v", err)
	}
	j, err := OpenJournal(path, "fig6", seed, "model=mi8")
	if err != nil {
		t.Fatalf("reopen journal: %v", err)
	}
	defer j.Close()
	out, err := Run(&fig6Exp{model: "mi8"}, RunOpts{Seed: seed, Journal: j})
	if err != nil {
		t.Fatalf("resumed fig6: %v", err)
	}
	return out.Text
}

// TestJournalResumeEveryBoundary simulates a crash after every record
// boundary of a fig6 sweep: for each prefix of the journal, a resumed run
// must produce a report byte-identical to the un-journaled baseline.
func TestJournalResumeEveryBoundary(t *testing.T) {
	const seed = 7
	want := fig6Baseline(t, seed)
	raw := completedFig6Journal(t, seed)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	// lines[0] is the header; a crash can leave any number of records.
	for k := 1; k <= len(lines); k++ {
		prefix := bytes.Join(lines[:k], nil)
		if got := resumeFig6From(t, prefix, seed); got != want {
			t.Fatalf("resume from %d/%d journal lines diverges\nwant:\n%s\ngot:\n%s",
				k, len(lines), want, got)
		}
	}
}

// TestJournalResumeShuffledRecords: records committed out of order by a
// worker pool must resume exactly like in-order ones — the journal is
// keyed by trial content, not position.
func TestJournalResumeShuffledRecords(t *testing.T) {
	const seed = 7
	want := fig6Baseline(t, seed)
	raw := completedFig6Journal(t, seed)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 4 {
		t.Fatalf("journal too short: %d lines", len(lines))
	}
	// Header first, then the records reversed — the most out-of-order a
	// pool could be.
	shuffled := append([]byte{}, lines[0]...)
	for k := len(lines) - 1; k >= 1; k-- {
		shuffled = append(shuffled, lines[k]...)
	}
	if got := resumeFig6From(t, shuffled, seed); got != want {
		t.Fatalf("resume from shuffled journal diverges\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestJournalResumeTornRecord simulates a crash mid-write: the journal
// ends with half a record line. The torn tail must be dropped and the
// resumed run must still match the baseline byte for byte.
func TestJournalResumeTornRecord(t *testing.T) {
	const seed = 7
	want := fig6Baseline(t, seed)
	raw := completedFig6Journal(t, seed)
	lines := bytes.SplitAfter(raw, []byte("\n"))
	if len(lines) < 3 {
		t.Fatalf("journal too short for a torn-record test: %d lines", len(lines))
	}
	// Tear the third record in half (keep header + two full records).
	torn := bytes.Join(lines[:3], nil)
	half := lines[3][:len(lines[3])/2]
	torn = append(torn, half...)
	if got := resumeFig6From(t, torn, seed); got != want {
		t.Fatalf("resume from torn journal diverges\nwant:\n%s\ngot:\n%s", want, got)
	}
}

// TestJournalIdentityMismatch: a journal written under one identity must
// refuse to resume under another instead of silently mixing streams.
func TestJournalIdentityMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "x.journal")
	j, err := OpenJournal(path, "fig6", 7, "model=mi8")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if err := j.Record("a", "trial a", json.RawMessage("1")); err != nil {
		t.Fatalf("record: %v", err)
	}
	j.Close()
	cases := []struct {
		name, exp, params string
		seed              int64
	}{
		{"seed", "fig6", "model=mi8", 8},
		{"exp", "table2", "model=mi8", 7},
		{"params", "fig6", "model=op6", 7},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := OpenJournal(path, c.exp, c.seed, c.params); err == nil {
				t.Fatal("mismatched journal accepted")
			} else if !strings.Contains(err.Error(), "delete it") {
				t.Errorf("error does not tell the operator the way out: %v", err)
			}
		})
	}
}

// TestJournalRefusesStaleV1: a positional-format (v1) journal cannot be
// replayed against content-addressed trials; opening one must fail with an
// error that names the problem and the way out.
func TestJournalRefusesStaleV1(t *testing.T) {
	path := filepath.Join(t.TempDir(), "old.journal")
	v1 := `{"v":1,"exp":"fig6","seed":7,"params":"model=mi8"}` + "\n" +
		`{"id":"trial-0","result":1}` + "\n"
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatalf("write v1 journal: %v", err)
	}
	_, err := OpenJournal(path, "fig6", 7, "model=mi8")
	if err == nil {
		t.Fatal("stale v1 journal accepted")
	}
	if !strings.Contains(err.Error(), "positional") {
		t.Errorf("error does not name the stale key format: %v", err)
	}
	if !strings.Contains(err.Error(), "delete it") {
		t.Errorf("error does not tell the operator the way out: %v", err)
	}
}

// TestJournalRoundTrip covers the basic record/lookup/done cycle and that
// Finish removes the file.
func TestJournalRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rt.journal")
	j, err := OpenJournal(path, "exp", 1, "p=1")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	type rec struct {
		N int     `json:"n"`
		F float64 `json:"f"`
	}
	if ok, err := j.Lookup("t1", &rec{}); err != nil || ok {
		t.Fatalf("lookup before record = (%v, %v), want (false, nil)", ok, err)
	}
	raw, err := json.Marshal(rec{N: 3, F: 1.5})
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	if err := j.Record("t1", "trial one", raw); err != nil {
		t.Fatalf("record: %v", err)
	}
	var got rec
	if ok, err := j.Lookup("t1", &got); err != nil || !ok {
		t.Fatalf("lookup after record = (%v, %v), want (true, nil)", ok, err)
	}
	if got != (rec{N: 3, F: 1.5}) {
		t.Fatalf("lookup returned %+v", got)
	}
	if n := j.Done(); n != 1 {
		t.Fatalf("Done() = %d, want 1", n)
	}

	// Reopen with the same identity: the record must still be there.
	j.Close()
	j2, err := OpenJournal(path, "exp", 1, "p=1")
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	got = rec{}
	if ok, err := j2.Lookup("t1", &got); err != nil || !ok || got.N != 3 {
		t.Fatalf("lookup after reopen = (%v, %v, %+v)", ok, err, got)
	}
	if err := j2.Finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("journal survives Finish (stat err: %v)", err)
	}
}

// TestJournalNil: a nil journal disables journaling but keeps every entry
// point usable, including the driver itself.
func TestJournalNil(t *testing.T) {
	var j *Journal
	if ok, err := j.Lookup("x", new(int)); err != nil || ok {
		t.Fatalf("nil Lookup = (%v, %v)", ok, err)
	}
	if err := j.Record("x", "trial x", json.RawMessage("1")); err != nil {
		t.Fatalf("nil Record: %v", err)
	}
	if n := j.Done(); n != 0 {
		t.Fatalf("nil Done = %d", n)
	}
	j.Close()
	if err := j.Finish(); err != nil {
		t.Fatalf("nil Finish: %v", err)
	}
}

// TestTrialKeyContentAddressed: the journal key is a pure function of the
// trial inputs — stable across runs, distinct across inputs.
func TestTrialKeyContentAddressed(t *testing.T) {
	a := NewTrial("fig6 model=mi8 seed=7 d=100ms", "a", func() (int, error) { return 0, nil })
	b := NewTrial("fig6 model=mi8 seed=7 d=100ms", "b", func() (int, error) { return 1, nil })
	c := NewTrial("fig6 model=mi8 seed=7 d=130ms", "c", func() (int, error) { return 2, nil })
	if a.Key() != b.Key() {
		t.Fatalf("same inputs, different keys: %q vs %q", a.Key(), b.Key())
	}
	if a.Key() == c.Key() {
		t.Fatalf("different inputs share key %q", a.Key())
	}
	if len(a.Key()) != 24 {
		t.Fatalf("key %q not a 12-byte hex digest", a.Key())
	}
}

// TestCollectRejectsDuplicateInputs: two trials with identical inputs
// would silently share a journal record; the driver must refuse the trial
// set outright.
func TestCollectRejectsDuplicateInputs(t *testing.T) {
	_, err := Collect(dupExp{}, RunOpts{Seed: 1})
	if err == nil || !strings.Contains(err.Error(), "share inputs") {
		t.Fatalf("duplicate trial inputs accepted (err = %v)", err)
	}
}

// dupExp is a synthetic experiment with a colliding trial set.
type dupExp struct{}

func (dupExp) Name() string   { return "dup" }
func (dupExp) Params() string { return "" }
func (dupExp) Trials(int64) ([]Trial, error) {
	mk := func() Trial { return NewTrial("same-inputs", "t", func() (int, error) { return 0, nil }) }
	return []Trial{mk(), mk()}, nil
}
func (dupExp) Render([]any) (Output, error) { return Output{}, nil }

// TestJournalResumeTableIIIBoundaries spot-checks the heavyweight runner:
// resuming a Table III run from a handful of record boundaries must give a
// table byte-identical to the un-journaled baseline. (The typist and
// password streams are shared across trials, so this catches any drift a
// replayed trial introduces into later live trials.)
func TestJournalResumeTableIIIBoundaries(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run resume test skipped in -short mode")
	}
	const seed = 11
	baseline, err := Run(&table3Exp{perParticipant: 1}, RunOpts{Seed: seed})
	if err != nil {
		t.Fatalf("baseline table3: %v", err)
	}
	want := baseline.Text

	path := filepath.Join(t.TempDir(), "t3.journal")
	j, err := OpenJournal(path, "table3", seed, "trials=1")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if _, err := Run(&table3Exp{perParticipant: 1}, RunOpts{Seed: seed, Journal: j}); err != nil {
		t.Fatalf("journaled table3: %v", err)
	}
	j.Close()
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read journal: %v", err)
	}
	lines := bytes.SplitAfter(raw, []byte("\n"))
	for _, k := range []int{1, 2, len(lines) / 2, len(lines) - 2, len(lines)} {
		prefix := bytes.Join(lines[:k], nil)
		p2 := filepath.Join(t.TempDir(), "t3.journal")
		if err := os.WriteFile(p2, prefix, 0o644); err != nil {
			t.Fatalf("write prefix: %v", err)
		}
		j2, err := OpenJournal(p2, "table3", seed, "trials=1")
		if err != nil {
			t.Fatalf("reopen: %v", err)
		}
		out, err := Run(&table3Exp{perParticipant: 1}, RunOpts{Seed: seed, Journal: j2})
		if err != nil {
			t.Fatalf("resume from %d lines: %v", k, err)
		}
		j2.Close()
		if out.Text != want {
			t.Fatalf("resume from %d/%d journal lines diverges\nwant:\n%s\ngot:\n%s",
				k, len(lines), want, out.Text)
		}
	}
}
