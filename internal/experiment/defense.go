package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/appstore"
	"repro/internal/binder"
	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/geom"
	"repro/internal/simrand"
	"repro/internal/sysserver"
	"repro/internal/sysui"
	"repro/internal/wm"
)

// DefenseIPCReport is the Section VII-A evaluation: the detector must flag
// and stop the attack quickly while never flagging benign overlay usage.
type DefenseIPCReport struct {
	AttackDetected   bool
	DetectionLatency time.Duration
	AttackTerminated bool
	// AlertOutcomeAfter reports the worst alert outcome in the attack
	// run (once terminated, the standing overlay is gone so no alert is
	// needed; the detector is the defense here).
	AlertOutcomeAfter sysui.Outcome
	// BenignFlagged counts false positives in the benign scenario.
	BenignFlagged int
	// TransactionsObserved is the defense's analysis volume.
	TransactionsObserved uint64
	// LogEntriesDropped counts transactions evicted from the Binder log
	// during the attack run. Non-zero means log-based conclusions ("app X
	// never called removeView") are drawn from an incomplete window.
	LogEntriesDropped uint64
	// FaultProfile names the fault profile active during the attack run
	// (empty when the run was unfaulted).
	FaultProfile string
	// InjectedDrops counts transactions the fault plane silently discarded
	// during the attack run. Non-zero means the detector's transaction
	// stream itself was lossy.
	InjectedDrops uint64
}

// DefenseIPC evaluates the IPC-based detector on both an attack scenario
// and a benign-workload scenario.
func DefenseIPC(seed int64) (DefenseIPCReport, error) {
	return DefenseIPCWith(seed, faults.None())
}

// DefenseIPCWith runs the same evaluation with a fault profile active on
// the attack scenario's stack (the benign scenario stays unfaulted — its
// job is measuring false positives under normal conditions). A zero
// profile attaches no plane at all, so DefenseIPCWith(seed, faults.None())
// is bit-identical to the unfaulted DefenseIPC(seed).
func DefenseIPCWith(seed int64, prof faults.Profile) (DefenseIPCReport, error) {
	return DefenseIPCOn(nil, seed, prof)
}

// DefenseIPCOn is DefenseIPCWith on an arbitrary device catalog's default
// device (nil means the seed catalog).
func DefenseIPCOn(cat device.Catalog, seed int64, prof faults.Profile) (DefenseIPCReport, error) {
	var rep DefenseIPCReport
	p := catOr(cat).Default()

	// Scenario 1: the draw-and-destroy overlay attack, detector armed to
	// terminate.
	var opts []sysserver.Option
	if !prof.Zero() {
		rep.FaultProfile = prof.Name
		opts = append(opts, sysserver.WithFaults(faults.NewPlane(prof, seed)))
	}
	st, err := assembleAttackStack(p, seed, opts...)
	if err != nil {
		return rep, err
	}
	var detectedAt time.Duration = -1
	det, err := defense.NewIPCDetector(defense.IPCDetectorConfig{
		OnDetect: func(app binder.ProcessID, d defense.Detection) {
			if detectedAt < 0 {
				detectedAt = d.At
			}
		},
	})
	if err != nil {
		return rep, fmt.Errorf("experiment: detector: %w", err)
	}
	if err := det.Install(st, true); err != nil {
		return rep, fmt.Errorf("experiment: install detector: %w", err)
	}
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App:    AttackerApp,
		D:      time.Duration(float64(p.PaperUpperBoundD) * 0.9),
		Bounds: screenOf(p),
	})
	if err != nil {
		return rep, fmt.Errorf("experiment: attack: %w", err)
	}
	if err := atk.Start(); err != nil {
		return rep, fmt.Errorf("experiment: start attack: %w", err)
	}
	st.Clock.MustAfter(20*time.Second, "experiment/stopAttack", atk.Stop)
	if err := st.Clock.RunFor(25 * time.Second); err != nil {
		return rep, fmt.Errorf("experiment: run attack scenario: %w", err)
	}
	rep.AttackDetected = det.Detected(AttackerApp)
	if detectedAt >= 0 {
		rep.DetectionLatency = detectedAt
	}
	rep.AttackTerminated = !st.WM.HasOverlayPermission(AttackerApp) && st.WM.OverlayCount(AttackerApp) == 0
	rep.AlertOutcomeAfter = st.UI.WorstOutcome()
	rep.TransactionsObserved = det.Observed()
	rep.LogEntriesDropped = st.Bus.DroppedLogEntries()
	rep.InjectedDrops = st.Bus.InjectedDrops()

	// Scenario 2: benign workload — a floating music widget toggling
	// slowly must not be flagged.
	st2, err := sysserver.Assemble(p, seed+1)
	if err != nil {
		return rep, fmt.Errorf("experiment: assemble benign stack: %w", err)
	}
	const musicApp binder.ProcessID = "com.music.player"
	st2.WM.GrantOverlayPermission(musicApp)
	det2, err := defense.NewIPCDetector(defense.IPCDetectorConfig{})
	if err != nil {
		return rep, fmt.Errorf("experiment: benign detector: %w", err)
	}
	if err := det2.Install(st2, false); err != nil {
		return rep, fmt.Errorf("experiment: install benign detector: %w", err)
	}
	var sink errSink
	for i := 0; i < 8; i++ {
		i := i
		h := uint64(i + 1)
		st2.Clock.MustAfter(time.Duration(i)*8*time.Second, "widget-on", func() {
			if _, err := st2.Bus.Call(musicApp, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
				Handle: h, Type: wm.TypeApplicationOverlay, Bounds: geom.RectWH(50, 50, 300, 300),
			}); err != nil {
				sink.setf("experiment: benign addView: %w", err)
			}
		})
		st2.Clock.MustAfter(time.Duration(i)*8*time.Second+4*time.Second, "widget-off", func() {
			if _, err := st2.Bus.Call(musicApp, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{Handle: h}); err != nil {
				sink.setf("experiment: benign removeView: %w", err)
			}
		})
	}
	if err := st2.Clock.RunFor(90 * time.Second); err != nil {
		return rep, fmt.Errorf("experiment: run benign scenario: %w", err)
	}
	if sink.err != nil {
		return rep, sink.err
	}
	rep.BenignFlagged = len(det2.Detections())
	return rep, nil
}

// RenderDefenseIPC formats the report.
func RenderDefenseIPC(r DefenseIPCReport) string {
	var sb strings.Builder
	sb.WriteString("Defense §VII-A — IPC (Binder) based detection\n")
	fmt.Fprintf(&sb, "  attack detected:      %v\n", r.AttackDetected)
	fmt.Fprintf(&sb, "  detection latency:    %v\n", r.DetectionLatency)
	fmt.Fprintf(&sb, "  attack terminated:    %v\n", r.AttackTerminated)
	fmt.Fprintf(&sb, "  benign apps flagged:  %d (want 0)\n", r.BenignFlagged)
	fmt.Fprintf(&sb, "  transactions analyzed: %d\n", r.TransactionsObserved)
	if r.FaultProfile != "" {
		fmt.Fprintf(&sb, "  fault profile active:  %s\n", r.FaultProfile)
	}
	if r.InjectedDrops > 0 {
		fmt.Fprintf(&sb, "  WARNING: %d transactions silently dropped by fault injection — the detector analyzed a lossy stream\n", r.InjectedDrops)
	}
	if r.LogEntriesDropped > 0 {
		fmt.Fprintf(&sb, "  WARNING: %d transactions evicted from the Binder log — log-based analyses saw a truncated window\n", r.LogEntriesDropped)
	} else {
		sb.WriteString("  binder log complete (0 entries evicted)\n")
	}
	return sb.String()
}

// DefenseNotifReport is the Section VII-B evaluation on the Pixel 2 with
// t = 690 ms.
type DefenseNotifReport struct {
	DelayT          time.Duration
	OutcomeWithout  sysui.Outcome
	OutcomeWith     sysui.Outcome
	HonestOutcome   sysui.Outcome
	HonestAlertGone bool
}

// DefenseNotif evaluates the enhanced-notification defense: the same
// attack run with and without the delayed-removal patch, plus an honest
// overlay app under the patch.
func DefenseNotif(seed int64) (DefenseNotifReport, error) {
	return DefenseNotifWith(seed, faults.None())
}

// DefenseNotifWith runs the same evaluation with a fault profile active on
// every stack (each run gets a fresh plane from its own seed), so the
// degradation sweep can ask whether the delayed-removal patch still wins
// on a lossy platform. A zero profile attaches no plane at all, keeping
// DefenseNotifWith(seed, faults.None()) byte-identical to DefenseNotif.
func DefenseNotifWith(seed int64, prof faults.Profile) (DefenseNotifReport, error) {
	return DefenseNotifOn(nil, seed, prof)
}

// DefenseNotifOn is DefenseNotifWith on an arbitrary catalog (nil means
// the seed catalog): the paper's Pixel 2 when the catalog has it, else
// the closest Android 11 device, else the catalog default.
func DefenseNotifOn(cat device.Catalog, seed int64, prof faults.Profile) (DefenseNotifReport, error) {
	const delayT = 690 * time.Millisecond
	rep := DefenseNotifReport{DelayT: delayT}
	p := pickModel(catOr(cat), "pixel 2", 11)
	d := time.Duration(float64(boundOf(p)) * 0.9)
	planeOpts := func(planeSeed int64) []sysserver.Option {
		if prof.Zero() {
			return nil
		}
		return []sysserver.Option{sysserver.WithFaults(faults.NewPlane(prof, planeSeed))}
	}

	run := func(seed int64, enableDefense bool) (sysui.Outcome, error) {
		st, err := assembleAttackStack(p, seed, planeOpts(seed+100)...)
		if err != nil {
			return 0, err
		}
		if enableDefense {
			st.Server.EnableEnhancedNotificationDefense(delayT)
		}
		atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{App: AttackerApp, D: d, Bounds: screenOf(p)})
		if err != nil {
			return 0, fmt.Errorf("experiment: attack: %w", err)
		}
		if err := atk.Start(); err != nil {
			return 0, fmt.Errorf("experiment: start: %w", err)
		}
		st.Clock.MustAfter(10*time.Second, "experiment/stop", atk.Stop)
		if err := st.Clock.RunFor(15 * time.Second); err != nil {
			return 0, fmt.Errorf("experiment: run: %w", err)
		}
		return st.UI.WorstOutcome(), nil
	}
	var err error
	if rep.OutcomeWithout, err = run(seed, false); err != nil {
		return rep, err
	}
	if rep.OutcomeWith, err = run(seed+1, true); err != nil {
		return rep, err
	}

	// Honest overlay app under the defense: correct lifecycle.
	st, err := sysserver.Assemble(p, seed+2, planeOpts(seed+102)...)
	if err != nil {
		return rep, fmt.Errorf("experiment: honest stack: %w", err)
	}
	st.Server.EnableEnhancedNotificationDefense(delayT)
	const honestApp binder.ProcessID = "com.maps.app"
	st.WM.GrantOverlayPermission(honestApp)
	if _, err := st.Bus.Call(honestApp, binder.SystemServer, sysserver.MethodAddView, sysserver.AddViewRequest{
		Handle: 1, Type: wm.TypeApplicationOverlay, Bounds: geom.RectWH(0, 0, 400, 400),
	}); err != nil {
		return rep, fmt.Errorf("experiment: honest addView: %w", err)
	}
	var sink errSink
	st.Clock.MustAfter(5*time.Second, "honest-rm", func() {
		if _, err := st.Bus.Call(honestApp, binder.SystemServer, sysserver.MethodRemoveView, sysserver.RemoveViewRequest{Handle: 1}); err != nil {
			sink.setf("experiment: honest removeView: %w", err)
		}
	})
	if err := st.Clock.RunFor(15 * time.Second); err != nil {
		return rep, fmt.Errorf("experiment: run honest scenario: %w", err)
	}
	if sink.err != nil {
		return rep, sink.err
	}
	rep.HonestOutcome = st.UI.WorstOutcome()
	rep.HonestAlertGone = !st.UI.ActiveAlert(honestApp)
	return rep, nil
}

// RenderDefenseNotif formats the report.
func RenderDefenseNotif(r DefenseNotifReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Defense §VII-B — enhanced notification (t = %v, Pixel 2)\n", r.DelayT)
	fmt.Fprintf(&sb, "  attack outcome without defense: %s (want Λ1: attack wins)\n", r.OutcomeWithout)
	fmt.Fprintf(&sb, "  attack outcome with defense:    %s (want Λ5: defense wins)\n", r.OutcomeWith)
	fmt.Fprintf(&sb, "  honest app outcome:             %s, alert removed: %v\n", r.HonestOutcome, r.HonestAlertGone)
	return sb.String()
}

// CorpusStudy wraps the Section VI-C2 synthetic-corpus scan. Use
// appstore.PaperCorpusSize for the full-scale run.
func CorpusStudy(seed int64, n int) (appstore.Report, error) {
	return appstore.Study(seed, n)
}

// DefenseVetReport is the static half of the Section VII defense: a
// scan-before-install vetting pass over a small generated market slice,
// with the full verdicts (including evidence traces) for the denied apps.
type DefenseVetReport struct {
	// Scanned is the number of apps vetted.
	Scanned int
	// Denied counts apps rejected by the vetting pass.
	Denied int
	// TruthCapable counts apps that ground truth says hold a tapjacking
	// capability (overlay, toast-replacement or a11y-timing).
	TruthCapable int
	// Mistakes counts verdicts that disagree with ground truth.
	Mistakes int
	// Verdicts holds the DENY verdicts, evidence traces included.
	Verdicts []defense.VetVerdict
}

// DefenseVet generates n market apps at the paper's capability rates and
// runs the pre-install vetting pass over each, comparing verdicts against
// generator ground truth.
func DefenseVet(seed int64, n int) (DefenseVetReport, error) {
	var rep DefenseVetReport
	gen, err := appstore.NewGenerator(simrand.New(seed), appstore.PaperRates())
	if err != nil {
		return rep, fmt.Errorf("experiment: vet generator: %w", err)
	}
	for i := 0; i < n; i++ {
		apk := gen.Next()
		v, err := defense.Vet(apk.IR)
		if err != nil {
			return rep, fmt.Errorf("experiment: vet %s: %w", apk.Package, err)
		}
		rep.Scanned++
		capable := apk.Truth.Overlay || apk.Truth.ToastReplace || apk.Truth.A11yTiming
		if capable {
			rep.TruthCapable++
		}
		if !v.Allow {
			rep.Denied++
			rep.Verdicts = append(rep.Verdicts, v)
		}
		if v.Allow == capable {
			rep.Mistakes++
		}
	}
	return rep, nil
}

// RenderDefenseVet formats the report, showing at most maxVerdicts full
// evidence traces.
func RenderDefenseVet(r DefenseVetReport, maxVerdicts int) string {
	var sb strings.Builder
	sb.WriteString("Defense §VII — static pre-install vetting (call-graph detectors)\n")
	fmt.Fprintf(&sb, "  apps scanned:          %d\n", r.Scanned)
	fmt.Fprintf(&sb, "  installs denied:       %d (ground truth capable: %d)\n", r.Denied, r.TruthCapable)
	fmt.Fprintf(&sb, "  verdicts vs truth:     %d mistakes\n", r.Mistakes)
	shown := r.Verdicts
	if maxVerdicts >= 0 && len(shown) > maxVerdicts {
		shown = shown[:maxVerdicts]
	}
	for _, v := range shown {
		for _, line := range strings.Split(v.String(), "\n") {
			fmt.Fprintf(&sb, "  %s\n", line)
		}
	}
	if hidden := len(r.Verdicts) - len(shown); hidden > 0 {
		fmt.Fprintf(&sb, "  … %d more denial verdicts elided\n", hidden)
	}
	return sb.String()
}

// DefenseToastGapReport is the evaluation of the toast-scheduling defense
// the paper sketches at the end of Section VII-B: a mandatory gap between
// successive toasts of one app.
type DefenseToastGapReport struct {
	Gap time.Duration
	// MinAlphaWithout and MinAlphaWith are the fake keyboard's lowest
	// combined opacity during an attack chain without/with the defense.
	MinAlphaWithout, MinAlphaWith float64
}

// DefenseToastGap runs the draw-and-destroy toast attack against a stock
// device and a device with the gap defense; the defense must force the
// toast to vanish between hand-offs (visible flicker).
func DefenseToastGap(seed int64) (DefenseToastGapReport, error) {
	return DefenseToastGapOn(nil, seed)
}

// DefenseToastGapOn is DefenseToastGap on an arbitrary catalog's default
// device (nil means the seed catalog).
func DefenseToastGapOn(cat device.Catalog, seed int64) (DefenseToastGapReport, error) {
	const gap = 400 * time.Millisecond
	rep := DefenseToastGapReport{Gap: gap}
	p := catOr(cat).Default()
	run := func(seed int64, defend bool) (float64, error) {
		st, err := sysserver.Assemble(p, seed)
		if err != nil {
			return 0, err
		}
		if defend {
			st.Server.EnableToastGapDefense(gap)
		}
		atk, err := core.NewToastAttack(st, core.ToastAttackConfig{
			App:     AttackerApp,
			Bounds:  screenOf(p).Inset(100),
			Content: func() string { return "kbd" },
		})
		if err != nil {
			return 0, err
		}
		if err := atk.Start(); err != nil {
			return 0, err
		}
		minAlpha := 1.0
		var probe func()
		probe = func() {
			if st.Clock.Now() > 15*time.Second {
				return
			}
			if a := st.WM.TopToastAlpha(AttackerApp); a < minAlpha {
				minAlpha = a
			}
			st.Clock.MustAfter(10*time.Millisecond, "probe", probe)
		}
		st.Clock.MustAfter(time.Second, "probe", probe)
		st.Clock.MustAfter(16*time.Second, "stop", atk.Stop)
		if err := st.Clock.RunFor(25 * time.Second); err != nil {
			return 0, err
		}
		return minAlpha, nil
	}
	var err error
	if rep.MinAlphaWithout, err = run(seed, false); err != nil {
		return rep, fmt.Errorf("experiment: toast-gap baseline: %w", err)
	}
	if rep.MinAlphaWith, err = run(seed+1, true); err != nil {
		return rep, fmt.Errorf("experiment: toast-gap defended: %w", err)
	}
	return rep, nil
}

// RenderDefenseToastGap formats the report.
func RenderDefenseToastGap(r DefenseToastGapReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Defense §VII-B (toast scheduling, gap = %v)\n", r.Gap)
	fmt.Fprintf(&sb, "  min fake-kbd opacity without defense: %.2f (no flicker: attack wins)\n", r.MinAlphaWithout)
	fmt.Fprintf(&sb, "  min fake-kbd opacity with defense:    %.2f (flicker: user alerted)\n", r.MinAlphaWith)
	return sb.String()
}
