package experiment

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"strings"
	"sync"
)

// Journal is a crash-safe per-trial result log for the experiment driver,
// modelled on the per-chunk checkpoint of the corpus study
// (appstore/checkpoint.go): an append-only JSONL file, fsynced per record,
// whose header pins the run's identity (experiment name, seed, parameters).
// The driver (Run/Collect) checks the journal before executing each trial:
// a trial whose key is already on disk replays the recorded result instead
// of re-running, so a run killed at any instant — including SIGKILL —
// resumes from where it died and, because the simulation is deterministic,
// produces a byte-identical report.
//
// Records are keyed by a content address — a hash of the trial's inputs
// (Trial.Key) — not by position, so records may be committed out of order
// by a worker pool and a journal survives refactors that reorder trials.
// Format v1 journals were keyed positionally and are refused.
//
// A nil *Journal is valid and disables journaling entirely: the driver
// then executes every trial live.
type Journal struct {
	mu   sync.Mutex
	f    *os.File
	path string
	done map[string]json.RawMessage
}

// journalVersion is the current format: content-addressed trial keys.
// Version 1 keyed records by trial position/loop indices; replaying one
// against the current trial sets would silently mismatch results, so v1
// files are refused with an explicit error.
const journalVersion = 2

// journalHeader is the first line of a journal file. A resume against a
// different experiment, seed or parameter set must fail loudly rather than
// replay foreign trials.
type journalHeader struct {
	V      int    `json:"v"`
	Exp    string `json:"exp"`
	Seed   int64  `json:"seed"`
	Params string `json:"params"`
}

// journalLine is one completed trial: the content key, the inputs it
// hashes (kept verbatim for debuggability) and the encoded result.
type journalLine struct {
	ID     string          `json:"id"`
	Inputs string          `json:"inputs,omitempty"`
	Result json.RawMessage `json:"result"`
}

// OpenJournal opens or creates the journal at path for the given run
// identity. An existing file is loaded for resume; a torn trailing line
// from a crash mid-append is dropped (that trial re-runs). An existing
// file with a different identity — or a stale positional-format (v1)
// journal — is an error.
func OpenJournal(path, exp string, seed int64, params string) (*Journal, error) {
	hdr := journalHeader{V: journalVersion, Exp: exp, Seed: seed, Params: params}
	done := make(map[string]json.RawMessage)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, fmt.Errorf("experiment: read journal: %w", err)
	}
	if err == nil && len(data) > 0 {
		lines := strings.Split(string(data), "\n")
		var got journalHeader
		if jerr := json.Unmarshal([]byte(lines[0]), &got); jerr == nil && got.V == 1 {
			return nil, fmt.Errorf("experiment: journal %s uses stale positional trial keys (format v1, this build writes v%d); its records cannot be replayed safely — delete it to start over",
				path, journalVersion)
		} else if jerr != nil || got != hdr {
			return nil, fmt.Errorf("experiment: journal %s belongs to a different run (want v=%d exp=%s seed=%d params=%q); delete it to start over",
				path, hdr.V, hdr.Exp, hdr.Seed, hdr.Params)
		}
		for _, ln := range lines[1:] {
			if strings.TrimSpace(ln) == "" {
				continue
			}
			var jl journalLine
			if jerr := json.Unmarshal([]byte(ln), &jl); jerr != nil || jl.ID == "" {
				// Torn trailing line from a crash mid-append: drop it; the
				// trial re-runs.
				continue
			}
			done[jl.ID] = jl.Result
		}
		f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("experiment: open journal: %w", err)
		}
		return &Journal{f: f, path: path, done: done}, nil
	}
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return nil, fmt.Errorf("experiment: create journal: %w", err)
	}
	b, err := json.Marshal(hdr)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: encode journal header: %w", err)
	}
	if _, err := f.Write(append(b, '\n')); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: write journal header: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("experiment: sync journal header: %w", err)
	}
	return &Journal{f: f, path: path, done: done}, nil
}

// Lookup unmarshals the recorded result of trial key id into out and
// reports whether the trial was found. A nil journal never finds anything.
func (j *Journal) Lookup(id string, out any) (bool, error) {
	if j == nil {
		return false, nil
	}
	j.mu.Lock()
	raw, ok := j.done[id]
	j.mu.Unlock()
	if !ok {
		return false, nil
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return false, fmt.Errorf("experiment: decode journaled trial %q: %w", id, err)
	}
	return true, nil
}

// Record appends one finished trial and fsyncs, so a kill at any later
// instant preserves it. id is the trial's content key, inputs the string
// it hashes. Safe to call from multiple workers; recording on a nil
// journal is a no-op.
func (j *Journal) Record(id, inputs string, result json.RawMessage) error {
	if j == nil {
		return nil
	}
	b, err := json.Marshal(journalLine{ID: id, Inputs: inputs, Result: result})
	if err != nil {
		return fmt.Errorf("experiment: encode journal line %q: %w", id, err)
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return fmt.Errorf("experiment: journal %s is closed", j.path)
	}
	if _, err := j.f.Write(append(b, '\n')); err != nil {
		return fmt.Errorf("experiment: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("experiment: sync journal: %w", err)
	}
	j.done[id] = result
	return nil
}

// Done reports how many trials the journal holds (recorded this run plus
// replayed from disk). Zero on a nil journal.
func (j *Journal) Done() int {
	if j == nil {
		return 0
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.done)
}

// Close closes the file, keeping it on disk for a later resume. Safe on a
// nil journal.
func (j *Journal) Close() {
	if j == nil {
		return
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f != nil {
		j.f.Close()
		j.f = nil
	}
}

// Finish closes and deletes the journal after a fully completed run. Safe
// on a nil journal.
func (j *Journal) Finish() error {
	if j == nil {
		return nil
	}
	j.Close()
	if err := os.Remove(j.path); err != nil && !errors.Is(err, os.ErrNotExist) {
		return fmt.Errorf("experiment: remove finished journal: %w", err)
	}
	return nil
}
