package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/anim"
)

// Fig2 regenerates Figure 2: time versus completeness of the notification
// slide-down animation under FastOutSlowInInterpolator over its 360 ms
// duration, sampled at every 10 ms frame.
func Fig2() []anim.CurvePoint {
	return anim.Sample(anim.FastOutSlowIn(), anim.NotificationSlideDuration, 36)
}

// Fig4 regenerates Figure 4: the toast enter curve (Decelerate) and exit
// curve (Accelerate) over the 500 ms toast fade, sampled every 10 ms.
func Fig4() (decelerate, accelerate []anim.CurvePoint) {
	decelerate = anim.Sample(anim.Decelerate{}, anim.ToastFadeDuration, 50)
	accelerate = anim.Sample(anim.Accelerate{}, anim.ToastFadeDuration, 50)
	return decelerate, accelerate
}

// RenderCurve formats a completeness curve as the "time → %" series the
// figures plot.
func RenderCurve(name string, pts []anim.CurvePoint) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", name)
	for _, p := range pts {
		fmt.Fprintf(&sb, "  %4d ms  %6.2f%%\n", p.At/time.Millisecond, 100*p.Completeness)
	}
	return sb.String()
}

// RenderFig2 renders Figure 2 with the paper's two callouts annotated.
func RenderFig2() string {
	pts := Fig2()
	var sb strings.Builder
	sb.WriteString("Fig. 2 — FastOutSlowInInterpolator completeness over 360 ms\n")
	for _, p := range pts {
		note := ""
		switch p.At {
		case 10 * time.Millisecond:
			note = "   <- first frame: 72px view renders 0 px"
		case 100 * time.Millisecond:
			note = "   <- paper: <50% at 100 ms"
		}
		fmt.Fprintf(&sb, "  %4d ms  %6.2f%%%s\n", p.At/time.Millisecond, 100*p.Completeness, note)
	}
	return sb.String()
}

// RenderFig4 renders both Figure 4 curves side by side.
func RenderFig4() string {
	dec, acc := Fig4()
	var sb strings.Builder
	sb.WriteString("Fig. 4 — toast animation completeness over 500 ms\n")
	sb.WriteString("   time   Decelerate(enter)  Accelerate(exit)\n")
	for i := range dec {
		fmt.Fprintf(&sb, "  %4d ms  %10.2f%%  %12.2f%%\n",
			dec[i].At/time.Millisecond, 100*dec[i].Completeness, 100*acc[i].Completeness)
	}
	return sb.String()
}
