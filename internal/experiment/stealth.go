package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/input"
	"repro/internal/simrand"
	"repro/internal/sysui"
)

// Perception-model thresholds for the Section VI-C3 stealthiness study.
// A participant reports an abnormality when any part of the alert became
// visible or the fake keyboard visibly flickered; a participant reports
// "lag" when the overlay swap period is so short that the UI thread churn
// drops frames (swaps faster than every ~4 vsync periods).
const (
	// flickerAlphaThreshold is the combined toast opacity below which
	// the hand-off is visible as a flicker.
	flickerAlphaThreshold = 0.3
	// lagSwapPeriod is the swap period below which participants perceive
	// jank from the attack's add/remove churn.
	lagSwapPeriod = 60 * time.Millisecond
)

// StealthReport summarizes the 30-participant stealthiness survey: in the
// paper, nobody noticed anything suspicious and one participant reported
// lag.
type StealthReport struct {
	Participants      int
	NoticedAbnormal   int
	ReportedLag       int
	WorstOutcome      sysui.Outcome
	MinToastAlpha     float64
	PasswordsRecovery float64 // % of participants whose password was stolen exactly
}

// Stealthiness runs the survey: each participant opens the Bank of America
// app and types a given password while the malicious app attacks.
func Stealthiness(seed int64) (StealthReport, error) {
	return StealthinessOn(nil, seed)
}

// StealthinessOn is Stealthiness with participants paired against an
// arbitrary device catalog (nil means the seed catalog).
func StealthinessOn(cat device.Catalog, seed int64) (StealthReport, error) {
	rep := StealthReport{Participants: NumParticipants, WorstOutcome: sysui.Lambda1, MinToastAlpha: 1}
	root := simrand.New(seed)
	typists, err := input.Participants(root.Derive("typists"), NumParticipants)
	if err != nil {
		return rep, fmt.Errorf("experiment: participants: %w", err)
	}
	bofa, ok := apps.ByName("Bank of America")
	if !ok {
		return rep, fmt.Errorf("experiment: BofA app missing")
	}
	const password = "mY9&pass" // the "given password" of the survey
	recovered := 0
	for i := 0; i < NumParticipants; i++ {
		p := participantDevice(catOr(cat), i)
		trial, err := RunStealTrial(p, typists[i], bofa, password, seed+int64(i)*389)
		if err != nil {
			return rep, fmt.Errorf("experiment: stealth trial %d: %w", i, err)
		}
		if trial.WorstOutcome > rep.WorstOutcome {
			rep.WorstOutcome = trial.WorstOutcome
		}
		if trial.MinToastAlpha < rep.MinToastAlpha {
			rep.MinToastAlpha = trial.MinToastAlpha
		}
		noticed := trial.WorstOutcome != sysui.Lambda1 || trial.MinToastAlpha < flickerAlphaThreshold
		if noticed {
			rep.NoticedAbnormal++
		}
		if !noticed && trial.D < lagSwapPeriod {
			rep.ReportedLag++
		}
		if ClassifyTrial(password, trial.Stolen) == ErrorNone {
			recovered++
		}
	}
	rep.PasswordsRecovery = 100 * float64(recovered) / float64(NumParticipants)
	return rep, nil
}

// RenderStealth formats the survey outcome.
func RenderStealth(r StealthReport) string {
	var sb strings.Builder
	sb.WriteString("Stealthiness survey (Section VI-C3)\n")
	fmt.Fprintf(&sb, "  participants:          %d\n", r.Participants)
	fmt.Fprintf(&sb, "  noticed abnormality:   %d   (paper: 0)\n", r.NoticedAbnormal)
	fmt.Fprintf(&sb, "  reported lag:          %d   (paper: 1)\n", r.ReportedLag)
	fmt.Fprintf(&sb, "  worst alert outcome:   %s\n", r.WorstOutcome)
	fmt.Fprintf(&sb, "  min fake-kbd opacity:  %.2f\n", r.MinToastAlpha)
	fmt.Fprintf(&sb, "  passwords recovered:   %.1f%%\n", r.PasswordsRecovery)
	return sb.String()
}
