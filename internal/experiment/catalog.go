package experiment

import (
	"time"

	"repro/internal/device"
)

// catOr returns cat, or the hand-calibrated seed catalog when nil. Every
// experiment resolves its device population through this helper, so a
// zero Config reproduces the paper's Table-I/II runs byte-identically
// while a generated fleet slots in through the same constructors.
func catOr(cat device.Catalog) device.Catalog {
	if cat == nil {
		return device.Seed()
	}
	return cat
}

// catParam appends the catalog identity to an experiment's params. The
// seed catalog appends nothing, keeping historical journal identities
// and golden reports byte-identical; any other catalog becomes part of
// the experiment identity so a journaled run cannot silently resume
// against a different population.
func catParam(params string, cat device.Catalog) string {
	c := catOr(cat)
	if c.Name() == device.Seed().Name() {
		return params
	}
	if params == "" {
		return "catalog=" + c.Name()
	}
	return params + " catalog=" + c.Name()
}

// boundOf is the device's calibrated Λ1 bound: the paper's Table-II
// value for seed profiles, the analytical Equation-(3) bound for
// synthetic ones (whose PaperUpperBoundD is zero).
func boundOf(p device.Profile) time.Duration {
	if p.PaperUpperBoundD > 0 {
		return p.PaperUpperBoundD
	}
	return p.ExpectedUpperBoundD()
}

// pickModel resolves a named calibration device in cat, degrading
// gracefully so experiments pinned to a Table-I phone run unmodified
// against generated fleets: an exact model hit first, else the first
// profile running the same Android major version (the calibration points
// are chosen for their version's behavior), else the catalog default.
func pickModel(cat device.Catalog, model string, major int) device.Profile {
	if p, ok := cat.ByModel(model); ok {
		return p
	}
	if vs := device.ByVersionIn(cat, major); len(vs) > 0 {
		return vs[0]
	}
	return cat.Default()
}
