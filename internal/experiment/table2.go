package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/device"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// TableIIRow is one device's measured upper boundary of D for the Λ1
// outcome next to the paper's Table II measurement.
type TableIIRow struct {
	Manufacturer string
	Model        string
	Version      string
	// PaperD is the Table II value the profile was calibrated against.
	PaperD time.Duration
	// MeasuredD is the bound measured by sweeping the simulated attack.
	MeasuredD time.Duration
}

// measureUpperBoundD finds the largest D (5 ms resolution) for which
// repeated attack trials stay at Λ1, the way the paper's authors probed
// each phone with increasing D until the alert became visible. Extra
// assembly options (fault plane) pass through to every trial stack.
func measureUpperBoundD(p device.Profile, seed int64, opts ...sysserver.Option) (time.Duration, error) {
	const (
		resolution = 5 * time.Millisecond
		trialDur   = 4 * time.Second
		trials     = 2
	)
	lambda1At := func(d time.Duration) (bool, error) {
		for r := 0; r < trials; r++ {
			o, err := OutcomeForD(p, d, trialDur, seed+int64(r)*101, opts...)
			if err != nil {
				return false, err
			}
			if o != sysui.Lambda1 {
				return false, nil
			}
		}
		return true, nil
	}
	lo, hi := resolution, 800*time.Millisecond
	ok, err := lambda1At(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil // even the smallest D leaks; should not happen
	}
	// Binary search the Λ1/¬Λ1 boundary; the predicate is monotone up to
	// per-trial jitter, which the double-trial vote smooths.
	for hi-lo > resolution {
		mid := (lo + hi) / 2 / resolution * resolution
		ok, err := lambda1At(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// table2Exp regenerates Table II: the upper boundary of D per device, one
// trial per device (the catalog's devices; the seed catalog reproduces
// the paper's 30 phones).
type table2Exp struct {
	cat      device.Catalog
	profiles []device.Profile
}

func (e *table2Exp) Name() string   { return "table2" }
func (e *table2Exp) Params() string { return catParam("", e.cat) }

func (e *table2Exp) Trials(seed int64) ([]Trial, error) {
	e.profiles = catOr(e.cat).Profiles()
	profiles := e.profiles
	trials := make([]Trial, 0, len(profiles))
	for i, p := range profiles {
		i, p := i, p
		trials = append(trials, NewTrial(
			fmt.Sprintf("table2 seed=%d device=%s", seed, p.Name()),
			fmt.Sprintf("table II bound for %s", p.Name()),
			func() (time.Duration, error) {
				d, err := measureUpperBoundD(p, seed+int64(i)*1009)
				if err != nil {
					return 0, fmt.Errorf("experiment: table II for %s: %w", p.Name(), err)
				}
				return d, nil
			}))
	}
	return trials, nil
}

// rows pairs the device catalog with the measured bounds.
func (e *table2Exp) rows(results []any) []TableIIRow {
	out := make([]TableIIRow, 0, len(e.profiles))
	for i, p := range e.profiles {
		out = append(out, TableIIRow{
			Manufacturer: p.Manufacturer,
			Model:        p.Model,
			Version:      p.Version.String(),
			PaperD:       p.PaperUpperBoundD,
			MeasuredD:    Res[time.Duration](results, i),
		})
	}
	return out
}

func (e *table2Exp) Render(results []any) (Output, error) {
	return Output{Text: RenderTableII(e.rows(results))}, nil
}

// RenderTableII formats the table next to the paper's values.
func RenderTableII(rows []TableIIRow) string {
	var sb strings.Builder
	sb.WriteString("Table II — upper boundary of D (ms) for Λ1\n")
	sb.WriteString("  model        ver   paper   measured\n")
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %-12s %-4s  %5d   %5d\n",
			r.Model, r.Version, r.PaperD/time.Millisecond, r.MeasuredD/time.Millisecond)
	}
	return sb.String()
}

// RenderDeviceCatalog prints the Table I device fleet with each profile's
// screen, Android version, analytical Λ1 bound (Equation (3) form) and
// expected mistouch window — the calibration view of the 30 phones.
func RenderDeviceCatalog() string {
	return RenderDeviceCatalogOf(device.Seed())
}

// RenderDeviceCatalogOf is RenderDeviceCatalog for any catalog; the seed
// catalog renders the historical header and rows byte-identically.
func RenderDeviceCatalogOf(cat device.Catalog) string {
	var sb strings.Builder
	if cat.Name() == device.Seed().Name() {
		sb.WriteString("Device catalog — Tables I/II with calibrated timing model\n")
	} else {
		fmt.Fprintf(&sb, "Device catalog — %s\n", cat.Name())
	}
	sb.WriteString("  manufacturer  model        ver   screen      paper-D  analytic-D  E[Tmis]\n")
	for _, p := range cat.Profiles() {
		fmt.Fprintf(&sb, "  %-12s  %-12s %-4s  %4dx%-5d  %5dms  %7.0fms  %5.2fms\n",
			p.Manufacturer, p.Model, p.Version,
			p.ScreenW, p.ScreenH,
			p.PaperUpperBoundD/time.Millisecond,
			float64(p.ExpectedUpperBoundD())/float64(time.Millisecond),
			float64(p.ExpectedTmis())/float64(time.Millisecond))
	}
	return sb.String()
}

// LoadImpactRow reports the measured D bound under background load.
type LoadImpactRow struct {
	BackgroundApps int
	MeasuredD      time.Duration
}

// loadExp regenerates the Section VI-B load experiment: the upper boundary
// of D on one device with 0, 3 and 5 background apps. The paper finds the
// bounds "almost the same".
type loadExp struct {
	model string
	cat   device.Catalog
	loads []int
}

func (e *loadExp) Name() string   { return "load" }
func (e *loadExp) Params() string { return catParam("model="+e.model, e.cat) }

func (e *loadExp) Trials(seed int64) ([]Trial, error) {
	p, ok := catOr(e.cat).ByModel(e.model)
	if !ok {
		return nil, fmt.Errorf("experiment: unknown device model %q", e.model)
	}
	e.loads = []int{0, 3, 5}
	trials := make([]Trial, 0, len(e.loads))
	for _, n := range e.loads {
		n := n
		trials = append(trials, NewTrial(
			fmt.Sprintf("load model=%s seed=%d apps=%d", e.model, seed, n),
			fmt.Sprintf("load bound with %d background apps", n),
			func() (time.Duration, error) {
				return measureUpperBoundD(p.WithLoad(n), seed+int64(n)*37)
			}))
	}
	return trials, nil
}

// rows pairs the load levels with the measured bounds.
func (e *loadExp) rows(results []any) []LoadImpactRow {
	out := make([]LoadImpactRow, len(e.loads))
	for i, n := range e.loads {
		out[i] = LoadImpactRow{BackgroundApps: n, MeasuredD: Res[time.Duration](results, i)}
	}
	return out
}

func (e *loadExp) Render(results []any) (Output, error) {
	return Output{Text: RenderLoadImpact(e.model, e.rows(results))}, nil
}

// RenderLoadImpact formats the load rows.
func RenderLoadImpact(model string, rows []LoadImpactRow) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Load impact on upper boundary of D (%s)\n", model)
	for _, r := range rows {
		fmt.Fprintf(&sb, "  %d background apps → %d ms\n", r.BackgroundApps, r.MeasuredD/time.Millisecond)
	}
	return sb.String()
}
