package experiment

import (
	"fmt"

	"repro/internal/device"
	"repro/internal/faults"
)

// Config carries the CLI-level parameters an experiment constructor may
// need besides the seed. Zero values fall back to the flag defaults the
// paper uses, so tests can build experiments from a partial Config.
type Config struct {
	// Model is the device model for single-device experiments (fig6, load,
	// drawer).
	Model string
	// Trials is the passwords-per-participant count for table3 (paper: 10).
	Trials int
	// CorpusN is the synthetic corpus size for the §VI-C2 study.
	CorpusN int
	// FaultProfile names the fault profile for the degradation sweep.
	FaultProfile string
	// FleetSize and FleetSeed parameterize the generated population of the
	// fleet sweep; zero values take the sweep's defaults (1000 devices,
	// seed 42).
	FleetSize int
	FleetSeed int64
	// Catalog is the device population the experiments draw from. Nil means
	// the seed catalog (the paper's Table I devices), which keeps every
	// journal identity and golden report byte-identical to the pre-catalog
	// builds.
	Catalog device.Catalog
}

// journalNamer lets an experiment override the journal identity its runs
// share: fig7 and fig8 render one capture study, so they declare one
// journal name and a run of either resumes the other's trials.
type journalNamer interface {
	JournalName() string
}

// JournalNameOf reports the journal identity for an experiment: its
// JournalName if it declares one, its Name otherwise.
func JournalNameOf(exp Experiment) string {
	if n, ok := exp.(journalNamer); ok {
		return n.JournalName()
	}
	return exp.Name()
}

// registration is one registry entry. suite marks the experiments `-exp
// all` runs; the heavyweight sweeps (degradation) and pure catalogs
// (devices) stay callable by name only.
type registration struct {
	name  string
	suite bool
	build func(cfg Config) Experiment
}

// registrations is the ordered experiment registry; the suite subset, in
// this order, is the `-exp all` sequence.
var registrations = []registration{
	{"fig2", true, func(Config) Experiment {
		return &oneShot{name: "fig2", run: func(int64) (string, error) { return RenderFig2(), nil }}
	}},
	{"fig4", true, func(Config) Experiment {
		return &oneShot{name: "fig4", run: func(int64) (string, error) { return RenderFig4(), nil }}
	}},
	{"fig6", true, func(cfg Config) Experiment { return &fig6Exp{model: cfg.Model, cat: cfg.Catalog} }},
	{"table2", true, func(cfg Config) Experiment { return &table2Exp{cat: cfg.Catalog} }},
	{"load", true, func(cfg Config) Experiment { return &loadExp{model: cfg.Model, cat: cfg.Catalog} }},
	{"fig7", true, func(cfg Config) Experiment { return &captureExp{cat: cfg.Catalog} }},
	{"fig8", true, func(cfg Config) Experiment { return &captureExp{fig8: true, cat: cfg.Catalog} }},
	{"table3", true, func(cfg Config) Experiment {
		return &table3Exp{perParticipant: cfg.Trials, cat: cfg.Catalog}
	}},
	{"table4", true, func(cfg Config) Experiment {
		return &oneShot{name: "table4", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rows, err := TableIVOn(cfg.Catalog, seed)
			if err != nil {
				return "", err
			}
			return RenderTableIV(rows), nil
		}}
	}},
	{"stealth", true, func(cfg Config) Experiment {
		return &oneShot{name: "stealth", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := StealthinessOn(cfg.Catalog, seed)
			if err != nil {
				return "", err
			}
			return RenderStealth(rep), nil
		}}
	}},
	{"corpus", true, func(cfg Config) Experiment {
		return &oneShot{name: "corpus", params: fmt.Sprintf("corpus=%d", cfg.CorpusN), run: func(seed int64) (string, error) {
			rep, err := CorpusStudy(seed, cfg.CorpusN)
			if err != nil {
				return "", err
			}
			return fmt.Sprintf("§VI-C2 — app-market prevalence study\n%v\n", rep), nil
		}}
	}},
	{"precision", true, func(cfg Config) Experiment {
		return &precisionExp{corpusN: cfg.CorpusN}
	}},
	{"defense-ipc", true, func(cfg Config) Experiment {
		return &oneShot{name: "defense-ipc", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := DefenseIPCOn(cfg.Catalog, seed, faults.None())
			if err != nil {
				return "", err
			}
			return RenderDefenseIPC(rep), nil
		}}
	}},
	{"defense-notif", true, func(cfg Config) Experiment {
		return &oneShot{name: "defense-notif", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := DefenseNotifOn(cfg.Catalog, seed, faults.None())
			if err != nil {
				return "", err
			}
			return RenderDefenseNotif(rep), nil
		}}
	}},
	{"defense-toastgap", true, func(cfg Config) Experiment {
		return &oneShot{name: "defense-toastgap", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := DefenseToastGapOn(cfg.Catalog, seed)
			if err != nil {
				return "", err
			}
			return RenderDefenseToastGap(rep), nil
		}}
	}},
	{"drawer", true, func(cfg Config) Experiment {
		return &oneShot{name: "drawer", params: catParam("model="+cfg.Model, cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := DrawerCheckOn(cfg.Catalog, cfg.Model, seed)
			if err != nil {
				return "", err
			}
			return RenderDrawerCheck(rep), nil
		}}
	}},
	{"sensitivity", true, func(Config) Experiment {
		return &oneShot{name: "sensitivity", run: func(seed int64) (string, error) {
			rows, err := ScatterSensitivity(seed)
			if err != nil {
				return "", err
			}
			return RenderScatterSensitivity(rows), nil
		}}
	}},
	{"ablations", true, func(cfg Config) Experiment {
		return &oneShot{name: "ablations", params: catParam("", cfg.Catalog), run: func(seed int64) (string, error) {
			rep, err := AblationsOn(cfg.Catalog, seed)
			if err != nil {
				return "", err
			}
			return RenderAblations(rep), nil
		}}
	}},
	{"devices", false, func(cfg Config) Experiment {
		return &oneShot{name: "devices", params: catParam("", cfg.Catalog), run: func(int64) (string, error) {
			return RenderDeviceCatalogOf(catOr(cfg.Catalog)), nil
		}}
	}},
	{"degradation", false, func(cfg Config) Experiment {
		return &degradationExp{profileName: cfg.FaultProfile, cat: cfg.Catalog}
	}},
	{"fleet", false, func(cfg Config) Experiment {
		size, fseed := cfg.FleetSize, cfg.FleetSeed
		if size == 0 {
			size = fleetDefaultSize
		}
		if fseed == 0 {
			fseed = fleetDefaultSeed
		}
		return &fleetExp{size: size, fleetSeed: fseed}
	}},
}

// Names lists every registered experiment, in registry order.
func Names() []string {
	out := make([]string, 0, len(registrations))
	for _, r := range registrations {
		out = append(out, r.name)
	}
	return out
}

// SuiteNames lists the experiments `-exp all` runs, in order.
func SuiteNames() []string {
	var out []string
	for _, r := range registrations {
		if r.suite {
			out = append(out, r.name)
		}
	}
	return out
}

// New builds the named experiment from cfg.
func New(name string, cfg Config) (Experiment, error) {
	for _, r := range registrations {
		if r.name == name {
			return r.build(cfg), nil
		}
	}
	return nil, fmt.Errorf("experiment: unknown experiment %q", name)
}
