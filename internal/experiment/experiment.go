// Package experiment is the evaluation harness: one runner per table and
// figure of the paper's Section VI and VII, producing the same rows and
// series the paper reports. Absolute numbers come from the calibrated
// simulation, so the reproduction target is the paper's *shape* — who
// wins, monotonicity in D, version orderings, crossovers — as recorded in
// EXPERIMENTS.md.
package experiment

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/binder"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/input"
	"repro/internal/sysserver"
)

// AttackerApp is the malicious package used across experiments.
const AttackerApp binder.ProcessID = "com.attacker.app"

// NumParticipants is the user-study size (30 in the paper).
const NumParticipants = 30

// assembleAttackStack builds a stack for a profile with the attacker's
// overlay permission granted (the victim "accidentally installed" the
// overlay app and granted it, per the threat model). Extra assembly
// options (fault plane, invariant monitor) pass through to Assemble.
func assembleAttackStack(p device.Profile, seed int64, opts ...sysserver.Option) (*sysserver.Stack, error) {
	st, err := sysserver.Assemble(p, seed, opts...)
	if err != nil {
		return nil, fmt.Errorf("experiment: assemble stack: %w", err)
	}
	st.WM.GrantOverlayPermission(AttackerApp)
	return st, nil
}

func screenOf(p device.Profile) geom.Rect {
	return geom.RectWH(0, 0, float64(p.ScreenW), float64(p.ScreenH))
}

// errSink collects failures raised inside clock callbacks, which have
// nowhere to return an error; runners check it once the run completes.
// Only the first failure is kept.
type errSink struct{ err error }

func (s *errSink) set(err error) {
	if s.err == nil && err != nil {
		s.err = err
	}
}

// setf is set with a formatted error.
func (s *errSink) setf(format string, args ...any) {
	s.set(fmt.Errorf(format, args...))
}

// safeTrial runs one trial function, converting a panic inside it into an
// error so a single bad trial is skipped and counted instead of killing a
// whole sweep.
func safeTrial(label string, fn func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("experiment: %s: panic: %v", label, r)
		}
	}()
	return fn()
}

// driveKeystrokes schedules a typing session's gestures on the stack's
// window manager: DOWN at each keystroke's DownAt, UP at UpAt (the gesture
// is canceled automatically if its window disappears in between). Failures
// inside the scheduled callbacks land in sink.
func driveKeystrokes(st *sysserver.Stack, ks []input.Keystroke, sink *errSink) error {
	for _, k := range ks {
		k := k
		if _, err := st.Clock.At(k.DownAt, "user/down", func() {
			gid, _, ok := st.WM.BeginGesture(k.Point)
			if !ok {
				return
			}
			st.Clock.MustAfter(k.UpAt-k.DownAt, "user/up", func() {
				// EndGesture only fails for unknown ids, which cannot
				// happen for a gesture begun above.
				if _, err := st.WM.EndGesture(gid, k.Point); err != nil {
					sink.setf("experiment: end gesture: %w", err)
				}
			})
		}); err != nil {
			return fmt.Errorf("experiment: schedule keystroke: %w", err)
		}
	}
	return nil
}

// participantDevice assigns participant i their phone from the catalog:
// with the seed catalog the study pairs the 30 participants 1:1 with the
// Table I devices.
func participantDevice(cat device.Catalog, i int) device.Profile {
	profiles := cat.Profiles()
	return profiles[i%len(profiles)]
}

// errNoKeystrokes guards empty sessions.
var errNoKeystrokes = errors.New("experiment: session has no keystrokes")

// sessionEnd reports one second past the last keystroke of a session.
func sessionEnd(ks []input.Keystroke) (time.Duration, error) {
	if len(ks) == 0 {
		return 0, errNoKeystrokes
	}
	return ks[len(ks)-1].UpAt + time.Second, nil
}
