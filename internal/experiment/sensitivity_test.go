package experiment

import (
	"strings"
	"testing"
	"time"
)

// TestScatterSensitivity: wrong-key rate is monotone in σ, near zero at
// σ = 8 px and severe at σ = 45 px on the 108 px grid.
func TestScatterSensitivity(t *testing.T) {
	rows, err := ScatterSensitivity(31)
	if err != nil {
		t.Fatalf("ScatterSensitivity: %v", err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].WrongKeyPct < rows[i-1].WrongKeyPct {
			t.Fatalf("wrong-key rate not monotone: σ=%v %.2f%% < σ=%v %.2f%%",
				rows[i].ScatterPx, rows[i].WrongKeyPct, rows[i-1].ScatterPx, rows[i-1].WrongKeyPct)
		}
	}
	if rows[0].WrongKeyPct > 0.1 {
		t.Errorf("σ=8px wrong-key %.2f%%, want ≈0", rows[0].WrongKeyPct)
	}
	// The calibrated σ=17 row sits in the Table III band.
	var at17 float64 = -1
	for _, r := range rows {
		if r.ScatterPx == 17 {
			at17 = r.WrongKeyPct
		}
	}
	if at17 < 0.05 || at17 > 2 {
		t.Errorf("σ=17px wrong-key %.2f%%, want within Table III band [0.05,2]", at17)
	}
	if last := rows[len(rows)-1]; last.WrongKeyPct < 10 {
		t.Errorf("σ=45px wrong-key %.2f%%, want severe degradation", last.WrongKeyPct)
	}
	if s := RenderScatterSensitivity(rows); !strings.Contains(s, "calibrated population mean") {
		t.Fatal("render missing calibration marker")
	}
}

// TestFig7ModelShape: the analytic curve is monotone in D and lands in
// the Fig. 7 band at both endpoints.
func TestFig7ModelShape(t *testing.T) {
	rows, err := Fig7Model()
	if err != nil {
		t.Fatalf("Fig7Model: %v", err)
	}
	if len(rows) != len(CaptureDs()) {
		t.Fatalf("rows = %d, want %d", len(rows), len(CaptureDs()))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].PredictedMean <= rows[i-1].PredictedMean {
			t.Fatalf("model not monotone at D=%v", rows[i].D)
		}
	}
	first, last := rows[0], rows[len(rows)-1]
	if first.D != 50*time.Millisecond || last.D != 200*time.Millisecond {
		t.Fatalf("sweep endpoints = %v..%v", first.D, last.D)
	}
	if first.PredictedMean < 55 || first.PredictedMean > 80 {
		t.Errorf("model at 50ms = %.1f, want Fig. 7 band", first.PredictedMean)
	}
	if last.PredictedMean < 88 || last.PredictedMean > 97 {
		t.Errorf("model at 200ms = %.1f, want Fig. 7 band", last.PredictedMean)
	}
	out := RenderFig7Model(rows, nil)
	for _, want := range []string{"model", "simulated", "paper", "61.0", "92.8"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}
