package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/defense"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/fleet"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// Fleet-sweep measurement constants: the notification-defense delay is the
// paper's t = 690 ms; the coarse bound search trades Table II's 5 ms
// resolution for a 20 ms grid so a thousand-device sweep stays tractable.
const (
	fleetNotifDelayT   = 690 * time.Millisecond
	fleetBoundResol    = 20 * time.Millisecond
	fleetBoundCeil     = 1600 * time.Millisecond
	fleetBoundTrialDur = 4 * time.Second
	fleetAttackDur     = 6 * time.Second
	fleetIPCAttackDur  = 20 * time.Second
	fleetTrialSeedStep = 7919 // distinct prime stride per device
	fleetDefaultSize   = 1000
	fleetDefaultSeed   = 42
)

// fleetRec is the journaled per-device record of the sweep: the four
// headline measurements on that device under its own calibrated fault
// plane (thermal throttling included).
type fleetRec struct {
	// Skipped marks a device whose measurements failed; it is excluded
	// from the aggregates and counted in the report.
	Skipped bool `json:"skipped,omitempty"`
	// Suppressed is the Fig. 6 headline at D = 0.9× the device's analytic
	// bound: the alert stayed invisible (Λ1), i.e. the attack succeeds.
	Suppressed bool `json:"suppressed"`
	// BoundD is the coarse Table II Λ1 upper bound (0 when even the
	// smallest probe leaks).
	BoundD time.Duration `json:"bound_d"`
	// NotifHolds is the §VII-B verdict: with the delayed-removal patch the
	// same attack degrades to Λ5.
	NotifHolds bool `json:"notif_holds"`
	// IPCDetected and IPCTerminated are the §VII-A verdict: the Binder
	// detector flagged the attacker and revoked its overlays.
	IPCDetected   bool `json:"ipc_detected"`
	IPCTerminated bool `json:"ipc_terminated"`
}

// fleetExp is the generative-population sweep: synthesize a market-share-
// weighted device fleet, then re-run the paper's headline attack and both
// §VII defenses on every device — each under that device's own fault
// calibration — and aggregate by market weight. One trial per device, so
// the sweep shards across the worker pool and journals per device.
type fleetExp struct {
	size      int
	fleetSeed int64
	fl        *fleet.Fleet
}

func (e *fleetExp) Name() string { return "fleet" }
func (e *fleetExp) Params() string {
	return fmt.Sprintf("size=%d fleet-seed=%d", e.size, e.fleetSeed)
}

// planeFor builds the per-run assembly options for a device's fault
// profile: a fresh plane per stack (planes are stateful), none at all for
// a zero profile so unfaulted devices keep the exact unfaulted stack.
func planeFor(prof faults.Profile, seed int64) []sysserver.Option {
	if prof.Zero() {
		return nil
	}
	return []sysserver.Option{sysserver.WithFaults(faults.NewPlane(prof, seed))}
}

// fleetCoarseBound is measureUpperBoundD on a 20 ms grid with a single
// vote per probe — each probe under a fresh instance of the device's
// fault plane.
func fleetCoarseBound(p device.Profile, prof faults.Profile, seed int64) (time.Duration, error) {
	probe := int64(0)
	lambda1At := func(d time.Duration) (bool, error) {
		probe++
		s := seed + probe*101
		o, err := OutcomeForD(p, d, fleetBoundTrialDur, s, planeFor(prof, s)...)
		if err != nil {
			return false, err
		}
		return o == sysui.Lambda1, nil
	}
	lo, hi := fleetBoundResol, fleetBoundCeil
	ok, err := lambda1At(lo)
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, nil
	}
	for hi-lo > fleetBoundResol {
		mid := (lo + hi) / 2 / fleetBoundResol * fleetBoundResol
		ok, err := lambda1At(mid)
		if err != nil {
			return 0, err
		}
		if ok {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo, nil
}

// fleetNotifHolds reruns the attack with the §VII-B delayed-removal patch
// enabled and reports whether the defense wins (the outcome degrades to
// Λ5: the alert completes its lifecycle in front of the user).
func fleetNotifHolds(p device.Profile, prof faults.Profile, d time.Duration, seed int64) (bool, error) {
	st, err := assembleAttackStack(p, seed, planeFor(prof, seed+1)...)
	if err != nil {
		return false, err
	}
	st.Server.EnableEnhancedNotificationDefense(fleetNotifDelayT)
	o, err := runOverlayAttackOn(st, p, d, fleetAttackDur)
	if err != nil {
		return false, err
	}
	return o == sysui.Lambda5, nil
}

// fleetIPCVerdict runs the armed Binder detector against the attack and
// reports whether it flagged the attacker and revoked its overlays.
func fleetIPCVerdict(p device.Profile, prof faults.Profile, d time.Duration, seed int64) (detected, terminated bool, err error) {
	st, err := assembleAttackStack(p, seed, planeFor(prof, seed+1)...)
	if err != nil {
		return false, false, err
	}
	det, err := defense.NewIPCDetector(defense.IPCDetectorConfig{})
	if err != nil {
		return false, false, fmt.Errorf("experiment: fleet detector: %w", err)
	}
	if err := det.Install(st, true); err != nil {
		return false, false, fmt.Errorf("experiment: install fleet detector: %w", err)
	}
	if _, err := runOverlayAttackOn(st, p, d, fleetIPCAttackDur); err != nil {
		return false, false, err
	}
	detected = det.Detected(AttackerApp)
	terminated = !st.WM.HasOverlayPermission(AttackerApp) && st.WM.OverlayCount(AttackerApp) == 0
	return detected, terminated, nil
}

// runOverlayAttackOn starts the draw-and-destroy attack on an assembled
// stack, runs it for attackDur plus settle time, and reports the worst
// alert outcome.
func runOverlayAttackOn(st *sysserver.Stack, p device.Profile, d, attackDur time.Duration) (sysui.Outcome, error) {
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App:    AttackerApp,
		D:      d,
		Bounds: screenOf(p),
	})
	if err != nil {
		return 0, fmt.Errorf("experiment: build overlay attack: %w", err)
	}
	if err := atk.Start(); err != nil {
		return 0, fmt.Errorf("experiment: start attack: %w", err)
	}
	st.Clock.MustAfter(attackDur, "experiment/stop", atk.Stop)
	if err := st.Clock.RunFor(attackDur + 5*time.Second); err != nil {
		return 0, fmt.Errorf("experiment: run: %w", err)
	}
	if err := atk.Err(); err != nil {
		return 0, err
	}
	return st.UI.WorstOutcome(), nil
}

func (e *fleetExp) Trials(seed int64) ([]Trial, error) {
	fl, err := fleet.Generate(e.size, e.fleetSeed)
	if err != nil {
		return nil, err
	}
	e.fl = fl
	entries := fl.Entries()
	trials := make([]Trial, 0, len(entries))
	for i, ent := range entries {
		i, ent := i, ent
		label := fmt.Sprintf("fleet device %s", ent.Profile.Model)
		trials = append(trials, NewTrial(
			fmt.Sprintf("fleet size=%d fleet-seed=%d seed=%d device=%s",
				e.size, e.fleetSeed, seed, ent.Profile.Model),
			label,
			func() (fleetRec, error) {
				var rec fleetRec
				err := safeTrial(label, func() error {
					return measureFleetDevice(&rec, ent, seed+int64(i)*fleetTrialSeedStep)
				})
				if err != nil {
					// A deterministic per-device failure is journaled as a
					// skip so the sweep completes and resumes identically.
					return fleetRec{Skipped: true}, nil
				}
				return rec, nil
			}))
	}
	return trials, nil
}

// measureFleetDevice runs the four sweep measurements on one device.
func measureFleetDevice(rec *fleetRec, ent fleet.Entry, seed int64) error {
	p := ent.Profile
	d := time.Duration(float64(boundOf(p)) * 0.9)

	o, err := OutcomeForD(p, d, fleetAttackDur, seed, planeFor(ent.Faults, seed)...)
	if err != nil {
		return err
	}
	rec.Suppressed = o == sysui.Lambda1

	if rec.BoundD, err = fleetCoarseBound(p, ent.Faults, seed+1000); err != nil {
		return err
	}
	if rec.NotifHolds, err = fleetNotifHolds(p, ent.Faults, d, seed+2000); err != nil {
		return err
	}
	if rec.IPCDetected, rec.IPCTerminated, err = fleetIPCVerdict(p, ent.Faults, d, seed+3000); err != nil {
		return err
	}
	return nil
}

// fleetAgg accumulates one population slice's market-weighted aggregates.
type fleetAgg struct {
	devices    int
	weight     float64
	suppressed float64 // weight-sum of attack successes
	boundW     float64 // weight-sum of BoundD (for the weighted mean)
	notif      float64
	ipcDet     float64
	ipcTerm    float64
}

func (a *fleetAgg) add(w float64, rec fleetRec) {
	a.devices++
	a.weight += w
	if rec.Suppressed {
		a.suppressed += w
	}
	a.boundW += w * float64(rec.BoundD)
	if rec.NotifHolds {
		a.notif += w
	}
	if rec.IPCDetected {
		a.ipcDet += w
	}
	if rec.IPCTerminated {
		a.ipcTerm += w
	}
}

// row renders the aggregate as one table line. Percentages are weighted
// within the slice; the bound is the slice's weighted mean.
func (a *fleetAgg) row(name string, totalWeight float64) string {
	if a.weight == 0 {
		return fmt.Sprintf("  %-10s %5d      -        -        -         -         -\n", name, a.devices)
	}
	meanBound := time.Duration(a.boundW / a.weight).Round(time.Millisecond)
	return fmt.Sprintf("  %-10s %5d %7.2f%% %7dms %7.1f%% %8.1f%% %8.1f%%/%.1f%%\n",
		name, a.devices, 100*a.weight/totalWeight,
		meanBound/time.Millisecond,
		100*a.suppressed/a.weight,
		100*a.notif/a.weight,
		100*a.ipcDet/a.weight, 100*a.ipcTerm/a.weight)
}

func (e *fleetExp) Render(results []any) (Output, error) {
	byFamily := map[string]*fleetAgg{}
	var famOrder []string
	var animOff, overall fleetAgg
	skipped := 0
	var totalWeight float64
	for i, ent := range e.fl.Entries() {
		rec := Res[fleetRec](results, i)
		if rec.Skipped {
			skipped++
			continue
		}
		w := ent.Weight
		totalWeight += w
		fam := ent.Profile.Family
		agg, ok := byFamily[fam]
		if !ok {
			agg = &fleetAgg{}
			byFamily[fam] = agg
			famOrder = append(famOrder, fam)
		}
		agg.add(w, rec)
		overall.add(w, rec)
		if ent.Profile.AnimationsOff {
			animOff.add(w, rec)
		}
	}
	sort.Strings(famOrder)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Fleet sweep — market-weighted attack success and defense efficacy\n")
	fmt.Fprintf(&sb, "%s, attack at D = 0.9×analytic bound, per-device fault calibration active\n", e.fl.Name())
	sb.WriteString("  family     count   share    Λ1-bound  attack   notif-def  ipc-det/term\n")
	for _, fam := range famOrder {
		sb.WriteString(byFamily[fam].row(fam, totalWeight))
	}
	sb.WriteString(animOff.row("anim-off", totalWeight))
	sb.WriteString(overall.row("fleet-wide", totalWeight))
	if skipped > 0 {
		fmt.Fprintf(&sb, "  (%d devices skipped after measurement failures)\n", skipped)
	}
	return Output{Text: sb.String(), Skipped: skipped}, nil
}
