package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/analysis"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/stats"
)

// ScatterSensitivityRow is one touch-precision level's inference accuracy.
type ScatterSensitivityRow struct {
	// ScatterPx is the touch-point standard deviation.
	ScatterPx float64
	// WrongKeyPct is the nearest-key misclassification percentage.
	WrongKeyPct float64
}

// ScatterSensitivity sweeps the typist's touch scatter and measures the
// attacker's nearest-key misclassification rate — the sensitivity of
// Table III's wrong-key errors to the σ ≈ 17 px calibration. The keyboard
// grid is ~108 px, so accuracy degrades sharply once σ approaches half a
// key width.
func ScatterSensitivity(seed int64) ([]ScatterSensitivityRow, error) {
	kb, err := keyboard.New(geom.RectWH(0, 1200, 1080, 720))
	if err != nil {
		return nil, fmt.Errorf("experiment: keyboard: %w", err)
	}
	rng := simrand.New(seed).Derive("scatter")
	keys := kb.Keys(keyboard.BoardLower)
	const drawsPerKey = 300
	var out []ScatterSensitivityRow
	for _, sigma := range []float64{8, 12, 17, 24, 32, 45} {
		wrong, total := 0, 0
		for _, key := range keys {
			if key.Kind != keyboard.KindChar {
				continue
			}
			for i := 0; i < drawsPerKey; i++ {
				p := geom.Pt(
					rng.Normal(key.Center().X, sigma),
					rng.Normal(key.Center().Y, sigma),
				)
				if kb.NearestKey(keyboard.BoardLower, p).Label != key.Label {
					wrong++
				}
				total++
			}
		}
		out = append(out, ScatterSensitivityRow{
			ScatterPx:   sigma,
			WrongKeyPct: stats.Ratio(wrong, total),
		})
	}
	return out, nil
}

// RenderScatterSensitivity formats the sweep.
func RenderScatterSensitivity(rows []ScatterSensitivityRow) string {
	var sb strings.Builder
	sb.WriteString("Sensitivity — nearest-key inference vs touch scatter (108 px key grid)\n")
	for _, r := range rows {
		note := ""
		if r.ScatterPx == 17 {
			note = "   <- calibrated population mean"
		}
		fmt.Fprintf(&sb, "  σ = %4.0f px → wrong-key rate %5.2f%%%s\n", r.ScatterPx, r.WrongKeyPct, note)
	}
	return sb.String()
}

// Fig7ModelRow pairs the analytic per-D capture prediction (Equation-(2)
// style coverage model over the device fleet) with nothing else — the
// model curve to overlay on the measured Fig. 7.
type Fig7ModelRow struct {
	D time.Duration
	// PredictedMean is the fleet-mean analytic gesture-capture rate.
	PredictedMean float64
}

// Fig7Model evaluates the closed-form capture model for every Fig. 7 D
// over the 30-device fleet with the calibrated ~14 ms press window.
func Fig7Model() ([]Fig7ModelRow, error) {
	return Fig7ModelOn(nil)
}

// Fig7ModelOn is Fig7Model over an arbitrary device catalog (nil means
// the seed catalog).
func Fig7ModelOn(cat device.Catalog) ([]Fig7ModelRow, error) {
	const pressWindow = 14 * time.Millisecond
	profiles := catOr(cat).Profiles()
	out := make([]Fig7ModelRow, 0, len(CaptureDs()))
	for _, d := range CaptureDs() {
		sum := 0.0
		for _, p := range profiles {
			r, err := analysis.ExpectedGestureCaptureRate(p, d, pressWindow)
			if err != nil {
				// CaptureDs are all positive, so this needs a broken
				// profile to fire.
				return nil, fmt.Errorf("experiment: fig7 model: %w", err)
			}
			sum += 100 * r
		}
		out = append(out, Fig7ModelRow{D: d, PredictedMean: sum / float64(len(profiles))})
	}
	return out, nil
}

// RenderFig7Model prints the model curve next to the simulated means and
// the paper's means — the three-way comparison.
func RenderFig7Model(model []Fig7ModelRow, measured []Fig7Row) string {
	paperMeans := []float64{61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8}
	var sb strings.Builder
	sb.WriteString("Fig. 7 three-way comparison — analytic model vs simulation vs paper\n")
	sb.WriteString("   D      model   simulated   paper\n")
	for i, m := range model {
		sim := "    -"
		if i < len(measured) {
			sim = fmt.Sprintf("%8.1f", measured[i].Box.Mean)
		}
		paper := "    -"
		if i < len(paperMeans) {
			paper = fmt.Sprintf("%6.1f", paperMeans[i])
		}
		fmt.Fprintf(&sb, "  %3dms  %6.1f  %s  %s\n", m.D/time.Millisecond, m.PredictedMean, sim, paper)
	}
	return sb.String()
}
