package experiment

import "fmt"

// oneShot adapts a single-run experiment — one that produces its whole
// report from one function call — to the Experiment interface: a trial set
// of exactly one trial whose journaled result is the rendered report text.
type oneShot struct {
	name   string
	params string
	run    func(seed int64) (string, error)
}

func (e *oneShot) Name() string   { return e.name }
func (e *oneShot) Params() string { return e.params }

func (e *oneShot) Trials(seed int64) ([]Trial, error) {
	return []Trial{NewTrial(
		fmt.Sprintf("%s seed=%d params=%q", e.name, seed, e.params),
		e.name,
		func() (string, error) { return e.run(seed) },
	)}, nil
}

func (e *oneShot) Render(results []any) (Output, error) {
	return Output{Text: Res[string](results, 0)}, nil
}
