package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/stats"
)

// DrawerCheckReport quantifies a question the paper raises but does not
// measure: the overlay alert "can be viewed any time by swiping down on
// the Android status bar" — so what does a vigilant user who checks the
// drawer at a random moment actually see during the attack?
//
// The answer has two layers. The alert *entry* is present in the drawer
// for most of each cycle (from the post notice until the next cycle's
// remove). But the entry's *view* renders only as far as the slide-down
// animation progressed, and at D below the bound the animation never
// draws a pixel — so the drawer shows an invisible container and the
// random check still catches nothing.
type DrawerCheckReport struct {
	Model string
	// Rows pairs each attacking window with the drawer-state fractions.
	Rows []DrawerCheckRow
}

// DrawerCheckRow is one D's drawer-exposure measurement.
type DrawerCheckRow struct {
	D time.Duration
	// EntryPresentPct is the percentage of attack time with an alert
	// entry listed in the drawer (rendered or not).
	EntryPresentPct float64
	// PixelsVisiblePct is the percentage of attack time at which the
	// entry had actually rendered at least one pixel — the user-visible
	// exposure.
	PixelsVisiblePct float64
}

// DrawerCheck samples drawer state at 1 ms granularity over a 20 s attack
// for several attacking windows.
func DrawerCheck(model string, seed int64) (DrawerCheckReport, error) {
	return DrawerCheckOn(nil, model, seed)
}

// DrawerCheckOn is DrawerCheck with the model resolved in an arbitrary
// device catalog (nil means the seed catalog).
func DrawerCheckOn(cat device.Catalog, model string, seed int64) (DrawerCheckReport, error) {
	p, ok := catOr(cat).ByModel(model)
	if !ok {
		return DrawerCheckReport{}, fmt.Errorf("experiment: unknown device model %q", model)
	}
	rep := DrawerCheckReport{Model: model}
	bound := float64(boundOf(p))
	// The last sweep point sits well past the bound, where the animation
	// gets far enough to render before each retraction.
	for i, frac := range []float64{0.5, 0.9, 2.5} {
		d := time.Duration(bound * frac)
		st, err := assembleAttackStack(p, seed+int64(i))
		if err != nil {
			return rep, err
		}
		atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
			App: AttackerApp, D: d, Bounds: screenOf(p),
		})
		if err != nil {
			return rep, fmt.Errorf("experiment: drawer-check attack: %w", err)
		}
		if err := atk.Start(); err != nil {
			return rep, fmt.Errorf("experiment: start: %w", err)
		}
		const horizon = 20 * time.Second
		present, visible, samples := 0, 0, 0
		var probe func()
		probe = func() {
			if st.Clock.Now() > horizon {
				return
			}
			samples++
			if st.UI.ActiveAlert(AttackerApp) {
				present++
			}
			if st.UI.AlertVisiblePx(AttackerApp) > 0 {
				visible++
			}
			st.Clock.MustAfter(time.Millisecond, "drawer/probe", probe)
		}
		st.Clock.MustAfter(time.Second, "drawer/probe", probe)
		st.Clock.MustAfter(horizon, "drawer/stop", atk.Stop)
		if err := st.Clock.RunFor(horizon + 2*time.Second); err != nil {
			return rep, fmt.Errorf("experiment: run: %w", err)
		}
		rep.Rows = append(rep.Rows, DrawerCheckRow{
			D:                d,
			EntryPresentPct:  stats.Ratio(present, samples),
			PixelsVisiblePct: stats.Ratio(visible, samples),
		})
	}
	return rep, nil
}

// RenderDrawerCheck formats the report.
func RenderDrawerCheck(r DrawerCheckReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Drawer-check exposure during the overlay attack (%s)\n", r.Model)
	for _, row := range r.Rows {
		fmt.Fprintf(&sb, "  D = %3d ms → entry present %5.1f%% of the time, pixels visible %5.1f%%\n",
			row.D/time.Millisecond, row.EntryPresentPct, row.PixelsVisiblePct)
	}
	sb.WriteString("  (below the bound the drawer holds an entry that never rendered a pixel)\n")
	return sb.String()
}
