package experiment

import (
	"context"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden reports instead of comparing against them:
//
//	go test ./internal/experiment -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the current code")

// goldenSeed pins the reference run. Changing it (or any experiment
// logic) intentionally requires regenerating the goldens with -update and
// reviewing the diff.
const goldenSeed = 42

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden %s\n-- got --\n%s\n-- want --\n%s\n(run with -update if the change is intentional)",
			name, path, got, string(want))
	}
}

// TestGoldenFig6 locks the Fig. 6 sweep report at the reference seed.
func TestGoldenFig6(t *testing.T) {
	pts, err := Fig6("mi8", goldenSeed)
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	checkGolden(t, "fig6", RenderFig6("mi8", pts))
}

// TestGoldenTableII locks the Table II per-device bound report.
func TestGoldenTableII(t *testing.T) {
	rows, err := TableII(goldenSeed)
	if err != nil {
		t.Fatalf("table2: %v", err)
	}
	checkGolden(t, "table2", RenderTableII(rows))
}

// TestGoldenTableIII locks the Table III stealing report (one password per
// participant to keep the suite fast).
func TestGoldenTableIII(t *testing.T) {
	rows, err := TableIII(goldenSeed, 1)
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	checkGolden(t, "table3", RenderTableIII(rows))
}

// TestGoldenFig7 locks the capture-rate box plots.
func TestGoldenFig7(t *testing.T) {
	study, err := RunCaptureStudy(goldenSeed)
	if err != nil {
		t.Fatalf("capture study: %v", err)
	}
	rows, err := study.Fig7()
	if err != nil {
		t.Fatalf("fig7: %v", err)
	}
	checkGolden(t, "fig7", RenderFig7(rows))
}

// TestGoldenDegradation locks the full degradation sweep — including the
// Table III slice, the defense verdicts and the invariant first-break
// table — at the reference seed and profile. In particular this pins the
// zero-intensity row, which must track the unfaulted experiments exactly.
func TestGoldenDegradation(t *testing.T) {
	rep, err := Degradation(context.Background(), goldenSeed, "chaos")
	if err != nil {
		t.Fatalf("degradation: %v", err)
	}
	checkGolden(t, "degradation", RenderDegradation(rep))
}
