package experiment

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

// update regenerates the golden reports instead of comparing against them:
//
//	go test ./internal/experiment -run TestGolden -update
var update = flag.Bool("update", false, "rewrite testdata/golden/*.txt from the current code")

// goldenSeeds pins the reference runs: the original seed-42 reports plus a
// second seed so a seed-dependent bug (a hard-coded 42 anywhere in the
// pipeline) cannot hide behind one golden. Changing experiment logic
// intentionally requires regenerating with -update and reviewing the diff.
func goldenSeeds() []struct {
	seed   int64
	suffix string
} {
	return []struct {
		seed   int64
		suffix string
	}{
		{42, ""},
		{7, "-seed7"},
	}
}

// goldenWorkers runs the golden sweeps on a worker pool: the goldens were
// recorded from the old sequential runners, so passing them from a
// parallel run is itself a determinism check.
const goldenWorkers = 8

func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".txt")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatalf("mkdir golden dir: %v", err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatalf("write golden: %v", err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update to create it): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s output drifted from golden %s\n-- got --\n%s\n-- want --\n%s\n(run with -update if the change is intentional)",
			name, path, got, string(want))
	}
}

// TestGoldenFig6 locks the Fig. 6 sweep report at the reference seeds.
func TestGoldenFig6(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &fig6Exp{model: "mi8"}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("fig6 (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "fig6"+c.suffix, RenderFig6("mi8", e.points(results)))
	}
}

// TestGoldenTableII locks the Table II per-device bound report.
func TestGoldenTableII(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &table2Exp{}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("table2 (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "table2"+c.suffix, RenderTableII(e.rows(results)))
	}
}

// TestGoldenTableIII locks the Table III stealing report (one password per
// participant to keep the suite fast).
func TestGoldenTableIII(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &table3Exp{perParticipant: 1}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("table3 (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "table3"+c.suffix, RenderTableIII(e.rows(results)))
	}
}

// TestGoldenFig7 locks the capture-rate box plots.
func TestGoldenFig7(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &captureExp{}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("capture study (seed %d): %v", c.seed, err)
		}
		rows, err := e.study(results).Fig7()
		if err != nil {
			t.Fatalf("fig7 (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "fig7"+c.suffix, RenderFig7(rows))
	}
}

// TestGoldenPrecision locks the precision-tier study at the reference
// seeds and asserts its headline on top of the byte-identity check:
// Tier1 never loses precision to Tier0, and Tier2 strictly improves
// precision on every capability without reducing recall.
func TestGoldenPrecision(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &precisionExp{corpusN: 20000}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("precision (seed %d): %v", c.seed, err)
		}
		reps := e.reports(results)
		checkGolden(t, "precision"+c.suffix, RenderPrecision(c.seed, e.corpusN, reps))

		base := CapabilityStats(reps[0])
		mid := CapabilityStats(reps[1])
		top := CapabilityStats(reps[len(reps)-1])
		for name, b := range base {
			if m := mid[name]; m.Precision() < b.Precision() {
				t.Errorf("seed %d: %s: tier1 precision %.4f below tier0 %.4f", c.seed, name, m.Precision(), b.Precision())
			}
			tp := top[name]
			if tp.Precision() <= b.Precision() {
				t.Errorf("seed %d: %s: tier2 precision %.4f does not strictly improve on tier0 %.4f",
					c.seed, name, tp.Precision(), b.Precision())
			}
			if tp.Recall() < b.Recall() {
				t.Errorf("seed %d: %s: tier2 recall %.4f below tier0 %.4f", c.seed, name, tp.Recall(), b.Recall())
			}
		}
	}
}

// TestGoldenDegradation locks the full degradation sweep — including the
// Table III slice, the defense verdicts and the invariant first-break
// table — at the reference seeds and profile. In particular this pins the
// zero-intensity row, which must track the unfaulted experiments exactly.
func TestGoldenDegradation(t *testing.T) {
	for _, c := range goldenSeeds() {
		e := &degradationExp{profileName: "chaos"}
		results, err := Collect(e, RunOpts{Seed: c.seed, Workers: goldenWorkers})
		if err != nil {
			t.Fatalf("degradation (seed %d): %v", c.seed, err)
		}
		checkGolden(t, "degradation"+c.suffix, RenderDegradation(e.report(results)))
	}
}
