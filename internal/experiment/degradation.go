package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/apps"
	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/input"
	"repro/internal/invariant"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// DegradationIntensities are the fault-intensity steps of the sweep: the
// base profile's probabilities scaled by each factor.
func DegradationIntensities() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// degradationParticipants is how many study participants type at each
// capture-rate D — enough for a stable mean ordering, small enough that
// the five-intensity sweep stays fast.
const degradationParticipants = 4

// degradationStealLen is the password length of the sweep's Table III
// slice — the paper's middle length, where the error classes are all
// populated.
const degradationStealLen = 8

// DegradationPoint is the sweep's measurement at one fault intensity:
// which headline results of the paper survive and which collapse.
type DegradationPoint struct {
	// Intensity is the probability scale factor applied to the profile.
	Intensity float64
	// AlertSuppressed reports whether the Fig. 6 headline still holds: the
	// draw-and-destroy attack at 0.9× the device bound keeps the
	// notification alert invisible (Λ1).
	AlertSuppressed bool
	// BoundD is the Table II Λ1 upper bound re-measured under faults
	// (zero once no D keeps the alert suppressed — full collapse).
	BoundD time.Duration
	// CaptureLowD and CaptureHighD are mean Fig. 7 capture rates at
	// D = 50 ms and D = 200 ms.
	CaptureLowD, CaptureHighD float64
	// OrderingHolds reports the Fig. 7 shape: capture at the high D at
	// least matches the low D.
	OrderingHolds bool
	// StealTrials and StealSuccess fold Table III into the sweep: the
	// number of completed password-stealing trials at this intensity and
	// the percentage of passwords fully recovered.
	StealTrials  int
	StealSuccess float64
	// IPCDetected, IPCTerminated and BenignFlagged are the §VII-A defense
	// verdict under faults: the Binder-based detector must still flag and
	// terminate the attack without flagging the benign workload.
	IPCDetected   bool
	IPCTerminated bool
	BenignFlagged int
	// NotifHolds is the §VII-B verdict under faults: with the
	// delayed-removal patch the attack outcome is Λ5 and the honest app's
	// alert still completes its lifecycle.
	NotifHolds bool
	// Violations counts invariant-monitor violations recorded during the
	// monitored attack run.
	Violations int
	// ViolationsByRule bins the monitored run's recorded violations per
	// invariant rule; the sweep-wide first-break table aggregates it.
	ViolationsByRule map[string]int
	// SkippedTrials counts sub-experiments lost to a panic or error.
	SkippedTrials int
	// Faults aggregates the faults actually injected at this intensity.
	Faults faults.Stats
}

// DegradationReport is the full sweep.
type DegradationReport struct {
	Profile string
	Seed    int64
	Points  []DegradationPoint
}

// InvariantBreaks aggregates the sweep's invariant violations per rule and
// reports, most fragile rule first, the lowest intensity at which each
// first broke. Computed from the points, so it is also meaningful on a
// partial (interrupted) report.
func (r *DegradationReport) InvariantBreaks() []invariant.RuleBreak {
	agg := invariant.NewAggregate()
	for _, pt := range r.Points {
		for rule, n := range pt.ViolationsByRule {
			agg.Add(pt.Intensity, rule, n)
		}
	}
	return agg.Rows()
}

// The journaled per-sub-experiment records. Each encodes its own skip flag
// so a deterministic failure is replayed as a skip instead of re-running.
type degAttackRec struct {
	Skipped    bool           `json:"skipped,omitempty"`
	Suppressed bool           `json:"suppressed"`
	Violations int            `json:"violations"`
	ViolByRule map[string]int `json:"viol_by_rule,omitempty"`
	Faults     faults.Stats   `json:"faults"`
}

type degBoundRec struct {
	Skipped bool          `json:"skipped,omitempty"`
	BoundD  time.Duration `json:"bound_d"`
	Faults  faults.Stats  `json:"faults"`
}

type degCaptureRec struct {
	Skipped bool         `json:"skipped,omitempty"`
	Rate    float64      `json:"rate"`
	Faults  faults.Stats `json:"faults"`
}

type degStealRec struct {
	Skipped bool         `json:"skipped,omitempty"`
	Success bool         `json:"success"`
	Faults  faults.Stats `json:"faults"`
}

type degIPCRec struct {
	Skipped       bool `json:"skipped,omitempty"`
	Detected      bool `json:"detected"`
	Terminated    bool `json:"terminated"`
	BenignFlagged int  `json:"benign_flagged"`
}

type degNotifRec struct {
	Skipped bool `json:"skipped,omitempty"`
	Holds   bool `json:"holds"`
}

// degTrialKind labels which sub-experiment a degradation trial belongs to.
type degTrialKind int

const (
	degKindAttack degTrialKind = iota
	degKindBound
	degKindCapture
	degKindSteal
	degKindIPC
	degKindNotif
)

// degMeta is the per-trial context degradationExp.Trials stashes for
// Render: which intensity step and sub-experiment the trial belongs to,
// and (for steal trials) the password the participant was asked to type.
type degMeta struct {
	kind     degTrialKind
	ii       int // index into DegradationIntensities
	di       int // capture D index (capture trials only)
	password string
}

// degradationExp sweeps the named fault profile's intensity from 0 to 1
// and re-runs the headline results at every step — the Fig. 6 alert
// suppression, the Table II Λ1 bound, the Fig. 7 capture ordering, a
// Table III password-stealing slice and the §VII defense verdicts — under
// a live invariant monitor. The zero-intensity point attaches no fault
// plane at all, so it reproduces the unfaulted baseline exactly. The six
// sub-experiments of every intensity step become independent trials, so
// the sweep shards across the driver's worker pool.
type degradationExp struct {
	profileName string
	cat         device.Catalog
	meta        []degMeta
	profile     string
	seed        int64
}

func (e *degradationExp) Name() string   { return "degradation" }
func (e *degradationExp) Params() string { return catParam("profile="+e.profileName, e.cat) }

func (e *degradationExp) Trials(seed int64) ([]Trial, error) {
	base, err := faults.ByName(e.profileName)
	if err != nil {
		return nil, err
	}
	e.profile = base.Name
	e.seed = seed
	p := catOr(e.cat).Default()
	attackD := time.Duration(float64(boundOf(p)) * 0.9)
	root := simrand.New(seed)
	typists, err := input.Participants(root.Derive("typists"), degradationParticipants)
	if err != nil {
		return nil, fmt.Errorf("experiment: participants: %w", err)
	}
	// The Table III slice draws from its own root so folding it into the
	// sweep cannot perturb the pre-existing sub-experiments' streams.
	stealRoot := simrand.New(seed + 104729)
	stealTypists, err := input.Participants(stealRoot.Derive("steal-typists"), degradationParticipants)
	if err != nil {
		return nil, fmt.Errorf("experiment: steal participants: %w", err)
	}
	pwSrc := stealRoot.Derive("steal-passwords")
	bofa, ok := apps.ByName("Bank of America")
	if !ok {
		return nil, fmt.Errorf("experiment: BofA app missing")
	}

	e.meta = e.meta[:0]
	var trials []Trial
	add := func(m degMeta, t Trial) {
		e.meta = append(e.meta, m)
		trials = append(trials, t)
	}
	for ii, x := range DegradationIntensities() {
		ii, x := ii, x
		prof := base.Scale(x)
		pseed := seed + int64(ii)*7919

		// A fresh plane per sub-experiment keeps each one's fault stream
		// independent of how long the previous one ran. Planes are built
		// inside the trial closures from fixed seeds, so they draw nothing
		// from the shared roots.
		planeOpts := func(planeSeed int64) ([]sysserver.Option, *faults.Plane) {
			if prof.Zero() {
				return nil, nil
			}
			pl := faults.NewPlane(prof, planeSeed)
			return []sysserver.Option{sysserver.WithFaults(pl)}, pl
		}
		planeStats := func(pl *faults.Plane) faults.Stats {
			if pl == nil {
				return faults.Stats{}
			}
			return pl.Stats()
		}

		// Sub-experiment 1 — monitored attack run at 0.9× the bound: does
		// the alert stay invisible, and do the platform invariants hold?
		add(degMeta{kind: degKindAttack, ii: ii}, NewTrial(
			fmt.Sprintf("degradation seed=%d profile=%s x=%.2f attack", seed, base.Name, x),
			fmt.Sprintf("degradation attack (x=%.2f)", x),
			func() (degAttackRec, error) {
				opts, pl := planeOpts(pseed)
				opts = append(opts, sysserver.WithMonitor())
				var st *sysserver.Stack
				err := safeTrial(fmt.Sprintf("degradation attack (x=%.2f)", x), func() error {
					var terr error
					st, terr = assembleAttackStack(p, pseed, opts...)
					if terr != nil {
						return terr
					}
					atk, terr := core.NewOverlayAttack(st, core.OverlayAttackConfig{
						App:    AttackerApp,
						D:      attackD,
						Bounds: screenOf(p),
					})
					if terr != nil {
						return terr
					}
					if terr := atk.Start(); terr != nil {
						return terr
					}
					st.Clock.MustAfter(6*time.Second, "experiment/stop", atk.Stop)
					return st.Clock.RunFor(11 * time.Second)
				})
				if err != nil {
					return degAttackRec{Skipped: true}, nil
				}
				rec := degAttackRec{
					Suppressed: st.UI.WorstOutcome() == sysui.Lambda1,
					Faults:     planeStats(pl),
				}
				if st.Monitor != nil {
					rec.Violations = st.Monitor.Count()
					for _, v := range st.Monitor.Violations() {
						if rec.ViolByRule == nil {
							rec.ViolByRule = make(map[string]int)
						}
						rec.ViolByRule[v.Rule]++
					}
				}
				return rec, nil
			}))

		// Sub-experiment 2 — the Λ1 bound search under faults.
		add(degMeta{kind: degKindBound, ii: ii}, NewTrial(
			fmt.Sprintf("degradation seed=%d profile=%s x=%.2f bound", seed, base.Name, x),
			fmt.Sprintf("degradation bound (x=%.2f)", x),
			func() (degBoundRec, error) {
				opts, pl := planeOpts(pseed + 1)
				var d time.Duration
				err := safeTrial(fmt.Sprintf("degradation bound (x=%.2f)", x), func() error {
					var terr error
					d, terr = measureUpperBoundD(p, pseed+1, opts...)
					return terr
				})
				if err != nil {
					return degBoundRec{Skipped: true}, nil
				}
				return degBoundRec{BoundD: d, Faults: planeStats(pl)}, nil
			}))

		// Sub-experiment 3 — Fig. 7 capture-rate ordering: mean capture at
		// D = 50 ms must not beat D = 200 ms.
		for di, d := range degradationCaptureDs() {
			di, d := di, d
			for i := 0; i < degradationParticipants; i++ {
				i := i
				// Derived here, in the old sequential order, so the shared
				// roots advance identically whatever order the trials run in.
				strRNG := root.DeriveIndexed("strings", ii*100+di*10+i)
				typist, err := typists[i].WithStream(root.DeriveIndexed("plan", ii*100+di*10+i))
				if err != nil {
					return nil, fmt.Errorf("experiment: trial typist: %w", err)
				}
				add(degMeta{kind: degKindCapture, ii: ii, di: di}, NewTrial(
					fmt.Sprintf("degradation seed=%d profile=%s x=%.2f capture d=%dms p=%d", seed, base.Name, x, d/time.Millisecond, i),
					fmt.Sprintf("degradation capture (x=%.2f, D=%v, participant %d)", x, d, i),
					func() (degCaptureRec, error) {
						opts, pl := planeOpts(pseed + 2 + int64(di*100+i))
						var rate float64
						err := safeTrial(fmt.Sprintf("degradation capture (x=%.2f, D=%v, participant %d)", x, d, i), func() error {
							var terr error
							rate, terr = runCaptureTrial(p, typist, d, strRNG,
								pseed+2+int64(di*100+i), opts...)
							return terr
						})
						if err != nil {
							return degCaptureRec{Skipped: true}, nil
						}
						return degCaptureRec{Rate: rate, Faults: planeStats(pl)}, nil
					}))
			}
		}

		// Sub-experiment 4 — Table III slice: each sweep participant types
		// one random password while the stealer runs under faults.
		for i := 0; i < degradationParticipants; i++ {
			i := i
			password := input.RandomPassword(pwSrc, degradationStealLen)
			typist, err := stealTypists[i].WithStream(stealRoot.DeriveIndexed("steal-plan", ii*degradationParticipants+i))
			if err != nil {
				return nil, fmt.Errorf("experiment: trial typist: %w", err)
			}
			add(degMeta{kind: degKindSteal, ii: ii, password: password}, NewTrial(
				fmt.Sprintf("degradation seed=%d profile=%s x=%.2f steal p=%d", seed, base.Name, x, i),
				fmt.Sprintf("degradation steal (x=%.2f, participant %d)", x, i),
				func() (degStealRec, error) {
					opts, pl := planeOpts(pseed + 500 + int64(i))
					var trial StealTrialResult
					err := safeTrial(fmt.Sprintf("degradation steal (x=%.2f, participant %d)", x, i), func() error {
						var terr error
						trial, terr = RunStealTrial(p, typist, bofa, password,
							pseed+3000+int64(i), opts...)
						return terr
					})
					if err != nil {
						return degStealRec{Skipped: true}, nil
					}
					return degStealRec{
						Success: ClassifyTrial(password, trial.Stolen) == ErrorNone,
						Faults:  planeStats(pl),
					}, nil
				}))
		}

		// Sub-experiment 5 — §VII-A IPC defense verdict under faults.
		add(degMeta{kind: degKindIPC, ii: ii}, NewTrial(
			fmt.Sprintf("degradation seed=%d profile=%s x=%.2f defense-ipc", seed, base.Name, x),
			fmt.Sprintf("degradation defense-ipc (x=%.2f)", x),
			func() (degIPCRec, error) {
				var drep DefenseIPCReport
				err := safeTrial(fmt.Sprintf("degradation defense-ipc (x=%.2f)", x), func() error {
					var terr error
					drep, terr = DefenseIPCOn(e.cat, pseed+4000, prof)
					return terr
				})
				if err != nil {
					return degIPCRec{Skipped: true}, nil
				}
				return degIPCRec{
					Detected:      drep.AttackDetected,
					Terminated:    drep.AttackTerminated,
					BenignFlagged: drep.BenignFlagged,
				}, nil
			}))

		// Sub-experiment 6 — §VII-B enhanced-notification verdict under
		// faults.
		add(degMeta{kind: degKindNotif, ii: ii}, NewTrial(
			fmt.Sprintf("degradation seed=%d profile=%s x=%.2f defense-notif", seed, base.Name, x),
			fmt.Sprintf("degradation defense-notif (x=%.2f)", x),
			func() (degNotifRec, error) {
				var nrep DefenseNotifReport
				err := safeTrial(fmt.Sprintf("degradation defense-notif (x=%.2f)", x), func() error {
					var terr error
					nrep, terr = DefenseNotifOn(e.cat, pseed+5000, prof)
					return terr
				})
				if err != nil {
					return degNotifRec{Skipped: true}, nil
				}
				return degNotifRec{Holds: nrep.OutcomeWith == sysui.Lambda5 && nrep.HonestAlertGone}, nil
			}))
	}
	return trials, nil
}

// degradationCaptureDs are the sweep's two Fig. 7 probe windows.
func degradationCaptureDs() []time.Duration {
	return []time.Duration{50 * time.Millisecond, 200 * time.Millisecond}
}

// report reassembles the sweep report from the per-trial records, walking
// the trials in their original sequential order so every accumulation
// (fault stats, capture-rate sums) happens exactly as the old runner did.
func (e *degradationExp) report(results []any) *DegradationReport {
	ints := DegradationIntensities()
	points := make([]DegradationPoint, len(ints))
	type capAcc struct {
		sum [2]float64
		n   [2]int
	}
	caps := make([]capAcc, len(ints))
	stealSucc := make([]int, len(ints))
	for ii, x := range ints {
		points[ii].Intensity = x
	}
	for ti, m := range e.meta {
		pt := &points[m.ii]
		switch m.kind {
		case degKindAttack:
			rec := Res[degAttackRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.AlertSuppressed = rec.Suppressed
			pt.Violations += rec.Violations
			pt.ViolationsByRule = rec.ViolByRule
			pt.Faults = pt.Faults.Add(rec.Faults)
		case degKindBound:
			rec := Res[degBoundRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.BoundD = rec.BoundD
			pt.Faults = pt.Faults.Add(rec.Faults)
		case degKindCapture:
			rec := Res[degCaptureRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.Faults = pt.Faults.Add(rec.Faults)
			caps[m.ii].sum[m.di] += rec.Rate
			caps[m.ii].n[m.di]++
		case degKindSteal:
			rec := Res[degStealRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.Faults = pt.Faults.Add(rec.Faults)
			pt.StealTrials++
			if rec.Success {
				stealSucc[m.ii]++
			}
		case degKindIPC:
			rec := Res[degIPCRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.IPCDetected = rec.Detected
			pt.IPCTerminated = rec.Terminated
			pt.BenignFlagged = rec.BenignFlagged
		case degKindNotif:
			rec := Res[degNotifRec](results, ti)
			if rec.Skipped {
				pt.SkippedTrials++
				continue
			}
			pt.NotifHolds = rec.Holds
		}
	}
	for ii := range points {
		pt := &points[ii]
		measured := true
		var means [2]float64
		for di := 0; di < 2; di++ {
			if caps[ii].n[di] == 0 {
				measured = false
				continue
			}
			means[di] = caps[ii].sum[di] / float64(caps[ii].n[di])
		}
		pt.CaptureLowD, pt.CaptureHighD = means[0], means[1]
		pt.OrderingHolds = measured && pt.CaptureHighD >= pt.CaptureLowD
		pt.StealSuccess = stats.Ratio(stealSucc[ii], pt.StealTrials)
	}
	return &DegradationReport{Profile: e.profile, Seed: e.seed, Points: points}
}

func (e *degradationExp) Render(results []any) (Output, error) {
	rep := e.report(results)
	skipped := 0
	for _, pt := range rep.Points {
		skipped += pt.SkippedTrials
	}
	return Output{Text: RenderDegradation(rep), Skipped: skipped}, nil
}

// degradationHeadlines are the sweep's survive/collapse predicates, shared
// by the survival summary and the monotonicity check.
func degradationHeadlines() []struct {
	name  string
	holds func(DegradationPoint) bool
} {
	return []struct {
		name  string
		holds func(DegradationPoint) bool
	}{
		{"alert suppression (Fig. 6)", func(pt DegradationPoint) bool { return pt.AlertSuppressed }},
		{"Λ1 bound > 0 (Table II)", func(pt DegradationPoint) bool { return pt.BoundD > 0 }},
		{"capture ordering (Fig. 7)", func(pt DegradationPoint) bool { return pt.OrderingHolds }},
		{"password recovery ≥ 50% (Table III)", func(pt DegradationPoint) bool {
			return pt.StealTrials > 0 && pt.StealSuccess >= 50
		}},
		{"IPC defense verdict (§VII-A)", func(pt DegradationPoint) bool {
			return pt.IPCDetected && pt.IPCTerminated && pt.BenignFlagged == 0
		}},
		{"notification defense Λ5 (§VII-B)", func(pt DegradationPoint) bool { return pt.NotifHolds }},
	}
}

// MonotoneAnomalies scans the sweep for survive/fail patterns no monotone
// degradation can produce: a headline that fails at some intensity but
// holds again at a strictly higher one. Random faults make individual
// points noisy, so an anomaly is not proof of a bug — but a sweep that
// recovers under MORE faults most often means a sweep-ordering or seeding
// error, and the report flags it.
func MonotoneAnomalies(r *DegradationReport) []string {
	var out []string
	for _, h := range degradationHeadlines() {
		failedAt := -1.0
		for _, pt := range r.Points {
			if !h.holds(pt) {
				if failedAt < 0 {
					failedAt = pt.Intensity
				}
				continue
			}
			if failedAt >= 0 && pt.Intensity > failedAt {
				out = append(out, fmt.Sprintf("%s: fails at intensity %.2f but holds at %.2f",
					h.name, failedAt, pt.Intensity))
				break
			}
		}
	}
	return out
}

// RenderDegradation formats the sweep as one row per intensity plus a
// survive/collapse summary per headline result, the sweep-wide invariant
// first-break table and any monotonicity anomalies.
func RenderDegradation(r *DegradationReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Degradation — headline results vs fault intensity (profile %q, seed %d)\n", r.Profile, r.Seed)
	sb.WriteString("  intensity  alert-Λ1  bound-D  capt@50ms  capt@200ms  ordering  violations  skipped\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "  %9.2f  %-8v  %5dms  %8.1f%%  %9.1f%%  %-8v  %10d  %7d\n",
			pt.Intensity, pt.AlertSuppressed, pt.BoundD/time.Millisecond,
			pt.CaptureLowD, pt.CaptureHighD, pt.OrderingHolds, pt.Violations, pt.SkippedTrials)
	}
	sb.WriteString("  intensity  steal-recov  ipc-detect  ipc-term  benign-fp  notif-Λ5\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "  %9.2f  %10.1f%%  %-10v  %-8v  %9d  %-8v\n",
			pt.Intensity, pt.StealSuccess, pt.IPCDetected, pt.IPCTerminated, pt.BenignFlagged, pt.NotifHolds)
	}
	for _, pt := range r.Points {
		if !pt.Faults.Zero() {
			fmt.Fprintf(&sb, "  faults @%.2f: %s\n", pt.Intensity, pt.Faults)
		}
	}
	sb.WriteString(invariant.RenderRuleBreaks(r.InvariantBreaks()))
	for _, h := range degradationHeadlines() {
		collapsed := false
		for _, pt := range r.Points {
			if !h.holds(pt) {
				fmt.Fprintf(&sb, "  %s: collapses at intensity %.2f\n", h.name, pt.Intensity)
				collapsed = true
				break
			}
		}
		if !collapsed {
			fmt.Fprintf(&sb, "  %s: survives the full sweep\n", h.name)
		}
	}
	if anomalies := MonotoneAnomalies(r); len(anomalies) > 0 {
		sb.WriteString("  WARNING: non-monotone degradation (possible sweep-ordering bug):\n")
		for _, a := range anomalies {
			fmt.Fprintf(&sb, "    %s\n", a)
		}
	}
	return sb.String()
}
