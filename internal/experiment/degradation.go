package experiment

import (
	"context"
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/faults"
	"repro/internal/input"
	"repro/internal/simrand"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// DegradationIntensities are the fault-intensity steps of the sweep: the
// base profile's probabilities scaled by each factor.
func DegradationIntensities() []float64 { return []float64{0, 0.25, 0.5, 0.75, 1} }

// degradationParticipants is how many study participants type at each
// capture-rate D — enough for a stable mean ordering, small enough that
// the five-intensity sweep stays fast.
const degradationParticipants = 4

// DegradationPoint is the sweep's measurement at one fault intensity:
// which headline results of the paper survive and which collapse.
type DegradationPoint struct {
	// Intensity is the probability scale factor applied to the profile.
	Intensity float64
	// AlertSuppressed reports whether the Fig. 6 headline still holds: the
	// draw-and-destroy attack at 0.9× the device bound keeps the
	// notification alert invisible (Λ1).
	AlertSuppressed bool
	// BoundD is the Table II Λ1 upper bound re-measured under faults
	// (zero once no D keeps the alert suppressed — full collapse).
	BoundD time.Duration
	// CaptureLowD and CaptureHighD are mean Fig. 7 capture rates at
	// D = 50 ms and D = 200 ms.
	CaptureLowD, CaptureHighD float64
	// OrderingHolds reports the Fig. 7 shape: capture at the high D at
	// least matches the low D.
	OrderingHolds bool
	// Violations counts invariant-monitor violations recorded during the
	// monitored attack run.
	Violations int
	// SkippedTrials counts sub-experiments lost to a panic or error.
	SkippedTrials int
	// Faults aggregates the faults actually injected at this intensity.
	Faults faults.Stats
}

// DegradationReport is the full sweep.
type DegradationReport struct {
	Profile string
	Seed    int64
	Points  []DegradationPoint
}

// Degradation sweeps the named fault profile's intensity from 0 to 1 and
// re-runs three headline results at every step — the Fig. 6 alert
// suppression, the Table II Λ1 bound and the Fig. 7 capture ordering —
// under a live invariant monitor. The zero-intensity point attaches no
// fault plane at all, so it reproduces the unfaulted baseline exactly.
// Cancelling ctx returns the points finished so far along with ctx's
// error.
func Degradation(ctx context.Context, seed int64, profileName string) (*DegradationReport, error) {
	base, err := faults.ByName(profileName)
	if err != nil {
		return nil, err
	}
	rep := &DegradationReport{Profile: base.Name, Seed: seed}
	p := device.Default()
	attackD := time.Duration(float64(p.PaperUpperBoundD) * 0.9)
	root := simrand.New(seed)
	typists, err := input.Participants(root.Derive("typists"), degradationParticipants)
	if err != nil {
		return nil, fmt.Errorf("experiment: participants: %w", err)
	}

	for ii, x := range DegradationIntensities() {
		if err := ctx.Err(); err != nil {
			return rep, err
		}
		prof := base.Scale(x)
		pt := DegradationPoint{Intensity: x}
		pseed := seed + int64(ii)*7919

		// A fresh plane per sub-experiment keeps each one's fault stream
		// independent of how long the previous one ran.
		planeOpts := func(planeSeed int64) ([]sysserver.Option, *faults.Plane) {
			if prof.Zero() {
				return nil, nil
			}
			pl := faults.NewPlane(prof, planeSeed)
			return []sysserver.Option{sysserver.WithFaults(pl)}, pl
		}
		collect := func(pl *faults.Plane) {
			if pl != nil {
				pt.Faults = pt.Faults.Add(pl.Stats())
			}
		}

		// Sub-experiment 1 — monitored attack run at 0.9× the bound: does
		// the alert stay invisible, and do the platform invariants hold?
		opts, pl := planeOpts(pseed)
		opts = append(opts, sysserver.WithMonitor())
		var st *sysserver.Stack
		err := safeTrial(fmt.Sprintf("degradation attack (x=%.2f)", x), func() error {
			var terr error
			st, terr = assembleAttackStack(p, pseed, opts...)
			if terr != nil {
				return terr
			}
			atk, terr := core.NewOverlayAttack(st, core.OverlayAttackConfig{
				App:    AttackerApp,
				D:      attackD,
				Bounds: screenOf(p),
			})
			if terr != nil {
				return terr
			}
			if terr := atk.Start(); terr != nil {
				return terr
			}
			st.Clock.MustAfter(6*time.Second, "experiment/stop", atk.Stop)
			return st.Clock.RunFor(11 * time.Second)
		})
		if err != nil {
			pt.SkippedTrials++
		} else {
			pt.AlertSuppressed = st.UI.WorstOutcome() == sysui.Lambda1
			if st.Monitor != nil {
				pt.Violations += st.Monitor.Count()
			}
			collect(pl)
		}

		if err := ctx.Err(); err != nil {
			return rep, err
		}
		// Sub-experiment 2 — the Λ1 bound search under faults.
		opts, pl = planeOpts(pseed + 1)
		err = safeTrial(fmt.Sprintf("degradation bound (x=%.2f)", x), func() error {
			var terr error
			pt.BoundD, terr = measureUpperBoundD(p, pseed+1, opts...)
			return terr
		})
		if err != nil {
			pt.SkippedTrials++
		} else {
			collect(pl)
		}

		// Sub-experiment 3 — Fig. 7 capture-rate ordering: mean capture at
		// D = 50 ms must not beat D = 200 ms.
		lowDs := []time.Duration{50 * time.Millisecond, 200 * time.Millisecond}
		means := make([]float64, len(lowDs))
		measured := true
		for di, d := range lowDs {
			if err := ctx.Err(); err != nil {
				return rep, err
			}
			sum, n := 0.0, 0
			for i := 0; i < degradationParticipants; i++ {
				opts, pl = planeOpts(pseed + 2 + int64(di*100+i))
				var rate float64
				err := safeTrial(fmt.Sprintf("degradation capture (x=%.2f, D=%v, participant %d)", x, d, i), func() error {
					var terr error
					rate, terr = runCaptureTrial(p, typists[i], d,
						root.DeriveIndexed("strings", ii*100+di*10+i),
						pseed+2+int64(di*100+i), opts...)
					return terr
				})
				if err != nil {
					pt.SkippedTrials++
					continue
				}
				collect(pl)
				sum += rate
				n++
			}
			if n == 0 {
				measured = false
				continue
			}
			means[di] = sum / float64(n)
		}
		pt.CaptureLowD, pt.CaptureHighD = means[0], means[1]
		pt.OrderingHolds = measured && pt.CaptureHighD >= pt.CaptureLowD

		rep.Points = append(rep.Points, pt)
	}
	return rep, nil
}

// RenderDegradation formats the sweep as one row per intensity plus a
// survive/collapse summary per headline result.
func RenderDegradation(r *DegradationReport) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Degradation — headline results vs fault intensity (profile %q, seed %d)\n", r.Profile, r.Seed)
	sb.WriteString("  intensity  alert-Λ1  bound-D  capt@50ms  capt@200ms  ordering  violations  skipped\n")
	for _, pt := range r.Points {
		fmt.Fprintf(&sb, "  %9.2f  %-8v  %5dms  %8.1f%%  %9.1f%%  %-8v  %10d  %7d\n",
			pt.Intensity, pt.AlertSuppressed, pt.BoundD/time.Millisecond,
			pt.CaptureLowD, pt.CaptureHighD, pt.OrderingHolds, pt.Violations, pt.SkippedTrials)
	}
	for _, pt := range r.Points {
		if !pt.Faults.Zero() {
			fmt.Fprintf(&sb, "  faults @%.2f: %s\n", pt.Intensity, pt.Faults)
		}
	}
	survival := func(name string, holds func(DegradationPoint) bool) {
		for _, pt := range r.Points {
			if !holds(pt) {
				fmt.Fprintf(&sb, "  %s: collapses at intensity %.2f\n", name, pt.Intensity)
				return
			}
		}
		fmt.Fprintf(&sb, "  %s: survives the full sweep\n", name)
	}
	survival("alert suppression (Fig. 6)", func(pt DegradationPoint) bool { return pt.AlertSuppressed })
	survival("Λ1 bound > 0 (Table II)", func(pt DegradationPoint) bool { return pt.BoundD > 0 })
	survival("capture ordering (Fig. 7)", func(pt DegradationPoint) bool { return pt.OrderingHolds })
	return sb.String()
}
