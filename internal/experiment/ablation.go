package experiment

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/sysserver"
	"repro/internal/sysui"
)

// AblationReport collects the design-choice studies: each row removes one
// mechanism the paper identifies as load-bearing and shows the attack (or
// defense) outcome flipping.
type AblationReport struct {
	// SlideAnimation: the overlay attack's outcome with the stock 360 ms
	// slide versus a near-instant alert. The slow-in animation IS the
	// vulnerability — without it the alert shows even at small D.
	SlideStock, SlideInstant sysui.Outcome
	// ANADelay: the measured Λ1 bound on an Android 10 phone with and
	// without the 100 ms Android-Notification-Assistant delay; the delay
	// is why Table II's Android 10 bounds are larger.
	BoundWithANA, BoundWithoutANA time.Duration
	// CallOrder: the attack outcome with the correct remove-then-add
	// order versus the blocking add-then-remove order the paper warns
	// about.
	OrderCorrect, OrderInverted sysui.Outcome
	// ToastFade: the fake keyboard's minimum on-screen opacity during a
	// toast chain with the stock 500 ms fade versus a 1 ms fade. The
	// fade-out is what hides the hand-off.
	MinAlphaStockFade, MinAlphaNoFade float64
}

// Ablations runs all four studies on the seed catalog.
func Ablations(seed int64) (AblationReport, error) {
	return AblationsOn(nil, seed)
}

// AblationsOn runs all four studies against an arbitrary device catalog
// (nil means the seed catalog). The calibration phones (mi8, mi9,
// pixel 2) resolve through pickModel, so a generated fleet substitutes
// same-version devices.
func AblationsOn(cat device.Catalog, seed int64) (AblationReport, error) {
	c := catOr(cat)
	var rep AblationReport
	var err error
	if rep.SlideStock, rep.SlideInstant, err = ablationSlide(c, seed); err != nil {
		return rep, fmt.Errorf("experiment: slide ablation: %w", err)
	}
	if rep.BoundWithANA, rep.BoundWithoutANA, err = ablationANA(c, seed); err != nil {
		return rep, fmt.Errorf("experiment: ANA ablation: %w", err)
	}
	if rep.OrderCorrect, rep.OrderInverted, err = ablationOrder(c, seed); err != nil {
		return rep, fmt.Errorf("experiment: order ablation: %w", err)
	}
	if rep.MinAlphaStockFade, rep.MinAlphaNoFade, err = ablationToastFade(c, seed); err != nil {
		return rep, fmt.Errorf("experiment: toast-fade ablation: %w", err)
	}
	return rep, nil
}

// ablationSlide compares the attack under the stock slide-down against a
// near-instant alert (one frame).
func ablationSlide(cat device.Catalog, seed int64) (stock, instant sysui.Outcome, err error) {
	p := pickModel(cat, "mi8", 9)
	d := time.Duration(float64(boundOf(p)) * 0.9)
	run := func(opts ...sysserver.Option) (sysui.Outcome, error) {
		st, err := sysserver.Assemble(p, seed, opts...)
		if err != nil {
			return 0, err
		}
		st.WM.GrantOverlayPermission(AttackerApp)
		atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
			App: AttackerApp, D: d, Bounds: screenOf(p),
		})
		if err != nil {
			return 0, err
		}
		if err := atk.Start(); err != nil {
			return 0, err
		}
		st.Clock.MustAfter(8*time.Second, "ablation/stop", atk.Stop)
		if err := st.Clock.RunFor(12 * time.Second); err != nil {
			return 0, err
		}
		return st.UI.WorstOutcome(), nil
	}
	if stock, err = run(); err != nil {
		return 0, 0, err
	}
	if instant, err = run(sysserver.WithSlideDuration(10 * time.Millisecond)); err != nil {
		return 0, 0, err
	}
	return stock, instant, nil
}

// ablationANA measures the Λ1 bound on an Android 10 phone with the stock
// ANA delay and with the delay removed.
func ablationANA(cat device.Catalog, seed int64) (with, without time.Duration, err error) {
	p := pickModel(cat, "mi9", 10)
	measure := func(ana time.Duration, set bool) (time.Duration, error) {
		const resolution = 5 * time.Millisecond
		lambda1At := func(d time.Duration) (bool, error) {
			for r := 0; r < 2; r++ {
				st, err := sysserver.Assemble(p, seed+int64(r)*101)
				if err != nil {
					return false, err
				}
				if set {
					st.Server.SetANADelay(ana)
				}
				st.WM.GrantOverlayPermission(AttackerApp)
				atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
					App: AttackerApp, D: d, Bounds: screenOf(p),
				})
				if err != nil {
					return false, err
				}
				if err := atk.Start(); err != nil {
					return false, err
				}
				st.Clock.MustAfter(4*time.Second, "ablation/stop", atk.Stop)
				if err := st.Clock.RunFor(8 * time.Second); err != nil {
					return false, err
				}
				if st.UI.WorstOutcome() != sysui.Lambda1 {
					return false, nil
				}
			}
			return true, nil
		}
		lo, hi := resolution, 800*time.Millisecond
		ok, err := lambda1At(lo)
		if err != nil || !ok {
			return 0, err
		}
		for hi-lo > resolution {
			mid := (lo + hi) / 2 / resolution * resolution
			ok, err := lambda1At(mid)
			if err != nil {
				return 0, err
			}
			if ok {
				lo = mid
			} else {
				hi = mid
			}
		}
		return lo, nil
	}
	if with, err = measure(0, false); err != nil {
		return 0, 0, err
	}
	if without, err = measure(0, true); err != nil {
		return 0, 0, err
	}
	return with, without, nil
}

// ablationOrder compares the two call orders of the swap.
func ablationOrder(cat device.Catalog, seed int64) (correct, inverted sysui.Outcome, err error) {
	p := pickModel(cat, "mi8", 9)
	d := time.Duration(float64(boundOf(p)) * 0.9)
	run := func(addFirst bool) (sysui.Outcome, error) {
		st, err := sysserver.Assemble(p, seed)
		if err != nil {
			return 0, err
		}
		st.WM.GrantOverlayPermission(AttackerApp)
		atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
			App: AttackerApp, D: d, Bounds: screenOf(p), AddBeforeRemove: addFirst,
		})
		if err != nil {
			return 0, err
		}
		if err := atk.Start(); err != nil {
			return 0, err
		}
		st.Clock.MustAfter(8*time.Second, "ablation/stop", atk.Stop)
		if err := st.Clock.RunFor(12 * time.Second); err != nil {
			return 0, err
		}
		return st.UI.WorstOutcome(), nil
	}
	if correct, err = run(false); err != nil {
		return 0, 0, err
	}
	if inverted, err = run(true); err != nil {
		return 0, 0, err
	}
	return correct, inverted, nil
}

// ablationToastFade measures the fake keyboard's minimum opacity during a
// fed toast chain with the stock fade versus no fade.
func ablationToastFade(cat device.Catalog, seed int64) (stockFade, noFade float64, err error) {
	p := cat.Default()
	run := func(fade time.Duration) (float64, error) {
		st, err := sysserver.Assemble(p, seed)
		if err != nil {
			return 0, err
		}
		if fade > 0 {
			st.Server.SetToastFade(fade)
		}
		atk, err := core.NewToastAttack(st, core.ToastAttackConfig{
			App:     AttackerApp,
			Bounds:  screenOf(p).Inset(100),
			Content: func() string { return "kbd" },
		})
		if err != nil {
			return 0, err
		}
		if err := atk.Start(); err != nil {
			return 0, err
		}
		minAlpha := 1.0
		var probe func()
		probe = func() {
			if st.Clock.Now() > 15*time.Second {
				return
			}
			if a := st.WM.TopToastAlpha(AttackerApp); a < minAlpha {
				minAlpha = a
			}
			st.Clock.MustAfter(5*time.Millisecond, "ablation/probe", probe)
		}
		st.Clock.MustAfter(time.Second, "ablation/probe", probe)
		st.Clock.MustAfter(16*time.Second, "ablation/stop", atk.Stop)
		if err := st.Clock.RunFor(25 * time.Second); err != nil {
			return 0, err
		}
		return minAlpha, nil
	}
	if stockFade, err = run(0); err != nil {
		return 0, 0, err
	}
	if noFade, err = run(time.Millisecond); err != nil {
		return 0, 0, err
	}
	return stockFade, noFade, nil
}

// RenderAblations formats the report.
func RenderAblations(r AblationReport) string {
	var sb strings.Builder
	sb.WriteString("Ablations — removing each load-bearing mechanism\n")
	fmt.Fprintf(&sb, "  slide animation:   stock 360ms → %s;  instant alert → %s (attack dies)\n",
		r.SlideStock, r.SlideInstant)
	fmt.Fprintf(&sb, "  ANA delay (mi9):   with 100ms → bound %v;  without → %v (bound shrinks)\n",
		r.BoundWithANA, r.BoundWithoutANA)
	fmt.Fprintf(&sb, "  swap call order:   remove-then-add → %s;  add-then-remove → %s (paper's warning)\n",
		r.OrderCorrect, r.OrderInverted)
	fmt.Fprintf(&sb, "  toast fade-out:    stock 500ms → min opacity %.2f;  no fade → %.2f (visible flicker)\n",
		r.MinAlphaStockFade, r.MinAlphaNoFade)
	return sb.String()
}
