package experiment

import (
	"fmt"
	"strings"

	"repro/internal/appstore"
	"repro/internal/staticanalysis"
)

// precisionExp is the ground-truth precision/recall study of the static
// pass's precision tiers. It scans one obfuscated corpus — PaperRates
// plus the appstore decoy families (split/cross-method reflective
// overlays, BuildConfig-flag dead decoys) — at every tier and reports,
// per capability, the confusion matrix against the generator's truth
// bits: what dead-branch pruning (Tier1) and interprocedural constant
// propagation (Tier2) each buy in precision, and what reflective
// recovery buys in recall. Each (tier, chunk) pair is one trial, so the
// sweep shards across the driver's worker pool and renders
// byte-identically at any worker count; chunks are StudyChunkSize-
// aligned so no trial regenerates another's prefix.
type precisionExp struct {
	corpusN int
	seed    int64
}

func (e *precisionExp) Name() string   { return "precision" }
func (e *precisionExp) Params() string { return fmt.Sprintf("corpus=%d", e.corpusN) }

// chunks is the per-tier trial count: the corpus split into
// StudyChunkSize units, last one partial.
func (e *precisionExp) chunks() int {
	return (e.corpusN + appstore.StudyChunkSize - 1) / appstore.StudyChunkSize
}

func (e *precisionExp) Trials(seed int64) ([]Trial, error) {
	if e.corpusN <= 0 {
		return nil, fmt.Errorf("experiment: precision needs a positive corpus size, got %d", e.corpusN)
	}
	e.seed = seed
	rates := appstore.PrecisionRates()
	var trials []Trial
	for _, tier := range staticanalysis.Tiers() {
		tier := tier
		for c := 0; c < e.chunks(); c++ {
			start := c * appstore.StudyChunkSize
			size := appstore.StudyChunkSize
			if start+size > e.corpusN {
				size = e.corpusN - start
			}
			trials = append(trials, NewTrial(
				fmt.Sprintf("precision seed=%d n=%d rates=precision tier=%s chunk=%d", seed, e.corpusN, tier, c),
				fmt.Sprintf("precision %s chunk %d", tier, c),
				func() (appstore.Report, error) {
					return appstore.ScanRange(seed, start, size, rates, tier)
				}))
		}
	}
	return trials, nil
}

// reports reassembles one merged Report per tier from the per-chunk
// results, in tier order.
func (e *precisionExp) reports(results []any) []appstore.Report {
	nc := e.chunks()
	out := make([]appstore.Report, 0, len(staticanalysis.Tiers()))
	for ti := range staticanalysis.Tiers() {
		var rep appstore.Report
		for c := 0; c < nc; c++ {
			rep.Merge(Res[appstore.Report](results, ti*nc+c))
		}
		out = append(out, rep)
	}
	return out
}

// precisionRow is one capability line of the per-tier table.
type precisionRow struct {
	name     string
	detected func(appstore.Report) int
	truth    func(appstore.Report) int
	stats    func(appstore.Report) appstore.DetectorStats
}

// precisionCapabilities are the three capability detectors the tiers are
// judged on; CapabilityStats exposes the same selection to the
// monotonicity tests.
func precisionCapabilities() []precisionRow {
	return []precisionRow{
		{"overlay (draw-and-destroy)",
			func(r appstore.Report) int { return r.AddRemoveWithSAW },
			func(r appstore.Report) int { return r.TruthAddRemoveWithSAW },
			func(r appstore.Report) appstore.DetectorStats { return r.StaticOverlay }},
		{"toast-replace",
			func(r appstore.Report) int { return r.ToastReplaceCapable },
			func(r appstore.Report) int { return r.TruthToastReplace },
			func(r appstore.Report) appstore.DetectorStats { return r.StaticToastReplace }},
		{"a11y-timing",
			func(r appstore.Report) int { return r.A11yTimingCapable },
			func(r appstore.Report) int { return r.TruthA11yTiming },
			func(r appstore.Report) appstore.DetectorStats { return r.StaticA11y }},
	}
}

// CapabilityStats extracts the per-capability confusion matrices from a
// study report, keyed by capability name — the tier-monotonicity checks
// compare these across tiers.
func CapabilityStats(r appstore.Report) map[string]appstore.DetectorStats {
	out := make(map[string]appstore.DetectorStats)
	for _, row := range precisionCapabilities() {
		out[row.name] = row.stats(r)
	}
	return out
}

// RenderPrecision formats the tier study: one block per tier with the
// sink-evidence mix and the per-capability confusion table, then a
// headline delta summary from the baseline tier to the last.
func RenderPrecision(seed int64, n int, reps []appstore.Report) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Precision tiers — static capability detection vs ground truth (obfuscated corpus, n=%d, seed %d)\n", n, seed)
	rows := append(precisionCapabilities(), precisionRow{
		"customized-toast (feature)",
		func(r appstore.Report) int { return r.CustomToast },
		func(r appstore.Report) int { return r.TruthCustomToast },
		func(r appstore.Report) appstore.DetectorStats { return r.StaticToast }})
	for _, rep := range reps {
		fmt.Fprintf(&sb, "%s — %s\n", rep.Tier, rep.Tier.Describe())
		fmt.Fprintf(&sb, "  sink evidence: %d call sites (%d guarded, %d reflective)\n",
			rep.SinkSites, rep.GuardedSinkSites, rep.ReflectiveSinkSites)
		fmt.Fprintf(&sb, "  %-27s %8s %6s %5s %5s %5s %10s %7s %6s\n",
			"capability", "detected", "truth", "TP", "FP", "FN", "precision", "recall", "F1")
		for _, row := range rows {
			st := row.stats(rep)
			fmt.Fprintf(&sb, "  %-27s %8d %6d %5d %5d %5d %9.2f%% %6.2f%% %6.3f\n",
				row.name, row.detected(rep), row.truth(rep), st.TP, st.FP, st.FN,
				100*st.Precision(), 100*st.Recall(), st.F1())
		}
	}
	if len(reps) >= 2 {
		base, top := reps[0], reps[len(reps)-1]
		fmt.Fprintf(&sb, "delta %s → %s:\n", base.Tier, top.Tier)
		for _, row := range precisionCapabilities() {
			b, t := row.stats(base), row.stats(top)
			fmt.Fprintf(&sb, "  %-27s precision %+6.2fpp (FP %d → %d), recall %+6.2fpp (FN %d → %d)\n",
				row.name, 100*(t.Precision()-b.Precision()), b.FP, t.FP,
				100*(t.Recall()-b.Recall()), b.FN, t.FN)
		}
	}
	return sb.String()
}

func (e *precisionExp) Render(results []any) (Output, error) {
	return Output{Text: RenderPrecision(e.seed, e.corpusN, e.reports(results))}, nil
}
