package experiment

import (
	"testing"
	"time"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/input"
	"repro/internal/simrand"
	"repro/internal/sysui"
)

func TestFig2Anchors(t *testing.T) {
	pts := Fig2()
	if len(pts) != 37 {
		t.Fatalf("points = %d, want 37", len(pts))
	}
	if pts[0].Completeness != 0 {
		t.Fatal("curve does not start at 0")
	}
	if last := pts[len(pts)-1]; last.Completeness < 0.999 {
		t.Fatalf("curve ends at %v, want 1", last.Completeness)
	}
	// Paper: less than 50% in the first 100 ms.
	for _, p := range pts {
		if p.At == 100*time.Millisecond && p.Completeness >= 0.5 {
			t.Fatalf("completeness at 100ms = %v, want < 0.5", p.Completeness)
		}
	}
	if s := RenderFig2(); s == "" {
		t.Fatal("empty render")
	}
}

func TestFig4EnterAboveExit(t *testing.T) {
	dec, acc := Fig4()
	if len(dec) != len(acc) {
		t.Fatalf("series lengths differ: %d vs %d", len(dec), len(acc))
	}
	for i := range dec {
		if dec[i].Completeness < acc[i].Completeness-1e-9 {
			t.Fatalf("enter below exit at %v", dec[i].At)
		}
	}
	if s := RenderFig4(); s == "" {
		t.Fatal("empty render")
	}
}

// TestFig6Progression: sweeping D on one device must show the Λ1→Λ5
// progression with a monotone non-decreasing outcome sequence.
func TestFig6Progression(t *testing.T) {
	e := &fig6Exp{model: "mi8"}
	results, err := Collect(e, RunOpts{Seed: 1})
	if err != nil {
		t.Fatalf("fig6: %v", err)
	}
	pts := e.points(results)
	if pts[0].Outcome != sysui.Lambda1 {
		t.Fatalf("outcome at smallest D = %v, want Λ1", pts[0].Outcome)
	}
	if last := pts[len(pts)-1].Outcome; last != sysui.Lambda5 {
		t.Fatalf("outcome at largest D = %v, want Λ5", last)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Outcome < pts[i-1].Outcome {
			t.Fatalf("outcomes regressed at %v: %v after %v", pts[i].D, pts[i].Outcome, pts[i-1].Outcome)
		}
	}
	// All five regimes of Fig. 6 must appear in the sweep.
	if got := len(Regimes(pts)); got != 5 {
		t.Fatalf("sweep visited %d outcome regimes, want all 5", got)
	}
	if s := RenderFig6("mi8", pts); s == "" {
		t.Fatal("empty render")
	}
	if _, err := Collect(&fig6Exp{model: "no-such-phone"}, RunOpts{Seed: 1}); err == nil {
		t.Fatal("unknown model accepted")
	}
}

// TestMeasuredUpperBoundMatchesTableII measures the D bound on a spread of
// devices (one per Android version) and checks it lands within 20 ms of
// the paper's value.
func TestMeasuredUpperBoundMatchesTableII(t *testing.T) {
	for _, model := range []string{"s8", "mi8", "mi9", "pixel 2"} {
		model := model
		t.Run(model, func(t *testing.T) {
			p, ok := device.ByModel(model)
			if !ok {
				t.Fatalf("profile %s missing", model)
			}
			measured, err := measureUpperBoundD(p, 11)
			if err != nil {
				t.Fatalf("measureUpperBoundD: %v", err)
			}
			diff := measured - p.PaperUpperBoundD
			if diff < 0 {
				diff = -diff
			}
			if diff > 20*time.Millisecond {
				t.Fatalf("measured %v, paper %v (Δ %v)", measured, p.PaperUpperBoundD, diff)
			}
		})
	}
}

// TestLoadImpactNegligible reproduces the Section VI-B finding.
func TestLoadImpactNegligible(t *testing.T) {
	e := &loadExp{model: "mi8"}
	results, err := Collect(e, RunOpts{Seed: 3})
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	rows := e.rows(results)
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	base := rows[0].MeasuredD
	for _, r := range rows[1:] {
		diff := r.MeasuredD - base
		if diff < 0 {
			diff = -diff
		}
		if diff > 15*time.Millisecond {
			t.Fatalf("load %d apps moved bound by %v; paper says negligible", r.BackgroundApps, diff)
		}
	}
	if s := RenderLoadImpact("mi8", rows); s == "" {
		t.Fatal("empty render")
	}
}

// TestCaptureRateShape checks the Fig. 7 monotonicity and rough band on a
// subset of the sweep, and the Fig. 8 version ordering at D = 200 ms.
func TestCaptureRateShape(t *testing.T) {
	root := simrand.New(5)
	typists, err := input.Participants(root.Derive("typists"), NumParticipants)
	if err != nil {
		t.Fatalf("Participants: %v", err)
	}
	meanAt := func(d time.Duration) (all float64, byVersion map[int]float64) {
		byVersionSum := make(map[int]float64)
		byVersionN := make(map[int]int)
		sum := 0.0
		for i := 0; i < NumParticipants; i++ {
			p := participantDevice(device.Seed(), i)
			rate, err := runCaptureTrial(p, typists[i], d, root.DeriveIndexed("s", int(d/time.Millisecond)*100+i), 5+int64(i))
			if err != nil {
				t.Fatalf("runCaptureTrial: %v", err)
			}
			sum += rate
			byVersionSum[p.Version.Major] += rate
			byVersionN[p.Version.Major]++
		}
		byVersion = make(map[int]float64, len(byVersionSum))
		for v, s := range byVersionSum {
			byVersion[v] = s / float64(byVersionN[v])
		}
		return sum / NumParticipants, byVersion
	}
	m50, _ := meanAt(50 * time.Millisecond)
	m100, _ := meanAt(100 * time.Millisecond)
	m200, by200 := meanAt(200 * time.Millisecond)
	if !(m50 < m100 && m100 < m200) {
		t.Fatalf("capture not monotone in D: %.1f, %.1f, %.1f", m50, m100, m200)
	}
	// Paper bands: 61.0 at 50 ms, 86.7 at 100 ms, 92.8 at 200 ms.
	if m50 < 45 || m50 > 75 {
		t.Errorf("mean at D=50 = %.1f, want ≈61", m50)
	}
	if m100 < 72 || m100 > 95 {
		t.Errorf("mean at D=100 = %.1f, want ≈87", m100)
	}
	if m200 < 85 || m200 > 98 {
		t.Errorf("mean at D=200 = %.1f, want ≈93", m200)
	}
	// Fig. 8: Android 10 below Android 8/9 at D = 200 ms.
	if by200[10] >= by200[9] {
		t.Errorf("Android 10 capture (%.1f) not below Android 9 (%.1f) at D=200", by200[10], by200[9])
	}
}

func TestClassifyTrial(t *testing.T) {
	tests := []struct {
		intended, stolen string
		want             ErrorKind
	}{
		{"abcd", "abcd", ErrorNone},
		{"abcd", "abc", ErrorLength},
		{"abcd", "abcde", ErrorLength},
		{"aBcd", "abcd", ErrorCapitalization},
		{"abcd", "abce", ErrorWrongKey},
		{"aB3$", "aB3$", ErrorNone},
		{"", "", ErrorNone},
	}
	for _, tt := range tests {
		if got := ClassifyTrial(tt.intended, tt.stolen); got != tt.want {
			t.Errorf("ClassifyTrial(%q,%q) = %v, want %v", tt.intended, tt.stolen, got, tt.want)
		}
	}
	for _, k := range []ErrorKind{ErrorNone, ErrorLength, ErrorCapitalization, ErrorWrongKey, ErrorKind(9)} {
		if k.String() == "" {
			t.Fatal("empty ErrorKind string")
		}
	}
}

// TestTableIIIBand runs a reduced Table III (1 password per participant
// per length) and checks the paper's qualitative findings: high success
// everywhere, decreasing with length, length errors the dominant class.
func TestTableIIIBand(t *testing.T) {
	e := &table3Exp{perParticipant: 1}
	results, err := Collect(e, RunOpts{Seed: 7})
	if err != nil {
		t.Fatalf("table3: %v", err)
	}
	rows := e.rows(results)
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5", len(rows))
	}
	for _, r := range rows {
		if r.Trials != NumParticipants {
			t.Fatalf("length %d trials = %d, want %d", r.Length, r.Trials, NumParticipants)
		}
		if got := r.Successes + r.LengthErrors + r.WrongKeyErrors + r.CapitalizationErrors; got != r.Trials {
			t.Fatalf("length %d outcomes sum to %d, want %d", r.Length, got, r.Trials)
		}
		if r.SuccessRate() < 70 {
			t.Errorf("length %d success = %.1f%%, paper band is 84–93%%", r.Length, r.SuccessRate())
		}
	}
	if rows[0].SuccessRate() < rows[len(rows)-1].SuccessRate()-1e-9 {
		// Success must not increase with length (allowing ties on the
		// small test sample).
		t.Errorf("success rose with length: %.1f%% (len 4) vs %.1f%% (len 12)",
			rows[0].SuccessRate(), rows[len(rows)-1].SuccessRate())
	}
	if s := RenderTableIII(rows); s == "" {
		t.Fatal("empty render")
	}
	if _, err := Collect(&table3Exp{perParticipant: 0}, RunOpts{Seed: 7}); err == nil {
		t.Fatal("zero trials accepted")
	}
}

// TestTableIVAllCompromised: all eight Table IV apps fall to the attack;
// only Alipay needs the bypass.
func TestTableIVAllCompromised(t *testing.T) {
	rows, err := TableIV(9)
	if err != nil {
		t.Fatalf("TableIV: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if !r.Compromised {
			t.Errorf("%s not compromised", r.App.Name)
		}
		if r.ExtraEffort != (r.App.Name == "Alipay") {
			t.Errorf("%s ExtraEffort = %v", r.App.Name, r.ExtraEffort)
		}
		if !r.Stealthy {
			t.Errorf("%s attack not stealthy", r.App.Name)
		}
	}
	if s := RenderTableIV(rows); s == "" {
		t.Fatal("empty render")
	}
}

// TestStealthiness reproduces the Section VI-C3 survey: nobody notices an
// abnormality; at most a participant or two on the fastest-cycling phones
// reports lag.
func TestStealthiness(t *testing.T) {
	rep, err := Stealthiness(13)
	if err != nil {
		t.Fatalf("Stealthiness: %v", err)
	}
	if rep.Participants != NumParticipants {
		t.Fatalf("participants = %d", rep.Participants)
	}
	if rep.NoticedAbnormal != 0 {
		t.Errorf("noticed abnormality = %d, paper: 0", rep.NoticedAbnormal)
	}
	if rep.ReportedLag < 1 || rep.ReportedLag > 3 {
		t.Errorf("reported lag = %d, paper: 1", rep.ReportedLag)
	}
	if rep.WorstOutcome != sysui.Lambda1 {
		t.Errorf("worst outcome = %v, want Λ1", rep.WorstOutcome)
	}
	if rep.MinToastAlpha < 0.3 {
		t.Errorf("min toast alpha = %.2f; fake keyboard flickered", rep.MinToastAlpha)
	}
	if s := RenderStealth(rep); s == "" {
		t.Fatal("empty render")
	}
}

// TestDefenseIPCReport: detection fast, termination effective, zero false
// positives, negligible overhead (few analyzed transactions per second).
func TestDefenseIPCReport(t *testing.T) {
	rep, err := DefenseIPC(17)
	if err != nil {
		t.Fatalf("DefenseIPC: %v", err)
	}
	if !rep.AttackDetected {
		t.Error("attack not detected")
	}
	if rep.DetectionLatency <= 0 || rep.DetectionLatency > 5*time.Second {
		t.Errorf("detection latency = %v", rep.DetectionLatency)
	}
	if !rep.AttackTerminated {
		t.Error("attack not terminated")
	}
	if rep.BenignFlagged != 0 {
		t.Errorf("benign apps flagged = %d", rep.BenignFlagged)
	}
	if rep.TransactionsObserved == 0 {
		t.Error("no transactions analyzed")
	}
	if s := RenderDefenseIPC(rep); s == "" {
		t.Fatal("empty render")
	}
}

// TestDefenseNotifReport: without the patch the attack wins (Λ1); with
// t = 690 ms it loses (Λ5); honest apps keep a correct alert lifecycle.
func TestDefenseNotifReport(t *testing.T) {
	rep, err := DefenseNotif(19)
	if err != nil {
		t.Fatalf("DefenseNotif: %v", err)
	}
	if rep.OutcomeWithout != sysui.Lambda1 {
		t.Errorf("without defense = %v, want Λ1", rep.OutcomeWithout)
	}
	if rep.OutcomeWith != sysui.Lambda5 {
		t.Errorf("with defense = %v, want Λ5", rep.OutcomeWith)
	}
	if rep.HonestOutcome != sysui.Lambda5 || !rep.HonestAlertGone {
		t.Errorf("honest app: outcome %v, alert gone %v", rep.HonestOutcome, rep.HonestAlertGone)
	}
	if s := RenderDefenseNotif(rep); s == "" {
		t.Fatal("empty render")
	}
}

// TestDefenseToastGap: the scheduling defense must force the fake
// keyboard to fully vanish between toasts while the stock system does not.
func TestDefenseToastGap(t *testing.T) {
	rep, err := DefenseToastGap(23)
	if err != nil {
		t.Fatalf("DefenseToastGap: %v", err)
	}
	if rep.MinAlphaWithout < 0.5 {
		t.Errorf("baseline min opacity = %.2f; attack should not flicker", rep.MinAlphaWithout)
	}
	if rep.MinAlphaWith != 0 {
		t.Errorf("defended min opacity = %.2f, want 0 (forced flicker)", rep.MinAlphaWith)
	}
	if s := RenderDefenseToastGap(rep); s == "" {
		t.Fatal("empty render")
	}
}

// TestDrawerCheck: below the bound the drawer holds an entry most of the
// time but it never renders a pixel; past the bound rendered pixels
// appear — the two-layer answer to "can a swipe-down catch the attack?".
func TestDrawerCheck(t *testing.T) {
	rep, err := DrawerCheck("mi8", 29)
	if err != nil {
		t.Fatalf("DrawerCheck: %v", err)
	}
	if len(rep.Rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rep.Rows))
	}
	for _, row := range rep.Rows[:2] { // below the bound
		if row.EntryPresentPct < 30 {
			t.Errorf("D=%v entry present %.1f%%, want most of the cycle", row.D, row.EntryPresentPct)
		}
		if row.PixelsVisiblePct > 0.5 {
			t.Errorf("D=%v pixels visible %.1f%%, want ≈0 below the bound", row.D, row.PixelsVisiblePct)
		}
	}
	if last := rep.Rows[2]; last.PixelsVisiblePct < 5 { // well past the bound
		t.Errorf("D=%v pixels visible %.1f%%, want clearly visible past the bound", last.D, last.PixelsVisiblePct)
	}
	if s := RenderDrawerCheck(rep); s == "" {
		t.Fatal("empty render")
	}
	if _, err := DrawerCheck("no-phone", 1); err == nil {
		t.Fatal("unknown model accepted")
	}
}

func TestCorpusStudySmall(t *testing.T) {
	rep, err := CorpusStudy(21, 20000)
	if err != nil {
		t.Fatalf("CorpusStudy: %v", err)
	}
	if rep.Total != 20000 {
		t.Fatalf("Total = %d", rep.Total)
	}
	if rep.OverlayPlusA11y == 0 || rep.AddRemoveWithSAW == 0 || rep.CustomToast == 0 {
		t.Fatalf("empty feature counts: %+v", rep)
	}
}

// TestRunStealTrialFillsVictimWidget: the stealth fill leaves the typed
// password visible in the real widget.
func TestRunStealTrialFillsVictimWidget(t *testing.T) {
	p, ok := device.ByModel("mi8")
	if !ok {
		t.Fatal("mi8 missing")
	}
	typist, err := input.NewTypist(simrand.New(23))
	if err != nil {
		t.Fatalf("NewTypist: %v", err)
	}
	bofa, _ := apps.ByName("Bank of America")
	trial, err := RunStealTrial(p, typist, bofa, "abc123", 23)
	if err != nil {
		t.Fatalf("RunStealTrial: %v", err)
	}
	if trial.Stolen == "" {
		t.Fatal("nothing stolen")
	}
	if trial.VictimWidget != trial.Stolen {
		t.Fatalf("victim widget %q != stolen %q (fill must track the decoder)", trial.VictimWidget, trial.Stolen)
	}
	if trial.Keystrokes == 0 || trial.DownsCaptured == 0 {
		t.Fatalf("no keystrokes recorded: %+v", trial)
	}
}
