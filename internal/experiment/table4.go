package experiment

import (
	"fmt"
	"strings"

	"repro/internal/apps"
	"repro/internal/device"
	"repro/internal/input"
	"repro/internal/simrand"
	"repro/internal/sysui"
)

// TableIVRow is one app's attackability verdict.
type TableIVRow struct {
	// App is the victim.
	App apps.VictimApp
	// Compromised reports whether the stolen password matched.
	Compromised bool
	// ExtraEffort reports whether the attack needed the accessibility
	// bypass (the "*" of Table IV; true only for Alipay).
	ExtraEffort bool
	// Stealthy reports whether no alert became visible (Λ1).
	Stealthy bool
}

// TableIV regenerates Table IV: the password-stealing attack against the
// eight real-world apps, on the seed catalog's default device.
func TableIV(seed int64) ([]TableIVRow, error) {
	return TableIVOn(nil, seed)
}

// TableIVOn is TableIV against an arbitrary device catalog (nil means the
// seed catalog): the attack runs on the catalog's default device.
func TableIVOn(cat device.Catalog, seed int64) ([]TableIVRow, error) {
	p := catOr(cat).Default()
	typist, err := input.NewTypist(simrand.New(seed).Derive("tab4-typist"))
	if err != nil {
		return nil, fmt.Errorf("experiment: typist: %w", err)
	}
	const password = "tk&%48GH" // the paper's demo password
	// Table IV reports whether each app *can* be compromised; a single
	// human-scattered trial can fail on a fat-finger, so each app gets a
	// few attempts, as the paper's testing did.
	const attempts = 3
	out := make([]TableIVRow, 0, 8)
	for i, app := range apps.Catalog() {
		row := TableIVRow{App: app, ExtraEffort: app.DisablesPasswordA11y, Stealthy: true}
		for a := 0; a < attempts && !row.Compromised; a++ {
			trial, err := RunStealTrial(p, typist, app, password, seed+int64(i)*773+int64(a)*13)
			if err != nil {
				return nil, fmt.Errorf("experiment: table IV trial for %s: %w", app.Name, err)
			}
			if ClassifyTrial(password, trial.Stolen) == ErrorNone {
				row.Compromised = true
			}
			if trial.WorstOutcome != sysui.Lambda1 {
				row.Stealthy = false
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// RenderTableIV formats the verdicts in the paper's notation: "√" for
// compromised with no change, "*" when extra effort was needed.
func RenderTableIV(rows []TableIVRow) string {
	var sb strings.Builder
	sb.WriteString("Table IV — apps under testing\n")
	sb.WriteString("  app               version          attack  stealthy\n")
	for _, r := range rows {
		mark := "x"
		if r.Compromised {
			mark = "√"
			if r.ExtraEffort {
				mark = "*"
			}
		}
		stealth := "no"
		if r.Stealthy {
			stealth = "yes"
		}
		fmt.Fprintf(&sb, "  %-17s %-15s  %-6s  %s\n", r.App.Name, r.App.Version, mark, stealth)
	}
	sb.WriteString("  (√: compromised with no change; *: compromised with extra effort)\n")
	return sb.String()
}
