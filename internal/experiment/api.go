package experiment

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"

	"repro/internal/experiment/sched"
)

// Trial is one independent unit of experiment work. An experiment's
// Trials method performs every shared-stream RNG derivation up front and
// closes the per-trial streams into run, so trials are independent by
// construction and the driver may execute them in any order — sequentially,
// on a worker pool, or partially replayed from a journal — with identical
// results.
type Trial struct {
	// Inputs is the canonical description of everything that determines
	// the trial's result: experiment name, seed, parameters and the
	// trial's own coordinates. The journal keys records by a hash of this
	// string (see Key), so a journal survives refactors that reorder or
	// renumber trials as long as the trial inputs themselves are unchanged.
	Inputs string
	// Label names the trial in error messages.
	Label string

	run    func() (any, error)
	newRes func() any
}

// NewTrial builds a Trial whose run function produces a T. T must survive
// a JSON round trip unchanged (exported fields of integer, float64, string,
// bool, Duration or map/slice thereof): the driver round-trips every
// result — live or journal-replayed — through JSON before rendering, so
// a resumed run cannot render differently from an uninterrupted one.
func NewTrial[T any](inputs, label string, run func() (T, error)) Trial {
	return Trial{
		Inputs: inputs,
		Label:  label,
		run:    func() (any, error) { return run() },
		newRes: func() any { return new(T) },
	}
}

// Key is the trial's content-addressed journal id: a hash of Inputs.
func (t Trial) Key() string {
	sum := sha256.Sum256([]byte(t.Inputs))
	return hex.EncodeToString(sum[:12])
}

// Output is a finished experiment's rendered report.
type Output struct {
	// Text is the report, ready to print.
	Text string
	// Skipped counts trials that failed inside a recoverable sweep and
	// were excluded from the report (always 0 on a healthy run).
	Skipped int
}

// Experiment is the unified interface every table and figure implements.
// The lifecycle is Trials-then-Render on the same value: Trials performs
// the run's shared RNG derivations in a fixed order and may stash per-trial
// metadata on the receiver; Render receives one result per trial, in trial
// order, each the *T produced by that trial's NewTrial round trip.
type Experiment interface {
	// Name is the registry and CLI name (also the journal identity).
	Name() string
	// Params describes every parameter besides the seed that changes
	// trial identity, e.g. "model=mi8"; it is pinned in the journal
	// header so a resume under different flags fails loudly.
	Params() string
	// Trials derives the run's trial set for a seed.
	Trials(seed int64) ([]Trial, error)
	// Render assembles the report from the per-trial results.
	Render(results []any) (Output, error)
}

// RunOpts configures one experiment run.
type RunOpts struct {
	// Ctx cancels the run between trials; nil means background.
	Ctx context.Context
	// Seed is the run's root seed.
	Seed int64
	// Workers bounds the trial worker pool; < 2 runs sequentially. Any
	// worker count produces byte-identical output.
	Workers int
	// Journal, if non-nil, replays completed trials and fsyncs newly
	// finished ones, making the run crash-resumable. The journal must
	// have been opened with the experiment's identity (name, seed,
	// params).
	Journal *Journal
}

// Collect runs the experiment's trials — concurrently when opts.Workers
// allows — and returns the decoded per-trial results in trial order,
// without rendering. Most callers want Run; Collect exists for callers
// that need the typed results themselves.
func Collect(exp Experiment, opts RunOpts) ([]any, error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	trials, err := exp.Trials(opts.Seed)
	if err != nil {
		return nil, err
	}
	// Content-addressed journal keys require distinct inputs per trial; a
	// collision would silently replay one trial's result as another's.
	seen := make(map[string]int, len(trials))
	for i, t := range trials {
		if prev, dup := seen[t.Key()]; dup {
			return nil, fmt.Errorf("experiment: %s: trials %d and %d share inputs %q", exp.Name(), prev, i, t.Inputs)
		}
		seen[t.Key()] = i
	}
	results := make([]any, len(trials))
	err = sched.Run(ctx, opts.Workers, len(trials), func(i int) error {
		t := trials[i]
		out := t.newRes()
		if ok, err := opts.Journal.Lookup(t.Key(), out); err != nil {
			return err
		} else if ok {
			results[i] = out
			return nil
		}
		v, err := t.run()
		if err != nil {
			return fmt.Errorf("experiment: %s: %w", t.Label, err)
		}
		raw, err := json.Marshal(v)
		if err != nil {
			return fmt.Errorf("experiment: encode %s: %w", t.Label, err)
		}
		if err := opts.Journal.Record(t.Key(), t.Inputs, raw); err != nil {
			return err
		}
		// Decode the just-encoded result instead of keeping v: a live
		// trial and a journal replay must hand Render the exact same
		// value, or a resumed report could differ from an uninterrupted
		// one.
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("experiment: round-trip %s: %w", t.Label, err)
		}
		results[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// Run is the one generic driver: derive the trial set, execute it on the
// scheduler (replaying journaled trials), and render the report. For every
// experiment the output is byte-identical across worker counts and across
// kill/resume cycles.
func Run(exp Experiment, opts RunOpts) (Output, error) {
	results, err := Collect(exp, opts)
	if err != nil {
		return Output{}, err
	}
	return exp.Render(results)
}

// Res extracts trial i's result from a Collect/Render results slice as the
// T its NewTrial produced.
func Res[T any](results []any, i int) T {
	return *(results[i].(*T))
}
