package experiment

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/device"
	"repro/internal/geom"
	"repro/internal/ime"
	"repro/internal/input"
	"repro/internal/keyboard"
	"repro/internal/simrand"
	"repro/internal/stats"
	"repro/internal/sysserver"
	"repro/internal/uikit"
	"repro/internal/wm"
)

// CaptureDs are the attacking-window values of the Fig. 7 sweep.
func CaptureDs() []time.Duration {
	return []time.Duration{
		50 * time.Millisecond, 75 * time.Millisecond, 100 * time.Millisecond,
		125 * time.Millisecond, 150 * time.Millisecond, 175 * time.Millisecond,
		200 * time.Millisecond,
	}
}

// capturePerParticipantChars is the Fig. 7 protocol: 10 random strings of
// 10 characters each per participant per D.
const (
	captureStrings   = 10
	captureStringLen = 10
)

// ParticipantCapture is one participant's capture rate at one D.
type ParticipantCapture struct {
	// Participant indexes the study participant (0..29).
	Participant int
	// Model and VersionMajor identify the participant's phone.
	Model        string
	VersionMajor int
	// Rate is the touch-event capture percentage (0..100).
	Rate float64
}

// CaptureStudy holds the full Fig. 7/Fig. 8 dataset.
type CaptureStudy struct {
	Ds      []time.Duration
	Results map[time.Duration][]ParticipantCapture
}

// runCaptureTrial runs one participant's typing session on the testing app
// (an activity, the real IME, and the draw-and-destroy overlay attack over
// the keyboard) and reports the percentage of touch events the malicious
// overlays captured completely (DOWN and UP).
func runCaptureTrial(p device.Profile, typist *input.Typist, d time.Duration, rng *simrand.Source, seed int64, opts ...sysserver.Option) (float64, error) {
	st, err := assembleAttackStack(p, seed, opts...)
	if err != nil {
		return 0, err
	}
	screen := screenOf(p)
	root := uikit.NewView("test_root", "LinearLayout", screen)
	field := root.AddChild(uikit.NewView("test_input", "EditText",
		geom.RectWH(screen.Min.X+40, screen.Min.Y+400, screen.W()-80, 120)))
	act, err := uikit.NewActivity(st.Clock, "com.test.app", root)
	if err != nil {
		return 0, fmt.Errorf("experiment: test activity: %w", err)
	}
	if err := act.Focus(field); err != nil {
		return 0, fmt.Errorf("experiment: focus field: %w", err)
	}
	kbBounds := geom.RectWH(screen.Min.X, screen.Min.Y+0.625*screen.H(), screen.W(), 0.375*screen.H())
	kb, err := keyboard.New(kbBounds)
	if err != nil {
		return 0, fmt.Errorf("experiment: keyboard: %w", err)
	}
	if _, err := ime.Show(st, kb, act); err != nil {
		return 0, fmt.Errorf("experiment: show ime: %w", err)
	}

	ups := 0
	atk, err := core.NewOverlayAttack(st, core.OverlayAttackConfig{
		App:    AttackerApp,
		D:      d,
		Bounds: kbBounds,
		OnTouch: func(ev wm.TouchEvent) {
			if ev.Action == wm.ActionUp {
				ups++
			}
		},
	})
	if err != nil {
		return 0, fmt.Errorf("experiment: overlay attack: %w", err)
	}
	if err := atk.Start(); err != nil {
		return 0, fmt.Errorf("experiment: start attack: %w", err)
	}

	// Ten 10-character random strings, each starting half a second after
	// the previous ends.
	total := 0
	start := time.Second
	var all []input.Keystroke
	for s := 0; s < captureStrings; s++ {
		ks, err := typist.PlanSession(kb, input.RandomString(rng, captureStringLen), start)
		if err != nil {
			return 0, fmt.Errorf("experiment: plan string %d: %w", s, err)
		}
		all = append(all, ks...)
		total += len(ks)
		start = ks[len(ks)-1].UpAt + 500*time.Millisecond
	}
	var sink errSink
	if err := driveKeystrokes(st, all, &sink); err != nil {
		return 0, err
	}
	end, err := sessionEnd(all)
	if err != nil {
		return 0, err
	}
	st.Clock.MustAfter(end, "experiment/stopAttack", atk.Stop)
	if err := st.Clock.RunFor(end + 5*time.Second); err != nil {
		return 0, fmt.Errorf("experiment: run: %w", err)
	}
	if sink.err != nil {
		return 0, sink.err
	}
	if err := atk.Err(); err != nil {
		return 0, err
	}
	return stats.Ratio(ups, total), nil
}

// captureExp runs the Fig. 7/Fig. 8 user study: for every D in the sweep,
// each of the 30 participants types 100 random characters on their own
// phone while the attack runs. The fig7 and fig8 registry entries are the
// same experiment rendered two ways, so they share one trial set — and,
// via JournalName, one journal.
type captureExp struct {
	fig8 bool
	cat  device.Catalog
	ds   []time.Duration
}

func (e *captureExp) Name() string {
	if e.fig8 {
		return "fig8"
	}
	return "fig7"
}

// JournalName makes fig7 and fig8 share one journal identity: both render
// the same 210-trial capture study.
func (e *captureExp) JournalName() string { return "capture" }

func (e *captureExp) Params() string { return catParam("", e.cat) }

func (e *captureExp) Trials(seed int64) ([]Trial, error) {
	root := simrand.New(seed)
	typists, err := input.Participants(root.Derive("typists"), NumParticipants)
	if err != nil {
		return nil, fmt.Errorf("experiment: participants: %w", err)
	}
	e.ds = CaptureDs()
	trials := make([]Trial, 0, len(e.ds)*NumParticipants)
	for di, d := range e.ds {
		for i := 0; i < NumParticipants; i++ {
			di, d, i := di, d, i
			p := participantDevice(catOr(e.cat), i)
			// Every shared-stream derivation happens here, in the exact
			// order the old sequential runner performed them, so the trial
			// closures are independent and the driver may run them in any
			// order (or replay them from a journal) without stream drift.
			strRNG := root.DeriveIndexed("strings", di*NumParticipants+i)
			typist, err := typists[i].WithStream(root.DeriveIndexed("plan", di*NumParticipants+i))
			if err != nil {
				return nil, fmt.Errorf("experiment: trial typist: %w", err)
			}
			label := fmt.Sprintf("capture trial (D=%v, participant %d)", d, i)
			trials = append(trials, NewTrial(
				fmt.Sprintf("capture seed=%d d=%dms p=%d", seed, d/time.Millisecond, i),
				label,
				func() (float64, error) {
					var rate float64
					err := safeTrial(label, func() error {
						var terr error
						rate, terr = runCaptureTrial(p, typist, d, strRNG,
							seed+int64(di*1000+i))
						return terr
					})
					return rate, err
				}))
		}
	}
	return trials, nil
}

// study reassembles the CaptureStudy dataset from the per-trial rates.
func (e *captureExp) study(results []any) *CaptureStudy {
	study := &CaptureStudy{Ds: e.ds, Results: make(map[time.Duration][]ParticipantCapture)}
	for di, d := range e.ds {
		for i := 0; i < NumParticipants; i++ {
			p := participantDevice(catOr(e.cat), i)
			study.Results[d] = append(study.Results[d], ParticipantCapture{
				Participant:  i,
				Model:        p.Model,
				VersionMajor: p.Version.Major,
				Rate:         Res[float64](results, di*NumParticipants+i),
			})
		}
	}
	return study
}

func (e *captureExp) Render(results []any) (Output, error) {
	study := e.study(results)
	if e.fig8 {
		series, err := study.Fig8()
		if err != nil {
			return Output{}, err
		}
		return Output{Text: RenderFig8(study.Ds, series)}, nil
	}
	rows, err := study.Fig7()
	if err != nil {
		return Output{}, err
	}
	modelRows, err := Fig7ModelOn(e.cat)
	if err != nil {
		return Output{}, err
	}
	return Output{Text: RenderFig7(rows) + "\n" + RenderFig7Model(modelRows, rows)}, nil
}

// Fig7Row is one box-plot column of Figure 7.
type Fig7Row struct {
	D   time.Duration
	Box stats.BoxPlot
}

// Fig7 summarizes the study as Figure 7's box plot series.
func (s *CaptureStudy) Fig7() ([]Fig7Row, error) {
	out := make([]Fig7Row, 0, len(s.Ds))
	for _, d := range s.Ds {
		rates := make([]float64, 0, len(s.Results[d]))
		for _, r := range s.Results[d] {
			rates = append(rates, r.Rate)
		}
		box, err := stats.Box(rates)
		if err != nil {
			return nil, fmt.Errorf("experiment: fig7 box for D=%v: %w", d, err)
		}
		out = append(out, Fig7Row{D: d, Box: box})
	}
	return out, nil
}

// Fig8Series is one Android version's mean capture rate across the D
// sweep.
type Fig8Series struct {
	VersionMajor int
	// MeanByD follows the order of CaptureDs.
	MeanByD []float64
}

// Fig8 groups the study by Android version, the Figure 8 view.
func (s *CaptureStudy) Fig8() ([]Fig8Series, error) {
	byVersion := make(map[int][]float64) // version → per-D sums
	counts := make(map[int][]int)
	for di, d := range s.Ds {
		for _, r := range s.Results[d] {
			if byVersion[r.VersionMajor] == nil {
				byVersion[r.VersionMajor] = make([]float64, len(s.Ds))
				counts[r.VersionMajor] = make([]int, len(s.Ds))
			}
			byVersion[r.VersionMajor][di] += r.Rate
			counts[r.VersionMajor][di]++
		}
	}
	versions := make([]int, 0, len(byVersion))
	for v := range byVersion {
		versions = append(versions, v)
	}
	sort.Ints(versions)
	out := make([]Fig8Series, 0, len(versions))
	for _, v := range versions {
		means := make([]float64, len(s.Ds))
		for di := range s.Ds {
			if n := counts[v][di]; n > 0 {
				means[di] = byVersion[v][di] / float64(n)
			}
		}
		out = append(out, Fig8Series{VersionMajor: v, MeanByD: means})
	}
	return out, nil
}

// RenderFig7 formats the box-plot rows; the paper's mean series is
// 61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8.
func RenderFig7(rows []Fig7Row) string {
	var sb strings.Builder
	sb.WriteString("Fig. 7 — touch event capture rate v.s. D (30 participants)\n")
	paperMeans := []float64{61.0, 79.8, 86.7, 89.0, 91.0, 92.8, 92.8}
	for i, r := range rows {
		paper := ""
		if i < len(paperMeans) {
			paper = fmt.Sprintf("  (paper mean %.1f)", paperMeans[i])
		}
		fmt.Fprintf(&sb, "  D = %3d ms: %s%s\n", r.D/time.Millisecond, r.Box, paper)
	}
	return sb.String()
}

// RenderFig8 formats the per-version series.
func RenderFig8(ds []time.Duration, series []Fig8Series) string {
	var sb strings.Builder
	sb.WriteString("Fig. 8 — capture rate v.s. D by Android version\n  version ")
	for _, d := range ds {
		fmt.Fprintf(&sb, "%7dms", d/time.Millisecond)
	}
	sb.WriteString("\n")
	for _, s := range series {
		fmt.Fprintf(&sb, "  %-8d", s.VersionMajor)
		for _, m := range s.MeanByD {
			fmt.Fprintf(&sb, "%8.1f%%", m)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}
