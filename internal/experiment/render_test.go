package experiment

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sysui"
)

// Renderer content checks: the printed tables must carry the rows a reader
// of the paper expects to find, not just be non-empty.

func TestRenderFig2Content(t *testing.T) {
	out := RenderFig2()
	for _, want := range []string{
		"FastOutSlowInInterpolator",
		"first frame: 72px view renders 0 px",
		"paper: <50% at 100 ms",
		"360 ms",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig2 render missing %q", want)
		}
	}
}

func TestRenderFig4Content(t *testing.T) {
	out := RenderFig4()
	for _, want := range []string{"Decelerate(enter)", "Accelerate(exit)", "500 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig4 render missing %q", want)
		}
	}
}

func TestRenderTableIIContent(t *testing.T) {
	rows := []TableIIRow{
		{Manufacturer: "Google", Model: "pixel 2", Version: "11", PaperD: 330 * time.Millisecond, MeasuredD: 335 * time.Millisecond},
	}
	out := RenderTableII(rows)
	for _, want := range []string{"upper boundary of D", "pixel 2", "330", "335"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableII render missing %q", want)
		}
	}
}

func TestRenderTableIIIContent(t *testing.T) {
	rows := []TableIIIRow{{Length: 8, Trials: 300, Successes: 264, LengthErrors: 22, WrongKeyErrors: 8, CapitalizationErrors: 6}}
	out := RenderTableIII(rows)
	for _, want := range []string{"password stealing", "88.0%", "paper:", "lenErr"} {
		if !strings.Contains(out, want) {
			t.Errorf("TableIII render missing %q", want)
		}
	}
}

func TestRenderFig7CarriesPaperMeans(t *testing.T) {
	rows := make([]Fig7Row, 7)
	for i, d := range CaptureDs() {
		rows[i] = Fig7Row{D: d}
	}
	out := RenderFig7(rows)
	for _, want := range []string{"61.0", "79.8", "92.8", "50 ms", "200 ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("Fig7 render missing %q", want)
		}
	}
}

func TestRenderDeviceCatalogContent(t *testing.T) {
	out := RenderDeviceCatalog()
	for _, want := range []string{"Samsung", "Vivo", "pixel 2", "V1986A", "E[Tmis]", "analytic-D"} {
		if !strings.Contains(out, want) {
			t.Errorf("device catalog missing %q", want)
		}
	}
	// All 30 devices present: header lines + 30 rows.
	if lines := strings.Count(out, "\n"); lines != 32 {
		t.Errorf("catalog has %d lines, want 32", lines)
	}
}

func TestRenderDefenseReportsContent(t *testing.T) {
	ipc := RenderDefenseIPC(DefenseIPCReport{AttackDetected: true, DetectionLatency: 1200 * time.Millisecond, AttackTerminated: true})
	if !strings.Contains(ipc, "IPC (Binder) based detection") || !strings.Contains(ipc, "1.2s") {
		t.Errorf("IPC render wrong: %q", ipc)
	}
	notif := RenderDefenseNotif(DefenseNotifReport{DelayT: 690 * time.Millisecond, OutcomeWithout: sysui.Lambda1, OutcomeWith: sysui.Lambda5})
	for _, want := range []string{"690ms", "Λ1", "Λ5"} {
		if !strings.Contains(notif, want) {
			t.Errorf("notif render missing %q", want)
		}
	}
	gap := RenderDefenseToastGap(DefenseToastGapReport{Gap: 400 * time.Millisecond, MinAlphaWithout: 0.75})
	if !strings.Contains(gap, "toast scheduling") || !strings.Contains(gap, "0.75") {
		t.Errorf("toast-gap render wrong: %q", gap)
	}
}

func TestRenderAblationsContent(t *testing.T) {
	out := RenderAblations(AblationReport{
		SlideStock: sysui.Lambda1, SlideInstant: sysui.Lambda3,
		BoundWithANA: 215 * time.Millisecond, BoundWithoutANA: 115 * time.Millisecond,
		OrderCorrect: sysui.Lambda1, OrderInverted: sysui.Lambda5,
		MinAlphaStockFade: 0.73,
	})
	for _, want := range []string{"slide animation", "ANA delay", "call order", "fade-out", "115ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("ablations render missing %q", want)
		}
	}
}

func TestRenderStealthContent(t *testing.T) {
	out := RenderStealth(StealthReport{Participants: 30, ReportedLag: 1, WorstOutcome: sysui.Lambda1, MinToastAlpha: 0.51})
	for _, want := range []string{"30", "(paper: 0)", "(paper: 1)", "Λ1"} {
		if !strings.Contains(out, want) {
			t.Errorf("stealth render missing %q", want)
		}
	}
}
