// Package sched is the repository's single audited home for goroutine
// concurrency in the simulation layer: a bounded worker pool that executes
// independently-seeded tasks and reports results deterministically. Every
// experiment trial and every corpus chunk runs through Run; nothing else
// inside internal/ may use the go keyword (enforced by simlint's bare-go
// rule), so reasoning about replay-exact parallelism stays local to this
// file.
//
// Determinism contract: tasks must be independent — each owns its derived
// RNG stream and writes only to its own result slot — so any interleaving
// produces the same per-task results. Run then makes the *aggregate*
// deterministic too: tasks are handed out in index order, the first error
// by task index wins regardless of which worker hit it first, and a panic
// inside a task is confined to that task's error slot instead of tearing
// down the process.
package sched

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
)

// Run executes fn(0..n-1) on a pool of at most workers goroutines and
// blocks until every started task finished. workers < 1 means 1; a pool is
// never larger than n. Cancelling ctx stops handing out new tasks (tasks
// already running complete); Run then returns ctx.Err() unless some task
// failed first. When tasks fail, Run returns the error of the
// lowest-indexed failed task — the same error a sequential loop would have
// surfaced — independent of scheduling order. A panic inside fn is
// converted into that task's error.
func Run(ctx context.Context, workers, n int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if workers < 1 {
		workers = 1
	}
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	next := int64(-1)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(atomic.AddInt64(&next, 1))
				if i >= n {
					return
				}
				errs[i] = protect(fn, i)
			}
		}()
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			return errs[i]
		}
	}
	return ctx.Err()
}

// protect runs one task, converting a panic into an error so a single bad
// task cannot kill the whole pool (mirroring the per-trial recover the
// sequential runners used).
func protect(fn func(i int) error, i int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sched: task %d: panic: %v", i, r)
		}
	}()
	return fn(i)
}
