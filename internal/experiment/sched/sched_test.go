package sched

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunExecutesAll: every index runs exactly once, for worker counts
// below, at and above n.
func TestRunExecutesAll(t *testing.T) {
	for _, workers := range []int{-1, 0, 1, 2, 7, 64} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const n = 23
			counts := make([]int64, n)
			if err := Run(context.Background(), workers, n, func(i int) error {
				atomic.AddInt64(&counts[i], 1)
				return nil
			}); err != nil {
				t.Fatalf("Run: %v", err)
			}
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("task %d ran %d times", i, c)
				}
			}
		})
	}
}

// TestRunZeroTasks: an empty task set is a no-op.
func TestRunZeroTasks(t *testing.T) {
	if err := Run(context.Background(), 4, 0, func(int) error {
		t.Fatal("task ran")
		return nil
	}); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

// TestRunFirstErrorByIndex: with many failing tasks racing on many
// workers, the returned error must always be the lowest-indexed failure —
// what a sequential loop would have reported.
func TestRunFirstErrorByIndex(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		err := Run(context.Background(), 8, 50, func(i int) error {
			if i >= 7 {
				return fmt.Errorf("task %d failed", i)
			}
			return nil
		})
		if err == nil || err.Error() != "task 7 failed" {
			t.Fatalf("trial %d: err = %v, want task 7 failed", trial, err)
		}
	}
}

// TestRunPanicConfined: a panicking task becomes that task's error; the
// other tasks still run.
func TestRunPanicConfined(t *testing.T) {
	var ran int64
	err := Run(context.Background(), 4, 10, func(i int) error {
		atomic.AddInt64(&ran, 1)
		if i == 3 {
			panic("boom")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "task 3") || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want task 3 panic", err)
	}
	if ran != 10 {
		t.Fatalf("ran %d tasks, want 10", ran)
	}
}

// TestRunCancelStopsDispatch: after ctx is cancelled no new task starts,
// in-flight tasks finish, and ctx.Err() is returned.
func TestRunCancelStopsDispatch(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started int64
	var once sync.Once
	release := make(chan struct{})
	err := Run(ctx, 2, 100, func(i int) error {
		atomic.AddInt64(&started, 1)
		once.Do(func() {
			cancel()
			close(release)
		})
		<-release
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Both workers may have picked up a task before observing the cancel,
	// but dispatch must stop shortly after: nowhere near all 100.
	if s := atomic.LoadInt64(&started); s > 4 {
		t.Fatalf("%d tasks started after cancel", s)
	}
}

// TestRunCancelledBeforeStart: a pre-cancelled context runs nothing.
func TestRunCancelledBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran int64
	err := Run(ctx, 4, 10, func(i int) error {
		atomic.AddInt64(&ran, 1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran != 0 {
		t.Fatalf("%d tasks ran on a dead context", ran)
	}
}

// TestRunTaskErrorBeatsCancel: a task failure surfaces even when the
// context is also cancelled — the error identifies the real cause.
func TestRunTaskErrorBeatsCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	boom := errors.New("boom")
	err := Run(ctx, 1, 3, func(i int) error {
		if i == 1 {
			cancel()
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
}
