// Package staticanalysis is the FlowDroid-style half of the Section VI-C2
// market study and the static half of the Section VII defense: it builds a
// call graph over a dexir.App, computes interprocedural reachability from
// manifest-declared component entry points, and runs pluggable capability
// detectors (draw-and-destroy overlay, toast replacement, accessibility-
// assisted timing) that return per-component evidence traces.
//
// The pass is deliberately path-insensitive: an instruction behind an
// always-false guard is still "reachable", matching the over-approximation
// of real call-graph analyzers. Reflective calls are resolved only when
// their class/method const-strings are directly visible, matching the
// easy-case reflection handling of FlowDroid configurations.
package staticanalysis

import (
	"repro/internal/dexir"
)

// sinkRefs are the framework methods the detectors care about.
var sinkRefs = map[dexir.MethodRef]bool{
	dexir.RefAddView:      true,
	dexir.RefRemoveView:   true,
	dexir.RefToastSetView: true,
	dexir.RefToastShow:    true,
}

// SinkCall is one call site of a framework sink inside an app method.
type SinkCall struct {
	// Sink is the framework method invoked.
	Sink dexir.MethodRef
	// In is the app method containing the call site.
	In dexir.MethodRef
	// InLoop marks an intra-method loop context.
	InLoop bool
	// Guarded marks a call site behind an always-false branch (dead at
	// runtime; the analysis reaches it anyway).
	Guarded bool
	// Reflective marks a call resolved from const-strings rather than a
	// direct method reference.
	Reflective bool
}

// edge is one call-graph edge to an app-defined method.
type edge struct {
	to dexir.MethodRef
	// callback marks an edge induced by a scheduler/listener registration
	// rather than a direct invoke.
	callback bool
	// repeating marks a registration on a self-repeating scheduler
	// (Timer.scheduleAtFixedRate).
	repeating bool
}

// node is the per-method call-graph record.
type node struct {
	callees []edge
	sinks   []SinkCall
	// registersSelf: the method re-enqueues itself on a scheduler — the
	// re-enqueue idiom of the draw-and-destroy and toast loops.
	registersSelf bool
}

// CallGraph is the whole-app call graph.
type CallGraph struct {
	app   *dexir.App
	nodes map[dexir.MethodRef]*node
}

// BuildCallGraph constructs the call graph for one app. Direct invokes of
// app methods become direct edges; callback registrations become callback
// edges; resolvable reflective invokes of framework sinks become sink
// calls flagged Reflective; unresolvable reflective invokes stay opaque.
func BuildCallGraph(app *dexir.App) *CallGraph {
	g := &CallGraph{app: app, nodes: make(map[dexir.MethodRef]*node)}
	for ci := range app.Classes {
		for mi := range app.Classes[ci].Methods {
			m := &app.Classes[ci].Methods[mi]
			g.nodes[m.Ref] = g.buildNode(app, m)
		}
	}
	return g
}

func (g *CallGraph) buildNode(app *dexir.App, m *dexir.Method) *node {
	n := &node{}
	// Rolling window of the last two const-strings, feeding reflective
	// resolution the way a constant-propagation pass would.
	var c1, c2 string // c1 = older (class), c2 = newer (method)
	for _, in := range m.Body {
		switch in.Op {
		case dexir.OpConstString:
			c1, c2 = c2, in.Str
		case dexir.OpInvoke:
			if sinkRefs[in.Target] {
				n.sinks = append(n.sinks, SinkCall{
					Sink: in.Target, In: m.Ref,
					InLoop:  in.InLoop,
					Guarded: in.Guard == dexir.GuardAlwaysFalse,
				})
			} else if _, ok := app.Method(in.Target); ok {
				n.callees = append(n.callees, edge{to: in.Target})
			}
		case dexir.OpRegisterCallback:
			if _, ok := app.Method(in.Callback); ok {
				n.callees = append(n.callees, edge{
					to:        in.Callback,
					callback:  true,
					repeating: in.Target == dexir.RefTimerScheduleRate,
				})
				if in.Callback == m.Ref {
					n.registersSelf = true
				}
			}
		case dexir.OpReflectInvoke:
			if ref, ok := dexir.ResolveReflective(c1, c2); ok && sinkRefs[ref] {
				n.sinks = append(n.sinks, SinkCall{
					Sink: ref, In: m.Ref,
					InLoop:     in.InLoop,
					Guarded:    in.Guard == dexir.GuardAlwaysFalse,
					Reflective: true,
				})
			}
		}
	}
	return n
}

// RegistersSelf reports whether the method re-enqueues itself on a
// scheduler (the repeating-callback idiom).
func (g *CallGraph) RegistersSelf(ref dexir.MethodRef) bool {
	n, ok := g.nodes[ref]
	return ok && n.registersSelf
}

// Sinks returns the sink call sites inside one method.
func (g *CallGraph) Sinks(ref dexir.MethodRef) []SinkCall {
	if n, ok := g.nodes[ref]; ok {
		return n.sinks
	}
	return nil
}

// reachInfo records how a method was first reached during BFS.
type reachInfo struct {
	parent    dexir.MethodRef
	hasParent bool
	// viaCallback: some edge on the discovery path was a callback edge
	// (handler/scheduler context).
	viaCallback bool
	// viaRepeating: some edge on the path was a repeating registration.
	viaRepeating bool
}

// ReachSet is the result of a reachability query.
type ReachSet struct {
	info map[dexir.MethodRef]reachInfo
}

// Contains reports whether the method is reachable.
func (r *ReachSet) Contains(ref dexir.MethodRef) bool {
	_, ok := r.info[ref]
	return ok
}

// ViaCallback reports whether the method's discovery path crossed a
// callback (handler/scheduler/listener) edge.
func (r *ReachSet) ViaCallback(ref dexir.MethodRef) bool {
	return r.info[ref].viaCallback
}

// ViaRepeating reports whether the discovery path crossed a repeating
// scheduler registration.
func (r *ReachSet) ViaRepeating(ref dexir.MethodRef) bool {
	return r.info[ref].viaRepeating
}

// Path reconstructs the entry-point→method discovery path (inclusive).
func (r *ReachSet) Path(ref dexir.MethodRef) []dexir.MethodRef {
	if _, ok := r.info[ref]; !ok {
		return nil
	}
	var rev []dexir.MethodRef
	cur := ref
	for {
		rev = append(rev, cur)
		in := r.info[cur]
		if !in.hasParent {
			break
		}
		cur = in.parent
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ReachableFrom computes the methods reachable from the given entry
// points. BFS over entries in order, callees in body order, so traversal
// (and therefore evidence paths) is deterministic.
func (g *CallGraph) ReachableFrom(entries []dexir.MethodRef) *ReachSet {
	r := &ReachSet{info: make(map[dexir.MethodRef]reachInfo)}
	var queue []dexir.MethodRef
	for _, e := range entries {
		if _, ok := g.nodes[e]; !ok {
			continue
		}
		if _, seen := r.info[e]; seen {
			continue
		}
		r.info[e] = reachInfo{}
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curInfo := r.info[cur]
		for _, e := range g.nodes[cur].callees {
			if _, seen := r.info[e.to]; seen {
				continue
			}
			r.info[e.to] = reachInfo{
				parent:       cur,
				hasParent:    true,
				viaCallback:  curInfo.viaCallback || e.callback,
				viaRepeating: curInfo.viaRepeating || e.repeating,
			}
			queue = append(queue, e.to)
		}
	}
	return r
}
