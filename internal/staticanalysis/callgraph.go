// Package staticanalysis is the FlowDroid-style half of the Section VI-C2
// market study and the static half of the Section VII defense: it builds a
// call graph over a dexir.App, computes interprocedural reachability from
// manifest-declared component entry points, and runs pluggable capability
// detectors (draw-and-destroy overlay, toast replacement, accessibility-
// assisted timing) that return per-component evidence traces.
//
// The pass runs at a selectable precision Tier. Tier0 reproduces the
// paper's baseline configuration exactly: path-insensitive (an instruction
// behind an always-false guard is still "reachable", the deliberate
// over-approximation of basic call-graph analyzers) with reflection
// resolved only from the two const-strings immediately preceding the call
// — FlowDroid's easy case. Tier1 prunes statically dead always-false
// branches before reachability. Tier2 adds interprocedural constant
// propagation (constprop.go): whole-program boolean flags decide GuardFlag
// branches, and string registers — const loads, moves, concatenations and
// constant-returning helper calls — resolve reflective sinks whose names
// never appear contiguously. The `precision` experiment measures what each
// step buys against the generator's ground truth.
package staticanalysis

import (
	"repro/internal/dexir"
)

// sinkRefs are the framework methods the detectors care about.
var sinkRefs = map[dexir.MethodRef]bool{
	dexir.RefAddView:      true,
	dexir.RefRemoveView:   true,
	dexir.RefToastSetView: true,
	dexir.RefToastShow:    true,
}

// SinkCall is one call site of a framework sink inside an app method.
type SinkCall struct {
	// Sink is the framework method invoked.
	Sink dexir.MethodRef
	// In is the app method containing the call site.
	In dexir.MethodRef
	// InLoop marks an intra-method loop context.
	InLoop bool
	// Guarded marks a call site behind an always-false branch (dead at
	// runtime; the analysis reaches it anyway).
	Guarded bool
	// Reflective marks a call resolved from const-strings rather than a
	// direct method reference.
	Reflective bool
}

// edge is one call-graph edge to an app-defined method.
type edge struct {
	to dexir.MethodRef
	// callback marks an edge induced by a scheduler/listener registration
	// rather than a direct invoke.
	callback bool
	// repeating marks a registration on a self-repeating scheduler
	// (Timer.scheduleAtFixedRate).
	repeating bool
}

// node is the per-method call-graph record.
type node struct {
	callees []edge
	sinks   []SinkCall
	// registersSelf: the method re-enqueues itself on a scheduler — the
	// re-enqueue idiom of the draw-and-destroy and toast loops.
	registersSelf bool
}

// CallGraph is the whole-app call graph, built at one analysis tier.
type CallGraph struct {
	app   *dexir.App
	nodes map[dexir.MethodRef]*node
	tier  Tier

	// Tier2 state: the whole-program flag-constant table and the memoized
	// constant-return summaries (see constprop.go).
	flags     map[string]bool
	retMemo   map[dexir.MethodRef]constRet
	retActive map[dexir.MethodRef]bool
}

// BuildCallGraph constructs the Tier0 (paper-baseline) call graph for one
// app. Direct invokes of app methods become direct edges; callback
// registrations become callback edges; resolvable reflective invokes of
// framework sinks become sink calls flagged Reflective; unresolvable
// reflective invokes stay opaque.
func BuildCallGraph(app *dexir.App) *CallGraph {
	return BuildCallGraphTier(app, Tier0)
}

// BuildCallGraphTier constructs the call graph at the given precision
// tier. Tier1 drops instructions behind always-false guards before any
// edge or sink is extracted; Tier2 additionally resolves flag guards from
// the whole-program constant table and reflective targets from register
// dataflow.
func BuildCallGraphTier(app *dexir.App, tier Tier) *CallGraph {
	g := &CallGraph{app: app, nodes: make(map[dexir.MethodRef]*node), tier: tier}
	if tier >= Tier2 {
		g.flags = buildFlagTable(app)
		g.retMemo = make(map[dexir.MethodRef]constRet)
		g.retActive = make(map[dexir.MethodRef]bool)
	}
	for ci := range app.Classes {
		for mi := range app.Classes[ci].Methods {
			m := &app.Classes[ci].Methods[mi]
			g.nodes[m.Ref] = g.buildNode(app, m)
		}
	}
	return g
}

// Tier reports the precision tier the graph was built at.
func (g *CallGraph) Tier() Tier { return g.tier }

func (g *CallGraph) buildNode(app *dexir.App, m *dexir.Method) *node {
	n := &node{}
	// Rolling window of the last two const-strings, feeding reflective
	// resolution the way FlowDroid's easy case would.
	var c1, c2 string // c1 = older (class), c2 = newer (method)
	// Tier2 tracks string registers alongside the window.
	var regs map[dexir.Reg]string
	if g.tier >= Tier2 {
		regs = make(map[dexir.Reg]string, 8)
	}
	for _, in := range m.Body {
		if g.pruned(in) {
			continue
		}
		switch in.Op {
		case dexir.OpConstString:
			c1, c2 = c2, in.Str
		case dexir.OpInvoke:
			if sinkRefs[in.Target] {
				n.sinks = append(n.sinks, SinkCall{
					Sink: in.Target, In: m.Ref,
					InLoop:  in.InLoop,
					Guarded: in.Guard != dexir.GuardNone,
				})
			} else if _, ok := app.Method(in.Target); ok {
				n.callees = append(n.callees, edge{to: in.Target})
			}
		case dexir.OpRegisterCallback:
			if _, ok := app.Method(in.Callback); ok {
				n.callees = append(n.callees, edge{
					to:        in.Callback,
					callback:  true,
					repeating: in.Target == dexir.RefTimerScheduleRate,
				})
				if in.Callback == m.Ref {
					n.registersSelf = true
				}
			}
		case dexir.OpReflectInvoke:
			class, method, known := c1, c2, true
			if regs != nil && (in.ClassReg != 0 || in.MethodReg != 0) {
				// Register-carried names: resolvable only at Tier2, and
				// only when both registers hold known constants.
				class, method, known = regPair(regs, in.ClassReg, in.MethodReg)
			}
			if known {
				if ref, ok := dexir.ResolveReflective(class, method); ok && sinkRefs[ref] {
					n.sinks = append(n.sinks, SinkCall{
						Sink: ref, In: m.Ref,
						InLoop:     in.InLoop,
						Guarded:    in.Guard != dexir.GuardNone,
						Reflective: true,
					})
				}
			}
		}
		if regs != nil {
			g.stepRegs(regs, in)
		}
	}
	return n
}

// RegistersSelf reports whether the method re-enqueues itself on a
// scheduler (the repeating-callback idiom).
func (g *CallGraph) RegistersSelf(ref dexir.MethodRef) bool {
	n, ok := g.nodes[ref]
	return ok && n.registersSelf
}

// Sinks returns the sink call sites inside one method.
func (g *CallGraph) Sinks(ref dexir.MethodRef) []SinkCall {
	if n, ok := g.nodes[ref]; ok {
		return n.sinks
	}
	return nil
}

// reachInfo records how a method was first reached during BFS.
type reachInfo struct {
	parent    dexir.MethodRef
	hasParent bool
	// viaCallback: some edge on the discovery path was a callback edge
	// (handler/scheduler context).
	viaCallback bool
	// viaRepeating: some edge on the path was a repeating registration.
	viaRepeating bool
}

// ReachSet is the result of a reachability query.
type ReachSet struct {
	info map[dexir.MethodRef]reachInfo
}

// Contains reports whether the method is reachable.
func (r *ReachSet) Contains(ref dexir.MethodRef) bool {
	_, ok := r.info[ref]
	return ok
}

// ViaCallback reports whether the method's discovery path crossed a
// callback (handler/scheduler/listener) edge.
func (r *ReachSet) ViaCallback(ref dexir.MethodRef) bool {
	return r.info[ref].viaCallback
}

// ViaRepeating reports whether the discovery path crossed a repeating
// scheduler registration.
func (r *ReachSet) ViaRepeating(ref dexir.MethodRef) bool {
	return r.info[ref].viaRepeating
}

// Path reconstructs the entry-point→method discovery path (inclusive).
func (r *ReachSet) Path(ref dexir.MethodRef) []dexir.MethodRef {
	if _, ok := r.info[ref]; !ok {
		return nil
	}
	var rev []dexir.MethodRef
	cur := ref
	for {
		rev = append(rev, cur)
		in := r.info[cur]
		if !in.hasParent {
			break
		}
		cur = in.parent
	}
	// Reverse in place.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev
}

// ReachableFrom computes the methods reachable from the given entry
// points. BFS over entries in order, callees in body order, so traversal
// (and therefore evidence paths) is deterministic.
func (g *CallGraph) ReachableFrom(entries []dexir.MethodRef) *ReachSet {
	r := &ReachSet{info: make(map[dexir.MethodRef]reachInfo)}
	var queue []dexir.MethodRef
	for _, e := range entries {
		if _, ok := g.nodes[e]; !ok {
			continue
		}
		if _, seen := r.info[e]; seen {
			continue
		}
		r.info[e] = reachInfo{}
		queue = append(queue, e)
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		curInfo := r.info[cur]
		for _, e := range g.nodes[cur].callees {
			if _, seen := r.info[e.to]; seen {
				continue
			}
			r.info[e.to] = reachInfo{
				parent:       cur,
				hasParent:    true,
				viaCallback:  curInfo.viaCallback || e.callback,
				viaRepeating: curInfo.viaRepeating || e.repeating,
			}
			queue = append(queue, e.to)
		}
	}
	return r
}
