package staticanalysis

import (
	"repro/internal/dexir"
)

// This file is the Tier2 dataflow machinery: a whole-program boolean-flag
// constant table, a per-method abstract interpretation over string
// registers, and memoized constant-return summaries for app methods. All
// of it is sound-by-forgetting — anything not provably a single constant
// is treated as unknown, so Tier2 only ever prunes what is statically
// dead and resolves what is statically certain.

// buildFlagTable resolves every whole-program boolean set by OpSetFlag to
// its constant value. A flag assigned conflicting values anywhere in the
// app stays out of the table (unknown), so guarded code under it remains
// reachable.
func buildFlagTable(app *dexir.App) map[string]bool {
	var known map[string]bool
	conflicted := map[string]bool{}
	for ci := range app.Classes {
		for mi := range app.Classes[ci].Methods {
			for _, in := range app.Classes[ci].Methods[mi].Body {
				if in.Op != dexir.OpSetFlag || in.Flag == "" {
					continue
				}
				if known == nil {
					known = make(map[string]bool, 2)
				}
				if v, ok := known[in.Flag]; ok && v != in.BoolVal {
					conflicted[in.Flag] = true
				}
				known[in.Flag] = in.BoolVal
			}
		}
	}
	for flag := range conflicted {
		delete(known, flag)
	}
	return known
}

// pruned reports whether the tier removes the instruction before any
// graph or sink extraction. Tier0 prunes nothing (the paper baseline);
// Tier1 prunes statically dead always-false branches; Tier2 additionally
// prunes branches on a flag the table proves constant-false.
func (g *CallGraph) pruned(in dexir.Instruction) bool {
	switch in.Guard {
	case dexir.GuardAlwaysFalse:
		return g.tier >= Tier1
	case dexir.GuardFlag:
		if g.tier >= Tier2 {
			v, ok := g.flags[in.Flag]
			return ok && !v
		}
	}
	return false
}

// constRet is one memoized constant-return summary.
type constRet struct {
	val string
	ok  bool
}

// constReturn resolves an app method to the single constant string it
// always returns, following moves, concats and nested constant-returning
// calls. Summaries are memoized on the graph; recursion breaks to
// unknown, so cyclic helpers terminate without resolving.
func (g *CallGraph) constReturn(ref dexir.MethodRef) (string, bool) {
	if r, ok := g.retMemo[ref]; ok {
		return r.val, r.ok
	}
	if g.retActive[ref] {
		return "", false
	}
	m, ok := g.app.Method(ref)
	if !ok {
		return "", false
	}
	g.retActive[ref] = true
	regs := make(map[dexir.Reg]string, 4)
	var val string
	resolved, conflicted := false, false
	for _, in := range m.Body {
		if g.pruned(in) {
			continue
		}
		if in.Op == dexir.OpReturn {
			v, known := regs[in.SrcA]
			switch {
			case !known:
				conflicted = true
			case resolved && v != val:
				conflicted = true
			default:
				val, resolved = v, true
			}
			continue
		}
		g.stepRegs(regs, in)
	}
	delete(g.retActive, ref)
	res := constRet{val: val, ok: resolved && !conflicted}
	if !res.ok {
		res.val = ""
	}
	g.retMemo[ref] = res
	return res.val, res.ok
}

// stepRegs applies one instruction's effect to the abstract register
// state: registers hold either a known constant string or nothing
// (unknown). Any write the interpretation cannot model clobbers the
// destination to unknown.
func (g *CallGraph) stepRegs(regs map[dexir.Reg]string, in dexir.Instruction) {
	if in.Dst <= 0 {
		return
	}
	switch in.Op {
	case dexir.OpConstString:
		regs[in.Dst] = in.Str
		return
	case dexir.OpMove:
		if v, ok := regs[in.SrcA]; ok {
			regs[in.Dst] = v
			return
		}
	case dexir.OpConcat:
		a, okA := regs[in.SrcA]
		b, okB := regs[in.SrcB]
		if okA && okB {
			regs[in.Dst] = a + b
			return
		}
	case dexir.OpInvoke:
		if v, ok := g.constReturn(in.Target); ok {
			regs[in.Dst] = v
			return
		}
	}
	delete(regs, in.Dst)
}

// regPair reads an OpReflectInvoke's class/method name registers; the
// pair resolves only when both registers hold known constants.
func regPair(regs map[dexir.Reg]string, class, method dexir.Reg) (string, string, bool) {
	c, okC := regs[class]
	m, okM := regs[method]
	return c, m, okC && okM
}
