package staticanalysis

import (
	"strings"
	"testing"

	"repro/internal/dexir"
)

// buildApp assembles a one-class app with the given methods and component
// entry points; perms and kind configure the manifest side.
func buildApp(pkg string, perms []string, kind dexir.ComponentKind, entries []dexir.MethodRef, methods []dexir.Method) *dexir.App {
	cls := dexir.ClassName(pkg, "Main")
	return &dexir.App{
		Package:     pkg,
		Permissions: perms,
		Components:  []dexir.Component{{Name: cls, Kind: kind, EntryPoints: entries}},
		Classes:     []dexir.Class{{Name: cls, Methods: methods}},
	}
}

func saw() []string { return []string{dexir.PermSystemAlertWindow} }

// attackApp is the canonical draw-and-destroy app: onCreate registers a
// self-re-enqueueing swap callback that adds and removes overlays.
func attackApp() *dexir.App {
	cls := dexir.ClassName("com.evil", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	swap := dexir.Ref(cls, "swap", "()V")
	return buildApp("com.evil", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: swap},
		}},
		{Ref: swap, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, InLoop: true},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, InLoop: true},
			{Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: swap},
		}},
	})
}

func TestDrawAndDestroyDetected(t *testing.T) {
	res := Analyze(attackApp())
	if !res.DrawAndDestroy {
		t.Fatal("attack app not detected")
	}
	if len(res.Findings) == 0 {
		t.Fatal("no findings")
	}
	f := res.Findings[0]
	if f.Capability != CapDrawAndDestroy {
		t.Fatalf("capability = %v", f.Capability)
	}
	if !f.LoopContext || !f.HandlerContext {
		t.Fatalf("context flags = loop:%v handler:%v, want both", f.LoopContext, f.HandlerContext)
	}
	// Evidence trace must name the path and the sink.
	var sawTrace bool
	for _, e := range f.Evidence {
		s := e.String()
		if strings.Contains(s, "onCreate") && strings.Contains(s, "swap") && strings.Contains(s, "addView") {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Fatalf("no onCreate→swap⇒addView trace in %v", f.Evidence)
	}
}

// TestNoSAWNoDrawAndDestroy: the same bytecode without the permission is
// not the capability (in-app window management).
func TestNoSAWNoDrawAndDestroy(t *testing.T) {
	app := attackApp()
	app.Permissions = nil
	if res := Analyze(app); res.DrawAndDestroy {
		t.Fatal("capability without SYSTEM_ALERT_WINDOW")
	}
}

// TestDeadCodeNotReachable: add/remove invokes in a method no entry point
// reaches must not fire the detector, even though the refs sit in the
// method-reference table (where grep finds them).
func TestDeadCodeNotReachable(t *testing.T) {
	cls := dexir.ClassName("com.dead", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	deadLib := dexir.Ref(cls, "unusedSdkHelper", "()V")
	app := buildApp("com.dead", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{{Op: dexir.OpNop}}},
		{Ref: deadLib, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView},
		}},
	})
	if res := Analyze(app); res.DrawAndDestroy {
		t.Fatal("dead code classified as capability")
	}
	// The grep view disagrees: both refs are in the table.
	table := app.MethodRefTable()
	joined := strings.Join(table, "\n")
	if !strings.Contains(joined, string(dexir.RefAddView)) || !strings.Contains(joined, string(dexir.RefRemoveView)) {
		t.Fatalf("ref table missing dead refs: %v", table)
	}
}

// TestReflectiveReachable: overlay calls dispatched via resolvable
// reflection are invisible to the ref table but detected by the analyzer.
func TestReflectiveReachable(t *testing.T) {
	cls := dexir.ClassName("com.refl", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	app := buildApp("com.refl", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "addView"},
			{Op: dexir.OpReflectInvoke},
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "removeView"},
			{Op: dexir.OpReflectInvoke},
		}},
	})
	res := Analyze(app)
	if !res.DrawAndDestroy {
		t.Fatal("reflective capability missed")
	}
	if joined := strings.Join(app.MethodRefTable(), "\n"); strings.Contains(joined, string(dexir.RefAddView)) {
		t.Fatal("reflective target leaked into ref table")
	}
	var reflective bool
	for _, f := range res.Findings {
		for _, e := range f.Evidence {
			if e.Reflective {
				reflective = true
			}
		}
	}
	if !reflective {
		t.Fatal("evidence not flagged reflective")
	}
}

// TestUnresolvableReflectionOpaque: strings built at runtime resolve to
// nothing; the analyzer (correctly, conservatively) reports no capability.
func TestUnresolvableReflectionOpaque(t *testing.T) {
	cls := dexir.ClassName("com.deep", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	app := buildApp("com.deep", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpConstString, Str: "android.view.Window" /* truncated: assembled at runtime */},
			{Op: dexir.OpConstString, Str: "addVi"},
			{Op: dexir.OpReflectInvoke},
		}},
	})
	if res := Analyze(app); res.DrawAndDestroy {
		t.Fatal("unresolvable reflection resolved")
	}
}

// TestGuardedSinkStillReachable: path-insensitive analysis reaches sinks
// behind always-false guards (documented over-approximation).
func TestGuardedSinkStillReachable(t *testing.T) {
	cls := dexir.ClassName("com.guard", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	app := buildApp("com.guard", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, Guard: dexir.GuardAlwaysFalse},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, Guard: dexir.GuardAlwaysFalse},
		}},
	})
	res := Analyze(app)
	if !res.DrawAndDestroy {
		t.Fatal("guarded sinks not reached (analysis should be path-insensitive)")
	}
	for _, f := range res.Findings {
		for _, e := range f.Evidence {
			if !e.Guarded {
				t.Fatalf("evidence not flagged guarded: %+v", e)
			}
		}
	}
}

func toastLoopApp(reEnqueue bool) *dexir.App {
	cls := dexir.ClassName("com.toast", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	loop := dexir.Ref(cls, "toastLoop", "()V")
	body := []dexir.Instruction{
		{Op: dexir.OpInvoke, Target: dexir.RefToastSetView},
		{Op: dexir.OpInvoke, Target: dexir.RefToastShow},
	}
	if reEnqueue {
		body = append(body, dexir.Instruction{Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: loop})
	}
	return buildApp("com.toast", nil, dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpRegisterCallback, Target: dexir.RefHandlerPostDelayed, Callback: loop},
		}},
		{Ref: loop, Body: body},
	})
}

func TestToastReplaceDetection(t *testing.T) {
	res := Analyze(toastLoopApp(true))
	if !res.ToastReplace {
		t.Fatal("re-enqueueing toast loop not detected")
	}
	if !res.SetViewReachable {
		t.Fatal("setView feature not reported")
	}
	// A one-shot customized toast is the feature but not the capability.
	res = Analyze(toastLoopApp(false))
	if res.ToastReplace {
		t.Fatal("one-shot toast misclassified as replacement capability")
	}
	if !res.SetViewReachable {
		t.Fatal("one-shot setView feature missed")
	}
}

// TestToastReplaceViaRepeatingTimer: registration on a fixed-rate timer
// counts as repeating even without self-re-enqueue.
func TestToastReplaceViaRepeatingTimer(t *testing.T) {
	cls := dexir.ClassName("com.timer", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	tick := dexir.Ref(cls, "tick", "()V")
	app := buildApp("com.timer", nil, dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpRegisterCallback, Target: dexir.RefTimerScheduleRate, Callback: tick},
		}},
		{Ref: tick, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefToastSetView},
			{Op: dexir.OpInvoke, Target: dexir.RefToastShow},
		}},
	})
	if res := Analyze(app); !res.ToastReplace {
		t.Fatal("fixed-rate timer toast loop not detected")
	}
}

func TestA11yTimingDetection(t *testing.T) {
	cls := dexir.ClassName("com.a11y", "Access")
	onEvent := dexir.Ref(cls, "onAccessibilityEvent", "(Landroid/view/accessibility/AccessibilityEvent;)V")
	strike := dexir.Ref(cls, "strike", "()V")
	app := &dexir.App{
		Package:     "com.a11y",
		Permissions: []string{dexir.PermSystemAlertWindow, dexir.PermBindAccessibility},
		Components: []dexir.Component{
			{Name: cls, Kind: dexir.AccessibilityService, EntryPoints: []dexir.MethodRef{onEvent}},
		},
		Classes: []dexir.Class{{Name: cls, Methods: []dexir.Method{
			{Ref: onEvent, Body: []dexir.Instruction{{Op: dexir.OpInvoke, Target: strike}}},
			{Ref: strike, Body: []dexir.Instruction{
				{Op: dexir.OpInvoke, Target: dexir.RefAddView},
				{Op: dexir.OpInvoke, Target: dexir.RefRemoveView},
			}},
		}}},
	}
	res := Analyze(app)
	if !res.A11yTiming {
		t.Fatal("a11y-wired overlay not detected")
	}
	// An a11y service that never touches overlays is clean.
	clean := &dexir.App{
		Package:     "com.screenreader",
		Permissions: []string{dexir.PermBindAccessibility},
		Components: []dexir.Component{
			{Name: cls, Kind: dexir.AccessibilityService, EntryPoints: []dexir.MethodRef{onEvent}},
		},
		Classes: []dexir.Class{{Name: cls, Methods: []dexir.Method{
			{Ref: onEvent, Body: []dexir.Instruction{{Op: dexir.OpNop}}},
		}}},
	}
	if res := Analyze(clean); res.A11yTiming {
		t.Fatal("benign a11y service flagged")
	}
}

func TestReachSetPathAndFlags(t *testing.T) {
	app := attackApp()
	g := BuildCallGraph(app)
	cls := dexir.ClassName("com.evil", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	swap := dexir.Ref(cls, "swap", "()V")
	reach := g.ReachableFrom([]dexir.MethodRef{onCreate})
	if !reach.Contains(swap) || !reach.ViaCallback(swap) {
		t.Fatalf("swap reach = contains:%v viaCallback:%v", reach.Contains(swap), reach.ViaCallback(swap))
	}
	path := reach.Path(swap)
	if len(path) != 2 || path[0] != onCreate || path[1] != swap {
		t.Fatalf("path = %v", path)
	}
	if reach.Path("Lnone;->x()V") != nil {
		t.Fatal("path for unreachable method")
	}
	if !g.RegistersSelf(swap) {
		t.Fatal("self-re-enqueue not recorded")
	}
}

func TestCapabilityStrings(t *testing.T) {
	for c, want := range map[Capability]string{
		CapDrawAndDestroy: "draw-and-destroy-overlay",
		CapToastReplace:   "toast-replacement",
		CapA11yTiming:     "a11y-assisted-timing",
	} {
		if c.String() != want {
			t.Errorf("%d.String() = %q", int(c), c.String())
		}
	}
	if got := Capability(42).String(); got != "capability(42)" {
		t.Errorf("unknown capability = %q", got)
	}
}

func TestAnalyzeDeterministic(t *testing.T) {
	a := Analyze(attackApp())
	b := Analyze(attackApp())
	if len(a.Findings) != len(b.Findings) {
		t.Fatalf("finding counts differ: %d vs %d", len(a.Findings), len(b.Findings))
	}
	for i := range a.Findings {
		if a.Findings[i].Component != b.Findings[i].Component || a.Findings[i].Capability != b.Findings[i].Capability {
			t.Fatalf("finding %d differs", i)
		}
	}
}
