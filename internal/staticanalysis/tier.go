package staticanalysis

import (
	"fmt"
	"strings"
)

// Tier selects the precision of the static pass. Higher tiers cost more
// per app and reject more decoys; Tier0 reproduces the paper's baseline
// configuration byte-for-byte.
type Tier int

// The three analysis tiers, in increasing precision.
const (
	// Tier0 is the baseline: path-insensitive reachability with the
	// rolling two-const-string window for reflection — every guard is
	// traversed, every register is opaque. This is the configuration the
	// §VI-C2 market study ran.
	Tier0 Tier = iota
	// Tier1 adds guard sensitivity: instructions behind a statically
	// always-false branch (dexir.GuardAlwaysFalse) are pruned before
	// reachability, killing the dead-code decoys.
	Tier1
	// Tier2 adds interprocedural constant propagation: whole-program
	// boolean flags (dexir.OpSetFlag) resolve GuardFlag branches, and a
	// per-method register interpretation — const-strings, moves, concats
	// and constant-returning helper calls — resolves reflective sinks
	// whose names are split across fragments or returned by helpers.
	Tier2
)

// Tiers lists every analysis tier, lowest precision first.
func Tiers() []Tier { return []Tier{Tier0, Tier1, Tier2} }

// String names the tier for flags, reports and cache keys.
func (t Tier) String() string {
	switch t {
	case Tier0:
		return "tier0"
	case Tier1:
		return "tier1"
	case Tier2:
		return "tier2"
	}
	return fmt.Sprintf("tier(%d)", int(t))
}

// Describe returns the one-line explanation reports attach to the tier.
func (t Tier) Describe() string {
	switch t {
	case Tier0:
		return "path-insensitive reachability, window-resolved reflection"
	case Tier1:
		return "dead always-false branches pruned before reachability"
	case Tier2:
		return "interprocedural constant propagation: flag guards resolved, split/cross-method reflection recovered"
	}
	return "unknown tier"
}

// ParseTier parses a -tier flag value: "0".."2" or "tier0".."tier2".
func ParseTier(s string) (Tier, error) {
	switch strings.TrimPrefix(strings.ToLower(strings.TrimSpace(s)), "tier") {
	case "0":
		return Tier0, nil
	case "1":
		return Tier1, nil
	case "2":
		return Tier2, nil
	}
	return Tier0, fmt.Errorf("staticanalysis: unknown tier %q (want 0, 1, 2 or tier0..tier2)", s)
}
