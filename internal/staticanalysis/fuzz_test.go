package staticanalysis

import (
	"encoding/json"
	"testing"

	"repro/internal/dexir"
)

// fuzzReflectApp assembles a one-activity app whose entry point performs
// one reflective call of (class, method), obfuscated per mode:
//
//	mode 0 — names split at cut and rebuilt with OpConcat
//	mode 1 — names fetched from constant-returning helper methods
//	mode 2 — names routed through an OpMove chain
//	mode 3 — names loaded directly into the registers
//
// Every variant carries both SYSTEM_ALERT_WINDOW and the sink call, so
// whether the analyzer flags the app depends only on whether Tier2's
// constant propagation recovers the pair.
func fuzzReflectApp(class, method string, cut int, mode uint8) *dexir.App {
	cls := dexir.ClassName("com.fuzz", "Main")
	obf := dexir.ClassName("com.fuzz", "Obf")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	clsHelper := dexir.Ref(obf, "cls", "()Ljava/lang/String;")
	mthHelper := dexir.Ref(obf, "mth", "()Ljava/lang/String;")

	split := func(s string) (string, string) {
		if len(s) == 0 {
			return "", ""
		}
		k := cut % len(s)
		if k < 0 {
			k += len(s)
		}
		return s[:k], s[k:]
	}
	var body []dexir.Instruction
	var helpers []dexir.Method
	switch mode % 4 {
	case 0:
		ca, cb := split(class)
		ma, mb := split(method)
		body = []dexir.Instruction{
			{Op: dexir.OpConstString, Dst: 1, Str: ca},
			{Op: dexir.OpConstString, Dst: 2, Str: cb},
			{Op: dexir.OpConcat, Dst: 3, SrcA: 1, SrcB: 2},
			{Op: dexir.OpConstString, Dst: 4, Str: ma},
			{Op: dexir.OpConstString, Dst: 5, Str: mb},
			{Op: dexir.OpConcat, Dst: 6, SrcA: 4, SrcB: 5},
			{Op: dexir.OpReflectInvoke, ClassReg: 3, MethodReg: 6},
		}
	case 1:
		body = []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: clsHelper, Dst: 1},
			{Op: dexir.OpInvoke, Target: mthHelper, Dst: 2},
			{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 2},
		}
		helpers = []dexir.Method{
			{Ref: clsHelper, Body: []dexir.Instruction{
				{Op: dexir.OpConstString, Dst: 1, Str: class},
				{Op: dexir.OpReturn, SrcA: 1},
			}},
			{Ref: mthHelper, Body: []dexir.Instruction{
				{Op: dexir.OpConstString, Dst: 1, Str: method},
				{Op: dexir.OpReturn, SrcA: 1},
			}},
		}
	case 2:
		body = []dexir.Instruction{
			{Op: dexir.OpConstString, Dst: 1, Str: class},
			{Op: dexir.OpMove, Dst: 2, SrcA: 1},
			{Op: dexir.OpMove, Dst: 3, SrcA: 2},
			{Op: dexir.OpConstString, Dst: 4, Str: method},
			{Op: dexir.OpMove, Dst: 5, SrcA: 4},
			{Op: dexir.OpReflectInvoke, ClassReg: 3, MethodReg: 5},
		}
	default:
		body = []dexir.Instruction{
			{Op: dexir.OpConstString, Dst: 1, Str: class},
			{Op: dexir.OpConstString, Dst: 2, Str: method},
			{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 2},
		}
	}
	app := &dexir.App{
		Package:     "com.fuzz",
		Permissions: []string{dexir.PermSystemAlertWindow},
		Components:  []dexir.Component{{Name: cls, Kind: dexir.Activity, EntryPoints: []dexir.MethodRef{onCreate}}},
		Classes:     []dexir.Class{{Name: cls, Methods: []dexir.Method{{Ref: onCreate, Body: body}}}},
	}
	if helpers != nil {
		app.Classes = append(app.Classes, dexir.Class{Name: obf, Methods: helpers})
	}
	return app
}

// FuzzReflectiveConstProp drives the Tier2 resolver with arbitrary name
// pairs and obfuscation shapes. Invariants: the analyzer never panics;
// its sink evidence agrees exactly with the direct dexir.ResolveReflective
// oracle on the unobfuscated pair; and a JSON round trip of the IR — the
// vetd wire path — analyzes identically.
func FuzzReflectiveConstProp(f *testing.F) {
	f.Add("android.view.WindowManager", "addView", 7, uint8(0))
	f.Add("android.view.WindowManager", "removeView", 3, uint8(1))
	f.Add("android.widget.Toast", "setView", 10, uint8(2))
	f.Add("android.widget.Toast", "show", 0, uint8(3))
	f.Add("", "", 0, uint8(0))
	f.Add("java.lang.Runtime", "exec", -5, uint8(1))
	f.Add("android.view.WindowManager", "addView\x00", 1, uint8(2))
	f.Fuzz(func(t *testing.T, class, method string, cut int, mode uint8) {
		app := fuzzReflectApp(class, method, cut, mode)
		onCreate := app.Components[0].EntryPoints[0]
		sinksOf := func(a *dexir.App) []SinkCall {
			return BuildCallGraphTier(a, Tier2).Sinks(onCreate)
		}
		sinks := sinksOf(app)

		ref, ok := dexir.ResolveReflective(class, method)
		if ok && sinkRefs[ref] {
			if len(sinks) != 1 || sinks[0].Sink != ref || !sinks[0].Reflective {
				t.Fatalf("mode %d: Tier2 resolved %v, oracle wants one reflective %s for (%q, %q)",
					mode%4, sinks, ref, class, method)
			}
		} else if len(sinks) != 0 {
			t.Fatalf("mode %d: Tier2 invented sinks %v for (%q, %q)", mode%4, sinks, class, method)
		}

		// Analyze (detectors + evidence accounting) must not panic either.
		res := AnalyzeTier(app, Tier2)

		raw, err := json.Marshal(app)
		if err != nil {
			t.Fatalf("encode IR: %v", err)
		}
		var back dexir.App
		if err := json.Unmarshal(raw, &back); err != nil {
			t.Fatalf("decode IR: %v", err)
		}
		if s2 := sinksOf(&back); len(s2) != len(sinks) {
			t.Fatalf("JSON round trip changed resolution: %v vs %v", sinks, s2)
		}
		res2 := AnalyzeTier(&back, Tier2)
		if res2.SinkSites != res.SinkSites || res2.DrawAndDestroy != res.DrawAndDestroy ||
			res2.ReflectiveSinkSites != res.ReflectiveSinkSites {
			t.Fatalf("JSON round trip changed the analysis: %+v vs %+v", res, res2)
		}
	})
}
