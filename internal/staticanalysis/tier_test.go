package staticanalysis

import (
	"encoding/json"
	"testing"

	"repro/internal/dexir"
)

func TestTierParseAndString(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Tier
	}{
		{"0", Tier0}, {"1", Tier1}, {"2", Tier2},
		{"tier0", Tier0}, {"tier2", Tier2}, {"Tier1", Tier1}, {" 2 ", Tier2},
	} {
		got, err := ParseTier(c.in)
		if err != nil || got != c.want {
			t.Errorf("ParseTier(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
	}
	for _, bad := range []string{"", "3", "-1", "tierX", "full"} {
		if _, err := ParseTier(bad); err == nil {
			t.Errorf("ParseTier(%q) accepted", bad)
		}
	}
	for i, tier := range Tiers() {
		if int(tier) != i {
			t.Errorf("Tiers()[%d] = %v", i, tier)
		}
		if tier.String() == "" || tier.Describe() == "" {
			t.Errorf("%v missing String/Describe", tier)
		}
	}
}

// guardedOverlayApp reaches both overlay sinks, but only behind
// always-false guards — the Tier0 false positive Tier1 exists to kill.
func guardedOverlayApp() *dexir.App {
	cls := dexir.ClassName("com.guard", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	return buildApp("com.guard", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, Guard: dexir.GuardAlwaysFalse},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, Guard: dexir.GuardAlwaysFalse},
		}},
	})
}

func TestTier1PrunesAlwaysFalseGuards(t *testing.T) {
	app := guardedOverlayApp()
	if res := AnalyzeTier(app, Tier0); !res.DrawAndDestroy {
		t.Fatal("Tier0 must keep the paper's over-approximation")
	} else if res.GuardedSinkSites != 2 {
		t.Fatalf("Tier0 guarded evidence sites = %d, want 2", res.GuardedSinkSites)
	}
	for _, tier := range []Tier{Tier1, Tier2} {
		if res := AnalyzeTier(app, tier); res.DrawAndDestroy {
			t.Fatalf("%v reached always-false-guarded sinks", tier)
		}
	}
}

// flagApp guards both overlay sinks with a whole-program boolean flag;
// setVal (and optionally a conflicting second write) defines it.
func flagApp(setVal bool, conflict bool) *dexir.App {
	cls := dexir.ClassName("com.flag", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	clinit := dexir.Ref(cls, "<clinit>", "()V")
	const flag = "Lcom/flag/BuildConfig;->DEBUG_DECOR"
	clinitBody := []dexir.Instruction{{Op: dexir.OpSetFlag, Flag: flag, BoolVal: setVal}}
	if conflict {
		clinitBody = append(clinitBody, dexir.Instruction{Op: dexir.OpSetFlag, Flag: flag, BoolVal: !setVal})
	}
	return buildApp("com.flag", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: clinit, Body: clinitBody},
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: dexir.RefAddView, Guard: dexir.GuardFlag, Flag: flag},
			{Op: dexir.OpInvoke, Target: dexir.RefRemoveView, Guard: dexir.GuardFlag, Flag: flag},
		}},
	})
}

func TestTier2FlagGuards(t *testing.T) {
	// Known-false flag: dead at Tier2, reachable below it.
	app := flagApp(false, false)
	for _, tier := range []Tier{Tier0, Tier1} {
		if res := AnalyzeTier(app, tier); !res.DrawAndDestroy {
			t.Fatalf("%v must keep flag-guarded sinks reachable", tier)
		}
	}
	if res := AnalyzeTier(app, Tier2); res.DrawAndDestroy {
		t.Fatal("Tier2 reached sinks behind a constant-false flag")
	}
	// Known-true flag: live code at every tier.
	if res := AnalyzeTier(flagApp(true, false), Tier2); !res.DrawAndDestroy {
		t.Fatal("Tier2 pruned sinks behind a constant-true flag")
	}
	// Conflicting writes: unknown, so Tier2 stays conservative.
	if res := AnalyzeTier(flagApp(false, true), Tier2); !res.DrawAndDestroy {
		t.Fatal("Tier2 pruned sinks behind a conflicted flag")
	}
}

// splitReflectApp builds the overlay target names from concatenated
// fragments in registers — no contiguous const-string pair for the
// window heuristic, so only Tier2 resolves the sinks.
func splitReflectApp() *dexir.App {
	cls := dexir.ClassName("com.split", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	return buildApp("com.split", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpConstString, Dst: 1, Str: "android.view.Window"},
			{Op: dexir.OpConstString, Dst: 2, Str: "Manager"},
			{Op: dexir.OpConcat, Dst: 3, SrcA: 1, SrcB: 2},
			{Op: dexir.OpConstString, Dst: 4, Str: "add"},
			{Op: dexir.OpConstString, Dst: 5, Str: "View"},
			{Op: dexir.OpConcat, Dst: 6, SrcA: 4, SrcB: 5},
			{Op: dexir.OpReflectInvoke, ClassReg: 3, MethodReg: 6},
			{Op: dexir.OpConstString, Dst: 7, Str: "remove"},
			{Op: dexir.OpConcat, Dst: 8, SrcA: 7, SrcB: 5},
			{Op: dexir.OpMove, Dst: 9, SrcA: 3},
			{Op: dexir.OpReflectInvoke, ClassReg: 9, MethodReg: 8},
		}},
	})
}

func TestTier2SplitReflection(t *testing.T) {
	app := splitReflectApp()
	for _, tier := range []Tier{Tier0, Tier1} {
		if res := AnalyzeTier(app, tier); res.DrawAndDestroy {
			t.Fatalf("%v resolved register-split reflection", tier)
		}
	}
	res := AnalyzeTier(app, Tier2)
	if !res.DrawAndDestroy {
		t.Fatal("Tier2 missed register-split reflection")
	}
	if res.ReflectiveSinkSites != 2 {
		t.Fatalf("Tier2 reflective evidence sites = %d, want 2", res.ReflectiveSinkSites)
	}
}

// crossReflectApp fetches the target names from constant-returning
// helper methods — interprocedural resolution only.
func crossReflectApp() *dexir.App {
	cls := dexir.ClassName("com.cross", "Main")
	obf := dexir.ClassName("com.cross", "Obf")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	target := dexir.Ref(obf, "target", "()Ljava/lang/String;")
	action := dexir.Ref(obf, "action", "()Ljava/lang/String;")
	undo := dexir.Ref(obf, "undo", "()Ljava/lang/String;")
	return &dexir.App{
		Package:     "com.cross",
		Permissions: saw(),
		Components:  []dexir.Component{{Name: cls, Kind: dexir.Activity, EntryPoints: []dexir.MethodRef{onCreate}}},
		Classes: []dexir.Class{
			{Name: cls, Methods: []dexir.Method{
				{Ref: onCreate, Body: []dexir.Instruction{
					{Op: dexir.OpInvoke, Target: target, Dst: 1},
					{Op: dexir.OpInvoke, Target: action, Dst: 2},
					{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 2},
					{Op: dexir.OpInvoke, Target: undo, Dst: 3},
					{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 3},
				}},
			}},
			{Name: obf, Methods: []dexir.Method{
				{Ref: target, Body: []dexir.Instruction{
					{Op: dexir.OpConstString, Dst: 1, Str: "android.view.Window"},
					{Op: dexir.OpConstString, Dst: 2, Str: "Manager"},
					{Op: dexir.OpConcat, Dst: 3, SrcA: 1, SrcB: 2},
					{Op: dexir.OpReturn, SrcA: 3},
				}},
				{Ref: action, Body: []dexir.Instruction{
					{Op: dexir.OpConstString, Dst: 1, Str: "addView"},
					{Op: dexir.OpReturn, SrcA: 1},
				}},
				{Ref: undo, Body: []dexir.Instruction{
					{Op: dexir.OpConstString, Dst: 1, Str: "removeView"},
					{Op: dexir.OpReturn, SrcA: 1},
				}},
			}},
		},
	}
}

func TestTier2CrossMethodReflection(t *testing.T) {
	app := crossReflectApp()
	for _, tier := range []Tier{Tier0, Tier1} {
		if res := AnalyzeTier(app, tier); res.DrawAndDestroy {
			t.Fatalf("%v resolved cross-method reflection", tier)
		}
	}
	if res := AnalyzeTier(app, Tier2); !res.DrawAndDestroy {
		t.Fatal("Tier2 missed cross-method reflection")
	}
}

// TestConstReturnRecursionTerminates: a self-recursive "constant" helper
// must resolve to unknown, not loop or panic.
func TestConstReturnRecursionTerminates(t *testing.T) {
	cls := dexir.ClassName("com.rec", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	self := dexir.Ref(cls, "self", "()Ljava/lang/String;")
	app := buildApp("com.rec", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: self, Dst: 1},
			{Op: dexir.OpConstString, Dst: 2, Str: "addView"},
			{Op: dexir.OpReflectInvoke, ClassReg: 1, MethodReg: 2},
		}},
		{Ref: self, Body: []dexir.Instruction{
			{Op: dexir.OpInvoke, Target: self, Dst: 1},
			{Op: dexir.OpReturn, SrcA: 1},
		}},
	})
	if res := AnalyzeTier(app, Tier2); res.DrawAndDestroy {
		t.Fatal("recursive helper resolved to a constant")
	}
}

// TestConstReturnConflictingReturns: a helper returning two different
// constants is not a constant.
func TestConstReturnConflictingReturns(t *testing.T) {
	obf := dexir.ClassName("com.conf", "Obf")
	target := dexir.Ref(obf, "target", "()Ljava/lang/String;")
	app := crossReflectApp()
	app.Classes[1].Methods[0] = dexir.Method{Ref: target, Body: []dexir.Instruction{
		{Op: dexir.OpConstString, Dst: 1, Str: "android.view.WindowManager"},
		{Op: dexir.OpReturn, SrcA: 1},
		{Op: dexir.OpConstString, Dst: 1, Str: "java.lang.Runtime"},
		{Op: dexir.OpReturn, SrcA: 1},
	}}
	if res := AnalyzeTier(app, Tier2); res.DrawAndDestroy {
		t.Fatal("conflicting-return helper resolved to a constant")
	}
}

// TestTier0IdentityOnNewOps: an app using the dataflow ops analyzes at
// Tier0 exactly as if they weren't there — the window heuristic still
// applies, register names never resolve, nothing is pruned. This is the
// unit-level face of the corpus byte-identity guarantee.
func TestTier0IdentityOnNewOps(t *testing.T) {
	res := AnalyzeTier(splitReflectApp(), Tier0)
	if res.DrawAndDestroy || res.SinkSites != 0 {
		t.Fatalf("Tier0 changed behavior on dataflow ops: %+v", res)
	}
	if res.Tier != Tier0 {
		t.Fatalf("result tier = %v", res.Tier)
	}
	// And the window heuristic still works when register hints are absent.
	cls := dexir.ClassName("com.win", "Main")
	onCreate := dexir.Ref(cls, "onCreate", "(Landroid/os/Bundle;)V")
	app := buildApp("com.win", saw(), dexir.Activity, []dexir.MethodRef{onCreate}, []dexir.Method{
		{Ref: onCreate, Body: []dexir.Instruction{
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "addView"},
			{Op: dexir.OpReflectInvoke},
			{Op: dexir.OpConstString, Str: "android.view.WindowManager"},
			{Op: dexir.OpConstString, Str: "removeView"},
			{Op: dexir.OpReflectInvoke},
		}},
	})
	for _, tier := range Tiers() {
		if res := AnalyzeTier(app, tier); !res.DrawAndDestroy {
			t.Fatalf("%v broke window-resolved reflection", tier)
		}
	}
}

// TestNewOpsAbsentFromLegacyJSON: the dataflow fields are omitempty, so
// legacy IR (no registers, no flags) marshals byte-identically to what it
// did before the ops existed — vetd's content addresses must not move.
func TestNewOpsAbsentFromLegacyJSON(t *testing.T) {
	b, err := json.Marshal(dexir.Instruction{Op: dexir.OpInvoke, Target: dexir.RefAddView})
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"Dst", "SrcA", "SrcB", "ClassReg", "MethodReg", "Flag", "BoolVal"} {
		if json.Valid(b) && containsField(b, field) {
			t.Fatalf("legacy instruction JSON grew field %s: %s", field, b)
		}
	}
}

func containsField(b []byte, name string) bool {
	var m map[string]any
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[name]
	return ok
}
