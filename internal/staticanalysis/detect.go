package staticanalysis

import (
	"fmt"
	"strings"

	"repro/internal/dexir"
)

// Capability enumerates the tapjacking capabilities the detectors find.
type Capability int

// Capabilities.
const (
	// CapDrawAndDestroy: WindowManager.addView and removeView both
	// reachable from one component in an app holding SYSTEM_ALERT_WINDOW
	// (the §III overlay attack's static signature).
	CapDrawAndDestroy Capability = iota
	// CapToastReplace: Toast.setView plus a re-enqueued Toast.show
	// reachable from a repeating callback (the §IV toast attack).
	CapToastReplace
	// CapA11yTiming: an accessibility service whose event handler reaches
	// the overlay calls (the §V attack-trigger wiring).
	CapA11yTiming
)

// String names the capability for reports.
func (c Capability) String() string {
	switch c {
	case CapDrawAndDestroy:
		return "draw-and-destroy-overlay"
	case CapToastReplace:
		return "toast-replacement"
	case CapA11yTiming:
		return "a11y-assisted-timing"
	}
	return fmt.Sprintf("capability(%d)", int(c))
}

// SinkEvidence ties one sink call site to the entry-point path that
// reaches it — the per-detector evidence trace of a vetting verdict.
type SinkEvidence struct {
	SinkCall
	// Path is the entry-point→containing-method discovery chain.
	Path []dexir.MethodRef
	// ViaCallback and ViaRepeating describe the path context.
	ViaCallback  bool
	ViaRepeating bool
}

// String renders the trace compactly: entry → … → method ⇒ sink.
func (e SinkEvidence) String() string {
	var sb strings.Builder
	for i, p := range e.Path {
		if i > 0 {
			sb.WriteString(" → ")
		}
		sb.WriteString(p.Class() + "." + p.Name())
	}
	fmt.Fprintf(&sb, " ⇒ %s", e.Sink.Name())
	var flags []string
	if e.Reflective {
		flags = append(flags, "reflective")
	}
	if e.InLoop {
		flags = append(flags, "loop")
	}
	if e.ViaCallback {
		flags = append(flags, "handler")
	}
	if e.ViaRepeating {
		flags = append(flags, "repeating")
	}
	if e.Guarded {
		flags = append(flags, "guarded")
	}
	if len(flags) > 0 {
		fmt.Fprintf(&sb, " [%s]", strings.Join(flags, ","))
	}
	return sb.String()
}

// Finding is one positive detector result for one component.
type Finding struct {
	Detector   string
	Capability Capability
	Component  string
	Kind       dexir.ComponentKind
	// Evidence holds one trace per contributing sink call.
	Evidence []SinkEvidence
	// LoopContext: some contributing sink sits in a loop or repeating
	// callback; HandlerContext: some trace crosses a handler edge.
	LoopContext    bool
	HandlerContext bool
}

// Detector is a pluggable capability detector.
type Detector interface {
	Name() string
	Detect(app *dexir.App, g *CallGraph) []Finding
}

// componentSinks gathers evidence for every reachable sink call of the
// wanted kinds from one component's entry points.
func componentSinks(g *CallGraph, c dexir.Component, wanted map[dexir.MethodRef]bool) []SinkEvidence {
	reach := g.ReachableFrom(c.EntryPoints)
	var out []SinkEvidence
	for ci := range g.app.Classes {
		for mi := range g.app.Classes[ci].Methods {
			ref := g.app.Classes[ci].Methods[mi].Ref
			if !reach.Contains(ref) {
				continue
			}
			for _, s := range g.Sinks(ref) {
				if !wanted[s.Sink] {
					continue
				}
				out = append(out, SinkEvidence{
					SinkCall:     s,
					Path:         reach.Path(ref),
					ViaCallback:  reach.ViaCallback(ref),
					ViaRepeating: reach.ViaRepeating(ref),
				})
			}
		}
	}
	return out
}

// DrawAndDestroyDetector finds the §III overlay-attack capability.
type DrawAndDestroyDetector struct{}

// Name implements Detector.
func (DrawAndDestroyDetector) Name() string { return "draw-and-destroy" }

// Detect implements Detector.
func (DrawAndDestroyDetector) Detect(app *dexir.App, g *CallGraph) []Finding {
	if !app.HasPermission(dexir.PermSystemAlertWindow) {
		return nil
	}
	var out []Finding
	for _, c := range app.Components {
		ev := componentSinks(g, c, map[dexir.MethodRef]bool{
			dexir.RefAddView:    true,
			dexir.RefRemoveView: true,
		})
		var add, rm bool
		f := Finding{Detector: "draw-and-destroy", Capability: CapDrawAndDestroy, Component: c.Name, Kind: c.Kind}
		for _, e := range ev {
			switch e.Sink {
			case dexir.RefAddView:
				add = true
			case dexir.RefRemoveView:
				rm = true
			}
			if e.InLoop || e.ViaRepeating || g.RegistersSelf(e.In) {
				f.LoopContext = true
			}
			if e.ViaCallback {
				f.HandlerContext = true
			}
		}
		if add && rm {
			f.Evidence = ev
			out = append(out, f)
		}
	}
	return out
}

// ToastReplaceDetector finds the §IV toast-attack capability.
type ToastReplaceDetector struct{}

// Name implements Detector.
func (ToastReplaceDetector) Name() string { return "toast-replace" }

// Detect implements Detector.
func (ToastReplaceDetector) Detect(app *dexir.App, g *CallGraph) []Finding {
	var out []Finding
	for _, c := range app.Components {
		ev := componentSinks(g, c, map[dexir.MethodRef]bool{
			dexir.RefToastSetView: true,
			dexir.RefToastShow:    true,
		})
		var setView bool
		var reShow []SinkEvidence
		for _, e := range ev {
			switch e.Sink {
			case dexir.RefToastSetView:
				setView = true
			case dexir.RefToastShow:
				// The re-enqueue signature: show() issued from a method
				// that re-registers itself, or reached via a repeating
				// scheduler.
				if g.RegistersSelf(e.In) || e.ViaRepeating {
					reShow = append(reShow, e)
				}
			}
		}
		if setView && len(reShow) > 0 {
			out = append(out, Finding{
				Detector:       "toast-replace",
				Capability:     CapToastReplace,
				Component:      c.Name,
				Kind:           c.Kind,
				Evidence:       ev,
				LoopContext:    true,
				HandlerContext: true,
			})
		}
	}
	return out
}

// A11yTimingDetector finds accessibility services whose event handler
// reaches the overlay sinks — the §V event-driven attack trigger.
type A11yTimingDetector struct{}

// Name implements Detector.
func (A11yTimingDetector) Name() string { return "a11y-timing" }

// Detect implements Detector.
func (A11yTimingDetector) Detect(app *dexir.App, g *CallGraph) []Finding {
	var out []Finding
	for _, c := range app.Components {
		if c.Kind != dexir.AccessibilityService {
			continue
		}
		ev := componentSinks(g, c, map[dexir.MethodRef]bool{
			dexir.RefAddView:    true,
			dexir.RefRemoveView: true,
		})
		if len(ev) == 0 {
			continue
		}
		f := Finding{Detector: "a11y-timing", Capability: CapA11yTiming, Component: c.Name, Kind: c.Kind, Evidence: ev}
		for _, e := range ev {
			if e.InLoop || e.ViaRepeating {
				f.LoopContext = true
			}
			if e.ViaCallback {
				f.HandlerContext = true
			}
		}
		out = append(out, f)
	}
	return out
}

// DefaultDetectors returns the three paper-derived detectors.
func DefaultDetectors() []Detector {
	return []Detector{DrawAndDestroyDetector{}, ToastReplaceDetector{}, A11yTimingDetector{}}
}

// Result is the per-app analysis outcome.
type Result struct {
	// DrawAndDestroy, ToastReplace, A11yTiming report detector verdicts.
	DrawAndDestroy bool
	ToastReplace   bool
	A11yTiming     bool
	// SetViewReachable is the §VI-C2 "customized toast" feature: a
	// Toast.setView call reachable from some component (capability or
	// not).
	SetViewReachable bool
	// Tier records the precision tier the analysis ran at.
	Tier Tier
	// SinkSites counts the evidence call sites across all findings;
	// GuardedSinkSites and ReflectiveSinkSites break them down by the
	// SinkCall flags, so a tier-to-tier verdict delta is explainable
	// from the evidence mix (guarded sites vanish at Tier1+, reflective
	// sites appear at Tier2).
	SinkSites           int
	GuardedSinkSites    int
	ReflectiveSinkSites int
	// Findings carries the evidence traces behind the verdicts.
	Findings []Finding
}

// Analyzer runs a detector suite over apps at one precision tier.
type Analyzer struct {
	detectors []Detector
	tier      Tier
}

// NewAnalyzer builds a Tier0 (paper-baseline) analyzer; with no arguments
// it uses the default detector suite.
func NewAnalyzer(detectors ...Detector) *Analyzer {
	return NewAnalyzerTier(Tier0, detectors...)
}

// NewAnalyzerTier builds an analyzer running at the given precision tier;
// with no detectors it uses the default suite.
func NewAnalyzerTier(tier Tier, detectors ...Detector) *Analyzer {
	if len(detectors) == 0 {
		detectors = DefaultDetectors()
	}
	return &Analyzer{detectors: detectors, tier: tier}
}

// Tier reports the analyzer's precision tier.
func (a *Analyzer) Tier() Tier { return a.tier }

// Analyze builds the call graph at the analyzer's tier and runs every
// detector.
func (a *Analyzer) Analyze(app *dexir.App) Result {
	g := BuildCallGraphTier(app, a.tier)
	res := Result{Tier: a.tier}
	for _, d := range a.detectors {
		for _, f := range d.Detect(app, g) {
			res.Findings = append(res.Findings, f)
			switch f.Capability {
			case CapDrawAndDestroy:
				res.DrawAndDestroy = true
			case CapToastReplace:
				res.ToastReplace = true
			case CapA11yTiming:
				res.A11yTiming = true
			}
			for _, e := range f.Evidence {
				res.SinkSites++
				if e.Guarded {
					res.GuardedSinkSites++
				}
				if e.Reflective {
					res.ReflectiveSinkSites++
				}
			}
		}
	}
	// Feature-level customized-toast reachability (independent of the
	// capability verdict).
	for _, c := range app.Components {
		if len(componentSinks(g, c, map[dexir.MethodRef]bool{dexir.RefToastSetView: true})) > 0 {
			res.SetViewReachable = true
			break
		}
	}
	return res
}

// Analyze runs the default detector suite over one app at Tier0, the
// paper-baseline configuration.
func Analyze(app *dexir.App) Result {
	return NewAnalyzer().Analyze(app)
}

// AnalyzeTier runs the default detector suite over one app at the given
// precision tier.
func AnalyzeTier(app *dexir.App, tier Tier) Result {
	return NewAnalyzerTier(tier).Analyze(app)
}
