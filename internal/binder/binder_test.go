package binder

import (
	"testing"
	"testing/quick"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

func newTestBus(t *testing.T, latency LatencyFunc) (*Bus, *simclock.Clock) {
	t.Helper()
	clock := simclock.New()
	bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(1), Latency: latency})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	return bus, clock
}

func TestNewBusValidation(t *testing.T) {
	if _, err := NewBus(Config{RNG: simrand.New(1)}); err == nil {
		t.Fatal("nil clock accepted")
	}
	if _, err := NewBus(Config{Clock: simclock.New()}); err == nil {
		t.Fatal("nil rng accepted")
	}
}

func TestRegisterValidation(t *testing.T) {
	bus, _ := newTestBus(t, nil)
	if err := bus.Register("", func(Transaction) {}); err == nil {
		t.Fatal("empty id accepted")
	}
	if err := bus.Register("p", nil); err == nil {
		t.Fatal("nil handler accepted")
	}
	if err := bus.Register("p", func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := bus.Register("p", func(Transaction) {}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestCallDeliversWithLatency(t *testing.T) {
	latency := func(from, to ProcessID, method string) simrand.Dist {
		return simrand.Constant(5)
	}
	bus, clock := newTestBus(t, latency)
	var got []Transaction
	if err := bus.Register(SystemServer, func(tx Transaction) { got = append(got, tx) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	id, err := bus.Call("app", SystemServer, "addView", 42)
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if id == 0 {
		t.Fatal("transaction id = 0, want > 0")
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(got) != 1 {
		t.Fatalf("delivered %d transactions, want 1", len(got))
	}
	tx := got[0]
	if tx.From != "app" || tx.To != SystemServer || tx.Method != "addView" {
		t.Fatalf("tx = %+v", tx)
	}
	if v, ok := tx.Payload.(int); !ok || v != 42 {
		t.Fatalf("payload = %v", tx.Payload)
	}
	if tx.SentAt != 0 || tx.DeliveredAt != 5*time.Millisecond {
		t.Fatalf("timestamps = (%v,%v), want (0,5ms)", tx.SentAt, tx.DeliveredAt)
	}
}

func TestCallUnregisteredFails(t *testing.T) {
	bus, _ := newTestBus(t, nil)
	if _, err := bus.Call("app", "nobody", "m", nil); err == nil {
		t.Fatal("call to unregistered process succeeded")
	}
	if bus.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", bus.Dropped())
	}
}

// TestCrossMethodOvertaking reproduces the paper's key Binder observation:
// removeView sent at t=0 with latency Trm=8ms is overtaken by addView sent
// at t=1ms with latency Tam=3ms.
func TestCrossMethodOvertaking(t *testing.T) {
	latency := func(_, _ ProcessID, method string) simrand.Dist {
		switch method {
		case "removeView":
			return simrand.Constant(8)
		case "addView":
			return simrand.Constant(3)
		default:
			return simrand.Dist{}
		}
	}
	bus, clock := newTestBus(t, latency)
	var order []string
	if err := bus.Register(SystemServer, func(tx Transaction) { order = append(order, tx.Method) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := bus.Call("app", SystemServer, "removeView", nil); err != nil {
		t.Fatalf("Call remove: %v", err)
	}
	clock.MustAfter(time.Millisecond, "send-add", func() {
		if _, err := bus.Call("app", SystemServer, "addView", nil); err != nil {
			t.Errorf("Call add: %v", err)
		}
	})
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(order) != 2 || order[0] != "addView" || order[1] != "removeView" {
		t.Fatalf("delivery order = %v, want [addView removeView]", order)
	}
}

// TestSameStreamFIFO checks that two calls on the same method stream never
// reorder even when the second samples a smaller latency.
func TestSameStreamFIFO(t *testing.T) {
	// High-variance latency to provoke reordering attempts.
	latency := func(_, _ ProcessID, _ string) simrand.Dist {
		return simrand.NormalDist(5, 4)
	}
	bus, clock := newTestBus(t, latency)
	var seen []int
	if err := bus.Register(SystemServer, func(tx Transaction) {
		if v, ok := tx.Payload.(int); ok {
			seen = append(seen, v)
		}
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	const n = 200
	for i := 0; i < n; i++ {
		if _, err := bus.Call("app", SystemServer, "addView", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("stream reordered at %d: got %d", i, v)
		}
	}
}

func TestLogRecordsDeliveries(t *testing.T) {
	bus, clock := newTestBus(t, nil)
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 5; i++ {
		if _, err := bus.Call("app", SystemServer, "m", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	log := bus.Log()
	if len(log) != 5 {
		t.Fatalf("log has %d entries, want 5", len(log))
	}
	for i := 1; i < len(log); i++ {
		if log[i].DeliveredAt < log[i-1].DeliveredAt {
			t.Fatal("log not in delivery order")
		}
		if log[i].ID <= log[i-1].ID {
			t.Fatal("transaction ids not increasing")
		}
	}
	bus.ResetLog()
	if len(bus.Log()) != 0 {
		t.Fatal("ResetLog did not clear the log")
	}
}

func TestLogSince(t *testing.T) {
	latency := func(_, _ ProcessID, _ string) simrand.Dist { return simrand.Constant(10) }
	bus, clock := newTestBus(t, latency)
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := bus.Call("a", SystemServer, "m", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	clock.MustAfter(50*time.Millisecond, "later", func() {
		if _, err := bus.Call("a", SystemServer, "m", nil); err != nil {
			t.Errorf("Call: %v", err)
		}
	})
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	since := bus.LogSince(30 * time.Millisecond)
	if len(since) != 1 {
		t.Fatalf("LogSince returned %d entries, want 1", len(since))
	}
	if since[0].DeliveredAt != 60*time.Millisecond {
		t.Fatalf("DeliveredAt = %v, want 60ms", since[0].DeliveredAt)
	}
}

func TestLogLimitTrims(t *testing.T) {
	clock := simclock.New()
	bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(1), LogLimit: 10})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	for i := 0; i < 100; i++ {
		if _, err := bus.Call("a", SystemServer, "m", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if n := len(bus.Log()); n > 10 {
		t.Fatalf("log grew to %d entries, limit 10", n)
	}
	// Newest entries survive.
	log := bus.Log()
	if last, ok := log[len(log)-1].Payload.(int); !ok || last != 99 {
		t.Fatalf("newest entry payload = %v, want 99", log[len(log)-1].Payload)
	}
}

// TestDroppedLogEntriesCounted: log eviction is not silent — the number of
// evicted transactions is observable, and the total of kept plus dropped
// accounts for every delivery.
func TestDroppedLogEntriesCounted(t *testing.T) {
	clock := simclock.New()
	bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(1), LogLimit: 10})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if got := bus.DroppedLogEntries(); got != 0 {
		t.Fatalf("DroppedLogEntries before any calls = %d, want 0", got)
	}
	const total = 100
	for i := 0; i < total; i++ {
		if _, err := bus.Call("a", SystemServer, "m", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	dropped := bus.DroppedLogEntries()
	if dropped == 0 {
		t.Fatal("100 deliveries through a 10-entry log dropped nothing")
	}
	if kept := uint64(len(bus.Log())); kept+dropped != total {
		t.Fatalf("kept %d + dropped %d != %d deliveries", kept, dropped, total)
	}
}

func TestNegativeLogLimitDisablesLogging(t *testing.T) {
	clock := simclock.New()
	bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(1), LogLimit: -1})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if _, err := bus.Call("a", SystemServer, "m", nil); err != nil {
		t.Fatalf("Call: %v", err)
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(bus.Log()) != 0 {
		t.Fatal("logging disabled but log non-empty")
	}
}

func TestObserverSeesAllDeliveries(t *testing.T) {
	bus, clock := newTestBus(t, nil)
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	count := 0
	bus.Observe(func(Transaction) { count++ })
	bus.Observe(nil) // must be ignored
	for i := 0; i < 7; i++ {
		if _, err := bus.Call("a", SystemServer, "m", nil); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 7 {
		t.Fatalf("observer saw %d deliveries, want 7", count)
	}
}

// Property: for any latency means, per-stream delivery order matches send
// order and timestamps are consistent (DeliveredAt >= SentAt).
func TestPropertyStreamOrderAndTimestamps(t *testing.T) {
	prop := func(seed int64, meansRaw []uint8) bool {
		clock := simclock.New()
		bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(seed)})
		if err != nil {
			return false
		}
		var seen []Transaction
		if err := bus.Register(SystemServer, func(tx Transaction) { seen = append(seen, tx) }); err != nil {
			return false
		}
		bus.latency = func(_, _ ProcessID, _ string) simrand.Dist {
			return simrand.NormalDist(10, 8)
		}
		n := len(meansRaw)
		if n > 50 {
			n = 50
		}
		for i := 0; i < n; i++ {
			if _, err := bus.Call("a", SystemServer, "m", i); err != nil {
				return false
			}
		}
		if err := clock.Run(); err != nil {
			return false
		}
		if len(seen) != n {
			return false
		}
		for i, tx := range seen {
			if v, ok := tx.Payload.(int); !ok || v != i {
				return false
			}
			if tx.DeliveredAt < tx.SentAt {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}
