package binder

import (
	"testing"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

// scriptedInjector adjudicates transactions by call index, so tests control
// exactly which transactions are dropped, duplicated or delayed.
type scriptedInjector struct {
	n      int
	decide func(i int, method string) TxFault
}

func (s *scriptedInjector) TransactionFault(_, _ ProcessID, method string) TxFault {
	f := s.decide(s.n, method)
	s.n++
	return f
}

// TestInjectedDropAccountingExact: every injected drop is counted, the
// caller still sees oneway success (non-zero id, nil error), and
// delivered + InjectedDrops accounts for every attempted call.
func TestInjectedDropAccountingExact(t *testing.T) {
	bus, clock := newTestBus(t, nil)
	delivered := 0
	if err := bus.Register(SystemServer, func(Transaction) { delivered++ }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	bus.SetFaultInjector(&scriptedInjector{decide: func(i int, _ string) TxFault {
		return TxFault{Drop: i%3 == 0} // drop calls 0, 3, 6, ...
	}})
	const attempts = 10
	for i := 0; i < attempts; i++ {
		id, err := bus.Call("app", SystemServer, "addView", i)
		if err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
		if id == 0 {
			t.Fatalf("Call %d: id = 0 for a dropped oneway call, want the assigned id", i)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	const wantDrops = 4 // indices 0, 3, 6, 9
	if got := bus.InjectedDrops(); got != wantDrops {
		t.Fatalf("InjectedDrops = %d, want %d", got, wantDrops)
	}
	if delivered != attempts-wantDrops {
		t.Fatalf("delivered = %d, want %d", delivered, attempts-wantDrops)
	}
	if uint64(delivered)+bus.InjectedDrops()+bus.Dropped() != attempts {
		t.Fatalf("accounting broken: delivered %d + injected %d + dropped %d != %d attempts",
			delivered, bus.InjectedDrops(), bus.Dropped(), attempts)
	}
}

// TestDuplicateFaultDeliversTwice: a duplicated transaction is delivered and
// logged twice with the same id, and is not counted as any kind of drop.
func TestDuplicateFaultDeliversTwice(t *testing.T) {
	bus, clock := newTestBus(t, nil)
	var ids []uint64
	if err := bus.Register(SystemServer, func(tx Transaction) { ids = append(ids, tx.ID) }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	bus.SetFaultInjector(&scriptedInjector{decide: func(i int, _ string) TxFault {
		return TxFault{Duplicate: i == 1}
	}})
	for i := 0; i < 3; i++ {
		if _, err := bus.Call("app", SystemServer, "m", i); err != nil {
			t.Fatalf("Call %d: %v", i, err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(ids) != 4 {
		t.Fatalf("delivered %d transactions, want 4 (3 calls + 1 duplicate)", len(ids))
	}
	dupSeen := 0
	for _, id := range ids {
		if id == 2 {
			dupSeen++
		}
	}
	if dupSeen != 2 {
		t.Fatalf("duplicated id 2 delivered %d times, want 2", dupSeen)
	}
	if got := len(bus.Log()); got != 4 {
		t.Fatalf("log has %d entries, want 4", got)
	}
	if bus.InjectedDrops() != 0 || bus.Dropped() != 0 {
		t.Fatalf("duplicate counted as drop: injected %d, dropped %d", bus.InjectedDrops(), bus.Dropped())
	}
}

// TestDelayFaultKeepsStreamFIFO: reorder pressure (a large injected delay on
// one call) must not reorder the same (from,to,method) stream, and delayed
// deliveries still satisfy DeliveredAt >= SentAt.
func TestDelayFaultKeepsStreamFIFO(t *testing.T) {
	latency := func(_, _ ProcessID, _ string) simrand.Dist { return simrand.Constant(2) }
	bus, clock := newTestBus(t, latency)
	var seen []int
	if err := bus.Register(SystemServer, func(tx Transaction) {
		if tx.DeliveredAt < tx.SentAt {
			t.Errorf("tx %d delivered at %v before sent at %v", tx.ID, tx.DeliveredAt, tx.SentAt)
		}
		seen = append(seen, tx.Payload.(int))
	}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	bus.SetFaultInjector(&scriptedInjector{decide: func(i int, _ string) TxFault {
		if i == 0 {
			return TxFault{Delay: 500 * time.Millisecond}
		}
		return TxFault{}
	}})
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := bus.Call("app", SystemServer, "addView", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != n {
		t.Fatalf("delivered %d, want %d", len(seen), n)
	}
	for i, v := range seen {
		if v != i {
			t.Fatalf("stream reordered at %d: got %d (delay fault broke per-stream FIFO)", i, v)
		}
	}
}

// TestDroppedLogEvictionExactUnderFaults: with faults thinning and
// duplicating the stream through a tiny log, kept + evicted still equals the
// exact number of deliveries (counted independently by an observer), and
// injected drops never reach the log at all.
func TestDroppedLogEvictionExactUnderFaults(t *testing.T) {
	clock := simclock.New()
	bus, err := NewBus(Config{Clock: clock, RNG: simrand.New(1), LogLimit: 8})
	if err != nil {
		t.Fatalf("NewBus: %v", err)
	}
	if err := bus.Register(SystemServer, func(Transaction) {}); err != nil {
		t.Fatalf("Register: %v", err)
	}
	deliveries := uint64(0)
	bus.Observe(func(Transaction) { deliveries++ })
	bus.SetFaultInjector(&scriptedInjector{decide: func(i int, _ string) TxFault {
		switch i % 5 {
		case 0:
			return TxFault{Drop: true}
		case 1:
			return TxFault{Duplicate: true}
		default:
			return TxFault{}
		}
	}})
	const attempts = 100
	for i := 0; i < attempts; i++ {
		if _, err := bus.Call("a", SystemServer, "m", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// 100 attempts: 20 dropped, 80 delivered once, 20 of those again = 100.
	if got := bus.InjectedDrops(); got != 20 {
		t.Fatalf("InjectedDrops = %d, want 20", got)
	}
	if deliveries != 100 {
		t.Fatalf("observer counted %d deliveries, want 100", deliveries)
	}
	kept := uint64(len(bus.Log()))
	if kept == 0 || kept > 8 {
		t.Fatalf("log has %d entries, want 1..8", kept)
	}
	if kept+bus.DroppedLogEntries() != deliveries {
		t.Fatalf("kept %d + evicted %d != %d deliveries", kept, bus.DroppedLogEntries(), deliveries)
	}
}

// TestNilInjectorIsNoOp: clearing the injector restores untouched delivery.
func TestNilInjectorIsNoOp(t *testing.T) {
	bus, clock := newTestBus(t, nil)
	delivered := 0
	if err := bus.Register(SystemServer, func(Transaction) { delivered++ }); err != nil {
		t.Fatalf("Register: %v", err)
	}
	bus.SetFaultInjector(&scriptedInjector{decide: func(int, string) TxFault { return TxFault{Drop: true} }})
	bus.SetFaultInjector(nil)
	for i := 0; i < 5; i++ {
		if _, err := bus.Call("a", SystemServer, "m", i); err != nil {
			t.Fatalf("Call: %v", err)
		}
	}
	if err := clock.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if delivered != 5 || bus.InjectedDrops() != 0 {
		t.Fatalf("delivered %d (want 5), InjectedDrops %d (want 0)", delivered, bus.InjectedDrops())
	}
}
