// Package binder simulates the slice of Android's Binder IPC that the
// paper's attacks and defenses depend on: asynchronous transactions between
// named processes, per-call latency sampled from a device profile, and a
// transaction log with caller identity and timestamps (the raw material of
// the Section VII-A IPC-based defense).
//
// Delivery semantics follow the paper's empirical observations rather than
// a strict global FIFO: calls on the same (from, to, method) stream are
// delivered in order, but calls on different methods may overtake each
// other — the paper observes that an addView issued *after* a removeView
// still reaches System Server first because the two travel different Binder
// paths with different latencies (Tam < Trm).
package binder

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/simclock"
	"repro/internal/simrand"
)

// ProcessID names a simulated process, e.g. "com.evil.app",
// "system_server" or "com.android.systemui".
type ProcessID string

// Well-known system processes.
const (
	SystemServer ProcessID = "system_server"
	SystemUI     ProcessID = "com.android.systemui"
)

// Transaction is one Binder call in flight or in the log.
type Transaction struct {
	// ID is a unique, monotonically increasing transaction id.
	ID uint64
	// From and To identify the caller and callee processes.
	From, To ProcessID
	// Method is the remote method name, e.g. "addView".
	Method string
	// Payload carries the argument object; handlers type-assert it.
	Payload any
	// SentAt and DeliveredAt are virtual timestamps.
	SentAt, DeliveredAt time.Duration
}

// Handler receives delivered transactions for one endpoint.
type Handler func(tx Transaction)

// Observer is notified of every delivered transaction; the IPC defense
// installs one to collect the per-caller add/remove pattern.
type Observer func(tx Transaction)

// LatencyFunc supplies the latency distribution for a call; the device
// profile implements it. Returning the zero Dist means instant delivery.
type LatencyFunc func(from, to ProcessID, method string) simrand.Dist

// TxFault describes injected misbehaviour for one transaction: Drop
// discards it after an id is assigned (the caller still sees success —
// oneway semantics), Duplicate delivers it twice, Delay adds extra latency
// before the per-stream FIFO clamp (delaying one stream lets calls on
// other streams overtake — reordering pressure).
type TxFault struct {
	Drop      bool
	Duplicate bool
	Delay     time.Duration
}

// FaultInjector decides the fate of each transaction; the fault plane
// implements it. The zero TxFault leaves the transaction untouched.
type FaultInjector interface {
	TransactionFault(from, to ProcessID, method string) TxFault
}

// Bus routes transactions between registered endpoints on the simulation
// clock.
type Bus struct {
	clock    *simclock.Clock
	rng      *simrand.Source
	latency  LatencyFunc
	handlers map[ProcessID]Handler
	nextID   uint64

	// lastDelivery enforces per-stream FIFO: a call may not be delivered
	// before an earlier call on the same (from,to,method) stream.
	lastDelivery map[streamKey]time.Duration

	log       []Transaction
	logLimit  int
	observers []Observer

	faults FaultInjector

	dropped       uint64
	droppedLog    uint64
	injectedDrops uint64
}

type streamKey struct {
	from, to ProcessID
	method   string
}

// Config configures a Bus.
type Config struct {
	// Clock drives delivery; required.
	Clock *simclock.Clock
	// RNG samples latencies; required.
	RNG *simrand.Source
	// Latency supplies per-call latency distributions; nil means all
	// calls deliver instantly (useful in unit tests).
	Latency LatencyFunc
	// LogLimit caps the in-memory transaction log; zero selects a
	// generous default, negative disables logging.
	LogLimit int
}

// defaultLogLimit bounds the transaction log so week-long simulated attacks
// do not hold every transaction in memory.
const defaultLogLimit = 1 << 20

// NewBus builds a Bus.
func NewBus(cfg Config) (*Bus, error) {
	if cfg.Clock == nil {
		return nil, errors.New("binder: nil clock")
	}
	if cfg.RNG == nil {
		return nil, errors.New("binder: nil rng")
	}
	limit := cfg.LogLimit
	if limit == 0 {
		limit = defaultLogLimit
	}
	return &Bus{
		clock:        cfg.Clock,
		rng:          cfg.RNG,
		latency:      cfg.Latency,
		handlers:     make(map[ProcessID]Handler),
		lastDelivery: make(map[streamKey]time.Duration),
		logLimit:     limit,
	}, nil
}

// Register installs the handler for a process. Registering a process twice
// is an error; registering a nil handler is an error.
func (b *Bus) Register(id ProcessID, h Handler) error {
	if id == "" {
		return errors.New("binder: empty process id")
	}
	if h == nil {
		return fmt.Errorf("binder: nil handler for %q", id)
	}
	if _, dup := b.handlers[id]; dup {
		return fmt.Errorf("binder: process %q already registered", id)
	}
	b.handlers[id] = h
	return nil
}

// Observe installs an observer notified of every delivered transaction.
func (b *Bus) Observe(obs Observer) {
	if obs != nil {
		b.observers = append(b.observers, obs)
	}
}

// SetFaultInjector installs fi to adjudicate every subsequent Call. A nil
// injector (the default) leaves every transaction untouched.
func (b *Bus) SetFaultInjector(fi FaultInjector) { b.faults = fi }

// Call sends an asynchronous (oneway) transaction from one process to
// another. It returns the assigned transaction id. Calls to unregistered
// processes are counted as dropped and return an error.
func (b *Bus) Call(from, to ProcessID, method string, payload any) (uint64, error) {
	handler, ok := b.handlers[to]
	if !ok {
		b.dropped++
		return 0, fmt.Errorf("binder: no process %q registered (call %s from %q)", to, method, from)
	}
	b.nextID++
	tx := Transaction{
		ID:      b.nextID,
		From:    from,
		To:      to,
		Method:  method,
		Payload: payload,
		SentAt:  b.clock.Now(),
	}
	var fault TxFault
	if b.faults != nil {
		fault = b.faults.TransactionFault(from, to, method)
	}
	if fault.Drop {
		// The transaction vanishes in flight. Oneway callers see success
		// (there is no reply to miss), so the id is still returned; only
		// the injected-drop counter records the loss.
		b.injectedDrops++
		return tx.ID, nil
	}
	delay := time.Duration(0)
	if b.latency != nil {
		delay = b.latency(from, to, method).Sample(b.rng)
	}
	delay += fault.Delay
	deliverAt := b.clock.Now() + delay
	key := streamKey{from: from, to: to, method: method}
	if last, ok := b.lastDelivery[key]; ok && deliverAt < last {
		deliverAt = last // per-stream FIFO
	}
	b.lastDelivery[key] = deliverAt
	label := fmt.Sprintf("binder:%s→%s.%s", from, to, method)
	deliver := func() {
		tx.DeliveredAt = b.clock.Now()
		b.record(tx)
		handler(tx)
	}
	if _, err := b.clock.At(deliverAt, label, deliver); err != nil {
		return 0, fmt.Errorf("binder: schedule delivery: %w", err)
	}
	if fault.Duplicate {
		if _, err := b.clock.At(deliverAt, label+"/dup", deliver); err != nil {
			return 0, fmt.Errorf("binder: schedule duplicate delivery: %w", err)
		}
	}
	return tx.ID, nil
}

func (b *Bus) record(tx Transaction) {
	if b.logLimit < 0 {
		return
	}
	if len(b.log) >= b.logLimit {
		// Drop the oldest half rather than one-at-a-time to keep append
		// amortized O(1). The evictions are counted: a truncated log must
		// not masquerade as a quiet caller to log-based analyses.
		keep := b.logLimit / 2
		b.droppedLog += uint64(len(b.log) - keep)
		b.log = append(b.log[:0], b.log[len(b.log)-keep:]...)
	}
	b.log = append(b.log, tx)
	for _, obs := range b.observers {
		obs(tx)
	}
}

// Log returns a copy of the delivered-transaction log in delivery order.
func (b *Bus) Log() []Transaction {
	out := make([]Transaction, len(b.log))
	copy(out, b.log)
	return out
}

// LogSince returns delivered transactions with DeliveredAt >= t.
func (b *Bus) LogSince(t time.Duration) []Transaction {
	var out []Transaction
	for _, tx := range b.log {
		if tx.DeliveredAt >= t {
			out = append(out, tx)
		}
	}
	return out
}

// ResetLog clears the transaction log (observers are unaffected).
func (b *Bus) ResetLog() { b.log = b.log[:0] }

// Dropped reports how many calls targeted unregistered processes.
func (b *Bus) Dropped() uint64 { return b.dropped }

// InjectedDrops reports how many transactions the fault injector
// discarded in flight. Accounting stays exact under faults:
// delivered + InjectedDrops + Dropped == calls attempted (duplicates add
// extra deliveries on top).
func (b *Bus) InjectedDrops() uint64 { return b.injectedDrops }

// DroppedLogEntries reports how many delivered transactions have been
// evicted from the in-memory log because LogLimit was hit. Consumers of
// Log/LogSince must treat a non-zero value as an incomplete view: an app
// absent from a truncated log is not necessarily a quiet caller.
func (b *Bus) DroppedLogEntries() uint64 { return b.droppedLog }
