package simclock

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestNewClockStartsAtZero(t *testing.T) {
	c := New()
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
	if c.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", c.Len())
	}
}

func TestAtFiresInOrder(t *testing.T) {
	c := New()
	var order []string
	mustAt := func(when time.Duration, label string) {
		t.Helper()
		if _, err := c.At(when, label, func() { order = append(order, label) }); err != nil {
			t.Fatalf("At(%v, %q): %v", when, label, err)
		}
	}
	mustAt(30*time.Millisecond, "c")
	mustAt(10*time.Millisecond, "a")
	mustAt(20*time.Millisecond, "b")
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []string{"a", "b", "c"}
	if len(order) != len(want) {
		t.Fatalf("fired %v, want %v", order, want)
	}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("fired %v, want %v", order, want)
		}
	}
	if got := c.Now(); got != 30*time.Millisecond {
		t.Fatalf("Now() = %v, want 30ms", got)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	c := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := c.At(5*time.Millisecond, "tie", func() { order = append(order, i) }); err != nil {
			t.Fatalf("At: %v", err)
		}
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("order[%d] = %d, want %d (ties must fire FIFO)", i, got, i)
		}
	}
}

func TestSchedulingInPastFails(t *testing.T) {
	c := New()
	if _, err := c.At(10*time.Millisecond, "x", func() {}); err != nil {
		t.Fatalf("At: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if _, err := c.At(5*time.Millisecond, "past", func() {}); err == nil {
		t.Fatal("At in the past succeeded, want error")
	}
}

func TestNegativeDelayFails(t *testing.T) {
	c := New()
	if _, err := c.After(-time.Millisecond, "neg", func() {}); err == nil {
		t.Fatal("After(-1ms) succeeded, want error")
	}
}

func TestNilCallbackFails(t *testing.T) {
	c := New()
	if _, err := c.At(0, "nil", nil); err == nil {
		t.Fatal("At with nil callback succeeded, want error")
	}
}

func TestCancelPreventsFiring(t *testing.T) {
	c := New()
	fired := false
	ev, err := c.After(time.Millisecond, "x", func() { fired = true })
	if err != nil {
		t.Fatalf("After: %v", err)
	}
	c.Cancel(ev)
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("canceled event fired")
	}
	if !ev.Canceled() {
		t.Fatal("Canceled() = false after Cancel")
	}
}

func TestCancelNilAndDoubleCancelAreNoOps(t *testing.T) {
	c := New()
	c.Cancel(nil)
	ev, err := c.After(time.Millisecond, "x", func() {})
	if err != nil {
		t.Fatalf("After: %v", err)
	}
	c.Cancel(ev)
	c.Cancel(ev)
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	c := New()
	var at []time.Duration
	if _, err := c.After(10*time.Millisecond, "first", func() {
		at = append(at, c.Now())
		c.MustAfter(5*time.Millisecond, "second", func() {
			at = append(at, c.Now())
		})
	}); err != nil {
		t.Fatalf("After: %v", err)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(at) != 2 || at[0] != 10*time.Millisecond || at[1] != 15*time.Millisecond {
		t.Fatalf("fire times = %v, want [10ms 15ms]", at)
	}
}

func TestRunUntilAdvancesToDeadline(t *testing.T) {
	c := New()
	fired := 0
	c.MustAfter(10*time.Millisecond, "in", func() { fired++ })
	c.MustAfter(100*time.Millisecond, "out", func() { fired++ })
	if err := c.RunUntil(50 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if got := c.Now(); got != 50*time.Millisecond {
		t.Fatalf("Now() = %v, want 50ms", got)
	}
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired != 2 {
		t.Fatalf("fired = %d, want 2 after full Run", fired)
	}
}

func TestRunUntilPastDeadlineFails(t *testing.T) {
	c := New()
	c.MustAfter(20*time.Millisecond, "x", func() {})
	if err := c.RunUntil(20 * time.Millisecond); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if err := c.RunUntil(10 * time.Millisecond); err == nil {
		t.Fatal("RunUntil with past deadline succeeded, want error")
	}
}

func TestRunForNegativeFails(t *testing.T) {
	c := New()
	if err := c.RunFor(-time.Second); err == nil {
		t.Fatal("RunFor(-1s) succeeded, want error")
	}
}

func TestStopHaltsClock(t *testing.T) {
	c := New()
	fired := 0
	c.MustAfter(time.Millisecond, "a", func() {
		fired++
		c.Stop()
	})
	c.MustAfter(2*time.Millisecond, "b", func() { fired++ })
	if err := c.Run(); err != ErrStopped {
		t.Fatalf("Run = %v, want ErrStopped", err)
	}
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if !c.Stopped() {
		t.Fatal("Stopped() = false")
	}
	if c.Step() {
		t.Fatal("Step on stopped clock fired an event")
	}
}

func TestTraceObservesEvents(t *testing.T) {
	c := New()
	var seen []string
	c.SetTrace(func(_ time.Duration, label string) { seen = append(seen, label) })
	c.MustAfter(time.Millisecond, "one", func() {})
	c.MustAfter(2*time.Millisecond, "two", func() {})
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(seen) != 2 || seen[0] != "one" || seen[1] != "two" {
		t.Fatalf("trace = %v, want [one two]", seen)
	}
	if c.Fired() != 2 {
		t.Fatalf("Fired() = %d, want 2", c.Fired())
	}
}

func TestNextEventTime(t *testing.T) {
	c := New()
	if got := c.NextEventTime(); got != time.Duration(math.MaxInt64) {
		t.Fatalf("NextEventTime on empty clock = %v, want max", got)
	}
	ev := c.MustAfter(7*time.Millisecond, "x", func() {})
	if got := c.NextEventTime(); got != 7*time.Millisecond {
		t.Fatalf("NextEventTime = %v, want 7ms", got)
	}
	c.Cancel(ev)
	if got := c.NextEventTime(); got != time.Duration(math.MaxInt64) {
		t.Fatalf("NextEventTime after cancel = %v, want max", got)
	}
}

func TestLenSkipsCanceled(t *testing.T) {
	c := New()
	ev := c.MustAfter(time.Millisecond, "x", func() {})
	c.MustAfter(2*time.Millisecond, "y", func() {})
	c.Cancel(ev)
	if got := c.Len(); got != 1 {
		t.Fatalf("Len() = %d, want 1", got)
	}
}

// TestPropertyMonotoneFiring checks that for any batch of non-negative
// delays, events fire in nondecreasing time order and the clock never runs
// backwards.
func TestPropertyMonotoneFiring(t *testing.T) {
	prop := func(delays []uint16) bool {
		c := New()
		var fireTimes []time.Duration
		for _, d := range delays {
			when := time.Duration(d) * time.Microsecond
			if _, err := c.At(when, "p", func() { fireTimes = append(fireTimes, c.Now()) }); err != nil {
				return false
			}
		}
		if err := c.Run(); err != nil {
			return false
		}
		if len(fireTimes) != len(delays) {
			return false
		}
		for i := 1; i < len(fireTimes); i++ {
			if fireTimes[i] < fireTimes[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyDeterminism checks that two clocks fed the same schedule
// produce identical traces.
func TestPropertyDeterminism(t *testing.T) {
	prop := func(delays []uint16) bool {
		run := func() []time.Duration {
			c := New()
			var fireTimes []time.Duration
			for _, d := range delays {
				when := time.Duration(d) * time.Microsecond
				if _, err := c.At(when, "p", func() { fireTimes = append(fireTimes, c.Now()) }); err != nil {
					return nil
				}
			}
			if err := c.Run(); err != nil {
				return nil
			}
			return fireTimes
		}
		a, b := run(), run()
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChainedTimersSimulatePeriodicWork(t *testing.T) {
	c := New()
	const period = 50 * time.Millisecond
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 10 {
			c.MustAfter(period, "tick", tick)
		}
	}
	c.MustAfter(period, "tick", tick)
	if err := c.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if count != 10 {
		t.Fatalf("count = %d, want 10", count)
	}
	if got, want := c.Now(), 10*period; got != want {
		t.Fatalf("Now() = %v, want %v", got, want)
	}
}
