// Package simclock provides a deterministic discrete-event scheduler with
// virtual time. All simulated Android components (Binder, Window Manager,
// System UI, attacker threads) schedule work on a single Clock, which fires
// events in nondecreasing virtual-time order. The same seed and schedule
// always produce an identical trace, which makes the timing races the paper
// exploits reproducible and testable.
package simclock

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"time"
)

// Duration aliases time.Duration; virtual time is expressed as an offset
// from the simulation epoch.
type Duration = time.Duration

// ErrStopped is returned by Run variants when the clock has been stopped
// explicitly via Stop.
var ErrStopped = errors.New("simclock: clock stopped")

// Event is a scheduled callback. The callback runs at the event's virtual
// time with the clock already advanced to that time.
type Event struct {
	when     Duration
	seq      uint64
	index    int // heap index; -1 when not queued
	canceled bool
	label    string
	fn       func()
}

// When reports the virtual time the event is scheduled for.
func (e *Event) When() Duration { return e.when }

// Label reports the debug label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Canceled reports whether the event was canceled before firing.
func (e *Event) Canceled() bool { return e.canceled }

// eventQueue is a min-heap ordered by (when, seq) so that events scheduled
// for the same instant fire in scheduling order.
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("simclock: eventQueue.Push got %T, want *Event", x))
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// TraceFunc receives every fired event for diagnostic logging.
type TraceFunc func(at Duration, label string)

// Clock is a single-threaded discrete-event scheduler. It is not safe for
// concurrent use; simulated concurrency is expressed by scheduling events,
// not by goroutines, so runs are deterministic.
type Clock struct {
	now     Duration
	queue   eventQueue
	seq     uint64
	stopped bool
	trace   TraceFunc
	fired   uint64
}

// New returns a Clock at virtual time zero.
func New() *Clock {
	return &Clock{}
}

// SetTrace installs fn to observe every fired event. A nil fn disables
// tracing.
func (c *Clock) SetTrace(fn TraceFunc) { c.trace = fn }

// Now reports the current virtual time.
func (c *Clock) Now() Duration { return c.now }

// Len reports the number of pending (non-canceled) events.
func (c *Clock) Len() int {
	n := 0
	for _, ev := range c.queue {
		if !ev.canceled {
			n++
		}
	}
	return n
}

// Fired reports how many events have fired since the clock was created.
func (c *Clock) Fired() uint64 { return c.fired }

// At schedules fn to run at absolute virtual time when. Scheduling in the
// past (before Now) is an error; scheduling exactly at Now is allowed and
// fires on the next step. The returned Event can be canceled.
func (c *Clock) At(when Duration, label string, fn func()) (*Event, error) {
	if fn == nil {
		return nil, errors.New("simclock: nil event callback")
	}
	if when < c.now {
		return nil, fmt.Errorf("simclock: schedule %q at %v before now %v", label, when, c.now)
	}
	c.seq++
	ev := &Event{when: when, seq: c.seq, label: label, fn: fn, index: -1}
	heap.Push(&c.queue, ev)
	return ev, nil
}

// After schedules fn to run delay after the current virtual time. A
// negative delay is an error.
func (c *Clock) After(delay Duration, label string, fn func()) (*Event, error) {
	if delay < 0 {
		return nil, fmt.Errorf("simclock: negative delay %v for %q", delay, label)
	}
	return c.At(c.now+delay, label, fn)
}

// MustAfter is After for callers whose delay is known non-negative; it
// panics on error and is intended for internal wiring where a failure is a
// programming bug, not a runtime condition.
func (c *Clock) MustAfter(delay Duration, label string, fn func()) *Event {
	ev, err := c.After(delay, label, fn)
	if err != nil {
		panic(err)
	}
	return ev
}

// Cancel marks ev canceled. Canceling a nil, already-fired, or
// already-canceled event is a no-op. Canceled events are skipped when they
// reach the head of the queue.
func (c *Clock) Cancel(ev *Event) {
	if ev == nil || ev.canceled {
		return
	}
	ev.canceled = true
}

// Step fires the earliest pending event, advancing Now to its time. It
// reports whether an event fired; false means the queue is empty or the
// clock is stopped.
func (c *Clock) Step() bool {
	if c.stopped {
		return false
	}
	for len(c.queue) > 0 {
		next, ok := heap.Pop(&c.queue).(*Event)
		if !ok {
			panic("simclock: queue contained non-event")
		}
		if next.canceled {
			continue
		}
		if next.when < c.now {
			panic(fmt.Sprintf("simclock: event %q at %v fires before now %v", next.label, next.when, c.now))
		}
		c.now = next.when
		c.fired++
		if c.trace != nil {
			c.trace(c.now, next.label)
		}
		next.fn()
		return true
	}
	return false
}

// Run fires events until the queue drains or the clock is stopped. It
// returns ErrStopped if Stop was called, nil otherwise.
func (c *Clock) Run() error {
	for c.Step() {
	}
	if c.stopped {
		return ErrStopped
	}
	return nil
}

// RunUntil fires events with time ≤ deadline, then advances Now to deadline
// (if Now is behind it). Events after deadline remain queued.
func (c *Clock) RunUntil(deadline Duration) error {
	if deadline < c.now {
		return fmt.Errorf("simclock: deadline %v before now %v", deadline, c.now)
	}
	for !c.stopped {
		next := c.peek()
		if next == nil || next.when > deadline {
			break
		}
		c.Step()
	}
	if c.stopped {
		return ErrStopped
	}
	if c.now < deadline {
		c.now = deadline
	}
	return nil
}

// RunFor runs the clock for d of virtual time past the current instant.
func (c *Clock) RunFor(d Duration) error {
	if d < 0 {
		return fmt.Errorf("simclock: negative run duration %v", d)
	}
	return c.RunUntil(c.now + d)
}

// Stop halts the clock: no further events fire and Run variants return
// ErrStopped. Pending events stay queued for inspection.
func (c *Clock) Stop() { c.stopped = true }

// Stopped reports whether Stop has been called.
func (c *Clock) Stopped() bool { return c.stopped }

func (c *Clock) peek() *Event {
	for len(c.queue) > 0 {
		head := c.queue[0]
		if !head.canceled {
			return head
		}
		if popped, ok := heap.Pop(&c.queue).(*Event); !ok || popped != head {
			panic("simclock: heap pop mismatch while discarding canceled event")
		}
	}
	return nil
}

// NextEventTime reports the virtual time of the earliest pending event, or
// math.MaxInt64 if none is queued.
func (c *Clock) NextEventTime() Duration {
	next := c.peek()
	if next == nil {
		return Duration(math.MaxInt64)
	}
	return next.when
}
