// Package sentring is the distributed serving plane for the streaming
// detection service: a device-ID consistent-hash ingest router
// (cmd/sentryrouter) that shards the fleet across N sentryd peers with
// R-way batch replication, plus the failure machinery that keeps the
// plane answering while peers die — per-attempt deadlines, bounded
// retries with seeded backoff, per-peer circuit breakers fed by
// background /readyz probes, and graceful degradation to a local
// detection engine when every replica for a device is unreachable.
//
// Detection safety is structural, not best-effort: a detection is a
// pure function of the device's own record stream, so replicating a
// batch to R peers can never produce a wrong flag — only R consistent
// ones. The router therefore classifies every batch into exactly one of
// routed / degraded / shed / failed (the accounting identity
// cmd/fleetload enforces under chaos), merges the peers' per-device
// accounting rows into one exact fleet-wide /v1/report, proxies
// /v1/flagged to the device's replicas, and fans /v1/config rule swaps
// to every peer — re-pushing the active config when a probe sees a
// restarted peer come back, so a node that lost its in-memory rules
// heals to the ring's version without operator action.
//
// The network fault plane (faults.NetPlane) plugs in beneath the HTTP
// clients as a per-peer RoundTripper, so request drops, latency spikes,
// 5xx storms and partitions are injected between router and peer with
// seeded determinism while the router code under test is byte-identical
// to production.
//
// sentring is a wall-clock serving package (simlint's ServingPackages
// allowlist): deadlines, backoff and breaker cooldowns are real time,
// but every detection decision stays virtual-time pure on the peers.
package sentring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/faults"
	"repro/internal/sentry"
	"repro/internal/simrand"
)

// Config parameterizes a Router.
type Config struct {
	// Peers are the sentryd node addresses (host:port), in ring order.
	// The index of a peer in this slice is its identity for the fault
	// plane's partition sets.
	Peers []string
	// Replicas is the replica set size per device (default 2, clamped
	// to len(Peers)).
	Replicas int
	// VNodes is the number of virtual ring points per peer (default 64).
	VNodes int
	// Engine configures the local fallback detection engine — it must
	// match the peers' construction config, or degraded batches would be
	// judged under different rules.
	Engine sentry.Config

	// Deadline bounds each peer attempt (default 2s).
	Deadline time.Duration
	// Retries is the number of extra full passes over the replica set
	// after the first (default 1). Between passes the router backs off
	// exponentially with seeded jitter.
	Retries int
	// RetryBase is the first inter-pass backoff (default 25ms); pass k
	// waits RetryBase<<(k-1), jittered ±50%.
	RetryBase time.Duration

	// BreakerThreshold consecutive failures open a peer's circuit
	// (default 3); BreakerCooldown is the open→half-open delay (default
	// 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the health-probe period per peer (default 250ms;
	// negative disables probing).
	ProbeInterval time.Duration

	// FallbackConcurrency bounds concurrent local degraded ingests
	// (default 4); beyond it the router sheds.
	FallbackConcurrency int
	// RetryAfter is the hint returned with 429 sheds (default 1s).
	RetryAfter time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB).
	MaxBodyBytes int64

	// Seed feeds the backoff jitter stream (default 1).
	Seed int64
	// NetPlane, when non-nil, injects deterministic network faults
	// beneath the peer HTTP clients. Nil in production.
	NetPlane *faults.NetPlane
	// Transport overrides the base HTTP transport (tests); nil uses a
	// dedicated http.Transport per router.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.FallbackConcurrency <= 0 {
		c.FallbackConcurrency = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// peer is one sentryd node as the router sees it.
type peer struct {
	name   string
	client *http.Client
	brk    *breaker

	served atomic.Uint64
	errors atomic.Uint64
	// ready tracks the last probe outcome so the probe loop can detect a
	// failed→ok transition and re-push the active config to a restarted
	// peer.
	ready atomic.Bool
}

// Router is the ring front end, an http.Handler mirroring sentryd's API
// surface (POST /v1/ingest, GET /v1/report, GET /v1/flagged,
// POST /v1/config, GET /healthz, /readyz, /stats, /metrics) so clients
// cannot tell a node from the ring.
type Router struct {
	cfg   Config
	ring  *Ring
	peers []*peer
	// local is the fallback detection engine: it absorbs batches whose
	// replica set is entirely unreachable, and it is the version
	// authority for /v1/config fan-out.
	local *sentry.Engine
	mux   *http.ServeMux

	metrics Metrics

	// jitterMu serializes the seeded backoff stream.
	jitterMu  sync.Mutex
	jitterRng *simrand.Source

	fallbackSem chan struct{}

	// configMu serializes config fan-out; lastConfig is the active
	// update (version assigned) re-pushed to peers that come back.
	configMu   sync.Mutex
	lastConfig *sentry.ConfigUpdate

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	closed    atomic.Bool
}

// New builds a Router over cfg.Peers and starts its health probes.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.VNodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	local, err := sentry.NewEngine(cfg.Engine)
	if err != nil {
		return nil, err
	}
	base := cfg.Transport
	if base == nil {
		base = &http.Transport{MaxIdleConnsPerHost: 16}
	}
	r := &Router{
		cfg:         cfg,
		ring:        ring,
		local:       local,
		jitterRng:   simrand.New(cfg.Seed).Derive("sentring/backoff"),
		fallbackSem: make(chan struct{}, cfg.FallbackConcurrency),
		probeStop:   make(chan struct{}),
	}
	for i, name := range cfg.Peers {
		p := &peer{
			name: name,
			client: &http.Client{
				Transport: newPeerTransport(base, cfg.NetPlane, i),
				Timeout:   cfg.Deadline,
			},
			brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		}
		p.ready.Store(true) // assume up until a probe says otherwise
		r.peers = append(r.peers, p)
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /v1/ingest", r.handleIngest)
	r.mux.HandleFunc("GET /v1/report", r.handleReport)
	r.mux.HandleFunc("GET /v1/flagged", r.handleFlagged)
	r.mux.HandleFunc("POST /v1/config", r.handleConfig)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.mux.HandleFunc("GET /stats", r.handleStats)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	if cfg.ProbeInterval > 0 {
		for i := range r.peers {
			r.probeWG.Add(1)
			go r.probeLoop(i)
		}
	}
	return r, nil
}

// Close stops the health probes and refuses further ingests; in-flight
// requests finish normally.
func (r *Router) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.probeStop)
		r.probeWG.Wait()
	}
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// Ring exposes the placement function (tests and topology dumps).
func (r *Router) Ring() *Ring { return r.ring }

// Local exposes the fallback engine (shutdown accounting).
func (r *Router) Local() *sentry.Engine { return r.local }

// probeLoop polls one peer's /readyz and feeds its breaker, so dead
// peers are discovered between batches and recovered peers readmitted
// within one cooldown. A failed→ok transition additionally re-pushes
// the active config: a SIGKILLed peer restarts at rule version 1, and
// the probe heals it to the ring's version.
func (r *Router) probeLoop(i int) {
	defer r.probeWG.Done()
	p := r.peers[i]
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
		req, err := http.NewRequestWithContext(ctx, "GET", "http://"+p.name+"/readyz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := p.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK {
			r.metrics.ProbeOK.Add(1)
			p.brk.onSuccess()
			if !p.ready.Swap(true) {
				r.repushConfig(p)
			}
		} else {
			r.metrics.ProbeFail.Add(1)
			p.brk.onFailure()
			p.ready.Store(false)
		}
	}
}

// repushConfig sends the active config (if any swap happened) to a peer
// that just came back. Idempotent on the peer side: an equal re-push of
// the active version is a no-op, a restarted peer jumps forward.
func (r *Router) repushConfig(p *peer) {
	r.configMu.Lock()
	u := r.lastConfig
	r.configMu.Unlock()
	if u == nil {
		return
	}
	if err := r.pushConfig(context.Background(), p, *u); err != nil {
		r.metrics.ConfigPushErrs.Add(1)
	}
}

// backoff returns the jittered inter-pass delay for retry pass k
// (1-based): RetryBase<<(k-1), jittered uniformly in [0.5x, 1.5x],
// drawn from the router's seeded stream.
func (r *Router) backoff(k int) time.Duration {
	d := r.cfg.RetryBase << (k - 1)
	r.jitterMu.Lock()
	j := 0.5 + r.jitterRng.Float64()
	r.jitterMu.Unlock()
	return time.Duration(float64(d) * j)
}

func (r *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (r *Router) writeError(w http.ResponseWriter, status int, msg string) {
	resp := sentry.ErrorResponse{Error: msg}
	if status == http.StatusTooManyRequests {
		sec := int((r.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		resp.RetryAfterSec = sec
	}
	r.writeJSON(w, status, resp)
}

// handleIngest validates the batch, routes it to the device's replica
// set, and classifies it on exactly one batch-level counter — see the
// Metrics contract.
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	r.metrics.IngestCalls.Add(1)
	device := req.URL.Query().Get("device")
	if !sentry.ValidToken(device) {
		r.metrics.BadBatches.Add(1)
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("sentring: bad device %q", device))
		return
	}
	if r.closed.Load() {
		r.metrics.RefusedBatches.Add(1)
		r.writeError(w, http.StatusServiceUnavailable, "sentring: shutting down")
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.metrics.BadBatches.Add(1)
		r.writeError(w, http.StatusBadRequest, "sentring: read body: "+err.Error())
		return
	}
	// Decode at the router so malformed batches never consume ring
	// capacity; the decoded records also feed the degraded fallback.
	recs, err := sentry.DecodeBatch(body)
	if err != nil {
		r.metrics.BadBatches.Add(1)
		r.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(recs) == 0 {
		r.metrics.BadBatches.Add(1)
		r.writeError(w, http.StatusBadRequest, "sentring: empty batch")
		return
	}
	r.metrics.Batches.Add(1)
	res := r.routeBatch(req.Context(), device, body, recs)
	if res.status != http.StatusOK {
		r.writeError(w, res.status, res.errMsg)
		return
	}
	r.writeJSON(w, http.StatusOK, res.resp)
}

// routeResult is the classified outcome of one routed batch.
type routeResult struct {
	resp   sentry.IngestResponse
	status int    // HTTP status for the caller
	errMsg string // set when status != 200
}

// routeBatch replicates one device batch to its replica set: every
// replica gets the batch, passes retry with seeded backoff, and the
// batch counts Routed when at least one replica acked. A 409 after a
// transport error on the same peer is a duplicate ack — the peer
// applied the batch but the response was lost, and its strict sequence
// check refused the re-send without applying anything twice. A 409 with
// no preceding transport error is a genuine stream conflict and is
// propagated. With zero acks the batch falls back to the local engine:
// absorbed → Degraded, fallback saturated → Shed, fallback error →
// Failed.
func (r *Router) routeBatch(ctx context.Context, device string, body []byte, recs []sentry.Record) routeResult {
	replicas := r.ring.Replicas(device)
	acked := make([]bool, len(replicas))
	maybeSent := make([]bool, len(replicas))
	ackCount := 0
	var okResp *sentry.IngestResponse

	for pass := 0; pass <= r.cfg.Retries; pass++ {
		if pass > 0 {
			if ackCount == len(replicas) {
				break
			}
			r.metrics.Retries.Add(1)
			select {
			case <-time.After(r.backoff(pass)):
			case <-ctx.Done():
				pass = r.cfg.Retries + 1 // no more passes
			}
			if pass > r.cfg.Retries {
				break
			}
		}
		for ri, pi := range replicas {
			if acked[ri] {
				continue
			}
			p := r.peers[pi]
			if !p.brk.allow() {
				continue
			}
			status, iresp, errMsg, err := r.tryIngest(ctx, p, device, body)
			switch {
			case err != nil:
				maybeSent[ri] = true
				p.errors.Add(1)
				r.metrics.PeerErrs.Add(1)
				p.brk.onFailure()
			case status == http.StatusOK:
				p.brk.onSuccess()
				p.served.Add(1)
				r.metrics.Acks.Add(1)
				acked[ri] = true
				ackCount++
				if okResp == nil {
					resp := iresp
					okResp = &resp
				}
			case status == http.StatusConflict:
				p.brk.onSuccess() // the peer is alive and answered
				if maybeSent[ri] {
					// Retry race: an earlier attempt reached the peer but
					// its response was lost; the strict sequence check
					// acknowledges the duplicate without double-applying.
					r.metrics.DupAcks.Add(1)
					p.served.Add(1)
					acked[ri] = true
					ackCount++
				} else {
					// Genuine stream conflict: every replica will refuse
					// it the same way. Classify failed, propagate.
					r.metrics.Failed.Add(1)
					return routeResult{status: http.StatusConflict, errMsg: errMsg}
				}
			case status == http.StatusTooManyRequests:
				// The peer is alive and shedding: no ack, no breaker
				// damage — opening the circuit on load would amplify the
				// overload onto the remaining replicas.
				r.metrics.Peer429s.Add(1)
				p.brk.onSuccess()
			default:
				// 5xx (injected storms included) and unexpected codes.
				p.errors.Add(1)
				r.metrics.PeerErrs.Add(1)
				p.brk.onFailure()
			}
		}
		if ackCount == len(replicas) {
			break
		}
	}

	if ackCount > 0 {
		r.metrics.Routed.Add(1)
		if okResp == nil {
			// Every ack was a duplicate 409: the batch is applied
			// ring-side, only this round trip's body was lost.
			okResp = &sentry.IngestResponse{Device: device}
		}
		return routeResult{resp: *okResp, status: http.StatusOK}
	}
	return r.fallback(ctx, device, recs)
}

// tryIngest sends one batch attempt to p. The returned error covers
// transport failures only; HTTP-level failures come back as the status
// plus the peer's error message.
func (r *Router) tryIngest(ctx context.Context, p *peer, device string, body []byte) (int, sentry.IngestResponse, string, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.Deadline)
	defer cancel()
	url := "http://" + p.name + "/v1/ingest?device=" + device
	req, err := http.NewRequestWithContext(attemptCtx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return 0, sentry.IngestResponse{}, "", err
	}
	req.Header.Set("Content-Type", "text/plain")
	resp, err := p.client.Do(req)
	if err != nil {
		return 0, sentry.IngestResponse{}, "", err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		var er sentry.ErrorResponse
		json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes)).Decode(&er)
		return resp.StatusCode, sentry.IngestResponse{}, er.Error, nil
	}
	var ir sentry.IngestResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes)).Decode(&ir); err != nil {
		return 0, sentry.IngestResponse{}, "", fmt.Errorf("decode peer response: %w", err)
	}
	return http.StatusOK, ir, "", nil
}

// fallback absorbs the batch into the local engine when every replica
// is unreachable: bounded by the fallback semaphore (full → shed),
// stamped Degraded — the plane keeps detecting but admits it routed
// nothing.
func (r *Router) fallback(ctx context.Context, device string, recs []sentry.Record) routeResult {
	select {
	case r.fallbackSem <- struct{}{}:
	default:
		r.metrics.Sheds.Add(1)
		r.local.MarkShed(device)
		return routeResult{status: http.StatusTooManyRequests, errMsg: "ring unreachable and local fallback saturated"}
	}
	defer func() { <-r.fallbackSem }()
	if ctx.Err() != nil {
		r.metrics.Sheds.Add(1)
		r.local.MarkShed(device)
		return routeResult{status: http.StatusTooManyRequests, errMsg: "deadline exhausted before fallback"}
	}
	r.metrics.FallbackIngests.Add(1)
	n, err := r.local.Ingest(device, recs)
	if err != nil {
		r.metrics.Failed.Add(1)
		return routeResult{status: http.StatusConflict, errMsg: fmt.Sprintf("fallback applied %d: %v", n, err)}
	}
	r.metrics.Degraded.Add(1)
	return routeResult{
		resp:   sentry.IngestResponse{Device: device, Records: n, Detected: r.local.Detected(device), Degraded: true},
		status: http.StatusOK,
	}
}

// fetchPeerSnapshot pulls one peer's /v1/report.
func (r *Router) fetchPeerSnapshot(ctx context.Context, p *peer) (sentry.Snapshot, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, "GET", "http://"+p.name+"/v1/report", nil)
	if err != nil {
		return sentry.Snapshot{}, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return sentry.Snapshot{}, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return sentry.Snapshot{}, fmt.Errorf("peer %s report: status %d", p.name, resp.StatusCode)
	}
	var snap sentry.Snapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes)).Decode(&snap); err != nil {
		return sentry.Snapshot{}, fmt.Errorf("peer %s report: %w", p.name, err)
	}
	return snap, nil
}

// MergedSnapshot assembles the fleet-wide accounting from every
// reachable peer's per-device rows plus the local fallback engine.
//
// Each device's canonical row comes from the first source in its ring
// preference order (its replica set, then the remaining peers, then the
// local engine) that reported it — under full replication every replica
// holds an identical row, so a healthy merged report is byte-identical
// to a single node's. Status merges with detected-anywhere-wins, then
// shed-anywhere, then clean (the engine's own precedence), so a
// detection that fired on any replica survives the others' crashes.
// Totals are recomputed from the merged rows; the exclusive accounting
// identity holds by construction.
func (r *Router) MergedSnapshot(ctx context.Context) sentry.Snapshot {
	type source struct {
		idx  int // peer index, -1 = local engine
		rows map[string]sentry.DeviceAccount
	}
	var sources []source
	index := make(map[int]int) // peer idx -> sources idx
	for i, p := range r.peers {
		snap, err := r.fetchPeerSnapshot(ctx, p)
		if err != nil {
			continue
		}
		rows := make(map[string]sentry.DeviceAccount, len(snap.Devices))
		for _, row := range snap.Devices {
			rows[row.Device] = row
		}
		index[i] = len(sources)
		sources = append(sources, source{idx: i, rows: rows})
	}
	localSnap := r.local.Snapshot()
	localRows := make(map[string]sentry.DeviceAccount, len(localSnap.Devices))
	for _, row := range localSnap.Devices {
		localRows[row.Device] = row
	}
	index[-1] = len(sources)
	sources = append(sources, source{idx: -1, rows: localRows})

	devices := make(map[string]bool)
	for _, src := range sources {
		for dev := range src.rows {
			devices[dev] = true
		}
	}

	merged := sentry.Snapshot{Service: "sentryrouter"}
	for dev := range devices {
		// Preference order: the device's replica set, then every other
		// peer (a ring reconfiguration could have moved it), then local.
		pref := r.ring.Replicas(dev)
		inPref := make(map[int]bool, len(pref))
		for _, pi := range pref {
			inPref[pi] = true
		}
		for pi := range r.peers {
			if !inPref[pi] {
				pref = append(pref, pi)
			}
		}
		pref = append(pref, -1)

		var canonical *sentry.DeviceAccount
		var detected *sentry.DeviceAccount
		anyShed := false
		for _, pi := range pref {
			si, ok := index[pi]
			if !ok {
				continue
			}
			row, ok := sources[si].rows[dev]
			if !ok {
				continue
			}
			if canonical == nil {
				c := row
				canonical = &c
			}
			if detected == nil && row.Status == "detected" && row.Detection != nil {
				d := row
				detected = &d
			}
			if row.Status == "shed" {
				anyShed = true
			}
		}
		if canonical == nil {
			continue // unreachable: dev came from some source
		}
		row := *canonical
		switch {
		case detected != nil:
			row.Status = "detected"
			row.Detection = detected.Detection
		case anyShed:
			row.Status = "shed"
			row.Detection = nil
		default:
			row.Status = "clean"
			row.Detection = nil
		}
		merged.DevicesReported++
		merged.RecordsIngested += row.Records
		merged.RecordsIgnored += row.Ignored
		merged.RingEvictions += row.Evictions
		switch row.Status {
		case "detected":
			merged.Detected++
			d := *row.Detection
			d.Device = dev
			merged.Detections = append(merged.Detections, d)
		case "shed":
			merged.Shed++
		default:
			merged.Clean++
		}
		merged.Devices = append(merged.Devices, row)
	}
	sort.Slice(merged.Detections, func(i, j int) bool {
		return merged.Detections[i].Device < merged.Detections[j].Device
	})
	sort.Slice(merged.Devices, func(i, j int) bool {
		return merged.Devices[i].Device < merged.Devices[j].Device
	})
	return merged
}

func (r *Router) handleReport(w http.ResponseWriter, req *http.Request) {
	r.writeJSON(w, http.StatusOK, r.MergedSnapshot(req.Context()))
}

// handleFlagged proxies "was this device ever flagged" to the device's
// replicas in preference order, returning the first flagged replica's
// response bytes verbatim — so the answer a restarted peer recovers
// from its journal reaches the client byte-identically through the
// ring. An unflagged 200 is kept as the fallback answer; the local
// engine is consulted last.
func (r *Router) handleFlagged(w http.ResponseWriter, req *http.Request) {
	device := req.URL.Query().Get("device")
	if !sentry.ValidToken(device) {
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("sentring: bad device %q", device))
		return
	}
	var unflagged []byte
	for _, pi := range r.ring.Replicas(device) {
		p := r.peers[pi]
		body, flagged, err := r.tryFlagged(req.Context(), p, device)
		if err != nil {
			continue
		}
		if flagged {
			w.Header().Set("Content-Type", "application/json")
			w.Write(body)
			return
		}
		if unflagged == nil {
			unflagged = body
		}
	}
	if d, ok := r.local.DetectionFor(device); ok {
		r.writeJSON(w, http.StatusOK, sentry.FlaggedResponse{Device: device, Flagged: true, Detection: &d})
		return
	}
	if unflagged != nil {
		w.Header().Set("Content-Type", "application/json")
		w.Write(unflagged)
		return
	}
	r.writeError(w, http.StatusBadGateway, "sentring: no replica answered")
}

func (r *Router) tryFlagged(ctx context.Context, p *peer, device string) ([]byte, bool, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, "GET", "http://"+p.name+"/v1/flagged?device="+device, nil)
	if err != nil {
		return nil, false, err
	}
	resp, err := p.client.Do(req)
	if err != nil {
		return nil, false, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		return nil, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, false, fmt.Errorf("peer %s flagged: status %d", p.name, resp.StatusCode)
	}
	var fr sentry.FlaggedResponse
	if err := json.Unmarshal(body, &fr); err != nil {
		return nil, false, err
	}
	return body, fr.Flagged, nil
}

// ConfigFanout is the POST /v1/config response on the router: the
// version now active and how many peers took it synchronously. Peers
// that missed the fan-out (down, partitioned) are healed by the probe
// loop's re-push when they come back.
type ConfigFanout struct {
	Version    uint64 `json:"version"`
	PeersAcked int    `json:"peers_acked"`
	Peers      int    `json:"peers"`
}

// handleConfig swaps the ring's detection rule set: the local fallback
// engine is the version authority (it assigns the version under
// configMu), then the stamped update fans out to every peer. 400 =
// invalid update, 409 = stale or conflicting version; neither touches
// any engine.
func (r *Router) handleConfig(w http.ResponseWriter, req *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, req.Body, r.cfg.MaxBodyBytes))
	if err != nil {
		r.writeError(w, http.StatusBadRequest, "sentring: read body: "+err.Error())
		return
	}
	u, err := sentry.ParseConfigUpdate(body)
	if err != nil {
		r.writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	r.configMu.Lock()
	v, err := r.local.ApplyConfig(u)
	if err != nil {
		r.configMu.Unlock()
		status := http.StatusBadRequest
		if u.Validate() == nil {
			status = http.StatusConflict
		}
		r.writeError(w, status, err.Error())
		return
	}
	u.Version = v
	uc := u
	r.lastConfig = &uc
	r.configMu.Unlock()

	acked := 0
	for _, p := range r.peers {
		if err := r.pushConfig(req.Context(), p, u); err != nil {
			r.metrics.ConfigPushErrs.Add(1)
			continue
		}
		acked++
	}
	r.writeJSON(w, http.StatusOK, ConfigFanout{Version: v, PeersAcked: acked, Peers: len(r.peers)})
}

// pushConfig sends one stamped config update to a peer.
func (r *Router) pushConfig(ctx context.Context, p *peer, u sentry.ConfigUpdate) error {
	r.metrics.ConfigPushes.Add(1)
	body, err := u.Encode()
	if err != nil {
		return err
	}
	attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.Deadline)
	defer cancel()
	req, err := http.NewRequestWithContext(attemptCtx, "POST", "http://"+p.name+"/v1/config", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s config: status %d", p.name, resp.StatusCode)
	}
	return nil
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	fmt.Fprintf(w, `{"status":"ok"}`+"\n")
}

// handleReadyz: the router is ready while it can still absorb a batch —
// which, thanks to the degraded fallback, is whenever the fallback
// semaphore is not saturated, regardless of peer health.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, p := range r.peers {
		if st, _ := p.brk.snapshot(); st == "closed" {
			healthy++
		}
	}
	status, state := http.StatusOK, "ready"
	switch {
	case r.closed.Load():
		status, state = http.StatusServiceUnavailable, "shutting-down"
	case len(r.fallbackSem) >= cap(r.fallbackSem) && healthy == 0:
		status, state = http.StatusServiceUnavailable, "saturated"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"healthy_peers":%d,"peers":%d}`+"\n", state, healthy, len(r.peers))
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	r.writeJSON(w, http.StatusOK, r.Snapshot())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.WriteProm(w)
}

func (r *Router) peerStats() []PeerStats {
	out := make([]PeerStats, len(r.peers))
	for i, p := range r.peers {
		st, opens := p.brk.snapshot()
		out[i] = PeerStats{
			Name:    p.name,
			Breaker: st,
			Opens:   opens,
			Served:  p.served.Load(),
			Errors:  p.errors.Load(),
		}
	}
	return out
}

// Metrics exposes the counter block (tests).
func (r *Router) Metrics() *Metrics { return &r.metrics }

// PeerNames formats the peer list for logs.
func (r *Router) PeerNames() string { return strings.Join(r.ring.Peers(), ",") }
