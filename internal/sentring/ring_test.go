package sentring

import (
	"fmt"
	"testing"
)

func TestRingPlacementDeterministicAndDistinct(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1", "d:1"}
	r1, err := NewRing(peers, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(peers, 64, 2)
	counts := make([]int, len(peers))
	for i := 0; i < 2000; i++ {
		device := fmt.Sprintf("dev-%05d", i)
		a, b := r1.Replicas(device), r2.Replicas(device)
		if len(a) != 2 {
			t.Fatalf("replica set size %d, want 2", len(a))
		}
		if a[0] == a[1] {
			t.Fatalf("replica set %v repeats a peer", a)
		}
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("placement differs between identical rings: %v vs %v", a, b)
		}
		counts[a[0]]++
	}
	// Virtual nodes must spread primaries across every peer; perfect
	// balance is 500 each, so no peer may own the lot or nothing.
	for i, c := range counts {
		if c == 0 || c == 2000 {
			t.Fatalf("primary distribution degenerate: peer %d owns %d/2000", i, c)
		}
	}
}

func TestRingReplicasClampedAndErrors(t *testing.T) {
	r, err := NewRing([]string{"solo:1"}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replicas("dev-00001"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-peer replicas %v", got)
	}
	if _, err := NewRing(nil, 8, 1); err == nil {
		t.Fatal("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 8, 1); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// TestRingMinimalReshuffle: removing one peer moves only devices that
// peer owned; every other device keeps its primary.
func TestRingMinimalReshuffle(t *testing.T) {
	all := []string{"a:1", "b:1", "c:1", "d:1"}
	full, _ := NewRing(all, 64, 1)
	reduced, _ := NewRing(all[:3], 64, 1) // drop d:1
	moved, kept := 0, 0
	for i := 0; i < 2000; i++ {
		device := fmt.Sprintf("dev-%05d", i)
		was, now := full.Replicas(device)[0], reduced.Replicas(device)[0]
		if was == 3 {
			continue // owned by the removed peer: must move somewhere
		}
		if was == now {
			kept++
		} else {
			moved++
		}
	}
	if moved != 0 {
		t.Fatalf("%d devices not owned by the removed peer changed primary (kept %d)", moved, kept)
	}
}
