package sentring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/faults"
	"repro/internal/sentry"
)

func newListener(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// testRing spins up n real sentryd nodes behind httptest listeners and
// a router over them. Probes are disabled unless the mutator turns them
// on, so tests stay free of background timing noise.
func testRing(t *testing.T, n int, mutate func(*Config)) (*Router, []*sentry.Server) {
	t.Helper()
	peers := make([]string, n)
	nodes := make([]*sentry.Server, n)
	for i := 0; i < n; i++ {
		node, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 256})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(node)
		t.Cleanup(func() { ts.Close(); node.Close() })
		nodes[i] = node
		peers[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	cfg := Config{
		Peers:         peers,
		Replicas:      2,
		Deadline:      2 * time.Second,
		RetryBase:     time.Millisecond,
		ProbeInterval: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, nodes
}

// attackerBatch is a draw-and-destroy stream that must flag, starting
// at sequence seq.
func attackerBatch(t *testing.T, device string, seq uint64) []byte {
	t.Helper()
	var recs []sentry.Record
	for i := 0; i < 8; i++ {
		at := time.Duration(i) * 6 * time.Millisecond
		recs = append(recs,
			sentry.Record{Device: device, Seq: seq + uint64(2*i), Method: sentry.MethodAddView, At: at},
			sentry.Record{Device: device, Seq: seq + uint64(2*i+1), Method: sentry.MethodRemoveView, At: at + 3*time.Millisecond},
		)
	}
	b, err := sentry.EncodeBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// benignBatch is a sparse widget stream that must stay clean.
func benignBatch(t *testing.T, device string) []byte {
	t.Helper()
	recs := []sentry.Record{
		{Device: device, Seq: 0, Method: sentry.MethodAddView, At: 0},
		{Device: device, Seq: 1, Method: sentry.MethodEnqueueNotification, At: 400 * time.Millisecond},
		{Device: device, Seq: 2, Method: sentry.MethodRemoveView, At: 900 * time.Millisecond},
	}
	b, err := sentry.EncodeBatch(recs)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func ingest(t *testing.T, r *Router, device string, body []byte) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("POST", "/v1/ingest?device="+device, bytes.NewReader(body))
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	return rec
}

// checkAccounting asserts the router's exclusive batch classification.
func checkAccounting(t *testing.T, r *Router) {
	t.Helper()
	st := r.Snapshot()
	if st.Routed+st.Degraded+st.Sheds+st.Failed != st.Batches {
		t.Fatalf("batch accounting broken: routed=%d degraded=%d sheds=%d failed=%d batches=%d",
			st.Routed, st.Degraded, st.Sheds, st.Failed, st.Batches)
	}
	if st.Batches+st.BadBatches+st.RefusedBatches != st.IngestCalls {
		t.Fatalf("call accounting broken: batches=%d bad=%d refused=%d calls=%d",
			st.Batches, st.BadBatches, st.RefusedBatches, st.IngestCalls)
	}
}

func TestRouterRoutesAcrossRing(t *testing.T) {
	r, _ := testRing(t, 3, nil)
	const devices = 60
	attackers := 0
	for i := 0; i < devices; i++ {
		device := fmt.Sprintf("dev-%05d", i)
		var body []byte
		if i%5 == 0 {
			body = attackerBatch(t, device, 0)
			attackers++
		} else {
			body = benignBatch(t, device)
		}
		rec := ingest(t, r, device, body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", device, rec.Code, rec.Body.String())
		}
		var ir sentry.IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &ir); err != nil {
			t.Fatal(err)
		}
		if ir.Degraded {
			t.Fatalf("%s: healthy ring answered degraded", device)
		}
	}
	st := r.Snapshot()
	if st.Routed != devices || st.Degraded != 0 || st.Retries != 0 {
		t.Fatalf("healthy ring stats: %+v", st)
	}
	// R=2 replication: every batch acked twice.
	if st.Acks != 2*devices {
		t.Fatalf("acks = %d, want %d (R=2 full replication)", st.Acks, 2*devices)
	}
	checkAccounting(t, r)
	for _, p := range st.Peers {
		if p.Served == 0 {
			t.Fatalf("peer %s served nothing; ring not sharding (%+v)", p.Name, st.Peers)
		}
	}
	if st.Service != "sentryrouter" {
		t.Fatalf("service %q, want sentryrouter", st.Service)
	}

	snap := r.MergedSnapshot(context.Background())
	if snap.DevicesReported != devices || snap.Detected != attackers || snap.Shed != 0 {
		t.Fatalf("merged snapshot: reported=%d detected=%d shed=%d, want %d/%d/0",
			snap.DevicesReported, snap.Detected, snap.Shed, devices, attackers)
	}
	if snap.Detected+snap.Clean+snap.Shed != snap.DevicesReported {
		t.Fatalf("merged accounting broken: %+v", snap)
	}
	for i := 1; i < len(snap.Detections); i++ {
		if snap.Detections[i-1].Device >= snap.Detections[i].Device {
			t.Fatal("merged detections not sorted by device")
		}
	}
}

// TestRouterSurvivesEachPeerPartitioned partitions each peer in turn:
// with R=2 every device keeps a live replica, so every batch must still
// route (not degrade) and the accounting must hold throughout.
func TestRouterSurvivesEachPeerPartitioned(t *testing.T) {
	const peers = 3
	for dead := 0; dead < peers; dead++ {
		t.Run(fmt.Sprintf("peer%d-down", dead), func(t *testing.T) {
			prof := faults.NetProfile{Name: "one-down", PartitionPeers: []int{dead}}
			r, _ := testRing(t, peers, func(c *Config) {
				c.NetPlane = faults.NewNetPlane(prof, 7)
				c.BreakerCooldown = 10 * time.Second // stays open for the test's duration
			})
			const devices = 30
			for i := 0; i < devices; i++ {
				device := fmt.Sprintf("dev-%05d", i)
				rec := ingest(t, r, device, attackerBatch(t, device, 0))
				if rec.Code != http.StatusOK {
					t.Fatalf("%s: status %d with peer %d down: %s", device, rec.Code, dead, rec.Body.String())
				}
			}
			st := r.Snapshot()
			if st.Routed != devices {
				t.Fatalf("with R=2 and one peer down every device keeps a live replica; routed=%d degraded=%d of %d",
					st.Routed, st.Degraded, devices)
			}
			if st.Peers[dead].Served != 0 {
				t.Fatalf("partitioned peer %d served %d batches", dead, st.Peers[dead].Served)
			}
			checkAccounting(t, r)
			// Every attacker still lands in the merged report.
			snap := r.MergedSnapshot(context.Background())
			if snap.Detected != devices {
				t.Fatalf("merged report lost detections with peer %d down: %d of %d", dead, snap.Detected, devices)
			}
		})
	}
}

// TestRouterBlackoutDegrades: with the whole ring partitioned every
// batch lands on the local fallback engine, stamped degraded, and the
// merged report still carries the detections.
func TestRouterBlackoutDegrades(t *testing.T) {
	r, _ := testRing(t, 2, func(c *Config) {
		c.NetPlane = faults.NewNetPlane(faults.NetBlackout(), 7)
		c.Retries = -1 // single pass: the test asserts outcomes, not retry depth
		c.BreakerCooldown = 10 * time.Second
	})
	const devices = 8
	for i := 0; i < devices; i++ {
		device := fmt.Sprintf("dev-%05d", i)
		rec := ingest(t, r, device, attackerBatch(t, device, 0))
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d under blackout: %s", device, rec.Code, rec.Body.String())
		}
		var ir sentry.IngestResponse
		if err := json.Unmarshal(rec.Body.Bytes(), &ir); err != nil {
			t.Fatal(err)
		}
		if !ir.Degraded || !ir.Detected {
			t.Fatalf("%s: blackout response degraded=%v detected=%v, want degraded local detection", device, ir.Degraded, ir.Detected)
		}
	}
	st := r.Snapshot()
	if st.Degraded != devices || st.Routed != 0 {
		t.Fatalf("blackout stats: %+v", st)
	}
	if st.FallbackIngests != devices {
		t.Fatalf("fallback ingests %d, want %d", st.FallbackIngests, devices)
	}
	checkAccounting(t, r)
	snap := r.MergedSnapshot(context.Background())
	if snap.Detected != devices {
		t.Fatalf("merged report lost degraded detections: %d of %d", snap.Detected, devices)
	}
}

// TestRouterFailsOverOn429: a shedding peer is failed over without
// breaker damage — opening the circuit on load would amplify the
// overload onto the remaining replicas.
func TestRouterFailsOverOn429(t *testing.T) {
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer shedder.Close()
	node, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(node)
	defer func() { ts.Close(); node.Close() }()

	r, err := New(Config{
		Peers:         []string{strings.TrimPrefix(shedder.URL, "http://"), strings.TrimPrefix(ts.URL, "http://")},
		Replicas:      2,
		ProbeInterval: -1,
		RetryBase:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const devices = 20
	for i := 0; i < devices; i++ {
		device := fmt.Sprintf("dev-%05d", i)
		if rec := ingest(t, r, device, attackerBatch(t, device, 0)); rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", device, rec.Code, rec.Body.String())
		}
	}
	st := r.Snapshot()
	if st.Routed != devices || st.Degraded != 0 {
		t.Fatalf("sheds not failed over: %+v", st)
	}
	if st.Peer429s == 0 {
		t.Fatal("no peer 429s observed despite a permanently shedding replica")
	}
	if st.Peers[0].Breaker != "closed" {
		t.Fatalf("429s opened the shedder's breaker (%s); load shedding must not count as failure", st.Peers[0].Breaker)
	}
	checkAccounting(t, r)
}

// TestRouterConflictFailsBatch: a genuine stream conflict (a replayed
// batch with stale sequence numbers, no transport error involved) is
// classified failed and propagated 409, never silently dropped.
func TestRouterConflictFailsBatch(t *testing.T) {
	r, _ := testRing(t, 3, nil)
	body := attackerBatch(t, "dev-x", 0)
	if rec := ingest(t, r, "dev-x", body); rec.Code != http.StatusOK {
		t.Fatalf("first batch: status %d", rec.Code)
	}
	rec := ingest(t, r, "dev-x", body) // same seqs again
	if rec.Code != http.StatusConflict {
		t.Fatalf("replayed batch: status %d, want 409: %s", rec.Code, rec.Body.String())
	}
	st := r.Snapshot()
	if st.Failed != 1 || st.Routed != 1 || st.DupAcks != 0 {
		t.Fatalf("conflict classification: %+v", st)
	}
	checkAccounting(t, r)
}

// TestRouterRejectsBadBatchesAndRefusesAfterClose: pre-routing
// rejections and shutdown refusals land on their own counters, keeping
// the call-level identity exact.
func TestRouterRejectsBadBatchesAndRefusesAfterClose(t *testing.T) {
	r, _ := testRing(t, 2, nil)
	if rec := ingest(t, r, strings.Repeat("x", 65), benignBatch(t, "dev-a")); rec.Code != http.StatusBadRequest {
		t.Fatalf("bad device: status %d", rec.Code)
	}
	if rec := ingest(t, r, "dev-a", []byte("not wire format\n")); rec.Code != http.StatusBadRequest {
		t.Fatalf("garbage body: status %d", rec.Code)
	}
	if rec := ingest(t, r, "dev-a", nil); rec.Code != http.StatusBadRequest {
		t.Fatalf("empty body: status %d", rec.Code)
	}
	if rec := ingest(t, r, "dev-a", benignBatch(t, "dev-a")); rec.Code != http.StatusOK {
		t.Fatalf("good batch: status %d", rec.Code)
	}
	r.Close()
	rec := ingest(t, r, "dev-b", benignBatch(t, "dev-b"))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-close: status %d, want 503", rec.Code)
	}
	st := r.Snapshot()
	if st.BadBatches != 3 || st.RefusedBatches != 1 || st.Batches != 1 {
		t.Fatalf("rejection counters: %+v", st)
	}
	checkAccounting(t, r)
}

func postConfig(t *testing.T, r *Router, u sentry.ConfigUpdate) *httptest.ResponseRecorder {
	t.Helper()
	body, err := u.Encode()
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", "/v1/config", bytes.NewReader(body))
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	return rec
}

// TestRouterConfigFanout: a config swap on the router reaches every
// peer synchronously, the local engine is the version authority, and
// detections produced after the swap carry the new version through the
// routed path end to end.
func TestRouterConfigFanout(t *testing.T) {
	r, nodes := testRing(t, 3, nil)
	u := r.Local().ConfigSnapshot()
	u.Version = 0
	u.MinSwaps++ // still detection-equivalent for the 8-pair attacker batch

	rec := postConfig(t, r, u)
	if rec.Code != http.StatusOK {
		t.Fatalf("config swap: status %d: %s", rec.Code, rec.Body.String())
	}
	var fan ConfigFanout
	if err := json.Unmarshal(rec.Body.Bytes(), &fan); err != nil {
		t.Fatal(err)
	}
	if fan.Version != 2 || fan.PeersAcked != 3 || fan.Peers != 3 {
		t.Fatalf("fanout = %+v, want version 2 acked 3/3", fan)
	}
	if r.Local().RulesVersion() != 2 {
		t.Fatalf("local version %d, want 2", r.Local().RulesVersion())
	}
	for i, n := range nodes {
		if v := n.Engine().RulesVersion(); v != 2 {
			t.Fatalf("peer %d at version %d after fan-out, want 2", i, v)
		}
	}

	// A detection produced after the swap is stamped with version 2,
	// visible through the router's /v1/flagged proxy.
	if rec := ingest(t, r, "dev-swap", attackerBatch(t, "dev-swap", 0)); rec.Code != http.StatusOK {
		t.Fatalf("post-swap ingest: status %d", rec.Code)
	}
	freq := httptest.NewRequest("GET", "/v1/flagged?device=dev-swap", nil)
	frec := httptest.NewRecorder()
	r.ServeHTTP(frec, freq)
	if frec.Code != http.StatusOK {
		t.Fatalf("flagged: status %d", frec.Code)
	}
	var fr sentry.FlaggedResponse
	if err := json.Unmarshal(frec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if !fr.Flagged || fr.Detection == nil || fr.Detection.ConfigVersion != 2 {
		t.Fatalf("flagged response %+v, want detection stamped version 2", fr)
	}

	// A stale re-push is a 409 and moves nothing; an invalid update is a
	// 400 and moves nothing.
	stale := u
	stale.Version = 1
	if rec := postConfig(t, r, stale); rec.Code != http.StatusConflict {
		t.Fatalf("stale config: status %d, want 409", rec.Code)
	}
	bad := u
	bad.Version = 0
	bad.MinCalls = 0
	if rec := postConfig(t, r, bad); rec.Code != http.StatusBadRequest {
		t.Fatalf("invalid config: status %d, want 400", rec.Code)
	}
	if r.Local().RulesVersion() != 2 {
		t.Fatalf("rejected updates moved the version to %d", r.Local().RulesVersion())
	}
}

// TestRouterFlaggedProxyByteIdentical: the router returns the flagged
// replica's response bytes verbatim, so a journal-recovered answer
// reaches the client unchanged through the ring.
func TestRouterFlaggedProxyByteIdentical(t *testing.T) {
	r, nodes := testRing(t, 3, nil)
	if rec := ingest(t, r, "dev-a", attackerBatch(t, "dev-a", 0)); rec.Code != http.StatusOK {
		t.Fatalf("ingest: status %d", rec.Code)
	}

	req := httptest.NewRequest("GET", "/v1/flagged?device=dev-a", nil)
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("routed flagged: status %d", rec.Code)
	}

	// Ask the first replica directly — same bytes.
	pi := r.Ring().Replicas("dev-a")[0]
	drec := httptest.NewRecorder()
	nodes[pi].ServeHTTP(drec, httptest.NewRequest("GET", "/v1/flagged?device=dev-a", nil))
	if !bytes.Equal(rec.Body.Bytes(), drec.Body.Bytes()) {
		t.Fatalf("proxied flagged response differs from replica's:\n%s\nvs\n%s", rec.Body.Bytes(), drec.Body.Bytes())
	}

	// An unknown (but valid) device answers flagged=false.
	urec := httptest.NewRecorder()
	r.ServeHTTP(urec, httptest.NewRequest("GET", "/v1/flagged?device=dev-none", nil))
	var fr sentry.FlaggedResponse
	if err := json.Unmarshal(urec.Body.Bytes(), &fr); err != nil {
		t.Fatal(err)
	}
	if urec.Code != http.StatusOK || fr.Flagged {
		t.Fatalf("unknown device: status %d flagged %v", urec.Code, fr.Flagged)
	}
}

// TestRouterProbeHealsRestartedPeer: a peer that dies and comes back at
// the same address is re-admitted by the probes AND healed to the
// ring's config version — the restarted process came up at version 1
// with empty in-memory rules history.
func TestRouterProbeHealsRestartedPeer(t *testing.T) {
	node, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	ts := httptest.NewServer(node)
	addr := strings.TrimPrefix(ts.URL, "http://")

	r, err := New(Config{
		Peers:            []string{addr},
		Replicas:         1,
		ProbeInterval:    10 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
		RetryBase:        time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	waitFor := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st, _ := r.peers[0].brk.snapshot(); st == want {
				return
			}
			if time.Now().After(deadline) {
				st, _ := r.peers[0].brk.snapshot()
				t.Fatalf("breaker stuck %s, want %s", st, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("closed")

	// Swap the ring to version 2 while the peer is up.
	u := r.Local().ConfigSnapshot()
	u.Version = 0
	u.NotifFlood++
	if rec := postConfig(t, r, u); rec.Code != http.StatusOK {
		t.Fatalf("config swap: status %d", rec.Code)
	}
	if v := node.Engine().RulesVersion(); v != 2 {
		t.Fatalf("peer at version %d before restart, want 2", v)
	}

	ts.CloseClientConnections()
	ts.Close()
	waitFor("open")

	// Restart at the same address with a fresh process image: rule
	// version 1, no history. httptest can't rebind a closed listener, so
	// serve the fresh node directly.
	node2, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer node2.Close()
	ln, err := newListener(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := &http.Server{Handler: node2}
	go srv.Serve(ln)
	defer srv.Close()

	waitFor("closed")
	deadline := time.Now().Add(5 * time.Second)
	for node2.Engine().RulesVersion() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("restarted peer stuck at version %d; probe re-push did not heal it", node2.Engine().RulesVersion())
		}
		time.Sleep(2 * time.Millisecond)
	}
	if r.Snapshot().ConfigPushes < 2 {
		t.Fatalf("config pushes %d, want the fan-out push plus the probe re-push", r.Snapshot().ConfigPushes)
	}
}
