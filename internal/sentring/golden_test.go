package sentring

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/sentry"
)

// replayAgainstRing boots a ring of nodes real sentryd servers behind a
// router and replays the fleet over real HTTP through the routed path.
func replayAgainstRing(t *testing.T, fl *sentry.Fleet, nodes, clients int) string {
	t.Helper()
	peers := make([]string, nodes)
	for i := 0; i < nodes; i++ {
		node, err := sentry.NewServer(sentry.ServerConfig{QueueDepth: 256})
		if err != nil {
			t.Fatal(err)
		}
		ts := httptest.NewServer(node)
		t.Cleanup(func() { ts.Close(); node.Close() })
		peers[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	r, err := New(Config{
		Peers:         peers,
		Replicas:      2, // clamped to 1 on a single-node ring
		ProbeInterval: -1,
		RetryBase:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	front := httptest.NewServer(r)
	t.Cleanup(front.Close)

	client := &http.Client{Timeout: 15 * time.Second}
	rs := sentry.ReplayFleet(client, front.URL, fl, clients, 48)
	if rs.Errors > 0 {
		t.Fatalf("replay errors: %d (first: %s)", rs.Errors, rs.FirstError)
	}
	st := r.Snapshot()
	if st.Routed != st.Batches || st.Degraded != 0 || st.Sheds != 0 || st.Failed != 0 {
		t.Fatalf("healthy routed replay classified batches off the routed path: %+v", st)
	}
	return sentry.RenderFleetReport(r.MergedSnapshot(context.Background()), fl, rs)
}

// TestGoldenRoutedFleetReplay is the topology-independence bar for the
// multi-node sentry: the same labeled fleet replayed through a 1-node
// and a 3-node routed ring must render byte-identically — and
// identically to the single-node golden committed by the sentry
// package's own conformance suite. Detection is a pure function of the
// device stream; topology must never show through the report.
func TestGoldenRoutedFleetReplay(t *testing.T) {
	for _, g := range []struct {
		seed   int64
		suffix string
	}{
		{42, ""},
		{7, "-seed7"},
	} {
		g := g
		t.Run("fleet"+g.suffix, func(t *testing.T) {
			fl, err := sentry.GenerateFleet(sentry.FleetConfig{
				Devices: 600, Attackers: 12, NotifAbusers: 6,
				Span: 12 * time.Second, Seed: g.seed,
			})
			if err != nil {
				t.Fatal(err)
			}
			reports := make(map[int]string, 2)
			for i, nodes := range []int{1, 3} {
				reports[nodes] = replayAgainstRing(t, fl, nodes, 8*(i+1))
			}
			if reports[1] != reports[3] {
				t.Fatalf("reports differ across node counts:\n-- nodes=1 --\n%s\n-- nodes=3 --\n%s",
					reports[1], reports[3])
			}
			goldenPath := filepath.Join("..", "sentry", "testdata", "golden", fmt.Sprintf("fleet%s.txt", g.suffix))
			want, err := os.ReadFile(goldenPath)
			if err != nil {
				t.Fatalf("read single-node golden: %v", err)
			}
			if reports[3] != string(want) {
				t.Errorf("routed report drifted from the single-node golden %s\n-- routed --\n%s\n-- golden --\n%s",
					goldenPath, reports[3], string(want))
			}
		})
	}
}
