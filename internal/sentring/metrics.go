package sentring

import (
	"fmt"
	"io"
	"sync/atomic"
)

// Metrics is the router's observability surface.
//
// Batch contract (tested): every POST /v1/ingest increments IngestCalls
// and then either lands on BadBatches (rejected before routing) or
// RefusedBatches (503 after shutdown began), or increments Batches and
// exactly one of
//
//	Routed   — acked by at least one ring replica
//	Degraded — no replica acked; absorbed by the local fallback engine
//	Sheds    — rejected 429 (replicas unreachable and fallback full)
//	Failed   — rejected by the ring as a stream conflict, or the
//	           fallback ingest itself failed
//
// so Routed + Degraded + Sheds + Failed == Batches and
// Batches + BadBatches + RefusedBatches == IngestCalls at every
// quiescent instant. Retries, acks and failovers are attempt-level
// counters and do not participate in the batch-level identity.
type Metrics struct {
	IngestCalls    atomic.Uint64
	Batches        atomic.Uint64
	Routed         atomic.Uint64
	Degraded       atomic.Uint64
	Sheds          atomic.Uint64
	Failed         atomic.Uint64
	BadBatches     atomic.Uint64
	RefusedBatches atomic.Uint64

	// Attempt-level counters.
	Retries  atomic.Uint64 // extra replica passes after an incomplete one
	Acks     atomic.Uint64 // 200 acks from peers
	DupAcks  atomic.Uint64 // 409 after a transport error: already applied
	Peer429s atomic.Uint64 // peer shed; no ack, no breaker damage
	PeerErrs atomic.Uint64 // transport errors + 5xx from peers

	// Probe counters.
	ProbeOK   atomic.Uint64
	ProbeFail atomic.Uint64

	// ConfigPushes counts config fan-out attempts to peers (including
	// probe-recovery re-pushes); ConfigPushErrs the ones that failed.
	ConfigPushes   atomic.Uint64
	ConfigPushErrs atomic.Uint64

	// FallbackIngests counts local fallback engine ingests (the degraded
	// path's work).
	FallbackIngests atomic.Uint64
}

// PeerStats is one peer's slice of the /stats snapshot.
type PeerStats struct {
	Name    string `json:"name"`
	Breaker string `json:"breaker"`
	Opens   uint64 `json:"breaker_opens"`
	Served  uint64 `json:"served"`
	Errors  uint64 `json:"errors"`
}

// Stats is the router's GET /stats JSON snapshot. Service is
// "sentryrouter", the discriminator load generators key on to pick the
// right accounting invariant.
type Stats struct {
	Service        string `json:"service"`
	IngestCalls    uint64 `json:"ingest_calls"`
	Batches        uint64 `json:"batches"`
	Routed         uint64 `json:"routed"`
	Degraded       uint64 `json:"degraded"`
	Sheds          uint64 `json:"sheds"`
	Failed         uint64 `json:"failed"`
	BadBatches     uint64 `json:"bad_batches"`
	RefusedBatches uint64 `json:"refused_batches"`

	Retries  uint64 `json:"retries"`
	Acks     uint64 `json:"acks"`
	DupAcks  uint64 `json:"dup_acks"`
	Peer429s uint64 `json:"peer_429s"`
	PeerErrs uint64 `json:"peer_errors"`

	ProbeOK   uint64 `json:"probe_ok"`
	ProbeFail uint64 `json:"probe_fail"`

	ConfigVersion  uint64 `json:"config_version"`
	ConfigPushes   uint64 `json:"config_pushes"`
	ConfigPushErrs uint64 `json:"config_push_errors"`

	FallbackIngests uint64 `json:"fallback_ingests"`

	Peers []PeerStats `json:"peers"`
}

// WriteProm renders the router metrics in Prometheus text exposition
// format.
func (r *Router) WriteProm(w io.Writer) {
	m := &r.metrics
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("sentryrouter_ingest_total", "Ingest requests received.", m.IngestCalls.Load())
	counter("sentryrouter_batches_total", "Batches accepted for routing.", m.Batches.Load())
	counter("sentryrouter_routed_total", "Batches acked by at least one ring replica.", m.Routed.Load())
	counter("sentryrouter_degraded_total", "Batches absorbed by the local fallback engine.", m.Degraded.Load())
	counter("sentryrouter_shed_total", "Batches rejected 429.", m.Sheds.Load())
	counter("sentryrouter_failed_total", "Batches rejected as conflicts or failed internally.", m.Failed.Load())
	counter("sentryrouter_bad_batches_total", "Requests rejected before routing.", m.BadBatches.Load())
	counter("sentryrouter_refused_total", "Requests refused 503 during shutdown.", m.RefusedBatches.Load())
	counter("sentryrouter_retries_total", "Extra replica passes after an incomplete one.", m.Retries.Load())
	counter("sentryrouter_acks_total", "200 acks from peers.", m.Acks.Load())
	counter("sentryrouter_dup_acks_total", "409 duplicate acks after a transport error.", m.DupAcks.Load())
	counter("sentryrouter_peer_429_total", "Peer sheds observed.", m.Peer429s.Load())
	counter("sentryrouter_peer_errors_total", "Peer transport errors and 5xx.", m.PeerErrs.Load())
	counter("sentryrouter_probe_ok_total", "Successful health probes.", m.ProbeOK.Load())
	counter("sentryrouter_probe_fail_total", "Failed health probes.", m.ProbeFail.Load())
	counter("sentryrouter_config_pushes_total", "Config fan-out attempts to peers.", m.ConfigPushes.Load())
	counter("sentryrouter_config_push_errors_total", "Config fan-out attempts that failed.", m.ConfigPushErrs.Load())
	counter("sentryrouter_fallback_ingests_total", "Local fallback engine ingests.", m.FallbackIngests.Load())
	fmt.Fprintf(w, "# HELP sentryrouter_config_version Active detection rule-set version.\n# TYPE sentryrouter_config_version gauge\nsentryrouter_config_version %d\n", r.local.RulesVersion())
	fmt.Fprintf(w, "# HELP sentryrouter_peer_served_total Batches acked per peer.\n# TYPE sentryrouter_peer_served_total counter\n")
	for _, p := range r.peerStats() {
		fmt.Fprintf(w, "sentryrouter_peer_served_total{peer=%q} %d\n", p.Name, p.Served)
	}
	fmt.Fprintf(w, "# HELP sentryrouter_peer_breaker_open Peer breaker state (1 = not closed).\n# TYPE sentryrouter_peer_breaker_open gauge\n")
	for _, p := range r.peerStats() {
		open := 0
		if p.Breaker != "closed" {
			open = 1
		}
		fmt.Fprintf(w, "sentryrouter_peer_breaker_open{peer=%q,state=%q} %d\n", p.Name, p.Breaker, open)
	}
}

// Snapshot assembles the current Stats.
func (r *Router) Snapshot() Stats {
	m := &r.metrics
	return Stats{
		Service:         "sentryrouter",
		IngestCalls:     m.IngestCalls.Load(),
		Batches:         m.Batches.Load(),
		Routed:          m.Routed.Load(),
		Degraded:        m.Degraded.Load(),
		Sheds:           m.Sheds.Load(),
		Failed:          m.Failed.Load(),
		BadBatches:      m.BadBatches.Load(),
		RefusedBatches:  m.RefusedBatches.Load(),
		Retries:         m.Retries.Load(),
		Acks:            m.Acks.Load(),
		DupAcks:         m.DupAcks.Load(),
		Peer429s:        m.Peer429s.Load(),
		PeerErrs:        m.PeerErrs.Load(),
		ProbeOK:         m.ProbeOK.Load(),
		ProbeFail:       m.ProbeFail.Load(),
		ConfigVersion:   r.local.RulesVersion(),
		ConfigPushes:    m.ConfigPushes.Load(),
		ConfigPushErrs:  m.ConfigPushErrs.Load(),
		FallbackIngests: m.FallbackIngests.Load(),
		Peers:           r.peerStats(),
	}
}
