package sentring

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a fixed peer set. Each peer owns
// VNodes points on a 64-bit circle; a device's replica set is the first
// R distinct peers clockwise from the device ID's hash. The mapping is
// a pure function of (peers, vnodes) — every router instance built from
// the same flags computes identical placements, which is what lets N
// stateless routers front one ring — and adding a peer moves only the
// devices that land on its virtual points (the classic 1/N reshuffle).
type Ring struct {
	peers    []string
	replicas int
	points   []ringPoint // sorted by hash
}

type ringPoint struct {
	hash uint64
	peer int // index into peers
}

// hash64 is FNV-1a with a SplitMix64 avalanche finalizer. Raw FNV-1a
// keeps keys that differ only in their last few bytes numerically close
// (the trailing bytes see too few multiplies), so a fleet of sequential
// device IDs collapses onto a handful of ring arcs and the "uniform"
// sharding becomes a two-peer hotspot. The finalizer spreads every bit.
func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	z := h.Sum64() + 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRing builds a ring over peers with vnodes virtual points per peer
// and replica sets of size replicas (clamped to the peer count).
func NewRing(peers []string, vnodes, replicas int) (*Ring, error) {
	if len(peers) == 0 {
		return nil, fmt.Errorf("sentring: empty peer set")
	}
	seen := make(map[string]bool, len(peers))
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("sentring: empty peer name")
		}
		if seen[p] {
			return nil, fmt.Errorf("sentring: duplicate peer %q", p)
		}
		seen[p] = true
	}
	if vnodes < 1 {
		vnodes = 64
	}
	if replicas < 1 {
		replicas = 1
	}
	if replicas > len(peers) {
		replicas = len(peers)
	}
	r := &Ring{
		peers:    append([]string(nil), peers...),
		replicas: replicas,
		points:   make([]ringPoint, 0, len(peers)*vnodes),
	}
	for i, p := range peers {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{hash: hash64(fmt.Sprintf("%s#%d", p, v)), peer: i})
		}
	}
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].peer < r.points[b].peer
	})
	return r, nil
}

// Peers returns the peer names, in construction order (the index space
// Replicas speaks).
func (r *Ring) Peers() []string { return r.peers }

// ReplicaCount returns the effective replica set size.
func (r *Ring) ReplicaCount() int { return r.replicas }

// Replicas returns the ordered replica set for a device ID: the first R
// distinct peers clockwise from the device's point. The first entry is
// the primary; the rest are the replication targets in preference
// order.
func (r *Ring) Replicas(device string) []int {
	h := hash64(device)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]int, 0, r.replicas)
	taken := make(map[int]bool, r.replicas)
	for i := 0; i < len(r.points) && len(out) < r.replicas; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !taken[p] {
			taken[p] = true
			out = append(out, p)
		}
	}
	return out
}
