package sentring

import (
	"sync"
	"time"
)

// breakerState is the classic three-state circuit.
type breakerState int

const (
	breakerClosed   breakerState = iota // requests flow
	breakerOpen                         // requests skip the peer until cooldown
	breakerHalfOpen                     // one trial request probes recovery
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is a per-peer circuit breaker. Threshold consecutive failures
// open it; after cooldown the next allow() admits exactly one trial
// (half-open); the trial's outcome closes or re-opens the circuit. Both
// the ingest path and the background health probe feed it, so a peer
// that dies between batches is discovered by the probe and a peer that
// recovers is readmitted within one cooldown either way.
type breaker struct {
	threshold int
	cooldown  time.Duration

	mu       sync.Mutex
	state    breakerState
	failures int
	openedAt time.Time
	opens    uint64
}

func newBreaker(threshold int, cooldown time.Duration) *breaker {
	if threshold < 1 {
		threshold = 3
	}
	if cooldown <= 0 {
		cooldown = time.Second
	}
	return &breaker{threshold: threshold, cooldown: cooldown}
}

// allow reports whether a request may be sent to the peer now. In the
// open state it flips to half-open once the cooldown has elapsed,
// admitting a single trial; further callers keep being refused until
// that trial reports an outcome.
func (b *breaker) allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		return true
	case breakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // half-open: one trial is already out
		return false
	}
}

// onSuccess records a successful exchange with the peer.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = breakerClosed
	b.failures = 0
}

// onFailure records a failed exchange; a half-open trial failure
// re-opens immediately, a closed-state failure opens at the threshold.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.failures++
	if b.state == breakerHalfOpen || (b.state == breakerClosed && b.failures >= b.threshold) {
		b.state = breakerOpen
		b.openedAt = time.Now()
		b.opens++
	} else if b.state == breakerOpen {
		// A failure while open (e.g. a probe racing the trial) restarts
		// the cooldown.
		b.openedAt = time.Now()
	}
}

// snapshot returns the state name and open-transition count.
func (b *breaker) snapshot() (string, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state.String(), b.opens
}
