package sentring

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/faults"
)

// faultTransport is the fault-injection seam of the network plane: an
// http.RoundTripper that consults a faults.NetPlane before forwarding
// to the real transport. The deterministic decision (drop / delay /
// synthesize) lives in the plane; this adapter only enacts it — it is
// the one place in the ring that sleeps or fabricates responses, and it
// is never installed when the plane is nil, so production paths carry
// zero fault-injection overhead.
type faultTransport struct {
	base  http.RoundTripper
	plane *faults.NetPlane
	peer  int
}

// newPeerTransport wraps base with fault injection for peer index i;
// with a nil plane it returns base untouched.
func newPeerTransport(base http.RoundTripper, plane *faults.NetPlane, i int) http.RoundTripper {
	if plane == nil {
		return base
	}
	return &faultTransport{base: base, plane: plane, peer: i}
}

func (t *faultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	f := t.plane.RequestFault(t.peer)
	if f.Drop {
		// The request body must be consumed/closed like a real transport
		// would, or client retries leak body readers.
		if req.Body != nil {
			req.Body.Close()
		}
		return nil, fmt.Errorf("netfault: peer %d unreachable (injected)", t.peer)
	}
	if f.Delay > 0 {
		select {
		case <-time.After(f.Delay):
		case <-req.Context().Done():
			if req.Body != nil {
				req.Body.Close()
			}
			return nil, req.Context().Err()
		}
	}
	if f.Status != 0 {
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return &http.Response{
			Status:     fmt.Sprintf("%d netfault", f.Status),
			StatusCode: f.Status,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"application/json"}},
			Body:       io.NopCloser(strings.NewReader(`{"error":"injected 5xx storm"}`)),
			Request:    req,
		}, nil
	}
	return t.base.RoundTrip(req)
}
