// Package faults is a deterministic fault-injection plane for the
// simulated Android stack. A Plane is built from a named Profile and its
// own seed, and is threaded through the layers as a set of narrow hooks:
// binder latency spikes, transaction drops and duplication, delivery
// reordering pressure (binder.Bus), frame drops and jitter on the 10 ms
// animation clock (anim), scheduler preemption pauses on the attacker
// thread (core), and toast-queue overflow pressure (sysserver).
//
// Determinism contract: all randomness flows through simrand sub-streams
// private to the Plane, drawn in event order on the single-threaded
// simulation clock — same seed and same profile therefore reproduce the
// same faults byte for byte. A hook whose fault class has zero probability
// returns the zero fault WITHOUT consuming a draw, so a Plane built from a
// zero profile is a strict no-op: attaching it perturbs neither the event
// schedule nor any other component's random stream.
package faults

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/binder"
	"repro/internal/simrand"
)

// Profile describes one named mix of fault classes. The zero value injects
// nothing. Probabilities are per opportunity: per transaction for the
// binder classes, per scheduled frame for the anim classes, per timer
// re-arm for preemption, per pump tick for toast pressure.
type Profile struct {
	// Name labels the profile in reports.
	Name string

	// Binder plane: DropProb discards a transaction after it is assigned
	// an id (the caller still sees success — oneway semantics), DupProb
	// delivers it twice, SpikeProb adds a Spike-sampled latency to the
	// delivery, ReorderProb adds a ReorderDelay-sampled holding delay that
	// lets calls on other streams overtake (per-stream FIFO is preserved
	// by the bus, so this models cross-stream reordering pressure).
	DropProb     float64
	DupProb      float64
	SpikeProb    float64
	Spike        simrand.Dist
	ReorderProb  float64
	ReorderDelay simrand.Dist

	// Animation plane: FrameDropProb skips one frame slot entirely,
	// FrameJitterProb shifts the next frame by a FrameJitter-sampled
	// amount off the 10 ms grid.
	FrameDropProb   float64
	FrameJitterProb float64
	FrameJitter     simrand.Dist

	// Scheduler plane: PreemptProb stalls the attacker's next timer
	// re-arm by a Preempt-sampled pause (GC pause / priority inversion).
	PreemptProb float64
	Preempt     simrand.Dist

	// Toast plane: with ToastBurstProb per pump tick, a noise app
	// enqueues a burst of 1..ToastBurstMax toasts, pressuring the
	// system_server toast queue toward its 50-token cap.
	ToastBurstProb float64
	ToastBurstMax  int

	// Thermal plane: sustained-load throttling that drifts frame times.
	// With probability ThermalProb — decided once per run, on the first
	// scheduled frame — the device throttles: the first
	// ThermalOnsetFrames frames render on time, then a per-frame drift
	// ramps linearly over the next ThermalRampFrames frames up to a
	// ThermalMaxDrift-sampled ceiling and stays there. Frames are the
	// unit (not wall time) because the hook fires once per scheduled
	// frame; at the 10 ms grid, 100 frames ≈ 1 s of sustained animation
	// load.
	ThermalProb        float64
	ThermalOnsetFrames int
	ThermalRampFrames  int
	ThermalMaxDrift    simrand.Dist

	// Burst gate: a seeded two-state (quiet/burst) Markov chain, stepped
	// once per binder transaction, that correlates the drop and dup
	// classes into bursts. With BurstEnterProb > 0 the gate is enabled:
	// DropProb and DupProb then apply only while the chain is in its
	// burst state, entered with probability BurstEnterProb per quiet
	// transaction and left with probability BurstExitProb per burst
	// transaction (mean burst length 1/BurstExitProb transactions). With
	// BurstEnterProb = 0 the gate is absent and drop/dup behave exactly
	// as before — uncorrelated per-transaction coin flips. The gate draws
	// from its own private sub-stream, so enabling it never perturbs the
	// draws of any other fault class.
	BurstEnterProb float64
	BurstExitProb  float64
}

// Zero reports whether the profile injects nothing at all.
func (p Profile) Zero() bool {
	return p.DropProb <= 0 && p.DupProb <= 0 && p.SpikeProb <= 0 &&
		p.ReorderProb <= 0 && p.FrameDropProb <= 0 && p.FrameJitterProb <= 0 &&
		p.PreemptProb <= 0 && (p.ToastBurstProb <= 0 || p.ToastBurstMax <= 0) &&
		p.ThermalProb <= 0
}

// Scale returns a copy with every probability multiplied by x (clamped to
// [0,1]); fault magnitudes (the Dists, the toast burst size, and
// BurstExitProb — the reciprocal of the mean binder-burst length) are
// unchanged. Scale(0) is a zero profile; Scale(1) is p itself.
func (p Profile) Scale(x float64) Profile {
	if x < 0 {
		x = 0
	}
	mul := func(pr float64) float64 {
		v := pr * x
		if v > 1 {
			v = 1
		}
		return v
	}
	q := p
	q.DropProb = mul(p.DropProb)
	q.DupProb = mul(p.DupProb)
	q.SpikeProb = mul(p.SpikeProb)
	q.ReorderProb = mul(p.ReorderProb)
	q.FrameDropProb = mul(p.FrameDropProb)
	q.FrameJitterProb = mul(p.FrameJitterProb)
	q.PreemptProb = mul(p.PreemptProb)
	q.ToastBurstProb = mul(p.ToastBurstProb)
	q.BurstEnterProb = mul(p.BurstEnterProb)
	q.ThermalProb = mul(p.ThermalProb)
	return q
}

// None is the empty profile: the plane compiles in but injects nothing.
func None() Profile { return Profile{Name: "none"} }

// BinderStress exercises the IPC plane: drops, duplicates, latency spikes
// and reordering pressure at rates loosely matching the lossy, reorderable
// notification delivery reported by Knock-Knock (PAPERS.md).
func BinderStress() Profile {
	return Profile{
		Name:         "binder",
		DropProb:     0.02,
		DupProb:      0.01,
		SpikeProb:    0.10,
		Spike:        simrand.NormalDist(40, 15),
		ReorderProb:  0.05,
		ReorderDelay: simrand.NormalDist(20, 8),
	}
}

// AnimStress perturbs the frame clock: dropped frames and off-grid jitter.
func AnimStress() Profile {
	return Profile{
		Name:            "anim",
		FrameDropProb:   0.15,
		FrameJitterProb: 0.25,
		FrameJitter:     simrand.NormalDist(4, 2),
	}
}

// SchedStress preempts the attacker thread's timer re-arms, modelling the
// scheduler spikes the paper observes as outlier mistouches.
func SchedStress() Profile {
	return Profile{
		Name:        "sched",
		PreemptProb: 0.20,
		Preempt:     simrand.NormalDist(30, 10),
	}
}

// ToastStress floods the system_server toast queue from a noise app.
func ToastStress() Profile {
	return Profile{
		Name:           "toast",
		ToastBurstProb: 0.50,
		ToastBurstMax:  8,
	}
}

// BinderBurst models correlated binder-fault bursts: most of the time the
// bus is clean, but a seeded Markov gate occasionally opens a burst window
// (mean length 1/BurstExitProb = 4 transactions) during which drops and
// duplicates are heavy. The stationary burst duty cycle is
// enter/(enter+exit) ≈ 7.4%, putting the long-run drop rate near
// BinderStress's 2% while concentrating the losses into runs — the
// correlated-failure texture of a congested Binder rather than
// independent per-transaction coin flips.
func BinderBurst() Profile {
	return Profile{
		Name:           "burst",
		DropProb:       0.35,
		DupProb:        0.10,
		BurstEnterProb: 0.02,
		BurstExitProb:  0.25,
	}
}

// Thermal models sustained-load throttling: the run always throttles,
// frames render on time for the first ~600 ms of animation load, then the
// per-frame drift ramps over the next ~1.2 s to a ceiling of a few
// milliseconds per frame — the slow-motion animation stretch of a hot
// SoC stepping down its clocks.
func Thermal() Profile {
	return Profile{
		Name:               "thermal",
		ThermalProb:        1,
		ThermalOnsetFrames: 60,
		ThermalRampFrames:  120,
		ThermalMaxDrift:    simrand.NormalDist(6, 2),
	}
}

// Chaos combines every fault class at moderate rates.
func Chaos() Profile {
	return Profile{
		Name:            "chaos",
		DropProb:        0.01,
		DupProb:         0.005,
		SpikeProb:       0.05,
		Spike:           simrand.NormalDist(40, 15),
		ReorderProb:     0.03,
		ReorderDelay:    simrand.NormalDist(20, 8),
		FrameDropProb:   0.08,
		FrameJitterProb: 0.12,
		FrameJitter:     simrand.NormalDist(4, 2),
		PreemptProb:     0.10,
		Preempt:         simrand.NormalDist(30, 10),
		ToastBurstProb:  0.25,
		ToastBurstMax:   6,
	}
}

var profilesByName = map[string]func() Profile{
	"none":    None,
	"binder":  BinderStress,
	"burst":   BinderBurst,
	"anim":    AnimStress,
	"sched":   SchedStress,
	"toast":   ToastStress,
	"thermal": Thermal,
	"chaos":   Chaos,
}

// ByName resolves a named profile (see Names).
func ByName(name string) (Profile, error) {
	f, ok := profilesByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return Profile{}, fmt.Errorf("faults: unknown profile %q (have %s)", name, strings.Join(Names(), ", "))
	}
	return f(), nil
}

// Names lists the named profiles in sorted order.
func Names() []string {
	out := make([]string, 0, len(profilesByName))
	for n := range profilesByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Stats counts the faults a Plane actually injected.
type Stats struct {
	TxDropped    uint64
	TxDuplicated uint64
	TxSpiked     uint64
	TxReordered  uint64

	// BurstsEntered counts quiet→burst transitions of the binder burst
	// gate; BurstTx counts transactions that passed while the gate was in
	// its burst state (drops and dups can only occur among these when the
	// gate is enabled).
	BurstsEntered uint64
	BurstTx       uint64

	FramesDropped  uint64
	FramesJittered uint64

	// ThermalRuns counts runs in which the throttling coin came up armed
	// (at most 1 per Plane); FramesThrottled counts frames past onset that
	// received a thermal drift, and ThermalDriftTotal sums that drift.
	ThermalRuns       uint64
	FramesThrottled   uint64
	ThermalDriftTotal time.Duration

	Preemptions  uint64
	PreemptTotal time.Duration

	ToastBursts uint64
	ToastTokens uint64
}

// Add returns the element-wise sum of s and o.
func (s Stats) Add(o Stats) Stats {
	s.TxDropped += o.TxDropped
	s.TxDuplicated += o.TxDuplicated
	s.TxSpiked += o.TxSpiked
	s.TxReordered += o.TxReordered
	s.BurstsEntered += o.BurstsEntered
	s.BurstTx += o.BurstTx
	s.FramesDropped += o.FramesDropped
	s.FramesJittered += o.FramesJittered
	s.ThermalRuns += o.ThermalRuns
	s.FramesThrottled += o.FramesThrottled
	s.ThermalDriftTotal += o.ThermalDriftTotal
	s.Preemptions += o.Preemptions
	s.PreemptTotal += o.PreemptTotal
	s.ToastBursts += o.ToastBursts
	s.ToastTokens += o.ToastTokens
	return s
}

// Zero reports whether no faults were injected.
func (s Stats) Zero() bool { return s == (Stats{}) }

// String renders the non-zero counters on one line.
func (s Stats) String() string {
	var parts []string
	add := func(name string, v uint64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("txDrop", s.TxDropped)
	add("txDup", s.TxDuplicated)
	add("txSpike", s.TxSpiked)
	add("txReorder", s.TxReordered)
	add("burst", s.BurstsEntered)
	add("burstTx", s.BurstTx)
	add("frameDrop", s.FramesDropped)
	add("frameJitter", s.FramesJittered)
	add("thermal", s.ThermalRuns)
	add("throttled", s.FramesThrottled)
	add("preempt", s.Preemptions)
	add("toastBurst", s.ToastBursts)
	add("toastTokens", s.ToastTokens)
	if len(parts) == 0 {
		return "no faults injected"
	}
	return strings.Join(parts, " ")
}

// Plane is a live fault injector for one simulation run. It is not safe
// for concurrent use; like the clock it belongs to exactly one run.
type Plane struct {
	prof Profile

	// One private sub-stream per fault class, so enabling one class never
	// perturbs the draws of another.
	binderRng  *simrand.Source
	animRng    *simrand.Source
	schedRng   *simrand.Source
	toastRng   *simrand.Source
	burstRng   *simrand.Source
	thermalRng *simrand.Source

	// inBurst is the binder burst gate's Markov state.
	inBurst bool

	// Thermal state: the armed coin is flipped on the first frame of the
	// run (thermalDecided gates the flip), frames counts FrameFault calls
	// so onset and ramp are measured in scheduled frames.
	thermalDecided  bool
	thermalArmed    bool
	thermalMaxDrift time.Duration
	frames          int

	stats Stats
}

// NewPlane builds a Plane for profile p from its own seed. The seed is
// deliberately independent of the stack's root seed: deriving from the
// stack root would consume a draw there and change an unfaulted run.
func NewPlane(p Profile, seed int64) *Plane {
	root := simrand.New(seed)
	return &Plane{
		prof:       p,
		binderRng:  root.Derive("faults/binder"),
		animRng:    root.Derive("faults/anim"),
		schedRng:   root.Derive("faults/sched"),
		toastRng:   root.Derive("faults/toast"),
		burstRng:   root.Derive("faults/burst"),
		thermalRng: root.Derive("faults/thermal"),
	}
}

// Profile returns the profile the plane was built from.
func (pl *Plane) Profile() Profile { return pl.prof }

// Stats reports the faults injected so far.
func (pl *Plane) Stats() Stats { return pl.stats }

// TransactionFault implements binder.FaultInjector: it decides the fate of
// one transaction. A dropped transaction short-circuits the remaining
// classes (there is nothing left to duplicate or delay).
func (pl *Plane) TransactionFault(from, to binder.ProcessID, method string) binder.TxFault {
	var f binder.TxFault
	p := pl.prof
	// Step the burst gate first: with the gate enabled, the drop and dup
	// classes fire only inside a burst window. The gate draws exactly one
	// Bool per transaction from its private stream, so the chain's
	// trajectory — and hence the burst placement — is a pure function of
	// the plane's seed, independent of which effect classes are enabled.
	dropProb, dupProb := p.DropProb, p.DupProb
	if p.BurstEnterProb > 0 {
		if pl.inBurst {
			if pl.burstRng.Bool(p.BurstExitProb) {
				pl.inBurst = false
			}
		} else if pl.burstRng.Bool(p.BurstEnterProb) {
			pl.inBurst = true
			pl.stats.BurstsEntered++
		}
		if pl.inBurst {
			pl.stats.BurstTx++
		} else {
			dropProb, dupProb = 0, 0
		}
	}
	if dropProb > 0 && pl.binderRng.Bool(dropProb) {
		pl.stats.TxDropped++
		f.Drop = true
		return f
	}
	if dupProb > 0 && pl.binderRng.Bool(dupProb) {
		pl.stats.TxDuplicated++
		f.Duplicate = true
	}
	if p.SpikeProb > 0 && pl.binderRng.Bool(p.SpikeProb) {
		pl.stats.TxSpiked++
		f.Delay += p.Spike.Sample(pl.binderRng)
	}
	if p.ReorderProb > 0 && pl.binderRng.Bool(p.ReorderProb) {
		pl.stats.TxReordered++
		f.Delay += p.ReorderDelay.Sample(pl.binderRng)
	}
	return f
}

// FrameFault matches anim.FaultFunc: per scheduled frame it reports
// whether the frame slot is dropped and how far the next frame shifts off
// the grid.
func (pl *Plane) FrameFault(name string) (dropFrame bool, jitter time.Duration) {
	p := pl.prof
	if p.FrameDropProb > 0 && pl.animRng.Bool(p.FrameDropProb) {
		pl.stats.FramesDropped++
		dropFrame = true
	}
	if p.FrameJitterProb > 0 && pl.animRng.Bool(p.FrameJitterProb) {
		jitter = p.FrameJitter.Sample(pl.animRng)
		if jitter > 0 {
			pl.stats.FramesJittered++
		}
	}
	if p.ThermalProb > 0 {
		jitter += pl.thermalDrift()
	}
	return dropFrame, jitter
}

// thermalDrift computes this frame's sustained-load throttling drift. The
// armed coin and the drift ceiling are drawn once, on the first frame,
// from the thermal plane's private stream; afterwards the drift is a pure
// function of the frame counter, so throttling consumes exactly two
// draws per run no matter how long it runs.
func (pl *Plane) thermalDrift() time.Duration {
	p := pl.prof
	pl.frames++
	if !pl.thermalDecided {
		pl.thermalDecided = true
		pl.thermalArmed = pl.thermalRng.Bool(p.ThermalProb)
		if pl.thermalArmed {
			pl.stats.ThermalRuns++
			pl.thermalMaxDrift = p.ThermalMaxDrift.Sample(pl.thermalRng)
		}
	}
	if !pl.thermalArmed || pl.thermalMaxDrift <= 0 {
		return 0
	}
	past := pl.frames - p.ThermalOnsetFrames
	if past <= 0 {
		return 0
	}
	frac := 1.0
	if p.ThermalRampFrames > 0 && past < p.ThermalRampFrames {
		frac = float64(past) / float64(p.ThermalRampFrames)
	}
	d := time.Duration(float64(pl.thermalMaxDrift) * frac)
	if d > 0 {
		pl.stats.FramesThrottled++
		pl.stats.ThermalDriftTotal += d
	}
	return d
}

// PreemptPause reports how long the attacker thread's next timer re-arm is
// stalled by a simulated preemption (zero most of the time).
func (pl *Plane) PreemptPause() time.Duration {
	p := pl.prof
	if p.PreemptProb <= 0 || !pl.schedRng.Bool(p.PreemptProb) {
		return 0
	}
	d := p.Preempt.Sample(pl.schedRng)
	if d > 0 {
		pl.stats.Preemptions++
		pl.stats.PreemptTotal += d
	}
	return d
}

// ToastPressureActive reports whether the toast pump should be armed at
// all; when false the pump is never scheduled, keeping the event queue of
// a pressure-free run untouched.
func (pl *Plane) ToastPressureActive() bool {
	return pl.prof.ToastBurstProb > 0 && pl.prof.ToastBurstMax > 0
}

// ToastBurst draws the number of noise toasts to enqueue this pump tick.
func (pl *Plane) ToastBurst() int {
	p := pl.prof
	if !pl.ToastPressureActive() || !pl.toastRng.Bool(p.ToastBurstProb) {
		return 0
	}
	n := 1 + pl.toastRng.Intn(p.ToastBurstMax)
	pl.stats.ToastBursts++
	pl.stats.ToastTokens += uint64(n)
	return n
}
