package faults

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simrand"
)

// NetProfile extends the fault plane to the serving network: one named
// mix of per-request fault classes injected between the verdict router
// and its vetd peers. The zero value injects nothing. Probabilities are
// per request attempt (retries are fresh opportunities — exactly how a
// lossy network treats them).
type NetProfile struct {
	// Name labels the profile in reports.
	Name string

	// DropProb loses the request in transit: the caller sees a transport
	// error (connection reset), never a response. Models packet loss and
	// peer crashes mid-request.
	DropProb float64

	// LatencyProb adds a Latency-sampled spike (milliseconds) before the
	// request is forwarded — slow peers, congested links.
	LatencyProb float64
	Latency     simrand.Dist

	// ErrorProb replaces the response with a synthesized 503 — the 5xx
	// storm of an overloaded or restarting peer.
	ErrorProb float64

	// PartitionPeers lists peer indices that are fully unreachable: every
	// request to them fails with a transport error, deterministically and
	// without consuming a draw. PartitionAll partitions the whole ring.
	PartitionPeers []int
	PartitionAll   bool
}

// Zero reports whether the profile injects nothing at all.
func (p NetProfile) Zero() bool {
	return p.DropProb <= 0 && p.LatencyProb <= 0 && p.ErrorProb <= 0 &&
		len(p.PartitionPeers) == 0 && !p.PartitionAll
}

// NetNone is the empty network profile.
func NetNone() NetProfile { return NetProfile{Name: "none"} }

// NetDrop loses a tenth of all request attempts in transit.
func NetDrop() NetProfile {
	return NetProfile{Name: "drop", DropProb: 0.10}
}

// NetSlow spikes latency on a quarter of attempts: enough pressure to
// exercise per-request deadlines and retry budgets without making every
// request late.
func NetSlow() NetProfile {
	return NetProfile{
		Name:        "slow",
		LatencyProb: 0.25,
		Latency:     simrand.NormalDist(40, 15),
	}
}

// NetStorm is a 5xx storm: a fifth of attempts answer 503, the signature
// of peers thrashing through restarts.
func NetStorm() NetProfile {
	return NetProfile{Name: "storm", ErrorProb: 0.20}
}

// NetPartition cuts off peer 0 entirely; the router must fail over to
// the remaining replicas for every key that hashes there.
func NetPartition() NetProfile {
	return NetProfile{Name: "partition", PartitionPeers: []int{0}}
}

// NetBlackout partitions the whole ring: every routed request fails, so
// every verdict must come from the router's local degraded fallback.
func NetBlackout() NetProfile {
	return NetProfile{Name: "blackout", PartitionAll: true}
}

// NetChaos combines loss, latency and 5xx pressure at moderate rates.
func NetChaos() NetProfile {
	return NetProfile{
		Name:        "chaos",
		DropProb:    0.03,
		LatencyProb: 0.10,
		Latency:     simrand.NormalDist(40, 15),
		ErrorProb:   0.05,
	}
}

var netProfilesByName = map[string]func() NetProfile{
	"none":      NetNone,
	"drop":      NetDrop,
	"slow":      NetSlow,
	"storm":     NetStorm,
	"partition": NetPartition,
	"blackout":  NetBlackout,
	"chaos":     NetChaos,
}

// NetByName resolves a named network profile (see NetNames).
func NetByName(name string) (NetProfile, error) {
	f, ok := netProfilesByName[strings.ToLower(strings.TrimSpace(name))]
	if !ok {
		return NetProfile{}, fmt.Errorf("faults: unknown net profile %q (have %s)", name, strings.Join(NetNames(), ", "))
	}
	return f(), nil
}

// NetNames lists the named network profiles in sorted order.
func NetNames() []string {
	out := make([]string, 0, len(netProfilesByName))
	for n := range netProfilesByName {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NetStats counts the network faults a NetPlane actually injected.
type NetStats struct {
	Dropped     uint64
	Delayed     uint64
	DelayTotal  time.Duration
	Errored     uint64
	Partitioned uint64
}

// Add returns the element-wise sum of s and o.
func (s NetStats) Add(o NetStats) NetStats {
	s.Dropped += o.Dropped
	s.Delayed += o.Delayed
	s.DelayTotal += o.DelayTotal
	s.Errored += o.Errored
	s.Partitioned += o.Partitioned
	return s
}

// Zero reports whether no faults were injected.
func (s NetStats) Zero() bool { return s == (NetStats{}) }

// String renders the non-zero counters on one line.
func (s NetStats) String() string {
	var parts []string
	add := func(name string, v uint64) {
		if v > 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", name, v))
		}
	}
	add("drop", s.Dropped)
	add("delay", s.Delayed)
	add("error", s.Errored)
	add("partition", s.Partitioned)
	if len(parts) == 0 {
		return "no net faults injected"
	}
	return strings.Join(parts, " ")
}

// NetFault is the fate of one request attempt. The zero value lets the
// request through untouched.
type NetFault struct {
	// Drop fails the attempt with a transport error before any response.
	Drop bool
	// Delay stalls the attempt before it is forwarded.
	Delay time.Duration
	// Status, when nonzero, replaces the response with this HTTP status.
	Status int
}

// NetPlane decides the fate of routed requests. Unlike the simulation
// Plane it is safe for concurrent use — router requests race — so draws
// are serialized under a mutex. Fault placement across concurrent
// requests therefore depends on arrival order, but the determinism that
// matters is preserved: a zero profile consumes no draws and injects
// nothing (strict no-op), partitions are draw-free pure functions of the
// peer index, and a single-threaded replay reproduces faults byte for
// byte from the seed.
type NetPlane struct {
	prof        NetProfile
	partitioned map[int]bool

	mu      sync.Mutex
	dropRng *simrand.Source
	latRng  *simrand.Source
	errRng  *simrand.Source
	stats   NetStats
}

// NewNetPlane builds a NetPlane for profile p from its own seed,
// independent of every other component's stream.
func NewNetPlane(p NetProfile, seed int64) *NetPlane {
	root := simrand.New(seed)
	part := make(map[int]bool, len(p.PartitionPeers))
	for _, i := range p.PartitionPeers {
		part[i] = true
	}
	return &NetPlane{
		prof:        p,
		partitioned: part,
		dropRng:     root.Derive("faults/net/drop"),
		latRng:      root.Derive("faults/net/latency"),
		errRng:      root.Derive("faults/net/error"),
	}
}

// Profile returns the profile the plane was built from.
func (pl *NetPlane) Profile() NetProfile { return pl.prof }

// Stats reports the network faults injected so far.
func (pl *NetPlane) Stats() NetStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.stats
}

// Partitioned reports whether requests to peer index i are cut off. It
// consumes no draws: partitions are topology, not chance.
func (pl *NetPlane) Partitioned(i int) bool {
	return pl.prof.PartitionAll || pl.partitioned[i]
}

// RequestFault decides the fate of one attempt against peer index i.
// Partitioned peers fail deterministically without a draw; otherwise
// each enabled class draws from its private stream (a class with zero
// probability consumes nothing). A dropped attempt short-circuits the
// remaining classes — there is no response left to delay or replace.
func (pl *NetPlane) RequestFault(i int) NetFault {
	var f NetFault
	if pl.Partitioned(i) {
		pl.mu.Lock()
		pl.stats.Partitioned++
		pl.mu.Unlock()
		f.Drop = true
		return f
	}
	p := pl.prof
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if p.DropProb > 0 && pl.dropRng.Bool(p.DropProb) {
		pl.stats.Dropped++
		f.Drop = true
		return f
	}
	if p.LatencyProb > 0 && pl.latRng.Bool(p.LatencyProb) {
		d := p.Latency.Sample(pl.latRng)
		if d > 0 {
			pl.stats.Delayed++
			pl.stats.DelayTotal += d
			f.Delay = d
		}
	}
	if p.ErrorProb > 0 && pl.errRng.Bool(p.ErrorProb) {
		pl.stats.Errored++
		f.Status = 503
	}
	return f
}
