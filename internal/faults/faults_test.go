package faults

import (
	"testing"
	"time"

	"repro/internal/binder"
	"repro/internal/simrand"
)

// pump runs n transactions through the plane's binder hook and returns
// the final stats.
func pump(pl *Plane, n int) Stats {
	for i := 0; i < n; i++ {
		pl.TransactionFault("app", "system_server", "notify")
	}
	return pl.Stats()
}

func TestBurstProfileRegistered(t *testing.T) {
	p, err := ByName("burst")
	if err != nil {
		t.Fatalf("ByName(burst): %v", err)
	}
	if p.Name != "burst" || p.BurstEnterProb <= 0 || p.BurstExitProb <= 0 {
		t.Fatalf("burst profile misconfigured: %+v", p)
	}
	found := false
	for _, n := range Names() {
		if n == "burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing burst", Names())
	}
}

func TestBurstGateDeterministic(t *testing.T) {
	const n = 50000
	a := pump(NewPlane(BinderBurst(), 7), n)
	b := pump(NewPlane(BinderBurst(), 7), n)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := pump(NewPlane(BinderBurst(), 8), n)
	if a == c {
		t.Fatalf("different seeds produced identical stats %+v", a)
	}
}

func TestBurstFaultsConfinedToBursts(t *testing.T) {
	const n = 100000
	s := pump(NewPlane(BinderBurst(), 42), n)
	if s.BurstsEntered == 0 || s.TxDropped == 0 || s.TxDuplicated == 0 {
		t.Fatalf("burst plane injected nothing over %d tx: %+v", n, s)
	}
	// Drops and dups fire only while the gate is open, so each is bounded
	// by the number of in-burst transactions.
	if s.TxDropped > s.BurstTx || s.TxDuplicated > s.BurstTx {
		t.Fatalf("faults outside burst windows: %+v", s)
	}
	// The duty cycle should sit near enter/(enter+exit) ≈ 7.4%.
	duty := float64(s.BurstTx) / float64(n)
	if duty < 0.03 || duty > 0.15 {
		t.Errorf("burst duty cycle %.3f implausibly far from 0.074 (%+v)", duty, s)
	}
	// Mean burst length should sit near 1/exit = 4 transactions.
	mean := float64(s.BurstTx) / float64(s.BurstsEntered)
	if mean < 2 || mean > 8 {
		t.Errorf("mean burst length %.2f implausibly far from 4 (%+v)", mean, s)
	}
}

func TestBurstScaleZeroIsStrictNoOp(t *testing.T) {
	zero := BinderBurst().Scale(0)
	if !zero.Zero() {
		t.Fatalf("BinderBurst().Scale(0) = %+v, want zero profile", zero)
	}
	pl := NewPlane(zero, 42)
	if s := pump(pl, 10000); !s.Zero() {
		t.Fatalf("zero-scaled burst plane injected faults: %+v", s)
	}
	if f := pl.TransactionFault("app", "system_server", "notify"); f != (binder.TxFault{}) {
		t.Fatalf("zero-scaled burst plane returned non-zero fault %+v", f)
	}
}

func TestBurstScaleKeepsBurstLength(t *testing.T) {
	half := BinderBurst().Scale(0.5)
	if half.BurstExitProb != BinderBurst().BurstExitProb {
		t.Errorf("Scale touched BurstExitProb: %v", half.BurstExitProb)
	}
	if half.BurstEnterProb != BinderBurst().BurstEnterProb/2 {
		t.Errorf("Scale(0.5) BurstEnterProb = %v, want %v", half.BurstEnterProb, BinderBurst().BurstEnterProb/2)
	}
}

// TestBurstGateStreamIsolation checks the gate draws from its own private
// sub-stream: enabling the gate on a spike-only profile must not change
// which transactions spike.
func TestBurstGateStreamIsolation(t *testing.T) {
	base := BinderStress()
	base.DropProb, base.DupProb = 0, 0 // spike+reorder only
	gated := base
	gated.BurstEnterProb, gated.BurstExitProb = 0.02, 0.25

	const n = 20000
	a := pump(NewPlane(base, 42), n)
	b := pump(NewPlane(gated, 42), n)
	if a.TxSpiked != b.TxSpiked || a.TxReordered != b.TxReordered {
		t.Fatalf("burst gate perturbed other fault classes: %+v vs %+v", a, b)
	}
}

// frames runs n frames through the plane's anim hook and returns the
// final stats plus the last frame's jitter.
func frames(pl *Plane, n int) (Stats, time.Duration) {
	var last time.Duration
	for i := 0; i < n; i++ {
		_, last = pl.FrameFault("slide")
	}
	return pl.Stats(), last
}

func TestThermalProfileRegistered(t *testing.T) {
	p, err := ByName("thermal")
	if err != nil {
		t.Fatalf("ByName(thermal): %v", err)
	}
	if p.Name != "thermal" || p.ThermalProb != 1 || p.ThermalOnsetFrames <= 0 || p.ThermalRampFrames <= 0 {
		t.Fatalf("thermal profile misconfigured: %+v", p)
	}
	if p.Zero() {
		t.Fatal("thermal profile reports Zero()")
	}
}

func TestThermalOnsetAndRamp(t *testing.T) {
	prof := Thermal()
	pl := NewPlane(prof, 42)

	// Up to and including onset: no drift, no throttled frames.
	st, last := frames(pl, prof.ThermalOnsetFrames)
	if st.FramesThrottled != 0 || last != 0 {
		t.Fatalf("drift before onset: %+v last=%v", st, last)
	}
	if st.ThermalRuns != 1 {
		t.Fatalf("ThermalRuns = %d, want 1 (ThermalProb=1)", st.ThermalRuns)
	}

	// Mid-ramp drift is strictly between zero and the ceiling.
	_, mid := frames(pl, prof.ThermalRampFrames/2)
	if mid <= 0 {
		t.Fatal("no drift mid-ramp")
	}
	// Past the ramp the drift plateaus at the ceiling.
	_, top := frames(pl, prof.ThermalRampFrames)
	if top <= mid {
		t.Fatalf("drift did not ramp: mid=%v top=%v", mid, top)
	}
	_, later := frames(pl, 200)
	if later != top {
		t.Fatalf("drift moved past the plateau: %v then %v", top, later)
	}
}

func TestThermalDeterministic(t *testing.T) {
	a, _ := frames(NewPlane(Thermal(), 7), 500)
	b, _ := frames(NewPlane(Thermal(), 7), 500)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c, _ := frames(NewPlane(Thermal(), 8), 500)
	if a == c {
		t.Fatalf("different seeds produced identical thermal stats %+v", a)
	}
}

func TestThermalScaleZeroIsStrictNoOp(t *testing.T) {
	p := Thermal().Scale(0)
	if !p.Zero() {
		t.Fatalf("Scale(0) not zero: %+v", p)
	}
	pl := NewPlane(p, 42)
	st, last := frames(pl, 1000)
	if !st.Zero() || last != 0 {
		t.Fatalf("zero thermal profile injected faults: %+v", st)
	}
	// The anim stream must be untouched: a frame-jitter-only plane with
	// the same seed draws identically whether or not the (zeroed) thermal
	// class is present.
	jitterOnly := Profile{FrameJitterProb: 0.3, FrameJitter: simrand.NormalDist(4, 2)}
	withZeroThermal := jitterOnly
	withZeroThermal.ThermalProb = 0
	a, _ := frames(NewPlane(jitterOnly, 7), 2000)
	b, _ := frames(NewPlane(withZeroThermal, 7), 2000)
	if a != b {
		t.Fatalf("zeroed thermal class perturbed the anim stream: %+v vs %+v", a, b)
	}
}

// TestThermalStreamIsolation: arming thermal must not change which frames
// the drop/jitter classes fault — the drift comes from its own stream.
func TestThermalStreamIsolation(t *testing.T) {
	base := AnimStress()
	withThermal := base
	withThermal.ThermalProb = 1
	withThermal.ThermalOnsetFrames = 60
	withThermal.ThermalRampFrames = 120
	withThermal.ThermalMaxDrift = simrand.NormalDist(6, 2)

	a, _ := frames(NewPlane(base, 42), 3000)
	b, _ := frames(NewPlane(withThermal, 42), 3000)
	if a.FramesDropped != b.FramesDropped || a.FramesJittered != b.FramesJittered {
		t.Fatalf("thermal class perturbed drop/jitter draws: %+v vs %+v", a, b)
	}
	if b.ThermalRuns != 1 || b.FramesThrottled == 0 {
		t.Fatalf("thermal did not fire: %+v", b)
	}
}

func TestThermalProbabilistic(t *testing.T) {
	prof := Thermal()
	prof.ThermalProb = 0.5
	armed := 0
	for seed := int64(0); seed < 200; seed++ {
		st, _ := frames(NewPlane(prof, seed), 100)
		if st.ThermalRuns > 0 {
			armed++
		}
	}
	if armed < 60 || armed > 140 {
		t.Fatalf("ThermalProb=0.5 armed %d/200 runs", armed)
	}
}
