package faults

import (
	"testing"

	"repro/internal/binder"
)

// pump runs n transactions through the plane's binder hook and returns
// the final stats.
func pump(pl *Plane, n int) Stats {
	for i := 0; i < n; i++ {
		pl.TransactionFault("app", "system_server", "notify")
	}
	return pl.Stats()
}

func TestBurstProfileRegistered(t *testing.T) {
	p, err := ByName("burst")
	if err != nil {
		t.Fatalf("ByName(burst): %v", err)
	}
	if p.Name != "burst" || p.BurstEnterProb <= 0 || p.BurstExitProb <= 0 {
		t.Fatalf("burst profile misconfigured: %+v", p)
	}
	found := false
	for _, n := range Names() {
		if n == "burst" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing burst", Names())
	}
}

func TestBurstGateDeterministic(t *testing.T) {
	const n = 50000
	a := pump(NewPlane(BinderBurst(), 7), n)
	b := pump(NewPlane(BinderBurst(), 7), n)
	if a != b {
		t.Fatalf("same seed diverged: %+v vs %+v", a, b)
	}
	c := pump(NewPlane(BinderBurst(), 8), n)
	if a == c {
		t.Fatalf("different seeds produced identical stats %+v", a)
	}
}

func TestBurstFaultsConfinedToBursts(t *testing.T) {
	const n = 100000
	s := pump(NewPlane(BinderBurst(), 42), n)
	if s.BurstsEntered == 0 || s.TxDropped == 0 || s.TxDuplicated == 0 {
		t.Fatalf("burst plane injected nothing over %d tx: %+v", n, s)
	}
	// Drops and dups fire only while the gate is open, so each is bounded
	// by the number of in-burst transactions.
	if s.TxDropped > s.BurstTx || s.TxDuplicated > s.BurstTx {
		t.Fatalf("faults outside burst windows: %+v", s)
	}
	// The duty cycle should sit near enter/(enter+exit) ≈ 7.4%.
	duty := float64(s.BurstTx) / float64(n)
	if duty < 0.03 || duty > 0.15 {
		t.Errorf("burst duty cycle %.3f implausibly far from 0.074 (%+v)", duty, s)
	}
	// Mean burst length should sit near 1/exit = 4 transactions.
	mean := float64(s.BurstTx) / float64(s.BurstsEntered)
	if mean < 2 || mean > 8 {
		t.Errorf("mean burst length %.2f implausibly far from 4 (%+v)", mean, s)
	}
}

func TestBurstScaleZeroIsStrictNoOp(t *testing.T) {
	zero := BinderBurst().Scale(0)
	if !zero.Zero() {
		t.Fatalf("BinderBurst().Scale(0) = %+v, want zero profile", zero)
	}
	pl := NewPlane(zero, 42)
	if s := pump(pl, 10000); !s.Zero() {
		t.Fatalf("zero-scaled burst plane injected faults: %+v", s)
	}
	if f := pl.TransactionFault("app", "system_server", "notify"); f != (binder.TxFault{}) {
		t.Fatalf("zero-scaled burst plane returned non-zero fault %+v", f)
	}
}

func TestBurstScaleKeepsBurstLength(t *testing.T) {
	half := BinderBurst().Scale(0.5)
	if half.BurstExitProb != BinderBurst().BurstExitProb {
		t.Errorf("Scale touched BurstExitProb: %v", half.BurstExitProb)
	}
	if half.BurstEnterProb != BinderBurst().BurstEnterProb/2 {
		t.Errorf("Scale(0.5) BurstEnterProb = %v, want %v", half.BurstEnterProb, BinderBurst().BurstEnterProb/2)
	}
}

// TestBurstGateStreamIsolation checks the gate draws from its own private
// sub-stream: enabling the gate on a spike-only profile must not change
// which transactions spike.
func TestBurstGateStreamIsolation(t *testing.T) {
	base := BinderStress()
	base.DropProb, base.DupProb = 0, 0 // spike+reorder only
	gated := base
	gated.BurstEnterProb, gated.BurstExitProb = 0.02, 0.25

	const n = 20000
	a := pump(NewPlane(base, 42), n)
	b := pump(NewPlane(gated, 42), n)
	if a.TxSpiked != b.TxSpiked || a.TxReordered != b.TxReordered {
		t.Fatalf("burst gate perturbed other fault classes: %+v vs %+v", a, b)
	}
}
