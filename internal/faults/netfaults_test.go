package faults

import (
	"testing"
)

// TestNetZeroProfileConsumesNoDraws: the strict no-op contract — a zero
// profile must neither inject nor draw, so the plane's streams stay
// byte-identical whether or not it is attached.
func TestNetZeroProfileConsumesNoDraws(t *testing.T) {
	pl := NewNetPlane(NetNone(), 7)
	for i := 0; i < 1000; i++ {
		if f := pl.RequestFault(i % 3); f != (NetFault{}) {
			t.Fatalf("zero profile injected %+v at request %d", f, i)
		}
	}
	if !pl.Stats().Zero() {
		t.Fatalf("zero profile counted faults: %+v", pl.Stats())
	}
	// The streams were never touched: a fresh plane with a lossy profile
	// and the same seed draws the same trajectory as one that first served
	// 1000 zero-profile requests would — verified by comparing two lossy
	// planes, one fresh, one built after the zero-profile run above used
	// the same constructor path.
	a, b := NewNetPlane(NetDrop(), 7), NewNetPlane(NetDrop(), 7)
	for i := 0; i < 200; i++ {
		if fa, fb := a.RequestFault(0), b.RequestFault(0); fa != fb {
			t.Fatalf("same-seed planes diverged at request %d: %+v vs %+v", i, fa, fb)
		}
	}
}

// TestNetDeterminism: single-threaded replay reproduces faults exactly,
// and different seeds give different trajectories.
func TestNetDeterminism(t *testing.T) {
	run := func(seed int64) []NetFault {
		pl := NewNetPlane(NetChaos(), seed)
		out := make([]NetFault, 500)
		for i := range out {
			out[i] = pl.RequestFault(i % 4)
		}
		return out
	}
	a, b := run(11), run(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	c := run(12)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Fatal("different seeds produced identical fault trajectories")
	}
	injected := 0
	for _, f := range a {
		if f != (NetFault{}) {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("chaos profile injected nothing in 500 requests")
	}
}

// TestNetPartitionIsDrawFree: partitioned peers fail deterministically
// and without consuming draws, so the fault trajectory of the healthy
// peers is unchanged by the partition.
func TestNetPartitionIsDrawFree(t *testing.T) {
	prof := NetChaos()
	prof.PartitionPeers = []int{1}
	part := NewNetPlane(prof, 3)
	clean := NewNetPlane(NetChaos(), 3)
	for i := 0; i < 300; i++ {
		pf := part.RequestFault(1)
		if !pf.Drop {
			t.Fatalf("partitioned peer answered at request %d: %+v", i, pf)
		}
		// Healthy peer 0 must draw the identical trajectory on both planes.
		if a, b := part.RequestFault(0), clean.RequestFault(0); a != b {
			t.Fatalf("partition perturbed healthy-peer draws at %d: %+v vs %+v", i, a, b)
		}
	}
	if got := part.Stats().Partitioned; got != 300 {
		t.Fatalf("partitioned count %d, want 300", got)
	}
	if !NewNetPlane(NetBlackout(), 1).Partitioned(42) {
		t.Fatal("blackout did not partition an arbitrary peer")
	}
}

// TestNetByName covers the registry round trip.
func TestNetByName(t *testing.T) {
	for _, name := range NetNames() {
		p, err := NetByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if p.Name != name {
			t.Fatalf("profile %q reports name %q", name, p.Name)
		}
		if name == "none" && !p.Zero() {
			t.Fatal("none profile not zero")
		}
		if name != "none" && p.Zero() {
			t.Fatalf("profile %q is zero", name)
		}
	}
	if _, err := NetByName("bogus"); err == nil {
		t.Fatal("bogus profile resolved")
	}
}
