package vetstore

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/defense"
	"repro/internal/staticanalysis"
)

// makeVerdict builds a deterministic verdict for index i, with enough
// structure (findings, evidence) to make byte-identity a real check.
func makeVerdict(i int) defense.VetVerdict {
	v := defense.VetVerdict{
		Package: fmt.Sprintf("com.store.app%04d", i),
		Allow:   i%3 != 0,
		Tier:    staticanalysis.Tier(i % 3),
	}
	if !v.Allow {
		v.Findings = []staticanalysis.Finding{{
			Detector:   "draw-and-destroy",
			Capability: staticanalysis.CapDrawAndDestroy,
			Component:  fmt.Sprintf("com.store.app%04d.Main", i),
		}}
	}
	return v
}

func keyFor(i int) string {
	return fmt.Sprintf("hash%04d/tier%d", i, i%3)
}

func TestPutGetReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	const n = 50
	for i := 0; i < n; i++ {
		if err := s.Put(keyFor(i), makeVerdict(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	st := r.Stats()
	if st.Recovered != n || st.TornTail {
		t.Fatalf("recovery stats %+v, want Recovered=%d TornTail=false", st, n)
	}
	for i := 0; i < n; i++ {
		got, ok, err := r.Get(keyFor(i))
		if err != nil || !ok {
			t.Fatalf("Get(%s): ok=%v err=%v", keyFor(i), ok, err)
		}
		want := makeVerdict(i)
		gb, _ := json.Marshal(got)
		wb, _ := json.Marshal(want)
		if !bytes.Equal(gb, wb) {
			t.Fatalf("recovered verdict %d differs:\n%s\nvs\n%s", i, gb, wb)
		}
	}
	if _, ok, _ := r.Get("absent/tier0"); ok {
		t.Fatal("absent key found")
	}
}

// TestTornTailTruncatedExactlyOnce plants a torn trailing record — the
// disk image a crash mid-append leaves behind — and checks that the
// first Open truncates it exactly once: the second Open sees a clean
// file of the same length and reports no torn tail.
func TestTornTailTruncatedExactlyOnce(t *testing.T) {
	for _, tail := range []string{
		`{"k":"torn/tier0","verdict":{"Pa`,       // partial JSON, no newline
		`{"k":"torn/tier0","verdict":`,           // truncated mid-record
		"{garbage}\n",                            // newline-terminated but malformed
		`{"k":"","verdict":{"Package":"x"}}` + "\n", // parseable but empty key
	} {
		t.Run(fmt.Sprintf("%.12q", tail), func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "verdicts.store")
			s, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				if err := s.Put(keyFor(i), makeVerdict(i)); err != nil {
					t.Fatal(err)
				}
			}
			s.Close()
			intact, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				t.Fatal(err)
			}
			f.WriteString(tail)
			f.Close()

			r1, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			if st := r1.Stats(); !st.TornTail || st.Recovered != 5 {
				t.Fatalf("first open stats %+v, want TornTail=true Recovered=5", st)
			}
			r1.Close()
			after, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(after, intact) {
				t.Fatalf("truncation did not restore the intact prefix: %d bytes vs %d", len(after), len(intact))
			}

			r2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			defer r2.Close()
			if st := r2.Stats(); st.TornTail || st.Recovered != 5 {
				t.Fatalf("second open stats %+v, want TornTail=false Recovered=5 (tail must be truncated exactly once)", st)
			}
		})
	}
}

// TestTornHeaderStartsOver: a crash before the header sync leaves an
// unterminated first line; the store must reset to empty, not error.
func TestTornHeaderStartsOver(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	if err := os.WriteFile(path, []byte(`{"v":1,"st`), 0o644); err != nil {
		t.Fatal(err)
	}
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.Len() != 0 {
		t.Fatalf("Len = %d after torn header, want 0", s.Len())
	}
	if err := s.Put(keyFor(0), makeVerdict(0)); err != nil {
		t.Fatal(err)
	}
}

func TestForeignFormatRefused(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	if err := os.WriteFile(path, []byte(`{"v":99,"store":"other"}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil || !strings.Contains(err.Error(), "refusing") {
		t.Fatalf("foreign format opened (err=%v)", err)
	}
}

// TestLastWriteWinsAndCompact: duplicate appends resolve to the newest
// verdict on recovery, and Compact squeezes them out while preserving
// every live verdict byte-for-byte and producing a deterministic file.
func TestLastWriteWinsAndCompact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Put(keyFor(i), makeVerdict(i)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite key 3 with key 7's verdict: the newer record must win.
	if err := s.Put(keyFor(3), makeVerdict(7)); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Duplicates != 1 {
		t.Fatalf("Duplicates = %d, want 1", st.Duplicates)
	}
	if err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	compacted, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(bytes.Split(bytes.TrimRight(compacted, "\n"), []byte("\n"))), 11; got != want {
		t.Fatalf("compacted file has %d lines, want %d (header + 10 records)", got, want)
	}
	// The store stays writable after compaction.
	if err := s.Put(keyFor(10), makeVerdict(10)); err != nil {
		t.Fatalf("Put after Compact: %v", err)
	}
	s.Close()

	r, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, ok, err := r.Get(keyFor(3))
	if err != nil || !ok {
		t.Fatalf("Get after compact: ok=%v err=%v", ok, err)
	}
	gb, _ := json.Marshal(got)
	wb, _ := json.Marshal(makeVerdict(7))
	if !bytes.Equal(gb, wb) {
		t.Fatalf("last-write-wins violated after compact:\n%s\nvs\n%s", gb, wb)
	}
	if r.Len() != 11 {
		t.Fatalf("Len after compact+put = %d, want 11", r.Len())
	}

	// Compacting the recovered store again must produce byte-identical
	// output for identical contents: the record order is sorted by key,
	// never map order.
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	first, _ := os.ReadFile(path)
	if err := r.Compact(); err != nil {
		t.Fatal(err)
	}
	second, _ := os.ReadFile(path)
	if !bytes.Equal(first, second) {
		t.Fatal("Compact output is not deterministic")
	}
}

func TestClosedStoreRejectsWrites(t *testing.T) {
	path := filepath.Join(t.TempDir(), "verdicts.store")
	s, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if err := s.Put(keyFor(0), makeVerdict(0)); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
	if err := s.Compact(); err == nil {
		t.Fatal("Compact on closed store succeeded")
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	s, err := Open(filepath.Join(t.TempDir(), "verdicts.store"))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if err := s.Put("", makeVerdict(0)); err == nil {
		t.Fatal("empty key accepted")
	}
}
