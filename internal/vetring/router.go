// Package vetring is the distributed serving plane for the vetting
// service: a consistent-hash router (cmd/vetrouter) that shards the
// verdict keyspace across N vetd peers with R-way replication, plus the
// failure machinery that keeps the ring answering while peers die —
// per-request deadlines, bounded retries with seeded backoff, per-peer
// circuit breakers fed by background health probes, and graceful
// degradation to a local analysis when every replica for a key is
// unreachable.
//
// Verdict safety is structural, not best-effort: a verdict is a pure
// function of (IR, tier), so replication can never serve a wrong answer
// — only a slower or locally recomputed one. The router therefore
// classifies every request into exactly one of replicated / degraded /
// shed / failed (the accounting identity cmd/vetload -check enforces
// under chaos) and stamps degraded verdicts instead of erroring.
//
// The network fault plane (faults.NetPlane) plugs in beneath the HTTP
// clients as a per-peer RoundTripper, so request drops, latency spikes,
// 5xx storms and partitions are injected between router and peer with
// seeded determinism while the router code under test is byte-identical
// to production.
package vetring

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/faults"
	"repro/internal/simrand"
	"repro/internal/staticanalysis"
	"repro/internal/vetd"
)

// Config parameterizes a Router.
type Config struct {
	// Peers are the vetd node addresses (host:port), in ring order. The
	// index of a peer in this slice is its identity for the fault plane's
	// partition sets.
	Peers []string
	// Replicas is the replica set size per key (default 2, clamped to
	// len(Peers)).
	Replicas int
	// VNodes is the number of virtual ring points per peer (default 64).
	VNodes int
	// Tier is the static analysis precision tier of the ring; part of
	// every verdict key and of the degraded fallback.
	Tier staticanalysis.Tier

	// Deadline bounds each peer attempt (default 2s).
	Deadline time.Duration
	// Retries is the number of extra full passes over the replica set
	// after the first (default 1). Between passes the router backs off
	// exponentially with seeded jitter.
	Retries int
	// RetryBase is the first inter-pass backoff (default 25ms); pass k
	// waits RetryBase<<(k-1), jittered ±50%.
	RetryBase time.Duration

	// BreakerThreshold consecutive failures open a peer's circuit
	// (default 3); BreakerCooldown is the open→half-open delay (default
	// 1s).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// ProbeInterval is the health-probe period per peer (default 250ms;
	// negative disables probing).
	ProbeInterval time.Duration

	// FallbackConcurrency bounds concurrent local degraded analyses
	// (default 4); beyond it the router sheds.
	FallbackConcurrency int
	// RetryAfter is the hint returned with 429 sheds (default 1s).
	RetryAfter time.Duration
	// MaxBatch bounds batch size (default 256); MaxBodyBytes bounds
	// request bodies (default 16 MiB).
	MaxBatch     int
	MaxBodyBytes int64

	// Seed feeds the backoff jitter stream (default 1).
	Seed int64
	// NetPlane, when non-nil, injects deterministic network faults
	// beneath the peer HTTP clients. Nil in production.
	NetPlane *faults.NetPlane
	// Transport overrides the base HTTP transport (tests); nil uses a
	// dedicated http.Transport per router.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Replicas <= 0 {
		c.Replicas = 2
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.Deadline <= 0 {
		c.Deadline = 2 * time.Second
	}
	if c.Retries < 0 {
		c.Retries = 0
	} else if c.Retries == 0 {
		c.Retries = 1
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 25 * time.Millisecond
	}
	if c.BreakerThreshold <= 0 {
		c.BreakerThreshold = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = time.Second
	}
	if c.ProbeInterval == 0 {
		c.ProbeInterval = 250 * time.Millisecond
	}
	if c.FallbackConcurrency <= 0 {
		c.FallbackConcurrency = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 256
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// peer is one vetd node as the router sees it.
type peer struct {
	name   string
	client *http.Client
	brk    *breaker

	served atomic.Uint64
	errors atomic.Uint64
}

// Router is the ring front end, an http.Handler mirroring vetd's API
// surface (POST /v1/vet, POST /v1/vet/batch, GET /healthz, /readyz,
// /stats, /metrics) so clients cannot tell a node from the ring.
type Router struct {
	cfg   Config
	ring  *Ring
	peers []*peer
	mux   *http.ServeMux

	metrics Metrics

	// jitterMu serializes the seeded backoff stream.
	jitterMu  sync.Mutex
	jitterRng *simrand.Source

	fallbackSem chan struct{}

	probeStop chan struct{}
	probeWG   sync.WaitGroup
	closed    atomic.Bool
}

// New builds a Router over cfg.Peers and starts its health probes.
func New(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	ring, err := NewRing(cfg.Peers, cfg.VNodes, cfg.Replicas)
	if err != nil {
		return nil, err
	}
	base := cfg.Transport
	if base == nil {
		base = &http.Transport{MaxIdleConnsPerHost: 16}
	}
	r := &Router{
		cfg:         cfg,
		ring:        ring,
		jitterRng:   simrand.New(cfg.Seed).Derive("vetring/backoff"),
		fallbackSem: make(chan struct{}, cfg.FallbackConcurrency),
		probeStop:   make(chan struct{}),
	}
	for i, name := range cfg.Peers {
		r.peers = append(r.peers, &peer{
			name: name,
			client: &http.Client{
				Transport: newPeerTransport(base, cfg.NetPlane, i),
				Timeout:   cfg.Deadline,
			},
			brk: newBreaker(cfg.BreakerThreshold, cfg.BreakerCooldown),
		})
	}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("POST /v1/vet", r.handleVet)
	r.mux.HandleFunc("POST /v1/vet/batch", r.handleBatch)
	r.mux.HandleFunc("GET /healthz", r.handleHealthz)
	r.mux.HandleFunc("GET /readyz", r.handleReadyz)
	r.mux.HandleFunc("GET /stats", r.handleStats)
	r.mux.HandleFunc("GET /metrics", r.handleMetrics)
	if cfg.ProbeInterval > 0 {
		for i := range r.peers {
			r.probeWG.Add(1)
			go r.probeLoop(i)
		}
	}
	return r, nil
}

// Close stops the health probes; in-flight requests finish normally.
func (r *Router) Close() {
	if r.closed.CompareAndSwap(false, true) {
		close(r.probeStop)
		r.probeWG.Wait()
	}
}

// ServeHTTP implements http.Handler.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) {
	r.mux.ServeHTTP(w, req)
}

// Ring exposes the placement function (tests and topology dumps).
func (r *Router) Ring() *Ring { return r.ring }

// probeLoop polls one peer's /readyz and feeds its breaker, so dead
// peers are discovered between requests and recovered peers readmitted
// within one cooldown.
func (r *Router) probeLoop(i int) {
	defer r.probeWG.Done()
	p := r.peers[i]
	t := time.NewTicker(r.cfg.ProbeInterval)
	defer t.Stop()
	for {
		select {
		case <-r.probeStop:
			return
		case <-t.C:
		}
		ctx, cancel := context.WithTimeout(context.Background(), r.cfg.ProbeInterval)
		req, err := http.NewRequestWithContext(ctx, "GET", "http://"+p.name+"/readyz", nil)
		if err != nil {
			cancel()
			continue
		}
		resp, err := p.client.Do(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		cancel()
		if err == nil && resp.StatusCode == http.StatusOK {
			r.metrics.ProbeOK.Add(1)
			p.brk.onSuccess()
		} else {
			r.metrics.ProbeFail.Add(1)
			p.brk.onFailure()
		}
	}
}

// backoff returns the jittered inter-pass delay for retry pass k (1-based):
// RetryBase<<(k-1), jittered uniformly in [0.5x, 1.5x], drawn from the
// router's seeded stream.
func (r *Router) backoff(k int) time.Duration {
	d := r.cfg.RetryBase << (k - 1)
	r.jitterMu.Lock()
	j := 0.5 + r.jitterRng.Float64()
	r.jitterMu.Unlock()
	return time.Duration(float64(d) * j)
}

// routeResult is the classified outcome of one routed request.
type routeResult struct {
	verdict vetd.Verdict
	status  int    // HTTP status for the caller
	errMsg  string // set when status != 200
}

// routeOne resolves one app through the ring: replicas in preference
// order, bounded retry passes with seeded backoff, then local degraded
// fallback. It classifies the request on exactly one of the four
// request-level counters.
func (r *Router) routeOne(ctx context.Context, app *dexir.App) routeResult {
	r.metrics.Requests.Add(1)
	hash, err := vetd.HashIR(app)
	if err != nil {
		r.metrics.Failed.Add(1)
		return routeResult{status: http.StatusInternalServerError, errMsg: err.Error()}
	}
	key := vetd.VerdictKey(hash, r.cfg.Tier)
	replicas := r.ring.Replicas(key)

	body, err := json.Marshal(vetd.VetRequest{App: app})
	if err != nil {
		r.metrics.Failed.Add(1)
		return routeResult{status: http.StatusInternalServerError, errMsg: err.Error()}
	}

	for pass := 0; pass <= r.cfg.Retries; pass++ {
		if pass > 0 {
			r.metrics.Retries.Add(1)
			select {
			case <-time.After(r.backoff(pass)):
			case <-ctx.Done():
				return r.fallback(ctx, app, hash)
			}
		}
		for ri, pi := range replicas {
			if ri > 0 {
				r.metrics.Failovers.Add(1)
			}
			p := r.peers[pi]
			if !p.brk.allow() {
				continue
			}
			v, status, err := r.tryPeer(ctx, p, body)
			switch {
			case err != nil:
				p.errors.Add(1)
				r.metrics.PeerErrs.Add(1)
				p.brk.onFailure()
			case status == http.StatusOK:
				p.brk.onSuccess()
				p.served.Add(1)
				r.metrics.Replicated.Add(1)
				v.Peer = p.name
				return routeResult{verdict: v, status: http.StatusOK}
			case status == http.StatusTooManyRequests:
				// The peer is alive and shedding: failover without
				// breaker damage — opening the circuit on load would
				// amplify the overload onto the remaining replicas.
				r.metrics.Peer429s.Add(1)
				p.brk.onSuccess()
			default:
				// 5xx (injected storms included) and unexpected codes.
				p.errors.Add(1)
				r.metrics.PeerErrs.Add(1)
				p.brk.onFailure()
			}
		}
	}
	return r.fallback(ctx, app, hash)
}

// tryPeer sends one attempt to p. The returned error covers transport
// failures only; HTTP-level failures come back as the status.
func (r *Router) tryPeer(ctx context.Context, p *peer, body []byte) (vetd.Verdict, int, error) {
	attemptCtx, cancel := context.WithTimeout(ctx, r.cfg.Deadline)
	defer cancel()
	url := "http://" + p.name + "/v1/vet?deadline_ms=" + strconv.FormatInt(r.cfg.Deadline.Milliseconds(), 10)
	req, err := http.NewRequestWithContext(attemptCtx, "POST", url, bytes.NewReader(body))
	if err != nil {
		return vetd.Verdict{}, 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := p.client.Do(req)
	if err != nil {
		return vetd.Verdict{}, 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return vetd.Verdict{}, resp.StatusCode, nil
	}
	var v vetd.Verdict
	if err := json.NewDecoder(io.LimitReader(resp.Body, r.cfg.MaxBodyBytes)).Decode(&v); err != nil {
		return vetd.Verdict{}, 0, fmt.Errorf("decode peer verdict: %w", err)
	}
	return v, http.StatusOK, nil
}

// fallback computes the verdict locally when every replica is
// unreachable: bounded by the fallback semaphore (full → shed), stamped
// Degraded — the ring answers correctly but admits it routed nothing.
func (r *Router) fallback(ctx context.Context, app *dexir.App, hash string) routeResult {
	select {
	case r.fallbackSem <- struct{}{}:
	default:
		r.metrics.Sheds.Add(1)
		return routeResult{status: http.StatusTooManyRequests, errMsg: "ring unreachable and local fallback saturated"}
	}
	defer func() { <-r.fallbackSem }()
	if ctx.Err() != nil {
		r.metrics.Sheds.Add(1)
		return routeResult{status: http.StatusTooManyRequests, errMsg: "deadline exhausted before fallback"}
	}
	r.metrics.FallbackAnalyses.Add(1)
	vv, err := defense.VetTier(app, r.cfg.Tier)
	if err != nil {
		r.metrics.Failed.Add(1)
		return routeResult{status: http.StatusInternalServerError, errMsg: err.Error()}
	}
	v := vetd.NewVerdict(vv, hash, false)
	v.Degraded = true
	r.metrics.Degraded.Add(1)
	return routeResult{verdict: v, status: http.StatusOK}
}

func (r *Router) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (r *Router) writeError(w http.ResponseWriter, status int, msg string) {
	resp := vetd.ErrorResponse{Error: msg}
	if status == http.StatusTooManyRequests {
		sec := int((r.cfg.RetryAfter + time.Second - 1) / time.Second)
		w.Header().Set("Retry-After", strconv.Itoa(sec))
		resp.RetryAfterSec = sec
	}
	r.writeJSON(w, status, resp)
}

func (r *Router) handleVet(w http.ResponseWriter, req *http.Request) {
	var vr vetd.VetRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, r.cfg.MaxBodyBytes)).Decode(&vr); err != nil {
		r.metrics.BadRequests.Add(1)
		r.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if vr.App == nil {
		r.metrics.BadRequests.Add(1)
		r.writeError(w, http.StatusBadRequest, "missing app")
		return
	}
	res := r.routeOne(req.Context(), vr.App)
	if res.status != http.StatusOK {
		r.writeError(w, res.status, res.errMsg)
		return
	}
	r.writeJSON(w, http.StatusOK, res.verdict)
}

func (r *Router) handleBatch(w http.ResponseWriter, req *http.Request) {
	var br vetd.BatchRequest
	if err := json.NewDecoder(io.LimitReader(req.Body, r.cfg.MaxBodyBytes)).Decode(&br); err != nil {
		r.metrics.BadRequests.Add(1)
		r.writeError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(br.Apps) == 0 || len(br.Apps) > r.cfg.MaxBatch {
		r.metrics.BadRequests.Add(1)
		r.writeError(w, http.StatusBadRequest, fmt.Sprintf("batch size must be 1..%d", r.cfg.MaxBatch))
		return
	}
	resp := vetd.BatchResponse{Verdicts: make([]vetd.BatchItem, len(br.Apps))}
	for i, app := range br.Apps {
		if app == nil {
			r.metrics.BadRequests.Add(1)
			resp.Verdicts[i] = vetd.BatchItem{Status: http.StatusBadRequest, Error: "missing app"}
			continue
		}
		res := r.routeOne(req.Context(), app)
		if res.status != http.StatusOK {
			resp.Verdicts[i] = vetd.BatchItem{Status: res.status, Error: res.errMsg}
			continue
		}
		v := res.verdict
		resp.Verdicts[i] = vetd.BatchItem{Status: http.StatusOK, Verdict: &v}
	}
	r.writeJSON(w, http.StatusOK, resp)
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	fmt.Fprintf(w, `{"status":"ok"}`+"\n")
}

// handleReadyz: the router is ready while it can still answer — which,
// thanks to the degraded fallback, is whenever the fallback semaphore is
// not saturated, regardless of peer health.
func (r *Router) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for _, p := range r.peers {
		if st, _ := p.brk.snapshot(); st == "closed" {
			healthy++
		}
	}
	status, state := http.StatusOK, "ready"
	if len(r.fallbackSem) >= cap(r.fallbackSem) && healthy == 0 {
		status, state = http.StatusServiceUnavailable, "saturated"
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	fmt.Fprintf(w, `{"status":%q,"healthy_peers":%d,"peers":%d}`+"\n", state, healthy, len(r.peers))
}

func (r *Router) handleStats(w http.ResponseWriter, _ *http.Request) {
	r.writeJSON(w, http.StatusOK, r.Snapshot())
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	r.WriteProm(w)
}

func (r *Router) peerStats() []PeerStats {
	out := make([]PeerStats, len(r.peers))
	for i, p := range r.peers {
		st, opens := p.brk.snapshot()
		out[i] = PeerStats{
			Name:    p.name,
			Breaker: st,
			Opens:   opens,
			Served:  p.served.Load(),
			Errors:  p.errors.Load(),
		}
	}
	return out
}

// Metrics exposes the counter block (tests).
func (r *Router) Metrics() *Metrics { return &r.metrics }

// PeerNames formats the peer list for logs.
func (r *Router) PeerNames() string { return strings.Join(r.ring.Peers(), ",") }
