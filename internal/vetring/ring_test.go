package vetring

import (
	"fmt"
	"testing"
	"time"
)

func TestRingPlacementDeterministicAndDistinct(t *testing.T) {
	peers := []string{"a:1", "b:1", "c:1", "d:1"}
	r1, err := NewRing(peers, 64, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(peers, 64, 2)
	counts := make([]int, len(peers))
	for i := 0; i < 2000; i++ {
		key := fmt.Sprintf("hash%04d/tier2", i)
		a, b := r1.Replicas(key), r2.Replicas(key)
		if len(a) != 2 {
			t.Fatalf("replica set size %d, want 2", len(a))
		}
		if a[0] == a[1] {
			t.Fatalf("replica set %v repeats a peer", a)
		}
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("placement differs between identical rings: %v vs %v", a, b)
		}
		counts[a[0]]++
	}
	// Virtual nodes must spread primaries across every peer; perfect
	// balance is 500 each, so no peer may own the lot or nothing.
	for i, c := range counts {
		if c == 0 || c == 2000 {
			t.Fatalf("primary distribution degenerate: peer %d owns %d/2000", i, c)
		}
	}
}

func TestRingReplicasClampedAndErrors(t *testing.T) {
	r, err := NewRing([]string{"solo:1"}, 8, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Replicas("k"); len(got) != 1 || got[0] != 0 {
		t.Fatalf("single-peer replicas %v", got)
	}
	if _, err := NewRing(nil, 8, 1); err == nil {
		t.Fatal("empty peer set accepted")
	}
	if _, err := NewRing([]string{"a:1", "a:1"}, 8, 1); err == nil {
		t.Fatal("duplicate peer accepted")
	}
}

// TestRingMinimalReshuffle: removing one peer moves only keys that
// peer owned; everything else keeps its primary.
func TestRingMinimalReshuffle(t *testing.T) {
	all := []string{"a:1", "b:1", "c:1", "d:1"}
	full, _ := NewRing(all, 64, 1)
	reduced, _ := NewRing(all[:3], 64, 1)
	moved, kept := 0, 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("hash%04d/tier0", i)
		pf := full.Replicas(key)[0]
		pr := reduced.Replicas(key)[0]
		if pf == 3 {
			continue // owned by the removed peer; must move
		}
		if all[pf] == all[:3][pr] {
			kept++
		} else {
			moved++
		}
	}
	if moved > 0 {
		t.Fatalf("%d keys moved off surviving peers (kept %d); consistent hashing must move only the removed peer's keys", moved, kept)
	}
}

func TestBreakerLifecycle(t *testing.T) {
	b := newBreaker(3, 50*time.Millisecond)
	if !b.allow() {
		t.Fatal("fresh breaker refuses")
	}
	b.onFailure()
	b.onFailure()
	if !b.allow() {
		t.Fatal("breaker opened below threshold")
	}
	b.onFailure()
	if b.allow() {
		t.Fatal("breaker still closed at threshold")
	}
	if st, opens := b.snapshot(); st != "open" || opens != 1 {
		t.Fatalf("state %s opens %d, want open/1", st, opens)
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("breaker did not half-open after cooldown")
	}
	if b.allow() {
		t.Fatal("half-open admitted a second trial")
	}
	b.onFailure() // trial fails → reopen immediately
	if b.allow() {
		t.Fatal("failed trial did not reopen")
	}
	time.Sleep(60 * time.Millisecond)
	if !b.allow() {
		t.Fatal("second half-open refused")
	}
	b.onSuccess()
	if !b.allow() || !b.allow() {
		t.Fatal("successful trial did not close the breaker")
	}
}
