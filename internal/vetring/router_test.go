package vetring

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/appstore"
	"repro/internal/defense"
	"repro/internal/dexir"
	"repro/internal/faults"
	"repro/internal/staticanalysis"
	"repro/internal/vetd"
)

func newListener(addr string) (net.Listener, error) { return net.Listen("tcp", addr) }

// testRing spins up n real vetd nodes behind httptest listeners and a
// router over them. Probes are disabled unless probe > 0 so tests stay
// free of background timing noise.
func testRing(t *testing.T, n int, tier staticanalysis.Tier, mutate func(*Config)) (*Router, []*httptest.Server) {
	t.Helper()
	peers := make([]string, n)
	servers := make([]*httptest.Server, n)
	for i := 0; i < n; i++ {
		node := vetd.New(vetd.Config{Tier: tier})
		ts := httptest.NewServer(node)
		t.Cleanup(func() { ts.Close(); node.Close() })
		servers[i] = ts
		peers[i] = strings.TrimPrefix(ts.URL, "http://")
	}
	cfg := Config{
		Peers:         peers,
		Replicas:      2,
		Tier:          tier,
		Deadline:      2 * time.Second,
		RetryBase:     time.Millisecond,
		ProbeInterval: -1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(r.Close)
	return r, servers
}

func corpus(t *testing.T, n int) []appstore.APK {
	t.Helper()
	apks, err := appstore.GenerateApps(42, 0, n)
	if err != nil {
		t.Fatal(err)
	}
	return apks
}

func routePost(t *testing.T, r *Router, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(b))
	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, req)
	return rec
}

// checkCore asserts the served verdict matches a direct defense.VetTier
// run byte-for-byte on the core fields — the ring-level restatement of
// cmd/vetload -check.
func checkCore(t *testing.T, v vetd.Verdict, app *dexir.App, tier staticanalysis.Tier) {
	t.Helper()
	want, err := defense.VetTier(app, tier)
	if err != nil {
		t.Fatal(err)
	}
	hash, _ := vetd.HashIR(app)
	gotCore, _ := v.Core()
	wantCore, _ := vetd.NewVerdict(want, hash, false).Core()
	if !bytes.Equal(gotCore, wantCore) {
		t.Fatalf("%s: routed verdict differs from direct analysis:\n%s\nvs\n%s", app.Package, gotCore, wantCore)
	}
}

// checkAccounting asserts the router's exclusive classification.
func checkAccounting(t *testing.T, r *Router) {
	t.Helper()
	st := r.Snapshot()
	if st.Replicated+st.Degraded+st.Sheds+st.Failed != st.Requests {
		t.Fatalf("accounting broken: replicated=%d degraded=%d sheds=%d failed=%d requests=%d",
			st.Replicated, st.Degraded, st.Sheds, st.Failed, st.Requests)
	}
}

func TestRouterReplicatesAcrossRing(t *testing.T) {
	const tier = staticanalysis.Tier(2)
	r, _ := testRing(t, 3, tier, nil)
	apks := corpus(t, 60)
	for _, apk := range apks {
		rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", apk.Package, rec.Code, rec.Body.String())
		}
		var v vetd.Verdict
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if v.Degraded || v.Peer == "" {
			t.Fatalf("%s: healthy ring answered degraded=%v peer=%q", apk.Package, v.Degraded, v.Peer)
		}
		checkCore(t, v, apk.IR, tier)
	}
	st := r.Snapshot()
	if st.Replicated != uint64(len(apks)) || st.Degraded != 0 || st.Retries != 0 {
		t.Fatalf("healthy ring stats: %+v", st)
	}
	checkAccounting(t, r)
	// The keyspace must actually shard: with 60 keys on 3 peers, every
	// peer serves some.
	for _, p := range st.Peers {
		if p.Served == 0 {
			t.Fatalf("peer %s served nothing; ring not sharding (%+v)", p.Name, st.Peers)
		}
	}
	if st.Service != "vetrouter" {
		t.Fatalf("service %q, want vetrouter", st.Service)
	}
}

// TestRouterSurvivesEachPeerPartitioned partitions each peer in turn:
// every request must still answer 200 with a byte-correct verdict, and
// the exclusive accounting must hold throughout.
func TestRouterSurvivesEachPeerPartitioned(t *testing.T) {
	const tier = staticanalysis.Tier(1)
	const peers = 3
	apks := corpus(t, 30)
	for dead := 0; dead < peers; dead++ {
		t.Run(fmt.Sprintf("peer%d-down", dead), func(t *testing.T) {
			prof := faults.NetProfile{Name: "one-down", PartitionPeers: []int{dead}}
			r, _ := testRing(t, peers, tier, func(c *Config) {
				c.NetPlane = faults.NewNetPlane(prof, 7)
				c.BreakerCooldown = 10 * time.Second // stays open for the test's duration
			})
			for _, apk := range apks {
				rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR})
				if rec.Code != http.StatusOK {
					t.Fatalf("%s: status %d with peer %d down: %s", apk.Package, rec.Code, dead, rec.Body.String())
				}
				var v vetd.Verdict
				if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
					t.Fatal(err)
				}
				checkCore(t, v, apk.IR, tier)
			}
			st := r.Snapshot()
			if st.Replicated != uint64(len(apks)) {
				t.Fatalf("with R=2 and one peer down every key keeps a live replica; replicated=%d degraded=%d of %d",
					st.Replicated, st.Degraded, len(apks))
			}
			if st.Peers[dead].Served != 0 {
				t.Fatalf("partitioned peer %d served %d requests", dead, st.Peers[dead].Served)
			}
			checkAccounting(t, r)
		})
	}
}

// TestRouterBlackoutDegrades: with the whole ring partitioned every
// verdict comes from the local fallback, stamped degraded, still
// byte-correct.
func TestRouterBlackoutDegrades(t *testing.T) {
	const tier = staticanalysis.Tier(2)
	r, _ := testRing(t, 2, tier, func(c *Config) {
		c.NetPlane = faults.NewNetPlane(faults.NetBlackout(), 7)
		c.Retries = -1 // single pass: the test asserts outcomes, not retry depth
		c.BreakerCooldown = 10 * time.Second
	})
	apks := corpus(t, 20)
	for _, apk := range apks {
		rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d under blackout: %s", apk.Package, rec.Code, rec.Body.String())
		}
		var v vetd.Verdict
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		if !v.Degraded || v.Peer != "" {
			t.Fatalf("%s: blackout verdict degraded=%v peer=%q, want degraded local answer", apk.Package, v.Degraded, v.Peer)
		}
		checkCore(t, v, apk.IR, tier)
	}
	st := r.Snapshot()
	if st.Degraded != uint64(len(apks)) || st.Replicated != 0 {
		t.Fatalf("blackout stats: %+v", st)
	}
	if st.FallbackAnalyses != uint64(len(apks)) {
		t.Fatalf("fallback analyses %d, want %d", st.FallbackAnalyses, len(apks))
	}
	checkAccounting(t, r)
}

// TestRouterRetriesThroughDrops: a lossy (but not partitioned) network
// must cost retries/failovers, never wrong answers or hard failures.
func TestRouterRetriesThroughDrops(t *testing.T) {
	const tier = staticanalysis.Tier(0)
	r, _ := testRing(t, 3, tier, func(c *Config) {
		c.NetPlane = faults.NewNetPlane(faults.NetProfile{Name: "lossy", DropProb: 0.25}, 11)
		c.Retries = 3
		c.BreakerThreshold = 1000 // isolate the retry path from breaker state
	})
	apks := corpus(t, 40)
	for _, apk := range apks {
		rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d through drops: %s", apk.Package, rec.Code, rec.Body.String())
		}
		var v vetd.Verdict
		if err := json.Unmarshal(rec.Body.Bytes(), &v); err != nil {
			t.Fatal(err)
		}
		checkCore(t, v, apk.IR, tier)
	}
	st := r.Snapshot()
	if st.PeerErrors == 0 {
		t.Fatal("25% drop rate injected no peer errors in 40 requests")
	}
	if st.Replicated+st.Degraded != uint64(len(apks)) {
		t.Fatalf("lossy ring lost requests: %+v", st)
	}
	checkAccounting(t, r)
}

// TestRouterFailsOverOn429: a shedding peer is failed over without
// breaker damage.
func TestRouterFailsOverOn429(t *testing.T) {
	// Peer 0 always sheds; peer 1 is a real vetd node.
	shedder := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Retry-After", "1")
		http.Error(w, `{"error":"shed"}`, http.StatusTooManyRequests)
	}))
	defer shedder.Close()
	const tier = staticanalysis.Tier(0)
	node := vetd.New(vetd.Config{Tier: tier})
	ts := httptest.NewServer(node)
	defer func() { ts.Close(); node.Close() }()

	r, err := New(Config{
		Peers:         []string{strings.TrimPrefix(shedder.URL, "http://"), strings.TrimPrefix(ts.URL, "http://")},
		Replicas:      2,
		Tier:          tier,
		ProbeInterval: -1,
		RetryBase:     time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	apks := corpus(t, 20)
	for _, apk := range apks {
		rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: status %d: %s", apk.Package, rec.Code, rec.Body.String())
		}
	}
	st := r.Snapshot()
	if st.Replicated != uint64(len(apks)) || st.Degraded != 0 {
		t.Fatalf("sheds not failed over: %+v", st)
	}
	if st.Peer429s == 0 {
		t.Fatal("no peer 429s observed despite a permanently shedding replica")
	}
	if st.Peers[0].Breaker != "closed" {
		t.Fatalf("429s opened the shedder's breaker (%s); load shedding must not count as failure", st.Peers[0].Breaker)
	}
	checkAccounting(t, r)
}

// TestRouterZeroFaultPlaneIsNoOp: Config.NetPlane == nil and a
// zero-profile plane must behave identically — no degraded verdicts, no
// retries, no injected faults.
func TestRouterZeroFaultPlaneIsNoOp(t *testing.T) {
	const tier = staticanalysis.Tier(0)
	plane := faults.NewNetPlane(faults.NetNone(), 5)
	r, _ := testRing(t, 2, tier, func(c *Config) { c.NetPlane = plane })
	for _, apk := range corpus(t, 20) {
		if rec := routePost(t, r, "/v1/vet", vetd.VetRequest{App: apk.IR}); rec.Code != http.StatusOK {
			t.Fatalf("status %d", rec.Code)
		}
	}
	st := r.Snapshot()
	if st.Degraded != 0 || st.Retries != 0 || st.PeerErrors != 0 {
		t.Fatalf("zero profile perturbed serving: %+v", st)
	}
	if !plane.Stats().Zero() {
		t.Fatalf("zero profile injected faults: %+v", plane.Stats())
	}
}

// TestRouterBatchClassifiesPerItem: batch items route and classify
// individually, preserving order.
func TestRouterBatchClassifiesPerItem(t *testing.T) {
	const tier = staticanalysis.Tier(0)
	r, _ := testRing(t, 2, tier, nil)
	apks := corpus(t, 6)
	apps := make([]*dexir.App, len(apks))
	for i, a := range apks {
		apps[i] = a.IR
	}
	rec := routePost(t, r, "/v1/vet/batch", vetd.BatchRequest{Apps: apps})
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp vetd.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Verdicts) != len(apps) {
		t.Fatalf("%d verdicts, want %d", len(resp.Verdicts), len(apps))
	}
	for i, item := range resp.Verdicts {
		if item.Status != http.StatusOK || item.Verdict == nil || item.Verdict.Package != apps[i].Package {
			t.Fatalf("item %d: %+v", i, item)
		}
	}
	if st := r.Snapshot(); st.Requests != uint64(len(apps)) {
		t.Fatalf("batch items not classified individually: %+v", st)
	}
	checkAccounting(t, r)
}

// TestRouterProbesRecoverPeers: probes open the breaker of a dead peer
// and close it again when the peer returns at the same address.
func TestRouterProbesRecoverPeers(t *testing.T) {
	const tier = staticanalysis.Tier(0)
	node := vetd.New(vetd.Config{Tier: tier})
	defer node.Close()
	ts := httptest.NewServer(node)
	addr := strings.TrimPrefix(ts.URL, "http://")

	r, err := New(Config{
		Peers:            []string{addr},
		Replicas:         1,
		Tier:             tier,
		ProbeInterval:    10 * time.Millisecond,
		BreakerThreshold: 2,
		BreakerCooldown:  20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	waitFor := func(want string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if st, _ := r.peers[0].brk.snapshot(); st == want {
				return
			}
			if time.Now().After(deadline) {
				st, _ := r.peers[0].brk.snapshot()
				t.Fatalf("breaker stuck %s, want %s", st, want)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	waitFor("closed")
	ts.CloseClientConnections()
	ts.Close()
	waitFor("open")
	if r.Snapshot().ProbeFail == 0 {
		t.Fatal("probe failures not counted")
	}
	// Revive at the same address (SO_REUSEADDR semantics of a restarted
	// peer). httptest can't rebind a closed listener, so serve directly.
	ln, err := newListener(addr)
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	srv := &http.Server{Handler: node}
	go srv.Serve(ln)
	defer srv.Close()
	waitFor("closed")
	if r.Snapshot().ProbeOK == 0 {
		t.Fatal("probe successes not counted")
	}
}
